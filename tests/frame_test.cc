// Frame codec tests: encode->decode identity for every MessageType, a
// malformed-frame corpus that must be rejected cleanly (distinct
// FrameError, no crash, no out-of-bounds access — the suite runs under
// ASan/UBSan in CI), and random fuzz over DecodeFrame.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"

namespace radd {
namespace {

// One representative message per type, every field away from its default
// so a missed field in the codec shows up as a re-encode mismatch.
Message MakeMessage(MessageType type) {
  Message m;
  m.from = 3;
  m.to = 5;
  m.seq = 0x1122334455667788ull;
  m.type = type;
  switch (type) {
    case MessageType::kNone:
      m.payload = std::monostate{};
      break;
    case MessageType::kReadReq:
      m.payload = ReadReq{41, 2, 7};
      break;
    case MessageType::kReadReply: {
      ReadReply v{42, Status::NotFound("gone"), Block({1, 2, 3}),
                  Uid::Make(1, 9)};
      m.payload = std::move(v);
      break;
    }
    case MessageType::kWriteReq: {
      WriteReq v;
      v.op = 43;
      v.group = 1;
      v.row = 6;
      v.home = 2;
      v.deadline = 987654;
      v.home_epoch = 11;
      v.data = Block({9, 8, 7, 6});
      m.payload = std::move(v);
      break;
    }
    case MessageType::kWriteReply:
    case MessageType::kSpareWriteReply:
      m.payload = WriteReply{44, Status::StaleEpoch("old view")};
      break;
    case MessageType::kSpareReadReq:
      m.payload = SpareReadReq{45, 3, 1, 8};
      break;
    case MessageType::kSpareReadReply:
    case MessageType::kSpareTakeReply: {
      SpareReadReply v{46, Status::OK(), Block({5, 5, 5}), Uid::Make(2, 17)};
      m.payload = std::move(v);
      break;
    }
    case MessageType::kSpareTakeReq:
    case MessageType::kSpareInvalidate:
      m.payload = SpareTakeReq{47, 1, 4, 9};
      break;
    case MessageType::kSpareWriteReq: {
      SpareWriteReq v;
      v.op = 48;
      v.group = 2;
      v.home = 3;
      v.row = 10;
      v.deadline = 123456;
      v.home_epoch = 7;
      v.data = Block({1, 3, 3, 7});
      v.uid = Uid::Make(4, 99);
      m.payload = std::move(v);
      break;
    }
    case MessageType::kSpareWriteBack: {
      SpareWriteBack v;
      v.group = 1;
      v.home = 0;
      v.row = 11;
      v.home_epoch = 3;
      v.data = Block({2, 4, 6});
      v.logical_uid = Uid::Make(5, 12);
      m.payload = std::move(v);
      break;
    }
    case MessageType::kParityUpdate: {
      ParityUpdate v;
      v.op = 49;
      v.group = 0;
      v.row = 12;
      v.position = 2;
      v.home_epoch = 8;
      v.delta = Block({0xAA, 0xBB});
      v.uid = Uid::Make(1, 33);
      v.wire_bytes = 640;
      m.payload = std::move(v);
      break;
    }
    case MessageType::kParityAck:
      m.payload = ParityAck{50};
      break;
    case MessageType::kParityNack:
      m.payload = ParityNack{51, Status::StaleEpoch("fenced")};
      break;
    case MessageType::kParityBatch: {
      ParityBatchFrame v;
      v.batch_seq = 77;
      v.group = 2;
      ParityBatchEntry e1;
      e1.row = 4;
      e1.position = 1;
      e1.home_epoch = 5;
      e1.delta = Block({1, 1});
      e1.uid = Uid::Make(2, 8);
      e1.wire_bytes = 66;
      ParityBatchEntry e2;
      e2.row = 9;
      e2.position = 0;
      e2.home_epoch = 6;
      e2.delta = Block({2, 2, 2});
      e2.uid = Uid::Make(3, 4);
      e2.wire_bytes = 67;
      v.entries.push_back(std::move(e1));
      v.entries.push_back(std::move(e2));
      m.payload = std::move(v);
      break;
    }
    case MessageType::kParityBatchAck: {
      ParityBatchAck v;
      v.batch_seq = 78;
      v.entry_status = {Status::OK(), Status::StaleEpoch("e"), Status::OK()};
      m.payload = std::move(v);
      break;
    }
    case MessageType::kReconReq:
      m.payload = ReconReq{52, 1, 13, 3};
      break;
    case MessageType::kReconReply: {
      ReconReply v;
      v.op = 53;
      v.row = 14;
      v.status = Status::OK();
      v.data = Block({7, 7, 7, 7});
      v.uid = Uid::Make(0, 21);
      v.uid_array = {Uid::Make(0, 1), Uid(), Uid::Make(2, 3)};
      v.attempt = 2;
      m.payload = std::move(v);
      break;
    }
    case MessageType::kHeartbeat:
    case MessageType::kHbProbe:
    case MessageType::kHbProbeAck:
      m.payload = Heartbeat{424242};
      break;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Identity: every type encodes, decodes, and re-encodes to the same bytes.
// ---------------------------------------------------------------------------

TEST(FrameCodec, EncodeDecodeIdentityEveryType) {
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    const Message msg = MakeMessage(type);
    const std::vector<uint8_t> frame = EncodeFrame(msg, /*stream_epoch=*/7);
    ASSERT_FALSE(frame.empty()) << MessageTypeName(type);
    ASSERT_GE(frame.size(), kFrameHeaderBytes);
    EXPECT_EQ(frame[0], 'R');
    EXPECT_EQ(frame[1], 'A');
    EXPECT_EQ(frame[2], 'D');
    EXPECT_EQ(frame[3], 'D');

    const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
    ASSERT_EQ(d.error, FrameError::kOk) << MessageTypeName(type);
    EXPECT_EQ(d.frame_size, frame.size());
    EXPECT_EQ(d.stream_epoch, 7);
    EXPECT_EQ(d.msg.type, type);
    EXPECT_EQ(d.msg.from, msg.from);
    EXPECT_EQ(d.msg.to, msg.to);
    EXPECT_EQ(d.msg.seq, msg.seq);
    // Deep equality without per-struct operators: a deterministic codec
    // must reproduce the exact bytes from the decoded message.
    const std::vector<uint8_t> again = EncodeFrame(d.msg, 7);
    EXPECT_EQ(again, frame) << MessageTypeName(type);
  }
}

TEST(FrameCodec, DeepFieldRoundTrip) {
  const Message msg = MakeMessage(MessageType::kSpareWriteReq);
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
  ASSERT_EQ(d.error, FrameError::kOk);
  const auto& req = std::get<SpareWriteReq>(d.msg.payload);
  EXPECT_EQ(req.op, 48u);
  EXPECT_EQ(req.group, 2);
  EXPECT_EQ(req.home, 3);
  EXPECT_EQ(req.row, 10u);
  EXPECT_EQ(req.deadline, 123456);
  EXPECT_EQ(req.home_epoch, 7u);
  EXPECT_EQ(req.data.bytes(), (std::vector<uint8_t>{1, 3, 3, 7}));
  EXPECT_EQ(req.uid, Uid::Make(4, 99));
}

TEST(FrameCodec, StatusMessageSurvives) {
  const Message msg = MakeMessage(MessageType::kWriteReply);
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
  ASSERT_EQ(d.error, FrameError::kOk);
  const auto& rep = std::get<WriteReply>(d.msg.payload);
  EXPECT_TRUE(rep.status.IsStaleEpoch());
  EXPECT_EQ(rep.status.message(), "old view");
}

TEST(FrameCodec, MismatchedPayloadVariantRefusesToEncode) {
  Message m;
  m.type = MessageType::kParityAck;
  m.payload = ReadReq{1, 0, 0};  // wrong alternative for the type
  EXPECT_TRUE(EncodeFrame(m).empty());
}

TEST(FrameCodec, DefaultEpochIsZero) {
  const Message msg = MakeMessage(MessageType::kParityAck);
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
  ASSERT_EQ(d.error, FrameError::kOk);
  EXPECT_EQ(d.stream_epoch, 0);
}

// ---------------------------------------------------------------------------
// Malformed corpus: every damage shape maps to its FrameError, cleanly.
// ---------------------------------------------------------------------------

TEST(FrameCodec, TruncationAtEveryPrefixLength) {
  const Message msg = MakeMessage(MessageType::kParityUpdate);
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  for (size_t n = 0; n < frame.size(); ++n) {
    const DecodedFrame d = DecodeFrame(frame.data(), n);
    if (n < kFrameHeaderBytes) {
      EXPECT_EQ(d.error, FrameError::kTruncatedHeader) << n;
    } else {
      EXPECT_EQ(d.error, FrameError::kTruncatedPayload) << n;
    }
  }
}

TEST(FrameCodec, BadMagic) {
  std::vector<uint8_t> frame = EncodeFrame(MakeMessage(MessageType::kReadReq));
  frame[0] ^= 0xFF;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadMagic);
  size_t sz = 0;
  EXPECT_EQ(PeekFrameSize(frame.data(), frame.size(), &sz),
            FrameError::kBadMagic);
}

TEST(FrameCodec, BadVersion) {
  std::vector<uint8_t> frame = EncodeFrame(MakeMessage(MessageType::kReadReq));
  frame[4] = kFrameVersion + 1;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadVersion);
}

TEST(FrameCodec, HostileLength) {
  std::vector<uint8_t> frame = EncodeFrame(MakeMessage(MessageType::kReadReq));
  const uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    frame[24 + static_cast<size_t>(i)] = static_cast<uint8_t>(huge >> (8 * i));
  }
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadLength);
}

TEST(FrameCodec, PayloadBitFlipIsBadCrc) {
  std::vector<uint8_t> frame =
      EncodeFrame(MakeMessage(MessageType::kSpareWriteReq));
  frame[kFrameHeaderBytes + 3] ^= 0x10;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadCrc);
}

// The CRC covers the header too: damage to routing/fencing fields (from,
// to, seq, flags) must not produce a deliverable frame — a flipped `to`
// once routed a write to the wrong site and corrupted its store.
TEST(FrameCodec, HeaderBitFlipIsBadCrc) {
  const Message msg = MakeMessage(MessageType::kSpareWriteReq);
  for (const size_t offset : {6u, 7u, 8u, 12u, 16u, 23u}) {
    std::vector<uint8_t> frame = EncodeFrame(msg, 3);
    frame[offset] ^= 0x01;
    EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
              FrameError::kBadCrc)
        << "flip at header offset " << offset;
  }
}

TEST(FrameCodec, CrcFieldBitFlipIsBadCrc) {
  std::vector<uint8_t> frame = EncodeFrame(MakeMessage(MessageType::kReadReq));
  frame[29] ^= 0x80;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadCrc);
}

TEST(FrameCodec, UnknownTypeSkipsFrameButKeepsFraming) {
  std::vector<uint8_t> frame = EncodeFrame(MakeMessage(MessageType::kReadReq));
  frame[5] = 200;  // outside the MessageType enum
  const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
  EXPECT_EQ(d.error, FrameError::kBadType);
  // Framing stays valid so a stream reader can skip exactly this frame.
  EXPECT_EQ(d.frame_size, frame.size());
  size_t sz = 0;
  EXPECT_EQ(PeekFrameSize(frame.data(), frame.size(), &sz),
            FrameError::kBadType);
  EXPECT_EQ(sz, frame.size());
}

TEST(FrameCodec, StructurallyShortPayloadIsBadPayload) {
  // A frame whose CRC is valid but whose payload is too short for its
  // type: 4 bytes where WriteReply needs at least 9.
  Message m;
  m.type = MessageType::kWriteReply;
  m.payload = WriteReply{1, Status::OK()};
  std::vector<uint8_t> frame = EncodeFrame(m);
  // Keep header + 4 payload bytes, restamp length and CRC like an
  // attacker who can compute checksums.
  frame.resize(kFrameHeaderBytes + 4);
  const uint32_t len = 4;
  for (int i = 0; i < 4; ++i) {
    frame[24 + static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
  }
  uint32_t crc = Crc32cExtend(Crc32c(frame.data(), 28),
                              frame.data() + kFrameHeaderBytes, len);
  for (int i = 0; i < 4; ++i) {
    frame[28 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadPayload);
}

TEST(FrameCodec, TrailingGarbageAfterPayloadIsBadPayload) {
  Message m;
  m.type = MessageType::kParityAck;
  m.payload = ParityAck{9};
  std::vector<uint8_t> frame = EncodeFrame(m);
  frame.push_back(0xEE);  // one byte the decoder must refuse to ignore
  const uint32_t len =
      static_cast<uint32_t>(frame.size() - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    frame[24 + static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
  }
  uint32_t crc = Crc32cExtend(Crc32c(frame.data(), 28),
                              frame.data() + kFrameHeaderBytes, len);
  for (int i = 0; i < 4; ++i) {
    frame[28 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadPayload);
}

TEST(FrameCodec, HostileElementCountIsBadPayload) {
  // A batch frame claiming 2^32-1 entries in a tiny payload must fail
  // structurally before reserving anything.
  Message m;
  m.type = MessageType::kParityBatch;
  m.payload = ParityBatchFrame{};
  std::vector<uint8_t> frame = EncodeFrame(m);
  // Entry count lives after batch_seq (8) + group (4).
  const size_t count_off = kFrameHeaderBytes + 12;
  for (int i = 0; i < 4; ++i) frame[count_off + static_cast<size_t>(i)] = 0xFF;
  const uint32_t len =
      static_cast<uint32_t>(frame.size() - kFrameHeaderBytes);
  uint32_t crc = Crc32cExtend(Crc32c(frame.data(), 28),
                              frame.data() + kFrameHeaderBytes, len);
  for (int i = 0; i < 4; ++i) {
    frame[28 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size()).error,
            FrameError::kBadPayload);
}

// ---------------------------------------------------------------------------
// Fuzz: DecodeFrame never crashes or reads out of bounds, whatever the
// input (the suite runs under ASan/UBSan in CI).
// ---------------------------------------------------------------------------

TEST(FrameCodec, FuzzRandomBuffers) {
  Rng rng(0xF0221);
  for (int iter = 0; iter < 5000; ++iter) {
    const size_t n = rng.Uniform(300);
    std::vector<uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    const DecodedFrame d = DecodeFrame(buf.data(), buf.size());
    EXPECT_NE(d.error, FrameError::kOk);  // 2^-32-grade luck excluded
  }
}

TEST(FrameCodec, FuzzMutatedValidFrames) {
  Rng rng(0xF0222);
  FrameCounters counters;
  for (int iter = 0; iter < 5000; ++iter) {
    const MessageType type =
        static_cast<MessageType>(rng.Uniform(kNumMessageTypes));
    std::vector<uint8_t> frame = EncodeFrame(MakeMessage(type), 1);
    const size_t flips = 1 + rng.Uniform(4);
    std::set<size_t> bits;
    while (bits.size() < flips) bits.insert(rng.Uniform(frame.size() * 8));
    // Distinct bits only: two flips of the same bit would cancel and
    // legitimately decode as kOk.
    for (const size_t bit : bits) {
      frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    const DecodedFrame d = DecodeFrame(frame.data(), frame.size());
    counters.Count(d.error);
  }
  // Every rejection was counted; a flipped frame decoding as kOk would
  // require a CRC collision.
  EXPECT_EQ(counters.Get(FrameError::kOk), 0u);
  EXPECT_EQ(counters.Rejected(), 5000u);
}

// ---------------------------------------------------------------------------
// FrameCounters bookkeeping.
// ---------------------------------------------------------------------------

TEST(FrameCounters, CountsAndFormats) {
  FrameCounters c;
  c.Count(FrameError::kOk);
  c.Count(FrameError::kOk);
  c.Count(FrameError::kBadCrc);
  c.Count(FrameError::kBadMagic);
  c.Count(FrameError::kBadMagic);
  c.stale_stream.fetch_add(3);
  EXPECT_EQ(c.Get(FrameError::kOk), 2u);
  EXPECT_EQ(c.Rejected(), 3u);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("decoded=2"), std::string::npos);
  EXPECT_NE(s.find("rejected=3"), std::string::npos);
  EXPECT_NE(s.find("bad_magic=2"), std::string::npos);
  EXPECT_NE(s.find("bad_crc=1"), std::string::npos);
  EXPECT_NE(s.find("stale_stream=3"), std::string::npos);
  EXPECT_EQ(s.find("bad_type"), std::string::npos);
}

}  // namespace
}  // namespace radd
