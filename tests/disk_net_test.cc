// Unit tests for the simulated disk and network substrates.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "disk/block_store.h"
#include "disk/disk.h"
#include "net/network.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size = 256) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

// ---------------------------------------------------------------------------
// SimDisk.
// ---------------------------------------------------------------------------

TEST(SimDisk, UnwrittenBlockIsZeroInvalid) {
  SimDisk disk(16, 256);
  Result<BlockRecord> r = disk.Read(3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->data.IsZero());
  EXPECT_FALSE(r->uid.valid());
  EXPECT_FALSE(disk.IsValid(3));
}

TEST(SimDisk, WriteReadRoundTrip) {
  SimDisk disk(16, 256);
  Uid u = Uid::Make(1, 7);
  ASSERT_TRUE(disk.Write(3, Pat(1), u).ok());
  Result<BlockRecord> r = disk.Read(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(1));
  EXPECT_EQ(r->uid, u);
  EXPECT_TRUE(disk.IsValid(3));
}

TEST(SimDisk, OutOfRangeRejected) {
  SimDisk disk(16, 256);
  EXPECT_TRUE(disk.Read(16).status().IsNotFound());
  EXPECT_TRUE(disk.Write(99, Pat(1), Uid::Make(1, 1)).IsNotFound());
}

TEST(SimDisk, WrongBlockSizeRejected) {
  SimDisk disk(16, 256);
  EXPECT_TRUE(disk.Write(0, Block(128), Uid::Make(1, 1)).IsInvalidArgument());
}

TEST(SimDisk, FailLosesEverythingUntilRewrite) {
  SimDisk disk(4, 256);
  ASSERT_TRUE(disk.Write(0, Pat(1), Uid::Make(1, 1)).ok());
  disk.Fail();
  EXPECT_TRUE(disk.failed());
  EXPECT_EQ(disk.lost_count(), 4u);
  EXPECT_TRUE(disk.Read(0).status().IsDataLoss());
  EXPECT_TRUE(disk.Read(3).status().IsDataLoss());  // even unwritten ones
  ASSERT_TRUE(disk.Write(0, Pat(2), Uid::Make(1, 2)).ok());
  EXPECT_EQ(disk.lost_count(), 3u);
  Result<BlockRecord> r = disk.Read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(2));
}

TEST(SimDisk, ApplyMaskXorsAndRecordsUid) {
  SimDisk disk(4, 256);
  ASSERT_TRUE(disk.Write(1, Pat(1), Uid::Make(1, 1)).ok());
  Result<ChangeMask> mask = ChangeMask::Diff(Pat(1), Pat(2));
  ASSERT_TRUE(mask.ok());
  Uid u = Uid::Make(3, 9);
  ASSERT_TRUE(disk.ApplyMask(1, *mask, u, 2, 6).ok());
  Result<BlockRecord> r = disk.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(2));
  ASSERT_EQ(r->uid_array.size(), 6u);
  EXPECT_EQ(r->uid_array[2], u);
  EXPECT_FALSE(r->uid_array[0].valid());
}

TEST(SimDisk, ApplyMaskRejectsBadPosition) {
  SimDisk disk(4, 256);
  Result<ChangeMask> mask = ChangeMask::Diff(Block(256), Pat(1));
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(
      disk.ApplyMask(0, *mask, Uid::Make(1, 1), 6, 6).IsInvalidArgument());
}

TEST(SimDisk, InvalidateClearsUidKeepsData) {
  SimDisk disk(4, 256);
  ASSERT_TRUE(disk.Write(0, Pat(1), Uid::Make(1, 1)).ok());
  ASSERT_TRUE(disk.Invalidate(0).ok());
  EXPECT_FALSE(disk.IsValid(0));
  Result<BlockRecord> r = disk.Read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(1));
}

TEST(SimDisk, WriteRecordPreservesSpareBookkeeping) {
  SimDisk disk(4, 256);
  BlockRecord rec(256);
  rec.data = Pat(5);
  rec.uid = Uid::Make(2, 2);
  rec.logical_uid = Uid::Make(4, 4);
  rec.spare_for = 3;
  ASSERT_TRUE(disk.WriteRecord(1, rec).ok());
  Result<BlockRecord> r = disk.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->logical_uid, Uid::Make(4, 4));
  EXPECT_EQ(r->spare_for, 3);
  // A plain Write resets the bookkeeping.
  ASSERT_TRUE(disk.Write(1, Pat(6), Uid::Make(2, 3)).ok());
  r = disk.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->logical_uid.valid());
  EXPECT_EQ(r->spare_for, -1);
}

// ---------------------------------------------------------------------------
// DiskArray.
// ---------------------------------------------------------------------------

TEST(DiskArray, FlatAddressingAcrossDisks) {
  DiskArray arr(4, 8, 256);
  EXPECT_EQ(arr.total_blocks(), 32u);
  EXPECT_EQ(arr.DiskOf(0), 0);
  EXPECT_EQ(arr.DiskOf(7), 0);
  EXPECT_EQ(arr.DiskOf(8), 1);
  EXPECT_EQ(arr.DiskOf(31), 3);
  ASSERT_TRUE(arr.Write(17, Pat(1), Uid::Make(1, 1)).ok());
  Result<BlockRecord> r = arr.Read(17);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(1));
}

TEST(DiskArray, FailDiskOnlyAffectsThatDisk) {
  DiskArray arr(4, 8, 256);
  ASSERT_TRUE(arr.Write(3, Pat(1), Uid::Make(1, 1)).ok());   // disk 0
  ASSERT_TRUE(arr.Write(20, Pat(2), Uid::Make(1, 2)).ok());  // disk 2
  ASSERT_TRUE(arr.FailDisk(2).ok());
  EXPECT_TRUE(arr.DiskFailed(2));
  EXPECT_FALSE(arr.DiskFailed(0));
  EXPECT_TRUE(arr.Read(20).status().IsDataLoss());
  EXPECT_TRUE(arr.Read(3).ok());
  std::vector<BlockNum> lost = arr.LostBlocks();
  EXPECT_EQ(lost.size(), 8u);
  for (BlockNum b : lost) EXPECT_EQ(arr.DiskOf(b), 2);
}

TEST(DiskArray, FailDiskOutOfRange) {
  DiskArray arr(2, 4, 256);
  EXPECT_TRUE(arr.FailDisk(5).IsInvalidArgument());
  EXPECT_TRUE(arr.FailDisk(-1).IsInvalidArgument());
}

TEST(PlainStore, CountsPhysicalOps) {
  DiskArray arr(1, 8, 256);
  PlainStore store(&arr);
  (void)store.Write(0, Pat(1), Uid::Make(1, 1));
  (void)store.Read(0);
  (void)store.Read(0);
  (void)store.Peek(0);  // uncounted
  OpCounts ops = store.PhysicalOps();
  EXPECT_EQ(ops.local_writes, 1u);
  EXPECT_EQ(ops.local_reads, 2u);
}

// ---------------------------------------------------------------------------
// Network.
// ---------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_, NetworkModel{}, 7) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  SimTime delivered_at = 0;
  net_.RegisterHandler(1, [&](const Message&) { delivered_at = sim_.Now(); });
  Message m;
  m.from = 0;
  m.to = 1;
  m.wire_bytes = 100;
  net_.Send(std::move(m));
  sim_.Run();
  EXPECT_EQ(delivered_at, Micros(22500));
  EXPECT_EQ(net_.stats().Get("net.bytes"), 100u);
  EXPECT_EQ(net_.stats().Get("net.messages"), 1u);
}

TEST_F(NetworkTest, SelfSendIsFreeAndInstant) {
  int got = 0;
  net_.RegisterHandler(2, [&](const Message&) { ++got; });
  Message m;
  m.from = 2;
  m.to = 2;
  m.wire_bytes = 50;
  net_.Send(std::move(m));
  sim_.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net_.stats().Get("net.bytes"), 0u);
}

TEST_F(NetworkTest, PayloadRoundTrips) {
  uint64_t got = 0;
  net_.RegisterHandler(1, [&](const Message& m) {
    got = std::get<ReadReq>(m.payload).op;
  });
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MessageType::kReadReq;
  m.payload = ReadReq{42, 0, 0};
  net_.Send(std::move(m));
  sim_.Run();
  EXPECT_EQ(got, 42u);
}

TEST_F(NetworkTest, PartitionsBlockCrossTraffic) {
  int a_got = 0, b_got = 0;
  net_.RegisterHandler(0, [&](const Message&) { ++a_got; });
  net_.RegisterHandler(3, [&](const Message&) { ++b_got; });
  net_.SetPartitions({{0, 1, 2}, {3, 4}});
  EXPECT_TRUE(net_.CanCommunicate(0, 1));
  EXPECT_FALSE(net_.CanCommunicate(0, 3));

  Message cross;
  cross.from = 0;
  cross.to = 3;
  net_.Send(std::move(cross));
  Message within;
  within.from = 4;
  within.to = 3;
  net_.Send(std::move(within));
  sim_.Run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(net_.stats().Get("net.partition_blocked"), 1u);

  net_.Heal();
  EXPECT_TRUE(net_.CanCommunicate(0, 3));
  Message again;
  again.from = 0;
  again.to = 3;
  net_.Send(std::move(again));
  sim_.Run();
  EXPECT_EQ(b_got, 2);
}

TEST_F(NetworkTest, DropProbabilityLosesMessages) {
  net_.set_drop_probability(0.5);
  int got = 0;
  net_.RegisterHandler(1, [&](const Message&) { ++got; });
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    net_.Send(std::move(m));
  }
  sim_.Run();
  EXPECT_GT(got, 60);
  EXPECT_LT(got, 140);
  EXPECT_EQ(net_.stats().Get("net.dropped") + static_cast<uint64_t>(got),
            200u);
}

TEST_F(NetworkTest, PerTypeByteAccounting) {
  net_.RegisterHandler(1, [](const Message&) {});
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MessageType::kParityUpdate;
  m.wire_bytes = 132;
  net_.Send(std::move(m));
  sim_.Run();
  EXPECT_EQ(net_.stats().Get("net.bytes.parity_update"), 132u);
  EXPECT_EQ(net_.stats().Get("net.messages.parity_update"), 1u);
}

// ---------------------------------------------------------------------------
// Fault injection: latent sector errors, silent corruption, scripted and
// random network faults.
// ---------------------------------------------------------------------------

TEST(SimDisk, LatentErrorFailsReadsUntilRewrite) {
  SimDisk disk(4, 256);
  ASSERT_TRUE(disk.Write(1, Pat(1), Uid::Make(1, 1)).ok());
  ASSERT_TRUE(disk.InjectLatentError(1).ok());
  // The sector is unreadable, but the disk as a whole is healthy.
  EXPECT_TRUE(disk.Read(1).status().IsDataLoss());
  EXPECT_FALSE(disk.failed());
  EXPECT_TRUE(disk.Read(0).ok());  // other blocks unaffected
  // A rewrite (e.g. reconstruction writing the block back) clears it.
  ASSERT_TRUE(disk.Write(1, Pat(2), Uid::Make(1, 2)).ok());
  Result<BlockRecord> r = disk.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(2));
}

TEST(SimDisk, SilentCorruptionIsCaughtByChecksum) {
  SimDisk disk(4, 256);
  ASSERT_TRUE(disk.Write(2, Pat(3), Uid::Make(1, 1)).ok());
  Result<bool> rotted = disk.CorruptBlock(2, /*seed=*/42, /*bits=*/3);
  ASSERT_TRUE(rotted.ok());
  EXPECT_TRUE(*rotted);
  // The end-to-end checksum turns silent bit rot into detected DataLoss
  // instead of serving the rotten bytes.
  EXPECT_TRUE(disk.Read(2).status().IsDataLoss());
  EXPECT_GE(disk.corruptions_detected(), 1u);
  // A fresh write restores the block.
  ASSERT_TRUE(disk.Write(2, Pat(4), Uid::Make(1, 2)).ok());
  Result<BlockRecord> r = disk.Read(2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(4));
}

TEST(SimDisk, CorruptingUnmaterializedBlockIsANoOp) {
  SimDisk disk(4, 256);
  Result<bool> rotted = disk.CorruptBlock(0, /*seed=*/7);
  ASSERT_TRUE(rotted.ok());
  EXPECT_FALSE(*rotted);  // nothing stored, nothing to rot
  EXPECT_TRUE(disk.Read(0).ok());
}

TEST_F(NetworkTest, FaultHookDropsAreCountedPerType) {
  int got = 0;
  net_.RegisterHandler(1, [&](const Message&) { ++got; });
  net_.SetFaultHook("parity_update",
                    [](const Message&) { return FaultAction::kDrop; });
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = (i % 2 == 0) ? MessageType::kParityUpdate
                           : MessageType::kWriteReq;
    net_.Send(std::move(m));
  }
  sim_.Run();
  EXPECT_EQ(got, 2);  // only the write_reqs survive
  EXPECT_EQ(net_.stats().Get("net.dropped"), 3u);
  EXPECT_EQ(net_.stats().Get("net.drop.parity_update"), 3u);
  EXPECT_EQ(net_.stats().Get("net.drop.write_req"), 0u);
}

TEST_F(NetworkTest, FaultHookDuplicatesAreCountedPerType) {
  int got = 0;
  net_.RegisterHandler(1, [&](const Message&) { ++got; });
  net_.SetFaultHook("parity_ack",
                    [](const Message&) { return FaultAction::kDuplicate; });
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MessageType::kParityAck;
  net_.Send(std::move(m));
  sim_.Run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net_.stats().Get("net.duplicated"), 1u);
  EXPECT_EQ(net_.stats().Get("net.dup.parity_ack"), 1u);
}

TEST_F(NetworkTest, RandomDuplicatesAreCountedPerType) {
  net_.set_duplicate_probability(1.0);
  int got = 0;
  net_.RegisterHandler(1, [&](const Message&) { ++got; });
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kWriteReq;
    net_.Send(std::move(m));
  }
  sim_.Run();
  EXPECT_EQ(got, 20);
  EXPECT_EQ(net_.stats().Get("net.duplicated"), 10u);
  EXPECT_EQ(net_.stats().Get("net.dup.write_req"), 10u);
}

TEST_F(NetworkTest, ReorderJitterReordersAndCounts) {
  net_.set_reorder_jitter(Millis(50));
  std::vector<uint64_t> order;
  net_.RegisterHandler(1, [&](const Message& m) { order.push_back(m.seq); });
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MessageType::kWriteReq;
    net_.Send(std::move(m));
  }
  sim_.Run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "jitter this large must overtake some earlier send";
  EXPECT_GT(net_.stats().Get("net.reordered"), 0u);
  EXPECT_EQ(net_.stats().Get("net.reorder.write_req"),
            net_.stats().Get("net.reordered"));
}

}  // namespace
}  // namespace radd
