// Unit tests for workload generation, the §7.4 buffer-pool model, and
// trace (de)serialization.

#include "workload/workload.h"

#include <gtest/gtest.h>

namespace radd {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig c;
  c.num_members = 6;
  c.blocks_per_member = 32;
  c.block_size = 4096;
  c.record_size = 100;
  return c;
}

TEST(WorkloadGenerator, Deterministic) {
  WorkloadGenerator a(SmallConfig(), 42), b(SmallConfig(), 42);
  for (int i = 0; i < 100; ++i) {
    Operation x = a.Next(), y = b.Next();
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.member, y.member);
    EXPECT_EQ(x.block, y.block);
    EXPECT_EQ(x.record_offset, y.record_offset);
  }
}

TEST(WorkloadGenerator, ReadFractionRespected) {
  WorkloadConfig c = SmallConfig();
  c.read_fraction = 2.0 / 3.0;  // Figure 7's 2:1 read:write mix
  WorkloadGenerator gen(c, 1);
  int reads = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) reads += gen.Next().IsRead() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(reads) / n, 2.0 / 3.0, 0.02);
}

TEST(WorkloadGenerator, AddressesInRange) {
  WorkloadGenerator gen(SmallConfig(), 9);
  for (int i = 0; i < 2000; ++i) {
    Operation op = gen.Next();
    EXPECT_LT(op.member, 6);
    EXPECT_LT(op.block, 32u);
    if (!op.IsRead()) {
      EXPECT_EQ(op.record_size, 100u);
      EXPECT_LE(op.record_offset + op.record_size, 4096u);
      EXPECT_EQ(op.record_offset % 100, 0u);
    }
  }
}

TEST(BufferPoolModel, FlushesAfterLocalityThreshold) {
  // §7.4: "the average block being changed four times in memory before it
  // is returned to disk".
  BufferPoolModel pool(4096, 4);
  Operation op;
  op.kind = Operation::Kind::kUpdate;
  op.member = 0;
  op.block = 7;
  op.record_size = 100;
  std::vector<uint8_t> payload(100, 0xAB);
  Block disk(4096);

  for (int i = 0; i < 3; ++i) {
    op.record_offset = static_cast<size_t>(i) * 100;
    EXPECT_FALSE(pool.ApplyUpdate(op, payload, disk).has_value());
  }
  EXPECT_EQ(pool.dirty_blocks(), 1u);
  op.record_offset = 300;
  auto flush = pool.ApplyUpdate(op, payload, disk);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->block, 7u);
  EXPECT_EQ(pool.dirty_blocks(), 0u);

  // The flushed delta covers all four records.
  Result<ChangeMask> mask =
      ChangeMask::Diff(flush->old_contents, flush->new_contents);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->ChangedBytes(), 400u);
}

TEST(BufferPoolModel, DistinctBlocksTrackedSeparately) {
  BufferPoolModel pool(4096, 2);
  std::vector<uint8_t> payload(100, 1);
  Block disk(4096);
  Operation a;
  a.kind = Operation::Kind::kUpdate;
  a.block = 1;
  a.record_size = 100;
  Operation b = a;
  b.block = 2;
  EXPECT_FALSE(pool.ApplyUpdate(a, payload, disk).has_value());
  EXPECT_FALSE(pool.ApplyUpdate(b, payload, disk).has_value());
  EXPECT_EQ(pool.dirty_blocks(), 2u);
  EXPECT_TRUE(pool.ApplyUpdate(a, payload, disk).has_value());
  EXPECT_EQ(pool.dirty_blocks(), 1u);
}

TEST(BufferPoolModel, DrainAllEmitsEverything) {
  BufferPoolModel pool(4096, 10);
  std::vector<uint8_t> payload(100, 1);
  Block disk(4096);
  for (int blk = 0; blk < 5; ++blk) {
    Operation op;
    op.kind = Operation::Kind::kUpdate;
    op.block = static_cast<BlockNum>(blk);
    op.record_size = 100;
    pool.ApplyUpdate(op, payload, disk);
  }
  std::vector<BufferPoolModel::Flush> flushed = pool.DrainAll();
  EXPECT_EQ(flushed.size(), 5u);
  EXPECT_EQ(pool.dirty_blocks(), 0u);
}

TEST(Trace, RoundTripsThroughText) {
  WorkloadGenerator gen(SmallConfig(), 3);
  std::vector<Operation> trace = gen.Generate(50);
  std::string text = TraceToString(trace);
  Result<std::vector<Operation>> back = TraceFromString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*back)[i].kind, trace[i].kind);
    EXPECT_EQ((*back)[i].member, trace[i].member);
    EXPECT_EQ((*back)[i].block, trace[i].block);
    EXPECT_EQ((*back)[i].record_offset, trace[i].record_offset);
  }
}

TEST(Trace, RejectsGarbage) {
  EXPECT_FALSE(TraceFromString("X 1 2\n").ok());
  EXPECT_FALSE(TraceFromString("U 1\n").ok());
  EXPECT_TRUE(TraceFromString("# comment\nR 1 2\n").ok());
}

TEST(Trace, FileRoundTrip) {
  WorkloadGenerator gen(SmallConfig(), 4);
  std::vector<Operation> trace = gen.Generate(20);
  std::string path = ::testing::TempDir() + "/radd_trace.txt";
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  Result<std::vector<Operation>> back = LoadTrace(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), trace.size());
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_TRUE(LoadTrace("/nonexistent/file.txt").status().IsNotFound());
}

}  // namespace
}  // namespace radd
