// Tests for the fault-injection subsystem: FaultPlan determinism, the
// chaos harness's replayability contract, and targeted fault scenarios
// that the random schedules only cover probabilistically.

#include "fault/chaos.h"

#include <gtest/gtest.h>

#include "core/node.h"
#include "fault/fault.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: seeded schedules.
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSamePlan) {
  FaultPlanConfig cfg;
  FaultPlan a = FaultPlan::Random(99, cfg);
  FaultPlan b = FaultPlan::Random(99, cfg);
  EXPECT_EQ(a.ToString(), b.ToString());
  FaultPlan c = FaultPlan::Random(100, cfg);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(FaultPlan, GuaranteesCrashAndLatentCoverage) {
  FaultPlanConfig cfg;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan p = FaultPlan::Random(seed, cfg);
    ASSERT_EQ(p.episodes.size(), size_t(cfg.episodes)) << "seed " << seed;
    bool crash = false, latent = false;
    for (const Episode& e : p.episodes) {
      crash = crash || e.kind == FaultKind::kCrashRestart;
      latent = latent || e.kind == FaultKind::kLatentErrors;
      EXPECT_GE(e.member, 0);
      EXPECT_LT(e.member, cfg.members);
      EXPECT_GE(e.duration, cfg.min_duration);
      EXPECT_LE(e.duration, cfg.max_duration);
      EXPECT_LT(e.fault_offset, e.duration);
    }
    EXPECT_TRUE(crash) << "seed " << seed << " has no crash-restart";
    EXPECT_TRUE(latent) << "seed " << seed << " has no latent-error burst";
  }
}

TEST(FaultPlan, DoubleFaultsLeaveBaseScheduleUnchanged) {
  // Second faults ride a separate RNG stream drawn after the base
  // schedule, so turning the mode on must not shift any base field.
  FaultPlanConfig cfg;
  FaultPlan off = FaultPlan::Random(42, cfg);
  cfg.double_faults = true;
  FaultPlan on = FaultPlan::Random(42, cfg);
  ASSERT_EQ(off.episodes.size(), on.episodes.size());
  for (size_t i = 0; i < off.episodes.size(); ++i) {
    EXPECT_EQ(off.episodes[i].kind, on.episodes[i].kind);
    EXPECT_EQ(off.episodes[i].member, on.episodes[i].member);
    EXPECT_EQ(off.episodes[i].duration, on.episodes[i].duration);
    EXPECT_EQ(off.episodes[i].fault_offset, on.episodes[i].fault_offset);
    EXPECT_EQ(off.episodes[i].second_member, -1);
  }
}

TEST(FaultPlan, DoubleFaultsTargetDistinctSitesWithSaneOffsets) {
  FaultPlanConfig cfg;
  cfg.double_faults = true;
  int attached = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan p = FaultPlan::Random(seed, cfg);
    for (const Episode& e : p.episodes) {
      if (e.second_member < 0) continue;
      ++attached;
      // Only site-killing kinds gain a second strike, on a different site.
      EXPECT_TRUE(e.kind == FaultKind::kCrashRestart ||
                  e.kind == FaultKind::kDisaster ||
                  e.kind == FaultKind::kDiskFailure);
      EXPECT_NE(e.second_member, e.member);
      EXPECT_LT(e.second_member, cfg.members);
      EXPECT_TRUE(e.second_kind == FaultKind::kCrashRestart ||
                  e.second_kind == FaultKind::kDisaster ||
                  e.second_kind == FaultKind::kDiskFailure);
      EXPECT_GE(e.second_offset, e.fault_offset);
      // Either overlapping the window or during recovery, never later than
      // a quarter-window past it.
      EXPECT_LE(e.second_offset, e.duration + e.duration / 4);
    }
  }
  EXPECT_GT(attached, 0) << "no schedule gained a second fault";
}

// ---------------------------------------------------------------------------
// ChaosHarness: random schedules hold the invariants, and replay exactly.
// ---------------------------------------------------------------------------

TEST(ChaosHarness, FixedSeedSchedulesHoldInvariants) {
  ChaosHarness harness;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_GT(r.ops_issued, 0u);
    EXPECT_GT(r.ops_acked, 0u);
    EXPECT_GT(r.reads_validated, 0u);
  }
}

TEST(ChaosHarness, ReplayIsDeterministic) {
  // The debuggability contract: a failing seed printed by a bulk run must
  // reproduce bit-for-bit. Two runs of one seed yield identical reports.
  ChaosHarness harness;
  ChaosReport a = harness.Run(36);
  ChaosReport b = harness.Run(36);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.plan, b.plan);
}

// ---------------------------------------------------------------------------
// Autopilot: the control plane heals without manual repair.
// ---------------------------------------------------------------------------

TEST(ChaosHarness, AutopilotSchedulesConvergeWithoutManualRepair) {
  ChaosConfig cfg;
  cfg.autopilot = true;
  ChaosHarness harness(cfg);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_TRUE(r.autopilot);
    EXPECT_GT(r.ops_acked, 0u);
    // Every plan contains a crash episode, so real healing must have
    // happened: nonzero convergence time and a nonempty sweep.
    EXPECT_GT(r.convergence_max, 0u);
    EXPECT_GT(r.sweep_rows, 0u);
    EXPECT_LE(r.convergence_max, cfg.convergence_budget);
  }
}

TEST(ChaosHarness, AutopilotReplayIsDeterministic) {
  ChaosConfig cfg;
  cfg.autopilot = true;
  ChaosHarness harness(cfg);
  ChaosReport a = harness.Run(7);
  ChaosReport b = harness.Run(7);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.plan, b.plan);
}

// ---------------------------------------------------------------------------
// P+Q double-failure schedules: two sites die per episode and the ledger
// still balances.
// ---------------------------------------------------------------------------

TEST(ChaosHarness, PqDoubleFailureSchedulesHoldInvariants) {
  ChaosConfig cfg;
  cfg.parities = 2;
  cfg.plan.double_faults = true;
  ChaosHarness harness(cfg);
  bool saw_double = false;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_EQ(r.parities, 2);
    EXPECT_NE(r.Summary().find("scheme=pq"), std::string::npos);
    // Every injected fault of an ok schedule was survived.
    uint64_t injected = 0, survived = 0;
    for (const auto& [kind, n] : r.injected_by_kind) injected += n;
    for (const auto& [kind, n] : r.survived_by_kind) survived += n;
    EXPECT_EQ(injected, survived) << r.Summary();
    saw_double = saw_double || r.plan.find("+") != std::string::npos;
  }
  EXPECT_TRUE(saw_double) << "no schedule exercised a second fault";
}

TEST(ChaosHarness, PqAutopilotConvergesThroughDoubleFailures) {
  ChaosConfig cfg;
  cfg.parities = 2;
  cfg.plan.double_faults = true;
  cfg.autopilot = true;
  ChaosHarness harness(cfg);
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_TRUE(r.autopilot);
    EXPECT_GT(r.sweep_rows, 0u);
    EXPECT_LE(r.convergence_max, cfg.convergence_budget);
  }
}

TEST(ChaosHarness, PqReplayIsDeterministic) {
  ChaosConfig cfg;
  cfg.parities = 2;
  cfg.plan.double_faults = true;
  ChaosHarness harness(cfg);
  ChaosReport a = harness.Run(12);
  ChaosReport b = harness.Run(12);
  EXPECT_EQ(a.Summary(), b.Summary());
}

// ---------------------------------------------------------------------------
// Targeted scenarios on the protocol stack.
// ---------------------------------------------------------------------------

class ChaosNodeTest : public ::testing::Test {
 protected:
  ChaosNodeTest() {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 256;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0xc4a05);
    cluster_ = std::make_unique<Cluster>(6, sc);
    NodeConfig nc;
    nc.retry_timeout = Millis(80);
    nc.max_retries = 5;
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }
  /// Physical row on member `m`'s (single-disk) site for data block `idx`.
  BlockNum RowOf(int m, BlockNum idx) {
    return sys_->layout().DataToRow(static_cast<SiteId>(m), idx);
  }
  void ScrubAll() {
    for (int m = 0; m < 6; ++m) {
      ASSERT_TRUE(sys_->group()->ScrubData(m).ok());
      ASSERT_TRUE(sys_->group()->ScrubParity(m).ok());
    }
  }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
};

TEST_F(ChaosNodeTest, CrashMidWriteBetweenW1AndParityAck) {
  ASSERT_TRUE(sys_->Write(SiteOf(0), 2, 0, Pat(1)).status.ok());
  sim_->Run();

  // Freeze the write protocol between W1 and the parity ack: the home
  // applies the data block, but its parity update never arrives.
  net_->SetFaultHook("parity_update",
                     [](const Message&) { return FaultAction::kDrop; });
  bool write_done = false;
  Status write_status;
  sys_->AsyncWrite(SiteOf(0), 2, 0, Pat(2), [&](Status st, SimTime) {
    write_done = true;
    write_status = st;
  });
  // Past W1 (client->home 22.5 ms + disk 30 ms) but before any give-up.
  sim_->RunUntil(sim_->Now() + Millis(60));

  // The home crashes holding the half-committed write, and restarts cold.
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  sys_->ResetNodeVolatileState(SiteOf(2));
  net_->ClearFaultHooks();
  sim_->Run();
  // The client saw *some* completion — possibly a degraded-path success,
  // possibly NetworkError — but never a hang.
  ASSERT_TRUE(write_done) << "write hung after crash";

  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(2)).ok());
  ASSERT_TRUE(sys_->group()->RunRecovery(2, true).ok());
  ScrubAll();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());

  // Atomicity across the crash: the block is the old or the new value,
  // never a torn mix; and an acked write must not be lost.
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  if (write_status.ok()) {
    EXPECT_EQ(r.data, Pat(2)) << "acknowledged write was lost";
  } else {
    EXPECT_TRUE(r.data == Pat(1) || r.data == Pat(2)) << "torn write";
  }
}

TEST_F(ChaosNodeTest, LatentErrorReadRoutesToReconstruction) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 3, Pat(7)).status.ok());
  sim_->Run();
  ASSERT_TRUE(
      cluster_->site(SiteOf(2))->disks()->InjectLatentError(RowOf(2, 3)).ok());

  // The home's medium reports the sector unreadable; the read must fall
  // back to formula (2) reconstruction and still return the data.
  auto r = sys_->Read(SiteOf(0), 2, 3);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(7));
  sim_->Run();
  EXPECT_GT(sys_->stats().Get("node.reconstructions"), 0u);
}

TEST_F(ChaosNodeTest, SilentCorruptionDetectedAndReconstructed) {
  ASSERT_TRUE(sys_->Write(SiteOf(1), 1, 2, Pat(9)).status.ok());
  sim_->Run();
  Result<bool> rotted = cluster_->site(SiteOf(1))->disks()->CorruptBlock(
      RowOf(1, 2), /*seed=*/0xb17, /*bits=*/2);
  ASSERT_TRUE(rotted.ok());
  ASSERT_TRUE(*rotted);

  // The checksum catches the rot at read time (DataLoss, not bad bytes),
  // and reconstruction serves the true value.
  auto r = sys_->Read(SiteOf(0), 1, 2);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(9));
  EXPECT_GE(cluster_->site(SiteOf(1))->disks()->corruptions_detected(), 1u);
}

TEST_F(ChaosNodeTest, ScrubDataRepairsLatentBlocks) {
  for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
    ASSERT_TRUE(sys_->Write(SiteOf(1), 1, i, Pat(40 + i)).status.ok());
  }
  sim_->Run();
  ASSERT_TRUE(
      cluster_->site(SiteOf(1))->disks()->InjectLatentError(RowOf(1, 0)).ok());
  ASSERT_TRUE(
      cluster_->site(SiteOf(1))->disks()->InjectLatentError(RowOf(1, 5)).ok());

  Result<int> repaired = sys_->group()->ScrubData(1);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, 2);

  // Repaired in place: local reads work again and values survived.
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  for (BlockNum i : {BlockNum(0), BlockNum(5)}) {
    auto r = sys_->Read(SiteOf(1), 1, i);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.data, Pat(40 + i));
    EXPECT_EQ(r.latency, Millis(30)) << "should be served locally again";
  }
}

}  // namespace
}  // namespace radd
