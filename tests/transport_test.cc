// Transport-layer tests: the DES-vs-socket differential in miniature, the
// lossy-proxy ledger invariant, raw hostile bytes at a live socket
// receiver, the chaos codec on/off differential, and the asymmetric
// partition fault (kAsymPartition's Network primitive).
//
// The heavyweight sweeps live in tools/transport_main (CI runs them with
// many seeds); these are the fast tier-1 versions of the same invariants.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/chaos.h"
#include "fault/netshim.h"
#include "net/frame.h"
#include "net/network.h"
#include "net/transport_harness.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// Differential: DES and socket backends converge to identical stores.
// ---------------------------------------------------------------------------

HarnessConfig SmallConfig(uint64_t seed) {
  HarnessConfig cfg;
  cfg.num_sites = 4;
  cfg.num_ops = 120;
  cfg.block_bytes = 64;
  cfg.seed = seed;
  cfg.socket.seed = seed ^ 0x50cce7;
  return cfg;
}

TEST(TransportDifferential, DesAndSocketConvergeToSameStore) {
  for (uint64_t seed : {3u, 11u}) {
    const HarnessConfig cfg = SmallConfig(seed);
    const HarnessResult des = RunDesHarness(cfg);
    const HarnessResult sock = RunSocketHarness(cfg);
    ASSERT_TRUE(des.ledger_ok) << des.ledger_error;
    ASSERT_TRUE(sock.ledger_ok) << sock.ledger_error;
    EXPECT_EQ(des.ops_acked, cfg.num_ops);
    EXPECT_EQ(sock.ops_acked, cfg.num_ops);
    EXPECT_EQ(des.store_hash, sock.store_hash) << "seed " << seed;
    // Clean network: the codec must reject nothing on either backend.
    EXPECT_EQ(des.frames_rejected, 0u);
    EXPECT_EQ(sock.frames_rejected, 0u);
    EXPECT_GT(des.frames_encoded, 0u);
    EXPECT_GT(sock.frames_encoded, 0u);
  }
}

TEST(TransportDifferential, LossyProxyKeepsLedgerClean) {
  for (uint64_t seed : {5u, 23u}) {
    const HarnessConfig cfg = SmallConfig(seed);
    LossyNetProxy proxy(DefaultLossyMix(seed));
    const HarnessResult r = RunSocketHarness(cfg, &proxy);
    // Loss is allowed (unacked ops, differing hashes); lying is not:
    // every acked write must be durably reflected in the store.
    EXPECT_TRUE(r.ledger_ok) << "seed " << seed << ": " << r.ledger_error;
    EXPECT_GT(proxy.frames_seen(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Raw hostile bytes at a live receiver.
// ---------------------------------------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void AwaitCondition(const std::function<bool()>& done) {
  for (int i = 0; i < 500 && !done(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done());
}

TEST(SocketTransportHostileBytes, GarbageStreamIsCountedAndDropped) {
  SocketTransport transport(2);
  std::atomic<int> delivered{0};
  transport.RegisterHandler(0, [&](Message&) { ++delivered; });
  transport.RegisterHandler(1, [&](Message&) { ++delivered; });
  ASSERT_TRUE(transport.Start().ok());

  const int fd = ConnectTo(transport.port(1));
  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(0xC3 + i * 31);
  }
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  AwaitCondition([&] {
    return transport.frame_counters().Get(FrameError::kBadMagic) > 0;
  });
  ::close(fd);
  EXPECT_EQ(delivered.load(), 0);
  transport.Stop();
}

TEST(SocketTransportHostileBytes, CorruptFrameSkippedNextFrameDelivered) {
  SocketTransport transport(2);
  std::atomic<int> delivered{0};
  std::atomic<uint64_t> got_op{0};
  transport.RegisterHandler(1, [&](Message& m) {
    if (const auto* ack = std::get_if<ParityAck>(&m.payload)) {
      got_op = ack->op;
    }
    ++delivered;
  });
  transport.RegisterHandler(0, [](Message&) {});
  ASSERT_TRUE(transport.Start().ok());

  Message bad;
  bad.from = 0;
  bad.to = 1;
  bad.seq = 1;
  bad.type = MessageType::kParityAck;
  bad.payload = ParityAck{66};
  std::vector<uint8_t> first = EncodeFrame(bad);
  first[kFrameHeaderBytes] ^= 0x40;  // payload damage: kBadCrc, framing ok

  Message good = bad;
  good.seq = 2;
  good.payload = ParityAck{77};
  const std::vector<uint8_t> second = EncodeFrame(good);

  std::vector<uint8_t> stream = first;
  stream.insert(stream.end(), second.begin(), second.end());

  const int fd = ConnectTo(transport.port(1));
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));
  AwaitCondition([&] { return delivered.load() >= 1; });
  ::close(fd);

  // The damaged frame was rejected by CRC; the frame after it on the same
  // stream was still delivered intact.
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(got_op.load(), 77u);
  EXPECT_EQ(transport.frame_counters().Get(FrameError::kBadCrc), 1u);
  transport.Stop();
}

// ---------------------------------------------------------------------------
// Chaos codec differential: framing every protocol message changes nothing.
// ---------------------------------------------------------------------------

TEST(ChaosCodecDifferential, SummaryIdenticalWithCodecOnAndOff) {
  ChaosConfig plain;
  ChaosConfig framed;
  framed.frame_codec = true;
  for (uint64_t seed : {2u, 9u}) {
    ChaosReport off = ChaosHarness(plain).Run(seed);
    ChaosReport on = ChaosHarness(framed).Run(seed);
    EXPECT_TRUE(off.ok) << off.Summary();
    EXPECT_TRUE(on.ok) << on.Summary();
    // The codec is lossless and its counters stay out of the Summary, so
    // the two runs must be byte-identical.
    EXPECT_EQ(off.Summary(), on.Summary()) << "seed " << seed;
    EXPECT_GT(on.frames_encoded, 0u);
    EXPECT_EQ(on.frames_rejected, 0u);
  }
}

// ---------------------------------------------------------------------------
// Asymmetric partition: the Network primitive under kAsymPartition.
// ---------------------------------------------------------------------------

class AsymNetworkTest : public ::testing::Test {
 protected:
  AsymNetworkTest() : net_(&sim_, NetworkModel{}, 7) {}

  void SendOne(SiteId from, SiteId to) {
    Message m;
    m.from = from;
    m.to = to;
    m.wire_bytes = 10;
    net_.Send(std::move(m));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  int received_[4] = {0, 0, 0, 0};

  void RegisterAll() {
    for (SiteId s = 0; s < 4; ++s) {
      net_.RegisterHandler(s, [this, s](const Message&) { ++received_[s]; });
    }
  }
};

TEST_F(AsymNetworkTest, InboundBlockCutsOnlyInbound) {
  RegisterAll();
  net_.SetAsymBlock(1, /*block_inbound=*/true, /*block_outbound=*/false);
  SendOne(0, 1);  // dropped: inbound to 1 is cut
  SendOne(1, 2);  // delivered: 1 can still send
  EXPECT_EQ(received_[1], 0);
  EXPECT_EQ(received_[2], 1);
  EXPECT_EQ(net_.stats().Get("net.asym_blocked"), 1u);
}

TEST_F(AsymNetworkTest, OutboundBlockCutsOnlyOutbound) {
  RegisterAll();
  net_.SetAsymBlock(1, /*block_inbound=*/false, /*block_outbound=*/true);
  SendOne(1, 2);  // dropped: 1's outbound is cut
  SendOne(0, 1);  // delivered: 1 still hears the world
  EXPECT_EQ(received_[2], 0);
  EXPECT_EQ(received_[1], 1);
  EXPECT_EQ(net_.stats().Get("net.asym_blocked"), 1u);
}

TEST_F(AsymNetworkTest, LoopbackIsNeverCut) {
  RegisterAll();
  net_.SetAsymBlock(1, /*block_inbound=*/true, /*block_outbound=*/true);
  SendOne(1, 1);
  EXPECT_EQ(received_[1], 1);
}

TEST_F(AsymNetworkTest, InvisibleToTheCommunicationOracle) {
  RegisterAll();
  net_.SetAsymBlock(1, true, true);
  // An asymmetric failure is a fault; no failure detector gets to see
  // through it by asking the network directly.
  EXPECT_TRUE(net_.CanCommunicate(0, 1));
  EXPECT_TRUE(net_.CanCommunicate(1, 0));
}

TEST_F(AsymNetworkTest, ClearRestoresBothDirections) {
  RegisterAll();
  net_.SetAsymBlock(2, true, true);
  SendOne(0, 2);
  SendOne(2, 3);
  EXPECT_EQ(received_[2], 0);
  EXPECT_EQ(received_[3], 0);
  net_.ClearAsymBlock(2);
  SendOne(0, 2);
  SendOne(2, 3);
  EXPECT_EQ(received_[2], 1);
  EXPECT_EQ(received_[3], 1);
}

TEST(AsymFaultPlan, KindIsNamedAndPlanned) {
  // The planner draws asym direction for every plan; at least one seed in
  // a small range must schedule an asymmetric partition episode.
  FaultPlanConfig cfg;
  bool saw_asym = false;
  for (uint64_t seed = 1; seed <= 40 && !saw_asym; ++seed) {
    FaultPlan plan = FaultPlan::Random(seed, cfg);
    saw_asym = plan.ToString().find("asym_partition") != std::string::npos;
  }
  EXPECT_TRUE(saw_asym);
}

}  // namespace
}  // namespace radd
