// Tests for the comparison schemes: LocalRaid (Level-5 RAID), Rowb,
// TwoDRadd, and the Figure-2/3 scenario measurements.

#include <gtest/gtest.h>

#include "schemes/local_raid.h"
#include "schemes/radd2d.h"
#include "schemes/rowb.h"
#include "schemes/scheme.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size = 512) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

// ---------------------------------------------------------------------------
// LocalRaid.
// ---------------------------------------------------------------------------

class LocalRaidTest : public ::testing::Test {
 protected:
  LocalRaidTest() : disks_(10, 8, 512), raid_(&disks_, {8, true}) {}

  DiskArray disks_;
  LocalRaid raid_;
};

TEST_F(LocalRaidTest, ReadBackAfterWrite) {
  ASSERT_TRUE(raid_.Write(5, Pat(1), Uid::Make(0, 1)).ok());
  Result<BlockRecord> r = raid_.Read(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(1));
  EXPECT_EQ(r->uid, Uid::Make(0, 1));
}

TEST_F(LocalRaidTest, CapacityIsGPerStripe) {
  EXPECT_EQ(raid_.total_blocks(), 8u * 8u);
  EXPECT_FALSE(raid_.Read(raid_.total_blocks()).ok());
}

TEST_F(LocalRaidTest, NormalWriteCostsTwoWrites) {
  raid_.Write(0, Pat(1), Uid::Make(0, 1));
  OpCounts before = raid_.PhysicalOps();
  raid_.Write(0, Pat(2), Uid::Make(0, 2));
  OpCounts delta = raid_.PhysicalOps() - before;
  EXPECT_EQ(delta.local_writes, 2u);  // data + parity ([PATT88])
  EXPECT_EQ(delta.local_reads, 0u);
}

TEST_F(LocalRaidTest, SurvivesAnySingleDiskFailure) {
  for (BlockNum i = 0; i < raid_.total_blocks(); ++i) {
    ASSERT_TRUE(raid_.Write(i, Pat(i), Uid::Make(0, i + 1)).ok());
  }
  for (int d = 0; d < 10; ++d) {
    SCOPED_TRACE("disk " + std::to_string(d));
    DiskArray disks(10, 8, 512);
    LocalRaid raid(&disks, {8, true});
    for (BlockNum i = 0; i < raid.total_blocks(); ++i) {
      ASSERT_TRUE(raid.Write(i, Pat(i), Uid::Make(0, i + 1)).ok());
    }
    ASSERT_TRUE(raid.FailDisk(d).ok());
    for (BlockNum i = 0; i < raid.total_blocks(); ++i) {
      Result<BlockRecord> r = raid.Read(i);
      ASSERT_TRUE(r.ok()) << "block " << i;
      EXPECT_EQ(r->data, Pat(i)) << "block " << i;
    }
  }
}

TEST_F(LocalRaidTest, RebuildClearsDegradedState) {
  for (BlockNum i = 0; i < 16; ++i) {
    ASSERT_TRUE(raid_.Write(i, Pat(i), Uid::Make(0, i + 1)).ok());
  }
  ASSERT_TRUE(raid_.FailDisk(3).ok());
  EXPECT_TRUE(raid_.Degraded());
  Result<OpCounts> ops = raid_.Rebuild();
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  EXPECT_FALSE(raid_.Degraded());
  for (BlockNum i = 0; i < 16; ++i) {
    Result<BlockRecord> r = raid_.Read(i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->data, Pat(i));
  }
}

TEST_F(LocalRaidTest, MetadataSurvivesDiskFailure) {
  BlockRecord rec(512);
  rec.data = Pat(9);
  rec.uid = Uid::Make(3, 77);
  rec.uid_array = {Uid::Make(1, 1), Uid::Make(2, 2)};
  rec.logical_uid = Uid::Make(3, 76);
  rec.spare_for = 4;
  ASSERT_TRUE(raid_.WriteRecord(0, rec).ok());
  ASSERT_TRUE(raid_.FailDisk(raid_.DiskOfLogical(0)).ok());
  Result<BlockRecord> r = raid_.Read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(9));
  EXPECT_EQ(r->uid, Uid::Make(3, 77));
  ASSERT_EQ(r->uid_array.size(), 2u);
  EXPECT_EQ(r->uid_array[1], Uid::Make(2, 2));
  EXPECT_EQ(r->logical_uid, Uid::Make(3, 76));
  EXPECT_EQ(r->spare_for, 4);
}

TEST_F(LocalRaidTest, ApplyMaskMaintainsLocalParity) {
  ASSERT_TRUE(raid_.Write(0, Pat(1), Uid::Make(0, 1)).ok());
  Result<ChangeMask> mask = ChangeMask::Diff(Pat(1), Pat(2));
  ASSERT_TRUE(mask.ok());
  ASSERT_TRUE(raid_.ApplyMask(0, *mask, Uid::Make(0, 2), 1, 4).ok());
  // Kill the disk holding the block; reconstruction must give the masked
  // value, proving the local parity tracked the delta.
  ASSERT_TRUE(raid_.FailDisk(raid_.DiskOfLogical(0)).ok());
  Result<BlockRecord> r = raid_.Read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Pat(2));
  ASSERT_GE(r->uid_array.size(), 2u);
  EXPECT_EQ(r->uid_array[1], Uid::Make(0, 2));
}

TEST_F(LocalRaidTest, DoubleDiskFailureLosesData) {
  ASSERT_TRUE(raid_.Write(0, Pat(1), Uid::Make(0, 1)).ok());
  int d0 = raid_.DiskOfLogical(0);
  ASSERT_TRUE(raid_.FailDisk(d0).ok());
  ASSERT_TRUE(raid_.FailDisk((d0 + 1) % 10).ok());
  Result<BlockRecord> r = raid_.Read(0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss());
}

// ---------------------------------------------------------------------------
// Rowb.
// ---------------------------------------------------------------------------

class RowbTest : public ::testing::Test {
 protected:
  RowbTest()
      : cluster_(4, SiteConfig{1, 16, 512}), rowb_(&cluster_, 8, 512) {}

  Cluster cluster_;
  Rowb rowb_;
};

TEST_F(RowbTest, ReadBackAfterWrite) {
  ASSERT_TRUE(rowb_.Write(1, 1, 3, Pat(1)).ok());
  OpResult r = rowb_.Read(1, 1, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(1));
  EXPECT_TRUE(rowb_.VerifyInvariants().ok());
}

TEST_F(RowbTest, WriteUpdatesBothCopies) {
  ASSERT_TRUE(rowb_.Write(1, 1, 0, Pat(1)).ok());
  auto [bsite, bphys] = rowb_.BackupOf(1, 0);
  EXPECT_NE(bsite, 1u);
  Result<BlockRecord> backup = cluster_.site(bsite)->store()->Peek(bphys);
  ASSERT_TRUE(backup.ok());
  EXPECT_EQ(backup->data, Pat(1));
}

TEST_F(RowbTest, ReadsSurviveHomeCrash) {
  ASSERT_TRUE(rowb_.Write(1, 1, 0, Pat(1)).ok());
  ASSERT_TRUE(cluster_.CrashSite(1).ok());
  OpResult r = rowb_.Read(3, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(1));
  EXPECT_EQ(r.counts.remote_reads, 1u);
}

TEST_F(RowbTest, DegradedWriteAndRecovery) {
  ASSERT_TRUE(rowb_.Write(1, 1, 0, Pat(1)).ok());
  ASSERT_TRUE(cluster_.CrashSite(1).ok());
  ASSERT_TRUE(rowb_.Write(3, 1, 0, Pat(2)).ok());
  ASSERT_TRUE(cluster_.RestoreSite(1).ok());
  Result<OpCounts> rec = rowb_.RunRecovery(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(cluster_.StateOf(1), SiteState::kUp);
  EXPECT_TRUE(rowb_.VerifyInvariants().ok());
  OpResult r = rowb_.Read(1, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(2));
  EXPECT_EQ(r.counts.local_reads, 1u);
}

TEST_F(RowbTest, DisasterRecoveryCopiesEverything) {
  for (BlockNum i = 0; i < 8; ++i) {
    ASSERT_TRUE(rowb_.Write(1, 1, i, Pat(i)).ok());
    // Site 1 also hosts backups for site 0.
    ASSERT_TRUE(rowb_.Write(0, 0, i, Pat(100 + i)).ok());
  }
  ASSERT_TRUE(cluster_.DisasterSite(1).ok());
  ASSERT_TRUE(cluster_.RestoreSite(1).ok());
  Result<OpCounts> rec = rowb_.RunRecovery(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rowb_.VerifyInvariants().ok());
  for (BlockNum i = 0; i < 8; ++i) {
    OpResult r = rowb_.Read(1, 1, i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, Pat(i));
  }
}

TEST_F(RowbTest, BothCopiesDownBlocks) {
  ASSERT_TRUE(rowb_.Write(1, 1, 0, Pat(1)).ok());
  auto [bsite, bphys] = rowb_.BackupOf(1, 0);
  ASSERT_TRUE(cluster_.CrashSite(1).ok());
  ASSERT_TRUE(cluster_.CrashSite(bsite).ok());
  EXPECT_TRUE(rowb_.Read(3, 1, 0).status.IsBlocked());
  EXPECT_TRUE(rowb_.Write(3, 1, 0, Pat(2)).status.IsBlocked());
}

TEST(RowbScattered, BackupsSpreadAcrossSites) {
  Cluster cluster(5, SiteConfig{1, 40, 512});
  Rowb rowb(&cluster, 20, 512, RowbPlacement::kScattered);
  std::set<SiteId> partners;
  for (BlockNum i = 0; i < 20; ++i) {
    partners.insert(rowb.BackupOf(2, i).first);
  }
  EXPECT_GT(partners.size(), 1u);
  EXPECT_EQ(partners.count(2), 0u) << "backup must not share the home site";
}

// ---------------------------------------------------------------------------
// TwoDRadd.
// ---------------------------------------------------------------------------

class TwoDRaddTest : public ::testing::Test {
 protected:
  TwoDRaddTest() : radd2d_(TwoDRaddConfig{4, 4, 4, 512}) {}
  TwoDRadd radd2d_;
};

TEST_F(TwoDRaddTest, SpaceOverheadMatchesPaper) {
  // 8x8 grid: the paper's 50 %.
  TwoDRadd big(TwoDRaddConfig{8, 8, 1, 64});
  EXPECT_DOUBLE_EQ(big.SpaceOverheadPercent(), 50.0);
}

TEST_F(TwoDRaddTest, ReadBackAndParity) {
  SiteId s = radd2d_.DataSite(1, 2);
  ASSERT_TRUE(radd2d_.Write(s, 1, 2, 0, Pat(1)).ok());
  OpResult r = radd2d_.Read(s, 1, 2, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(1));
  EXPECT_TRUE(radd2d_.VerifyInvariants().ok());
}

TEST_F(TwoDRaddTest, NormalWriteTouchesBothParities) {
  SiteId s = radd2d_.DataSite(0, 0);
  radd2d_.Write(s, 0, 0, 0, Pat(1));
  OpResult w = radd2d_.Write(s, 0, 0, 0, Pat(2));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.counts.local_writes, 1u);
  EXPECT_EQ(w.counts.remote_writes, 2u);  // row + column parity
}

TEST_F(TwoDRaddTest, SurvivesRowAndColumnReconstruction) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      SiteId s = radd2d_.DataSite(r, c);
      ASSERT_TRUE(
          radd2d_.Write(s, r, c, 0, Pat(uint64_t(r) * 10 + c)).ok());
    }
  }
  ASSERT_TRUE(radd2d_.cluster()->CrashSite(radd2d_.DataSite(2, 1)).ok());
  OpResult r = radd2d_.Read(radd2d_.DataSite(2, 0), 2, 1, 0);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(21));
}

TEST_F(TwoDRaddTest, DegradedWriteRecovery) {
  SiteId victim = radd2d_.DataSite(1, 1);
  SiteId client = radd2d_.DataSite(0, 0);
  ASSERT_TRUE(radd2d_.Write(victim, 1, 1, 0, Pat(1)).ok());
  ASSERT_TRUE(radd2d_.cluster()->CrashSite(victim).ok());
  ASSERT_TRUE(radd2d_.Write(client, 1, 1, 0, Pat(2)).ok());
  OpResult during = radd2d_.Read(client, 1, 1, 0);
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.data, Pat(2));
  ASSERT_TRUE(radd2d_.cluster()->RestoreSite(victim).ok());
  Result<OpCounts> rec = radd2d_.RunRecovery(1, 1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(radd2d_.VerifyInvariants().ok());
  OpResult after = radd2d_.Read(victim, 1, 1, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.data, Pat(2));
}

// ---------------------------------------------------------------------------
// The Figure-3 measurement grid: measured formulas must match the paper
// (documented deviations carry their own expectations).
// ---------------------------------------------------------------------------

struct Fig3Case {
  const char* scheme;
  Scenario scenario;
  const char* formula;  // expected measured formula
};

class Fig3Test : public ::testing::TestWithParam<Fig3Case> {};

TEST_P(Fig3Test, MeasuredCountsMatch) {
  const Fig3Case& c = GetParam();
  auto schemes = MakeAllSchemes(8);
  Scheme* scheme = nullptr;
  for (auto& s : schemes) {
    if (s->name() == c.scheme) scheme = s.get();
  }
  ASSERT_NE(scheme, nullptr);
  std::optional<OpCounts> counts = scheme->Measure(c.scenario);
  ASSERT_TRUE(counts.has_value());
  EXPECT_EQ(counts->ToFormula(), c.formula);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, Fig3Test,
    ::testing::Values(
        // RADD column (Fig. 3).
        Fig3Case{"RADD", Scenario::kNoFailureRead, "R"},
        Fig3Case{"RADD", Scenario::kNoFailureWrite, "W+RW"},
        Fig3Case{"RADD", Scenario::kDiskFailureRead, "8*RR"},
        Fig3Case{"RADD", Scenario::kDiskFailureWrite, "2*RW"},
        // Deviation: the paper counts R+RR ("counting both reads"); our
        // spare-first protocol needs only the spare read.
        Fig3Case{"RADD", Scenario::kReconstructedRead, "RR"},
        Fig3Case{"RADD", Scenario::kSiteFailureRead, "8*RR"},
        Fig3Case{"RADD", Scenario::kSiteFailureWrite, "2*RW"},
        // ROWB column.
        Fig3Case{"ROWB", Scenario::kNoFailureRead, "R"},
        Fig3Case{"ROWB", Scenario::kNoFailureWrite, "W+RW"},
        Fig3Case{"ROWB", Scenario::kDiskFailureRead, "RR"},
        Fig3Case{"ROWB", Scenario::kDiskFailureWrite, "RW"},
        Fig3Case{"ROWB", Scenario::kReconstructedRead, "R"},
        Fig3Case{"ROWB", Scenario::kSiteFailureRead, "RR"},
        Fig3Case{"ROWB", Scenario::kSiteFailureWrite, "RW"},
        // RAID column.
        Fig3Case{"RAID", Scenario::kNoFailureRead, "R"},
        Fig3Case{"RAID", Scenario::kNoFailureWrite, "2*W"},
        Fig3Case{"RAID", Scenario::kDiskFailureRead, "8*R"},
        Fig3Case{"RAID", Scenario::kDiskFailureWrite, "2*W"},
        Fig3Case{"RAID", Scenario::kReconstructedRead, "R"},
        // C-RAID column (Fig. 4's evaluated numbers; see EXPERIMENTS.md
        // for where Fig. 3's symbolic row disagrees with Fig. 4).
        Fig3Case{"C-RAID", Scenario::kNoFailureWrite, "3*W+RW"},
        Fig3Case{"C-RAID", Scenario::kDiskFailureRead, "8*R"},
        Fig3Case{"C-RAID", Scenario::kDiskFailureWrite, "3*W+RW"},
        Fig3Case{"C-RAID", Scenario::kSiteFailureRead, "8*RR"},
        Fig3Case{"C-RAID", Scenario::kSiteFailureWrite, "2*W+2*RW"},
        // 2D-RADD column.
        Fig3Case{"2D-RADD", Scenario::kNoFailureWrite, "W+2*RW"},
        Fig3Case{"2D-RADD", Scenario::kDiskFailureRead, "8*RR"},
        Fig3Case{"2D-RADD", Scenario::kDiskFailureWrite, "4*RW"},
        Fig3Case{"2D-RADD", Scenario::kSiteFailureRead, "8*RR"},
        Fig3Case{"2D-RADD", Scenario::kSiteFailureWrite, "4*RW"},
        // 1/2-RADD column: G/2 = 4.
        Fig3Case{"1/2-RADD", Scenario::kDiskFailureRead, "4*RR"},
        Fig3Case{"1/2-RADD", Scenario::kSiteFailureRead, "4*RR"},
        Fig3Case{"1/2-RADD", Scenario::kSiteFailureWrite, "2*RW"}));

TEST(Fig2Space, OverheadsMatchPaper) {
  auto schemes = MakeAllSchemes(8);
  std::map<std::string, double> expected = {
      {"RADD", 25.0},    {"ROWB", 100.0},   {"RAID", 25.0},
      {"C-RAID", 56.25}, {"2D-RADD", 50.0}, {"1/2-RADD", 50.0},
  };
  for (auto& s : schemes) {
    EXPECT_DOUBLE_EQ(s->SpaceOverheadPercent(), expected[s->name()])
        << s->name();
  }
}

TEST(PqRaddScheme, SpaceOverheadIsThreePerG) {
  // G data + P + Q + spare per (G+3)-row cycle: 3/G overhead.
  EXPECT_DOUBLE_EQ(MakePqRaddScheme(8)->SpaceOverheadPercent(), 37.5);
  EXPECT_DOUBLE_EQ(MakePqRaddScheme(4)->SpaceOverheadPercent(), 75.0);
}

TEST(PqRaddScheme, NotPartOfThePaperGrid) {
  // Figures 2/3/4 compare the paper's six systems; the P+Q extension must
  // not leak into them.
  for (auto& s : MakeAllSchemes(8)) {
    EXPECT_NE(s->name(), "P+Q RADD");
  }
}

struct PqFig3Case {
  Scenario scenario;
  const char* formula;
};

class PqFig3Test : public ::testing::TestWithParam<PqFig3Case> {};

TEST_P(PqFig3Test, MeasuredCountsMatch) {
  const PqFig3Case& c = GetParam();
  auto scheme = MakePqRaddScheme(8);
  std::optional<OpCounts> counts = scheme->Measure(c.scenario);
  ASSERT_TRUE(counts.has_value());
  EXPECT_EQ(counts->ToFormula(), c.formula);
}

// The P+Q column next to Figure 3's RADD column: reads cost the same (the
// decode still touches G row members), every write pays one extra RW for
// the Q parity leg.
INSTANTIATE_TEST_SUITE_P(
    PqGrid, PqFig3Test,
    ::testing::Values(
        PqFig3Case{Scenario::kNoFailureRead, "R"},
        PqFig3Case{Scenario::kNoFailureWrite, "W+2*RW"},
        PqFig3Case{Scenario::kDiskFailureRead, "8*RR"},
        PqFig3Case{Scenario::kDiskFailureWrite, "3*RW"},
        PqFig3Case{Scenario::kReconstructedRead, "RR"},
        PqFig3Case{Scenario::kSiteFailureRead, "8*RR"},
        PqFig3Case{Scenario::kSiteFailureWrite, "3*RW"}));

TEST(Fig3Raid, BlocksOnSiteFailure) {
  auto raid = MakeRaid5Scheme(8);
  EXPECT_FALSE(raid->Measure(Scenario::kSiteFailureRead).has_value());
  EXPECT_FALSE(raid->Measure(Scenario::kSiteFailureWrite).has_value());
}

TEST(CostModel, PaperConstants) {
  CostModel cm;
  OpCounts c;
  c.local_reads = 1;
  EXPECT_DOUBLE_EQ(cm.Price(c), 30.0);
  c = OpCounts{};
  c.remote_writes = 2;
  EXPECT_DOUBLE_EQ(cm.Price(c), 150.0);
}

}  // namespace
}  // namespace radd
