// Tests for the §7.2 reduced-spare-allocation extension ("Analyzing
// availability for lesser numbers of [spare] blocks is left as a future
// exercise").

#include <gtest/gtest.h>

#include "core/radd.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size = 256) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

class SpareFractionTest : public ::testing::TestWithParam<double> {
 protected:
  void Build(double fraction) {
    config_.group_size = 4;
    config_.rows = 60;
    config_.block_size = 256;
    config_.spare_fraction = fraction;
    SiteConfig sc{1, config_.rows, config_.block_size};
    cluster_ = std::make_unique<Cluster>(6, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_P(SpareFractionTest, NormalOperationUnaffected) {
  Build(GetParam());
  for (int m = 0; m < 6; ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult w = group_->Write(group_->SiteOfMember(m), m, i,
                                 Pat(uint64_t(m) * 100 + i));
      ASSERT_TRUE(w.ok());
      EXPECT_EQ(w.counts.ToFormula(), "W+RW");
    }
  }
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_P(SpareFractionTest, DegradedReadsAlwaysSucceed) {
  Build(GetParam());
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    ASSERT_TRUE(group_->Write(group_->SiteOfMember(1), 1, i, Pat(i)).ok());
  }
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  SiteId client = group_->SiteOfMember(3);
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    OpResult r = group_->Read(client, 1, i);
    ASSERT_TRUE(r.ok()) << "block " << i;
    EXPECT_EQ(r.data, Pat(i));
  }
}

TEST_P(SpareFractionTest, DegradedWriteAvailabilityTracksFraction) {
  Build(GetParam());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  SiteId client = group_->SiteOfMember(3);
  int ok = 0, blocked = 0;
  BlockNum n = group_->DataBlocksPerMember();
  for (BlockNum i = 0; i < n; ++i) {
    OpResult w = group_->Write(client, 1, i, Pat(1000 + i));
    if (w.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(w.status.IsBlocked()) << w.status.ToString();
      ++blocked;
    }
  }
  double available = static_cast<double>(ok) / static_cast<double>(n);
  EXPECT_NEAR(available, GetParam(), 0.15)
      << ok << " writable of " << n;
  if (GetParam() < 1.0) {
    EXPECT_GT(group_->stats().Get("radd.write_blocked_no_spare"), 0u);
  }
}

TEST_P(SpareFractionTest, RecoveryRestoresEverything) {
  Build(GetParam());
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    ASSERT_TRUE(group_->Write(group_->SiteOfMember(1), 1, i, Pat(i)).ok());
  }
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  // Overwrite whatever is writable while down.
  SiteId client = group_->SiteOfMember(3);
  std::map<BlockNum, bool> rewritten;
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    rewritten[i] = group_->Write(client, 1, i, Pat(5000 + i)).ok();
  }
  ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(1)).ok());
  Result<OpCounts> rec = group_->RunRecovery(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    OpResult r = group_->Read(group_->SiteOfMember(1), 1, i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, rewritten[i] ? Pat(5000 + i) : Pat(i)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SpareFractionTest,
                         ::testing::Values(1.0, 0.5, 0.25, 0.0));

TEST(SpareFraction, ZeroNeverBlocksReads) {
  RaddConfig config;
  config.group_size = 4;
  config.rows = 12;
  config.block_size = 256;
  config.spare_fraction = 0.0;
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(6, sc);
  RaddGroup group(&cluster, config);
  ASSERT_TRUE(group.Write(group.SiteOfMember(2), 2, 0, Pat(1)).ok());
  ASSERT_TRUE(cluster.CrashSite(group.SiteOfMember(2)).ok());
  OpResult r = group.Read(group.SiteOfMember(0), 2, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(1));
  // But every degraded read pays full reconstruction (no materialization).
  OpResult r2 = group.Read(group.SiteOfMember(0), 2, 0);
  EXPECT_EQ(r2.counts.Total(), 4u);
}

}  // namespace
}  // namespace radd
