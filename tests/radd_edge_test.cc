// Edge cases and negative tests for the RADD core: offset member drives,
// corruption detection by the invariant checker, UID-retry accounting,
// and unusual-but-legal configurations.

#include <gtest/gtest.h>

#include "core/radd.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size = 256) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

// ---------------------------------------------------------------------------
// Member drives at nonzero offsets (as produced by §4 assignment).
// ---------------------------------------------------------------------------

TEST(OffsetMembers, GroupsOnDisjointRegionsDoNotInterfere) {
  // One cluster of 6 sites, two groups stacked on disjoint block ranges of
  // the same sites.
  RaddConfig config;
  config.group_size = 4;
  config.rows = 6;
  config.block_size = 256;
  Cluster cluster(6, SiteConfig{1, 12, 256});
  auto members_at = [&](BlockNum offset) {
    std::vector<LogicalDrive> out;
    for (SiteId s = 0; s < 6; ++s) {
      out.push_back(LogicalDrive{s, offset, 6});
    }
    return out;
  };
  RaddGroup low(&cluster, config, members_at(0));
  RaddGroup high(&cluster, config, members_at(6));

  ASSERT_TRUE(low.Write(0, 0, 0, Pat(1)).ok());
  ASSERT_TRUE(high.Write(0, 0, 0, Pat(2)).ok());
  EXPECT_TRUE(low.VerifyInvariants().ok());
  EXPECT_TRUE(high.VerifyInvariants().ok());

  OpResult rl = low.Read(0, 0, 0);
  OpResult rh = high.Read(0, 0, 0);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rh.ok());
  EXPECT_EQ(rl.data, Pat(1));
  EXPECT_EQ(rh.data, Pat(2));

  // Degraded ops in one group leave the other untouched.
  ASSERT_TRUE(cluster.CrashSite(0).ok());
  ASSERT_TRUE(low.Write(1, 0, 0, Pat(3)).ok());
  ASSERT_TRUE(cluster.RestoreSite(0).ok());
  ASSERT_TRUE(low.RunRecovery(0, /*mark_up=*/false).ok());
  ASSERT_TRUE(high.RunRecovery(0, /*mark_up=*/true).ok());
  EXPECT_TRUE(low.VerifyInvariants().ok());
  EXPECT_TRUE(high.VerifyInvariants().ok());
  OpResult after_low = low.Read(0, 0, 0);
  OpResult after_high = high.Read(0, 0, 0);
  ASSERT_TRUE(after_low.ok());
  ASSERT_TRUE(after_high.ok());
  EXPECT_EQ(after_low.data, Pat(3));
  EXPECT_EQ(after_high.data, Pat(2));
}

// ---------------------------------------------------------------------------
// The invariant checker must actually detect corruption.
// ---------------------------------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 256;
    cluster_ = std::make_unique<Cluster>(6, SiteConfig{1, 12, 256});
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
    for (int m = 0; m < 6; ++m) {
      for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
        group_->Write(group_->SiteOfMember(m), m, i, Pat(uint64_t(m) + i));
      }
    }
    EXPECT_TRUE(group_->VerifyInvariants().ok());
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(CorruptionTest, DetectsSilentDataCorruption) {
  // Flip bits in a data block behind the protocol's back.
  BlockNum row = group_->layout().DataToRow(2, 0);
  Site* site = cluster_->site(group_->SiteOfMember(2));
  Result<BlockRecord> rec = site->disks()->Read(row);
  ASSERT_TRUE(rec.ok());
  Block corrupted = rec->data;
  corrupted[0] ^= 0xFF;
  BlockRecord bad = *rec;
  bad.data = corrupted;
  ASSERT_TRUE(site->disks()->WriteRecord(row, bad).ok());
  EXPECT_FALSE(group_->VerifyInvariants().ok());
}

TEST_F(CorruptionTest, DetectsStaleParityUidEntry) {
  BlockNum row = group_->layout().DataToRow(2, 0);
  Site* site = cluster_->site(group_->SiteOfMember(2));
  Result<BlockRecord> rec = site->disks()->Read(row);
  ASSERT_TRUE(rec.ok());
  // Re-stamp the local block with a different UID without telling parity.
  ASSERT_TRUE(
      site->disks()->Write(row, rec->data, site->uids()->Next()).ok());
  EXPECT_FALSE(group_->VerifyInvariants().ok());
}

TEST_F(CorruptionTest, DetectsSpareShadowingUpMember) {
  BlockNum row = group_->layout().DataToRow(2, 0);
  int sm = static_cast<int>(group_->layout().SpareSite(row));
  Site* spare_site = cluster_->site(group_->SiteOfMember(sm));
  BlockRecord fake(config_.block_size);
  fake.data = Pat(99);
  fake.uid = spare_site->uids()->Next();
  fake.logical_uid = fake.uid;
  fake.spare_for = 2;  // but member 2's site is up
  ASSERT_TRUE(spare_site->disks()->WriteRecord(row, fake).ok());
  EXPECT_FALSE(group_->VerifyInvariants().ok());
}

// ---------------------------------------------------------------------------
// UID-validated reconstruction accounting.
// ---------------------------------------------------------------------------

TEST_F(CorruptionTest, InconsistentReconstructionChargesEachAttempt) {
  BlockNum row = group_->layout().DataToRow(2, 0);
  Site* site = cluster_->site(group_->SiteOfMember(2));
  Result<BlockRecord> rec = site->disks()->Read(row);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(
      site->disks()->Write(row, rec->data, site->uids()->Next()).ok());
  // Crash a *different* member whose reconstruction uses member 2 as a
  // source; the stale UID array entry forces retries.
  std::vector<SiteId> data_sites = group_->layout().DataSites(row);
  int other = -1;
  for (SiteId s : data_sites) {
    if (static_cast<int>(s) != 2) other = static_cast<int>(s);
  }
  ASSERT_GE(other, 0);
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(other)).ok());
  Result<BlockNum> idx =
      group_->layout().RowToData(static_cast<SiteId>(other), row);
  ASSERT_TRUE(idx.ok());
  OpResult r = group_->Read(group_->SiteOfMember(2), other, *idx);
  EXPECT_TRUE(r.status.IsInconsistent());
  // Each attempt re-read all G sources.
  EXPECT_EQ(r.counts.Total(),
            static_cast<uint64_t>(config_.group_size *
                                  config_.max_reconstruct_attempts));
}

// ---------------------------------------------------------------------------
// Small and degenerate configurations.
// ---------------------------------------------------------------------------

TEST(DegenerateConfig, GroupSizeOneIsMirroringWithParity) {
  // G = 1: three sites — data, parity (a copy, since XOR of one block is
  // the block), and spare. The paper notes ROWB "is essentially the same
  // as a RADD with a group size of 1 and no spare blocks".
  RaddConfig config;
  config.group_size = 1;
  config.rows = 6;
  config.block_size = 128;
  Cluster cluster(3, SiteConfig{1, 6, 128});
  RaddGroup group(&cluster, config);
  ASSERT_TRUE(group.Write(0, 0, 0, Pat(1, 128)).ok());
  // The parity block literally equals the data block.
  BlockNum row = group.layout().DataToRow(0, 0);
  int pm = static_cast<int>(group.layout().ParitySite(row));
  Result<BlockRecord> parity =
      cluster.site(group.SiteOfMember(pm))->disks()->Read(row);
  ASSERT_TRUE(parity.ok());
  EXPECT_EQ(parity->data, Pat(1, 128));

  ASSERT_TRUE(cluster.CrashSite(group.SiteOfMember(0)).ok());
  OpResult r = group.Read(group.SiteOfMember(pm), 0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(1, 128));
  EXPECT_EQ(r.counts.Total(), 1u) << "G=1 reconstruction is a single read";
}

TEST(DegenerateConfig, SingleRowGroup) {
  RaddConfig config;
  config.group_size = 2;
  config.rows = 4;  // exactly one cycle
  config.block_size = 128;
  Cluster cluster(4, SiteConfig{1, 4, 128});
  RaddGroup group(&cluster, config);
  EXPECT_EQ(group.DataBlocksPerMember(), 2u);
  for (int m = 0; m < 4; ++m) {
    ASSERT_TRUE(
        group.Write(group.SiteOfMember(m), m, 0, Pat(uint64_t(m), 128)).ok());
  }
  EXPECT_TRUE(group.VerifyInvariants().ok());
}

TEST(DegenerateConfig, ClientSiteOutsideGroupStillWorks) {
  // A §6 "convenient site" that happens not to be a group member.
  RaddConfig config;
  config.group_size = 2;
  config.rows = 4;
  config.block_size = 128;
  Cluster cluster(6, SiteConfig{1, 4, 128});  // sites 4,5 host no member
  RaddGroup group(&cluster, config);
  ASSERT_TRUE(group.Write(5, 1, 0, Pat(7, 128)).ok());
  OpResult r = group.Read(5, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(7, 128));
  EXPECT_EQ(r.counts.remote_reads, 1u) << "everything is remote from there";
  ASSERT_TRUE(cluster.CrashSite(group.SiteOfMember(1)).ok());
  OpResult dr = group.Read(5, 1, 0);
  ASSERT_TRUE(dr.ok());
  EXPECT_EQ(dr.data, Pat(7, 128));
}

}  // namespace
}  // namespace radd
