// Tests for the message-driven protocol layer (RaddNodeSystem): latency,
// degraded paths, concurrency via locks, lost messages (§5), partitions,
// and cross-checking against the synchronous reference model.

#include "core/node.h"

#include <gtest/gtest.h>

namespace radd {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() { Build(0.0); }

  void Build(double drop_probability, const NodeConfig& nc = {}) {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 512;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    NetworkModel nm;
    nm.drop_probability = drop_probability;
    net_ = std::make_unique<Network>(sim_.get(), nm, 0xabc);
    cluster_ = std::make_unique<Cluster>(6, sc);
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
};

TEST_F(NodeTest, LocalReadLatencyIsR) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(1));
  // Table 1: a local read costs R = 30 ms.
  EXPECT_EQ(r.latency, Millis(30));
}

TEST_F(NodeTest, RemoteReadLatencyIsRR) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  auto r = sys_->Read(SiteOf(3), 2, 0);
  ASSERT_TRUE(r.status.ok());
  // RR = 2.5 R = 75 ms: request (22.5) + disk (30) + reply (22.5).
  EXPECT_EQ(r.latency, Micros(75000));
}

TEST_F(NodeTest, LocalWriteLatencyIsWPlusRW) {
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(1));
  ASSERT_TRUE(w.status.ok());
  // Local write (30) then parity round trip (22.5 + 30 + 22.5) = 105 ms —
  // the same value as Figure 4's W + RW cost, because the two are
  // serialized by the protocol.
  EXPECT_EQ(w.latency, Micros(105000));
}

TEST_F(NodeTest, WriteMaintainsReferenceInvariants) {
  for (int m = 0; m < 6; ++m) {
    for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(
          sys_->Write(SiteOf(m), m, i, Pat(uint64_t(m) * 10 + i)).status.ok());
    }
  }
  sim_->Run();  // drain side effects
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(NodeTest, DegradedReadReconstructsAndMaterializes) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(7)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(7));
  sim_->Run();  // let the materialization land
  EXPECT_GT(sys_->stats().Get("node.materialized"), 0u);

  // Second read resolves via the spare: strictly cheaper.
  auto r2 = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.data, Pat(7));
  EXPECT_LE(r2.latency, Micros(75000));
}

TEST_F(NodeTest, DegradedWriteLandsOnSpare) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  auto w = sys_->Write(SiteOf(0), 2, 0, Pat(2));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(NodeTest, CrashWriteRecoverRoundTrip) {
  ASSERT_TRUE(sys_->Write(SiteOf(1), 1, 2, Pat(1)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(1)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(4), 1, 2, Pat(2)).status.ok());
  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(1)).ok());
  sim_->Run();
  ASSERT_TRUE(sys_->group()->RunRecovery(1).ok());
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(1), 1, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));
  EXPECT_EQ(r.latency, Millis(30));  // served locally again
}

TEST_F(NodeTest, RecoveringReadPrefersSpare) {
  ASSERT_TRUE(sys_->Write(SiteOf(1), 1, 2, Pat(1)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(1)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(4), 1, 2, Pat(2)).status.ok());
  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(1)).ok());
  // No sweep yet: a read must see the spare's newer value, not the stale
  // local copy.
  auto r = sys_->Read(SiteOf(1), 1, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));
}

TEST_F(NodeTest, RecoveringWriteFetchesSpareAndInvalidates) {
  ASSERT_TRUE(sys_->Write(SiteOf(1), 1, 2, Pat(1)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(1)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(4), 1, 2, Pat(2)).status.ok());
  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(1)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(1), 1, 2, Pat(3)).status.ok());
  sim_->Run();
  EXPECT_GT(sys_->stats().Get("node.spare_invalidated"), 0u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(1), 1, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(3));
}

TEST_F(NodeTest, ConcurrentWritesToOneBlockSerialize) {
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    sys_->AsyncWrite(SiteOf(2), 2, 0, Pat(uint64_t(i)),
                     [&done](Status st, SimTime) {
                       ASSERT_TRUE(st.ok());
                       ++done;
                     });
  }
  sim_->Run();
  EXPECT_EQ(done, 4);
  EXPECT_GT(sys_->stats().Get("node.lock_waits"), 0u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(3));  // last writer wins, in issue order
}

TEST_F(NodeTest, ConcurrentWritesAcrossMembersKeepParityConsistent) {
  int done = 0;
  for (int m = 0; m < 6; ++m) {
    for (int i = 0; i < 3; ++i) {
      sys_->AsyncWrite(SiteOf(m), m, static_cast<BlockNum>(i),
                       Pat(uint64_t(m) * 100 + i),
                       [&done](Status st, SimTime) {
                         ASSERT_TRUE(st.ok());
                         ++done;
                       });
    }
  }
  sim_->Run();
  EXPECT_EQ(done, 18);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(NodeTest, ParitySiteDownDropsUpdatesAndRecoveryRecomputes) {
  // Find a row whose parity lives at member p, write its data while p is
  // down (update dropped), then verify p's recovery recomputes it.
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  BlockNum row = sys_->layout().DataToRow(2, 0);
  int pm = static_cast<int>(sys_->layout().ParitySite(row));
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(pm)).ok());

  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(2));
  ASSERT_TRUE(w.status.ok());
  // No parity round trip: the write completes after the local disk alone.
  EXPECT_EQ(w.latency, Millis(30));
  EXPECT_GT(sys_->stats().Get("node.parity_dropped"), 0u);

  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(pm)).ok());
  sim_->Run();
  ASSERT_TRUE(sys_->group()->RunRecovery(pm).ok());
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());

  // Reconstruction through the rebuilt parity yields the new value.
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(2));
}

TEST_F(NodeTest, WritesToDownSiteFailCleanlyWhenSpareAlsoDown) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  BlockNum row = sys_->layout().DataToRow(2, 0);
  int sm = static_cast<int>(sys_->layout().SpareSite(row));
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(sm)).ok());
  // Double failure: the degraded write cannot land anywhere; the client
  // times out rather than hanging or corrupting.
  auto w = sys_->Write(SiteOf(0), 2, 0, Pat(2));
  EXPECT_FALSE(w.status.ok());
}

TEST_F(NodeTest, MixedReadWriteStormAgainstReferenceModel) {
  // Interleave async ops across all members and blocks, then compare the
  // final state block-for-block with a shadow map.
  std::map<std::pair<int, BlockNum>, uint64_t> last_seed;
  int pending = 0;
  uint64_t seq = 0;
  for (int round = 0; round < 5; ++round) {
    for (int m = 0; m < 6; ++m) {
      for (BlockNum i = 0; i < 4; ++i) {
        uint64_t seed = ++seq;
        last_seed[{m, i}] = seed;
        ++pending;
        sys_->AsyncWrite(SiteOf(m), m, i, Pat(seed),
                         [&pending](Status st, SimTime) {
                           ASSERT_TRUE(st.ok());
                           --pending;
                         });
      }
    }
  }
  sim_->Run();
  EXPECT_EQ(pending, 0);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  for (const auto& [key, seed] : last_seed) {
    auto r = sys_->Read(SiteOf(key.first), key.first, key.second);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, Pat(seed));
  }
}

TEST_F(NodeTest, ReconstructionRacingWriteRetriesViaUidValidation) {
  // The §3.3 mechanism under a *genuine* race: member 2's block is being
  // reconstructed (its site is down) while a write to ANOTHER member's
  // block in the same row is in flight. The reconstruction's lock-free
  // source reads can observe the new data before the parity update lands,
  // the UID comparison catches it, and the retry returns a consistent
  // value.
  BlockNum row = sys_->layout().DataToRow(2, 0);
  // Find another data member of the same row.
  int other = -1;
  for (SiteId s : sys_->layout().DataSites(row)) {
    if (static_cast<int>(s) != 2) {
      other = static_cast<int>(s);
      break;
    }
  }
  ASSERT_GE(other, 0);
  Result<BlockNum> other_idx =
      sys_->layout().RowToData(static_cast<SiteId>(other), row);
  ASSERT_TRUE(other_idx.ok());

  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  ASSERT_TRUE(
      sys_->Write(SiteOf(other), other, *other_idx, Pat(2)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());

  // Timing: the degraded read's reconstruction source-reads execute at
  // t = 127.5 ms (spare probe 75 ms + request 22.5 + disk 30). Schedule
  // the racing write so its local disk write lands inside the window
  // between those source reads and its own parity update: issued at
  // t = 80 ms, the data lands at 110 ms and the parity at 162.5 ms — the
  // reconstruction at 127.5 ms sees new data with a stale UID array and
  // must retry.
  bool write_done = false, read_done = false;
  Block read_value(config_.block_size);
  sim_->Schedule(Micros(80000), [&]() {
    sys_->AsyncWrite(SiteOf(other), other, *other_idx, Pat(3),
                     [&](Status st, SimTime) {
                       ASSERT_TRUE(st.ok());
                       write_done = true;
                     });
  });
  sys_->AsyncRead(SiteOf(0), 2, 0,
                  [&](Status st, const Block& data, SimTime) {
                    ASSERT_TRUE(st.ok()) << st.ToString();
                    read_value = data;
                    read_done = true;
                  });
  sim_->Run();
  ASSERT_TRUE(write_done);
  ASSERT_TRUE(read_done);
  // Whatever interleaving happened, the reconstructed value must be
  // member 2's actual data — never a torn mix.
  EXPECT_EQ(read_value, Pat(1));
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  // The race window (source read between the data write and its parity
  // update) is real at these latencies: the validation must have retried.
  EXPECT_GT(sys_->stats().Get("node.uid_retry"), 0u)
      << "expected the §3.3 retry to fire under this interleaving";
}

// ---------------------------------------------------------------------------
// §5: lost messages.
// ---------------------------------------------------------------------------

class LossyNodeTest : public NodeTest {
 protected:
  LossyNodeTest() { Build(0.15); }
};

TEST_F(LossyNodeTest, WritesCompleteDespiteLoss) {
  for (int i = 0; i < 10; ++i) {
    auto w = sys_->Write(SiteOf(2), 2, 0, Pat(uint64_t(i)));
    ASSERT_TRUE(w.status.ok()) << "write " << i;
  }
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok())
      << "parity must be exact despite retransmissions";
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(9));
}

TEST_F(LossyNodeTest, DuplicateParityUpdatesAreIdempotent) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sys_->Write(SiteOf(3), 3, 1, Pat(uint64_t(i))).status.ok());
  }
  sim_->Run();
  // Some retransmissions should have happened and been deduplicated (or
  // at least retransmitted) at this loss rate.
  EXPECT_GT(sys_->stats().Get("node.parity_retransmit"), 0u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(LossyNodeTest, ReadsRetryThroughLoss) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(5)).status.ok());
  for (int i = 0; i < 10; ++i) {
    auto r = sys_->Read(SiteOf(0), 2, 0);
    ASSERT_TRUE(r.status.ok()) << "read " << i;
    EXPECT_EQ(r.data, Pat(5));
  }
}

TEST_F(NodeTest, RetryExhaustionSurfacesNetworkError) {
  NodeConfig nc;
  nc.retry_timeout = Millis(50);
  nc.max_retries = 3;
  Build(0.0, nc);
  // Every write_req to the home site vanishes. §5 says retransmit until
  // acked, but a client cannot spin forever: after max_retries the write
  // must fail back to the caller instead of hanging with state leaked.
  net_->SetFaultHook("write_req",
                     [](const Message&) { return FaultAction::kDrop; });
  auto w = sys_->Write(SiteOf(0), 2, 0, Pat(1));
  EXPECT_TRUE(w.status.IsNetworkError()) << w.status.ToString();
  EXPECT_EQ(sys_->stats().Get("node.write_retry_exhausted"), 1u);
  EXPECT_GT(sys_->stats().Get("node.write_retry"), 0u);
  EXPECT_GT(net_->stats().Get("net.drop.write_req"), 0u);

  // The failure is transient, not sticky: once the fault clears, the same
  // client can write the same block.
  net_->ClearFaultHooks();
  sim_->Run();
  auto w2 = sys_->Write(SiteOf(0), 2, 0, Pat(2));
  ASSERT_TRUE(w2.status.ok()) << w2.status.ToString();
}

TEST_F(NodeTest, ParityGiveUpFailsWriteAndReleasesLock) {
  NodeConfig nc;
  nc.retry_timeout = Millis(50);
  nc.max_retries = 3;
  Build(0.0, nc);
  // The home applies W1 but its parity updates all vanish: the write must
  // surface NetworkError rather than hold the row lock hostage.
  net_->SetFaultHook("parity_update",
                     [](const Message&) { return FaultAction::kDrop; });
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(1));
  EXPECT_TRUE(w.status.IsNetworkError()) << w.status.ToString();
  EXPECT_GT(sys_->stats().Get("node.parity_gave_up"), 0u);

  // The lock was released: a later write to the same row succeeds.
  net_->ClearFaultHooks();
  sim_->Run();
  auto w2 = sys_->Write(SiteOf(2), 2, 0, Pat(2));
  ASSERT_TRUE(w2.status.ok()) << w2.status.ToString();
  sim_->Run();

  // The give-up left parity stale (W1 landed, W3 never did); a parity
  // scrub reconciles the row, after which the invariants must hold and
  // the last acknowledged value must survive.
  for (int m = 0; m < 6; ++m) {
    ASSERT_TRUE(sys_->group()->ScrubParity(m).ok());
  }
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));
}

TEST_F(NodeTest, DuplicatedAndReorderedParityTrafficStaysConsistent) {
  // Duplication alone is covered above; here duplicated *and* reordered
  // parity updates and acks race each other. A stale copy arriving after
  // a newer update must be recognized (op dedupe + §3.3 UID array) and
  // re-acked, never re-applied on top of the newer mask.
  net_->set_duplicate_probability(0.4);
  net_->set_reorder_jitter(Millis(60));
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sys_->Write(SiteOf(3), 3, 1, Pat(100 + uint64_t(i))).status.ok());
  }
  sim_->Run();  // let delayed duplicates land
  EXPECT_GT(net_->stats().Get("net.dup.parity_update") +
                net_->stats().Get("net.dup.parity_ack"),
            0u);
  EXPECT_GT(net_->stats().Get("net.reordered"), 0u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok())
      << "a duplicated or reordered parity update was double-applied";
  auto r = sys_->Read(SiteOf(0), 3, 1);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(124));
}

// ---------------------------------------------------------------------------
// §5: partitions.
// ---------------------------------------------------------------------------

TEST_F(NodeTest, MajorityPartitionOperatesOnSingletonsData) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  // Partition: site of member 2 alone vs everyone else.
  SiteId lone = SiteOf(2);
  std::vector<SiteId> majority;
  for (int m = 0; m < 6; ++m) {
    if (SiteOf(m) != lone) majority.push_back(SiteOf(m));
  }
  net_->SetPartitions({majority, {lone}});
  // The majority side treats the unreachable site as down (§5: "As long
  // as the singleton site ceases processing, consistency is guaranteed").
  for (SiteId s : majority) {
    sys_->SetPresumedState(s, lone, SiteState::kDown);
  }
  auto r = sys_->Read(SiteOf(0), 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(1));
  auto w = sys_->Write(SiteOf(0), 2, 0, Pat(2));
  ASSERT_TRUE(w.status.ok());

  // Heal; the singleton re-enters through the recovering protocol.
  net_->Heal();
  for (SiteId s : majority) sys_->SetPresumedState(s, lone, std::nullopt);
  ASSERT_TRUE(cluster_->CrashSite(lone).ok());  // formalize its outage
  ASSERT_TRUE(cluster_->RestoreSite(lone).ok());
  sim_->Run();
  ASSERT_TRUE(sys_->group()->RunRecovery(2).ok());
  auto back = sys_->Read(lone, 2, 0);
  ASSERT_TRUE(back.status.ok());
  EXPECT_EQ(back.data, Pat(2));
}

TEST_F(NodeTest, MultiWayPartitionBlocks) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  // Split 3/3: neither side can reconstruct (needs G+1 = 5 peers).
  std::vector<SiteId> a = {SiteOf(0), SiteOf(1), SiteOf(2)};
  std::vector<SiteId> b = {SiteOf(3), SiteOf(4), SiteOf(5)};
  net_->SetPartitions({a, b});
  for (SiteId x : b) sys_->SetPresumedState(x, SiteOf(2), SiteState::kDown);
  // From partition B, member 2's data needs reconstruction, whose sources
  // span the cut: the operation must fail rather than return stale data.
  NodeConfig nc;
  auto r = sys_->Read(SiteOf(3), 2, 0);
  EXPECT_FALSE(r.status.ok());
}

}  // namespace
}  // namespace radd
