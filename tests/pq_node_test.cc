// Tests for the dual-parity (P+Q) message-driven protocol layer: writes
// fan out to both parity sites, Q sites fold in their GF(256) coefficient
// on apply, and client reconstruction survives two simultaneous failures
// by picking a decodable plan (P-only, Q-only, or the two-erasure solve).

#include "core/node.h"

#include <gtest/gtest.h>

namespace radd {
namespace {

class PqNodeTest : public ::testing::Test {
 protected:
  PqNodeTest() { Build(); }

  void Build(const NodeConfig& nc = {}) {
    config_.group_size = 4;
    config_.parities = 2;
    config_.rows = 14;
    config_.block_size = 512;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0xabc);
    cluster_ = std::make_unique<Cluster>(7, sc);
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }
  const PlacementMap& Lay() { return sys_->group()->layout(); }
  BlockNum RowOf(int m, BlockNum i) {
    return Lay().DataToRow(static_cast<SiteId>(m), i);
  }
  SiteId PSiteOf(BlockNum row) {
    return SiteOf(static_cast<int>(Lay().ParitySite(row)));
  }
  SiteId QSiteOf(BlockNum row) {
    return SiteOf(static_cast<int>(Lay().QParitySite(row)));
  }
  SiteId SpareSiteOf(BlockNum row) {
    return SiteOf(static_cast<int>(Lay().SpareSite(row)));
  }
  /// A client site that is none of the given sites (always exists: at
  /// most three sites are excluded and the cluster has seven).
  SiteId OtherSite(std::initializer_list<SiteId> avoid) {
    for (int m = 0; m < sys_->group()->num_members(); ++m) {
      SiteId s = SiteOf(m);
      bool excluded = false;
      for (SiteId a : avoid) excluded |= (a == s);
      if (!excluded) return s;
    }
    return SiteOf(0);
  }
  /// First index of member `home` whose row also has `other` in a data
  /// role (so crashing both erases two data blocks of one row).
  BlockNum SharedDataIndex(int home, int other) {
    for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
      if (Lay().RoleOf(static_cast<SiteId>(other), RowOf(home, i)) ==
          BlockRole::kData) {
        return i;
      }
    }
    ADD_FAILURE() << "no shared data row for members " << home << "/"
                  << other;
    return 0;
  }

  void WriteAll(uint64_t salt = 0) {
    for (int m = 0; m < sys_->group()->num_members(); ++m) {
      for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
        ASSERT_TRUE(sys_->Write(SiteOf(m), m, i,
                                Pat(salt + uint64_t(m) * 100 + i))
                        .status.ok());
      }
    }
  }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
};

TEST_F(PqNodeTest, WritesMaintainBothParityInvariants) {
  WriteAll();
  sim_->Run();  // drain side effects
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(PqNodeTest, WriteLatencyUnchangedBySecondParityLeg) {
  // The P and Q legs run in parallel, so the §5 commit condition costs
  // one parity round trip even with two parities: W + RW = 105 ms.
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(1));
  ASSERT_TRUE(w.status.ok());
  EXPECT_EQ(w.latency, Micros(105000));
}

TEST_F(PqNodeTest, BatchedWritesMaintainBothParityInvariants) {
  NodeConfig nc;
  nc.parity_batch.enabled = true;
  Build(nc);
  WriteAll();
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(PqNodeTest, ReadSurvivesHomePlusSpareCrash) {
  const BlockNum row = RowOf(2, 0);
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(7)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(SpareSiteOf(row)).ok());
  SiteId client = OtherSite({SiteOf(2), SpareSiteOf(row)});
  auto r = sys_->Read(client, 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(7));
  // The dead spare was skipped, not waited out.
  EXPECT_GT(sys_->stats().Get("node.read_spare_down"), 0u);
  EXPECT_GT(sys_->stats().Get("node.degraded_reads"), 0u);
}

TEST_F(PqNodeTest, ReadSurvivesTwoDataMemberCrashes) {
  const BlockNum i = SharedDataIndex(2, 3);
  WriteAll(5);
  sim_->Run();
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(3)).ok());
  SiteId client = OtherSite({SiteOf(2), SiteOf(3)});
  auto r = sys_->Read(client, 2, i);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(5 + 200 + i));
  EXPECT_GT(sys_->stats().Get("node.recon_two_erasure"), 0u);
}

TEST_F(PqNodeTest, ReadDecodesViaQWhenPSiteDown) {
  const BlockNum row = RowOf(2, 0);
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(9)).status.ok());
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(PSiteOf(row)).ok());
  SiteId client = OtherSite({SiteOf(2), PSiteOf(row)});
  auto r = sys_->Read(client, 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(9));
  EXPECT_GT(sys_->stats().Get("node.degraded_reads.q"), 0u);
}

TEST_F(PqNodeTest, CrashWriteRecoverRoundTripRebuildsQ) {
  WriteAll(11);
  sim_->Run();
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(1)).ok());
  // Writes while down route through the spare; rows where site 1 is a
  // parity role get their legs dropped and must be rebuilt by recovery.
  ASSERT_TRUE(sys_->Write(SiteOf(4), 1, 2, Pat(42)).status.ok());
  ASSERT_TRUE(sys_->Write(SiteOf(0), 0, 1, Pat(43)).status.ok());
  ASSERT_TRUE(cluster_->RestoreSite(SiteOf(1)).ok());
  sim_->Run();
  ASSERT_TRUE(sys_->group()->RunRecovery(1).ok());
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(1), 1, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(42));
}

TEST_F(PqNodeTest, DegradedWriteUpdatesBothParities) {
  WriteAll(17);
  sim_->Run();
  ASSERT_TRUE(cluster_->CrashSite(SiteOf(2)).ok());
  auto w = sys_->Write(SiteOf(0), 2, 0, Pat(55));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  sim_->Run();
  // The spare now carries the value and both parities its delta; a
  // two-erasure decode (pretend the spare died too) must see the new
  // value.
  const BlockNum row = RowOf(2, 0);
  ASSERT_TRUE(cluster_->CrashSite(SpareSiteOf(row)).ok());
  SiteId client = OtherSite({SiteOf(2), SpareSiteOf(row)});
  auto r = sys_->Read(client, 2, 0);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(55));
}

}  // namespace
}  // namespace radd
