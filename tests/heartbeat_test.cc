// Tests for the heartbeat failure detector and its integration with the
// protocol layer.

#include "cluster/heartbeat.h"

#include <gtest/gtest.h>

#include "core/node.h"

namespace radd {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest()
      : net_(&sim_, NetworkModel{}, 3),
        cluster_(4, SiteConfig{1, 8, 256}),
        detector_(&sim_, &net_, &cluster_, {0, 1, 2, 3}) {}

  Simulator sim_;
  Network net_;
  Cluster cluster_;
  HeartbeatDetector detector_;
};

TEST_F(HeartbeatTest, AllUpNobodySuspected) {
  detector_.Start();
  sim_.RunUntil(Seconds(10));
  for (SiteId a = 0; a < 4; ++a) {
    for (SiteId b = 0; b < 4; ++b) {
      EXPECT_FALSE(detector_.Suspects(a, b)) << a << " suspects " << b;
      EXPECT_EQ(detector_.Perceived(a, b), SiteState::kUp);
    }
  }
}

TEST_F(HeartbeatTest, CrashedSiteGetsSuspected) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(cluster_.CrashSite(2).ok());
  sim_.RunUntil(Seconds(10));
  for (SiteId a : {0u, 1u, 3u}) {
    EXPECT_TRUE(detector_.Suspects(a, 2)) << a;
    EXPECT_EQ(detector_.Perceived(a, 2), SiteState::kDown);
  }
  EXPECT_FALSE(detector_.Suspects(0, 1));
}

TEST_F(HeartbeatTest, SuspicionClearsOnReturn) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(cluster_.CrashSite(2).ok());
  sim_.RunUntil(Seconds(10));
  ASSERT_TRUE(detector_.Suspects(0, 2));
  ASSERT_TRUE(cluster_.RestoreSite(2).ok());
  ASSERT_TRUE(cluster_.MarkUp(2).ok());
  sim_.RunUntil(Seconds(15));
  EXPECT_FALSE(detector_.Suspects(0, 2));
  EXPECT_GE(detector_.transitions(), 6u);  // 3 raised + 3 cleared
}

TEST_F(HeartbeatTest, LostHeartbeatsAreProbedNotDeclared) {
  // Flapping fix: k missed intervals alone must not raise a suspicion.
  // Site 2's heartbeats are all lost, but it answers confirmation probes —
  // so it stays in the membership, with zero false suspicions.
  detector_.Start();
  sim_.RunUntil(Seconds(2));
  net_.SetFaultHook("heartbeat", [](const Message& m) {
    return m.from == 2 ? FaultAction::kDrop : FaultAction::kDeliver;
  });
  sim_.RunUntil(Seconds(20));
  for (SiteId a : {0u, 1u, 3u}) {
    EXPECT_FALSE(detector_.Suspects(a, 2)) << a << " flapped on site 2";
  }
  EXPECT_GT(detector_.stats().Get("detector.probes_sent"), 0u);
  EXPECT_GT(detector_.stats().Get("detector.probes_answered"), 0u);
  EXPECT_EQ(detector_.false_suspicions(), 0u);
  net_.ClearFaultHooks();
}

TEST_F(HeartbeatTest, UnansweredProbeRaisesFalseSuspicion) {
  // When the probe goes unanswered too, the detector declares — and since
  // the process is in fact alive, the false-positive counter records it.
  detector_.Start();
  sim_.RunUntil(Seconds(2));
  auto drop_from_2 = [](const Message& m) {
    return m.from == 2 ? FaultAction::kDrop : FaultAction::kDeliver;
  };
  net_.SetFaultHook("heartbeat", drop_from_2);
  net_.SetFaultHook("hb_probe_ack", drop_from_2);
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(detector_.Suspects(0, 2));
  EXPECT_GE(detector_.false_suspicions(), 1u);
  net_.ClearFaultHooks();
}

TEST_F(HeartbeatTest, FencedSiteRejoinsThroughControlPlane) {
  // Detector + service end to end: the majority side of a partition fences
  // the isolated site; after the heal its heartbeats are heard again and
  // the service rejoins it as recovering.
  SiteStatusService service(&sim_, &cluster_);
  detector_.SetStatusService(&service);
  detector_.Start();
  sim_.RunUntil(Seconds(2));
  net_.SetPartitions({{0, 1, 3}, {2}});
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(cluster_.StateOf(2), SiteState::kDown);
  EXPECT_TRUE(service.ProcessAlive(2)) << "fenced, not dead";
  EXPECT_EQ(service.stats().Get("status.declared_down"), 1u);
  // The minority side (one observer of three peers) must never declare.
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kUp);

  net_.Heal();
  sim_.RunUntil(Seconds(20));
  EXPECT_EQ(cluster_.StateOf(2), SiteState::kRecovering)
      << "rejoined, pending a recovery sweep";
  EXPECT_EQ(service.stats().Get("status.rejoins"), 1u);
  EXPECT_GE(service.Epoch(2), 2u);
}

TEST_F(HeartbeatTest, PartitionLooksLikeFailureFromBothSides) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  net_.SetPartitions({{0, 1, 2}, {3}});
  sim_.RunUntil(Seconds(10));
  // Majority suspects the singleton; the singleton suspects everyone.
  EXPECT_TRUE(detector_.Suspects(0, 3));
  EXPECT_TRUE(detector_.Suspects(3, 0));
  EXPECT_TRUE(detector_.Suspects(3, 1));
  EXPECT_FALSE(detector_.Suspects(0, 1));
  net_.Heal();
  sim_.RunUntil(Seconds(15));
  EXPECT_FALSE(detector_.Suspects(0, 3));
  EXPECT_FALSE(detector_.Suspects(3, 0));
}

TEST(HeartbeatIntegration, ChainsToProtocolHandlers) {
  // The detector must not eat the RADD protocol's messages.
  RaddConfig config;
  config.group_size = 4;
  config.rows = 12;
  config.block_size = 256;
  Simulator sim;
  Network net(&sim, NetworkModel{}, 5);
  Cluster cluster(6, SiteConfig{1, 12, 256});
  RaddNodeSystem sys(&sim, &net, &cluster, config);
  HeartbeatDetector detector(&sim, &net, &cluster, {0, 1, 2, 3, 4, 5});
  detector.Start();

  Block b(256);
  b.FillPattern(1);
  auto w = sys.Write(1, 1, 0, b);
  ASSERT_TRUE(w.status.ok());
  auto r = sys.Read(2, 1, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, b);

  // Detector-driven degraded operation: crash a site, let the detector
  // notice, then feed its verdicts to the protocol layer.
  ASSERT_TRUE(cluster.CrashSite(1).ok());
  sim.RunUntil(sim.Now() + Seconds(5));
  ASSERT_TRUE(detector.Suspects(2, 1));
  sys.SetPresumedState(2, 1, detector.Perceived(2, 1));
  auto dr = sys.Read(2, 1, 0);
  ASSERT_TRUE(dr.status.ok()) << dr.status.ToString();
  EXPECT_EQ(dr.data, b);
}

}  // namespace
}  // namespace radd
