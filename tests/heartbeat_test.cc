// Tests for the heartbeat failure detector and its integration with the
// protocol layer.

#include "cluster/heartbeat.h"

#include <gtest/gtest.h>

#include "core/node.h"

namespace radd {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest()
      : net_(&sim_, NetworkModel{}, 3),
        cluster_(4, SiteConfig{1, 8, 256}),
        detector_(&sim_, &net_, &cluster_, {0, 1, 2, 3}) {}

  Simulator sim_;
  Network net_;
  Cluster cluster_;
  HeartbeatDetector detector_;
};

TEST_F(HeartbeatTest, AllUpNobodySuspected) {
  detector_.Start();
  sim_.RunUntil(Seconds(10));
  for (SiteId a = 0; a < 4; ++a) {
    for (SiteId b = 0; b < 4; ++b) {
      EXPECT_FALSE(detector_.Suspects(a, b)) << a << " suspects " << b;
      EXPECT_EQ(detector_.Perceived(a, b), SiteState::kUp);
    }
  }
}

TEST_F(HeartbeatTest, CrashedSiteGetsSuspected) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(cluster_.CrashSite(2).ok());
  sim_.RunUntil(Seconds(10));
  for (SiteId a : {0u, 1u, 3u}) {
    EXPECT_TRUE(detector_.Suspects(a, 2)) << a;
    EXPECT_EQ(detector_.Perceived(a, 2), SiteState::kDown);
  }
  EXPECT_FALSE(detector_.Suspects(0, 1));
}

TEST_F(HeartbeatTest, SuspicionClearsOnReturn) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(cluster_.CrashSite(2).ok());
  sim_.RunUntil(Seconds(10));
  ASSERT_TRUE(detector_.Suspects(0, 2));
  ASSERT_TRUE(cluster_.RestoreSite(2).ok());
  ASSERT_TRUE(cluster_.MarkUp(2).ok());
  sim_.RunUntil(Seconds(15));
  EXPECT_FALSE(detector_.Suspects(0, 2));
  EXPECT_GE(detector_.transitions(), 6u);  // 3 raised + 3 cleared
}

TEST_F(HeartbeatTest, PartitionLooksLikeFailureFromBothSides) {
  detector_.Start();
  sim_.RunUntil(Seconds(5));
  net_.SetPartitions({{0, 1, 2}, {3}});
  sim_.RunUntil(Seconds(10));
  // Majority suspects the singleton; the singleton suspects everyone.
  EXPECT_TRUE(detector_.Suspects(0, 3));
  EXPECT_TRUE(detector_.Suspects(3, 0));
  EXPECT_TRUE(detector_.Suspects(3, 1));
  EXPECT_FALSE(detector_.Suspects(0, 1));
  net_.Heal();
  sim_.RunUntil(Seconds(15));
  EXPECT_FALSE(detector_.Suspects(0, 3));
  EXPECT_FALSE(detector_.Suspects(3, 0));
}

TEST(HeartbeatIntegration, ChainsToProtocolHandlers) {
  // The detector must not eat the RADD protocol's messages.
  RaddConfig config;
  config.group_size = 4;
  config.rows = 12;
  config.block_size = 256;
  Simulator sim;
  Network net(&sim, NetworkModel{}, 5);
  Cluster cluster(6, SiteConfig{1, 12, 256});
  RaddNodeSystem sys(&sim, &net, &cluster, config);
  HeartbeatDetector detector(&sim, &net, &cluster, {0, 1, 2, 3, 4, 5});
  detector.Start();

  Block b(256);
  b.FillPattern(1);
  auto w = sys.Write(1, 1, 0, b);
  ASSERT_TRUE(w.status.ok());
  auto r = sys.Read(2, 1, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, b);

  // Detector-driven degraded operation: crash a site, let the detector
  // notice, then feed its verdicts to the protocol layer.
  ASSERT_TRUE(cluster.CrashSite(1).ok());
  sim.RunUntil(sim.Now() + Seconds(5));
  ASSERT_TRUE(detector.Suspects(2, 1));
  sys.SetPresumedState(2, 1, detector.Perceived(2, 1));
  auto dr = sys.Read(2, 1, 0);
  ASSERT_TRUE(dr.status.ok()) << dr.status.ToString();
  EXPECT_EQ(dr.data, b);
}

}  // namespace
}  // namespace radd
