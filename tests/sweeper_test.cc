// Tests for the incremental recovery sweeper and its interplay with the
// epoch-stamped control plane: paced background recovery, crash-mid-sweep
// resume, foreground traffic during a sweep, and stale-epoch fencing of
// delayed messages from a previous incarnation.

#include "core/sweeper.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/node.h"

namespace radd {
namespace {

class SweeperTest : public ::testing::Test {
 protected:
  SweeperTest() {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 256;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0x5ee9);
    cluster_ = std::make_unique<Cluster>(6, sc);
    NodeConfig nc;
    nc.retry_timeout = Millis(80);
    nc.max_retries = 5;
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
    service_.emplace(sim_.get(), cluster_.get());
    sys_->SetStatusService(&*service_);
    // What the chaos harness wires up: a declared-down site loses its
    // volatile protocol state (it is a process, not an oracle).
    service_->AddListener([this](SiteId site, SiteState state, uint64_t) {
      if (state == SiteState::kDown) sys_->ResetNodeVolatileState(site);
    });
  }

  void StartSweeper(SweeperConfig cfg = {}) {
    sweeper_.emplace(sim_.get(), sys_->group(), &*service_, cfg);
    sweeper_->Start();
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }
  void PopulateMember(int m, uint64_t seed_base) {
    for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(sys_->Write(SiteOf(0), m, i, Pat(seed_base + i)).status.ok());
    }
    sim_->Run();
  }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
  std::optional<SiteStatusService> service_;
  std::optional<RecoverySweeper> sweeper_;
};

TEST_F(SweeperTest, PacedSweepDrainsSparesAndMarksUp) {
  PopulateMember(2, 100);
  StartSweeper();

  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  // Writes during the outage land on spares (the ledger the sweep must
  // honor before the member may serve again).
  ASSERT_TRUE(sys_->Write(SiteOf(0), 2, 1, Pat(201)).status.ok());
  ASSERT_TRUE(sys_->Write(SiteOf(1), 2, 5, Pat(205)).status.ok());
  sim_->Run();

  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  EXPECT_TRUE(sweeper_->active(2));
  sim_->Run();  // the sweep is the only periodic activity; it must finish

  EXPECT_EQ(cluster_->StateOf(SiteOf(2)), SiteState::kUp);
  EXPECT_EQ(sweeper_->stats().Get("sweeper.completed"), 1u);
  EXPECT_EQ(sweeper_->stats().Get("sweeper.rows_swept"),
            static_cast<uint64_t>(config_.rows));
  // Paced: 12 rows at 4 rows/tick is at least 3 ticks, not one burst.
  EXPECT_GE(sweeper_->stats().Get("sweeper.ticks"), 3u);
  EXPECT_FALSE(sweeper_->active(2));
  EXPECT_EQ(sweeper_->cursor(2), 0u) << "cursor resets after completion";

  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r1 = sys_->Read(SiteOf(3), 2, 1);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.data, Pat(201));
  auto r5 = sys_->Read(SiteOf(3), 2, 5);
  ASSERT_TRUE(r5.status.ok());
  EXPECT_EQ(r5.data, Pat(205));
}

TEST_F(SweeperTest, CrashMidSweepResumesAtCursor) {
  PopulateMember(2, 300);
  StartSweeper();

  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(0), 2, 2, Pat(302)).status.ok());
  ASSERT_TRUE(sys_->Write(SiteOf(1), 2, 7, Pat(307)).status.ok());
  sim_->Run();

  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  // Let the sweep get partway, then kill the site again mid-drain.
  ASSERT_TRUE(sim_->RunUntilPredicate([&] { return sweeper_->cursor(2) >= 4; }));
  const BlockNum mid = sweeper_->cursor(2);
  ASSERT_LT(mid, static_cast<BlockNum>(config_.rows)) << "crash must be mid-sweep";
  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  sim_->Run();
  EXPECT_FALSE(sweeper_->active(2));
  EXPECT_EQ(sweeper_->cursor(2), mid) << "cursor (the recovery log) survives";

  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  sim_->Run();

  EXPECT_EQ(cluster_->StateOf(SiteOf(2)), SiteState::kUp);
  EXPECT_GE(sweeper_->stats().Get("sweeper.resumes"), 1u);
  // Resume, not restart: rows [0, mid) were not re-drained, so the total
  // swept across both passes is exactly one pass over the member.
  EXPECT_EQ(sweeper_->stats().Get("sweeper.rows_swept"),
            static_cast<uint64_t>(config_.rows));
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  // No acked write lost across the double outage.
  auto r2 = sys_->Read(SiteOf(3), 2, 2);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.data, Pat(302));
  auto r7 = sys_->Read(SiteOf(3), 2, 7);
  ASSERT_TRUE(r7.status.ok());
  EXPECT_EQ(r7.data, Pat(307));
  auto r0 = sys_->Read(SiteOf(3), 2, 0);
  ASSERT_TRUE(r0.status.ok());
  EXPECT_EQ(r0.data, Pat(300));
}

TEST_F(SweeperTest, RowsDirtiedBehindTheCursorAreRescanned) {
  PopulateMember(2, 400);
  StartSweeper();

  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  sim_->Run();
  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  ASSERT_TRUE(sim_->RunUntilPredicate([&] { return sweeper_->cursor(2) >= 8; }));

  // Second outage AFTER the cursor passed row 0's region: a write now
  // lands on a spare behind the cursor. Blind resume would miss it; the
  // verification scan must catch it and rewind.
  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  ASSERT_TRUE(sys_->Write(SiteOf(0), 2, 0, Pat(999)).status.ok());
  sim_->Run();
  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  sim_->Run();

  EXPECT_EQ(cluster_->StateOf(SiteOf(2)), SiteState::kUp);
  EXPECT_GE(sweeper_->stats().Get("sweeper.rescans"), 1u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(3), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(999)) << "spare behind the cursor must be drained";
}

TEST_F(SweeperTest, ForegroundTrafficFlowsDuringSweep) {
  for (int m = 0; m < 4; ++m) PopulateMember(m, 100 * (m + 1));
  SweeperConfig cfg;
  cfg.backpressure_threshold = 1;  // any foreground op throttles the sweep
  cfg.load_probe = [this] { return sys_->InFlightOps(); };
  StartSweeper(cfg);

  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  sim_->Run();
  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());

  // Client traffic to healthy members, issued while the sweep runs.
  int completed = 0, failed = 0;
  for (int i = 0; i < 8; ++i) {
    sim_->Schedule(Millis(5 * i), [this, i, &completed, &failed]() {
      sys_->AsyncWrite(SiteOf(3), 1, static_cast<BlockNum>(i % 4),
                       Pat(700 + i), [&](Status st, SimTime) {
                         ++completed;
                         if (!st.ok()) ++failed;
                       });
    });
  }
  sim_->Run();

  EXPECT_EQ(completed, 8) << "foreground writes hung behind the sweep";
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(cluster_->StateOf(SiteOf(2)), SiteState::kUp);
  EXPECT_GE(sweeper_->stats().Get("sweeper.backpressure_ticks"), 1u);
  // The per-tick I/O bound: under backpressure a tick repairs one row, and
  // even an idle tick is capped at rows_per_tick rows.
  EXPECT_LE(sweeper_->stats().Percentile("sweeper.tick_ops", 100.0),
            6.0 * cfg.rows_per_tick);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(SweeperTest, DiskFailureSweepWithoutRestart) {
  PopulateMember(1, 500);
  StartSweeper();
  // Media failure: the site stays alive, goes kRecovering, and the sweep
  // reconstructs the lost blocks from the rest of the group.
  ASSERT_TRUE(service_->InjectDiskFailure(SiteOf(1), 0).ok());
  EXPECT_TRUE(sweeper_->active(1));
  sim_->Run();
  EXPECT_EQ(cluster_->StateOf(SiteOf(1)), SiteState::kUp);
  for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
    auto r = sys_->Read(SiteOf(0), 1, i);
    ASSERT_TRUE(r.status.ok()) << "block " << i << ": " << r.status.ToString();
    EXPECT_EQ(r.data, Pat(500 + i));
  }
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(SweeperTest, StaleEpochMessageFromOldIncarnationRejected) {
  PopulateMember(2, 600);
  StartSweeper();

  // Capture (and suppress) the parity updates of one write, simulating a
  // message stuck in the network from the home's current incarnation. The
  // spare path is blocked too, so the write fails outright and its UID
  // never reaches the parity array — the replayed update below cannot be
  // recognized by the §3.3 idempotence check and only the epoch stands
  // between it and the recovered parity block.
  std::optional<Message> delayed;
  net_->SetFaultHook("parity_update", [&](const Message& m) {
    if (!delayed) delayed = m;
    return FaultAction::kDrop;
  });
  net_->SetFaultHook("spare_write_req",
                     [](const Message&) { return FaultAction::kDrop; });
  bool done = false;
  sys_->AsyncWrite(SiteOf(0), 2, 3, Pat(777),
                   [&](Status, SimTime) { done = true; });
  sim_->RunUntil(sim_->Now() + Millis(120));
  ASSERT_TRUE(delayed.has_value()) << "no parity update captured";

  // The home dies and cycles down -> recovering -> up; every transition
  // bumps its epoch past the one the captured update carries.
  const uint64_t old_epoch = service_->Epoch(SiteOf(2));
  ASSERT_TRUE(service_->InjectCrash(SiteOf(2)).ok());
  sim_->Run();  // the write exhausts its retries and completes (failed)
  ASSERT_TRUE(done) << "write hung";
  net_->ClearFaultHooks();
  ASSERT_TRUE(service_->NotifyRestart(SiteOf(2)).ok());
  sim_->Run();
  ASSERT_EQ(cluster_->StateOf(SiteOf(2)), SiteState::kUp);
  ASSERT_GT(service_->Epoch(SiteOf(2)), old_epoch);

  // The stuck message finally arrives. Nobody restamps a dead
  // incarnation's messages, so the receiver must fence it off instead of
  // XORing a stale delta into recovered parity.
  const uint64_t before = sys_->stats().Get("node.stale_epoch_rejected");
  net_->Send(*delayed);
  sim_->Run();
  EXPECT_GE(sys_->stats().Get("node.stale_epoch_rejected"), before + 1);

  // Redundancy is intact: scrubs find nothing structural to repair and
  // every value reads back.
  for (int m = 0; m < 6; ++m) {
    ASSERT_TRUE(sys_->group()->ScrubData(m).ok());
    ASSERT_TRUE(sys_->group()->ScrubParity(m).ok());
  }
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

}  // namespace
}  // namespace radd
