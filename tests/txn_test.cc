// Tests for the transaction module: lock manager (§3.3), WAL and
// no-overwrite storage managers (§3.4), and commit protocols (§6).

#include <gtest/gtest.h>

#include "txn/commit.h"
#include "txn/lock_manager.h"
#include "txn/storage_manager.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// LockManager.
// ---------------------------------------------------------------------------

TEST(LockManager, SharedLocksCoexist) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, k, LockMode::kShared), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(1, k, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, k, LockMode::kShared));
}

TEST(LockManager, ExclusiveConflicts) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kGranted);
  // Younger (2) conflicting with older (1): die.
  EXPECT_EQ(lm.Acquire(2, k, LockMode::kShared), LockResult::kAbort);
}

TEST(LockManager, OlderWaitsForYounger) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(5, k, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kWait);
  std::vector<TxnId> granted = lm.Release(5, k);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 1u);
  EXPECT_TRUE(lm.Holds(1, k, LockMode::kExclusive));
}

TEST(LockManager, Reentrant) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kGranted);
}

TEST(LockManager, SoleHolderUpgrade) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(1, k, LockMode::kExclusive));
}

TEST(LockManager, FifoGrantOrder) {
  LockManager lm;
  LockKey k{0, 5};
  EXPECT_EQ(lm.Acquire(9, k, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(3, k, LockMode::kShared), LockResult::kWait);
  EXPECT_EQ(lm.Acquire(4, k, LockMode::kShared), LockResult::kWait);
  std::vector<TxnId> granted = lm.Release(9, k);
  // Both shared waiters granted together.
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_EQ(granted[0], 3u);
  EXPECT_EQ(granted[1], 4u);
}

TEST(LockManager, ReleaseAllFreesEverything) {
  LockManager lm;
  lm.Acquire(1, LockKey{0, 1}, LockMode::kExclusive);
  lm.Acquire(1, LockKey{0, 2}, LockMode::kShared);
  lm.Acquire(1, LockKey{1, 1}, LockMode::kExclusive);
  EXPECT_EQ(lm.HeldBy(1).size(), 3u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldBy(1).size(), 0u);
  EXPECT_EQ(lm.LockedKeys(), 0u);
}

TEST(LockManager, WaiterDoesNotStarveBehindLaterShared) {
  LockManager lm;
  LockKey k{0, 5};
  lm.Acquire(5, k, LockMode::kShared);
  // Older exclusive waits.
  EXPECT_EQ(lm.Acquire(1, k, LockMode::kExclusive), LockResult::kWait);
  // A new shared request must queue behind the exclusive waiter rather
  // than sneaking in.
  EXPECT_EQ(lm.Acquire(2, k, LockMode::kShared), LockResult::kWait);
  std::vector<TxnId> granted = lm.Release(5, k);
  ASSERT_FALSE(granted.empty());
  EXPECT_EQ(granted[0], 1u);
}

// ---------------------------------------------------------------------------
// Storage managers over a RADD group.
// ---------------------------------------------------------------------------

class StorageManagerTest : public ::testing::Test {
 protected:
  static constexpr BlockNum kLogBlocks = 8;
  static constexpr BlockNum kPages = 8;

  StorageManagerTest() {
    config_.group_size = 4;
    config_.rows = 48;  // 8 cycles of 6 rows -> 32 data blocks per member
    config_.block_size = 1024;
    SiteConfig sc{1, config_.rows, config_.block_size};
    cluster_ = std::make_unique<Cluster>(6, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  std::vector<uint8_t> Bytes(std::string s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }
  std::string AsString(const Block& b, size_t offset, size_t n) {
    return std::string(reinterpret_cast<const char*>(b.data()) + offset, n);
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(StorageManagerTest, WalCommitSurvivesCrash) {
  WalStorageManager wal(group_.get(), 1, kLogBlocks, kPages);
  TxnId t = wal.Begin();
  ASSERT_TRUE(wal.Update(t, {3, 10, Bytes("hello")}).ok());
  ASSERT_TRUE(wal.Commit(t).ok());

  wal.CrashVolatile();  // buffered page gone; log is durable
  Result<OpCounts> rec = wal.Recover(group_->SiteOfMember(1));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();

  Result<Block> page = wal.ReadCommitted(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 10, 5), "hello");
}

TEST_F(StorageManagerTest, WalUncommittedRolledBack) {
  WalStorageManager wal(group_.get(), 1, kLogBlocks, kPages);
  TxnId t1 = wal.Begin();
  ASSERT_TRUE(wal.Update(t1, {3, 0, Bytes("COMMITTED")}).ok());
  ASSERT_TRUE(wal.Commit(t1).ok());

  TxnId t2 = wal.Begin();
  ASSERT_TRUE(wal.Update(t2, {3, 0, Bytes("UNCOMMITT")}).ok());
  // Steal: flush the dirty page (with uncommitted data) to disk.
  ASSERT_TRUE(wal.FlushPages().ok());
  wal.CrashVolatile();

  Result<OpCounts> rec = wal.Recover(group_->SiteOfMember(1));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Result<Block> page = wal.ReadCommitted(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 0, 9), "COMMITTED");
}

TEST_F(StorageManagerTest, WalRedoUnflushedCommit) {
  WalStorageManager wal(group_.get(), 1, kLogBlocks, kPages);
  TxnId t = wal.Begin();
  ASSERT_TRUE(wal.Update(t, {5, 100, Bytes("durable")}).ok());
  ASSERT_TRUE(wal.Commit(t).ok());  // log forced; page NOT flushed
  wal.CrashVolatile();
  ASSERT_TRUE(wal.Recover(group_->SiteOfMember(1)).ok());
  Result<Block> page = wal.ReadCommitted(5);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 100, 7), "durable");
}

TEST_F(StorageManagerTest, WalAbortUndoesInPlace) {
  WalStorageManager wal(group_.get(), 1, kLogBlocks, kPages);
  TxnId t1 = wal.Begin();
  ASSERT_TRUE(wal.Update(t1, {0, 0, Bytes("base")}).ok());
  ASSERT_TRUE(wal.Commit(t1).ok());
  TxnId t2 = wal.Begin();
  ASSERT_TRUE(wal.Update(t2, {0, 0, Bytes("oops")}).ok());
  ASSERT_TRUE(wal.Abort(t2).ok());
  Result<Block> page = wal.ReadCommitted(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 0, 4), "base");
}

TEST_F(StorageManagerTest, WalRecoveryDuringSiteFailureCostsGRemoteReads) {
  // The §3.4 point: with the home site down, every block the recovery
  // pass touches is reconstructed with G remote reads.
  WalStorageManager wal(group_.get(), 1, kLogBlocks, kPages);
  TxnId t = wal.Begin();
  ASSERT_TRUE(wal.Update(t, {2, 0, Bytes("x")}).ok());
  ASSERT_TRUE(wal.Commit(t).ok());
  wal.CrashVolatile();
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());

  SiteId remote = group_->SiteOfMember(3);
  Result<OpCounts> rec = wal.Recover(remote);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // At least the first log block required full reconstruction.
  EXPECT_GE(rec->remote_reads, static_cast<uint64_t>(config_.group_size));
}

TEST_F(StorageManagerTest, NoOverwriteCommitIsDurableWithoutRecoveryWork) {
  NoOverwriteStorageManager now(group_.get(), 1, kPages);
  TxnId t = now.Begin();
  ASSERT_TRUE(now.Update(t, {3, 10, Bytes("hello")}).ok());
  ASSERT_TRUE(now.Commit(t).ok());
  now.CrashVolatile();
  Result<OpCounts> rec = now.Recover(group_->SiteOfMember(1));
  ASSERT_TRUE(rec.ok());
  // Exactly one root read: "no concept of processing a log".
  EXPECT_EQ(rec->Total(), 1u);
  Result<Block> page = now.ReadCommitted(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 10, 5), "hello");
}

TEST_F(StorageManagerTest, NoOverwriteUncommittedInvisibleAfterCrash) {
  NoOverwriteStorageManager now(group_.get(), 1, kPages);
  TxnId t1 = now.Begin();
  ASSERT_TRUE(now.Update(t1, {0, 0, Bytes("base")}).ok());
  ASSERT_TRUE(now.Commit(t1).ok());
  TxnId t2 = now.Begin();
  ASSERT_TRUE(now.Update(t2, {0, 0, Bytes("oops")}).ok());
  // No commit; crash. The shadow version is garbage by construction.
  now.CrashVolatile();
  ASSERT_TRUE(now.Recover(group_->SiteOfMember(1)).ok());
  Result<Block> page = now.ReadCommitted(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 0, 4), "base");
}

TEST_F(StorageManagerTest, NoOverwriteTxnSeesOwnWrites) {
  NoOverwriteStorageManager now(group_.get(), 1, kPages);
  TxnId t = now.Begin();
  ASSERT_TRUE(now.Update(t, {2, 0, Bytes("mine")}).ok());
  Result<Block> own = now.Read(t, 2);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(AsString(*own, 0, 4), "mine");
  // Not visible to committed readers until commit.
  Result<Block> committed = now.ReadCommitted(2);
  ASSERT_TRUE(committed.ok());
  EXPECT_NE(AsString(*committed, 0, 4), "mine");
}

TEST_F(StorageManagerTest, NoOverwriteAbortIsFree) {
  NoOverwriteStorageManager now(group_.get(), 1, kPages);
  TxnId t1 = now.Begin();
  ASSERT_TRUE(now.Update(t1, {1, 0, Bytes("keep")}).ok());
  ASSERT_TRUE(now.Commit(t1).ok());
  TxnId t2 = now.Begin();
  ASSERT_TRUE(now.Update(t2, {1, 0, Bytes("drop")}).ok());
  ASSERT_TRUE(now.Abort(t2).ok());
  Result<Block> page = now.ReadCommitted(1);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 0, 4), "keep");
}

TEST_F(StorageManagerTest, NoOverwriteRecoveryWorksWhileSiteDegraded) {
  NoOverwriteStorageManager now(group_.get(), 1, kPages);
  TxnId t = now.Begin();
  ASSERT_TRUE(now.Update(t, {3, 0, Bytes("safe")}).ok());
  ASSERT_TRUE(now.Commit(t).ok());
  now.CrashVolatile();
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  // Remote restart: one (reconstructed) root read and it is usable.
  Result<OpCounts> rec = now.Recover(group_->SiteOfMember(3));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Result<Block> page = now.ReadCommitted(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(AsString(*page, 0, 4), "safe");
}

// ---------------------------------------------------------------------------
// Commit protocols (§6).
// ---------------------------------------------------------------------------

class CommitTest : public ::testing::Test {
 protected:
  CommitTest() {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 512;
    SiteConfig sc{1, config_.rows, config_.block_size};
    cluster_ = std::make_unique<Cluster>(6, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(CommitTest, OnePhaseUsesFewerMessagesAndRounds) {
  DistributedTxnCoordinator coord(group_.get(), group_->SiteOfMember(0));
  std::vector<SlaveWork> work = {
      {1, {{0, Pat(1)}}},
      {2, {{0, Pat(2)}}},
      {3, {{0, Pat(3)}}},
  };
  CommitOutcome one = coord.Run(CommitProtocol::kOnePhase, work);
  ASSERT_TRUE(one.ok());
  CommitOutcome two = coord.Run(CommitProtocol::kTwoPhase, work);
  ASSERT_TRUE(two.ok());
  EXPECT_LT(one.messages, two.messages);
  EXPECT_LT(one.rounds, two.rounds);
}

TEST_F(CommitTest, SlaveCrashAfterDoneIsRecoverable) {
  // The paper's §6 argument: the parity messages sent before `done` make
  // the slave prepared; its writes survive a crash via reconstruction.
  DistributedTxnCoordinator coord(group_.get(), group_->SiteOfMember(0));
  Block payload = Pat(42);
  std::vector<SlaveWork> work = {{2, {{5, payload}}}};
  CommitOutcome out =
      coord.Run(CommitProtocol::kOnePhase, work, /*crash_after_done=*/2);
  ASSERT_TRUE(out.ok()) << out.status.ToString();
  EXPECT_EQ(cluster_->StateOf(group_->SiteOfMember(2)), SiteState::kDown);

  // The committed value is readable from any surviving site.
  OpResult r = group_->Read(group_->SiteOfMember(0), 2, 5);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, payload);

  // And the slave's recovery restores it locally.
  ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(2)).ok());
  ASSERT_TRUE(group_->RunRecovery(2).ok());
  OpResult local = group_->Read(group_->SiteOfMember(2), 2, 5);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.data, payload);
}

TEST_F(CommitTest, WritesAreDurableUnderBothProtocols) {
  DistributedTxnCoordinator coord(group_.get(), group_->SiteOfMember(0));
  std::vector<SlaveWork> work = {{1, {{0, Pat(7)}, {1, Pat(8)}}}};
  ASSERT_TRUE(coord.Run(CommitProtocol::kTwoPhase, work).ok());
  OpResult r0 = group_->Read(group_->SiteOfMember(1), 1, 0);
  OpResult r1 = group_->Read(group_->SiteOfMember(1), 1, 1);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r0.data, Pat(7));
  EXPECT_EQ(r1.data, Pat(8));
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

}  // namespace
}  // namespace radd
