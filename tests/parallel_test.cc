// Determinism oracle for the parallel execution engine (DESIGN.md §12).
//
// Three layers under test:
//   * ThreadPool / ParallelRunner — the run-farm substrate: every index
//     runs exactly once, serial fallback preserves index order, repeated
//     use is safe.
//   * The sharded Simulator — conservative windows must produce the same
//     simulated outcome at every worker count, and (for the workloads this
//     repo ships) the same outcome as the monolithic single-queue engine.
//   * Shared infrastructure (Stats, BlockArena) — internally synchronized,
//     so concurrent shards and run-farm jobs cannot corrupt counters or
//     the buffer free list.
//
// The volume oracle mirrors bench_throughput's volume mode in miniature:
// a closed loop of mixed reads/writes per site, client == home, fault-free
// network — the confinement contract under which sharding is defined.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/volume.h"
#include "fault/chaos.h"
#include "sim/parallel_runner.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/thread_pool.h"

namespace radd {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.ParallelFor(97, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(round, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), round * (round - 1) / 2);
  }
}

TEST(ThreadPoolTest, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(2, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 2);
}

// ------------------------------------------------------------ ParallelRunner

TEST(ParallelRunnerTest, SerialFallbackPreservesIndexOrder) {
  std::vector<int> order;
  ParallelRunner::Map(1, 10, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelRunnerTest, ParallelCoversEveryJob) {
  std::vector<std::atomic<int>> hits(50);
  ParallelRunner::Map(4, 50, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunnerTest, ZeroAndSingleJobEdges) {
  int runs = 0;
  ParallelRunner::Map(4, 0, [&](int) { ++runs; });
  EXPECT_EQ(runs, 0);
  ParallelRunner::Map(4, 1, [&](int) { ++runs; });
  EXPECT_EQ(runs, 1);
}

// ------------------------------------------------- sharded Simulator (toy)

/// Ping-pong across shards: each shard s, on every tick it owns, sends to
/// shard (s+1)%n with the lookahead delay, recording its execution trace.
/// The trace must be identical at every worker count.
std::vector<std::string> PingPongTrace(int shards, int threads, int hops) {
  Simulator sim;
  const SimTime kLookahead = Micros(500);
  sim.ConfigureShards(shards, kLookahead);
  std::vector<std::string> trace;
  std::mutex mu;  // traces from concurrent shards interleave; sort later
  std::function<void(int, int)> hop = [&](int s, int remaining) {
    {
      std::lock_guard<std::mutex> lock(mu);
      trace.push_back("s" + std::to_string(s) + "@" +
                      std::to_string(sim.Now()));
    }
    if (remaining == 0) return;
    int next = (s + 1) % shards;
    sim.AtShard(next, sim.Now() + kLookahead,
                [&hop, next, remaining]() { hop(next, remaining - 1); });
  };
  for (int s = 0; s < shards; ++s) {
    sim.AtShard(s, 0, [&hop, s, hops]() { hop(s, hops); });
  }
  sim.RunParallel(threads);
  std::sort(trace.begin(), trace.end());
  return trace;
}

TEST(ShardedSimulatorTest, PingPongIdenticalAtEveryThreadCount) {
  std::vector<std::string> t1 = PingPongTrace(4, 1, 40);
  EXPECT_EQ(t1.size(), 4u * 41u);
  EXPECT_EQ(t1, PingPongTrace(4, 2, 40));
  EXPECT_EQ(t1, PingPongTrace(4, 4, 40));
}

TEST(ShardedSimulatorTest, CrossShardScheduleIsUncancellable) {
  Simulator sim;
  sim.ConfigureShards(2, Micros(100));
  uint64_t cross_id = 123;
  bool fired = false;
  sim.AtShard(0, 0, [&]() {
    cross_id = sim.AtShard(1, sim.Now() + Micros(100), [&]() { fired = true; });
  });
  sim.RunParallel(1);
  EXPECT_EQ(cross_id, 0u);  // no handle across shards
  EXPECT_TRUE(fired);
  EXPECT_FALSE(sim.Cancel(0));  // the null id is never cancellable
}

TEST(ShardedSimulatorTest, SameShardCancelStillWorks) {
  Simulator sim;
  sim.ConfigureShards(2, Micros(100));
  bool fired = false;
  sim.AtShard(1, 0, [&]() {
    uint64_t id = sim.Schedule(Micros(50), [&]() { fired = true; });
    EXPECT_TRUE(sim.Cancel(id));
  });
  sim.RunParallel(2);
  EXPECT_FALSE(fired);
}

TEST(ShardedSimulatorTest, SingleShardRunParallelMatchesRun) {
  // An unsharded simulator reached through RunParallel must behave exactly
  // like Run(): same event order, same clock.
  auto run = [](bool parallel) {
    Simulator sim;
    std::vector<int> order;
    sim.Schedule(Micros(10), [&]() { order.push_back(1); });
    sim.Schedule(Micros(10), [&]() { order.push_back(2); });
    sim.Schedule(Micros(5), [&]() { order.push_back(0); });
    SimTime end = parallel ? sim.RunParallel(4) : sim.Run();
    order.push_back(static_cast<int>(end));
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------------- volume oracle (mini)

/// Outcome digest of a volume run: simulated makespan, ops completed, and
/// an FNV-1a hash over every site's full store contents (data bytes, block
/// UIDs, parity UID arrays) — the "final readback state".
struct VolumeOutcome {
  SimTime makespan = 0;
  int completed = 0;
  uint64_t store_hash = 0;
  bool operator==(const VolumeOutcome& o) const {
    return makespan == o.makespan && completed == o.completed &&
           store_hash == o.store_hash;
  }
};

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

VolumeOutcome RunMiniVolume(int groups, int threads, int ops_per_site) {
  RaddConfig config;
  config.group_size = 2;  // members = 4
  config.rows = 8;
  config.block_size = 128;
  const int members = config.group_size + 2;
  const int num_sites = groups == 1 ? members : members - 1 + groups;
  std::vector<int> drives(num_sites, 0);
  for (int d = 0; d < groups * members; ++d) ++drives[d % num_sites];

  Simulator sim;
  if (threads > 0) {
    sim.ConfigureShards(num_sites, NetworkModel{}.one_way_latency);
  }
  Network net(&sim, NetworkModel{}, 0xB01);
  if (threads > 0) {
    for (int s = 0; s < num_sites; ++s) net.MapSiteToShard(s, s);
  }
  std::vector<SiteConfig> site_configs;
  for (int s = 0; s < num_sites; ++s) {
    site_configs.push_back(SiteConfig{
        1, static_cast<BlockNum>(drives[s]) * config.rows,
        config.block_size});
  }
  Cluster cluster(site_configs);
  VolumeConfig vc;
  vc.group = config;
  vc.drives_per_site = drives;
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  RaddVolume& vol = **made;

  struct SiteLoop {
    Block payload{0};
    int completed = 0;
    int issued = 0;
  };
  std::vector<SiteLoop> loops(static_cast<size_t>(num_sites));
  for (auto& l : loops) l.payload = Block(config.block_size);
  std::function<void(int)> issue = [&](int s) {
    SiteLoop& loop = loops[static_cast<size_t>(s)];
    if (loop.issued >= ops_per_site) return;
    const int i = loop.issued++;
    const SiteId site = static_cast<SiteId>(s);
    const BlockNum lba =
        static_cast<BlockNum>(i) % vol.DataBlocksAtSite(site);
    if (i % 3 == 0) {
      vol.AsyncRead(site, site, lba,
                    [&, s](Status, const Block&, SimTime) {
                      ++loops[static_cast<size_t>(s)].completed;
                      issue(s);
                    });
    } else {
      loop.payload.FillPattern(static_cast<uint64_t>(s * 100003 + i));
      vol.AsyncWrite(site, site, lba, loop.payload,
                     [&, s](Status, SimTime) {
                       ++loops[static_cast<size_t>(s)].completed;
                       issue(s);
                     });
    }
  };
  constexpr int kOutstanding = 2;
  if (threads > 0) {
    for (int s = 0; s < num_sites; ++s) {
      sim.AtShard(s, 0, [&, s]() {
        for (int k = 0; k < kOutstanding * drives[s]; ++k) issue(s);
      });
    }
  } else {
    for (int s = 0; s < num_sites; ++s) {
      for (int k = 0; k < kOutstanding * drives[s]; ++k) issue(s);
    }
  }
  VolumeOutcome out;
  out.makespan = threads > 0 ? sim.RunParallel(threads) : sim.Run();
  uint64_t h = 1469598103934665603ull;
  for (int s = 0; s < num_sites; ++s) {
    const BlockStore* store = cluster.site(static_cast<SiteId>(s))->store();
    for (BlockNum b = 0; b < store->total_blocks(); ++b) {
      Result<BlockRecord> rec = store->Peek(b);
      if (!rec.ok()) {
        h = HashMix(h, 0xDEAD);
        continue;
      }
      for (uint8_t byte : rec->data.bytes()) h = HashMix(h, byte);
      h = HashMix(h, rec->uid.raw());
      for (Uid u : rec->uid_array) h = HashMix(h, u.raw());
    }
    out.completed += loops[static_cast<size_t>(s)].completed;
  }
  out.store_hash = h;
  return out;
}

TEST(VolumeOracleTest, ShardedMatchesMonolithicAtG1) {
  VolumeOutcome mono = RunMiniVolume(1, 0, 30);
  EXPECT_EQ(mono.completed, 4 * 30);
  EXPECT_EQ(mono, RunMiniVolume(1, 1, 30));
  EXPECT_EQ(mono, RunMiniVolume(1, 4, 30));
}

TEST(VolumeOracleTest, ShardedMatchesMonolithicAtG2) {
  VolumeOutcome mono = RunMiniVolume(2, 0, 24);
  EXPECT_EQ(mono, RunMiniVolume(2, 1, 24));
  EXPECT_EQ(mono, RunMiniVolume(2, 4, 24));
}

TEST(VolumeOracleTest, ShardedMatchesMonolithicAtG4) {
  VolumeOutcome mono = RunMiniVolume(4, 0, 18);
  EXPECT_EQ(mono, RunMiniVolume(4, 1, 18));
  EXPECT_EQ(mono, RunMiniVolume(4, 2, 18));
  EXPECT_EQ(mono, RunMiniVolume(4, 4, 18));
}

TEST(VolumeOracleTest, ThreadCountInvarianceAtG8) {
  // At g8 the monolithic and sharded engines may resolve very deep
  // same-tick causal ties differently (see simulator.h); thread-count
  // invariance of the sharded engine itself is unconditional.
  VolumeOutcome one = RunMiniVolume(8, 1, 12);
  EXPECT_EQ(one, RunMiniVolume(8, 2, 12));
  EXPECT_EQ(one, RunMiniVolume(8, 4, 12));
  EXPECT_EQ(one, RunMiniVolume(8, 8, 12));
}

// ----------------------------------------------------- chaos oracle (farm)

TEST(ChaosOracleTest, ConcurrentSeedsMatchSerialSummaries) {
  ChaosConfig config;
  config.plan.episodes = 2;
  config.ops_per_episode = 40;
  constexpr int kSeeds = 6;
  std::vector<std::string> serial(kSeeds), parallel(kSeeds);
  for (int i = 0; i < kSeeds; ++i) {
    ChaosHarness harness(config);
    serial[static_cast<size_t>(i)] =
        harness.Run(static_cast<uint64_t>(i + 1)).Summary();
  }
  ParallelRunner::Map(4, kSeeds, [&](int i) {
    ChaosHarness harness(config);
    parallel[static_cast<size_t>(i)] =
        harness.Run(static_cast<uint64_t>(i + 1)).Summary();
  });
  EXPECT_EQ(serial, parallel);
}

// ------------------------------------------------- shared infrastructure

TEST(SharedStateTest, StatsCountersAreExactUnderConcurrency) {
  Stats stats;
  Stats::Counter c = stats.Intern("hammer");
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        ++*c;
        stats.Add("named", 2);
        stats.Observe("sample", static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(stats.Get("hammer"), kThreads * kPerThread);
  EXPECT_EQ(stats.Get("named"), 2u * kThreads * kPerThread);
  EXPECT_EQ(stats.SampleCount("sample"),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(SharedStateTest, BlockArenaSurvivesConcurrentLeaseReturn) {
  BlockArena arena(64);
  constexpr int kThreads = 4, kRounds = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < kRounds; ++i) {
        Block a = arena.Lease();
        Block b = arena.LeaseCopyOf(a);
        arena.Return(std::move(a));
        arena.Return(std::move(b));
      }
    });
  }
  for (auto& w : workers) w.join();
  // Everything leased came back: the next lease is free-list reuse.
  uint64_t reuses_before = arena.reuses();
  Block x = arena.Lease();
  EXPECT_EQ(arena.reuses(), reuses_before + 1);
  EXPECT_EQ(x.size(), 64u);
}

}  // namespace
}  // namespace radd
