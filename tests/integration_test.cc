// Cross-module integration tests:
//   * the functional C-RAID — RaddGroup running over sites whose stores
//     are LocalRaid instances — through disk failures (absorbed locally)
//     and site failures (handled by the RADD layer);
//   * multi-group §4 deployments sharing a cluster, with failures that
//     cut across groups;
//   * workload-driven soak of the synchronous layer with trace replay
//     determinism.

#include <gtest/gtest.h>

#include "core/radd.h"
#include "schemes/local_raid.h"
#include "workload/workload.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

// ---------------------------------------------------------------------------
// C-RAID composition.
// ---------------------------------------------------------------------------

class CRaidIntegrationTest : public ::testing::Test {
 protected:
  static constexpr int kG = 4;        // RADD group size
  static constexpr int kLocalG = 4;   // local RAID group size
  static constexpr size_t kBlock = 512;

  CRaidIntegrationTest() {
    config_.group_size = kG;
    config_.rows = 12;  // 2 cycles -> 8 data blocks per member
    config_.block_size = kBlock;
    // Each site: local RAID of kLocalG+2 disks exposing >= rows blocks.
    BlockNum stripes = (config_.rows + kLocalG - 1) / kLocalG;
    cluster_ = std::make_unique<Cluster>(
        kG + 2, SiteConfig{kLocalG + 2, stripes, kBlock});
    for (int s = 0; s < cluster_->num_sites(); ++s) {
      LocalRaidConfig lc;
      lc.group_size = kLocalG;
      auto raid = std::make_unique<LocalRaid>(
          cluster_->site(static_cast<SiteId>(s))->disks(), lc);
      raids_.push_back(raid.get());
      cluster_->site(static_cast<SiteId>(s))->set_store(std::move(raid));
    }
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  void FillAll() {
    for (int m = 0; m < group_->num_members(); ++m) {
      for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
        ASSERT_TRUE(group_
                        ->Write(group_->SiteOfMember(m), m, i,
                                Pat(uint64_t(m) * 100 + i, kBlock))
                        .ok());
      }
    }
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<LocalRaid*> raids_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(CRaidIntegrationTest, NormalOperation) {
  FillAll();
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult r = group_->Read(group_->SiteOfMember(m), m, i);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.data, Pat(uint64_t(m) * 100 + i, kBlock));
    }
  }
}

TEST_F(CRaidIntegrationTest, LocalDiskFailureIsInvisibleToRaddLayer) {
  FillAll();
  // Fail one local disk at member 2's site; the site stays up, its RAID
  // reconstructs transparently.
  SiteId victim = group_->SiteOfMember(2);
  ASSERT_TRUE(cluster_->site(victim)->disks()->FailDisk(2).ok());
  EXPECT_EQ(cluster_->StateOf(victim), SiteState::kUp);
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    OpResult r = group_->Read(victim, 2, i);
    ASSERT_TRUE(r.ok()) << "block " << i;
    EXPECT_EQ(r.data, Pat(200 + i, kBlock));
    // And writes keep working through the degraded local array.
    ASSERT_TRUE(group_->Write(victim, 2, i, Pat(777 + i, kBlock)).ok());
  }
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  // The local rebuild clears the degradation entirely.
  ASSERT_TRUE(raids_[2]->Rebuild().ok());
  EXPECT_FALSE(raids_[2]->Degraded());
}

TEST_F(CRaidIntegrationTest, SiteFailureStillHandledByRaddLayer) {
  FillAll();
  SiteId victim = group_->SiteOfMember(1);
  ASSERT_TRUE(cluster_->CrashSite(victim).ok());
  SiteId client = group_->SiteOfMember(3);
  OpResult r = group_->Read(client, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(100, kBlock));
  ASSERT_TRUE(group_->Write(client, 1, 0, Pat(9999, kBlock)).ok());

  ASSERT_TRUE(cluster_->RestoreSite(victim).ok());
  Result<OpCounts> rec = group_->RunRecovery(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  OpResult back = group_->Read(victim, 1, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.data, Pat(9999, kBlock));
}

TEST_F(CRaidIntegrationTest, DisasterRecoveryThroughBothLayers) {
  FillAll();
  SiteId victim = group_->SiteOfMember(0);
  ASSERT_TRUE(cluster_->DisasterSite(victim).ok());
  ASSERT_TRUE(cluster_->RestoreSite(victim).ok());
  Result<OpCounts> rec = group_->RunRecovery(0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    OpResult r = group_->Read(victim, 0, i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, Pat(i, kBlock));
  }
}

TEST_F(CRaidIntegrationTest, WriteAmplificationIsOneLocalWrite) {
  FillAll();
  SiteId home = group_->SiteOfMember(2);
  OpCounts before = raids_[2]->PhysicalOps();
  ASSERT_TRUE(group_->Write(home, 2, 0, Pat(5, kBlock)).ok());
  OpCounts delta = raids_[2]->PhysicalOps() - before;
  // The RADD-layer local write became data + local parity.
  EXPECT_EQ(delta.local_writes, 2u);
}

// ---------------------------------------------------------------------------
// Multi-group deployments (§4).
// ---------------------------------------------------------------------------

TEST(MultiGroup, SharedSiteFailureDegradesEveryGroupItTouches) {
  const int g = 2;  // groups of 4
  const BlockNum drive = 8;
  // Six sites; sites 0 and 1 contribute two drives each -> 8 drives = 2
  // groups.
  std::vector<BlockNum> caps = {16, 16, 8, 8, 8, 8};
  std::vector<SiteConfig> scs;
  for (BlockNum c : caps) scs.push_back(SiteConfig{1, c, 256});
  Cluster cluster(scs);
  GroupAssigner assigner(g);
  Result<std::vector<DriveGroup>> groups = assigner.AssignBlocks(caps, drive);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 2u);

  RaddConfig config;
  config.group_size = g;
  config.rows = drive;
  config.block_size = 256;
  std::vector<std::unique_ptr<RaddGroup>> radds;
  for (const DriveGroup& grp : *groups) {
    radds.push_back(
        std::make_unique<RaddGroup>(&cluster, config, grp.members));
  }

  // Fill both groups.
  for (size_t gi = 0; gi < radds.size(); ++gi) {
    for (int m = 0; m < radds[gi]->num_members(); ++m) {
      for (BlockNum i = 0; i < radds[gi]->DataBlocksPerMember(); ++i) {
        ASSERT_TRUE(radds[gi]
                        ->Write(radds[gi]->SiteOfMember(m), m, i,
                                Pat(gi * 1000 + uint64_t(m) * 10 + i, 256))
                        .ok());
      }
    }
  }
  for (auto& r : radds) ASSERT_TRUE(r->VerifyInvariants().ok());

  // Site 0 hosts a drive of both groups; crash it.
  ASSERT_TRUE(cluster.CrashSite(0).ok());
  for (size_t gi = 0; gi < radds.size(); ++gi) {
    int m0 = radds[gi]->MemberAtSite(0);
    if (m0 < 0) continue;
    SiteId client =
        radds[gi]->SiteOfMember((m0 + 1) % radds[gi]->num_members());
    OpResult r = radds[gi]->Read(client, m0, 0);
    ASSERT_TRUE(r.ok()) << "group " << gi;
    EXPECT_EQ(r.data, Pat(gi * 1000 + uint64_t(m0) * 10, 256));
    ASSERT_TRUE(
        radds[gi]->Write(client, m0, 0, Pat(5000 + gi, 256)).ok());
  }

  // Recover: every involved group sweeps; only the last marks up.
  ASSERT_TRUE(cluster.RestoreSite(0).ok());
  std::vector<size_t> involved;
  for (size_t gi = 0; gi < radds.size(); ++gi) {
    if (radds[gi]->MemberAtSite(0) >= 0) involved.push_back(gi);
  }
  ASSERT_EQ(involved.size(), 2u) << "site 0 should serve both groups";
  for (size_t j = 0; j < involved.size(); ++j) {
    size_t gi = involved[j];
    Result<OpCounts> rec = radds[gi]->RunRecovery(
        radds[gi]->MemberAtSite(0), j + 1 == involved.size());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  }
  EXPECT_EQ(cluster.StateOf(0), SiteState::kUp);
  for (size_t gi = 0; gi < radds.size(); ++gi) {
    ASSERT_TRUE(radds[gi]->VerifyInvariants().ok()) << "group " << gi;
    int m0 = radds[gi]->MemberAtSite(0);
    OpResult r = radds[gi]->Read(0, m0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, Pat(5000 + gi, 256));
  }
}

// ---------------------------------------------------------------------------
// Workload soak + trace determinism.
// ---------------------------------------------------------------------------

TEST(WorkloadSoak, TraceReplayIsDeterministic) {
  RaddConfig config;
  config.group_size = 4;
  config.rows = 24;
  config.block_size = 512;
  SiteConfig sc{1, config.rows, config.block_size};

  WorkloadConfig wc;
  wc.num_members = 6;
  wc.blocks_per_member =
      RaddLayout(config.group_size).DataBlocksPerSite(config.rows);
  wc.block_size = config.block_size;
  wc.zipf_theta = 0.5;
  std::vector<Operation> trace = WorkloadGenerator(wc, 99).Generate(400);

  auto run = [&](uint64_t payload_seed) {
    Cluster cluster(6, sc);
    RaddGroup group(&cluster, config);
    Rng rng(payload_seed);
    uint64_t checksum = 0;
    for (const Operation& op : trace) {
      if (op.IsRead()) {
        OpResult r = group.Read(group.SiteOfMember(op.member), op.member,
                                op.block);
        EXPECT_TRUE(r.ok());
        checksum ^= r.data.Checksum();
      } else {
        OpResult cur = group.Read(group.SiteOfMember(op.member), op.member,
                                  op.block);
        Block page = cur.data;
        std::vector<uint8_t> bytes(op.record_size);
        for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
        EXPECT_TRUE(
            page.WriteAt(op.record_offset, bytes.data(), bytes.size()).ok());
        EXPECT_TRUE(group
                        .Write(group.SiteOfMember(op.member), op.member,
                               op.block, page)
                        .ok());
      }
    }
    EXPECT_TRUE(group.VerifyInvariants().ok());
    return checksum;
  };

  EXPECT_EQ(run(7), run(7)) << "same trace + seed must be bit-identical";
  // Round-trip the trace through its text form and replay again.
  Result<std::vector<Operation>> back = TraceFromString(TraceToString(trace));
  ASSERT_TRUE(back.ok());
  trace = *back;
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace radd
