// Tests for the on-line parity scrubber: silent corruption repair and
// stale-parity repair without taking the site through a recovery sweep.

#include <gtest/gtest.h>

#include "core/radd.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size = 256) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

class ScrubTest : public ::testing::Test {
 protected:
  ScrubTest() {
    config_.group_size = 4;
    config_.rows = 18;
    config_.block_size = 256;
    cluster_ = std::make_unique<Cluster>(6, SiteConfig{1, 18, 256});
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
    for (int m = 0; m < 6; ++m) {
      for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
        group_->Write(group_->SiteOfMember(m), m, i,
                      Pat(uint64_t(m) * 100 + i));
      }
    }
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(ScrubTest, CleanGroupNeedsNoRepairs) {
  for (int m = 0; m < 6; ++m) {
    Result<int> repaired = group_->ScrubParity(m);
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    EXPECT_EQ(*repaired, 0) << "member " << m;
  }
}

TEST_F(ScrubTest, RepairsSilentParityCorruption) {
  // Flip bits inside a parity block behind the protocol's back.
  BlockNum row = group_->layout().DataToRow(2, 0);
  int pm = static_cast<int>(group_->layout().ParitySite(row));
  Site* psite = cluster_->site(group_->SiteOfMember(pm));
  Result<BlockRecord> prec = psite->disks()->Read(row);
  ASSERT_TRUE(prec.ok());
  BlockRecord bad = *prec;
  bad.data[7] ^= 0x55;
  ASSERT_TRUE(psite->disks()->WriteRecord(row, bad).ok());
  ASSERT_FALSE(group_->VerifyInvariants().ok());

  Result<int> repaired = group_->ScrubParity(pm);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, 1);
  EXPECT_TRUE(group_->VerifyInvariants().ok());

  // And reconstruction through the repaired parity is correct again.
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  OpResult r = group_->Read(group_->SiteOfMember(0), 2, 0);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, Pat(200));
}

TEST_F(ScrubTest, RepairsParityDroppedWhileSiteDown) {
  // Writes made while the parity site was down dropped their updates;
  // instead of the full recovery sweep, MarkUp + scrub also restores
  // consistency.
  BlockNum row = group_->layout().DataToRow(2, 0);
  int pm = static_cast<int>(group_->layout().ParitySite(row));
  SiteId psite = group_->SiteOfMember(pm);
  ASSERT_TRUE(cluster_->CrashSite(psite).ok());
  ASSERT_TRUE(group_->Write(group_->SiteOfMember(2), 2, 0, Pat(42)).ok());
  ASSERT_TRUE(cluster_->RestoreSite(psite).ok());
  ASSERT_TRUE(cluster_->MarkUp(psite).ok());  // skip the sweep on purpose

  Result<int> repaired = group_->ScrubParity(pm);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_GE(*repaired, 1);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(ScrubTest, SkipsDegradedRowsForTheSweep) {
  // While a data member is down, its rows cannot be audited; the scrubber
  // must leave them to the recovery machinery instead of "repairing"
  // parity from a partial row.
  ASSERT_TRUE(group_->Write(group_->SiteOfMember(2), 2, 0, Pat(1)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  // Degraded write puts fresh content in a spare: those rows are skipped.
  ASSERT_TRUE(group_->Write(group_->SiteOfMember(0), 2, 0, Pat(2)).ok());
  for (int m = 0; m < 6; ++m) {
    if (m == 2) continue;
    Result<int> repaired = group_->ScrubParity(m);
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    EXPECT_EQ(*repaired, 0) << "member " << m;
  }
  EXPECT_GT(group_->stats().Get("radd.scrub_skipped"), 0u);
  // Nothing the scrubber did may break the degraded value.
  OpResult r = group_->Read(group_->SiteOfMember(0), 2, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, Pat(2));
}

TEST_F(ScrubTest, RejectsNonUpSiteAndBadMember) {
  EXPECT_TRUE(group_->ScrubParity(-1).status().IsInvalidArgument());
  EXPECT_TRUE(group_->ScrubParity(99).status().IsInvalidArgument());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  EXPECT_TRUE(group_->ScrubParity(1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace radd
