// End-to-end online expansion: RaddVolume::AddDrive on a live
// declustered volume, the paced migration through RaddGroup::MigrateStep
// and RecoverySweeper::StartMigration, old-epoch reads while blocks are
// in flight, and the bounded-movement guarantee.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/status_service.h"
#include "core/sweeper.h"
#include "core/volume.h"

namespace radd {
namespace {

// One declustered group of C = 6 members (G = 2, one parity, so stripe
// width 4) over six one-drive sites, plus a seventh, initially empty,
// site for the expansion to land on.
class ExpansionTest : public ::testing::Test {
 protected:
  static constexpr int kG = 2;
  static constexpr int kWidth = 6;       // cluster width C
  static constexpr BlockNum kRows = 8;   // 2 rounds of stripe width 4
  static constexpr SiteId kNewSite = kWidth;

  void Build(int parities = 1) {
    config_.group_size = kG;
    config_.parities = parities;
    config_.rows = kRows;
    config_.block_size = 128;
    config_.placement.kind = PlacementKind::kDeclustered;
    config_.placement.sites = kWidth;

    std::vector<SiteConfig> site_configs(
        kWidth + 1, SiteConfig{1, kRows, config_.block_size});
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0xE1);
    cluster_ = std::make_unique<Cluster>(site_configs);
    VolumeConfig vc;
    vc.group = config_;
    vc.drives_per_site.assign(kWidth, 1);
    Result<std::unique_ptr<RaddVolume>> made =
        RaddVolume::Create(sim_.get(), net_.get(), cluster_.get(), vc);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    vol_ = std::move(*made);
    ASSERT_EQ(vol_->num_groups(), 1);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }

  void WriteAll() {
    uint64_t seed = 1;
    for (SiteId s = 0; s < kWidth; ++s) {
      for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(s); ++lba) {
        ASSERT_TRUE(vol_->Write(s, s, lba, Pat(seed++)).status.ok());
      }
    }
  }

  void ExpectAllReadable() {
    uint64_t seed = 1;
    for (SiteId s = 0; s < kWidth; ++s) {
      for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(s); ++lba) {
        RaddNodeSystem::TimedRead r = vol_->Read(s, s, lba);
        ASSERT_TRUE(r.status.ok())
            << "site " << s << " lba " << lba << ": "
            << r.status.ToString();
        EXPECT_EQ(r.data, Pat(seed++)) << "site " << s << " lba " << lba;
      }
    }
  }

  // Drives the migration to completion without a sweeper.
  void DrainMigration() {
    RaddGroup* grp = vol_->group(0);
    int guard = 0;
    while (grp->ExpansionPending()) {
      Result<int> moved = grp->MigrateStep(4);
      ASSERT_TRUE(moved.ok()) << moved.status().ToString();
      ASSERT_LT(++guard, 1000) << "migration does not converge";
    }
  }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddVolume> vol_;
};

TEST_F(ExpansionTest, StopTheWorldExpansionPreservesData) {
  Build();
  WriteAll();
  RaddGroup* grp = vol_->group(0);
  ASSERT_EQ(grp->num_members(), kWidth);
  const BlockNum rows_before = grp->layout().NumRows(kRows);

  ASSERT_TRUE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());
  EXPECT_TRUE(grp->ExpansionPending());
  // Minimal plan: one new stripe per round, n-1 moves each.
  const BlockNum n = static_cast<BlockNum>(grp->layout().stripe_width());
  const BlockNum rounds = kRows / n;
  EXPECT_EQ(grp->ExpansionMovesPlanned(), rounds * (n - 1));
  // Bounded movement: no more than the added capacity share,
  // total/(C+1), of the pre-expansion physical blocks.
  EXPECT_LE(grp->ExpansionMovesPlanned() * (kWidth + 1),
            static_cast<BlockNum>(kWidth) * kRows);

  DrainMigration();
  EXPECT_EQ(grp->ExpansionMovesDone(), grp->ExpansionMovesPlanned());
  EXPECT_EQ(grp->num_members(), kWidth + 1);
  EXPECT_EQ(grp->layout().NumRows(kRows), rows_before + rounds);
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
  ExpectAllReadable();
}

TEST_F(ExpansionTest, NewMemberServesReadsAndWritesAfterCommit) {
  Build();
  WriteAll();
  ASSERT_TRUE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());
  DrainMigration();

  RaddGroup* grp = vol_->group(0);
  const int new_member = kWidth;
  const BlockNum capacity = grp->layout().DataBlocksPerSite(kRows);
  ASSERT_GT(capacity, 0u);
  for (BlockNum i = 0; i < capacity; ++i) {
    ASSERT_TRUE(grp->Write(kNewSite, new_member, i, Pat(900 + i)).ok());
  }
  for (BlockNum i = 0; i < capacity; ++i) {
    OpResult r = grp->Read(kNewSite, new_member, i);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.data, Pat(900 + i));
  }
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
  ExpectAllReadable();  // pre-expansion data untouched by the new writes
}

TEST_F(ExpansionTest, OldEpochStaysReadableMidMigration) {
  Build();
  WriteAll();
  RaddGroup* grp = vol_->group(0);
  ASSERT_TRUE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());

  // Move one block at a time; after every single move the whole volume
  // must still read correctly (the tables track physical reality, so a
  // half-migrated group has no wrong-host window).
  int guard = 0;
  while (grp->ExpansionPending()) {
    Result<int> moved = grp->MigrateStep(1);
    ASSERT_TRUE(moved.ok()) << moved.status().ToString();
    ExpectAllReadable();
    ASSERT_LT(++guard, 1000);
  }
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
}

TEST_F(ExpansionTest, SweeperPacesMigrationToCompletion) {
  Build();
  SiteStatusService service(sim_.get(), cluster_.get());
  vol_->system()->SetStatusService(&service);
  std::vector<RaddGroup*> groups = {vol_->group(0)};
  RecoverySweeper sweeper(sim_.get(), groups, &service);
  sweeper.Start();
  WriteAll();

  ASSERT_TRUE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());
  bool done = false;
  sweeper.StartMigration(0, [&done]() { done = true; });
  sim_->Run();

  EXPECT_TRUE(done);
  EXPECT_FALSE(vol_->group(0)->ExpansionPending());
  EXPECT_EQ(vol_->group(0)->num_members(), kWidth + 1);
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
  ExpectAllReadable();
}

TEST_F(ExpansionTest, RejectsSecondExpansionWhileMigrating) {
  Build();
  ASSERT_TRUE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());
  EXPECT_FALSE(vol_->AddDrive(0, kNewSite, 0, kRows).ok());
  DrainMigration();
}

TEST_F(ExpansionTest, RejectsDualParityExpansion) {
  Build(/*parities=*/2);
  Status st = vol_->AddDrive(0, kNewSite, 0, kRows);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(RotatedExpansion, RejectsAddDrive) {
  // The rotated closed forms admit no incremental growth — that is the
  // refactor's point; the volume must say so instead of corrupting the
  // map.
  RaddConfig config;
  config.group_size = 2;
  config.rows = 8;
  config.block_size = 128;
  std::vector<SiteConfig> sites(5, SiteConfig{1, 8, 128});
  Simulator sim;
  Network net(&sim, NetworkModel{}, 0xE2);
  Cluster cluster(sites);
  VolumeConfig vc;
  vc.group = config;
  vc.drives_per_site = {1, 1, 1, 1};
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Status st = (*made)->AddDrive(0, 4, 0, 8);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

}  // namespace
}  // namespace radd
