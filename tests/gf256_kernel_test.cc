// The GF(256) word-at-a-time kernels against byte-wise table references,
// at awkward sizes and alignments (mirroring block_kernel_test.cc), plus
// field axioms and P+Q encode/decode round trips for every 2-erasure
// pattern: {data, data}, {data, P}, {data, Q}, {P, Q}.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "common/gf256.h"
#include "common/rng.h"

namespace radd {
namespace {

const size_t kAwkwardSizes[] = {0, 1, 7, 8, 9, 15, 63, 64, 65,
                                511, 4095, 4096, 4097};

Block RandomBlock(size_t n, Rng* rng) {
  Block b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>(rng->Uniform(256));
  }
  return b;
}

// --- byte-wise reference ---------------------------------------------------

/// Schoolbook multiply over 0x11d, one shift-and-conditionally-reduce per
/// bit — deliberately independent of both the exp/log tables and the
/// bitsliced word path.
uint8_t ReferenceMul(uint8_t a, uint8_t b) {
  uint8_t acc = 0;
  while (b != 0) {
    if (b & 1) acc ^= a;
    uint8_t high = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (high) a ^= 0x1d;
    b >>= 1;
  }
  return acc;
}

// --- field axioms ----------------------------------------------------------

TEST(Gf256, MulMatchesSchoolbookExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                ReferenceMul(static_cast<uint8_t>(a),
                             static_cast<uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, InverseRoundTripsForAllNonzero) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = GfInv(static_cast<uint8_t>(a));
    EXPECT_EQ(GfMul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
    EXPECT_EQ(GfDiv(1, static_cast<uint8_t>(a)), inv) << "a=" << a;
  }
}

TEST(Gf256, DivUndoesMul) {
  Rng rng(3);
  for (int round = 0; round < 1000; ++round) {
    uint8_t a = static_cast<uint8_t>(rng.Uniform(256));
    uint8_t b = static_cast<uint8_t>(1 + rng.Uniform(255));
    EXPECT_EQ(GfDiv(GfMul(a, b), b), a);
  }
}

TEST(Gf256, GeneratorPowersAreDistinct) {
  // g = 2 is primitive: its first 255 powers enumerate every nonzero
  // element — which is what makes the member coefficients g^m (and their
  // pairwise sums) invertible in two-erasure decode.
  bool seen[256] = {};
  for (unsigned e = 0; e < 255; ++e) {
    uint8_t v = GfExp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "e=" << e;
    seen[v] = true;
  }
  EXPECT_EQ(GfExp(0), 1);
  EXPECT_EQ(GfExp(255), 1);  // wraps mod 255
  EXPECT_EQ(GfQCoeff(0), 1);
  EXPECT_EQ(GfQCoeff(1), 2);
}

// --- word kernels vs byte references ---------------------------------------

TEST(Gf256Kernel, MulAddBytesMatchesByteReferenceAtAwkwardSizes) {
  Rng rng(1);
  for (size_t n : kAwkwardSizes) {
    for (uint8_t c : {uint8_t{0}, uint8_t{1}, uint8_t{2}, uint8_t{3},
                      uint8_t{0x1d}, uint8_t{0x80}, uint8_t{0xff}}) {
      Block dst = RandomBlock(n, &rng);
      Block src = RandomBlock(n, &rng);
      Block expected(n);
      for (size_t i = 0; i < n; ++i) {
        expected[i] = dst[i] ^ ReferenceMul(src[i], c);
      }
      Block got = dst;
      internal::GfMulAddBytes(got.data(), src.data(), c, n);
      EXPECT_EQ(got, expected) << "n=" << n << " c=" << int(c);
    }
  }
}

TEST(Gf256Kernel, MulAddBytesAtUnalignedOffsets) {
  // Drive the kernel at every head misalignment so the word body starts
  // off an 8-byte boundary; the byte reference must still agree.
  Rng rng(5);
  Block dst = RandomBlock(4096 + 16, &rng);
  Block src = RandomBlock(4096 + 16, &rng);
  for (size_t off : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                     size_t{7}, size_t{8}, size_t{9}, size_t{15}}) {
    const size_t n = 4096;
    Block expected = dst;
    for (size_t i = 0; i < n; ++i) {
      expected[off + i] =
          static_cast<uint8_t>(dst[off + i] ^ ReferenceMul(src[off + i], 7));
    }
    Block got = dst;
    internal::GfMulAddBytes(got.data() + off, src.data() + off, 7, n);
    EXPECT_EQ(got, expected) << "off=" << off;
  }
}

TEST(Gf256Kernel, ScaleBytesMatchesByteReferenceAtAwkwardSizes) {
  Rng rng(9);
  for (size_t n : kAwkwardSizes) {
    for (uint8_t c : {uint8_t{0}, uint8_t{1}, uint8_t{2}, uint8_t{0x53},
                      uint8_t{0xca}, uint8_t{0xff}}) {
      Block b = RandomBlock(n, &rng);
      Block expected(n);
      for (size_t i = 0; i < n; ++i) expected[i] = ReferenceMul(b[i], c);
      Block got = b;
      internal::GfScaleBytes(got.data(), c, n);
      EXPECT_EQ(got, expected) << "n=" << n << " c=" << int(c);
    }
  }
}

TEST(Gf256Kernel, MulAddIntoRejectsMismatchedSizes) {
  Block dst(16);
  Block src(8);
  EXPECT_FALSE(GfMulAddInto(&dst, src, 2).ok());
}

TEST(Gf256Kernel, ScaleThenScaleByInverseIsIdentity) {
  Rng rng(13);
  Block b = RandomBlock(4097, &rng);
  Block orig = b;
  GfScaleInPlace(&b, 0x8e);
  GfScaleInPlace(&b, GfInv(0x8e));
  EXPECT_EQ(b, orig);
}

TEST(Gf256Kernel, MulAddDistributesOverXor) {
  // c*(a ^ b) == c*a ^ c*b — the linearity the delta discipline relies on:
  // shipping the XOR delta and scaling at the Q site equals re-encoding.
  Rng rng(17);
  for (size_t n : {size_t{65}, size_t{4096}}) {
    Block a = RandomBlock(n, &rng);
    Block b = RandomBlock(n, &rng);
    uint8_t c = 0xb7;
    Block lhs(n);
    Block axb = a;
    ASSERT_TRUE(axb.XorWith(b).ok());
    ASSERT_TRUE(GfMulAddInto(&lhs, axb, c).ok());
    Block rhs(n);
    ASSERT_TRUE(GfMulAddInto(&rhs, a, c).ok());
    ASSERT_TRUE(GfMulAddInto(&rhs, b, c).ok());
    EXPECT_EQ(lhs, rhs) << "n=" << n;
  }
}

// --- P+Q encode/decode round trips -----------------------------------------

/// A miniature P+Q codec over G data blocks with member coefficients
/// g^m, exercising the same algebra RaddGroup::ReconstructDual uses.
struct PqCode {
  std::vector<Block> data;
  Block p{0};
  Block q{0};

  static PqCode Encode(const std::vector<Block>& d) {
    PqCode code;
    code.data = d;
    code.p = Block(d[0].size());
    code.q = Block(d[0].size());
    for (size_t m = 0; m < d.size(); ++m) {
      EXPECT_TRUE(code.p.XorWith(d[m]).ok());
      EXPECT_TRUE(
          GfMulAddInto(&code.q, d[m], GfQCoeff(static_cast<int>(m))).ok());
    }
    return code;
  }

  /// Recover data member `a` with only P erased alongside it (uses Q).
  Block DecodeViaQ(size_t a) const {
    Block sq = q;
    for (size_t m = 0; m < data.size(); ++m) {
      if (m == a) continue;
      EXPECT_TRUE(
          GfMulAddInto(&sq, data[m], GfQCoeff(static_cast<int>(m))).ok());
    }
    GfScaleInPlace(&sq, GfInv(GfQCoeff(static_cast<int>(a))));
    return sq;
  }

  /// Recover data member `a` with only Q erased alongside it (uses P).
  Block DecodeViaP(size_t a) const {
    Block sp = p;
    for (size_t m = 0; m < data.size(); ++m) {
      if (m == a) continue;
      EXPECT_TRUE(sp.XorWith(data[m]).ok());
    }
    return sp;
  }

  /// Recover data members `a` and `b` (both erased) from P and Q.
  std::pair<Block, Block> DecodeTwoData(size_t a, size_t b) const {
    Block sp = p;
    Block sq = q;
    for (size_t m = 0; m < data.size(); ++m) {
      if (m == a || m == b) continue;
      EXPECT_TRUE(sp.XorWith(data[m]).ok());
      EXPECT_TRUE(
          GfMulAddInto(&sq, data[m], GfQCoeff(static_cast<int>(m))).ok());
    }
    // (g^b * Sp) ^ Sq = (g^a ^ g^b) * D_a.
    const uint8_t ca = GfQCoeff(static_cast<int>(a));
    const uint8_t cb = GfQCoeff(static_cast<int>(b));
    Block da = sq;
    EXPECT_TRUE(GfMulAddInto(&da, sp, cb).ok());
    GfScaleInPlace(&da, GfInv(static_cast<uint8_t>(ca ^ cb)));
    Block db = sp;
    EXPECT_TRUE(db.XorWith(da).ok());
    return {std::move(da), std::move(db)};
  }
};

TEST(PqRoundTrip, AllTwoErasurePatternsAtAwkwardSizes) {
  Rng rng(29);
  const int g = 5;
  for (size_t n : {size_t{1}, size_t{9}, size_t{65}, size_t{511},
                   size_t{4097}}) {
    std::vector<Block> d;
    for (int m = 0; m < g; ++m) d.push_back(RandomBlock(n, &rng));
    PqCode code = PqCode::Encode(d);

    // {data a, data b}: every pair.
    for (size_t a = 0; a < static_cast<size_t>(g); ++a) {
      for (size_t b = a + 1; b < static_cast<size_t>(g); ++b) {
        auto [da, db] = code.DecodeTwoData(a, b);
        EXPECT_EQ(da, d[a]) << "n=" << n << " a=" << a << " b=" << b;
        EXPECT_EQ(db, d[b]) << "n=" << n << " a=" << a << " b=" << b;
      }
    }
    // {data, P}: decode via Q.
    for (size_t a = 0; a < static_cast<size_t>(g); ++a) {
      EXPECT_EQ(code.DecodeViaQ(a), d[a]) << "n=" << n << " a=" << a;
    }
    // {data, Q}: classic formula (2) via P.
    for (size_t a = 0; a < static_cast<size_t>(g); ++a) {
      EXPECT_EQ(code.DecodeViaP(a), d[a]) << "n=" << n << " a=" << a;
    }
    // {P, Q}: both parities re-encodable from intact data.
    PqCode again = PqCode::Encode(d);
    EXPECT_EQ(again.p, code.p);
    EXPECT_EQ(again.q, code.q);
  }
}

TEST(PqRoundTrip, DeltaDisciplineUpdatesBothParities) {
  // Overwrite one member, ship delta = new ^ old to P, and g^m * delta to
  // Q; the results must equal a from-scratch re-encode.
  Rng rng(37);
  const int g = 7;
  const size_t n = 4096;
  std::vector<Block> d;
  for (int m = 0; m < g; ++m) d.push_back(RandomBlock(n, &rng));
  PqCode code = PqCode::Encode(d);

  const size_t victim = 3;
  Block fresh = RandomBlock(n, &rng);
  Block delta = fresh;
  ASSERT_TRUE(delta.XorWith(d[victim]).ok());

  ASSERT_TRUE(code.p.XorWith(delta).ok());  // P' = P ^ delta
  ASSERT_TRUE(GfMulAddInto(&code.q, delta,
                           GfQCoeff(static_cast<int>(victim)))
                  .ok());  // Q' = Q ^ g^m * delta

  d[victim] = fresh;
  PqCode expect = PqCode::Encode(d);
  EXPECT_EQ(code.p, expect.p);
  EXPECT_EQ(code.q, expect.q);
}

TEST(PqRoundTrip, HighMemberIndicesStayInvertible) {
  // Member indices up to the largest group the simulator runs (well under
  // 255): g^a ^ g^b must be nonzero for every distinct pair.
  for (int a = 0; a < 64; ++a) {
    for (int b = a + 1; b < 64; ++b) {
      EXPECT_NE(GfQCoeff(a) ^ GfQCoeff(b), 0) << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace radd
