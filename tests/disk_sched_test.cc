// Tests for the modeled disk subsystem: DiskScheduler policies (FIFO
// equivalence with the legacy closed-form serial clock, elevator ordering,
// deadline class separation with a bounded starvation guarantee), crash
// fencing, the UID-validated site block cache — standalone, wired into the
// protocol layer, and under chaos load with ledger readback.

#include "disk/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/node.h"
#include "disk/block_cache.h"
#include "fault/chaos.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// DiskScheduler: policies and fencing.
// ---------------------------------------------------------------------------

TEST(DiskScheduler, FifoSingleSpindleMatchesClosedFormClock) {
  // The legacy model: one serial clock per site,
  //   start = max(now, disk_free_at); disk_free_at = start + latency.
  // With spindles=1/FIFO/no-seek the scheduler must produce the exact
  // same completion times for any arrival pattern.
  Simulator sim;
  DiskModel model;  // 30 ms reads and writes
  DiskSchedConfig cfg;
  DiskScheduler sched(&sim, model, cfg);

  struct Arrival {
    SimTime at;
    IoKind kind;
    uint32_t units;
    uint32_t slow;
  };
  const std::vector<Arrival> arrivals = {
      {Millis(0), IoKind::kWrite, 1, 1},  {Millis(0), IoKind::kRead, 1, 1},
      {Millis(10), IoKind::kWrite, 3, 1}, {Millis(95), IoKind::kRead, 1, 2},
      {Millis(400), IoKind::kWrite, 1, 1}};

  std::vector<SimTime> actual(arrivals.size(), 0);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    sim.At(a.at, [&, i]() {
      sched.Submit(IoClass::kForeground, arrivals[i].kind, /*addr=*/0,
                   arrivals[i].units, arrivals[i].slow,
                   [&, i]() { actual[i] = sim.Now(); });
    });
  }
  sim.Run();

  SimTime free_at = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    const SimTime latency = (a.kind == IoKind::kRead ? model.read_latency
                                                     : model.write_latency) *
                            a.units * a.slow;
    const SimTime start = std::max(a.at, free_at);
    free_at = start + latency;
    EXPECT_EQ(actual[i], free_at) << "request " << i;
  }
  EXPECT_EQ(sched.completed(), arrivals.size());
  EXPECT_EQ(sched.queued(), 0u);
}

TEST(DiskScheduler, FifoIgnoresClassAndAddress) {
  // FIFO is strict arrival order: a foreground request queued after a
  // background one waits its turn (the legacy discipline).
  Simulator sim;
  DiskSchedConfig cfg;
  DiskScheduler sched(&sim, DiskModel{}, cfg);
  std::vector<int> order;
  sim.At(0, [&]() {
    sched.Submit(IoClass::kRecovery, IoKind::kWrite, 7, 1, 1,
                 [&]() { order.push_back(0); });
    sched.Submit(IoClass::kScrub, IoKind::kWrite, 3, 1, 1,
                 [&]() { order.push_back(1); });
    sched.Submit(IoClass::kForeground, IoKind::kRead, 99, 1, 1,
                 [&]() { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(DiskScheduler, SpindlesServeStripedAddressesConcurrently) {
  // 4 spindles, 4 same-cost writes to addresses 0..3 (one per spindle):
  // all complete at one service time instead of serializing to 4x.
  Simulator sim;
  DiskSchedConfig cfg;
  cfg.spindles = 4;
  DiskScheduler sched(&sim, DiskModel{}, cfg);
  std::vector<SimTime> done(4, 0);
  sim.At(0, [&]() {
    for (BlockNum a = 0; a < 4; ++a) {
      sched.Submit(IoClass::kForeground, IoKind::kWrite, a, 1, 1,
                   [&, a]() { done[static_cast<size_t>(a)] = sim.Now(); });
    }
  });
  sim.Run();
  for (const SimTime t : done) EXPECT_EQ(t, Millis(30));
  EXPECT_EQ(sched.spindles(), 4);
}

TEST(DiskScheduler, ElevatorServesNearestInSweepDirection) {
  // LOOK: after the in-flight request leaves the head at address 10, the
  // queue {50, 12, 11, 49} is served 11, 12, 49, 50 (upward sweep) rather
  // than in arrival order.
  Simulator sim;
  DiskSchedConfig cfg;
  cfg.policy = IoPolicy::kElevator;
  cfg.seek_unit = Micros(10);
  DiskScheduler sched(&sim, DiskModel{}, cfg);
  std::vector<BlockNum> order;
  sim.At(0, [&]() {
    sched.Submit(IoClass::kForeground, IoKind::kRead, 10, 1, 1, [&]() {});
    for (const BlockNum a : {50, 12, 11, 49}) {
      sched.Submit(IoClass::kForeground, IoKind::kRead, a, 1, 1,
                   [&, a]() { order.push_back(a); });
    }
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<BlockNum>{11, 12, 49, 50}));
}

TEST(DiskScheduler, DeadlineClassSeparationPrefersForeground) {
  // While a background request is in service, a later-arriving foreground
  // request jumps the queued background one.
  Simulator sim;
  DiskSchedConfig cfg;
  cfg.policy = IoPolicy::kDeadline;
  DiskScheduler sched(&sim, DiskModel{}, cfg);
  std::vector<int> order;
  sim.At(0, [&]() {
    sched.Submit(IoClass::kRecovery, IoKind::kWrite, 0, 1, 1,
                 [&]() { order.push_back(0); });  // in service
    sched.Submit(IoClass::kRecovery, IoKind::kWrite, 1, 1, 1,
                 [&]() { order.push_back(1); });  // queued background
    sched.Submit(IoClass::kForeground, IoKind::kRead, 2, 1, 1,
                 [&]() { order.push_back(2); });  // queued foreground
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(DiskScheduler, DeadlineBoundsBackgroundStarvation) {
  // A steady foreground flood would starve background forever under pure
  // class priority. The deadline policy bounds the wait: once the
  // background request's deadline expires it trumps class, so it completes
  // within background_deadline + (non-preemptive slack of) two service
  // times.
  Simulator sim;
  DiskSchedConfig cfg;
  cfg.policy = IoPolicy::kDeadline;
  cfg.background_deadline = Millis(100);
  DiskScheduler sched(&sim, DiskModel{}, cfg);

  SimTime bg_done = 0;
  bool stop = false;
  std::function<void()> flood = [&]() {
    if (stop) return;
    sched.Submit(IoClass::kForeground, IoKind::kRead, 0, 1, 1,
                 [&]() { flood(); });
  };
  sim.At(0, [&]() {
    flood();  // takes the spindle
    flood();  // keeps the queue non-empty forever
    sched.Submit(IoClass::kRecovery, IoKind::kWrite, 1, 1, 1, [&]() {
      bg_done = sim.Now();
      stop = true;
    });
  });
  sim.Run();

  ASSERT_GT(bg_done, 0u);
  EXPECT_LE(bg_done, cfg.background_deadline + Millis(60));
  EXPECT_GE(sched.deadline_dispatches(), 1u);
}

TEST(DiskScheduler, ResetDropsQueueAndFencesInFlightCompletions) {
  // Crash semantics: Reset discards the queue, and the completion of the
  // request that was in service must not fire (it belonged to the dead
  // incarnation). The scheduler is immediately usable again.
  Simulator sim;
  DiskSchedConfig cfg;
  DiskScheduler sched(&sim, DiskModel{}, cfg);
  int dead_fires = 0;
  SimTime after_reset_done = 0;
  sim.At(0, [&]() {
    sched.Submit(IoClass::kForeground, IoKind::kWrite, 0, 1, 1,
                 [&]() { ++dead_fires; });
    sched.Submit(IoClass::kForeground, IoKind::kWrite, 1, 1, 1,
                 [&]() { ++dead_fires; });
  });
  sim.At(Millis(10), [&]() {
    sched.Reset();
    EXPECT_EQ(sched.queued(), 0u);
    sched.Submit(IoClass::kForeground, IoKind::kWrite, 2, 1, 1,
                 [&]() { after_reset_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(dead_fires, 0);
  // The post-crash disk starts idle: 10 + 30 ms.
  EXPECT_EQ(after_reset_done, Millis(40));
}

// ---------------------------------------------------------------------------
// BlockCache: LRU mechanics and counters.
// ---------------------------------------------------------------------------

Block PatternBlock(uint64_t seed) {
  Block b(64);
  b.FillPattern(seed);
  return b;
}

TEST(BlockCache, LruEvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.Insert(1, PatternBlock(1), Uid(11));
  cache.Insert(2, PatternBlock(2), Uid(12));
  ASSERT_NE(cache.Lookup(1), nullptr);       // 1 becomes MRU
  cache.Insert(3, PatternBlock(3), Uid(13));  // evicts 2
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(BlockCache, InsertUpdatesInPlace) {
  BlockCache cache(2);
  cache.Insert(1, PatternBlock(1), Uid(11));
  cache.Insert(1, PatternBlock(9), Uid(19));
  const BlockCache::Entry* e = cache.Lookup(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->uid, (Uid(19)));
  EXPECT_EQ(e->data, PatternBlock(9));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCache, InvalidateAndClear) {
  BlockCache cache(4);
  cache.Insert(1, PatternBlock(1), Uid(11));
  cache.Insert(2, PatternBlock(2), Uid(12));
  cache.Invalidate(1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(2), nullptr);
}

TEST(BlockCache, ZeroCapacityDisablesEverything) {
  BlockCache cache(0);
  cache.Insert(1, PatternBlock(1), Uid(11));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

// ---------------------------------------------------------------------------
// Protocol-layer cache: hits are free, and the §3.3 UID validation rejects
// entries the store has moved past.
// ---------------------------------------------------------------------------

class NodeCacheTest : public ::testing::Test {
 protected:
  NodeCacheTest() {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 512;
    NodeConfig nc;
    nc.disk_sched.cache_blocks = 16;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0xabc);
    cluster_ = std::make_unique<Cluster>(6, sc);
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
};

TEST_F(NodeCacheTest, WriteThroughMakesLocalReadsFree) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  // The write-through filled the cache, so the local read skips the
  // R = 30 ms disk charge entirely.
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(1));
  EXPECT_LT(r.latency, Millis(30));
  EXPECT_GE(sys_->CacheStats().hits, 1u);
}

TEST_F(NodeCacheTest, UidValidationRejectsEntryAfterOutOfBandWrite) {
  // A write through the synchronous reference model mutates the store
  // behind the node layer's back — exactly what a recovery rebuild or a
  // scrub repair does. The cached entry's UID no longer matches the
  // store's record, so the next read must decline the hit and serve the
  // new bytes from disk.
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  ASSERT_TRUE(sys_->Read(SiteOf(2), 2, 0).status.ok());  // fills the cache
  ASSERT_TRUE(sys_->group()->Write(SiteOf(2), 2, 0, Pat(99)).ok());
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(99));
  EXPECT_GE(sys_->CacheStats().stale_rejected, 1u);
  // The disk-path read refilled the cache with the new record.
  const uint64_t hits_before = sys_->CacheStats().hits;
  auto again = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.data, Pat(99));
  EXPECT_GT(sys_->CacheStats().hits, hits_before);
}

TEST_F(NodeCacheTest, WritesInvalidateThenReadsRefill) {
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  ASSERT_TRUE(sys_->Read(SiteOf(2), 2, 0).status.ok());
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(2)).status.ok());
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));  // never the stale Pat(1)
}

// ---------------------------------------------------------------------------
// Chaos with the full modeled disk subsystem: 40 seeds in each mode, with
// the cache and the deadline scheduler on. Every protocol read inside the
// episodes is ledger-validated, so a cache bug that serves stale bytes
// fails the invariant check, not just a counter.
// ---------------------------------------------------------------------------

ChaosConfig ModeledDiskChaosConfig() {
  ChaosConfig cfg;
  cfg.node.disk_sched.spindles = 2;
  cfg.node.disk_sched.policy = IoPolicy::kDeadline;
  cfg.node.disk_sched.cache_blocks = 32;
  return cfg;
}

TEST(DiskChaos, CachePathHoldsLedgerInvariantsManual) {
  ChaosHarness harness(ModeledDiskChaosConfig());
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_GT(r.reads_validated, 0u);
  }
}

TEST(DiskChaos, CachePathHoldsLedgerInvariantsAutopilot) {
  ChaosConfig cfg = ModeledDiskChaosConfig();
  cfg.autopilot = true;
  ChaosHarness harness(cfg);
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ChaosReport r = harness.Run(seed);
    EXPECT_TRUE(r.ok) << r.Summary() << "\n" << r.plan;
    EXPECT_GT(r.reads_validated, 0u);
  }
}

}  // namespace
}  // namespace radd
