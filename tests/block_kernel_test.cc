// The word-at-a-time block kernels against byte-wise references, at
// awkward sizes (0, 1, 7, 9, 4095, 4097, ...) and unaligned offsets where
// the head/tail handling earns its keep, plus the BlockArena free-list.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "common/block_arena.h"
#include "common/rng.h"

namespace radd {
namespace {

const size_t kAwkwardSizes[] = {0, 1, 7, 8, 9, 15, 63, 64, 65,
                                511, 4095, 4096, 4097};

Block RandomBlock(size_t n, Rng* rng) {
  Block b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>(rng->Uniform(256));
  }
  return b;
}

// --- byte-wise references --------------------------------------------------

Block ReferenceXor(const Block& a, const Block& b) {
  Block out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool ReferenceIsZero(const Block& b) {
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i] != 0) return false;
  }
  return true;
}

/// The original byte-serial §7.4 encoder, kept verbatim as the spec the
/// word-hopping run scan must match (EncodedSize feeds net.bytes stats, so
/// any divergence breaks deterministic benchmark outputs).
size_t ReferenceEncodedSize(const Block& delta) {
  constexpr size_t kRunHeader = 8;
  constexpr size_t kMaskHeader = 8;
  size_t total = kMaskHeader;
  size_t i = 0;
  const size_t n = delta.size();
  while (i < n) {
    if (delta[i] == 0) {
      ++i;
      continue;
    }
    size_t end = i + 1;
    size_t last_nonzero = i;
    while (end < n) {
      if (delta[end] != 0) {
        last_nonzero = end;
        ++end;
      } else if (end - last_nonzero <= kRunHeader) {
        ++end;
      } else {
        break;
      }
    }
    total += kRunHeader + (last_nonzero - i + 1);
    i = last_nonzero + 1;
  }
  return total;
}

// --- XOR kernels -----------------------------------------------------------

TEST(BlockKernel, XorWithMatchesByteReferenceAtAwkwardSizes) {
  Rng rng(1);
  for (size_t n : kAwkwardSizes) {
    Block a = RandomBlock(n, &rng);
    Block b = RandomBlock(n, &rng);
    Block expected = ReferenceXor(a, b);
    Block got = a;
    ASSERT_TRUE(got.XorWith(b).ok()) << "n=" << n;
    EXPECT_EQ(got, expected) << "n=" << n;
  }
}

TEST(BlockKernel, XorIntoEqualsXorUnderRandomSeeds) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    size_t n = kAwkwardSizes[static_cast<size_t>(
        rng.Uniform(sizeof(kAwkwardSizes) / sizeof(kAwkwardSizes[0])))];
    Block a = RandomBlock(n, &rng);
    Block b = RandomBlock(n, &rng);
    Block dst(n);
    ASSERT_TRUE(XorInto(&dst, a, b).ok());
    EXPECT_EQ(dst, Xor(a, b)) << "n=" << n << " round=" << round;
    EXPECT_EQ(dst, ReferenceXor(a, b));
  }
}

TEST(BlockKernel, XorIntoRejectsMismatchedSizes) {
  Block a(16), b(16), small(8);
  EXPECT_FALSE(XorInto(&small, a, b).ok());
  Block dst(16);
  EXPECT_FALSE(XorInto(&dst, a, small).ok());
}

TEST(BlockKernel, XorSelfInverse) {
  Rng rng(7);
  Block a = RandomBlock(4097, &rng);
  Block b = RandomBlock(4097, &rng);
  Block x = a;
  ASSERT_TRUE(x.XorWith(b).ok());
  ASSERT_TRUE(x.XorWith(b).ok());
  EXPECT_EQ(x, a);
}

TEST(BlockKernel, XorAllIntoMatchesXorAll) {
  Rng rng(9);
  std::vector<Block> blocks;
  for (int i = 0; i < 5; ++i) blocks.push_back(RandomBlock(4095, &rng));
  std::vector<const Block*> ptrs;
  for (const Block& b : blocks) ptrs.push_back(&b);
  Result<Block> via_vector = XorAll(ptrs);
  ASSERT_TRUE(via_vector.ok());
  Block via_into(4095);
  ASSERT_TRUE(XorAllInto(&via_into, blocks.size(),
                         [&](size_t i) -> const Block& {
                           return blocks[i];
                         })
                  .ok());
  EXPECT_EQ(via_into, *via_vector);
}

// --- zero test / clear -----------------------------------------------------

TEST(BlockKernel, IsZeroMatchesByteReference) {
  for (size_t n : kAwkwardSizes) {
    Block z(n);
    EXPECT_TRUE(z.IsZero()) << "n=" << n;
    EXPECT_EQ(z.IsZero(), ReferenceIsZero(z));
    // A single nonzero byte anywhere must be found — probe first, last,
    // and a middle position (covers unaligned head, word body, and tail).
    for (size_t pos : {size_t{0}, n / 2, n - 1}) {
      if (n == 0) continue;
      Block b(n);
      b[pos] = 1;
      EXPECT_FALSE(b.IsZero()) << "n=" << n << " pos=" << pos;
      EXPECT_EQ(b.IsZero(), ReferenceIsZero(b));
    }
  }
}

TEST(BlockKernel, ClearZeroesEveryByte) {
  Rng rng(11);
  for (size_t n : kAwkwardSizes) {
    Block b = RandomBlock(n, &rng);
    b.Clear();
    EXPECT_TRUE(b.IsZero()) << "n=" << n;
  }
}

// --- unaligned WriteAt -----------------------------------------------------

TEST(BlockKernel, WriteAtUnalignedOffsetsThenKernelsAgree) {
  const uint8_t payload[13] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                        size_t{9}, size_t{4083}}) {
    Block a(4096), b(4096);
    ASSERT_TRUE(a.WriteAt(offset, payload, sizeof(payload)).ok());
    // The diff of (written, empty) must flag exactly the written bytes.
    Result<ChangeMask> mask = ChangeMask::Diff(b, a);
    ASSERT_TRUE(mask.ok());
    EXPECT_EQ(mask->ChangedBytes(), sizeof(payload)) << "offset=" << offset;
    EXPECT_EQ(mask->EncodedSize(), ReferenceEncodedSize(mask->delta()));
    // Applying the mask to the empty block reproduces the written one.
    Block reapplied(4096);
    ASSERT_TRUE(mask->ApplyTo(&reapplied).ok());
    EXPECT_EQ(reapplied, a) << "offset=" << offset;
  }
}

TEST(BlockKernel, WriteAtRejectsOverrun) {
  Block b(16);
  uint8_t byte = 1;
  EXPECT_FALSE(b.WriteAt(16, &byte, 1).ok());
  EXPECT_TRUE(b.WriteAt(15, &byte, 1).ok());
}

// --- change-mask encoder ---------------------------------------------------

TEST(BlockKernel, EncodedSizeMatchesByteSerialEncoder) {
  Rng rng(23);
  for (int round = 0; round < 200; ++round) {
    size_t n = kAwkwardSizes[static_cast<size_t>(
        rng.Uniform(sizeof(kAwkwardSizes) / sizeof(kAwkwardSizes[0])))];
    Block old_block = RandomBlock(n, &rng);
    Block new_block = old_block;
    // Sprinkle a random number of changed runs, including gap widths right
    // at the coalescing boundary (8 and 9 zero bytes apart).
    uint64_t changes = rng.Uniform(8);
    for (uint64_t c = 0; c < changes && n > 0; ++c) {
      size_t at = static_cast<size_t>(rng.Uniform(n));
      size_t len = 1 + static_cast<size_t>(rng.Uniform(12));
      for (size_t i = at; i < at + len && i < n; ++i) new_block[i] ^= 0xA5;
    }
    Result<ChangeMask> mask = ChangeMask::Diff(old_block, new_block);
    ASSERT_TRUE(mask.ok());
    EXPECT_EQ(mask->EncodedSize(), ReferenceEncodedSize(mask->delta()))
        << "n=" << n << " round=" << round;
  }
}

TEST(BlockKernel, EncoderCoalescingBoundary) {
  // Two changed bytes exactly 8 zeros apart coalesce into one run; 9 zeros
  // apart split into two runs.
  Block old_block(64), coalesced(64), split(64);
  coalesced[10] = 1;
  coalesced[19] = 1;  // gap of 8 -> one run of length 10
  split[10] = 1;
  split[20] = 1;  // gap of 9 -> two runs of length 1
  Result<ChangeMask> m1 = ChangeMask::Diff(old_block, coalesced);
  Result<ChangeMask> m2 = ChangeMask::Diff(old_block, split);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->EncodedSize(), 8u + 8u + 10u);
  EXPECT_EQ(m2->EncodedSize(), 8u + (8u + 1u) + (8u + 1u));
  EXPECT_EQ(m1->EncodedSize(), ReferenceEncodedSize(m1->delta()));
  EXPECT_EQ(m2->EncodedSize(), ReferenceEncodedSize(m2->delta()));
}

TEST(BlockKernel, IdenticalBlocksShortCircuit) {
  Rng rng(31);
  Block a = RandomBlock(4096, &rng);
  Block b = a;
  Result<ChangeMask> mask = ChangeMask::Diff(a, b);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->IsNoop());
  EXPECT_EQ(mask->ChangedBytes(), 0u);
  EXPECT_EQ(mask->EncodedSize(), 8u);  // mask header only, no run scan
  EXPECT_EQ(mask->EncodedSize(), ReferenceEncodedSize(mask->delta()));
  // Applying a no-op mask changes nothing.
  Block target = RandomBlock(4096, &rng);
  Block before = target;
  ASSERT_TRUE(mask->ApplyTo(&target).ok());
  EXPECT_EQ(target, before);
}

TEST(BlockKernel, FromFullMaskDetectsNoopLazily) {
  ChangeMask zero_mask = ChangeMask::FromFull(Block(256));
  EXPECT_TRUE(zero_mask.IsNoop());
  EXPECT_EQ(zero_mask.EncodedSize(), 8u);
  Block nonzero(256);
  nonzero[255] = 9;
  ChangeMask mask = ChangeMask::FromFull(std::move(nonzero));
  EXPECT_FALSE(mask.IsNoop());
}

// --- checksum --------------------------------------------------------------

TEST(BlockKernel, ChecksumDiscriminates) {
  Rng rng(47);
  for (size_t n : kAwkwardSizes) {
    Block a = RandomBlock(n, &rng);
    Block same = a;
    EXPECT_EQ(a.Checksum(), same.Checksum()) << "n=" << n;
    if (n == 0) continue;
    Block flipped = a;
    flipped[n - 1] ^= 1;  // a tail-byte flip must reach the digest
    EXPECT_NE(a.Checksum(), flipped.Checksum()) << "n=" << n;
  }
  // Length participates: zeros of different sizes digest differently.
  EXPECT_NE(Block(8).Checksum(), Block(16).Checksum());
}

// --- BlockArena ------------------------------------------------------------

TEST(BlockArena, LeaseIsZeroedAndSized) {
  BlockArena arena(512);
  Block b = arena.Lease();
  EXPECT_EQ(b.size(), 512u);
  EXPECT_TRUE(b.IsZero());
}

TEST(BlockArena, ReturnedBufferIsRecycledZeroed) {
  BlockArena arena(512);
  Block b = arena.Lease();
  b.FillPattern(3);
  arena.Return(std::move(b));
  EXPECT_EQ(arena.free_count(), 1u);
  Block again = arena.Lease();
  EXPECT_EQ(arena.reuses(), 1u);
  EXPECT_EQ(arena.free_count(), 0u);
  EXPECT_TRUE(again.IsZero());  // recycled storage must be re-zeroed
}

TEST(BlockArena, WrongSizeReturnIsDropped) {
  BlockArena arena(512);
  arena.Return(Block(4096));
  EXPECT_EQ(arena.free_count(), 0u);
}

TEST(BlockArena, FreeListIsBounded) {
  BlockArena arena(64, /*max_free=*/2);
  arena.Return(Block(64));
  arena.Return(Block(64));
  arena.Return(Block(64));
  EXPECT_EQ(arena.free_count(), 2u);
}

TEST(BlockArena, LeaseCopyOfCopiesContents) {
  BlockArena arena(256);
  arena.Return(Block(256));  // prime the free list
  Block src(256);
  src.FillPattern(5);
  Block copy = arena.LeaseCopyOf(src);
  EXPECT_EQ(copy, src);
  EXPECT_GE(arena.reuses(), 1u);
}

}  // namespace
}  // namespace radd
