// Unit tests for the common substrate: Status/Result, UIDs, blocks and
// the XOR/change-mask algebra, RNG, and formatting.

#include <gtest/gtest.h>

#include "common/block.h"
#include "common/format.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/uid.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no block 7");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "no block 7");
  EXPECT_EQ(st.ToString(), "NotFound: no block 7");
}

TEST(Status, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Inconsistent("x").IsInconsistent());
  EXPECT_TRUE(Status::Blocked("x").IsBlocked());
  EXPECT_TRUE(Status::LockConflict("x").IsLockConflict());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NetworkError("x").IsNetworkError());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultT, ValueAndError) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.ValueOr(-1), 5);

  Result<int> err = ParsePositive(-2);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

Result<int> Doubled(int v) {
  RADD_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

TEST(ResultT, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

// ---------------------------------------------------------------------------
// UIDs.
// ---------------------------------------------------------------------------

TEST(Uid, ZeroIsInvalid) {
  Uid u;
  EXPECT_FALSE(u.valid());
  EXPECT_EQ(u.ToString(), "invalid");
}

TEST(Uid, PackingRoundTrips) {
  Uid u = Uid::Make(37, 123456789);
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.site(), 37u);
  EXPECT_EQ(u.sequence(), 123456789u);
  EXPECT_EQ(u.ToString(), "37.123456789");
}

TEST(UidGenerator, MonotoneAndSiteTagged) {
  UidGenerator gen(9);
  Uid a = gen.Next();
  Uid b = gen.Next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_EQ(a.site(), 9u);
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(UidGenerator, DistinctSitesNeverCollide) {
  UidGenerator g1(1), g2(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(g1.Next(), g2.Next());
  }
}

// ---------------------------------------------------------------------------
// Blocks and the XOR algebra.
// ---------------------------------------------------------------------------

TEST(Block, StartsZeroed) {
  Block b(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_TRUE(b.IsZero());
}

TEST(Block, XorSelfIsZero) {
  Block b(64);
  b.FillPattern(7);
  Block x = Xor(b, b);
  EXPECT_TRUE(x.IsZero());
}

TEST(Block, XorIsAssociativeAndCommutative) {
  Block a(64), b(64), c(64);
  a.FillPattern(1);
  b.FillPattern(2);
  c.FillPattern(3);
  EXPECT_EQ(Xor(Xor(a, b), c), Xor(a, Xor(b, c)));
  EXPECT_EQ(Xor(a, b), Xor(b, a));
}

TEST(Block, XorSizeMismatchRejected) {
  Block a(64), b(32);
  EXPECT_TRUE(a.XorWith(b).IsInvalidArgument());
}

TEST(Block, XorAllReconstructsMissingMember) {
  // Formula (2): any member equals the XOR of parity and the others.
  std::vector<Block> data;
  Block parity(64);
  for (uint64_t i = 0; i < 5; ++i) {
    Block b(64);
    b.FillPattern(100 + i);
    parity.XorWith(b);
    data.push_back(std::move(b));
  }
  for (size_t missing = 0; missing < data.size(); ++missing) {
    std::vector<const Block*> sources = {&parity};
    for (size_t i = 0; i < data.size(); ++i) {
      if (i != missing) sources.push_back(&data[i]);
    }
    Result<Block> rec = XorAll(sources);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, data[missing]) << "missing " << missing;
  }
}

TEST(Block, XorAllRejectsEmpty) {
  EXPECT_FALSE(XorAll({}).ok());
}

TEST(Block, WriteAtBoundsChecked) {
  Block b(64);
  uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(b.WriteAt(56, bytes, 8).ok());
  EXPECT_FALSE(b.WriteAt(57, bytes, 8).ok());
  EXPECT_EQ(b[56], 1);
  EXPECT_EQ(b[63], 8);
}

TEST(Block, ChecksumDetectsChange) {
  Block a(64), b(64);
  a.FillPattern(1);
  b.FillPattern(1);
  EXPECT_EQ(a.Checksum(), b.Checksum());
  b[10] ^= 1;
  EXPECT_NE(a.Checksum(), b.Checksum());
}

TEST(ChangeMask, ParityUpdateFormula1) {
  // parity' = parity XOR (new XOR old) keeps parity = XOR of members.
  Block a(64), b(64), parity(64);
  a.FillPattern(1);
  b.FillPattern(2);
  parity = Xor(a, b);
  Block a2(64);
  a2.FillPattern(9);
  Result<ChangeMask> mask = ChangeMask::Diff(a, a2);
  ASSERT_TRUE(mask.ok());
  ASSERT_TRUE(mask->ApplyTo(&parity).ok());
  EXPECT_EQ(parity, Xor(a2, b));
}

TEST(ChangeMask, ApplyTwiceIsIdentity) {
  Block oldv(64), newv(64);
  oldv.FillPattern(3);
  newv.FillPattern(4);
  Result<ChangeMask> mask = ChangeMask::Diff(oldv, newv);
  ASSERT_TRUE(mask.ok());
  Block x = oldv;
  ASSERT_TRUE(mask->ApplyTo(&x).ok());
  EXPECT_EQ(x, newv);
  ASSERT_TRUE(mask->ApplyTo(&x).ok());
  EXPECT_EQ(x, oldv);
}

TEST(ChangeMask, SmallUpdateEncodesSmall) {
  // §7.4: a 100-byte record update in a 4 KB block ships ~100 bytes.
  Block oldv(4096), newv(4096);
  oldv.FillPattern(1);
  newv = oldv;
  for (size_t i = 1000; i < 1100; ++i) newv[i] ^= 0xFF;
  Result<ChangeMask> mask = ChangeMask::Diff(oldv, newv);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->ChangedBytes(), 100u);
  EXPECT_LT(mask->EncodedSize(), 200u);
  EXPECT_GE(mask->EncodedSize(), 100u);
}

TEST(ChangeMask, NoopIsTiny) {
  Block b(4096);
  b.FillPattern(5);
  Result<ChangeMask> mask = ChangeMask::Diff(b, b);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->IsNoop());
  EXPECT_LE(mask->EncodedSize(), 8u);
}

TEST(ChangeMask, ScatteredRunsCoalesceSensibly) {
  Block oldv(4096), newv(4096);
  newv = oldv;
  // Two runs 4 bytes apart (closer than the 8-byte header) coalesce.
  newv[100] = 1;
  newv[105] = 1;
  Result<ChangeMask> near = ChangeMask::Diff(oldv, newv);
  // Two runs far apart stay separate.
  Block far_block = oldv;
  far_block[100] = 1;
  far_block[400] = 1;
  Result<ChangeMask> far = ChangeMask::Diff(oldv, far_block);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  EXPECT_LT(near->EncodedSize(), far->EncodedSize());
}

TEST(ChangeMask, FullBlockChangeCostsBlockPlusHeaders) {
  Block oldv(4096), newv(4096);
  newv.FillPattern(1);
  Result<ChangeMask> mask = ChangeMask::Diff(oldv, newv);
  ASSERT_TRUE(mask.ok());
  EXPECT_GE(mask->EncodedSize(), 4096u);
  EXPECT_LT(mask->EncodedSize(), 4096u + 64u);
}

// ---------------------------------------------------------------------------
// RNG.
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(150.0);
  EXPECT_NEAR(sum / n, 150.0, 5.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, ThetaZeroIsUniformish) {
  Rng rng(5);
  ZipfGenerator z(10, 0.0, &rng);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[static_cast<size_t>(z.Next())];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Zipf, SkewFavorsSmallKeys) {
  Rng rng(5);
  ZipfGenerator z(1000, 0.9, &rng);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z.Next() < 100) ++head;
  }
  // With theta=0.9 the top 10% of keys draw well over half the accesses.
  EXPECT_GT(head, n / 2);
}

// ---------------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------------

TEST(Format, Doubles) {
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(FormatDouble(30, 0), "30");
}

TEST(Format, Hours) {
  EXPECT_EQ(FormatHours(150), "150.0 hours");
  EXPECT_EQ(FormatHours(24 * 365 * 2), "2.00 years");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Title");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string s = t.Render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

}  // namespace
}  // namespace radd
