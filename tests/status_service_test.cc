// Tests for the SiteStatusService control plane: epoch-stamped state
// transitions, the majority declaration rule, fencing/rejoin, and the
// restart/mark-up guards.

#include "cluster/status_service.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace radd {
namespace {

class StatusServiceTest : public ::testing::Test {
 protected:
  StatusServiceTest()
      : cluster_(6, SiteConfig{1, 8, 256}), service_(&sim_, &cluster_) {}

  Simulator sim_;
  Cluster cluster_;
  SiteStatusService service_;
};

TEST_F(StatusServiceTest, EpochBumpsOnEveryTransition) {
  EXPECT_EQ(service_.Epoch(2), 0u);
  ASSERT_TRUE(service_.InjectCrash(2).ok());
  EXPECT_EQ(service_.Epoch(2), 1u);
  EXPECT_EQ(cluster_.StateOf(2), SiteState::kDown);
  EXPECT_FALSE(service_.ProcessAlive(2));

  ASSERT_TRUE(service_.NotifyRestart(2).ok());
  EXPECT_EQ(service_.Epoch(2), 2u);
  EXPECT_EQ(cluster_.StateOf(2), SiteState::kRecovering);
  EXPECT_TRUE(service_.ProcessAlive(2));

  ASSERT_TRUE(service_.MarkUp(2).ok());
  EXPECT_EQ(service_.Epoch(2), 3u);
  EXPECT_EQ(cluster_.StateOf(2), SiteState::kUp);

  // Other sites were untouched.
  EXPECT_EQ(service_.Epoch(0), 0u);
  EXPECT_EQ(service_.stats().Get("status.transitions"), 3u);
}

TEST_F(StatusServiceTest, CheckEpochRejectsEveryOtherEpoch) {
  ASSERT_TRUE(service_.CheckEpoch(1, 0).ok());
  ASSERT_TRUE(service_.InjectCrash(1).ok());
  EXPECT_TRUE(service_.CheckEpoch(1, 0).IsStaleEpoch());
  EXPECT_TRUE(service_.CheckEpoch(1, 2).IsStaleEpoch()) << "future epoch";
  EXPECT_TRUE(service_.CheckEpoch(1, 1).ok());
  EXPECT_TRUE(service_.CheckEpoch(9, 0).IsNotFound());
}

TEST_F(StatusServiceTest, TransitionGuards) {
  // Restart of an up site is rejected; MarkUp needs kRecovering.
  EXPECT_TRUE(service_.NotifyRestart(0).IsInvalidArgument());
  EXPECT_TRUE(service_.MarkUp(0).IsInvalidArgument());
  ASSERT_TRUE(service_.InjectCrash(0).ok());
  EXPECT_TRUE(service_.MarkUp(0).IsInvalidArgument()) << "down, not recovering";
  EXPECT_EQ(service_.Epoch(0), 1u) << "rejected calls must not bump";
  EXPECT_TRUE(service_.InjectCrash(9).IsNotFound());
}

TEST_F(StatusServiceTest, DiskFailureRecoversWithoutRestart) {
  ASSERT_TRUE(service_.InjectDiskFailure(3, 0).ok());
  EXPECT_EQ(cluster_.StateOf(3), SiteState::kRecovering);
  EXPECT_TRUE(service_.ProcessAlive(3)) << "media failure, process fine";
  EXPECT_EQ(service_.Epoch(3), 1u);
  ASSERT_TRUE(service_.MarkUp(3).ok());
  EXPECT_EQ(service_.Epoch(3), 2u);
}

TEST_F(StatusServiceTest, StrictMajorityDeclaresDown) {
  // 6 sites -> 5 peers; a strict majority needs 3 live suspectors.
  service_.ReportSuspicion(1, 0, true);
  service_.ReportSuspicion(2, 0, true);
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kUp) << "2 of 5 is no majority";
  service_.ReportSuspicion(3, 0, true);
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kDown);
  EXPECT_EQ(service_.stats().Get("status.declared_down"), 1u);
  // The process still runs: it was fenced, not killed.
  EXPECT_TRUE(service_.ProcessAlive(0));
}

TEST_F(StatusServiceTest, DownObserversDoNotCountTowardMajority) {
  ASSERT_TRUE(service_.InjectCrash(4).ok());
  ASSERT_TRUE(service_.InjectCrash(5).ok());
  service_.ReportSuspicion(1, 0, true);
  service_.ReportSuspicion(2, 0, true);
  // Stale reports from the dead observers must not tip the scale.
  service_.ReportSuspicion(4, 0, true);
  service_.ReportSuspicion(5, 0, true);
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kUp)
      << "only 2 of 5 peers are live suspectors";
}

TEST_F(StatusServiceTest, FencedSiteRejoinsWhenSuspicionClears) {
  service_.ReportSuspicion(1, 0, true);
  service_.ReportSuspicion(2, 0, true);
  service_.ReportSuspicion(3, 0, true);
  ASSERT_EQ(cluster_.StateOf(0), SiteState::kDown);
  const uint64_t declared_epoch = service_.Epoch(0);

  // Peers hear it again: below the majority it rejoins as recovering (it
  // missed writes while fenced), with a fresh epoch.
  service_.ReportSuspicion(2, 0, false);
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kRecovering);
  EXPECT_EQ(service_.Epoch(0), declared_epoch + 1);
  EXPECT_EQ(service_.stats().Get("status.rejoins"), 1u);
}

TEST_F(StatusServiceTest, CrashedSiteDoesNotRejoinOnSuspicionClear) {
  ASSERT_TRUE(service_.InjectCrash(0).ok());
  service_.ReportSuspicion(1, 0, true);
  service_.ReportSuspicion(1, 0, false);
  EXPECT_EQ(cluster_.StateOf(0), SiteState::kDown)
      << "a dead process rejoins via NotifyRestart, not via heartbeats";
}

TEST_F(StatusServiceTest, ListenersSeeTransitionsInOrder) {
  std::vector<std::tuple<SiteId, SiteState, uint64_t>> seen;
  service_.AddListener([&](SiteId s, SiteState st, uint64_t e) {
    seen.emplace_back(s, st, e);
  });
  ASSERT_TRUE(service_.InjectCrash(2).ok());
  ASSERT_TRUE(service_.NotifyRestart(2).ok());
  ASSERT_TRUE(service_.MarkUp(2).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_tuple(SiteId(2), SiteState::kDown, 1ull));
  EXPECT_EQ(seen[1],
            std::make_tuple(SiteId(2), SiteState::kRecovering, 2ull));
  EXPECT_EQ(seen[2], std::make_tuple(SiteId(2), SiteState::kUp, 3ull));
}

TEST_F(StatusServiceTest, DisasterRestartComesBackBlank) {
  Block b(256);
  b.FillPattern(5);
  ASSERT_TRUE(cluster_.site(1)->disks()->Write(2, b, Uid::Make(1, 1)).ok());
  ASSERT_TRUE(service_.InjectDisaster(1).ok());
  // Even a write that sneaks onto the dead array during the outage is
  // gone after restart: the replacement hardware arrives blank.
  (void)cluster_.site(1)->disks()->Write(2, b, Uid::Make(1, 2));
  ASSERT_TRUE(service_.NotifyRestart(1).ok());
  EXPECT_TRUE(cluster_.site(1)->disks()->Read(2).status().IsDataLoss());
}

}  // namespace
}  // namespace radd
