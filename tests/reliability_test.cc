// Tests for the §7.5 reliability models: closed forms against the paper's
// printed figures, and Monte-Carlo agreement with the formulas' shape.

#include "reliability/reliability.h"

#include <gtest/gtest.h>

namespace radd {
namespace {

constexpr double kHoursPerYear = 24 * 365;

TEST(Environments, Table2Constants) {
  const auto& envs = PaperEnvironments();
  ASSERT_EQ(envs.size(), 4u);
  EXPECT_EQ(envs[0].name, "cautious RAID");
  EXPECT_EQ(envs[0].disks_per_site, 100);
  EXPECT_EQ(envs[1].disks_per_site, 10);
  EXPECT_DOUBLE_EQ(envs[0].disaster_mttf, 150000);
  EXPECT_DOUBLE_EQ(envs[2].disaster_mttf, 600000);
  EXPECT_DOUBLE_EQ(envs[2].disaster_mttr, 300);
  for (const auto& e : envs) {
    EXPECT_DOUBLE_EQ(e.disk_mttf, 30000);
    EXPECT_DOUBLE_EQ(e.site_mttf, 150);
    EXPECT_DOUBLE_EQ(e.site_mttr, 0.5);
  }
}

// Figure 5, G = 8: the paper's MTTU values.
TEST(Analytic, Figure5Mttu) {
  AnalyticModel m(PaperEnvironments()[0], 8);
  EXPECT_DOUBLE_EQ(m.MttuHours(SchemeKind::kRadd), 5000.0);
  EXPECT_DOUBLE_EQ(m.MttuHours(SchemeKind::kRowb), 22500.0);
  EXPECT_DOUBLE_EQ(m.MttuHours(SchemeKind::kRaid), 150.0);
  EXPECT_DOUBLE_EQ(m.MttuHours(SchemeKind::kCRaid), 5000.0);
  // The paper prints "83.333 hours" (i.e. 83,333).
  EXPECT_NEAR(m.MttuHours(SchemeKind::kTwoDRadd), 83333.3, 0.2);
  // Formula (3) with G/2 gives 9000; the paper prints 10,000 (see
  // EXPERIMENTS.md).
  EXPECT_DOUBLE_EQ(m.MttuHours(SchemeKind::kHalfRadd), 9000.0);
}

TEST(Analytic, MttuIsEnvironmentIndependent) {
  // "Since all four scenarios give the same MTTU, we report the numbers
  // only once" — the formulas only involve site constants, which are
  // shared by all environments.
  for (SchemeKind k : AllSchemeKinds()) {
    double first = AnalyticModel(PaperEnvironments()[0], 8).MttuHours(k);
    for (const auto& env : PaperEnvironments()) {
      EXPECT_DOUBLE_EQ(AnalyticModel(env, 8).MttuHours(k), first);
    }
  }
}

// Figure 6: formula (4) and the RAID closed form.
TEST(Analytic, Figure6Mttf) {
  // Formula (4), cautious conventional (N=10): 150*30000/(0.5*9*10)
  // = 100,000 h = 11.4 years. (The paper prints 28.5 — its text applies
  // the "probability essentially 1.0" shortcut; see EXPERIMENTS.md.)
  AnalyticModel cc(PaperEnvironments()[1], 8);
  EXPECT_NEAR(cc.MttfHours(SchemeKind::kRadd) / kHoursPerYear, 11.42, 0.01);
  EXPECT_DOUBLE_EQ(cc.MttfHours(SchemeKind::kRadd),
                   cc.MttfHours(SchemeKind::kRowb));
  // RAID: disaster-MTTF / (G+2) = 15,000 h = 1.71 years — matches the
  // paper exactly.
  EXPECT_NEAR(cc.MttfHours(SchemeKind::kRaid) / kHoursPerYear, 1.712, 0.01);
  AnalyticModel nc(PaperEnvironments()[3], 8);
  EXPECT_NEAR(nc.MttfHours(SchemeKind::kRaid) / kHoursPerYear, 6.85, 0.01);
  // C-RAID / 2D-RADD: > 500 years in every environment.
  for (const auto& env : PaperEnvironments()) {
    AnalyticModel m(env, 8);
    EXPECT_GT(m.MttfHours(SchemeKind::kCRaid) / kHoursPerYear, 500);
    EXPECT_GT(m.MttfHours(SchemeKind::kTwoDRadd) / kHoursPerYear, 500);
  }
}

TEST(Analytic, HalfRaddDoublesProtection) {
  for (const auto& env : PaperEnvironments()) {
    AnalyticModel m(env, 8);
    EXPECT_GT(m.MttfHours(SchemeKind::kHalfRadd),
              m.MttfHours(SchemeKind::kRadd));
    EXPECT_GT(m.MttuHours(SchemeKind::kHalfRadd),
              m.MttuHours(SchemeKind::kRadd));
  }
}

TEST(Analytic, RefinedModelIsFinitePositive) {
  for (const auto& env : PaperEnvironments()) {
    AnalyticModel m(env, 8);
    for (SchemeKind k : AllSchemeKinds()) {
      double v = m.MttfHoursRefined(k);
      EXPECT_GT(v, 0) << SchemeKindName(k);
      EXPECT_LT(v, 1e12) << SchemeKindName(k);
    }
  }
}

// ---------------------------------------------------------------------------
// Monte Carlo: shape agreement with the formulas. Trials are kept small;
// we assert within broad factors, not tight CI bounds.
// ---------------------------------------------------------------------------

TEST(MonteCarlo, MttuOrderingMatchesFigure5) {
  MonteCarlo mc(PaperEnvironments()[0], 8, 1234);
  double raid = mc.EstimateMttu(SchemeKind::kRaid, 200).mean_hours;
  double radd = mc.EstimateMttu(SchemeKind::kRadd, 200).mean_hours;
  double half = mc.EstimateMttu(SchemeKind::kHalfRadd, 200).mean_hours;
  double rowb = mc.EstimateMttu(SchemeKind::kRowb, 200).mean_hours;
  double twod = mc.EstimateMttu(SchemeKind::kTwoDRadd, 40).mean_hours;
  // Figure 5's ordering: RAID << RADD < 1/2-RADD < ROWB << 2D-RADD.
  EXPECT_LT(raid * 5, radd);
  EXPECT_LT(radd, half);
  EXPECT_LT(half, rowb);
  EXPECT_LT(rowb, twod);
}

TEST(MonteCarlo, RaidMttuMatchesSiteMttf) {
  MonteCarlo mc(PaperEnvironments()[0], 8, 99);
  auto est = mc.EstimateMttu(SchemeKind::kRaid, 400);
  // MTTU(RAID) = site-MTTF = 150 h (within sampling error).
  EXPECT_NEAR(est.mean_hours, 150.0, 25.0);
}

TEST(MonteCarlo, CRaidMttuTracksRadd) {
  MonteCarlo mc(PaperEnvironments()[0], 8, 7);
  double radd = mc.EstimateMttu(SchemeKind::kRadd, 150).mean_hours;
  double craid = mc.EstimateMttu(SchemeKind::kCRaid, 150).mean_hours;
  EXPECT_GT(craid, radd * 0.5);
  EXPECT_LT(craid, radd * 2.0);
}

TEST(MonteCarlo, MttfConventionalBeatsRaidEnvironment) {
  // Figure 6's key claim: RADD is an order of magnitude more reliable in
  // conventional (N=10) environments than with N=100.
  MonteCarlo raid_env(PaperEnvironments()[0], 8, 5);
  MonteCarlo conv_env(PaperEnvironments()[1], 8, 5);
  double lo = raid_env.EstimateMttf(SchemeKind::kRadd, 30).mean_hours;
  double hi = conv_env.EstimateMttf(SchemeKind::kRadd, 30).mean_hours;
  EXPECT_GT(hi, 2 * lo);
}

TEST(MonteCarlo, CompositeSchemesExceedHorizon) {
  MonteCarlo mc(PaperEnvironments()[1], 8, 5);
  double horizon = 500 * kHoursPerYear;
  auto twod = mc.EstimateMttf(SchemeKind::kTwoDRadd, 5, horizon);
  EXPECT_GE(twod.censored, 4) << "2D-RADD should survive ~500 years";
  auto craid = mc.EstimateMttf(SchemeKind::kCRaid, 10, horizon);
  // Figure 7 claims > 100 years; the MC lands around the 500-year horizon.
  EXPECT_GT(craid.mean_hours, 100 * kHoursPerYear);
}

TEST(MonteCarlo, RaidMttfMatchesClosedForm) {
  MonteCarlo mc(PaperEnvironments()[1], 8, 11);
  auto est = mc.EstimateMttf(SchemeKind::kRaid, 60);
  // Closed form: 15,000 h; the MC adds double-disk losses, so it may be
  // somewhat below, never above.
  EXPECT_LT(est.mean_hours, 15000 * 1.4);
  EXPECT_GT(est.mean_hours, 15000 * 0.4);
}

TEST(MonteCarlo, DeterministicUnderSeed) {
  MonteCarlo a(PaperEnvironments()[0], 8, 42);
  MonteCarlo b(PaperEnvironments()[0], 8, 42);
  EXPECT_DOUBLE_EQ(a.EstimateMttu(SchemeKind::kRadd, 50).mean_hours,
                   b.EstimateMttu(SchemeKind::kRadd, 50).mean_hours);
}

}  // namespace
}  // namespace radd
