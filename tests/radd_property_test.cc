// Property-based tests: randomized operation/failure schedules against a
// shadow model (a plain map from block address to last written value),
// with the RADD's global invariants re-verified along the way.
//
// These are the strongest correctness checks in the suite: any divergence
// between what the RADD serves and what a perfect single-copy store would
// serve — under crashes, disasters, disk failures, degraded reads/writes,
// and recoveries — fails the test.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/node.h"
#include "core/radd.h"

namespace radd {
namespace {

struct ShadowModel {
  std::map<std::pair<int, BlockNum>, Block> values;

  void Write(int member, BlockNum block, const Block& data) {
    values[{member, block}] = data;
  }
  Block Expected(int member, BlockNum block, size_t block_size) const {
    auto it = values.find({member, block});
    return it == values.end() ? Block(block_size) : it->second;
  }
};

// ---------------------------------------------------------------------------
// Synchronous reference model under random schedules.
// ---------------------------------------------------------------------------

struct SyncPropertyParam {
  uint64_t seed;
  int group_size;
  double spare_fraction = 1.0;
};

class SyncPropertyTest : public ::testing::TestWithParam<SyncPropertyParam> {
};

TEST_P(SyncPropertyTest, RandomScheduleMatchesShadowModel) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  RaddConfig config;
  config.group_size = param.group_size;
  config.rows = static_cast<BlockNum>(2 * (param.group_size + 2));
  config.block_size = 256;
  config.spare_fraction = param.spare_fraction;
  SiteConfig sc{2, config.rows / 2 + 1, config.block_size};
  Cluster cluster(param.group_size + 2, sc);
  RaddGroup group(&cluster, config);
  ShadowModel shadow;

  const int members = group.num_members();
  const BlockNum blocks = group.DataBlocksPerMember();
  // At most one non-up site at any time (the paper's single-failure
  // tolerance); track which.
  int degraded_member = -1;

  auto up_site = [&](int exclude) {
    int m;
    do {
      m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
    } while (m == exclude);
    return group.SiteOfMember(m);
  };

  for (int step = 0; step < 600; ++step) {
    SCOPED_TRACE("step " + std::to_string(step) + " seed " +
                 std::to_string(param.seed));
    uint64_t dice = rng.Uniform(100);
    if (dice < 42) {
      // Write a random block from an appropriate client.
      int m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      BlockNum b = rng.Uniform(blocks);
      Block data(config.block_size);
      data.FillPattern(rng.Next());
      SiteId client = cluster.StateOf(group.SiteOfMember(m)) ==
                              SiteState::kDown
                          ? up_site(m)
                          : group.SiteOfMember(m);
      OpResult w = group.Write(client, m, b, data);
      if (w.ok()) {
        shadow.Write(m, b, data);
      } else {
        ASSERT_TRUE(w.status.IsBlocked()) << w.status.ToString();
      }
    } else if (dice < 84) {
      // Read a random block and compare against the shadow.
      int m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      BlockNum b = rng.Uniform(blocks);
      SiteId client = cluster.StateOf(group.SiteOfMember(m)) ==
                              SiteState::kDown
                          ? up_site(m)
                          : group.SiteOfMember(m);
      OpResult r = group.Read(client, m, b);
      if (r.ok()) {
        EXPECT_EQ(r.data, shadow.Expected(m, b, config.block_size))
            << "member " << m << " block " << b;
      } else {
        ASSERT_TRUE(r.status.IsBlocked()) << r.status.ToString();
      }
    } else if (dice < 90) {
      // Inject a failure if everyone is currently healthy.
      if (degraded_member >= 0) continue;
      degraded_member =
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      SiteId victim = group.SiteOfMember(degraded_member);
      uint64_t kind = rng.Uniform(3);
      if (kind == 0) {
        ASSERT_TRUE(cluster.CrashSite(victim).ok());
      } else if (kind == 1) {
        ASSERT_TRUE(cluster.DisasterSite(victim).ok());
      } else {
        ASSERT_TRUE(
            cluster.FailDisk(victim, static_cast<int>(rng.Uniform(2))).ok());
      }
    } else if (dice < 97) {
      // Repair.
      if (degraded_member < 0) continue;
      SiteId victim = group.SiteOfMember(degraded_member);
      if (cluster.StateOf(victim) == SiteState::kDown) {
        ASSERT_TRUE(cluster.RestoreSite(victim).ok());
      }
      Result<OpCounts> rec = group.RunRecovery(degraded_member);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      degraded_member = -1;
    } else {
      // Invariant audit.
      ASSERT_TRUE(group.VerifyInvariants().ok());
    }
  }

  // Final: repair and audit everything, then compare every single block.
  if (degraded_member >= 0) {
    SiteId victim = group.SiteOfMember(degraded_member);
    if (cluster.StateOf(victim) == SiteState::kDown) {
      ASSERT_TRUE(cluster.RestoreSite(victim).ok());
    }
    ASSERT_TRUE(group.RunRecovery(degraded_member).ok());
  }
  ASSERT_TRUE(group.VerifyInvariants().ok());
  for (int m = 0; m < members; ++m) {
    for (BlockNum b = 0; b < blocks; ++b) {
      OpResult r = group.Read(group.SiteOfMember(m), m, b);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.data, shadow.Expected(m, b, config.block_size))
          << "member " << m << " block " << b;
    }
  }
}

std::vector<SyncPropertyParam> SyncParams() {
  std::vector<SyncPropertyParam> out;
  for (uint64_t seed = 1; seed <= 10; ++seed) out.push_back({seed, 4});
  for (uint64_t seed = 11; seed <= 14; ++seed) out.push_back({seed, 8});
  for (uint64_t seed = 15; seed <= 17; ++seed) out.push_back({seed, 2});
  for (uint64_t seed = 18; seed <= 19; ++seed) out.push_back({seed, 1});
  // §7.2 reduced spares: degraded writes may block; the shadow-model
  // comparison and invariants must still hold throughout.
  for (uint64_t seed = 20; seed <= 23; ++seed) {
    out.push_back({seed, 4, 0.5});
  }
  for (uint64_t seed = 24; seed <= 25; ++seed) {
    out.push_back({seed, 4, 0.0});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Schedules, SyncPropertyTest,
                         ::testing::ValuesIn(SyncParams()));

// ---------------------------------------------------------------------------
// Message-driven layer under random schedules (including message loss).
// ---------------------------------------------------------------------------

struct AsyncPropertyParam {
  uint64_t seed;
  double drop_probability;
};

class AsyncPropertyTest
    : public ::testing::TestWithParam<AsyncPropertyParam> {};

TEST_P(AsyncPropertyTest, RandomScheduleMatchesShadowModel) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  RaddConfig config;
  config.group_size = 4;
  config.rows = 12;
  config.block_size = 256;
  SiteConfig sc{1, config.rows, config.block_size};
  Simulator sim;
  NetworkModel nm;
  nm.drop_probability = param.drop_probability;
  Network net(&sim, nm, param.seed * 77);
  Cluster cluster(6, sc);
  RaddNodeSystem sys(&sim, &net, &cluster, config);
  ShadowModel shadow;

  const int members = 6;
  const BlockNum blocks = sys.group()->DataBlocksPerMember();
  int down_member = -1;

  auto up_site = [&](int exclude) {
    int m;
    do {
      m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
    } while (m == exclude);
    return sys.group()->SiteOfMember(m);
  };

  for (int step = 0; step < 250; ++step) {
    SCOPED_TRACE("step " + std::to_string(step) + " seed " +
                 std::to_string(param.seed));
    uint64_t dice = rng.Uniform(100);
    if (dice < 40) {
      int m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      BlockNum b = rng.Uniform(blocks);
      Block data(config.block_size);
      data.FillPattern(rng.Next());
      SiteId client =
          m == down_member ? up_site(m) : sys.group()->SiteOfMember(m);
      auto w = sys.Write(client, m, b, data);
      if (w.status.ok()) {
        shadow.Write(m, b, data);
      }
    } else if (dice < 80) {
      int m = static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      BlockNum b = rng.Uniform(blocks);
      SiteId client =
          m == down_member ? up_site(m) : sys.group()->SiteOfMember(m);
      auto r = sys.Read(client, m, b);
      if (r.status.ok()) {
        EXPECT_EQ(r.data, shadow.Expected(m, b, config.block_size))
            << "member " << m << " block " << b;
      }
    } else if (dice < 88) {
      if (down_member >= 0) continue;
      down_member =
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(members)));
      ASSERT_TRUE(
          cluster.CrashSite(sys.group()->SiteOfMember(down_member)).ok());
    } else if (dice < 96) {
      if (down_member < 0) continue;
      SiteId victim = sys.group()->SiteOfMember(down_member);
      ASSERT_TRUE(cluster.RestoreSite(victim).ok());
      sim.Run();  // drain in-flight traffic before the sweep
      ASSERT_TRUE(sys.group()->RunRecovery(down_member).ok());
      down_member = -1;
    } else {
      sim.Run();
      ASSERT_TRUE(sys.group()->VerifyInvariants().ok());
    }
  }

  if (down_member >= 0) {
    SiteId victim = sys.group()->SiteOfMember(down_member);
    ASSERT_TRUE(cluster.RestoreSite(victim).ok());
    sim.Run();
    ASSERT_TRUE(sys.group()->RunRecovery(down_member).ok());
  }
  sim.Run();
  ASSERT_TRUE(sys.group()->VerifyInvariants().ok());
  for (int m = 0; m < members; ++m) {
    for (BlockNum b = 0; b < blocks; ++b) {
      auto r = sys.Read(sys.group()->SiteOfMember(m), m, b);
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.data, shadow.Expected(m, b, config.block_size))
          << "member " << m << " block " << b;
    }
  }
}

std::vector<AsyncPropertyParam> AsyncParams() {
  std::vector<AsyncPropertyParam> out;
  for (uint64_t seed = 1; seed <= 6; ++seed) out.push_back({seed, 0.0});
  for (uint64_t seed = 7; seed <= 12; ++seed) out.push_back({seed, 0.10});
  // Heavy loss: client-level retries fire; server-side dedup must keep
  // exactly one UID-bearing flow per operation.
  for (uint64_t seed = 13; seed <= 16; ++seed) out.push_back({seed, 0.25});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Schedules, AsyncPropertyTest,
                         ::testing::ValuesIn(AsyncParams()));

// Regression for the duplicate-flow bug: many concurrent writes to one
// block under loss queue behind each other's locks long enough to trip
// the client retry timer; without server-side dedup the retries spawned
// parallel flows with fresh UIDs and corrupted the parity UID array.
TEST(AsyncHotBlock, ConcurrentWritesWithRetriesStayConsistent) {
  RaddConfig config;
  config.group_size = 4;
  config.rows = 12;
  config.block_size = 256;
  Simulator sim;
  NetworkModel nm;
  nm.drop_probability = 0.15;
  Network net(&sim, nm, 0xd00d);
  Cluster cluster(6, SiteConfig{1, config.rows, config.block_size});
  RaddNodeSystem sys(&sim, &net, &cluster, config);

  int done = 0, ok = 0;
  const int kWrites = 40;
  for (int i = 0; i < kWrites; ++i) {
    Block b(config.block_size);
    b.FillPattern(static_cast<uint64_t>(i));
    // Everyone hammers member 2's block 0.
    SiteId client = sys.group()->SiteOfMember(i % 6);
    sys.AsyncWrite(client, 2, 0, b, [&](Status st, SimTime) {
      ++done;
      if (st.ok()) ++ok;
    });
  }
  sim.Run();
  EXPECT_EQ(done, kWrites);
  EXPECT_GT(ok, kWrites / 2);
  EXPECT_TRUE(sys.group()->VerifyInvariants().ok());
}

}  // namespace
}  // namespace radd
