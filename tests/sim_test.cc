// Unit tests for the discrete-event simulator and stats.

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {
namespace {

TEST(Simulator, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.Run(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Millis(10), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  SimTime inner_time = 0;
  sim.Schedule(Millis(5), [&] {
    sim.Schedule(Millis(7), [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, Millis(12));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  uint64_t id = sim.Schedule(Millis(5), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double cancel
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(12345));
  EXPECT_FALSE(sim.Cancel(0));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(10), [&] { ++count; });
  sim.Schedule(Millis(20), [&] { ++count; });
  sim.Schedule(Millis(30), [&] { ++count; });
  sim.RunUntil(Millis(25));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), Millis(25));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(Millis(static_cast<uint64_t>(i)), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(sim.RunUntilPredicate([&] { return count == 100; }));
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Micros(static_cast<uint64_t>(i)), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(Millis(30), 30000u);
  EXPECT_EQ(Seconds(2), 2000000u);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(75)), 75.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
}

TEST(Stats, CountersAccumulate) {
  Stats s;
  s.Add("x");
  s.Add("x", 4);
  EXPECT_EQ(s.Get("x"), 5u);
  EXPECT_EQ(s.Get("missing"), 0u);
  s.Reset();
  EXPECT_EQ(s.Get("x"), 0u);
}

TEST(Stats, ObservationsMeanAndPercentile) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.Observe("lat", i);
  EXPECT_DOUBLE_EQ(s.Mean("lat"), 50.5);
  EXPECT_NEAR(s.Percentile("lat", 50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile("lat", 99), 99.01, 0.1);
  EXPECT_EQ(s.SampleCount("lat"), 100u);
}

TEST(OpCounts, ArithmeticAndFormula) {
  OpCounts a{1, 2, 3, 4};
  OpCounts b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a.local_reads, 2u);
  EXPECT_EQ(a.Total(), 14u);
  OpCounts d = a - b;
  EXPECT_EQ(d.local_writes, 2u);
  EXPECT_EQ((OpCounts{1, 1, 0, 0}).ToFormula(), "R+W");
  EXPECT_EQ((OpCounts{0, 0, 8, 0}).ToFormula(), "8*RR");
  EXPECT_EQ((OpCounts{}).ToFormula(), "0");
}

TEST(OpCounts, CostPricing) {
  OpCounts c{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(c.CostMs(30, 30, 75, 75), 210.0);
}

}  // namespace
}  // namespace radd
