// Tests for cluster/site state machinery and failure injection.

#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace radd {
namespace {

SiteConfig Small() { return SiteConfig{2, 8, 256}; }

TEST(Cluster, SitesStartUp) {
  Cluster c(4, Small());
  EXPECT_EQ(c.num_sites(), 4);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(c.StateOf(s), SiteState::kUp);
  }
  EXPECT_EQ(c.UnhealthySites(), 0);
}

TEST(Cluster, UnknownSiteIsDownAndNull) {
  Cluster c(2, Small());
  EXPECT_EQ(c.site(5), nullptr);
  EXPECT_EQ(c.StateOf(5), SiteState::kDown);
  EXPECT_TRUE(c.CrashSite(5).IsNotFound());
}

TEST(Cluster, CrashRestoreLifecycle) {
  Cluster c(3, Small());
  ASSERT_TRUE(c.CrashSite(1).ok());
  EXPECT_EQ(c.StateOf(1), SiteState::kDown);
  EXPECT_TRUE(c.CrashSite(1).IsInvalidArgument()) << "already down";
  EXPECT_EQ(c.SitesIn(SiteState::kDown), std::vector<SiteId>{1});
  ASSERT_TRUE(c.RestoreSite(1).ok());
  EXPECT_EQ(c.StateOf(1), SiteState::kRecovering);
  EXPECT_TRUE(c.RestoreSite(1).IsInvalidArgument()) << "not down anymore";
  ASSERT_TRUE(c.MarkUp(1).ok());
  EXPECT_EQ(c.StateOf(1), SiteState::kUp);
  EXPECT_EQ(c.UnhealthySites(), 0);
}

TEST(Cluster, TemporaryCrashKeepsDiskContents) {
  Cluster c(2, Small());
  Block b(256);
  b.FillPattern(1);
  ASSERT_TRUE(c.site(0)->disks()->Write(3, b, Uid::Make(0, 1)).ok());
  ASSERT_TRUE(c.CrashSite(0).ok());
  ASSERT_TRUE(c.RestoreSite(0).ok());
  Result<BlockRecord> r = c.site(0)->disks()->Read(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, b);
}

TEST(Cluster, DisasterLosesAllDisks) {
  Cluster c(2, Small());
  Block b(256);
  b.FillPattern(1);
  ASSERT_TRUE(c.site(0)->disks()->Write(3, b, Uid::Make(0, 1)).ok());
  ASSERT_TRUE(c.site(0)->disks()->Write(12, b, Uid::Make(0, 2)).ok());
  ASSERT_TRUE(c.DisasterSite(0).ok());
  EXPECT_EQ(c.StateOf(0), SiteState::kDown);
  ASSERT_TRUE(c.RestoreSite(0).ok());
  EXPECT_TRUE(c.site(0)->disks()->Read(3).status().IsDataLoss());
  EXPECT_TRUE(c.site(0)->disks()->Read(12).status().IsDataLoss());
}

TEST(Cluster, DisasterRestorePoisonsStaleContents) {
  // Regression: a write that reaches the dead array *during* the outage
  // (a delayed disk-queue flush, a rogue DMA) clears that block's loss
  // mark. RestoreSite must re-blank the disks at restore time, or the
  // stale value would be served as if it survived the disaster.
  Cluster c(2, Small());
  Block b(256);
  b.FillPattern(1);
  ASSERT_TRUE(c.DisasterSite(0).ok());
  ASSERT_TRUE(c.site(0)->disks()->Write(3, b, Uid::Make(0, 7)).ok());
  ASSERT_TRUE(c.site(0)->disks()->Read(3).ok())
      << "precondition: the stray write really landed";
  ASSERT_TRUE(c.RestoreSite(0).ok());
  EXPECT_TRUE(c.site(0)->disks()->Read(3).status().IsDataLoss())
      << "stale pre-restore content leaked through a disaster restore";
  // A later restore cycle without a disaster keeps contents (plain crash).
  ASSERT_TRUE(c.MarkUp(0).ok());
  ASSERT_TRUE(c.site(0)->disks()->Write(3, b, Uid::Make(0, 8)).ok());
  ASSERT_TRUE(c.CrashSite(0).ok());
  ASSERT_TRUE(c.RestoreSite(0).ok());
  EXPECT_TRUE(c.site(0)->disks()->Read(3).ok());
}

TEST(Cluster, DiskFailureMovesUpToRecovering) {
  Cluster c(2, Small());
  ASSERT_TRUE(c.FailDisk(0, 1).ok());
  EXPECT_EQ(c.StateOf(0), SiteState::kRecovering);
  // Disk 0's blocks intact, disk 1's lost.
  EXPECT_TRUE(c.site(0)->disks()->Read(0).ok());
  EXPECT_TRUE(c.site(0)->disks()->Read(8).status().IsDataLoss());
  // Failing a disk at a down site is rejected.
  ASSERT_TRUE(c.CrashSite(1).ok());
  EXPECT_TRUE(c.FailDisk(1, 0).IsInvalidArgument());
}

TEST(Cluster, HeterogeneousConfigs) {
  std::vector<SiteConfig> configs = {
      {1, 4, 256},
      {2, 8, 256},
      {4, 2, 256},
  };
  Cluster c(configs);
  EXPECT_EQ(c.site(0)->disks()->total_blocks(), 4u);
  EXPECT_EQ(c.site(1)->disks()->total_blocks(), 16u);
  EXPECT_EQ(c.site(2)->disks()->total_blocks(), 8u);
}

TEST(Cluster, UidGeneratorsArePerSite) {
  Cluster c(2, Small());
  Uid a = c.site(0)->uids()->Next();
  Uid b = c.site(1)->uids()->Next();
  EXPECT_EQ(a.site(), 0u);
  EXPECT_EQ(b.site(), 1u);
  EXPECT_NE(a, b);
}

TEST(SiteStateName, Names) {
  EXPECT_EQ(SiteStateName(SiteState::kUp), "up");
  EXPECT_EQ(SiteStateName(SiteState::kDown), "down");
  EXPECT_EQ(SiteStateName(SiteState::kRecovering), "recovering");
}

}  // namespace
}  // namespace radd
