// Tests for the §4 sharded data plane (RaddVolume): the volume address
// map, multi-group routing through the shared protocol stack, group
// isolation under site failure, cross-group recovery with the mark-up
// gate, and the member-list validation that guards volume construction.

#include "core/volume.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "cluster/status_service.h"
#include "core/sweeper.h"

namespace radd {
namespace {

// Builds the same cluster shape the chaos harness and benches use: with
// one group the G+2 identity layout, with more a round-robin spread of
// groups * (G+2) drives over (G+2) - 1 + groups sites.
class VolumeTest : public ::testing::Test {
 protected:
  void Build(int groups) {
    config_.group_size = 2;  // members = 4
    config_.rows = 8;        // two layout cycles -> 4 data blocks per drive
    config_.block_size = 128;
    const int members = config_.group_size + 2;
    const int num_sites = groups == 1 ? members : members - 1 + groups;
    drives_.assign(num_sites, 0);
    for (int d = 0; d < groups * members; ++d) ++drives_[d % num_sites];
    std::vector<SiteConfig> site_configs;
    for (int s = 0; s < num_sites; ++s) {
      site_configs.push_back(SiteConfig{
          1, static_cast<BlockNum>(drives_[s]) * config_.rows,
          config_.block_size});
    }
    sim_ = std::make_unique<Simulator>();
    net_ = std::make_unique<Network>(sim_.get(), NetworkModel{}, 0xB01);
    cluster_ = std::make_unique<Cluster>(site_configs);
    VolumeConfig vc;
    vc.group = config_;
    vc.drives_per_site = drives_;
    Result<std::unique_ptr<RaddVolume>> made =
        RaddVolume::Create(sim_.get(), net_.get(), cluster_.get(), vc);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    vol_ = std::move(*made);
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }

  RaddConfig config_;
  std::vector<int> drives_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddVolume> vol_;
};

TEST_F(VolumeTest, AddressMapIsBijective) {
  Build(4);
  const int num_sites = static_cast<int>(drives_.size());
  std::set<std::tuple<int, int, BlockNum>> seen;
  BlockNum total = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(num_sites); ++s) {
    const BlockNum at_site = vol_->DataBlocksAtSite(s);
    EXPECT_EQ(at_site, static_cast<BlockNum>(drives_[s]) *
                           vol_->DataBlocksPerDrive());
    for (BlockNum lba = 0; lba < at_site; ++lba) {
      Result<RaddVolume::Target> t = vol_->Resolve(s, lba);
      ASSERT_TRUE(t.ok()) << "site " << s << " lba " << lba;
      // The resolved member really lives at the addressed site.
      EXPECT_EQ(vol_->group(t->group)->SiteOfMember(t->member), s);
      EXPECT_LT(t->index, vol_->DataBlocksPerDrive());
      EXPECT_TRUE(seen.insert({t->group, t->member, t->index}).second)
          << "two LBAs map to one block";
      ++total;
    }
    // One past the end must fail, not alias another drive.
    EXPECT_FALSE(vol_->Resolve(s, at_site).ok());
  }
  // Every data block of every group is reachable.
  EXPECT_EQ(total, static_cast<BlockNum>(vol_->num_groups()) *
                       (config_.group_size + 2) * vol_->DataBlocksPerDrive());
}

TEST_F(VolumeTest, SingleGroupIsIdentity) {
  Build(1);
  ASSERT_EQ(vol_->num_groups(), 1);
  for (SiteId s = 0; s < 4; ++s) {
    for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(s); ++lba) {
      Result<RaddVolume::Target> t = vol_->Resolve(s, lba);
      ASSERT_TRUE(t.ok());
      EXPECT_EQ(t->group, 0);
      EXPECT_EQ(vol_->group(0)->SiteOfMember(t->member), s);
      EXPECT_EQ(t->index, lba);
    }
  }
}

TEST_F(VolumeTest, MultiGroupReadWriteRoundTrip) {
  Build(3);
  const int num_sites = static_cast<int>(drives_.size());
  uint64_t seed = 1;
  for (SiteId s = 0; s < static_cast<SiteId>(num_sites); ++s) {
    for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(s); ++lba) {
      ASSERT_TRUE(vol_->Write(s, s, lba, Pat(seed++)).status.ok());
    }
  }
  seed = 1;
  for (SiteId s = 0; s < static_cast<SiteId>(num_sites); ++s) {
    for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(s); ++lba) {
      RaddNodeSystem::TimedRead r = vol_->Read(s, s, lba);
      ASSERT_TRUE(r.status.ok());
      EXPECT_EQ(r.data, Pat(seed++)) << "site " << s << " lba " << lba;
    }
  }
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
}

TEST_F(VolumeTest, SiteFailureLeavesOtherGroupsClean) {
  Build(4);
  const SiteId victim = 0;
  // Populate one block per site so parity is meaningful everywhere.
  for (SiteId s = 0; s < static_cast<SiteId>(drives_.size()); ++s) {
    ASSERT_TRUE(vol_->Write(s, s, 0, Pat(100 + s)).status.ok());
  }

  // With 16 drives over 7 sites, site 0 hosts 3 of the 4 groups; at least
  // one group must not touch the victim at all.
  int untouched = -1;
  for (int g = 0; g < vol_->num_groups(); ++g) {
    if (vol_->group(g)->MemberAtSite(victim) < 0) untouched = g;
  }
  ASSERT_GE(untouched, 0);
  EXPECT_EQ(vol_->slices_of(victim).size(), 3u);

  ASSERT_TRUE(cluster_->CrashSite(victim).ok());

  // A home inside the untouched group serves at full speed — no degraded
  // reconstruction counted against that group.
  const SiteId other = vol_->group(untouched)->SiteOfMember(0);
  ASSERT_NE(other, victim);
  const uint64_t before =
      vol_->group(untouched)->stats().Get("radd.reconstructions");
  for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(other); ++lba) {
    Result<RaddVolume::Target> t = vol_->Resolve(other, lba);
    ASSERT_TRUE(t.ok());
    if (t->group != untouched) continue;
    EXPECT_TRUE(vol_->Read(other, other, lba).status.ok());
  }
  EXPECT_EQ(vol_->group(untouched)->stats().Get("radd.reconstructions"),
            before);

  // The victim's data stays readable through reconstruction.
  RaddNodeSystem::TimedRead r =
      vol_->Read(static_cast<SiteId>(1), victim, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(100 + victim));
}

TEST_F(VolumeTest, RecoveryMarksUpOnlyAfterLastSlice) {
  Build(4);
  const SiteId victim = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(drives_.size()); ++s) {
    ASSERT_TRUE(vol_->Write(s, s, 0, Pat(200 + s)).status.ok());
  }
  ASSERT_TRUE(cluster_->CrashSite(victim).ok());
  // Absorb a write for the victim in each affected group.
  for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(victim); ++lba) {
    ASSERT_TRUE(
        vol_->Write(static_cast<SiteId>(1), victim, lba, Pat(300 + lba))
            .status.ok());
  }
  ASSERT_TRUE(cluster_->RestoreSite(victim).ok());

  const std::vector<RaddVolume::SiteSlice>& slices = vol_->slices_of(victim);
  ASSERT_GT(slices.size(), 1u);
  for (size_t i = 0; i < slices.size(); ++i) {
    // §4: the site may not serve until every group's slice is drained.
    EXPECT_EQ(cluster_->StateOf(victim), SiteState::kRecovering)
        << "marked up after only " << i << " slices";
    Result<OpCounts> rec = vol_->group(slices[i].group)
                               ->RunRecovery(slices[i].member,
                                             i + 1 == slices.size());
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  }
  EXPECT_EQ(cluster_->StateOf(victim), SiteState::kUp);
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
  for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(victim); ++lba) {
    RaddNodeSystem::TimedRead r = vol_->Read(victim, victim, lba);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, Pat(300 + lba));
  }
}

TEST_F(VolumeTest, SweeperDrainsAllGroupsConcurrently) {
  Build(4);
  SiteStatusService service(sim_.get(), cluster_.get());
  vol_->system()->SetStatusService(&service);
  service.AddListener([this](SiteId site, SiteState state, uint64_t) {
    if (state == SiteState::kDown)
      vol_->system()->ResetNodeVolatileState(site);
  });
  std::vector<RaddGroup*> groups;
  for (int g = 0; g < vol_->num_groups(); ++g) groups.push_back(vol_->group(g));
  RecoverySweeper sweeper(sim_.get(), groups, &service);
  sweeper.Start();

  const SiteId victim = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(drives_.size()); ++s) {
    ASSERT_TRUE(vol_->Write(s, s, 0, Pat(400 + s)).status.ok());
  }
  ASSERT_TRUE(service.InjectCrash(victim).ok());
  for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(victim); ++lba) {
    ASSERT_TRUE(
        vol_->Write(static_cast<SiteId>(1), victim, lba, Pat(500 + lba))
            .status.ok());
  }
  ASSERT_TRUE(service.NotifyRestart(victim).ok());
  sim_->Run();

  EXPECT_EQ(cluster_->StateOf(victim), SiteState::kUp);
  EXPECT_TRUE(vol_->VerifyInvariants().ok());
  for (BlockNum lba = 0; lba < vol_->DataBlocksAtSite(victim); ++lba) {
    RaddNodeSystem::TimedRead r = vol_->Read(victim, victim, lba);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, Pat(500 + lba));
  }
}

// ---------------------------------------------------------------------------
// Volume construction rejects malformed shapes instead of building a
// partial data plane.
// ---------------------------------------------------------------------------

TEST(VolumeCreate, RejectsUnpackableDriveCensus) {
  RaddConfig config;
  config.group_size = 2;
  config.rows = 8;
  config.block_size = 128;
  // 5 drives: not a multiple of G+2 = 4.
  std::vector<SiteConfig> sites(5, SiteConfig{1, 8, 128});
  Simulator sim;
  Network net(&sim, NetworkModel{}, 1);
  Cluster cluster(sites);
  VolumeConfig vc;
  vc.group = config;
  vc.drives_per_site = {1, 1, 1, 1, 1};
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  EXPECT_FALSE(made.ok());
  EXPECT_TRUE(made.status().IsInvalidArgument());
}

TEST(VolumeCreate, RejectsDrivesBeyondSiteCapacity) {
  RaddConfig config;
  config.group_size = 2;
  config.rows = 8;
  config.block_size = 128;
  // Site 0 claims 2 drives (16 blocks) but only holds 8.
  std::vector<SiteConfig> sites(7, SiteConfig{1, 8, 128});
  Simulator sim;
  Network net(&sim, NetworkModel{}, 1);
  Cluster cluster(sites);
  VolumeConfig vc;
  vc.group = config;
  vc.drives_per_site = {2, 1, 1, 1, 1, 1, 1};
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  EXPECT_FALSE(made.ok());
}

// ---------------------------------------------------------------------------
// ValidateMembers: the §4 precondition checks callers rely on.
// ---------------------------------------------------------------------------

class ValidateMembersTest : public ::testing::Test {
 protected:
  ValidateMembersTest() : cluster_(6, SiteConfig{1, 16, 128}) {
    config_.group_size = 2;
    config_.rows = 8;
    config_.block_size = 128;
  }
  LogicalDrive Drive(SiteId site, BlockNum first = 0, BlockNum len = 8) {
    LogicalDrive d;
    d.site = site;
    d.first_block = first;
    d.drive_blocks = len;
    return d;
  }
  RaddConfig config_;
  Cluster cluster_;
};

TEST_F(ValidateMembersTest, AcceptsWellFormedList) {
  std::vector<LogicalDrive> m = {Drive(0), Drive(1), Drive(2), Drive(3)};
  EXPECT_TRUE(RaddGroup::ValidateMembers(cluster_, config_, m).ok());
}

TEST_F(ValidateMembersTest, RejectsWrongMemberCount) {
  std::vector<LogicalDrive> m = {Drive(0), Drive(1), Drive(2)};
  Status st = RaddGroup::ValidateMembers(cluster_, config_, m);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(ValidateMembersTest, RejectsSharedSite) {
  std::vector<LogicalDrive> m = {Drive(0), Drive(1), Drive(2), Drive(2, 8)};
  EXPECT_FALSE(RaddGroup::ValidateMembers(cluster_, config_, m).ok());
}

TEST_F(ValidateMembersTest, RejectsShortDrive) {
  std::vector<LogicalDrive> m = {Drive(0, 0, 4), Drive(1), Drive(2),
                                 Drive(3)};
  EXPECT_FALSE(RaddGroup::ValidateMembers(cluster_, config_, m).ok());
}

TEST_F(ValidateMembersTest, RejectsWindowPastEndOfDisk) {
  std::vector<LogicalDrive> m = {Drive(0, 12), Drive(1), Drive(2), Drive(3)};
  EXPECT_FALSE(RaddGroup::ValidateMembers(cluster_, config_, m).ok());
}

TEST_F(ValidateMembersTest, RejectsUnknownSite) {
  std::vector<LogicalDrive> m = {Drive(0), Drive(1), Drive(2), Drive(9)};
  EXPECT_FALSE(RaddGroup::ValidateMembers(cluster_, config_, m).ok());
}

// ---------------------------------------------------------------------------
// Regression: a recovering member whose local copy silently reverted to a
// stale value (lost write) must be caught by the §3.3 UID-array check —
// the parity row's UID array is the authority, so recovery reconstructs
// the block instead of trusting the readable-but-stale local copy.
// ---------------------------------------------------------------------------

TEST(RecoveryValidation, StaleLocalCopyIsReconstructed) {
  RaddConfig config;
  config.group_size = 2;
  config.rows = 8;
  config.block_size = 128;
  Cluster cluster(4, SiteConfig{1, 8, 128});
  RaddGroup group(&cluster, config);

  const int home = 0;
  const SiteId site = group.SiteOfMember(home);
  Block old_data(config.block_size), new_data(config.block_size);
  old_data.FillPattern(1);
  new_data.FillPattern(2);
  OpResult w1 = group.Write(site, home, 0, old_data);
  ASSERT_TRUE(w1.ok());
  OpResult w2 = group.Write(site, home, 0, new_data);
  ASSERT_TRUE(w2.ok());

  // The member fails and comes back with its disk holding the pre-update
  // value under the pre-update UID — exactly what a write lost between
  // local apply and parity commit looks like.
  ASSERT_TRUE(cluster.CrashSite(site).ok());
  ASSERT_TRUE(cluster.RestoreSite(site).ok());
  const BlockNum row = group.layout().DataToRow(site, 0);
  ASSERT_TRUE(cluster.site(site)->store()->Write(row, old_data, w1.uid).ok());

  // The sweep must not report the member clean while the stale copy sits
  // under a newer parity UID entry...
  Result<BlockNum> dirty = group.FirstUnrecoveredRow(home);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(*dirty, row);

  // ...and recovery reconstructs the committed value from the row.
  ASSERT_TRUE(group.RunRecovery(home).ok());
  EXPECT_GT(group.stats().Get("radd.recovery_uid_reconciled"), 0u);
  OpResult r = group.Read(site, home, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, new_data);
  EXPECT_TRUE(group.VerifyInvariants().ok());
}

}  // namespace
}  // namespace radd
