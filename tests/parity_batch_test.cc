// Tests for the batched parity pipeline (DESIGN.md §10): the coalescer's
// XOR-merge rules, flush thresholds, and the end-to-end protocol with
// batching enabled — message reduction, idempotent re-apply of duplicated
// frames, retransmission of dropped frames, and invariant preservation
// under scripted drop/dup/reorder of the batch traffic.

#include <gtest/gtest.h>

#include "core/node.h"
#include "core/parity_coalescer.h"
#include "net/wire.h"

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// ParityCoalescer unit tests
// ---------------------------------------------------------------------------

constexpr size_t kBlk = 64;

Block PatBlock(uint64_t seed) {
  Block b(kBlk);
  b.FillPattern(seed);
  return b;
}

ChangeMask MaskOf(const Block& from, const Block& to) {
  Result<ChangeMask> m = ChangeMask::Diff(from, to);
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(ParityCoalescer, DistinctKeysStageSeparately) {
  ParityCoalescer c;
  c.Add(0, 1, MaskOf(PatBlock(1), PatBlock(2)), Uid::Make(1, 1), 0, 101);
  c.Add(1, 1, MaskOf(PatBlock(3), PatBlock(4)), Uid::Make(1, 2), 0, 102);
  c.Add(0, 2, MaskOf(PatBlock(5), PatBlock(6)), Uid::Make(2, 1), 0, 103);
  EXPECT_EQ(c.entry_count(), 3u);
  EXPECT_EQ(c.op_count(), 3u);
}

TEST(ParityCoalescer, SameKeyXorMerges) {
  // Two masks for the same (row, position) must fold into one entry whose
  // delta is their XOR: applying it once equals applying both in order
  // (formula 1 is associative).
  Block v0 = PatBlock(10), v1 = PatBlock(11), v2 = PatBlock(12);
  ParityCoalescer c;
  c.Add(3, 1, MaskOf(v0, v1), Uid::Make(1, 1), 0, 201);
  c.Add(3, 1, MaskOf(v1, v2), Uid::Make(1, 2), 0, 202);
  ASSERT_EQ(c.entry_count(), 1u);
  EXPECT_EQ(c.op_count(), 2u);

  std::vector<ParityCoalescer::Entry> taken = c.TakeEligible({});
  ASSERT_EQ(taken.size(), 1u);
  // XOR of the two deltas == direct diff v0 -> v2.
  Block direct = std::move(MaskOf(v0, v2)).TakeDelta();
  EXPECT_EQ(taken[0].delta, direct);
  EXPECT_EQ(taken[0].ops.size(), 2u);
  EXPECT_TRUE(c.empty());
}

TEST(ParityCoalescer, LatestUidWinsOnMerge) {
  ParityCoalescer c;
  const Uid newer = Uid::Make(1, 9);
  const Uid older = Uid::Make(1, 3);
  c.Add(0, 0, MaskOf(PatBlock(1), PatBlock(2)), newer, 0, 1);
  c.Add(0, 0, MaskOf(PatBlock(2), PatBlock(3)), older, 0, 2);
  std::vector<ParityCoalescer::Entry> taken = c.TakeEligible({});
  ASSERT_EQ(taken.size(), 1u);
  // The merged entry must leave the parity UID array exactly where
  // applying the members in order would have: at the newest UID.
  EXPECT_TRUE(taken[0].uid == newer);
}

TEST(ParityCoalescer, OldestEpochWinsOnMerge) {
  ParityCoalescer c;
  c.Add(0, 0, MaskOf(PatBlock(1), PatBlock(2)), Uid::Make(1, 1), 5, 1);
  c.Add(0, 0, MaskOf(PatBlock(2), PatBlock(3)), Uid::Make(1, 2), 7, 2);
  std::vector<ParityCoalescer::Entry> taken = c.TakeEligible({});
  ASSERT_EQ(taken.size(), 1u);
  // One pre-transition contributor poisons the merge: the receiver must
  // see the oldest stamp and reject the whole entry.
  EXPECT_EQ(taken[0].home_epoch, 5u);
}

TEST(ParityCoalescer, MergeCancellationShrinksEncodedBytes) {
  // A -> B then B -> A: the XOR-merge cancels to all zeroes, and the
  // recomputed wire cost must reflect that (empty mask).
  Block a = PatBlock(20), b = PatBlock(21);
  ParityCoalescer c;
  c.Add(0, 0, MaskOf(a, b), Uid::Make(1, 1), 0, 1);
  const size_t one = c.staged_bytes();
  c.Add(0, 0, MaskOf(b, a), Uid::Make(1, 2), 0, 2);
  EXPECT_LT(c.staged_bytes(), one);
}

TEST(ParityCoalescer, TakeEligibleSkipsBlockedKeysAndKeepsOrder) {
  ParityCoalescer c;
  c.Add(0, 0, MaskOf(PatBlock(1), PatBlock(2)), Uid::Make(1, 1), 0, 1);
  c.Add(1, 0, MaskOf(PatBlock(3), PatBlock(4)), Uid::Make(1, 2), 0, 2);
  c.Add(2, 0, MaskOf(PatBlock(5), PatBlock(6)), Uid::Make(1, 3), 0, 3);

  std::set<ParityCoalescer::Key> blocked = {{1, 0}};
  std::vector<ParityCoalescer::Entry> taken = c.TakeEligible(blocked);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].row, 0u);
  EXPECT_EQ(taken[1].row, 2u);
  // The blocked entry stays staged and is still mergeable.
  EXPECT_EQ(c.entry_count(), 1u);
  c.Add(1, 0, MaskOf(PatBlock(4), PatBlock(7)), Uid::Make(1, 4), 0, 4);
  EXPECT_EQ(c.entry_count(), 1u);
  std::vector<ParityCoalescer::Entry> rest = c.TakeEligible({});
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].ops.size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: RaddNodeSystem with batching enabled
// ---------------------------------------------------------------------------

class ParityBatchTest : public ::testing::Test {
 protected:
  ParityBatchTest() { Build(); }

  void Build(double drop_probability = 0.0,
             ParityBatchConfig pb = Enabled()) {
    config_.group_size = 4;
    config_.rows = 12;
    config_.block_size = 512;
    SiteConfig sc{1, config_.rows, config_.block_size};
    sim_ = std::make_unique<Simulator>();
    NetworkModel nm;
    nm.drop_probability = drop_probability;
    net_ = std::make_unique<Network>(sim_.get(), nm, 0xabc);
    cluster_ = std::make_unique<Cluster>(6, sc);
    NodeConfig nc;
    nc.parity_batch = pb;
    sys_ = std::make_unique<RaddNodeSystem>(sim_.get(), net_.get(),
                                            cluster_.get(), config_, nc);
  }

  static ParityBatchConfig Enabled() {
    ParityBatchConfig pb;
    pb.enabled = true;
    return pb;
  }

  Block Pat(uint64_t seed) {
    Block b(config_.block_size);
    b.FillPattern(seed);
    return b;
  }
  SiteId SiteOf(int m) { return sys_->group()->SiteOfMember(m); }

  RaddConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddNodeSystem> sys_;
};

TEST_F(ParityBatchTest, SingleWriteCompletesViaBatch) {
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(1));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  // The lone write waits out the group-commit delay before its frame
  // flushes: latency = W (30) + max_delay (2) + parity round trip.
  EXPECT_GT(w.latency, Micros(105000));
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  EXPECT_EQ(sys_->stats().Get("node.batches_sent"), 1u);
  auto r = sys_->Read(SiteOf(2), 2, 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(1));
}

TEST_F(ParityBatchTest, ManyWritesPreserveInvariantsAndReduceMessages) {
  for (int round = 0; round < 3; ++round) {
    for (int m = 0; m < 6; ++m) {
      for (BlockNum i = 0; i < sys_->group()->DataBlocksPerMember(); ++i) {
        ASSERT_TRUE(sys_->Write(SiteOf(m), m, i,
                                Pat(uint64_t(round) * 100 + m * 10 + i))
                        .status.ok());
      }
    }
  }
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  const uint64_t staged = sys_->stats().Get("node.parity_staged");
  const uint64_t frames = net_->stats().Get("net.messages.parity_batch");
  EXPECT_GT(staged, 0u);
  EXPECT_EQ(net_->stats().Get("net.messages.parity_update"), 0u);
  EXPECT_LE(frames, staged);  // never more frames than updates
}

TEST_F(ParityBatchTest, OpCountThresholdFlushesEarly) {
  // max_ops = 2: the second concurrent write to the same parity site must
  // trigger an immediate flush instead of waiting out max_delay.
  ParityBatchConfig pb = Enabled();
  pb.max_ops = 2;
  pb.max_delay = Seconds(10);  // a timer-driven flush would time the test out
  Build(0.0, pb);
  // Pick two data blocks of home 0 whose rows share a parity member, so
  // both updates land in the same staging buffer.
  const PlacementMap& lay = sys_->layout();
  const BlockNum nblocks = sys_->group()->DataBlocksPerMember();
  BlockNum i1 = 0, i2 = 0;
  bool found = false;
  for (BlockNum a = 0; a < nblocks && !found; ++a) {
    for (BlockNum b = a + 1; b < nblocks && !found; ++b) {
      if (lay.ParitySite(lay.DataToRow(0, a)) ==
          lay.ParitySite(lay.DataToRow(0, b))) {
        i1 = a;
        i2 = b;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  int done = 0;
  sys_->AsyncWrite(SiteOf(0), 0, i1, Pat(1),
                   [&](Status st, SimTime) { ASSERT_TRUE(st.ok()); ++done; });
  sys_->AsyncWrite(SiteOf(0), 0, i2, Pat(2),
                   [&](Status st, SimTime) { ASSERT_TRUE(st.ok()); ++done; });
  sim_->Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(sys_->stats().Get("node.batches_sent"), 1u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(ParityBatchTest, DuplicatedFrameAppliesOnce) {
  net_->SetFaultHook(MessageType::kParityBatch, [](const Message&) {
    return FaultAction::kDuplicate;
  });
  for (BlockNum i = 0; i < 4; ++i) {
    ASSERT_TRUE(sys_->Write(SiteOf(1), 1, i, Pat(i + 1)).status.ok());
  }
  sim_->Run();
  // Every frame arrived twice; the copy must be recognized by its batch
  // seq and never re-applied (XOR re-apply would corrupt the parity).
  EXPECT_GT(sys_->stats().Get("node.batch_duplicate"), 0u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  for (BlockNum i = 0; i < 4; ++i) {
    auto r = sys_->Read(SiteOf(1), 1, i);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, Pat(i + 1));
  }
}

TEST_F(ParityBatchTest, DroppedFrameIsRetransmitted) {
  int dropped = 0;
  net_->SetFaultHook(MessageType::kParityBatch,
                     [&dropped](const Message&) {
                       if (dropped < 2) {
                         ++dropped;
                         return FaultAction::kDrop;
                       }
                       return FaultAction::kDeliver;
                     });
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(9));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  EXPECT_EQ(dropped, 2);
  EXPECT_GE(sys_->stats().Get("node.batch_retransmit"), 2u);
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(ParityBatchTest, DroppedAckIsResolvedByReplayedAck) {
  int dropped = 0;
  net_->SetFaultHook(MessageType::kParityBatchAck,
                     [&dropped](const Message&) {
                       if (dropped < 1) {
                         ++dropped;
                         return FaultAction::kDrop;
                       }
                       return FaultAction::kDeliver;
                     });
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(5));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  // The retransmitted frame hits the seq table; the recorded ack is
  // replayed verbatim, and the parity was applied exactly once.
  EXPECT_GE(sys_->stats().Get("node.batch_duplicate"), 1u);
  sim_->Run();
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(ParityBatchTest, ExhaustedRetriesFailTheWrite) {
  net_->SetFaultHook(MessageType::kParityBatch, [](const Message&) {
    return FaultAction::kDrop;  // the parity site never hears anything
  });
  auto w = sys_->Write(SiteOf(2), 2, 0, Pat(1));
  // §5 commit condition: no parity ack, no completed write.
  EXPECT_FALSE(w.status.ok());
  EXPECT_GT(sys_->stats().Get("node.batch_gave_up"), 0u);
}

TEST_F(ParityBatchTest, ConcurrentSameRowWritesCoalesce) {
  // With the row lock released after the local apply (batched mode), two
  // writes to the same row from the same home can both be staged before
  // the frame flushes; the second's mask merges into the first's entry.
  ParityBatchConfig pb = Enabled();
  pb.max_ops = 8;
  pb.max_delay = Millis(50);  // wide window so both writes stage
  Build(0.0, pb);
  int done = 0;
  sys_->AsyncWrite(SiteOf(3), 3, 2, Pat(1),
                   [&](Status st, SimTime) { ASSERT_TRUE(st.ok()); ++done; });
  sys_->AsyncWrite(SiteOf(3), 3, 2, Pat(2),
                   [&](Status st, SimTime) { ASSERT_TRUE(st.ok()); ++done; });
  sim_->Run();
  EXPECT_EQ(done, 2);
  // Both ops rode one frame with one merged entry.
  EXPECT_EQ(sys_->stats().Get("node.batches_sent"), 1u);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
  auto r = sys_->Read(SiteOf(3), 3, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, Pat(2));  // the later write's value
}

TEST_F(ParityBatchTest, RandomLossStressHoldsInvariants) {
  Build(0.05, Enabled());
  int completed = 0;
  for (int round = 0; round < 4; ++round) {
    for (int m = 0; m < 6; ++m) {
      auto w = sys_->Write(SiteOf(m), m, round % 2, Pat(round * 7 + m));
      if (w.status.ok()) ++completed;
    }
  }
  sim_->Run();
  EXPECT_GT(completed, 0);
  EXPECT_TRUE(sys_->group()->VerifyInvariants().ok());
}

TEST_F(ParityBatchTest, BatchingOffSendsPlainParityUpdates) {
  ParityBatchConfig pb;  // disabled
  Build(0.0, pb);
  ASSERT_TRUE(sys_->Write(SiteOf(2), 2, 0, Pat(1)).status.ok());
  sim_->Run();
  EXPECT_EQ(net_->stats().Get("net.messages.parity_batch"), 0u);
  EXPECT_EQ(sys_->stats().Get("node.parity_staged"), 0u);
  EXPECT_EQ(net_->stats().Get("net.messages.parity_update"), 1u);
}

}  // namespace
}  // namespace radd
