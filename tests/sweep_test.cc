// Parameterized sweeps over configuration space: 2D-RADD grid shapes,
// ROWB scattered placement under failure/recovery, and storage-manager
// capacity edges.

#include <gtest/gtest.h>

#include "schemes/radd2d.h"
#include "schemes/rowb.h"
#include "txn/storage_manager.h"

namespace radd {
namespace {

Block Pat(uint64_t seed, size_t size) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

// ---------------------------------------------------------------------------
// 2D-RADD across grid shapes, including non-square.
// ---------------------------------------------------------------------------

struct GridShape {
  int rows;
  int cols;
};

class TwoDGridSweep : public ::testing::TestWithParam<GridShape> {};

TEST_P(TwoDGridSweep, FullLifecycleEveryVictim) {
  TwoDRaddConfig config;
  config.grid_rows = GetParam().rows;
  config.grid_cols = GetParam().cols;
  config.blocks = 2;
  config.block_size = 128;
  TwoDRadd radd2d(config);
  Cluster* cluster = radd2d.cluster();

  for (int r = 0; r < config.grid_rows; ++r) {
    for (int c = 0; c < config.grid_cols; ++c) {
      ASSERT_TRUE(radd2d
                      .Write(radd2d.DataSite(r, c), r, c, 0,
                             Pat(uint64_t(r) * 100 + c, 128))
                      .ok());
    }
  }
  ASSERT_TRUE(radd2d.VerifyInvariants().ok());

  // Crash each data site in turn; read through the row, write degraded,
  // recover, verify.
  for (int r = 0; r < config.grid_rows; ++r) {
    for (int c = 0; c < config.grid_cols; ++c) {
      SCOPED_TRACE("victim (" + std::to_string(r) + "," + std::to_string(c) +
                   ")");
      SiteId victim = radd2d.DataSite(r, c);
      ASSERT_TRUE(cluster->CrashSite(victim).ok());
      SiteId client = radd2d.DataSite((r + 1) % config.grid_rows,
                                      (c + 1) % config.grid_cols);
      OpResult read = radd2d.Read(client, r, c, 0);
      ASSERT_TRUE(read.ok()) << read.status.ToString();
      ASSERT_TRUE(
          radd2d.Write(client, r, c, 0, Pat(uint64_t(r) + c + 7777, 128))
              .ok());
      ASSERT_TRUE(cluster->RestoreSite(victim).ok());
      ASSERT_TRUE(radd2d.RunRecovery(r, c).ok());
      ASSERT_TRUE(radd2d.VerifyInvariants().ok());
      OpResult back = radd2d.Read(victim, r, c, 0);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back.data, Pat(uint64_t(r) + c + 7777, 128));
      // Restore original value for the next victim's parity state.
      ASSERT_TRUE(radd2d
                      .Write(victim, r, c, 0,
                             Pat(uint64_t(r) * 100 + c, 128))
                      .ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TwoDGridSweep,
                         ::testing::Values(GridShape{2, 2}, GridShape{3, 3},
                                           GridShape{2, 4},
                                           GridShape{4, 3}));

// ---------------------------------------------------------------------------
// ROWB with scattered placement through failures.
// ---------------------------------------------------------------------------

TEST(RowbScatteredSweep, EverySiteSurvivesCrashAndRecovers) {
  Cluster cluster(5, SiteConfig{1, 24, 128});
  Rowb rowb(&cluster, 12, 128, RowbPlacement::kScattered);
  for (SiteId home = 0; home < 5; ++home) {
    for (BlockNum i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          rowb.Write(home, home, i, Pat(uint64_t(home) * 100 + i, 128)).ok());
    }
  }
  ASSERT_TRUE(rowb.VerifyInvariants().ok());

  for (SiteId victim = 0; victim < 5; ++victim) {
    SCOPED_TRACE("victim " + std::to_string(victim));
    ASSERT_TRUE(cluster.CrashSite(victim).ok());
    SiteId client = (victim + 2) % 5;
    // All the victim's primaries stay readable via scattered backups.
    for (BlockNum i = 0; i < 12; ++i) {
      OpResult r = rowb.Read(client, victim, i);
      ASSERT_TRUE(r.ok()) << "block " << i;
      EXPECT_EQ(r.data, Pat(uint64_t(victim) * 100 + i, 128));
    }
    // Degraded-write a couple of blocks.
    ASSERT_TRUE(rowb.Write(client, victim, 0, Pat(9000 + victim, 128)).ok());
    ASSERT_TRUE(cluster.RestoreSite(victim).ok());
    ASSERT_TRUE(rowb.RunRecovery(victim).ok());
    ASSERT_TRUE(rowb.VerifyInvariants().ok());
    OpResult back = rowb.Read(victim, victim, 0);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.data, Pat(9000 + victim, 128));
    ASSERT_TRUE(
        rowb.Write(victim, victim, 0, Pat(uint64_t(victim) * 100, 128)).ok());
  }
}

// ---------------------------------------------------------------------------
// Storage-manager capacity edges.
// ---------------------------------------------------------------------------

class StorageEdge : public ::testing::Test {
 protected:
  StorageEdge() {
    config_.group_size = 4;
    config_.rows = 36;  // 24 data blocks per member
    config_.block_size = 512;
    cluster_ = std::make_unique<Cluster>(
        6, SiteConfig{1, config_.rows, config_.block_size});
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }
  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

TEST_F(StorageEdge, WalLogFillsUpGracefully) {
  WalStorageManager wal(group_.get(), 1, /*log=*/2, /*pages=*/4);
  Status last = Status::OK();
  int committed = 0;
  for (int i = 0; i < 200 && last.ok(); ++i) {
    TxnId t = wal.Begin();
    PageUpdate u{0, 0, std::vector<uint8_t>(64, uint8_t(i))};
    last = wal.Update(t, u);
    if (last.ok()) last = wal.Commit(t);
    if (last.ok()) ++committed;
  }
  EXPECT_TRUE(last.IsUnavailable()) << "log must fill, not corrupt: "
                                    << last.ToString();
  EXPECT_GT(committed, 0);
  // Everything committed before the log filled is still recoverable.
  wal.CrashVolatile();
  ASSERT_TRUE(wal.Recover(group_->SiteOfMember(1)).ok());
  Result<Block> page = wal.ReadCommitted(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)[0], uint8_t(committed - 1));
}

TEST_F(StorageEdge, NoOverwriteVersionSpaceExhaustsGracefully) {
  // 24 data blocks: 1 root + 4 pages committed + shadows; many concurrent
  // uncommitted shadows eventually exhaust the version space.
  NoOverwriteStorageManager now(group_.get(), 1, 4);
  std::vector<TxnId> open;
  Status last = Status::OK();
  for (int i = 0; i < 40 && last.ok(); ++i) {
    TxnId t = now.Begin();
    open.push_back(t);
    last = now.Update(t, {BlockNum(i) % 4, 0,
                          std::vector<uint8_t>(16, uint8_t(i))});
  }
  EXPECT_TRUE(last.IsUnavailable()) << last.ToString();
  // Aborting the hoarders frees the space.
  for (TxnId t : open) (void)now.Abort(t);
  TxnId t = now.Begin();
  EXPECT_TRUE(now.Update(t, {0, 0, std::vector<uint8_t>(16, 0xAB)}).ok());
  EXPECT_TRUE(now.Commit(t).ok());
}

TEST_F(StorageEdge, ManyEpochsKeepRootConsistent) {
  NoOverwriteStorageManager now(group_.get(), 1, 4);
  for (int i = 0; i < 60; ++i) {
    TxnId t = now.Begin();
    ASSERT_TRUE(now.Update(t, {BlockNum(i) % 4, 0,
                               std::vector<uint8_t>(8, uint8_t(i))})
                    .ok());
    ASSERT_TRUE(now.Commit(t).ok());
    if (i % 20 == 19) {
      now.CrashVolatile();
      ASSERT_TRUE(now.Recover(group_->SiteOfMember(1)).ok());
    }
  }
  for (BlockNum p = 0; p < 4; ++p) {
    Result<Block> page = now.ReadCommitted(p);
    ASSERT_TRUE(page.ok());
    // Last writer of page p was the largest i with i % 4 == p.
    uint8_t expect = uint8_t(56 + p);
    EXPECT_EQ((*page)[0], expect) << "page " << p;
  }
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

}  // namespace
}  // namespace radd
