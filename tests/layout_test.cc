// Tests for the Fig. 1 layout math and the §4 grouping algorithm.

#include "layout/layout.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

namespace radd {
namespace {

// ---------------------------------------------------------------------------
// Figure 1 reproduction: G = 4, six sites, first six rows.
// ---------------------------------------------------------------------------

TEST(LayoutFig1, ParityPlacementMatchesPaper) {
  RaddLayout layout(4);
  // Fig. 1: P on the diagonal — row K's parity at site K mod 6.
  EXPECT_EQ(layout.ParitySite(0), 0u);
  EXPECT_EQ(layout.ParitySite(1), 1u);
  EXPECT_EQ(layout.ParitySite(2), 2u);
  EXPECT_EQ(layout.ParitySite(3), 3u);
  EXPECT_EQ(layout.ParitySite(4), 4u);
  EXPECT_EQ(layout.ParitySite(5), 5u);
  EXPECT_EQ(layout.ParitySite(6), 0u);
}

TEST(LayoutFig1, SparePlacementMatchesPaper) {
  RaddLayout layout(4);
  // Fig. 1: S one column right of P (wrapping): row 0 -> site 1, ...,
  // row 5 -> site 0.
  EXPECT_EQ(layout.SpareSite(0), 1u);
  EXPECT_EQ(layout.SpareSite(1), 2u);
  EXPECT_EQ(layout.SpareSite(2), 3u);
  EXPECT_EQ(layout.SpareSite(3), 4u);
  EXPECT_EQ(layout.SpareSite(4), 5u);
  EXPECT_EQ(layout.SpareSite(5), 0u);
}

TEST(LayoutFig1, ExactDataNumbering) {
  // The full Fig. 1 table. -1 = P, -2 = S, otherwise the data block
  // number printed in the figure.
  RaddLayout layout(4);
  const int expected[6][6] = {
      {-1, -2, 0, 0, 0, 0},  // block 0
      {0, -1, -2, 1, 1, 1},  // block 1
      {1, 0, -1, -2, 2, 2},  // block 2
      {2, 1, 1, -1, -2, 3},  // block 3
      {3, 2, 2, 2, -1, -2},  // block 4
      {-2, 3, 3, 3, 3, -1},  // block 5
  };
  for (BlockNum row = 0; row < 6; ++row) {
    for (SiteId site = 0; site < 6; ++site) {
      SCOPED_TRACE("row " + std::to_string(row) + " site " +
                   std::to_string(site));
      int want = expected[row][site];
      BlockRole role = layout.RoleOf(site, row);
      if (want == -1) {
        EXPECT_EQ(role, BlockRole::kParity);
      } else if (want == -2) {
        EXPECT_EQ(role, BlockRole::kSpare);
      } else {
        ASSERT_EQ(role, BlockRole::kData);
        Result<BlockNum> idx = layout.RowToData(site, row);
        ASSERT_TRUE(idx.ok());
        EXPECT_EQ(*idx, static_cast<BlockNum>(want));
      }
    }
  }
}

TEST(LayoutFig1, PaperS1Formula) {
  // §3.2: on site S[1], K = (G+2)*quotient(I/G) + remainder(I/G) + 2.
  RaddLayout layout(4);
  for (BlockNum i = 0; i < 40; ++i) {
    BlockNum expected = 6 * (i / 4) + (i % 4) + 2;
    EXPECT_EQ(layout.DataToRow(1, i), expected) << "I=" << i;
  }
}

// ---------------------------------------------------------------------------
// Structural properties, swept over group sizes.
// ---------------------------------------------------------------------------

class LayoutPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LayoutPropertyTest, EveryRowHasOneParityOneSpareGData) {
  RaddLayout layout(GetParam());
  const int n = layout.num_sites();
  for (BlockNum row = 0; row < static_cast<BlockNum>(3 * n); ++row) {
    int parity = 0, spare = 0, data = 0;
    for (int j = 0; j < n; ++j) {
      switch (layout.RoleOf(static_cast<SiteId>(j), row)) {
        case BlockRole::kParity:
          ++parity;
          EXPECT_EQ(layout.ParitySite(row), static_cast<SiteId>(j));
          break;
        case BlockRole::kParityQ:
          ADD_FAILURE() << "single-parity layout produced a Q role";
          break;
        case BlockRole::kSpare:
          ++spare;
          EXPECT_EQ(layout.SpareSite(row), static_cast<SiteId>(j));
          break;
        case BlockRole::kData:
          ++data;
          break;
        case BlockRole::kNone:
          ADD_FAILURE() << "rotated layout produced a none role";
          break;
      }
    }
    EXPECT_EQ(parity, 1);
    EXPECT_EQ(spare, 1);
    EXPECT_EQ(data, GetParam());
  }
}

TEST_P(LayoutPropertyTest, DataToRowRoundTrips) {
  RaddLayout layout(GetParam());
  const int n = layout.num_sites();
  for (int j = 0; j < n; ++j) {
    SiteId site = static_cast<SiteId>(j);
    for (BlockNum i = 0; i < static_cast<BlockNum>(4 * GetParam()); ++i) {
      BlockNum row = layout.DataToRow(site, i);
      EXPECT_EQ(layout.RoleOf(site, row), BlockRole::kData);
      Result<BlockNum> back = layout.RowToData(site, row);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, i);
    }
  }
}

TEST_P(LayoutPropertyTest, DataNumberingIsDenseAndOrdered) {
  // Walking rows top to bottom, each site's data blocks appear as
  // 0, 1, 2, ... with no gaps (that is how Fig. 1 numbers them).
  RaddLayout layout(GetParam());
  const int n = layout.num_sites();
  for (int j = 0; j < n; ++j) {
    SiteId site = static_cast<SiteId>(j);
    BlockNum next = 0;
    for (BlockNum row = 0; row < static_cast<BlockNum>(5 * n); ++row) {
      if (layout.RoleOf(site, row) != BlockRole::kData) continue;
      Result<BlockNum> idx = layout.RowToData(site, row);
      ASSERT_TRUE(idx.ok());
      EXPECT_EQ(*idx, next) << "site " << j << " row " << row;
      ++next;
    }
  }
}

TEST_P(LayoutPropertyTest, RowToDataRejectsParityAndSpare) {
  RaddLayout layout(GetParam());
  const int n = layout.num_sites();
  for (BlockNum row = 0; row < static_cast<BlockNum>(2 * n); ++row) {
    EXPECT_FALSE(layout.RowToData(layout.ParitySite(row), row).ok());
    EXPECT_FALSE(layout.RowToData(layout.SpareSite(row), row).ok());
  }
}

TEST_P(LayoutPropertyTest, ReconstructionSourcesExcludeFailedAndSpare) {
  RaddLayout layout(GetParam());
  const int n = layout.num_sites();
  for (BlockNum row = 0; row < static_cast<BlockNum>(2 * n); ++row) {
    for (int f = 0; f < n; ++f) {
      SiteId failed = static_cast<SiteId>(f);
      if (layout.RoleOf(failed, row) != BlockRole::kData) continue;
      std::vector<SiteId> sources =
          layout.ReconstructionSources(failed, row);
      EXPECT_EQ(sources.size(), static_cast<size_t>(GetParam()));
      std::set<SiteId> set(sources.begin(), sources.end());
      EXPECT_EQ(set.size(), sources.size()) << "duplicate source";
      EXPECT_EQ(set.count(failed), 0u);
      EXPECT_EQ(set.count(layout.SpareSite(row)), 0u);
      EXPECT_EQ(set.count(layout.ParitySite(row)), 1u);
    }
  }
}

TEST_P(LayoutPropertyTest, CapacityAccounting) {
  RaddLayout layout(GetParam());
  const BlockNum n = static_cast<BlockNum>(layout.num_sites());
  const BlockNum g = static_cast<BlockNum>(GetParam());
  EXPECT_EQ(layout.DataBlocksPerSite(0), 0u);
  EXPECT_EQ(layout.DataBlocksPerSite(n), g);
  EXPECT_EQ(layout.DataBlocksPerSite(n - 1), 0u);  // partial cycle unused
  EXPECT_EQ(layout.DataBlocksPerSite(10 * n), 10 * g);
  EXPECT_EQ(layout.RowsForDataBlocks(g), n);
  EXPECT_EQ(layout.RowsForDataBlocks(g + 1), 2 * n);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, LayoutPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ---------------------------------------------------------------------------
// §4 grouping algorithm.
// ---------------------------------------------------------------------------

TEST(GroupAssigner, UniformSitesOneDriveEach) {
  GroupAssigner assigner(4);  // groups of 6
  Result<std::vector<DriveGroup>> groups = assigner.Assign({1, 1, 1, 1, 1, 1});
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0].members.size(), 6u);
}

TEST(GroupAssigner, RejectsNonMultipleTotal) {
  GroupAssigner assigner(4);
  EXPECT_FALSE(assigner.Assign({1, 1, 1, 1, 1, 1, 1}).ok());
}

TEST(GroupAssigner, RejectsSiteOwningMoreThanA) {
  // total = 12 = 2 * 6, A = 2, but one site owns 3 > A.
  GroupAssigner assigner(4);
  EXPECT_FALSE(assigner.Assign({3, 2, 2, 2, 1, 1, 1}).ok());
}

TEST(GroupAssigner, RejectsTooFewSites) {
  GroupAssigner assigner(4);
  EXPECT_FALSE(assigner.Assign({3, 3}).ok());
}

// Precondition failures must name the offending site and the counts the
// operator needs to fix the census — "invalid argument" alone is useless
// when a 40-site census fails to pack.
std::string AssignError(const GroupAssigner& assigner,
                        const std::vector<int>& drives) {
  Result<std::vector<DriveGroup>> groups = assigner.Assign(drives);
  EXPECT_FALSE(groups.ok());
  EXPECT_TRUE(groups.status().IsInvalidArgument())
      << groups.status().ToString();
  return groups.status().ToString();
}

void ExpectContains(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "message \"" << message << "\" lacks \"" << needle << "\"";
}

TEST(GroupAssignerDiagnostics, NegativeCountNamesSiteAndValue) {
  GroupAssigner assigner(4);
  std::string msg = AssignError(assigner, {1, -2, 1, 1, 1, 1});
  ExpectContains(msg, "site 1");
  ExpectContains(msg, "(-2)");
}

TEST(GroupAssignerDiagnostics, AllZeroNamesSiteCount) {
  GroupAssigner assigner(4);
  ExpectContains(AssignError(assigner, {0, 0, 0, 0, 0, 0, 0}),
                 "all 7 sites report zero drives");
}

TEST(GroupAssignerDiagnostics, NonMultipleNamesTotalAndWidth) {
  GroupAssigner assigner(4);
  std::string msg = AssignError(assigner, {2, 1, 1, 1, 1, 1});
  ExpectContains(msg, "total drives 7");
  ExpectContains(msg, "6 sites");
  ExpectContains(msg, "group width 6");
}

TEST(GroupAssignerDiagnostics, OverweightSiteNamesSiteAndBound) {
  // Total 12, A = 2, site 0 owns 3.
  GroupAssigner assigner(4);
  std::string msg = AssignError(assigner, {3, 2, 2, 2, 1, 1, 1});
  ExpectContains(msg, "site 0 owns 3 of the 12 drives");
  ExpectContains(msg, "A = total/width = 2");
  ExpectContains(msg, "width 6");
}

TEST(GroupAssignerDiagnostics, TooFewSitesNamesAConcreteCause) {
  // A census on fewer than `width` sites whose total is a multiple of
  // the width always has some site above A = total/width (total <=
  // sites * A would force sites >= width), so the overweight check
  // fires first — what matters is that the message names the site and
  // both counts, not which precondition catches it.
  GroupAssigner assigner(4);
  std::string msg = AssignError(assigner, {3, 3, 3, 3});
  ExpectContains(msg, "site 0 owns 3 of the 12 drives");
  ExpectContains(msg, "A = total/width = 2");
}

TEST(GroupAssignerDiagnostics, WidthOverrideIsReflectedInMessages) {
  // Declustered groups span `width` sites, not G + 1 + parities; the
  // diagnostics must report the width actually enforced.
  GroupAssigner assigner(2, 1, /*width=*/8);
  std::string msg = AssignError(assigner, {1, 1, 1, 1, 1, 1, 1});
  ExpectContains(msg, "group width 8");
}

TEST(GroupAssignerDiagnostics, IndivisibleCapacityNamesSiteAndSizes) {
  GroupAssigner assigner(4);
  Result<std::vector<DriveGroup>> groups =
      assigner.AssignBlocks({150, 100, 100, 100, 100, 100}, 100);
  ASSERT_FALSE(groups.ok());
  std::string msg = groups.status().ToString();
  ExpectContains(msg, "site 0 capacity 150");
  ExpectContains(msg, "logical drive size 100");
}

// The paper's claim: any configuration meeting the preconditions packs
// completely, with each group's members on distinct sites.
class GroupAssignerPropertyTest
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(GroupAssignerPropertyTest, ValidConfigurationsPackCompletely) {
  const int g = 4;
  const int members = g + 2;
  GroupAssigner assigner(g);
  std::vector<int> drives = GetParam();
  long total = std::accumulate(drives.begin(), drives.end(), 0L);
  ASSERT_EQ(total % members, 0);
  Result<std::vector<DriveGroup>> groups = assigner.Assign(drives);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  EXPECT_EQ(static_cast<long>(groups->size()), total / members);

  std::map<SiteId, int> used;
  for (const DriveGroup& grp : *groups) {
    EXPECT_EQ(grp.members.size(), static_cast<size_t>(members));
    std::set<SiteId> sites;
    for (const LogicalDrive& d : grp.members) {
      sites.insert(d.site);
      ++used[d.site];
    }
    EXPECT_EQ(sites.size(), static_cast<size_t>(members))
        << "two drives of one group share a site";
  }
  // Every drive used exactly once.
  for (size_t j = 0; j < drives.size(); ++j) {
    EXPECT_EQ(used[static_cast<SiteId>(j)], drives[j]) << "site " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, GroupAssignerPropertyTest,
    ::testing::Values(
        std::vector<int>{1, 1, 1, 1, 1, 1},           // A=1
        std::vector<int>{2, 2, 2, 2, 2, 2},           // A=2 uniform
        std::vector<int>{2, 2, 2, 2, 1, 1, 1, 1},     // A=2 skewed
        std::vector<int>{3, 3, 3, 3, 2, 2, 1, 1},     // A=3 skewed
        std::vector<int>{4, 4, 4, 3, 3, 3, 2, 1},     // A=4
        std::vector<int>{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},  // 12 sites
        std::vector<int>{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5,
                         1, 1, 1, 1, 1, 1}));          // A=11, 18 sites

TEST(GroupAssigner, MinimalGroupSizeOne) {
  // Smallest legal RADD: G = 1 means groups of 3 (data, parity, spare).
  GroupAssigner assigner(1);
  Result<std::vector<DriveGroup>> groups = assigner.Assign({1, 1, 1});
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 1u);
  std::set<SiteId> sites;
  for (const LogicalDrive& d : (*groups)[0].members) sites.insert(d.site);
  EXPECT_EQ(sites.size(), 3u);
}

TEST(GroupAssigner, HeterogeneousCapacityMustFail) {
  // Total 18 = 3 * 6 so A = 3, but the heavy site owns 7 > A drives:
  // after it contributes to all 3 groups, 4 of its drives are stranded.
  GroupAssigner assigner(4);
  Result<std::vector<DriveGroup>> groups =
      assigner.Assign({7, 3, 2, 2, 2, 1, 1});
  EXPECT_FALSE(groups.ok());
  EXPECT_TRUE(groups.status().IsInvalidArgument())
      << groups.status().ToString();
}

TEST(GroupAssigner, AssignmentIsDeterministic) {
  // The volume address map is derived from the assignment, so the same
  // drive census must always produce the same grouping.
  GroupAssigner assigner(4);
  const std::vector<int> drives = {3, 3, 3, 3, 2, 2, 1, 1};
  Result<std::vector<DriveGroup>> a = assigner.Assign(drives);
  Result<std::vector<DriveGroup>> b = assigner.Assign(drives);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t g = 0; g < a->size(); ++g) {
    ASSERT_EQ((*a)[g].members.size(), (*b)[g].members.size());
    for (size_t m = 0; m < (*a)[g].members.size(); ++m) {
      EXPECT_EQ((*a)[g].members[m].site, (*b)[g].members[m].site);
      EXPECT_EQ((*a)[g].members[m].first_block,
                (*b)[g].members[m].first_block);
      EXPECT_EQ((*a)[g].members[m].drive_blocks,
                (*b)[g].members[m].drive_blocks);
    }
  }
}

TEST(GroupAssigner, AssignBlocksSlicesLogicalDrives) {
  // §4's non-uniform disk sizes: slice into logical drives of B blocks.
  GroupAssigner assigner(4);
  // Nine sites with mixed capacities, B = 100 -> drives {2,2,2,1,1,1,1,1,1},
  // total 12 = 2 groups of 6, A = 2, no site above A.
  Result<std::vector<DriveGroup>> groups = assigner.AssignBlocks(
      {200, 200, 200, 100, 100, 100, 100, 100, 100}, 100);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 2u);
  for (const DriveGroup& grp : *groups) {
    for (const LogicalDrive& d : grp.members) {
      EXPECT_EQ(d.drive_blocks, 100u);
      EXPECT_EQ(d.first_block % 100, 0u);
    }
  }
}

TEST(GroupAssigner, AssignBlocksRejectsIndivisibleCapacity) {
  GroupAssigner assigner(4);
  EXPECT_FALSE(assigner.AssignBlocks({150, 100, 100, 100, 100}, 100).ok());
}

TEST(GroupAssigner, AssignBlocksDistinctRangesPerSite) {
  GroupAssigner assigner(1);  // groups of 3
  Result<std::vector<DriveGroup>> groups =
      assigner.AssignBlocks({300, 300, 200, 100}, 100);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 3u);
  // No two drives on the same site overlap.
  std::map<SiteId, std::set<BlockNum>> starts;
  for (const DriveGroup& grp : *groups) {
    for (const LogicalDrive& d : grp.members) {
      EXPECT_TRUE(starts[d.site].insert(d.first_block).second)
          << "overlapping drives at site " << d.site;
    }
  }
}

TEST(BlockRoleName, Names) {
  EXPECT_EQ(BlockRoleName(BlockRole::kData), "data");
  EXPECT_EQ(BlockRoleName(BlockRole::kParity), "parity");
  EXPECT_EQ(BlockRoleName(BlockRole::kSpare), "spare");
}

}  // namespace
}  // namespace radd
