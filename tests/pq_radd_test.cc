// The P+Q double-parity scheme end to end over the synchronous RaddGroup:
// layout roles, two-erasure degraded reads for every erasure pattern,
// spare arbitration under overlapping failures, and recovery sweeps that
// converge both parities back to the invariant state.

#include <gtest/gtest.h>

#include "common/gf256.h"
#include "common/rng.h"
#include "core/radd.h"

namespace radd {
namespace {

Block MakeBlock(uint64_t seed, size_t size = Block::kDefaultSize) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

class PqGroupTest : public ::testing::Test {
 protected:
  PqGroupTest() { Recreate(5); }

  void Recreate(int g, BlockNum rows = 0) {
    config_ = RaddConfig{};
    config_.group_size = g;
    config_.parities = 2;
    config_.rows = rows == 0 ? static_cast<BlockNum>(3 * (g + 3)) : rows;
    SiteConfig sc;
    sc.num_disks = 1;
    sc.blocks_per_disk = config_.rows;
    sc.block_size = config_.block_size;
    cluster_ = std::make_unique<Cluster>(g + 3, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  OpResult WriteLocal(int home, BlockNum i, const Block& b) {
    return group_->Write(group_->SiteOfMember(home), home, i, b);
  }
  OpResult ReadLocal(int home, BlockNum i) {
    return group_->Read(group_->SiteOfMember(home), home, i);
  }
  /// Reads routed from a surviving site (the member's own site is dead).
  OpResult ReadFrom(SiteId client, int home, BlockNum i) {
    return group_->Read(client, home, i);
  }

  /// Crash + restore + sweep a member's site back to up.
  void Recover(int m) {
    ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(m)).ok());
    Result<OpCounts> rc = group_->RunRecovery(m);
    ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  }

  /// A client site that is not any of the listed members' sites.
  SiteId SurvivorSite(std::initializer_list<int> dead) {
    for (int m = 0; m < group_->num_members(); ++m) {
      bool is_dead = false;
      for (int d : dead) is_dead |= (m == d);
      if (!is_dead) return group_->SiteOfMember(m);
    }
    return 0;
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

// ---------------------------------------------------------------------------
// Layout roles.
// ---------------------------------------------------------------------------

TEST(PqLayout, RolesPartitionEveryRow) {
  RaddLayout lay(4, /*parities=*/2);
  ASSERT_EQ(lay.num_sites(), 7);
  for (BlockNum row = 0; row < 21; ++row) {
    int data = 0, p = 0, q = 0, spare = 0;
    for (int j = 0; j < lay.num_sites(); ++j) {
      switch (lay.RoleOf(static_cast<SiteId>(j), row)) {
        case BlockRole::kData: ++data; break;
        case BlockRole::kParity: ++p; break;
        case BlockRole::kParityQ: ++q; break;
        case BlockRole::kSpare: ++spare; break;
        case BlockRole::kNone:
          ADD_FAILURE() << "rotated layout produced a none role";
          break;
      }
    }
    EXPECT_EQ(data, 4) << "row=" << row;
    EXPECT_EQ(p, 1) << "row=" << row;
    EXPECT_EQ(q, 1) << "row=" << row;
    EXPECT_EQ(spare, 1) << "row=" << row;
    EXPECT_EQ(lay.RoleOf(lay.ParitySite(row), row), BlockRole::kParity);
    EXPECT_EQ(lay.RoleOf(lay.QParitySite(row), row), BlockRole::kParityQ);
    EXPECT_EQ(lay.RoleOf(lay.SpareSite(row), row), BlockRole::kSpare);
  }
}

TEST(PqLayout, DataToRowRoundTripsAroundThreeSkips) {
  RaddLayout lay(4, /*parities=*/2);
  for (int j = 0; j < lay.num_sites(); ++j) {
    SiteId site = static_cast<SiteId>(j);
    for (BlockNum i = 0; i < 40; ++i) {
      BlockNum row = lay.DataToRow(site, i);
      EXPECT_EQ(lay.RoleOf(site, row), BlockRole::kData)
          << "site=" << j << " i=" << i;
      Result<BlockNum> back = lay.RowToData(site, row);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, i);
    }
  }
}

TEST(PqLayout, SingleParityLayoutUnchanged) {
  // parities == 1 must reduce to the paper's Fig. 1 exactly: spare at
  // (K+1) mod (G+2), same data numbering as the original layout.
  RaddLayout pq1(8);
  RaddLayout explicit1(8, 1);
  ASSERT_EQ(pq1.num_sites(), explicit1.num_sites());
  for (BlockNum row = 0; row < 30; ++row) {
    EXPECT_EQ(pq1.SpareSite(row),
              static_cast<SiteId>((row + 1) % 10));
    for (int j = 0; j < 10; ++j) {
      EXPECT_EQ(pq1.RoleOf(static_cast<SiteId>(j), row),
                explicit1.RoleOf(static_cast<SiteId>(j), row));
      EXPECT_NE(pq1.RoleOf(static_cast<SiteId>(j), row),
                BlockRole::kParityQ);
    }
  }
}

// ---------------------------------------------------------------------------
// Healthy operation keeps both parities.
// ---------------------------------------------------------------------------

TEST_F(PqGroupTest, WritesMaintainBothParities) {
  Rng rng(1);
  for (int round = 0; round < 40; ++round) {
    int home = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(group_->num_members())));
    BlockNum i = static_cast<BlockNum>(
        rng.Uniform(static_cast<uint64_t>(group_->DataBlocksPerMember())));
    OpResult w = WriteLocal(home, i, MakeBlock(rng.Next()));
    ASSERT_TRUE(w.ok()) << w.status.ToString();
  }
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(PqGroupTest, NormalWriteCostsOneExtraParityWrite) {
  // Fig. 3 row 2 becomes W + 2 RW under P+Q: one local write, one delta to
  // P, one (scaled) delta to Q.
  OpResult w = WriteLocal(0, 0, MakeBlock(7));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.counts.local_writes, 1u);
  EXPECT_EQ(w.counts.remote_writes, 2u);
}

// ---------------------------------------------------------------------------
// Two-erasure degraded reads, every pattern.
// ---------------------------------------------------------------------------

TEST_F(PqGroupTest, ServesReadsWithTwoDataMembersDown) {
  std::vector<Block> vals;
  for (int m = 0; m < group_->num_members(); ++m) {
    Block b = MakeBlock(100 + static_cast<uint64_t>(m));
    ASSERT_TRUE(WriteLocal(m, 0, b).ok());
    vals.push_back(b);
  }
  // Crash members 0 and 1 (every row loses at most two coded blocks).
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(0)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  SiteId client = SurvivorSite({0, 1});
  for (int m : {0, 1}) {
    OpResult r = ReadFrom(client, m, 0);
    ASSERT_TRUE(r.ok()) << "m=" << m << ": " << r.status.ToString();
    EXPECT_EQ(r.data, vals[static_cast<size_t>(m)]) << "m=" << m;
  }
  // Surviving members still read their own blocks.
  for (int m = 2; m < group_->num_members(); ++m) {
    OpResult r = ReadLocal(m, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, vals[static_cast<size_t>(m)]);
  }
}

TEST_F(PqGroupTest, EveryDeadPairStillServesEveryBlock) {
  // The exhaustive version: for every pair of members {a, b}, kill both
  // and read back every data block of both. Spares cover one failure per
  // row; the second always leans on the GF(256) decode somewhere.
  std::vector<std::vector<Block>> vals(
      static_cast<size_t>(group_->num_members()));
  Rng rng(7);
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      Block b = MakeBlock(rng.Next());
      ASSERT_TRUE(WriteLocal(m, i, b).ok());
      vals[static_cast<size_t>(m)].push_back(b);
    }
  }
  for (int a = 0; a < group_->num_members(); ++a) {
    for (int b = a + 1; b < group_->num_members(); ++b) {
      ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(a)).ok());
      ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(b)).ok());
      SiteId client = SurvivorSite({a, b});
      for (int m : {a, b}) {
        for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
          OpResult r = ReadFrom(client, m, i);
          ASSERT_TRUE(r.ok()) << "dead={" << a << "," << b << "} m=" << m
                              << " i=" << i << ": " << r.status.ToString();
          EXPECT_EQ(r.data, vals[static_cast<size_t>(m)][static_cast<size_t>(i)]);
        }
      }
      ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(a)).ok());
      ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(b)).ok());
      ASSERT_TRUE(cluster_->MarkUp(group_->SiteOfMember(a)).ok());
      ASSERT_TRUE(cluster_->MarkUp(group_->SiteOfMember(b)).ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Double-failure writes and the spare collision rule.
// ---------------------------------------------------------------------------

TEST_F(PqGroupTest, SecondWriterToSameRowSpareBlocksInsteadOfCorrupting) {
  // Find a row whose spare must absorb writes for two dead members: crash
  // two data members of the same row and write to both. The first write
  // lands in the spare; the second must return Blocked (not Internal, not
  // data loss).
  BlockNum i0 = 0;
  Result<BlockNum> same = Status::NotFound("unset");
  for (; i0 < group_->DataBlocksPerMember(); ++i0) {
    same = group_->layout().RowToData(1, group_->layout().DataToRow(0, i0));
    if (same.ok()) break;
  }
  ASSERT_TRUE(same.ok()) << "members 0/1 share no data row";
  ASSERT_TRUE(WriteLocal(0, i0, MakeBlock(1)).ok());
  ASSERT_TRUE(WriteLocal(1, *same, MakeBlock(2)).ok());

  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(0)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(1)).ok());
  SiteId client = SurvivorSite({0, 1});

  OpResult w1 = group_->Write(client, 0, i0, MakeBlock(11));
  ASSERT_TRUE(w1.ok()) << w1.status.ToString();
  OpResult w2 = group_->Write(client, 1, *same, MakeBlock(22));
  EXPECT_TRUE(w2.status.IsBlocked()) << w2.status.ToString();

  // The degraded write through the spare stays readable for both the
  // writer and after decode.
  OpResult r = ReadFrom(client, 0, i0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, MakeBlock(11));
  // Member 1's block decodes to its pre-failure contents.
  OpResult r1 = ReadFrom(client, 1, *same);
  ASSERT_TRUE(r1.ok()) << r1.status.ToString();
  EXPECT_EQ(r1.data, MakeBlock(2));
}

// ---------------------------------------------------------------------------
// Recovery convergence.
// ---------------------------------------------------------------------------

TEST_F(PqGroupTest, DoubleCrashWithWritesHealsToAllUp) {
  Rng rng(11);
  std::vector<std::vector<Block>> vals(
      static_cast<size_t>(group_->num_members()));
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      Block b = MakeBlock(rng.Next());
      ASSERT_TRUE(WriteLocal(m, i, b).ok());
      vals[static_cast<size_t>(m)].push_back(b);
    }
  }

  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(5)).ok());
  SiteId client = SurvivorSite({2, 5});

  // Write through the outage wherever the spare can absorb it; remember
  // what was acked.
  for (int m : {2, 5}) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult w = group_->Write(client, m, i, MakeBlock(rng.Next()));
      if (w.ok()) {
        OpResult back = group_->Read(client, m, i);
        ASSERT_TRUE(back.ok());
        vals[static_cast<size_t>(m)][static_cast<size_t>(i)] = back.data;
      }
    }
  }

  Recover(2);
  Recover(5);
  EXPECT_EQ(cluster_->UnhealthySites(), 0);
  Status inv = group_->VerifyInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();

  // Every acked value survives the double failure and the heal.
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult r = ReadLocal(m, i);
      ASSERT_TRUE(r.ok()) << "m=" << m << " i=" << i;
      EXPECT_EQ(r.data, vals[static_cast<size_t>(m)][static_cast<size_t>(i)])
          << "m=" << m << " i=" << i;
    }
  }
}

TEST_F(PqGroupTest, DisasterPlusCrashReconstructsFromScratch) {
  Rng rng(13);
  std::vector<Block> vals;
  for (int m = 0; m < group_->num_members(); ++m) {
    Block b = MakeBlock(rng.Next());
    ASSERT_TRUE(WriteLocal(m, 1, b).ok());
    vals.push_back(b);
  }
  // Disaster (disks wiped) at one member, crash at another.
  ASSERT_TRUE(cluster_->DisasterSite(group_->SiteOfMember(1)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(4)).ok());
  SiteId client = SurvivorSite({1, 4});
  OpResult r = ReadFrom(client, 1, 1);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, vals[1]);

  Recover(1);
  Recover(4);
  Status inv = group_->VerifyInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  for (int m = 0; m < group_->num_members(); ++m) {
    OpResult back = ReadLocal(m, 1);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.data, vals[static_cast<size_t>(m)]) << "m=" << m;
  }
}

TEST_F(PqGroupTest, QSiteCrashRecoversStaleQRows) {
  // Writes while the Q site of some rows is down drop the Q leg; the
  // site's sweep must rebuild those rows before VerifyInvariants passes.
  ASSERT_TRUE(WriteLocal(0, 0, MakeBlock(1)).ok());
  const int victim = 3;
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(victim)).ok());
  Rng rng(17);
  SiteId client = SurvivorSite({victim});
  for (int m = 0; m < group_->num_members(); ++m) {
    if (m == victim) continue;
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult w = group_->Write(client, m, i, MakeBlock(rng.Next()));
      ASSERT_TRUE(w.ok()) << w.status.ToString();
    }
  }
  Recover(victim);
  Status inv = group_->VerifyInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  EXPECT_GT(group_->stats().Get("radd.recovery_q_rebuilt"), 0u);
}

TEST_F(PqGroupTest, ScrubRepairsBothParityFlavors) {
  ASSERT_TRUE(WriteLocal(0, 0, MakeBlock(3)).ok());
  // Drop updates at a dead member, then restore WITHOUT a sweep: stale P
  // and Q rows remain for the scrubber. MarkUp without recovery models an
  // operator forcing the site up.
  const int victim = 2;
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(victim)).ok());
  Rng rng(19);
  SiteId client = SurvivorSite({victim});
  for (int m = 0; m < group_->num_members(); ++m) {
    if (m == victim) continue;
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(group_->Write(client, m, i, MakeBlock(rng.Next())).ok());
    }
  }
  ASSERT_TRUE(cluster_->RestoreSite(group_->SiteOfMember(victim)).ok());
  ASSERT_TRUE(cluster_->MarkUp(group_->SiteOfMember(victim)).ok());

  Result<int> repaired = group_->ScrubParity(victim);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_GT(*repaired, 0);
  // After scrubbing the stale parity rows (and draining any spares via
  // reads), the invariants hold again for rows the scrubber audited.
  Status inv = group_->VerifyInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

// ---------------------------------------------------------------------------
// Single-parity guardrail.
// ---------------------------------------------------------------------------

TEST(PqConfig, SingleParityGroupRejectsWrongMemberCount) {
  SiteConfig sc;
  sc.num_disks = 1;
  sc.blocks_per_disk = 30;
  Cluster cluster(9, sc);
  RaddConfig cfg;
  cfg.group_size = 8;
  cfg.parities = 2;
  cfg.rows = 30;
  std::vector<LogicalDrive> members;
  for (int m = 0; m < 9; ++m) {
    LogicalDrive d;
    d.site = static_cast<SiteId>(m);
    d.first_block = 0;
    d.drive_blocks = 30;
    members.push_back(d);
  }
  // 9 members but G+1+2 = 11 expected.
  EXPECT_FALSE(RaddGroup::ValidateMembers(cluster, cfg, members).ok());
}

}  // namespace
}  // namespace radd
