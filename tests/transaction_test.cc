// Tests for the strict-2PL TransactionManager over both storage managers:
// isolation (lost updates prevented), wait-die behaviour, and a randomized
// interleaving harness checking conflict-serializable outcomes.

#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace radd {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

uint64_t ReadCounter(StorageManager* sm, BlockNum page) {
  Result<Block> b = sm->ReadCommitted(page);
  if (!b.ok()) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t((*b)[size_t(i)]) << (8 * i);
  return v;
}

std::vector<uint8_t> CounterBytes(uint64_t v) {
  std::vector<uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[size_t(i)] = uint8_t(v >> (8 * i));
  return out;
}

class TransactionTest : public ::testing::TestWithParam<bool> {
 protected:
  TransactionTest() {
    config_.group_size = 4;
    config_.rows = 48;
    config_.block_size = 1024;
    SiteConfig sc{1, config_.rows, config_.block_size};
    cluster_ = std::make_unique<Cluster>(6, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
    if (GetParam()) {
      store_ = std::make_unique<WalStorageManager>(group_.get(), 1, 16, 8);
    } else {
      store_ =
          std::make_unique<NoOverwriteStorageManager>(group_.get(), 1, 8);
    }
    tm_ = std::make_unique<TransactionManager>(store_.get(), &locks_,
                                               group_->SiteOfMember(1));
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
  std::unique_ptr<StorageManager> store_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> tm_;
};

TEST_P(TransactionTest, CommitPublishes) {
  TxnId t = tm_->Begin();
  ASSERT_TRUE(tm_->Update(t, {3, 0, Bytes("hello")}).ok());
  ASSERT_TRUE(tm_->Commit(t).ok());
  Result<Block> page = store_->ReadCommitted(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(page->data()), 5),
            "hello");
  EXPECT_EQ(locks_.LockedKeys(), 0u) << "commit must release all locks";
}

TEST_P(TransactionTest, ReadersShareWritersExclude) {
  TxnId r1 = tm_->Begin();
  TxnId r2 = tm_->Begin();
  ASSERT_TRUE(tm_->Read(r1, 0).ok());
  ASSERT_TRUE(tm_->Read(r2, 0).ok()) << "shared locks must coexist";
  // A younger writer dies against the older readers (wait-die).
  TxnId w = tm_->Begin();
  Status st = tm_->Update(w, {0, 0, Bytes("x")}).ok()
                  ? Status::OK()
                  : Status::Aborted("");
  EXPECT_TRUE(st.IsAborted());
  EXPECT_FALSE(tm_->IsActive(w));
  ASSERT_TRUE(tm_->Commit(r1).ok());
  ASSERT_TRUE(tm_->Commit(r2).ok());
}

TEST_P(TransactionTest, OlderWriterWaitsForYoungerReader) {
  TxnId older = tm_->Begin();
  TxnId younger = tm_->Begin();
  ASSERT_TRUE(tm_->Read(younger, 0).ok());
  Status st = tm_->Update(older, {0, 0, Bytes("x")});
  EXPECT_TRUE(st.IsLockConflict()) << st.ToString();
  EXPECT_TRUE(tm_->IsActive(older)) << "waiting, not dead";
  ASSERT_TRUE(tm_->Commit(younger).ok());
  // The release granted the queued request; the retry proceeds.
  EXPECT_EQ(tm_->recently_granted().size(), 1u);
  EXPECT_TRUE(tm_->Update(older, {0, 0, Bytes("x")}).ok());
  ASSERT_TRUE(tm_->Commit(older).ok());
}

TEST_P(TransactionTest, AbortRollsBackAndUnlocks) {
  TxnId t1 = tm_->Begin();
  ASSERT_TRUE(tm_->Update(t1, {2, 0, Bytes("keep")}).ok());
  ASSERT_TRUE(tm_->Commit(t1).ok());
  TxnId t2 = tm_->Begin();
  ASSERT_TRUE(tm_->Update(t2, {2, 0, Bytes("drop")}).ok());
  ASSERT_TRUE(tm_->Abort(t2).ok());
  EXPECT_EQ(locks_.LockedKeys(), 0u);
  Result<Block> page = store_->ReadCommitted(2);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(page->data()), 4),
            "keep");
}

TEST_P(TransactionTest, LostUpdatesPrevented) {
  // Classic increment race, driven as a cooperative interleaving: each
  // "thread" reads the counter, then writes counter+1. 2PL forces one to
  // wait or die; the final value must equal the number of successful
  // commits.
  const BlockNum page = 5;
  Rng rng(7);
  int committed = 0;
  const int kGoal = 20;
  while (committed < kGoal) {
    // Two racing increment attempts.
    TxnId a = tm_->Begin();
    TxnId b = tm_->Begin();
    auto attempt = [&](TxnId t) -> bool {  // true if committed
      Result<Block> cur = tm_->Read(t, page);
      if (!cur.ok()) return false;  // died or would-wait: give up
      uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= uint64_t((*cur)[size_t(i)]) << (8 * i);
      Status st = tm_->Update(t, {page, 0, CounterBytes(v + 1)});
      if (!st.ok()) {
        if (tm_->IsActive(t)) tm_->Abort(t);
        return false;
      }
      return tm_->Commit(t).ok();
    };
    // Random order, and the loser may die/wait; abort leftovers.
    bool first_is_a = rng.Bernoulli(0.5);
    committed += attempt(first_is_a ? a : b) ? 1 : 0;
    committed += attempt(first_is_a ? b : a) ? 1 : 0;
    if (tm_->IsActive(a)) tm_->Abort(a);
    if (tm_->IsActive(b)) tm_->Abort(b);
    if (committed >= kGoal) break;
  }
  EXPECT_EQ(ReadCounter(store_.get(), page),
            static_cast<uint64_t>(committed))
      << "every committed increment must be reflected exactly once";
}

TEST_P(TransactionTest, RandomizedInterleavingsAreSerializable) {
  // N cooperative transactions each transfer 1 unit from a random page to
  // another (read both, write both). Conflicts cause waits/deaths; the
  // invariant is conservation: the sum over all pages never changes.
  const int kPages = 6;
  // Initialize each page's counter to 100.
  for (BlockNum p = 0; p < kPages; ++p) {
    TxnId t = tm_->Begin();
    ASSERT_TRUE(tm_->Update(t, {p, 0, CounterBytes(100)}).ok());
    ASSERT_TRUE(tm_->Commit(t).ok());
  }
  Rng rng(GetParam() ? 21 : 42);
  int commits = 0;
  for (int round = 0; round < 120; ++round) {
    TxnId t = tm_->Begin();
    BlockNum from = rng.Uniform(kPages);
    BlockNum to = (from + 1 + rng.Uniform(kPages - 1)) % kPages;
    auto xfer = [&]() -> Status {
      Result<Block> f = tm_->Read(t, from);
      if (!f.ok()) return f.status();
      Result<Block> g = tm_->Read(t, to);
      if (!g.ok()) return g.status();
      uint64_t fv = 0, gv = 0;
      for (int i = 0; i < 8; ++i) {
        fv |= uint64_t((*f)[size_t(i)]) << (8 * i);
        gv |= uint64_t((*g)[size_t(i)]) << (8 * i);
      }
      RADD_RETURN_NOT_OK(tm_->Update(t, {from, 0, CounterBytes(fv - 1)}));
      RADD_RETURN_NOT_OK(tm_->Update(t, {to, 0, CounterBytes(gv + 1)}));
      return Status::OK();
    };
    Status st = xfer();
    if (st.ok()) {
      ASSERT_TRUE(tm_->Commit(t).ok());
      ++commits;
    } else if (tm_->IsActive(t)) {
      ASSERT_TRUE(tm_->Abort(t).ok());
    }
  }
  EXPECT_GT(commits, 60);
  uint64_t total = 0;
  for (BlockNum p = 0; p < kPages; ++p) {
    total += ReadCounter(store_.get(), p);
  }
  EXPECT_EQ(total, 100u * kPages) << "conservation violated";
  EXPECT_EQ(locks_.LockedKeys(), 0u);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(WalAndNoOverwrite, TransactionTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Wal" : "NoOverwrite";
                         });

}  // namespace
}  // namespace radd
