// Scenario tests for the RADD algorithms (paper §3), including the exact
// Figure-3 operation counts.

#include "core/radd.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace radd {
namespace {

Block MakeBlock(uint64_t seed, size_t size = Block::kDefaultSize) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

class RaddGroupTest : public ::testing::Test {
 protected:
  RaddGroupTest() { Recreate(8); }

  void Recreate(int g, BlockNum rows = 0) {
    config_.group_size = g;
    config_.rows = rows == 0 ? static_cast<BlockNum>(3 * (g + 2)) : rows;
    SiteConfig sc;
    sc.num_disks = 1;
    sc.blocks_per_disk = config_.rows;
    sc.block_size = config_.block_size;
    cluster_ = std::make_unique<Cluster>(g + 2, sc);
    group_ = std::make_unique<RaddGroup>(cluster_.get(), config_);
  }

  /// Convenience: write from the member's own site.
  OpResult WriteLocal(int home, BlockNum i, const Block& b) {
    return group_->Write(group_->SiteOfMember(home), home, i, b);
  }
  OpResult ReadLocal(int home, BlockNum i) {
    return group_->Read(group_->SiteOfMember(home), home, i);
  }

  RaddConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<RaddGroup> group_;
};

// ---------------------------------------------------------------------------
// Normal operation.
// ---------------------------------------------------------------------------

TEST_F(RaddGroupTest, ReadBackAfterWrite) {
  Block b = MakeBlock(42);
  OpResult w = WriteLocal(2, 5, b);
  ASSERT_TRUE(w.ok()) << w.status.ToString();
  OpResult r = ReadLocal(2, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, b);
  EXPECT_EQ(r.uid, w.uid);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, UnwrittenBlockReadsAsZero) {
  OpResult r = ReadLocal(0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.data.IsZero());
  EXPECT_FALSE(r.uid.valid());
}

TEST_F(RaddGroupTest, NormalReadCostsOneLocalRead) {
  // Figure 3 row 1: no-failure read = R.
  WriteLocal(3, 0, MakeBlock(1));
  OpResult r = ReadLocal(3, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.counts.local_reads, 1u);
  EXPECT_EQ(r.counts.Total(), 1u);
}

TEST_F(RaddGroupTest, NormalWriteCostsLocalPlusRemoteWrite) {
  // Figure 3 row 2: no-failure write = W + RW.
  OpResult w = WriteLocal(3, 0, MakeBlock(1));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.counts.local_writes, 1u);
  EXPECT_EQ(w.counts.remote_writes, 1u);
  EXPECT_EQ(w.counts.Total(), 2u);
  EXPECT_EQ(w.counts.ToFormula(), "W+RW");
}

TEST_F(RaddGroupTest, RemoteClientWriteUsesRemoteOps) {
  SiteId client = group_->SiteOfMember(0);
  OpResult w = group_->Write(client, 3, 0, MakeBlock(1));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.counts.local_writes, 0u);
  EXPECT_EQ(w.counts.remote_writes, 2u);
}

TEST_F(RaddGroupTest, OverwriteMaintainsParity) {
  for (uint64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE(WriteLocal(4, 7, MakeBlock(v)).ok());
    ASSERT_TRUE(group_->VerifyInvariants().ok()) << "after write " << v;
  }
  OpResult r = ReadLocal(4, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, MakeBlock(4));
}

TEST_F(RaddGroupTest, WritesToAllMembersKeepInvariants) {
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(WriteLocal(m, i, MakeBlock(uint64_t(m) * 100 + i)).ok());
    }
  }
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  // Every block reads back.
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      OpResult r = ReadLocal(m, i);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.data, MakeBlock(uint64_t(m) * 100 + i));
    }
  }
}

TEST_F(RaddGroupTest, RejectsOutOfRangeBlockAndMember) {
  EXPECT_TRUE(ReadLocal(0, group_->DataBlocksPerMember())
                  .status.IsInvalidArgument());
  EXPECT_TRUE(group_->Read(0, -1, 0).status.IsInvalidArgument());
  EXPECT_TRUE(group_->Read(0, group_->num_members(), 0)
                  .status.IsInvalidArgument());
  EXPECT_TRUE(WriteLocal(0, 0, Block(17)).status.IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Site failure (temporary outage).
// ---------------------------------------------------------------------------

TEST_F(RaddGroupTest, DegradedReadReconstructs) {
  Block b = MakeBlock(7);
  ASSERT_TRUE(WriteLocal(2, 4, b).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());

  // Read from the spare site so the counting matches Figure 3's G*RR.
  BlockNum row = group_->layout().DataToRow(2, 4);
  SiteId spare_site =
      group_->SiteOfMember(static_cast<int>(group_->layout().SpareSite(row)));
  OpResult r = group_->Read(spare_site, 2, 4);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, b);
  // Figure 3 row 6: site-failure read = G * RR.
  EXPECT_EQ(r.counts.remote_reads, static_cast<uint64_t>(config_.group_size));
  EXPECT_EQ(r.counts.local_reads, 0u);
}

TEST_F(RaddGroupTest, DegradedReadMaterializesIntoSpare) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(7)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  SiteId client = group_->SiteOfMember(0);
  OpResult first = group_->Read(client, 2, 4);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.counts.Total(), 1u);
  // "Subsequent reads can thereby be resolved by accessing only the spare."
  OpResult second = group_->Read(client, 2, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.data, MakeBlock(7));
  EXPECT_EQ(second.counts.Total(), 1u);
  EXPECT_EQ(group_->stats().Get("radd.materialize"), 1u);
}

TEST_F(RaddGroupTest, MaterializationAblation) {
  config_.materialize_on_degraded_read = false;
  Recreate(8);
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(7)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  SiteId client = group_->SiteOfMember(0);
  ASSERT_TRUE(group_->Read(client, 2, 4).ok());
  // Without materialization every read pays full reconstruction.
  OpResult second = group_->Read(client, 2, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.counts.Total(),
            static_cast<uint64_t>(config_.group_size));
  EXPECT_EQ(group_->stats().Get("radd.materialize"), 0u);
}

TEST_F(RaddGroupTest, DegradedWriteGoesToSpareAndParity) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(1)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  // Prime the spare with a degraded read so the write needs no
  // reconstruction (Figure 3's steady-state 2*RW).
  SiteId client = group_->SiteOfMember(0);
  ASSERT_TRUE(group_->Read(client, 2, 4).ok());

  Block b2 = MakeBlock(2);
  OpResult w = group_->Write(client, 2, 4, b2);
  ASSERT_TRUE(w.ok()) << w.status.ToString();
  // Figure 3 row 7: site-failure write = 2 * RW.
  EXPECT_EQ(w.counts.remote_writes, 2u);
  EXPECT_EQ(w.counts.Total(), 2u);

  OpResult r = group_->Read(client, 2, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, b2);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, FirstDegradedWriteReconstructsOldValue) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(1)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  SiteId client = group_->SiteOfMember(0);
  OpResult w = group_->Write(client, 2, 4, MakeBlock(2));
  ASSERT_TRUE(w.ok());
  // Spare was invalid: the old value had to be reconstructed first.
  EXPECT_EQ(w.counts.remote_writes, 2u);
  EXPECT_GE(w.counts.remote_reads + w.counts.local_reads,
            static_cast<uint64_t>(config_.group_size) - 1);
  EXPECT_EQ(group_->stats().Get("radd.degraded_write_reconstruct"), 1u);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, DegradedWriteOfNeverWrittenBlock) {
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(5)).ok());
  SiteId client = group_->SiteOfMember(1);
  Block b = MakeBlock(9);
  OpResult w = group_->Write(client, 5, 2, b);
  ASSERT_TRUE(w.ok()) << w.status.ToString();
  OpResult r = group_->Read(client, 5, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, b);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, SecondSiteFailureBlocks) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(1)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(3)).ok());
  SiteId client = group_->SiteOfMember(0);
  OpResult r = group_->Read(client, 2, 4);
  EXPECT_TRUE(r.status.IsBlocked()) << r.status.ToString();
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

TEST_F(RaddGroupTest, TemporaryFailureRecoveryDrainsSpares) {
  Block before = MakeBlock(10);
  Block during = MakeBlock(11);
  ASSERT_TRUE(WriteLocal(1, 3, before).ok());
  ASSERT_TRUE(WriteLocal(1, 4, before).ok());

  SiteId failed = group_->SiteOfMember(1);
  ASSERT_TRUE(cluster_->CrashSite(failed).ok());
  SiteId client = group_->SiteOfMember(4);
  ASSERT_TRUE(group_->Write(client, 1, 3, during).ok());  // into the spare

  ASSERT_TRUE(cluster_->RestoreSite(failed).ok());
  Result<OpCounts> rec = group_->RunRecovery(1);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(cluster_->StateOf(failed), SiteState::kUp);
  EXPECT_EQ(group_->stats().Get("radd.recovery_spare_drained"), 1u);

  // Block 3 reflects the degraded write, block 4 the original value;
  // both now served locally.
  OpResult r3 = ReadLocal(1, 3);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.data, during);
  EXPECT_EQ(r3.counts.local_reads, 1u);
  OpResult r4 = ReadLocal(1, 4);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.data, before);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, RecoveryRequiresRecoveringState) {
  EXPECT_TRUE(group_->RunRecovery(0).status().IsInvalidArgument());
}

TEST_F(RaddGroupTest, DisasterRecoveryRebuildsEverything) {
  // Fill every member's data, then destroy one site completely.
  for (int m = 0; m < group_->num_members(); ++m) {
    for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(WriteLocal(m, i, MakeBlock(uint64_t(m) * 100 + i)).ok());
    }
  }
  SiteId victim = group_->SiteOfMember(3);
  ASSERT_TRUE(cluster_->DisasterSite(victim).ok());

  // Degraded write while down.
  SiteId client = group_->SiteOfMember(0);
  Block fresh = MakeBlock(999);
  ASSERT_TRUE(group_->Write(client, 3, 0, fresh).ok());

  ASSERT_TRUE(cluster_->RestoreSite(victim).ok());
  Result<OpCounts> rec = group_->RunRecovery(3);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(cluster_->StateOf(victim), SiteState::kUp);
  EXPECT_TRUE(group_->VerifyInvariants().ok());

  // All data intact, including the degraded write.
  OpResult r0 = ReadLocal(3, 0);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.data, fresh);
  for (BlockNum i = 1; i < group_->DataBlocksPerMember(); ++i) {
    OpResult r = ReadLocal(3, i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, MakeBlock(300 + i)) << "block " << i;
  }
  // Parity rows hosted at the victim were rebuilt.
  EXPECT_GT(group_->stats().Get("radd.recovery_parity_rebuilt"), 0u);
}

TEST_F(RaddGroupTest, RecoveryRebuildsStaleParityAfterOutage) {
  // Writes made while the *parity* site is down are dropped and must be
  // recomputed during its recovery.
  ASSERT_TRUE(WriteLocal(2, 0, MakeBlock(1)).ok());
  BlockNum row = group_->layout().DataToRow(2, 0);
  int pm = static_cast<int>(group_->layout().ParitySite(row));
  SiteId parity_site = group_->SiteOfMember(pm);

  ASSERT_TRUE(cluster_->CrashSite(parity_site).ok());
  ASSERT_TRUE(WriteLocal(2, 0, MakeBlock(2)).ok());
  EXPECT_GT(group_->stats().Get("radd.parity_dropped"), 0u);

  ASSERT_TRUE(cluster_->RestoreSite(parity_site).ok());
  Result<OpCounts> rec = group_->RunRecovery(pm);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(group_->VerifyInvariants().ok());

  // Reconstruction through the rebuilt parity yields the new value.
  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  OpResult r = group_->Read(group_->SiteOfMember(0), 2, 0);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, MakeBlock(2));
}

// ---------------------------------------------------------------------------
// Disk failure.
// ---------------------------------------------------------------------------

TEST_F(RaddGroupTest, DiskFailureReadReconstructs) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(5)).ok());
  SiteId site = group_->SiteOfMember(2);
  ASSERT_TRUE(cluster_->FailDisk(site, 0).ok());
  EXPECT_EQ(cluster_->StateOf(site), SiteState::kRecovering);

  // Figure 3 row 3: disk-failure read = G * RR (reconstruction).
  OpResult r = ReadLocal(2, 4);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.data, MakeBlock(5));
  EXPECT_EQ(r.counts.remote_reads,
            static_cast<uint64_t>(config_.group_size));

  // The read repaired the block locally; the next read is local.
  OpResult again = ReadLocal(2, 4);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.counts.local_reads, 1u);
  EXPECT_EQ(again.counts.Total(), 1u);
}

TEST_F(RaddGroupTest, DiskFailureWriteUsesSpare) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(5)).ok());
  SiteId site = group_->SiteOfMember(2);
  ASSERT_TRUE(cluster_->FailDisk(site, 0).ok());

  // First write to the lost block reconstructs the old value; subsequent
  // writes are the paper's steady-state 2 writes (spare + parity).
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(6)).ok());
  OpResult w = WriteLocal(2, 4, MakeBlock(7));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.counts.remote_writes, 2u);
  EXPECT_EQ(w.counts.Total(), 2u);

  OpResult r = ReadLocal(2, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, MakeBlock(7));
  EXPECT_TRUE(group_->VerifyInvariants().ok());
}

TEST_F(RaddGroupTest, DiskFailureRecoverySweep) {
  for (BlockNum i = 0; i < group_->DataBlocksPerMember(); ++i) {
    ASSERT_TRUE(WriteLocal(2, i, MakeBlock(i)).ok());
  }
  SiteId site = group_->SiteOfMember(2);
  ASSERT_TRUE(cluster_->FailDisk(site, 0).ok());
  ASSERT_TRUE(WriteLocal(2, 0, MakeBlock(50)).ok());  // via spare

  Result<OpCounts> rec = group_->RunRecovery(2);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(cluster_->StateOf(site), SiteState::kUp);
  EXPECT_TRUE(group_->VerifyInvariants().ok());
  OpResult r = ReadLocal(2, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, MakeBlock(50));
  for (BlockNum i = 1; i < group_->DataBlocksPerMember(); ++i) {
    OpResult ri = ReadLocal(2, i);
    ASSERT_TRUE(ri.ok());
    EXPECT_EQ(ri.data, MakeBlock(i)) << "block " << i;
  }
}

// ---------------------------------------------------------------------------
// UID validation (§3.3).
// ---------------------------------------------------------------------------

TEST_F(RaddGroupTest, InconsistentUidFailsReconstruction) {
  ASSERT_TRUE(WriteLocal(2, 4, MakeBlock(1)).ok());
  BlockNum row = group_->layout().DataToRow(2, 4);

  // Corrupt one source's UID to simulate an in-flight parity update.
  std::vector<SiteId> sources = group_->layout().ReconstructionSources(2, row);
  int victim = -1;
  for (SiteId s : sources) {
    if (group_->layout().RoleOf(s, row) == BlockRole::kData) {
      victim = static_cast<int>(s);
      break;
    }
  }
  ASSERT_GE(victim, 0);
  Site* vs = cluster_->site(group_->SiteOfMember(victim));
  Result<BlockRecord> rec = vs->disks()->Read(row);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(
      vs->disks()->Write(row, rec->data, vs->uids()->Next()).ok());

  ASSERT_TRUE(cluster_->CrashSite(group_->SiteOfMember(2)).ok());
  OpResult r = group_->Read(group_->SiteOfMember(0), 2, 4);
  EXPECT_TRUE(r.status.IsInconsistent()) << r.status.ToString();
  EXPECT_EQ(group_->stats().Get("radd.uid_retry"),
            static_cast<uint64_t>(config_.max_reconstruct_attempts));
}

// ---------------------------------------------------------------------------
// Parameter sweep: the whole lifecycle at several group sizes.
// ---------------------------------------------------------------------------

class RaddGroupSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RaddGroupSweepTest, CrashWriteRecoverLifecycle) {
  const int g = GetParam();
  RaddConfig config;
  config.group_size = g;
  config.rows = static_cast<BlockNum>(2 * (g + 2));
  config.block_size = 256;  // keep the sweep fast
  SiteConfig sc;
  sc.num_disks = 1;
  sc.blocks_per_disk = config.rows;
  sc.block_size = config.block_size;
  Cluster cluster(g + 2, sc);
  RaddGroup group(&cluster, config);

  auto mk = [&](uint64_t seed) {
    Block b(config.block_size);
    b.FillPattern(seed);
    return b;
  };

  for (int m = 0; m < group.num_members(); ++m) {
    for (BlockNum i = 0; i < group.DataBlocksPerMember(); ++i) {
      ASSERT_TRUE(
          group.Write(group.SiteOfMember(m), m, i, mk(uint64_t(m) + i)).ok());
    }
  }
  ASSERT_TRUE(group.VerifyInvariants().ok());

  for (int victim = 0; victim < group.num_members(); ++victim) {
    SCOPED_TRACE("victim member " + std::to_string(victim));
    SiteId vs = group.SiteOfMember(victim);
    ASSERT_TRUE(cluster.CrashSite(vs).ok());
    SiteId client = group.SiteOfMember((victim + 1) % group.num_members());
    if (group.DataBlocksPerMember() > 0) {
      OpResult r = group.Read(client, victim, 0);
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_EQ(r.data, mk(uint64_t(victim)));
      ASSERT_TRUE(group.Write(client, victim, 0, mk(777)).ok());
    }
    ASSERT_TRUE(cluster.RestoreSite(vs).ok());
    Result<OpCounts> rec = group.RunRecovery(victim);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    ASSERT_TRUE(group.VerifyInvariants().ok());
    OpResult back = group.Read(vs, victim, 0);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.data, mk(777));
    // Restore the original value for the next iteration.
    ASSERT_TRUE(group.Write(vs, victim, 0, mk(uint64_t(victim))).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RaddGroupSweepTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace radd
