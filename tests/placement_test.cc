// Layout-invariant property suite over every PlacementMap implementation
// (layout/placement.h): the rotated closed forms, the declustered
// t-design tables, and the epoch-versioned expandable map. Every
// implementation must honor the same row-composition, round-trip and
// reconstruction-source contracts; the rotated implementation must match
// the RaddLayout closed forms bit for bit.

#include "layout/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace radd {
namespace {

constexpr uint64_t kSeed = 0x9a1a7;

// ---------------------------------------------------------------------------
// Shared property checks. `rows` is the physical blocks per member the
// map was built for; every logical row of NumRows(rows) is swept.
// ---------------------------------------------------------------------------

// Each row has exactly one parity, one spare, G data blocks (and one Q
// when dual parity), each on a distinct member, and the role queries
// agree with the site queries.
void CheckRowComposition(const PlacementMap& map, BlockNum rows) {
  const int width = map.num_sites();
  const int g = map.group_size();
  for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
    SCOPED_TRACE("row " + std::to_string(row));
    int parity = 0, q = 0, spare = 0, data = 0;
    for (int m = 0; m < width; ++m) {
      const SiteId member = static_cast<SiteId>(m);
      switch (map.RoleOf(member, row)) {
        case BlockRole::kParity:
          ++parity;
          EXPECT_EQ(map.ParitySite(row), member);
          break;
        case BlockRole::kParityQ:
          ++q;
          EXPECT_TRUE(map.dual_parity()) << "Q role without dual parity";
          if (map.dual_parity()) {
            EXPECT_EQ(map.QParitySite(row), member);
          }
          break;
        case BlockRole::kSpare:
          ++spare;
          EXPECT_EQ(map.SpareSite(row), member);
          break;
        case BlockRole::kData:
          ++data;
          break;
        case BlockRole::kNone:
          break;
      }
    }
    EXPECT_EQ(parity, 1);
    EXPECT_EQ(spare, 1);
    EXPECT_EQ(q, map.dual_parity() ? 1 : 0);
    EXPECT_EQ(data, g);

    // DataSites returns exactly the data members, no duplicates.
    std::vector<SiteId> ds = map.DataSites(row);
    ASSERT_EQ(ds.size(), static_cast<size_t>(g));
    std::set<SiteId> dset(ds.begin(), ds.end());
    EXPECT_EQ(dset.size(), ds.size()) << "duplicate data site";
    for (SiteId m : ds) {
      EXPECT_EQ(map.RoleOf(m, row), BlockRole::kData);
    }
  }
}

// RowToData inverts DataToRow over every member's whole data-index
// domain, and rejects the member's non-data rows. `strict` relaxes the
// exact identity for maps holding a committed expansion: an expansion
// owner's per-round data blocks all live in the round's new stripe, so
// several indices share one row and RowToData can only return a
// representative index of that row (host resolution goes by index —
// CheckOwnerPhysicalBijection — so the data path never needs the exact
// inverse).
void CheckRoundTrip(const PlacementMap& map, BlockNum rows,
                    bool strict = true) {
  const int width = map.num_sites();
  for (int m = 0; m < width; ++m) {
    const SiteId member = static_cast<SiteId>(m);
    for (BlockNum i = 0; i < map.DataBlocksPerSite(rows); ++i) {
      const BlockNum row = map.DataToRow(member, i);
      EXPECT_LT(row, map.NumRows(rows));
      Result<BlockNum> back = map.RowToData(member, row);
      ASSERT_TRUE(back.ok()) << "member " << m << " index " << i << ": "
                             << back.status().ToString();
      if (strict) {
        EXPECT_EQ(*back, i);
      } else {
        EXPECT_EQ(map.DataToRow(member, *back), row);
      }
    }
  }
  for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
    EXPECT_FALSE(map.RowToData(map.ParitySite(row), row).ok());
    EXPECT_FALSE(map.RowToData(map.SpareSite(row), row).ok());
    if (map.dual_parity()) {
      EXPECT_FALSE(map.RowToData(map.QParitySite(row), row).ok());
    }
  }
}

// ReconstructionSources: every participant except the failed member and
// the spare, each distinct, parity always present.
void CheckReconstructionSources(const PlacementMap& map, BlockNum rows) {
  const int width = map.num_sites();
  const size_t expected = static_cast<size_t>(map.stripe_width()) - 2;
  for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
    for (int f = 0; f < width; ++f) {
      const SiteId failed = static_cast<SiteId>(f);
      const BlockRole role = map.RoleOf(failed, row);
      if (role == BlockRole::kNone || role == BlockRole::kSpare) continue;
      std::vector<SiteId> sources = map.ReconstructionSources(failed, row);
      EXPECT_EQ(sources.size(), expected)
          << "row " << row << " failed " << f;
      std::set<SiteId> set(sources.begin(), sources.end());
      EXPECT_EQ(set.size(), sources.size()) << "duplicate source";
      EXPECT_EQ(set.count(failed), 0u);
      EXPECT_EQ(set.count(map.SpareSite(row)), 0u);
      for (SiteId m : sources) {
        EXPECT_NE(map.RoleOf(m, row), BlockRole::kNone)
            << "source " << m << " does not participate in row " << row;
      }
      if (failed != map.ParitySite(row)) {
        EXPECT_EQ(set.count(map.ParitySite(row)), 1u);
      }
    }
  }
}

// Physical addressing: within one member, every row the member
// participates in maps to a distinct in-range drive address.
void CheckAddressBijection(const PlacementMap& map, BlockNum rows) {
  const int width = map.num_sites();
  const BlockNum cycle = static_cast<BlockNum>(map.stripe_width());
  const BlockNum used = (rows / cycle) * cycle;
  for (int m = 0; m < width; ++m) {
    const SiteId member = static_cast<SiteId>(m);
    std::set<BlockNum> addrs;
    for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
      if (map.RoleOf(member, row) == BlockRole::kNone) continue;
      const BlockNum a = map.AddressOf(member, row);
      EXPECT_LT(a, used) << "member " << m << " row " << row;
      EXPECT_TRUE(addrs.insert(a).second)
          << "member " << m << ": two rows share address " << a;
    }
  }
}

// Outside an expansion every owner hosts its own blocks.
void CheckHostIsOwner(const PlacementMap& map, BlockNum rows) {
  for (int m = 0; m < map.num_sites(); ++m) {
    const SiteId member = static_cast<SiteId>(m);
    for (BlockNum i = 0; i < map.DataBlocksPerSite(rows); ++i) {
      const BlockNum row = map.DataToRow(member, i);
      EXPECT_EQ(map.HostOfData(member, row), member);
      EXPECT_EQ(map.HostOfDataIndex(member, i), member);
    }
  }
}

// The end-to-end addressing contract the data path relies on: every
// (owner, data index) resolves through DataToRow + HostOfDataIndex to a
// data-role host and a physical block no other (owner, index) touches.
void CheckOwnerPhysicalBijection(const PlacementMap& map, BlockNum rows) {
  std::set<std::pair<SiteId, BlockNum>> blocks;
  for (int m = 0; m < map.num_sites(); ++m) {
    const SiteId member = static_cast<SiteId>(m);
    for (BlockNum i = 0; i < map.DataBlocksPerSite(rows); ++i) {
      const BlockNum row = map.DataToRow(member, i);
      const SiteId host = map.HostOfDataIndex(member, i);
      EXPECT_EQ(map.RoleOf(host, row), BlockRole::kData)
          << "member " << m << " index " << i << " hosted at " << host;
      EXPECT_TRUE(blocks.insert({host, map.AddressOf(host, row)}).second)
          << "member " << m << " index " << i
          << " aliases another owner's block";
    }
  }
}

void CheckAllProperties(const PlacementMap& map, BlockNum rows,
                        bool strict_round_trip = true) {
  CheckRowComposition(map, rows);
  CheckRoundTrip(map, rows, strict_round_trip);
  CheckReconstructionSources(map, rows);
  CheckAddressBijection(map, rows);
  CheckOwnerPhysicalBijection(map, rows);
}

// ---------------------------------------------------------------------------
// The suite, instantiated for every implementation and parity mode.
// ---------------------------------------------------------------------------

struct MapCase {
  std::string name;
  int g;
  int parities;
  int sites;  // 0 = rotated
  BlockNum rows;
};

class PlacementPropertyTest : public ::testing::TestWithParam<MapCase> {
 protected:
  std::shared_ptr<PlacementMap> Make() const {
    const MapCase& c = GetParam();
    PlacementSpec spec;
    if (c.sites > 0) {
      spec.kind = PlacementKind::kDeclustered;
      spec.sites = c.sites;
      spec.seed = kSeed;
    }
    return MakePlacement(spec, c.g, c.parities, c.rows);
  }
};

TEST_P(PlacementPropertyTest, HonorsPlacementContract) {
  std::shared_ptr<PlacementMap> map = Make();
  const MapCase& c = GetParam();
  EXPECT_EQ(map->group_size(), c.g);
  EXPECT_EQ(map->parities(), c.parities);
  EXPECT_EQ(map->num_sites(),
            c.sites > 0 ? c.sites : c.g + 1 + c.parities);
  EXPECT_EQ(map->stripe_width(), c.g + 1 + c.parities);
  CheckAllProperties(*map, c.rows);
  CheckHostIsOwner(*map, c.rows);
}

INSTANTIATE_TEST_SUITE_P(
    AllMaps, PlacementPropertyTest,
    ::testing::Values(
        MapCase{"rotated_g1", 1, 1, 0, 12},
        MapCase{"rotated_g4", 4, 1, 0, 24},
        MapCase{"rotated_g4_pq", 4, 2, 0, 28},
        MapCase{"declustered_min_width", 2, 1, 4, 16},
        MapCase{"declustered_g2_c8", 2, 1, 8, 16},
        MapCase{"declustered_g4_c12", 4, 1, 12, 48},
        MapCase{"declustered_pq_c10", 4, 2, 10, 21},
        MapCase{"declustered_wide", 3, 1, 16, 30}),
    [](const ::testing::TestParamInfo<MapCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// RotatedLayout must be the RaddLayout closed forms, query for query —
// the refactor's bit-identity guarantee, checked exhaustively for small
// G x rows grids in both parity modes.
// ---------------------------------------------------------------------------

class RotatedEquivalenceTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RotatedEquivalenceTest, MatchesClosedForms) {
  const int g = GetParam().first;
  const int parities = GetParam().second;
  RotatedLayout map(g, parities);
  RaddLayout closed(g, parities);
  const int n = closed.num_sites();
  const BlockNum rows = static_cast<BlockNum>(5 * n);

  ASSERT_EQ(map.num_sites(), n);
  EXPECT_EQ(map.NumRows(rows), rows);
  EXPECT_EQ(map.DataBlocksPerSite(rows), closed.DataBlocksPerSite(rows));
  EXPECT_EQ(map.RowsForDataBlocks(7), closed.RowsForDataBlocks(7));
  for (BlockNum row = 0; row < rows; ++row) {
    SCOPED_TRACE("row " + std::to_string(row));
    EXPECT_EQ(map.ParitySite(row), closed.ParitySite(row));
    EXPECT_EQ(map.SpareSite(row), closed.SpareSite(row));
    if (parities == 2) {
      EXPECT_EQ(map.QParitySite(row), closed.QParitySite(row));
    }
    EXPECT_EQ(map.DataSites(row), closed.DataSites(row));
    for (int m = 0; m < n; ++m) {
      const SiteId member = static_cast<SiteId>(m);
      EXPECT_EQ(map.RoleOf(member, row), closed.RoleOf(member, row));
      EXPECT_EQ(map.AddressOf(member, row), row);  // identity addressing
      EXPECT_EQ(map.ReconstructionSources(member, row),
                closed.ReconstructionSources(member, row));
      Result<BlockNum> a = map.RowToData(member, row);
      Result<BlockNum> b = closed.RowToData(member, row);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_EQ(*a, *b);
      }
    }
  }
  for (int m = 0; m < n; ++m) {
    for (BlockNum i = 0; i < closed.DataBlocksPerSite(rows); ++i) {
      EXPECT_EQ(map.DataToRow(static_cast<SiteId>(m), i),
                closed.DataToRow(static_cast<SiteId>(m), i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrids, RotatedEquivalenceTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 1),
                      std::make_pair(3, 1), std::make_pair(4, 1),
                      std::make_pair(8, 1), std::make_pair(2, 2),
                      std::make_pair(4, 2)));

// ---------------------------------------------------------------------------
// Declustered-specific structure: exact per-round load balance and the
// reconstruction spread the t-design tables exist to provide.
// ---------------------------------------------------------------------------

TEST(DeclusteredLayout, RoleLoadIsExactlyBalanced) {
  // Within one round every member plays every stripe offset exactly
  // once, so over R rounds each member holds R parity, R spare and R*G
  // data blocks — no member is a recovery hotspot.
  const int g = 4, c = 12;
  const BlockNum rows = 48;  // 8 rounds of width 6
  DeclusteredLayout map(g, 1, c, rows, kSeed, 4);
  const BlockNum rounds = map.rounds();
  std::map<int, BlockNum> parity, spare, data;
  for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
    for (int m = 0; m < c; ++m) {
      switch (map.RoleOf(static_cast<SiteId>(m), row)) {
        case BlockRole::kParity: ++parity[m]; break;
        case BlockRole::kSpare: ++spare[m]; break;
        case BlockRole::kData: ++data[m]; break;
        default: break;
      }
    }
  }
  for (int m = 0; m < c; ++m) {
    EXPECT_EQ(parity[m], rounds) << "member " << m;
    EXPECT_EQ(spare[m], rounds) << "member " << m;
    EXPECT_EQ(data[m], rounds * static_cast<BlockNum>(g)) << "member " << m;
  }
}

TEST(DeclusteredLayout, ReconstructionSourcesSpreadOverCluster) {
  // The point of declustering (§3.2's bottleneck): a failed member's
  // reconstruction reads fan out over far more peers than the rotated
  // fixed group of G+P. Required spread: more than 2*(G+P) distinct
  // sources per member.
  const int g = 4, parities = 1, c = 12;
  const BlockNum rows = 48;
  DeclusteredLayout map(g, parities, c, rows, kSeed, 4);
  for (int f = 0; f < c; ++f) {
    const SiteId failed = static_cast<SiteId>(f);
    std::set<SiteId> union_sources;
    for (BlockNum row = 0; row < map.NumRows(rows); ++row) {
      const BlockRole role = map.RoleOf(failed, row);
      if (role == BlockRole::kNone || role == BlockRole::kSpare) continue;
      for (SiteId m : map.ReconstructionSources(failed, row)) {
        union_sources.insert(m);
      }
    }
    EXPECT_GT(union_sources.size(), static_cast<size_t>(2 * (g + parities)))
        << "member " << f << " reconstructs from a narrow peer set";
  }

  // Contrast: the rotated layout can never exceed its G+1+P-1 fixed
  // co-members, which is the bottleneck declustering removes.
  RotatedLayout rot(g, parities);
  std::set<SiteId> rot_union;
  for (BlockNum row = 0; row < 48; ++row) {
    if (rot.RoleOf(0, row) == BlockRole::kSpare) continue;
    for (SiteId m : rot.ReconstructionSources(0, row)) rot_union.insert(m);
  }
  EXPECT_LE(rot_union.size(), static_cast<size_t>(g + parities + 1));
}

TEST(DeclusteredLayout, DeterministicForSeedAndShape) {
  const BlockNum rows = 24;
  DeclusteredLayout a(2, 1, 8, rows, kSeed, 4);
  DeclusteredLayout b(2, 1, 8, rows, kSeed, 4);
  DeclusteredLayout other(2, 1, 8, rows, kSeed + 1, 4);
  bool differs = false;
  for (BlockNum row = 0; row < a.NumRows(rows); ++row) {
    EXPECT_EQ(a.ParitySite(row), b.ParitySite(row));
    EXPECT_EQ(a.SpareSite(row), b.SpareSite(row));
    if (a.ParitySite(row) != other.ParitySite(row)) differs = true;
  }
  EXPECT_TRUE(differs) << "seed does not influence the tables";
}

TEST(DeclusteredLayout, CapacityAccountingMatchesRotated) {
  // Capacity rounding is placement-independent: only whole n-row cycles
  // count, regardless of how rows spread over the cluster.
  DeclusteredLayout map(4, 1, 12, 48, kSeed, 4);
  RotatedLayout rot(4, 1);
  EXPECT_EQ(map.DataBlocksPerSite(48), rot.DataBlocksPerSite(48));
  EXPECT_EQ(map.CapacityWasteBlocks(48), 0u);
  EXPECT_EQ(rot.CapacityWasteBlocks(50), 2u);
  EXPECT_EQ(map.CapacityWasteBlocks(50), 2u);
  // More logical rows than physical addresses per member: each row only
  // touches n of the C members.
  EXPECT_EQ(map.NumRows(48), static_cast<BlockNum>(48 / 6) * 12);
}

// ---------------------------------------------------------------------------
// PlacementGroupWidth / MakePlacement factory.
// ---------------------------------------------------------------------------

TEST(PlacementFactory, WidthAndKinds) {
  PlacementSpec rotated;
  EXPECT_EQ(PlacementGroupWidth(rotated, 4, 1), 6);
  EXPECT_EQ(PlacementGroupWidth(rotated, 4, 2), 7);

  PlacementSpec declustered;
  declustered.kind = PlacementKind::kDeclustered;
  EXPECT_EQ(PlacementGroupWidth(declustered, 4, 1), 6);  // 0 = minimum
  declustered.sites = 12;
  EXPECT_EQ(PlacementGroupWidth(declustered, 4, 1), 12);

  std::shared_ptr<PlacementMap> r = MakePlacement(rotated, 4, 1, 24);
  EXPECT_EQ(r->kind(), PlacementKind::kRotated);
  EXPECT_EQ(r->num_sites(), 6);

  std::shared_ptr<PlacementMap> d = MakePlacement(declustered, 4, 1, 24);
  EXPECT_EQ(d->kind(), PlacementKind::kDeclustered);
  EXPECT_EQ(d->num_sites(), 12);
  // Declustered maps are always epoch-capable for online expansion.
  EXPECT_NE(dynamic_cast<EpochedPlacement*>(d.get()), nullptr);

  EXPECT_EQ(PlacementKindName(PlacementKind::kRotated), "rotated");
  EXPECT_EQ(PlacementKindName(PlacementKind::kDeclustered), "declustered");
}

// ---------------------------------------------------------------------------
// Epoched expansion: plan shape, bounded movement, table consistency at
// every intermediate step, and ownership stability across the epoch flip.
// ---------------------------------------------------------------------------

class EpochedExpansionTest : public ::testing::Test {
 protected:
  static constexpr int kG = 4, kParities = 1, kC = 12;
  static constexpr BlockNum kRows = 24;  // 4 rounds of width 6

  EpochedExpansionTest()
      : map_(kG, kParities, kC, kRows, kSeed, 4) {}

  EpochedPlacement map_;
};

TEST_F(EpochedExpansionTest, PlanIsMinimalAndWellFormed) {
  const int n = map_.stripe_width();
  const BlockNum rounds = map_.rounds();
  Result<std::vector<PlacementMove>> plan = map_.BeginAddMember();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Exactly rounds * (n-1) moves: the minimal set.
  EXPECT_EQ(plan->size(), static_cast<size_t>(rounds) *
                              static_cast<size_t>(n - 1));
  // Bounded movement: moved blocks <= the added capacity share,
  // total/(C+1), of the pre-expansion physical blocks.
  EXPECT_LE(plan->size() * static_cast<size_t>(kC + 1),
            static_cast<size_t>(kC) * static_cast<size_t>(kRows));

  // Per round: one move per offset except the new member's own slot,
  // from distinct stripes and distinct donors.
  std::map<BlockNum, std::set<int>> offsets_by_round, donors_by_round;
  std::map<BlockNum, std::set<BlockNum>> rows_by_round;
  for (const PlacementMove& mv : *plan) {
    const BlockNum q = mv.donor_addr / static_cast<BlockNum>(n);
    EXPECT_GE(mv.offset, 0);
    EXPECT_LT(mv.offset, n);
    EXPECT_NE(mv.offset, static_cast<int>(q % static_cast<BlockNum>(n)))
        << "move takes over the new member's own slot";
    EXPECT_LT(mv.donor, kC);
    EXPECT_TRUE(offsets_by_round[q].insert(mv.offset).second)
        << "round " << q << ": duplicate offset";
    EXPECT_TRUE(donors_by_round[q].insert(mv.donor).second)
        << "round " << q << ": donor drained twice";
    EXPECT_TRUE(rows_by_round[q].insert(mv.row).second)
        << "round " << q << ": two moves in one stripe";
  }
  for (auto& [q, offs] : offsets_by_round) {
    EXPECT_EQ(offs.size(), static_cast<size_t>(n - 1)) << "round " << q;
  }
}

TEST_F(EpochedExpansionTest, EpochAndRowsFlipOnlyAtCommit) {
  LayoutEpoch e0 = map_.CurrentEpoch();
  EXPECT_EQ(e0.epoch, 0u);
  EXPECT_FALSE(e0.migrating);
  EXPECT_EQ(e0.members, kC);
  const BlockNum rows_before = map_.NumRows(kRows);

  Result<std::vector<PlacementMove>> plan = map_.BeginAddMember();
  ASSERT_TRUE(plan.ok());
  LayoutEpoch e1 = map_.CurrentEpoch();
  EXPECT_EQ(e1.epoch, 1u);
  EXPECT_TRUE(e1.migrating);
  EXPECT_EQ(e1.members, kC + 1);          // addressable immediately
  EXPECT_EQ(e1.num_rows, rows_before);    // capacity exposed only at commit
  EXPECT_EQ(map_.pending_member(), kC);

  for (const PlacementMove& mv : *plan) map_.ApplyMove(mv);
  ASSERT_TRUE(map_.CommitAddMember().ok());

  LayoutEpoch e2 = map_.CurrentEpoch();
  EXPECT_EQ(e2.epoch, 2u);
  EXPECT_FALSE(e2.migrating);
  EXPECT_EQ(e2.num_rows, rows_before + map_.rounds());
  EXPECT_EQ(map_.pending_member(), -1);
}

TEST_F(EpochedExpansionTest, ExpandedMapHonorsAllProperties) {
  // Record the pre-expansion ownership map: it must survive unchanged.
  std::map<std::pair<int, BlockNum>, BlockNum> owner_rows;
  for (int m = 0; m < kC; ++m) {
    for (BlockNum i = 0; i < map_.DataBlocksPerSite(kRows); ++i) {
      owner_rows[{m, i}] = map_.DataToRow(static_cast<SiteId>(m), i);
    }
  }

  Result<std::vector<PlacementMove>> plan = map_.BeginAddMember();
  ASSERT_TRUE(plan.ok());
  size_t data_moves = 0;
  for (const PlacementMove& mv : *plan) {
    map_.ApplyMove(mv);
    if (mv.offset >= kG) continue;
    ++data_moves;
    // The donor still *owns* the block (LBA space fixed for the volume's
    // life) but the new member now *hosts* it.
    Result<BlockNum> idx = map_.RowToData(
        static_cast<SiteId>(mv.donor), mv.row);
    EXPECT_TRUE(idx.ok()) << idx.status().ToString();
    EXPECT_EQ(map_.HostOfData(static_cast<SiteId>(mv.donor), mv.row),
              static_cast<SiteId>(kC));
    EXPECT_EQ(map_.RoleOf(static_cast<SiteId>(kC), mv.row),
              BlockRole::kData);
    EXPECT_EQ(map_.RoleOf(static_cast<SiteId>(mv.donor), mv.row),
              BlockRole::kNone);
  }
  EXPECT_GT(data_moves, 0u);
  ASSERT_TRUE(map_.CommitAddMember().ok());

  EXPECT_EQ(map_.num_sites(), kC + 1);
  CheckAllProperties(map_, kRows, /*strict_round_trip=*/false);

  // Ownership stable: every pre-expansion (member, index) still maps to
  // the same row.
  for (const auto& [key, row] : owner_rows) {
    EXPECT_EQ(map_.DataToRow(static_cast<SiteId>(key.first), key.second),
              row)
        << "member " << key.first << " index " << key.second;
  }
  // The new member owns the new stripes' data blocks: per round all of
  // its G indices share the round's new-stripe row but resolve to G
  // distinct hosts — the disambiguation HostOfDataIndex exists for.
  const BlockNum g = static_cast<BlockNum>(kG);
  for (BlockNum i = 0; i < map_.DataBlocksPerSite(kRows); ++i) {
    const BlockNum row = map_.DataToRow(static_cast<SiteId>(kC), i);
    EXPECT_GE(row, static_cast<BlockNum>(kC) * map_.rounds())
        << "new member owns a pre-expansion row";
    EXPECT_EQ(row, map_.DataToRow(static_cast<SiteId>(kC), (i / g) * g))
        << "one new stripe per round";
  }
  for (BlockNum q = 0; q < map_.rounds(); ++q) {
    std::set<SiteId> hosts;
    for (BlockNum k = 0; k < g; ++k) {
      hosts.insert(map_.HostOfDataIndex(static_cast<SiteId>(kC), q * g + k));
    }
    EXPECT_EQ(hosts.size(), static_cast<size_t>(kG))
        << "round " << q << ": new-stripe blocks share a host";
  }
}

TEST_F(EpochedExpansionTest, SecondExpansionStacksOnTheFirst) {
  for (int round = 0; round < 2; ++round) {
    Result<std::vector<PlacementMove>> plan = map_.BeginAddMember();
    ASSERT_TRUE(plan.ok()) << "expansion " << round << ": "
                           << plan.status().ToString();
    for (const PlacementMove& mv : *plan) map_.ApplyMove(mv);
    ASSERT_TRUE(map_.CommitAddMember().ok());
  }
  EXPECT_EQ(map_.num_sites(), kC + 2);
  EXPECT_EQ(map_.NumRows(kRows),
            static_cast<BlockNum>(kC + 2) * map_.rounds());
  EXPECT_EQ(map_.CurrentEpoch().epoch, 4u);
  CheckAllProperties(map_, kRows, /*strict_round_trip=*/false);
}

TEST_F(EpochedExpansionTest, GuardsAgainstMisuse) {
  // Commit without a migration in flight.
  EXPECT_FALSE(map_.CommitAddMember().ok());

  Result<std::vector<PlacementMove>> plan = map_.BeginAddMember();
  ASSERT_TRUE(plan.ok());
  // Only one expansion at a time.
  EXPECT_FALSE(map_.BeginAddMember().ok());
  // Commit before every move landed.
  map_.ApplyMove((*plan)[0]);
  Status st = map_.CommitAddMember();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("1 of"), std::string::npos) << st.ToString();
}

}  // namespace
}  // namespace radd
