// Shared helpers for the figure/table reproduction benches: the paper's
// printed values (for side-by-side comparison) and small formatting
// utilities.

#ifndef RADD_BENCH_BENCH_UTIL_H_
#define RADD_BENCH_BENCH_UTIL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/format.h"
#include "schemes/scheme.h"

namespace radd::bench {

/// Scheme column order used by the paper's figures.
inline const std::vector<std::string>& SchemeOrder() {
  static const std::vector<std::string> kOrder = {
      "RADD", "ROWB", "RAID", "C-RAID", "2D-RADD", "1/2-RADD"};
  return kOrder;
}

/// Figure 4's printed numbers (msec), by scenario row then scheme column;
/// -1 marks "cannot operate".
inline const std::map<Scenario, std::vector<double>>& PaperFigure4() {
  static const std::map<Scenario, std::vector<double>> kFig4 = {
      {Scenario::kNoFailureRead, {30, 30, 30, 30, 30, 30}},
      {Scenario::kNoFailureWrite, {105, 105, 60, 165, 180, 105}},
      {Scenario::kDiskFailureRead, {600, 75, 240, 240, 600, 300}},
      {Scenario::kDiskFailureWrite, {150, 75, 60, 165, 300, 150}},
      {Scenario::kReconstructedRead, {105, 30, 60, 60, 105, 105}},
      {Scenario::kSiteFailureRead, {600, 75, -1, 600, 600, 300}},
      {Scenario::kSiteFailureWrite, {150, 75, -1, 105, 300, 150}},
  };
  return kFig4;
}

/// Figure 3's symbolic formulas as printed.
inline const std::map<Scenario, std::vector<std::string>>& PaperFigure3() {
  static const std::map<Scenario, std::vector<std::string>> kFig3 = {
      {Scenario::kNoFailureRead, {"R", "R", "R", "R", "R", "R"}},
      {Scenario::kNoFailureWrite,
       {"W+RW", "W+RW", "2*W", "RW+3*W", "W+2RW", "W+RW"}},
      {Scenario::kDiskFailureRead,
       {"G*RR", "RR", "G*R", "G*R", "G*RR", "G*RR/2"}},
      {Scenario::kDiskFailureWrite,
       {"2*RW", "RW", "2*W", "2*W+2*RW", "4*RW", "2*RW"}},
      {Scenario::kReconstructedRead,
       {"R+RR", "R", "2*R", "2*R", "R+RR", "R+RR"}},
      {Scenario::kSiteFailureRead,
       {"G*RR", "RR", "-", "G*RR", "G*RR", "G*RR/2"}},
      {Scenario::kSiteFailureWrite,
       {"2*RW", "RW", "-", "2*RW", "4*RW", "2*RW"}},
  };
  return kFig3;
}

/// Figure 5's MTTU values in hours ("83.333" read as 83,333).
inline const std::map<std::string, double>& PaperFigure5() {
  static const std::map<std::string, double> kFig5 = {
      {"RADD", 5000},   {"ROWB", 22500},    {"RAID", 150},
      {"C-RAID", 5000}, {"2D-RADD", 83333}, {"1/2-RADD", 10000},
  };
  return kFig5;
}

/// Figure 6's MTTF in years, per environment column; > 500 encoded as 500,
/// > 100 as 100 (the paper prints ">500" / ">100").
inline const std::map<std::string, std::vector<double>>& PaperFigure6() {
  // columns: cautious RAID, cautious conventional, normal RAID,
  // normal conventional
  static const std::map<std::string, std::vector<double>> kFig6 = {
      {"RADD", {1.71, 28.5, 6.84, 20.0}},
      {"ROWB", {1.71, 28.5, 6.84, 20.0}},
      {"RAID", {1.71, 1.71, 6.84, 6.84}},
      {"C-RAID", {500, 500, 500, 500}},
      {"2D-RADD", {500, 500, 500, 500}},
      {"1/2-RADD", {3.42, 100, 13.7, 100}},
  };
  return kFig6;
}

inline std::string Msec(double v) { return FormatDouble(v, 0); }

}  // namespace radd::bench

#endif  // RADD_BENCH_BENCH_UTIL_H_
