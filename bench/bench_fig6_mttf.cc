// Figure 6 reproduction: mean time to data loss (MTTF) of the six schemes
// in all four Table-2 environments. Columns: the paper's formula family,
// the refined all-events analytic model, a Monte-Carlo estimate from the
// explicit failure process, and the paper's printed value.

#include <cstdio>

#include "bench/bench_util.h"
#include "reliability/reliability.h"

using namespace radd;

namespace {
constexpr double kHoursPerYear = 24 * 365;

std::string Years(double hours) {
  return FormatDouble(hours / kHoursPerYear, 2);
}
}  // namespace

int main() {
  const int g = 8;
  const double horizon = 500 * kHoursPerYear;

  bool shapes_ok = true;
  int env_index = 0;
  for (const Environment& env : PaperEnvironments()) {
    AnalyticModel model(env, g);
    MonteCarlo mc(env, g, 0x5eed + static_cast<uint64_t>(env_index));

    TextTable t("MTTF in years (paper Figure 6) — " + env.name);
    t.SetHeader(
        {"system", "paper formula", "refined model", "Monte Carlo", "paper"});
    std::map<std::string, double> mc_years;
    for (SchemeKind k : AllSchemeKinds()) {
      bool heavy =
          k == SchemeKind::kCRaid || k == SchemeKind::kTwoDRadd;
      int trials = heavy ? 8 : 40;
      MonteCarlo::MttfEstimate est = mc.EstimateMttf(k, trials, horizon);
      std::string mc_cell =
          est.censored == est.trials
              ? "> " + Years(horizon)
              : Years(est.mean_hours) +
                    (est.censored > 0 ? " (censored)" : "");
      mc_years[std::string(SchemeKindName(k))] = est.mean_hours;
      double paper =
          bench::PaperFigure6().at(std::string(SchemeKindName(k)))[
              static_cast<size_t>(env_index)];
      t.AddRow({std::string(SchemeKindName(k)),
                Years(model.MttfHours(k)),
                Years(model.MttfHoursRefined(k)), mc_cell,
                paper >= 500 ? ">500" : (paper >= 100 ? ">100"
                                                      : FormatDouble(paper,
                                                                     2))});
    }
    t.Print();

    // Shape checks per environment.
    bool composite_high = mc_years["C-RAID"] > 100 * kHoursPerYear &&
                          mc_years["2D-RADD"] > 100 * kHoursPerYear;
    bool half_beats_full = mc_years["1/2-RADD"] > mc_years["RADD"];
    shapes_ok = shapes_ok && composite_high && half_beats_full;
    std::printf("  shape: composites >100y: %s; 1/2-RADD > RADD: %s\n\n",
                composite_high ? "yes" : "NO",
                half_beats_full ? "yes" : "NO");
    ++env_index;
  }

  // The paper's cross-environment claim: conventional (N=10) environments
  // are far more reliable for RADD than N=100 environments.
  MonteCarlo raid_env(PaperEnvironments()[0], g, 1);
  MonteCarlo conv_env(PaperEnvironments()[1], g, 1);
  double lo = raid_env.EstimateMttf(SchemeKind::kRadd, 40, horizon).mean_hours;
  double hi = conv_env.EstimateMttf(SchemeKind::kRadd, 40, horizon).mean_hours;
  bool n_effect = hi > 2 * lo;
  std::printf(
      "cross-environment check — RADD MTTF with N=10 (%s y) >> N=100 "
      "(%s y): %s\n"
      "(\"MTTF is driven by a disk failure during recovery from a\n"
      "disaster. With a large number of disks, the probability of one\n"
      "failing during disaster recovery is essentially 1.0\")\n",
      Years(hi).c_str(), Years(lo).c_str(), n_effect ? "yes" : "NO");
  return (shapes_ok && n_effect) ? 0 : 1;
}
