// Ablations of the design choices DESIGN.md calls out:
//   1. spare materialization on degraded reads (paper §3.2) — on vs off;
//   2. change-mask parity messages (§7.4) — masks vs full blocks;
//   3. group size G — the space / degraded-cost / reliability trade that
//      the 1/2-RADD row of the evaluation is one point of;
//   4. one-phase vs two-phase commit (§6).

#include <cstdio>

#include "common/format.h"
#include "core/radd.h"
#include "reliability/reliability.h"
#include "schemes/scheme.h"
#include "txn/commit.h"

using namespace radd;

namespace {

Block Pat(uint64_t seed, size_t size) {
  Block b(size);
  b.FillPattern(seed);
  return b;
}

}  // namespace

int main() {
  CostModel cost;

  // ---- 1. Materialization --------------------------------------------------
  TextTable t1("Ablation 1: materialize reconstructed values into the spare "
               "(cost of the 2nd..Nth degraded read, msec)");
  t1.SetHeader({"variant", "1st read", "2nd read", "10th read"});
  for (bool materialize : {true, false}) {
    RaddConfig config;
    config.group_size = 8;
    config.rows = 10;
    config.block_size = 512;
    config.materialize_on_degraded_read = materialize;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(10, sc);
    RaddGroup radd(&cluster, config);
    radd.Write(radd.SiteOfMember(2), 2, 0, Pat(1, 512));
    cluster.CrashSite(radd.SiteOfMember(2));
    SiteId client = radd.SiteOfMember(0);
    std::vector<double> costs;
    for (int i = 0; i < 10; ++i) {
      OpResult r = radd.Read(client, 2, 0);
      costs.push_back(cost.Price(r.counts));
    }
    t1.AddRow({materialize ? "materialize (paper)" : "always reconstruct",
               FormatDouble(costs[0], 0), FormatDouble(costs[1], 0),
               FormatDouble(costs[9], 0)});
  }
  t1.Print();

  // ---- 2. Change masks -------------------------------------------------------
  TextTable t2("\nAblation 2: parity message encoding (bytes on the wire "
               "per 100-byte record update in a 4 KB block)");
  t2.SetHeader({"encoding", "bytes/update"});
  for (bool masks : {true, false}) {
    RaddConfig config;
    config.group_size = 8;
    config.rows = 10;
    config.use_change_masks = masks;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(10, sc);
    RaddGroup radd(&cluster, config);
    Block page(config.block_size);
    radd.Write(radd.SiteOfMember(0), 0, 0, page);
    uint64_t before = radd.stats().Get("radd.bytes.parity");
    Block updated = page;
    for (size_t i = 500; i < 600; ++i) updated[i] = 0xAA;
    radd.Write(radd.SiteOfMember(0), 0, 0, updated);
    uint64_t bytes = radd.stats().Get("radd.bytes.parity") - before;
    t2.AddRow({masks ? "change mask (paper §7.4)" : "full block",
               std::to_string(bytes)});
  }
  t2.Print();

  // ---- 3. Group size ---------------------------------------------------------
  TextTable t3("\nAblation 3: group size G — space vs degraded cost vs "
               "reliability (cautious conventional)");
  t3.SetHeader({"G", "space ovhd", "degraded read msec", "MTTU h",
                "MTTF y (refined)"});
  const Environment& env = PaperEnvironments()[1];
  for (int g : {2, 4, 8, 16}) {
    RaddConfig config;
    config.group_size = g;
    config.rows = static_cast<BlockNum>(g + 2);
    config.block_size = 512;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(g + 2, sc);
    RaddGroup radd(&cluster, config);
    radd.Write(radd.SiteOfMember(1), 1, 0, Pat(1, 512));
    cluster.CrashSite(radd.SiteOfMember(1));
    BlockNum row = radd.layout().DataToRow(1, 0);
    SiteId probe = radd.SiteOfMember(
        static_cast<int>(radd.layout().SpareSite(row)));
    OpResult r = radd.Read(probe, 1, 0);
    AnalyticModel model(env, g);
    t3.AddRow({std::to_string(g), FormatDouble(200.0 / g, 1) + " %",
               FormatDouble(cost.Price(r.counts), 0),
               FormatDouble(model.MttuHours(SchemeKind::kRadd), 0),
               FormatDouble(
                   model.MttfHoursRefined(SchemeKind::kRadd) / 8760, 1)});
  }
  t3.Print();

  // ---- 4. Commit protocol ----------------------------------------------------
  TextTable t4("\nAblation 4: one-phase vs two-phase commit (3 slaves, "
               "1 write each)");
  t4.SetHeader({"protocol", "messages", "rounds"});
  {
    RaddConfig config;
    config.group_size = 8;
    config.rows = 10;
    config.block_size = 512;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(10, sc);
    RaddGroup radd(&cluster, config);
    DistributedTxnCoordinator coord(&radd, radd.SiteOfMember(0));
    std::vector<SlaveWork> work = {{1, {{0, Pat(1, 512)}}},
                                   {2, {{0, Pat(2, 512)}}},
                                   {3, {{0, Pat(3, 512)}}}};
    CommitOutcome one = coord.Run(CommitProtocol::kOnePhase, work);
    CommitOutcome two = coord.Run(CommitProtocol::kTwoPhase, work);
    t4.AddRow({"one-phase (paper §6)", std::to_string(one.messages),
               std::to_string(one.rounds)});
    t4.AddRow({"two-phase", std::to_string(two.messages),
               std::to_string(two.rounds)});
  }
  t4.Print();

  // ---- 5. Spare fraction (§7.2's "future exercise") --------------------------
  TextTable t5("\nAblation 5: reduced spare allocation (§7.2) — space vs "
               "write availability during a site failure");
  t5.SetHeader({"spare fraction", "space ovhd", "degraded writes OK",
                "repeat degraded read msec"});
  for (double f : {1.0, 0.5, 0.25, 0.0}) {
    RaddConfig config;
    config.group_size = 8;
    config.rows = 100;
    config.block_size = 512;
    config.spare_fraction = f;
    SiteConfig sc{1, config.rows, config.block_size};
    Cluster cluster(10, sc);
    RaddGroup radd(&cluster, config);
    for (BlockNum i = 0; i < radd.DataBlocksPerMember(); ++i) {
      radd.Write(radd.SiteOfMember(1), 1, i, Pat(i, 512));
    }
    cluster.CrashSite(radd.SiteOfMember(1));
    SiteId client = radd.SiteOfMember(4);
    int ok = 0;
    for (BlockNum i = 0; i < radd.DataBlocksPerMember(); ++i) {
      if (radd.Write(client, 1, i, Pat(900 + i, 512)).ok()) ++ok;
    }
    radd.Read(client, 1, 0);  // materialize if possible
    OpResult repeat = radd.Read(client, 1, 0);
    t5.AddRow({FormatDouble(f, 2),
               FormatDouble(100.0 * (1 + f) / config.group_size, 1) + " %",
               std::to_string(ok) + "/" +
                   std::to_string(radd.DataBlocksPerMember()),
               FormatDouble(cost.Price(repeat.counts), 0)});
  }
  t5.Print();
  std::printf(
      "\nThe paper left this analysis \"as a future exercise\" (§7.2):\n"
      "halving the spares saves half the spare space (overhead 25%% ->\n"
      "18.75%% at G=8) at the price of blocking a matching fraction of\n"
      "writes whenever a site is down, and losing the cheap repeat-read\n"
      "path for unspared rows.\n");
  return 0;
}
