// Operation latency through the message-driven protocol layer — the
// dimension the paper's additive cost model cannot see — plus behaviour
// under increasing message loss (§5).

#include <cstdio>

#include "common/format.h"
#include "core/node.h"

using namespace radd;

namespace {

struct System {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<RaddNodeSystem> nodes;
  RaddConfig config;

  explicit System(double drop) {
    config.group_size = 8;
    config.rows = 20;
    config.block_size = 1024;
    NetworkModel nm;
    nm.drop_probability = drop;
    net = std::make_unique<Network>(&sim, nm, 0x11);
    cluster = std::make_unique<Cluster>(
        10, SiteConfig{1, config.rows, config.block_size});
    nodes = std::make_unique<RaddNodeSystem>(&sim, net.get(), cluster.get(),
                                             config);
  }
  Block Pat(uint64_t seed) {
    Block b(config.block_size);
    b.FillPattern(seed);
    return b;
  }
};

}  // namespace

int main() {
  // ---- latency under a reliable network -------------------------------------
  {
    System s(0.0);
    s.nodes->Write(s.nodes->group()->SiteOfMember(2), 2, 0, s.Pat(1));

    TextTable t("Protocol-level operation latency, reliable network "
                "(disk 30 ms, one-way link 22.5 ms)");
    t.SetHeader({"operation", "latency ms", "Fig. 4 additive cost ms"});
    auto lr = s.nodes->Read(s.nodes->group()->SiteOfMember(2), 2, 0);
    t.AddRow({"local read", FormatDouble(ToMillis(lr.latency), 1), "30"});
    auto rr = s.nodes->Read(s.nodes->group()->SiteOfMember(3), 2, 0);
    t.AddRow({"remote read", FormatDouble(ToMillis(rr.latency), 1), "75"});
    auto w = s.nodes->Write(s.nodes->group()->SiteOfMember(2), 2, 0,
                            s.Pat(2));
    t.AddRow({"write (local + parity ack)",
              FormatDouble(ToMillis(w.latency), 1), "105"});

    s.cluster->CrashSite(s.nodes->group()->SiteOfMember(2));
    auto dr = s.nodes->Read(s.nodes->group()->SiteOfMember(0), 2, 0);
    t.AddRow({"degraded read (reconstruct)",
              FormatDouble(ToMillis(dr.latency), 1), "600 work"});
    s.sim.Run();
    auto dr2 = s.nodes->Read(s.nodes->group()->SiteOfMember(0), 2, 0);
    t.AddRow({"degraded read (spare hit)",
              FormatDouble(ToMillis(dr2.latency), 1), "75"});
    auto dw = s.nodes->Write(s.nodes->group()->SiteOfMember(0), 2, 0,
                             s.Pat(3));
    t.AddRow({"degraded write (spare + parity)",
              FormatDouble(ToMillis(dw.latency), 1), "150 work"});
    t.Print();
    std::printf(
        "\nNote: reconstruction latency beats its 600-ms *work* figure "
        "because\nthe G source reads proceed in parallel — the cost model "
        "sums them,\nthe protocol overlaps them.\n");
  }

  // ---- §5: loss sweep ---------------------------------------------------------
  TextTable t2("\nWrite behaviour vs message-loss probability (20 writes "
               "each; §5's retransmit-until-ack)");
  t2.SetHeader({"drop %", "success", "mean latency ms", "p95 ms",
                "parity retransmits"});
  for (double drop : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    System s(drop);
    Stats lat;
    int ok = 0;
    for (int i = 0; i < 20; ++i) {
      auto w = s.nodes->Write(s.nodes->group()->SiteOfMember(2), 2,
                              static_cast<BlockNum>(i % 8), s.Pat(i));
      if (w.status.ok()) {
        ++ok;
        lat.Observe("w", ToMillis(w.latency));
      }
    }
    s.sim.Run();
    Status inv = s.nodes->group()->VerifyInvariants();
    t2.AddRow({FormatDouble(100 * drop, 0), std::to_string(ok) + "/20",
               FormatDouble(lat.Mean("w"), 1),
               FormatDouble(lat.Percentile("w", 95), 1),
               std::to_string(
                   s.nodes->stats().Get("node.parity_retransmit")) +
                   (inv.ok() ? "" : "  INVARIANT VIOLATION")});
    if (!inv.ok()) return 1;
  }
  t2.Print();
  std::printf(
      "\nEvery run above ends with exact parity despite duplicates and\n"
      "retransmissions (UID-based idempotence, §3.2's machinery).\n");

  // ---- §2: striped parity enables parallel writes ----------------------------
  // "A RAID can support ... only a single write because of contention for
  // the parity disk ... striping the parity over all G+1 drives [lets] up
  // to G/2 writes occur in parallel." The same effect at the distributed
  // level: concurrent writes to rows with DIFFERENT parity sites overlap
  // fully; writes whose rows all park their parity on ONE site queue at
  // that site's disk.
  {
    TextTable t3("\n§2's striping argument, measured: makespan of 8 "
                 "concurrent writes");
    t3.SetHeader({"row choice", "makespan ms", "vs one write (105 ms)"});
    for (bool spread : {true, false}) {
      System s(0.0);
      // Collect 8 (member, block) targets. spread: one block per member,
      // parity sites all distinct (rotating layout). contended: blocks
      // across members whose rows' parity lives at member 0.
      std::vector<std::pair<int, BlockNum>> targets;
      if (spread) {
        for (int m = 0; m < 8; ++m) targets.push_back({m, 0});
      } else {
        for (int m = 1; m < 10 && targets.size() < 8; ++m) {
          for (BlockNum i = 0;
               i < s.nodes->group()->DataBlocksPerMember() &&
               targets.size() < 8;
               ++i) {
            BlockNum row = s.nodes->layout().DataToRow(m, i);
            if (s.nodes->layout().ParitySite(row) == 0) {
              targets.push_back({m, i});
            }
          }
        }
      }
      int done = 0;
      for (size_t k = 0; k < targets.size(); ++k) {
        auto [m, i] = targets[k];
        s.nodes->AsyncWrite(s.nodes->group()->SiteOfMember(m), m, i,
                            s.Pat(k), [&done](Status st, SimTime) {
                              if (st.ok()) ++done;
                            });
      }
      SimTime start_t = s.sim.Now();
      s.sim.Run();
      double makespan = ToMillis(s.sim.Now() - start_t);
      t3.AddRow({spread ? "8 rows, 8 distinct parity sites"
                        : "8 rows, parity all at one site",
                 FormatDouble(makespan, 1),
                 FormatDouble(makespan / 105.0, 2) + "x"});
      if (done != 8) return 1;
    }
    t3.Print();
    std::printf(
        "\nRotating the parity placement (Level-5 style, Fig. 1) keeps\n"
        "concurrent writes from queuing at one parity site's disk.\n");
  }
  return 0;
}
