// Figure 3 reproduction: the symbolic operation counts per scheme and
// scenario, *measured* by executing each scheme's real implementation and
// counting physical operations — printed next to the paper's formulas.

#include <cstdio>

#include "bench/bench_util.h"

using namespace radd;

int main() {
  const int g = 8;
  auto schemes = MakeAllSchemes(g);

  TextTable t("A Performance Comparison (paper Figure 3), measured at G = 8");
  std::vector<std::string> header = {"scenario"};
  for (const std::string& name : bench::SchemeOrder()) header.push_back(name);
  t.SetHeader(header);

  for (Scenario sc : AllScenarios()) {
    std::vector<std::string> measured = {std::string(ScenarioName(sc)) +
                                         " (measured)"};
    for (const std::string& name : bench::SchemeOrder()) {
      for (const auto& s : schemes) {
        if (s->name() != name) continue;
        std::optional<OpCounts> counts = s->Measure(sc);
        measured.push_back(counts ? counts->ToFormula() : "-");
      }
    }
    t.AddRow(measured);
    std::vector<std::string> paper = {"  (paper)"};
    for (const std::string& f : bench::PaperFigure3().at(sc)) {
      paper.push_back(f);
    }
    t.AddRow(paper);
    t.AddRule();
  }
  t.Print();

  std::printf(
      "\nDeviations from the paper's grid (all analyzed in EXPERIMENTS.md):\n"
      "  * 'previously reconstructed read': the paper counts both the spare\n"
      "    and the normal block (R+RR / 2*R); our spare-first protocol\n"
      "    needs only the spare read.\n"
      "  * C-RAID disk-failure write: the paper's Fig. 3 formula (2W+2RW)\n"
      "    disagrees with its own Fig. 4 number (165 = 3W+RW); our measured\n"
      "    count matches Fig. 4.\n"
      "  * C-RAID site-failure write: we count the local-RAID write\n"
      "    amplification at the spare and parity sites (2W+2RW); Fig. 3\n"
      "    omits it (2RW) and Fig. 4 prints 105, matching neither.\n");
  return 0;
}
