// §3.4 reproduction: crash-recovery cost of a WAL DBMS versus a
// no-overwrite (POSTGRES-style) storage manager on a RADD, under local
// restart and under a site failure (remote restart through
// reconstruction).
//
// The paper's argument: WAL recovery must read the log — G remote reads
// per block when the site is down — so "a standard WAL technique used in
// conjunction with a RADD is unlikely to increase availability" for short
// site failures, while a no-overwrite manager has no recovery pass at all.

#include <cstdio>

#include "common/format.h"
#include "core/radd.h"
#include "schemes/scheme.h"  // CostModel
#include "txn/storage_manager.h"

using namespace radd;

namespace {

std::vector<uint8_t> Payload(int i) {
  std::string s = "record " + std::to_string(i);
  s.resize(64, '.');
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Run {
  OpCounts counts;
  double msec;
};

Run Measure(bool use_wal, int txns, bool site_down) {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 150;  // 120 data blocks per member
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(config.group_size + 2, sc);
  RaddGroup radd(&cluster, config);
  CostModel cost;

  std::unique_ptr<StorageManager> sm;
  if (use_wal) {
    sm = std::make_unique<WalStorageManager>(&radd, 1, /*log=*/64,
                                             /*pages=*/32);
  } else {
    sm = std::make_unique<NoOverwriteStorageManager>(&radd, 1, 32);
  }
  for (int i = 0; i < txns; ++i) {
    TxnId t = sm->Begin();
    PageUpdate u{static_cast<BlockNum>(i) % sm->num_pages(),
                 static_cast<size_t>((i * 64) % 512), Payload(i)};
    if (!sm->Update(t, u).ok() || !sm->Commit(t).ok()) break;
  }
  sm->CrashVolatile();
  SiteId client;
  if (site_down) {
    cluster.CrashSite(radd.SiteOfMember(1));
    client = radd.SiteOfMember(4);
  } else {
    client = radd.SiteOfMember(1);
  }
  Result<OpCounts> rec = sm->Recover(client);
  if (!rec.ok()) return {OpCounts{}, -1};
  return {*rec, cost.Price(*rec)};
}

}  // namespace

int main() {
  TextTable t("§3.4: restart cost after a crash (modelled msec, "
              "R=W=30, RR=RW=75)");
  t.SetHeader({"committed txns", "WAL local", "WAL remote (site down)",
               "no-overwrite local", "no-overwrite remote"});
  for (int txns : {10, 40, 80, 160}) {
    Run wal_local = Measure(true, txns, false);
    Run wal_remote = Measure(true, txns, true);
    Run now_local = Measure(false, txns, false);
    Run now_remote = Measure(false, txns, true);
    t.AddRow({std::to_string(txns), FormatDouble(wal_local.msec, 0),
              FormatDouble(wal_remote.msec, 0),
              FormatDouble(now_local.msec, 0),
              FormatDouble(now_remote.msec, 0)});
  }
  t.Print();

  Run wal_local = Measure(true, 80, false);
  Run wal_remote = Measure(true, 80, true);
  Run now_remote = Measure(false, 80, true);
  std::printf(
      "\nWAL recovery with the site down performed %llu remote reads\n"
      "(every log/data block reconstructed with G reads); locally it was\n"
      "%llu local reads. The no-overwrite manager restarted with %llu\n"
      "total operations even while degraded.\n",
      static_cast<unsigned long long>(wal_remote.counts.remote_reads),
      static_cast<unsigned long long>(wal_local.counts.local_reads),
      static_cast<unsigned long long>(now_remote.counts.Total()));
  std::printf(
      "\nPaper's conclusions, checked:\n"
      "  remote WAL recovery >> local WAL recovery (G-read "
      "amplification): %s\n"
      "  no-overwrite restart is O(1) regardless of history: %s\n",
      wal_remote.msec > 3 * wal_local.msec ? "yes" : "NO",
      now_remote.counts.Total() <= 10 ? "yes" : "NO");
  return (wal_remote.msec > 3 * wal_local.msec &&
          now_remote.counts.Total() <= 10)
             ? 0
             : 1;
}
