// Figure 1 reproduction: the logical layout of disk blocks for G = 4
// (six sites), printed exactly the way the paper draws it, followed by a
// G = 8 excerpt.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/format.h"
#include "layout/layout.h"

using namespace radd;

namespace {

void PrintLayout(int g, BlockNum rows) {
  RaddLayout layout(g);
  TextTable t("The Logical Layout of Disk Blocks (G = " + std::to_string(g) +
              ")");
  std::vector<std::string> header = {""};
  for (int j = 0; j < layout.num_sites(); ++j) {
    header.push_back("S[" + std::to_string(j) + "]");
  }
  t.SetHeader(header);
  for (BlockNum row = 0; row < rows; ++row) {
    std::vector<std::string> cells = {"block " + std::to_string(row)};
    for (int j = 0; j < layout.num_sites(); ++j) {
      SiteId site = static_cast<SiteId>(j);
      switch (layout.RoleOf(site, row)) {
        case BlockRole::kParity:
          cells.push_back("P");
          break;
        case BlockRole::kParityQ:
          cells.push_back("Q");
          break;
        case BlockRole::kSpare:
          cells.push_back("S");
          break;
        case BlockRole::kData:
          cells.push_back(std::to_string(*layout.RowToData(site, row)));
          break;
        case BlockRole::kNone:
          cells.push_back("-");
          break;
      }
    }
    t.AddRow(cells);
  }
  t.Print();
}

}  // namespace

int main() {
  std::printf("Reproduction of paper Figure 1 (exact):\n\n");
  PrintLayout(4, 6);
  std::printf(
      "\nPer row: one parity block (P) at site K mod (G+2), one spare (S)\n"
      "at site (K+1) mod (G+2), and G data blocks numbered densely down\n"
      "each column. Verified cell-for-cell against the paper by\n"
      "LayoutFig1.ExactDataNumbering in tests/layout_test.cc.\n\n");
  std::printf("The same layout at the evaluation's G = 8 (first cycle):\n\n");
  PrintLayout(8, 10);

  // Capacity accounting (paper §3.1's composition of N*B blocks).
  RaddLayout layout(8);
  BlockNum rows = 100;
  std::printf(
      "\nComposition of %llu physical blocks per site at G = 8:\n"
      "  data blocks   : %llu  (N*B*G/(G+2))\n"
      "  parity blocks : %llu  (N*B/(G+2))\n"
      "  spare blocks  : %llu  (N*B/(G+2))\n",
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(layout.DataBlocksPerSite(rows)),
      static_cast<unsigned long long>(rows / 10),
      static_cast<unsigned long long>(rows / 10));
  return 0;
}
