// Parity-path cost of the batched parity pipeline (DESIGN.md §10) against
// the unbatched protocol, on the message-driven RaddNodeSystem.
//
// Workload: group of 8, every member runs a closed loop of concurrent
// mixed-size record updates (64..256 bytes, §7.4 accounting) against its
// hottest block — the regime the write-combining pipeline targets. Client
// == home, so W1/W2 are loopback and the parity traffic is the only thing
// on the wire: the parity messages/op and parity wire bytes/op printed
// below are exactly what batching claims to reduce. Full-block and
// multi-row write patterns are covered by the chaos suite and the unit
// tests; this bench isolates the hot-record regime.
//
// Output is JSON (one object per mode plus the off/on reduction factors);
// BENCH_parity.json in the repo root records the numbers for this machine.
// Wall-clock timings are not deterministic; everything else is.

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "core/node.h"

using namespace radd;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr int kGroupSize = 8;
constexpr int kSites = kGroupSize + 2;
constexpr BlockNum kRows = 40;
constexpr size_t kBlockSize = 4096;
constexpr int kOpsPerMember = 200;
constexpr int kOutstanding = 8;
constexpr int kHotBlocks = 1;
constexpr size_t kRecordBytes = 128;

struct RunResult {
  const char* mode;
  int ops = 0;
  int failed = 0;
  double wall_ms = 0;
  double sim_sec = 0;
  uint64_t parity_msgs = 0;
  uint64_t parity_bytes = 0;
  uint64_t frames = 0;
  uint64_t staged = 0;
};

uint64_t ParityPathMessages(const Stats& net) {
  return net.Get("net.messages.parity_update") +
         net.Get("net.messages.parity_ack") +
         net.Get("net.messages.parity_nack") +
         net.Get("net.messages.parity_batch") +
         net.Get("net.messages.parity_batch_ack");
}

uint64_t ParityPathBytes(const Stats& net) {
  return net.Get("net.bytes.parity_update") +
         net.Get("net.bytes.parity_ack") +
         net.Get("net.bytes.parity_nack") +
         net.Get("net.bytes.parity_batch") +
         net.Get("net.bytes.parity_batch_ack");
}

RunResult Run(const char* mode, bool batched) {
  RaddConfig config;
  config.group_size = kGroupSize;
  config.rows = kRows;
  config.block_size = kBlockSize;
  NodeConfig nc;
  if (batched) {
    nc.parity_batch.enabled = true;
    nc.parity_batch.max_ops = 8;
    nc.parity_batch.max_delay = Millis(100);
  }

  Simulator sim;
  Network net(&sim, NetworkModel{}, 0xbeef);
  SiteConfig sc{1, kRows, kBlockSize};
  Cluster cluster(kSites, sc);
  RaddNodeSystem sys(&sim, &net, &cluster, config, nc);

  // Hot set per member: the data indexes whose rows land on that member's
  // most common parity site, so one staging buffer sees all the traffic.
  const PlacementMap& lay = sys.layout();
  const BlockNum nblocks = sys.group()->DataBlocksPerMember();
  std::vector<std::vector<BlockNum>> hot(kSites);
  for (int m = 0; m < kSites; ++m) {
    std::map<SiteId, std::vector<BlockNum>> buckets;
    for (BlockNum i = 0; i < nblocks; ++i) {
      buckets[lay.ParitySite(lay.DataToRow(static_cast<SiteId>(m), i))]
          .push_back(i);
    }
    const std::vector<BlockNum>* best = nullptr;
    for (const auto& [ps, idxs] : buckets) {
      if (!best || idxs.size() > best->size()) best = &idxs;
    }
    hot[m] = *best;
    if (hot[m].size() > kHotBlocks) hot[m].resize(kHotBlocks);
  }

  // Running image of each hot block so every write is a record update
  // against what the disk already holds (small change mask).
  std::vector<std::vector<Block>> image(kSites);
  for (int m = 0; m < kSites; ++m) {
    image[m].assign(hot[m].size(), Block(kBlockSize));
  }

  int completed = 0, failed = 0;
  std::vector<int> issued(kSites, 0);
  std::function<void(int)> issue = [&](int m) {
    if (issued[m] >= kOpsPerMember) return;
    const int seq = issued[m]++;
    const size_t slot = static_cast<size_t>(seq) % hot[m].size();
    Block& img = image[m][slot];
    // Mixed-size record updates (64..256 bytes) against the block's hot
    // record (§7.4's record-update picture). Successive masks for the same
    // row overlap at the record's offset, so the XOR-merge stays one
    // record wide instead of growing with every contributor.
    const size_t len = kRecordBytes * (1 + static_cast<size_t>(seq) % 4) / 2;
    uint8_t rec[kRecordBytes * 2];
    for (size_t j = 0; j < len; ++j) {
      rec[j] = static_cast<uint8_t>(m * 31 + seq * 7 + j);
    }
    (void)img.WriteAt(slot * 512, rec, len);
    sys.AsyncWrite(sys.group()->SiteOfMember(m), m, hot[m][slot], Block(img),
                   [&, m](Status st, SimTime) {
                     if (st.ok()) {
                       ++completed;
                     } else {
                       ++failed;
                     }
                     issue(m);
                   });
  };

  const auto start = Clock::now();
  for (int m = 0; m < kSites; ++m) {
    for (int k = 0; k < kOutstanding; ++k) issue(m);
  }
  sim.Run();
  const double wall = MsSince(start);

  RunResult r;
  r.mode = mode;
  r.ops = completed;
  r.failed = failed;
  r.wall_ms = wall;
  r.sim_sec = ToSeconds(sim.Now());
  r.parity_msgs = ParityPathMessages(net.stats());
  r.parity_bytes = ParityPathBytes(net.stats());
  r.frames = sys.stats().Get("node.batches_sent");
  r.staged = sys.stats().Get("node.parity_staged");
  if (!sys.group()->VerifyInvariants().ok()) {
    std::fprintf(stderr, "FATAL: invariants violated in mode %s\n", mode);
    std::exit(1);
  }
  return r;
}

void Print(const RunResult& r, bool last) {
  const double ops = r.ops > 0 ? r.ops : 1;
  std::printf(
      "  {\"mode\": \"%s\", \"ops\": %d, \"failed\": %d, "
      "\"parity_msgs_per_op\": %.3f, \"parity_wire_bytes_per_op\": %.1f, "
      "\"updates_per_frame\": %.2f, \"wall_ms\": %.2f, "
      "\"ops_per_sec\": %.0f, \"sim_sec\": %.2f}%s\n",
      r.mode, r.ops, r.failed, r.parity_msgs / ops, r.parity_bytes / ops,
      r.frames > 0 ? static_cast<double>(r.staged) / r.frames : 0.0,
      r.wall_ms, r.wall_ms > 0 ? r.ops / (r.wall_ms / 1000.0) : 0.0,
      r.sim_sec, last ? "" : ",");
}

}  // namespace

int main() {
  std::printf("{\n\"block_size\": %zu,\n\"group_size\": %d,\n"
              "\"ops_per_member\": %d,\n\"outstanding\": %d,\n"
              "\"record_bytes\": %zu,\n\"results\": [\n",
              kBlockSize, kGroupSize, kOpsPerMember, kOutstanding,
              kRecordBytes);
  RunResult off = Run("unbatched", false);
  RunResult on = Run("batched", true);
  Print(off, false);
  Print(on, true);
  const double mr = on.parity_msgs > 0
                        ? (static_cast<double>(off.parity_msgs) / off.ops) /
                              (static_cast<double>(on.parity_msgs) / on.ops)
                        : 0.0;
  const double br = on.parity_bytes > 0
                        ? (static_cast<double>(off.parity_bytes) / off.ops) /
                              (static_cast<double>(on.parity_bytes) / on.ops)
                        : 0.0;
  std::printf("],\n\"reduction\": {\"messages\": %.2f, \"bytes\": %.2f}\n}\n",
              mr, br);
  return 0;
}
