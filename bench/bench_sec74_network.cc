// §7.4 reproduction: network bandwidth analysis.
//
// Claims checked:
//  1. With 4 KB blocks, 100-byte records, and blocks updated ~4 times in
//     memory before being flushed, network traffic is a small fraction of
//     disk bandwidth — the paper's arithmetic gives 400 bytes of network
//     per 8 KB of disk I/O, i.e. 1/20.
//  2. During a single site failure, reads of the down site need G remote
//     reads, so with uniform access 1/(G+2) of reads amplify by G and the
//     average read costs ~2 physical reads; with reads half the I/O load,
//     aggregate load rises by roughly 50 percent.

#include <cstdio>

#include "common/format.h"
#include "core/radd.h"
#include "workload/workload.h"

using namespace radd;

int main() {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 50;  // 40 data blocks per member
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(config.group_size + 2, sc);
  RaddGroup radd(&cluster, config);

  WorkloadConfig wc;
  wc.num_members = radd.num_members();
  wc.blocks_per_member = radd.DataBlocksPerMember();
  wc.block_size = config.block_size;
  wc.read_fraction = 0.0;  // the bandwidth claim concerns the update path
  WorkloadGenerator gen(wc, 0x74);
  BufferPoolModel pool(config.block_size, /*flush_after=*/4);
  Rng payload_rng(0x7474);

  // ---- Claim 1: update-path bandwidth -------------------------------------
  uint64_t disk_bytes = 0;
  uint64_t flushes = 0;
  uint64_t parity_bytes_before = radd.stats().Get("radd.bytes.parity");
  const int kUpdates = 4000;
  for (int i = 0; i < kUpdates; ++i) {
    Operation op = gen.Next();
    std::vector<uint8_t> payload(op.record_size);
    for (auto& b : payload) b = static_cast<uint8_t>(payload_rng.Next());
    OpResult cur = radd.Read(radd.SiteOfMember(op.member), op.member,
                             op.block);
    auto flush = pool.ApplyUpdate(op, payload, cur.data);
    if (!flush) continue;
    ++flushes;
    OpResult w = radd.Write(radd.SiteOfMember(flush->member), flush->member,
                            flush->block, flush->new_contents);
    if (!w.ok()) return 1;
    // The paper counts the block's round trip through memory: one 4 KB
    // read when it entered the pool and one 4 KB write at flush.
    disk_bytes += 2 * config.block_size;
  }
  uint64_t net_bytes =
      radd.stats().Get("radd.bytes.parity") - parity_bytes_before;

  TextTable t("§7.4 update-path bandwidth (4 KB blocks, 100-byte records, "
              "locality 4)");
  t.SetHeader({"quantity", "value"});
  t.AddRow({"flushes", std::to_string(flushes)});
  t.AddRow({"disk bytes / flush",
            FormatDouble(double(disk_bytes) / double(flushes), 0)});
  t.AddRow({"network bytes / flush",
            FormatDouble(double(net_bytes) / double(flushes), 0)});
  double ratio = double(disk_bytes) / double(net_bytes);
  t.AddRow({"disk : network ratio",
            FormatDouble(ratio, 1) + " : 1   (paper: 20 : 1)"});
  t.Print();

  // Ablation: full-block parity shipping instead of change masks.
  RaddConfig full = config;
  full.use_change_masks = false;
  Cluster cluster2(config.group_size + 2, sc);
  RaddGroup radd_full(&cluster2, full);
  Block a(config.block_size), b2(config.block_size);
  b2.FillPattern(1);
  radd_full.Write(0, 0, 0, a);
  uint64_t before = radd_full.stats().Get("radd.bytes.parity");
  radd_full.Write(0, 0, 0, b2);
  uint64_t full_block = radd_full.stats().Get("radd.bytes.parity") - before;
  std::printf(
      "\nchange-mask encoding ablation: one 400-byte-delta flush ships "
      "%llu B;\nfull-block shipping would move %llu B per update.\n",
      static_cast<unsigned long long>(net_bytes / (flushes ? flushes : 1)),
      static_cast<unsigned long long>(full_block));

  // ---- Claim 2: load during a site failure ---------------------------------
  cluster.CrashSite(radd.SiteOfMember(3));
  // Disable materialization effects on measurement by reading each block
  // once per "user read" across the whole population.
  uint64_t physical_reads = 0, logical_reads = 0;
  for (int m = 0; m < radd.num_members(); ++m) {
    for (BlockNum i = 0; i < radd.DataBlocksPerMember(); ++i) {
      SiteId client = m == 3 ? radd.SiteOfMember(0) : radd.SiteOfMember(m);
      OpResult r = radd.Read(client, m, i);
      if (!r.ok()) return 1;
      ++logical_reads;
      physical_reads += r.counts.local_reads + r.counts.remote_reads;
      // Reset the spare after each down-site read so every read pays the
      // reconstruction price (the paper's steady-flow model, without the
      // materialization optimization).
      if (m == 3) {
        BlockNum row = radd.layout().DataToRow(3, i);
        int sm = static_cast<int>(radd.layout().SpareSite(row));
        (void)cluster.site(radd.SiteOfMember(sm))
            ->store()
            ->Invalidate(row);
      }
    }
  }
  double reads_per_read =
      static_cast<double>(physical_reads) / static_cast<double>(logical_reads);
  // Writes: unaffected members cost 2 writes; the down member's cost 2
  // remote writes -> write load steady. Reads are half the load.
  double load_increase = (0.5 * reads_per_read + 0.5 * 1.0) - 1.0;

  TextTable t2("\n§7.4 aggregate load during a single site failure (G = 8, "
               "10 sites)");
  t2.SetHeader({"quantity", "value", "paper"});
  t2.AddRow({"physical reads per logical read",
             FormatDouble(reads_per_read, 2), "~2"});
  t2.AddRow({"aggregate load increase (reads = half of I/O)",
             FormatDouble(100 * load_increase, 0) + " %", "~50 %"});
  t2.Print();

  bool ok = ratio > 10 && reads_per_read > 1.5 && reads_per_read < 2.5;
  std::printf("\nshape checks: bandwidth ratio > 10:1 and ~2 reads/read: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
