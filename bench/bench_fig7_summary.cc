// Figure 7 reproduction: the paper's closing summary table — space
// overhead, average I/O cost assuming reads happen twice as often as
// writes, MTTU, and MTTF in the cautious conventional environment.

#include <cstdio>

#include "bench/bench_util.h"
#include "reliability/reliability.h"

using namespace radd;

namespace {
constexpr double kHoursPerYear = 24 * 365;
}

int main() {
  const int g = 8;
  auto schemes = MakeAllSchemes(g);
  CostModel cost;
  const Environment& env = PaperEnvironments()[1];  // cautious conventional
  AnalyticModel model(env, g);
  MonteCarlo mc(env, g, 99);

  // Paper Figure 7 (its caption mislabels it "Figure 6"): columns are
  // space %, I/O msec, MTTU years, MTTF years.
  const std::map<std::string, std::vector<double>> paper = {
      {"RAID", {25, 40, .017, 1.71}},
      {"RADD", {25, 58.3, .57, 28.5}},
      {"1/2-RADD", {50, 58.3, 1.14, 100}},
      {"C-RAID", {50, 75, .57, 500}},
      {"2D-RADD", {56.25, 80, 9.51, 500}},
      {"ROWB", {100, 58.3, 2.57, 28.5}},
  };
  const std::vector<std::string> order = {"RAID",   "RADD",    "1/2-RADD",
                                          "C-RAID", "2D-RADD", "ROWB"};

  TextTable t("Summary comparison (paper Figure 7): cautious conventional "
              "environment, reads twice as frequent as writes");
  t.SetHeader({"system", "space ovhd", "I/O cost msec (paper)",
               "MTTU years (paper)", "MTTF years (paper)"});

  bool radd_dominates_raid = false;
  double raid_io = 0, radd_io = 0, raid_mttf = 0, radd_mttf = 0;

  for (const std::string& name : order) {
    Scheme* scheme = nullptr;
    for (const auto& s : schemes) {
      if (s->name() == name) scheme = s.get();
    }
    SchemeKind kind = SchemeKind::kRadd;
    for (SchemeKind k : AllSchemeKinds()) {
      if (SchemeKindName(k) == name) kind = k;
    }

    // Average normal-operation I/O: (2 * read + 1 * write) / 3.
    auto rd = scheme->Measure(Scenario::kNoFailureRead);
    auto wr = scheme->Measure(Scenario::kNoFailureWrite);
    double io = (2 * cost.Price(*rd) + cost.Price(*wr)) / 3.0;

    double mttu_years = model.MttuHours(kind) / kHoursPerYear;
    double mttf_years = model.MttfHoursRefined(kind) / kHoursPerYear;
    if (name == "RAID") {
      raid_io = io;
      raid_mttf = mttf_years;
    }
    if (name == "RADD") {
      radd_io = io;
      radd_mttf = mttf_years;
    }

    const std::vector<double>& p = paper.at(name);
    t.AddRow({name, FormatDouble(scheme->SpaceOverheadPercent(), 2) + " %",
              FormatDouble(io, 1) + " (" + FormatDouble(p[1], 1) + ")",
              FormatDouble(mttu_years, 2) + " (" + FormatDouble(p[2], 2) +
                  ")",
              (mttf_years > 500 ? ">500" : FormatDouble(mttf_years, 2)) +
                  " (" + (p[3] >= 500 ? ">500"
                                      : p[3] >= 100
                                            ? ">100"
                                            : FormatDouble(p[3], 2)) +
                  ")"});
  }
  t.Print();

  // §8's conclusions, checked mechanically.
  radd_dominates_raid =
      radd_mttf > 5 * raid_mttf && radd_io < 1.6 * raid_io;
  std::printf(
      "\n§8 checks:\n"
      "  'RADD clearly dominates RAID' — far better reliability for a\n"
      "   modest performance degradation: %s\n"
      "   (RADD %.1f msec / %.1f y vs RAID %.1f msec / %.1f y; the paper's\n"
      "   'order of magnitude' (28.5 vs 1.71) uses its P=1 shortcut — our\n"
      "   refined model puts the gap at ~6x, same conclusion)\n",
      radd_dominates_raid ? "yes" : "NO", radd_io, radd_mttf, raid_io,
      raid_mttf);

  double half_mttu = model.MttuHours(SchemeKind::kHalfRadd);
  double twod_mttu = model.MttuHours(SchemeKind::kTwoDRadd);
  double craid_mttf = model.MttfHoursRefined(SchemeKind::kCRaid);
  bool fifty_class = half_mttu > model.MttuHours(SchemeKind::kRadd) &&
                     twod_mttu > half_mttu &&
                     craid_mttf > 100 * kHoursPerYear;
  std::printf(
      "  'three solutions near 50%% ... all offer MTTF over 100 years and\n"
      "   better MTTU than RADD': %s\n",
      fifty_class ? "yes" : "NO");
  return (radd_dominates_raid && fifty_class) ? 0 : 1;
}
