// Data-plane throughput: wall-clock rate of RaddGroup operations with the
// vectorized block kernels and the zero-copy hand-offs in place.
//
// Three modes exercise the three protocol regimes:
//   * normal      — home site up: W1-W4 writes and local reads;
//   * degraded    — home site down: spare writes, spare reads, and
//                   formula-(2) reconstructions;
//   * recovering  — home site recovering after a disaster: spare drains,
//                   reconstruction repairs, then the recovery sweep itself.
//
// Output is JSON (one object per mode) so runs can be diffed across
// revisions; BENCH_dataplane.json in the repo root records the seed-vs-new
// numbers for this machine. Timings are wall clock and hence not
// deterministic — everything else about the run (op mix, data, op counts)
// is fixed.

// Two more modes drive the message-driven protocol layer (RaddNodeSystem)
// with the batched parity pipeline off and on, so a regression in either
// protocol regime shows up in the same JSON stream.
//
// Finally, the volume modes (volume_g1, volume_g2, ...) run the §4 sharded
// data plane: N groups side by side over one shared simulator, every site
// driving a closed loop against its own site-local LBA space. The op count
// grows with the group count (constant per-group load), so the simulated
// makespan stays roughly flat while aggregate ops/simulated-second scales
// with N — the §4 load-spreading claim as a measured curve. Pass
// `--groups N` to run just one volume point.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <utility>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/radd.h"
#include "core/volume.h"

using namespace radd;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ModeResult {
  std::string mode;
  int ops = 0;
  double ms = 0;
  double mb = 0;  // payload megabytes moved through the data plane
  // Volume modes only: group count, simulated makespan, and the volume's
  // simulated-time throughput (the wall-clock fields measure host speed;
  // these measure the protocol's concurrency).
  int groups = 0;
  double sim_ms = 0;
  // Worker threads of the sharded engine (volume modes; 1 = monolithic).
  int threads = 1;
  // Extra mode-specific JSON fields, appended verbatim before the brace.
  std::string extra_json{};
};

void Print(const ModeResult& r, bool last) {
  double sec = r.ms / 1000.0;
  std::printf("  {\"mode\": \"%s\", \"ops\": %d, \"wall_ms\": %.2f, "
              "\"ops_per_sec\": %.0f, \"mb_per_sec\": %.1f",
              r.mode.c_str(), r.ops, r.ms, sec > 0 ? r.ops / sec : 0.0,
              sec > 0 ? r.mb / sec : 0.0);
  if (r.groups > 0) {
    double sim_sec = r.sim_ms / 1000.0;
    std::printf(", \"groups\": %d, \"sim_ms\": %.2f, "
                "\"ops_per_sim_sec\": %.0f",
                r.groups, r.sim_ms,
                sim_sec > 0 ? r.ops / sim_sec : 0.0);
  }
  if (r.threads > 1) std::printf(", \"threads\": %d", r.threads);
  if (!r.extra_json.empty()) std::fputs(r.extra_json.c_str(), stdout);
  std::printf("}%s\n", last ? "" : ",");
}

constexpr int kGroupSize = 8;
constexpr BlockNum kRows = 60;
constexpr size_t kBlockSize = 4096;
constexpr int kOps = 4000;

// --scheme: 1 = the paper's single XOR parity, 2 = P+Q dual parity.
int g_parities = 1;

// Protocol-layer tuning shared by every simulator-driven mode; the disk
// flags (--disk-read-ms, --disk-write-ms, --spindles, --disk-policy,
// --cache-blocks) land here. Defaults leave the legacy serial disk clock
// in place, so flag-free runs are bit-identical to earlier revisions.
NodeConfig g_node;

int NumSites() { return kGroupSize + 1 + g_parities; }

RaddConfig Config() {
  RaddConfig config;
  config.group_size = kGroupSize;
  config.parities = g_parities;
  config.rows = kRows;
  config.block_size = kBlockSize;
  return config;
}

/// Mixed read/write stream against member `home` from `client`; blocks
/// cycle so every row sees traffic.
ModeResult Drive(const char* mode, RaddGroup* group, SiteId client,
                 int home, int ops) {
  BlockNum blocks = group->DataBlocksPerMember();
  Block payload(kBlockSize);
  double mb = 0;
  auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    BlockNum index = static_cast<BlockNum>(i) % blocks;
    if (i % 3 == 0) {
      OpResult r = group->Read(client, home, index);
      if (r.ok()) mb += static_cast<double>(r.data.size()) / 1e6;
    } else {
      payload.FillPattern(static_cast<uint64_t>(i));
      OpResult r = group->Write(client, home, index, payload);
      if (r.ok()) mb += static_cast<double>(kBlockSize) / 1e6;
    }
  }
  return ModeResult{mode, ops, MsSince(start), mb};
}

ModeResult RunNormal() {
  RaddConfig config = Config();
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(NumSites(), sc);
  RaddGroup group(&cluster, config);
  return Drive("normal", &group, /*client=*/2, /*home=*/2, kOps);
}

ModeResult RunDegraded() {
  RaddConfig config = Config();
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(NumSites(), sc);
  RaddGroup group(&cluster, config);
  // Seed every block, then fail the home site: all traffic goes through
  // spares and reconstruction.
  Block b(kBlockSize);
  for (BlockNum i = 0; i < group.DataBlocksPerMember(); ++i) {
    b.FillPattern(i);
    group.Write(2, 2, i, b);
  }
  cluster.CrashSite(2);
  return Drive("degraded", &group, /*client=*/0, /*home=*/2, kOps);
}

ModeResult RunRecovering() {
  RaddConfig config = Config();
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(NumSites(), sc);
  RaddGroup group(&cluster, config);
  Block b(kBlockSize);
  for (BlockNum i = 0; i < group.DataBlocksPerMember(); ++i) {
    b.FillPattern(i);
    group.Write(2, 2, i, b);
  }
  // Fail, absorb degraded writes into the spares, then come back
  // recovering: reads drain spares, writes fetch-and-invalidate them.
  cluster.CrashSite(2);
  for (BlockNum i = 0; i < group.DataBlocksPerMember(); i += 2) {
    b.FillPattern(i + 1000);
    group.Write(0, 2, i, b);
  }
  cluster.RestoreSite(2);  // disaster-free restart -> recovering
  ModeResult r = Drive("recovering", &group, /*client=*/2, /*home=*/2,
                       kOps);
  // Include the sweep that finishes recovery in the mode's wall time.
  auto start = Clock::now();
  (void)group.RunRecovery(2);
  r.ms += MsSince(start);
  return r;
}

/// Wall-clock rate of the protocol layer: every member runs a closed loop
/// of mixed reads and writes over its own blocks (client == home), driven
/// through the simulator. `batched` toggles the parity pipeline.
ModeResult RunProtocol(const char* mode, bool batched) {
  RaddConfig config = Config();
  NodeConfig nc = g_node;
  nc.parity_batch.enabled = batched;
  SiteConfig sc{1, config.rows, config.block_size};
  Simulator sim;
  Network net(&sim, NetworkModel{}, 0xbeef);
  Cluster cluster(NumSites(), sc);
  RaddNodeSystem sys(&sim, &net, &cluster, config, nc);

  const int kSites = NumSites();
  const int kPerMember = kOps / kSites;
  constexpr int kOutstanding = 4;
  const BlockNum blocks = sys.group()->DataBlocksPerMember();
  Block payload(kBlockSize);
  double mb = 0;
  int completed = 0;
  std::vector<int> issued(kSites, 0);
  std::function<void(int)> issue = [&](int m) {
    if (issued[m] >= kPerMember) return;
    const int i = issued[m]++;
    const BlockNum index = static_cast<BlockNum>(i) % blocks;
    const SiteId site = sys.group()->SiteOfMember(m);
    if (i % 3 == 0) {
      sys.AsyncRead(site, m, index,
                    [&, m](Status st, const Block& data, SimTime) {
                      if (st.ok()) mb += static_cast<double>(data.size()) / 1e6;
                      ++completed;
                      issue(m);
                    });
    } else {
      payload.FillPattern(static_cast<uint64_t>(m * 1000 + i));
      sys.AsyncWrite(site, m, index, payload, [&, m](Status st, SimTime) {
        if (st.ok()) mb += static_cast<double>(kBlockSize) / 1e6;
        ++completed;
        issue(m);
      });
    }
  };

  auto start = Clock::now();
  for (int m = 0; m < kSites; ++m) {
    for (int k = 0; k < kOutstanding; ++k) issue(m);
  }
  sim.Run();
  return ModeResult{mode, completed, MsSince(start), mb};
}

/// Degraded protocol latency: seed one member, crash its site, then drive
/// a closed loop of reads and writes against the dead member from a
/// surviving client. Every read is a reconstruction or a spare hit and
/// every write lands on the row's spare, so the mode measures the degraded
/// tail directly: simulated-time p50/p99 of degraded reads plus the
/// node.degraded_reads per-parity-role breakdown (which decode leg served
/// each reconstruction — P, Q, both, or the materialized spare).
ModeResult RunProtocolDegraded(const char* mode) {
  RaddConfig config = Config();
  NodeConfig nc = g_node;
  SiteConfig sc{1, config.rows, config.block_size};
  Simulator sim;
  Network net(&sim, NetworkModel{}, 0xbeef);
  Cluster cluster(NumSites(), sc);
  RaddNodeSystem sys(&sim, &net, &cluster, config, nc);

  const int home = 2;
  const SiteId victim = sys.group()->SiteOfMember(home);
  const SiteId client = sys.group()->SiteOfMember(0);
  const BlockNum blocks = sys.group()->DataBlocksPerMember();
  Block payload(kBlockSize);
  for (BlockNum i = 0; i < blocks; ++i) {
    payload.FillPattern(i);
    sys.Write(victim, home, i, payload);
  }
  sim.Run();
  cluster.CrashSite(victim);

  const int degraded_ops = kOps / 4;
  constexpr int kOutstanding = 4;
  std::vector<double> read_lat;
  int issued = 0, completed = 0;
  double mb = 0;
  std::function<void()> issue = [&]() {
    if (issued >= degraded_ops) return;
    const int i = issued++;
    const BlockNum index = static_cast<BlockNum>(i) % blocks;
    if (i % 3 == 0) {
      sys.AsyncRead(client, home, index,
                    [&](Status st, const Block& data, SimTime latency) {
                      if (st.ok()) {
                        mb += static_cast<double>(data.size()) / 1e6;
                        read_lat.push_back(ToMillis(latency));
                      }
                      ++completed;
                      issue();
                    });
    } else {
      payload.FillPattern(static_cast<uint64_t>(100000 + i));
      sys.AsyncWrite(client, home, index, payload,
                     [&](Status st, SimTime) {
                       if (st.ok()) {
                         mb += static_cast<double>(kBlockSize) / 1e6;
                       }
                       ++completed;
                       issue();
                     });
    }
  };
  auto start = Clock::now();
  for (int k = 0; k < kOutstanding; ++k) issue();
  sim.Run();

  ModeResult r{mode, completed, MsSince(start), mb};
  std::sort(read_lat.begin(), read_lat.end());
  double p50 = 0, p99 = 0;
  if (!read_lat.empty()) {
    p50 = read_lat[read_lat.size() / 2];
    p99 = read_lat[static_cast<size_t>(
        0.99 * static_cast<double>(read_lat.size() - 1))];
  }
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      ", \"degraded_read_p50_ms\": %.1f, \"degraded_read_p99_ms\": %.1f"
      ", \"degraded_reads\": {\"p\": %llu, \"q\": %llu, \"pq\": %llu, "
      "\"spare\": %llu}",
      p50, p99,
      static_cast<unsigned long long>(
          sys.stats().Get("node.degraded_reads.p")),
      static_cast<unsigned long long>(
          sys.stats().Get("node.degraded_reads.q")),
      static_cast<unsigned long long>(
          sys.stats().Get("node.degraded_reads.pq")),
      static_cast<unsigned long long>(
          sys.stats().Get("node.degraded_reads.spare")));
  r.extra_json = buf;
  return r;
}

/// §4 sharded data plane: `groups` RADD groups over G+1+groups sites (one
/// drive per (group, member) pair, spread round-robin), every site running
/// a closed loop of mixed reads and writes against its own LBA space. Per-
/// group load is constant — kOps per group — so the aggregate simulated
/// throughput measures how reconstruction-free traffic spreads over
/// disjoint parity chains.
///
/// `threads` > 1 runs the same simulation on the sharded engine — one
/// simulator shard per site, synchronized at the network's one-way
/// latency — executed by a worker pool. The simulated results (ops,
/// sim_ms) are identical to the monolithic run at every thread count;
/// only wall_ms changes.
ModeResult RunVolume(int groups, int threads) {
  RaddConfig config = Config();
  const int members = NumSites();
  const int num_sites = groups == 1 ? members : members - 1 + groups;
  std::vector<int> drives(num_sites, 0);
  for (int d = 0; d < groups * members; ++d) ++drives[d % num_sites];
  Simulator sim;
  if (threads > 1) {
    sim.ConfigureShards(num_sites, NetworkModel{}.one_way_latency);
  }
  Network net(&sim, NetworkModel{}, 0xbeef);
  if (threads > 1) {
    for (int s = 0; s < num_sites; ++s) net.MapSiteToShard(s, s);
  }
  std::vector<SiteConfig> site_configs;
  site_configs.reserve(num_sites);
  for (int s = 0; s < num_sites; ++s) {
    SiteConfig sc;
    sc.num_disks = 1;
    sc.blocks_per_disk = static_cast<BlockNum>(drives[s]) * kRows;
    sc.block_size = kBlockSize;
    site_configs.push_back(sc);
  }
  Cluster cluster(site_configs);
  VolumeConfig vc;
  vc.group = config;
  vc.drives_per_site = drives;
  vc.node = g_node;
  Result<std::unique_ptr<RaddVolume>> made =
      RaddVolume::Create(&sim, &net, &cluster, vc);
  if (!made.ok()) {
    std::fprintf(stderr, "volume_g%d: %s\n", groups,
                 made.status().ToString().c_str());
    std::exit(1);
  }
  RaddVolume& vol = **made;

  const int total_ops = kOps * groups;
  const int per_site = total_ops / num_sites;
  constexpr int kOutstanding = 4;
  // Each site's closed loop is self-contained (its own tally, counter and
  // payload scratch), so concurrent shards never share mutable state; the
  // alignment keeps neighbouring sites off one cache line.
  struct alignas(64) SiteLoop {
    Block payload{kBlockSize};
    double mb = 0;
    int completed = 0;
    int issued = 0;
    std::vector<std::pair<int, SimTime>> trace;
  };
  const bool tracing = std::getenv("RADD_BENCH_TRACE") != nullptr;
  std::vector<SiteLoop> loops(static_cast<size_t>(num_sites));
  std::function<void(int)> issue = [&](int s) {
    SiteLoop& loop = loops[static_cast<size_t>(s)];
    if (loop.issued >= per_site) return;
    const int i = loop.issued++;
    const SiteId site = static_cast<SiteId>(s);
    const BlockNum lba =
        static_cast<BlockNum>(i) % vol.DataBlocksAtSite(site);
    if (i % 3 == 0) {
      vol.AsyncRead(site, site, lba,
                    [&, s, i](Status st, const Block& data, SimTime) {
                      SiteLoop& l = loops[static_cast<size_t>(s)];
                      if (st.ok()) {
                        l.mb += static_cast<double>(data.size()) / 1e6;
                      }
                      ++l.completed;
                      if (tracing) l.trace.emplace_back(i, sim.Now());
                      issue(s);
                    });
    } else {
      loop.payload.FillPattern(static_cast<uint64_t>(s * 100003 + i));
      vol.AsyncWrite(site, site, lba, loop.payload,
                     [&, s, i](Status st, SimTime) {
                       SiteLoop& l = loops[static_cast<size_t>(s)];
                       if (st.ok()) {
                         l.mb += static_cast<double>(kBlockSize) / 1e6;
                       }
                       ++l.completed;
                       if (tracing) l.trace.emplace_back(i, sim.Now());
                       issue(s);
                     });
    }
  };

  auto start = Clock::now();
  if (threads > 1) {
    // Kick off every site's loop from an event on its own shard, so all
    // issues (and their timers) are shard-confined from the first op.
    for (int s = 0; s < num_sites; ++s) {
      sim.AtShard(s, 0, [&, s]() {
        for (int k = 0; k < kOutstanding * drives[s]; ++k) issue(s);
      });
    }
    sim.RunParallel(threads);
  } else {
    for (int s = 0; s < num_sites; ++s) {
      // Constant per-drive concurrency: a site hosting drives of several
      // groups keeps each group's pipeline as full as the one-drive case.
      for (int k = 0; k < kOutstanding * drives[s]; ++k) issue(s);
    }
    sim.Run();
  }
  if (tracing) {
    if (FILE* f = std::fopen(std::getenv("RADD_BENCH_TRACE"), "w")) {
      for (int s = 0; s < num_sites; ++s) {
        for (const auto& [i, t] : loops[static_cast<size_t>(s)].trace) {
          std::fprintf(f, "s%d op%d %llu\n", s, i,
                       static_cast<unsigned long long>(t));
        }
      }
      std::fclose(f);
    }
  }
  ModeResult r;
  r.mode = "volume_g" + std::to_string(groups);
  r.ms = MsSince(start);
  for (const SiteLoop& loop : loops) {
    r.ops += loop.completed;
    r.mb += loop.mb;
  }
  r.groups = groups;
  r.sim_ms = ToMillis(sim.Now());
  r.threads = threads;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int only_groups = 0;
  int threads = 1;
  const char* scheme = "single";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      only_groups = std::atoi(argv[++i]);
      if (only_groups < 1) {
        std::fprintf(stderr, "--groups must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      scheme = argv[++i];
      if (std::strcmp(scheme, "pq") == 0) {
        g_parities = 2;
      } else if (std::strcmp(scheme, "single") != 0) {
        std::fprintf(stderr, "--scheme must be 'single' or 'pq'\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--disk-read-ms") == 0 && i + 1 < argc) {
      g_node.disk.read_latency = Millis(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--disk-write-ms") == 0 && i + 1 < argc) {
      g_node.disk.write_latency = Millis(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--spindles") == 0 && i + 1 < argc) {
      g_node.disk_sched.spindles = std::atoi(argv[++i]);
      if (g_node.disk_sched.spindles < 1) {
        std::fprintf(stderr, "--spindles must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--disk-policy") == 0 && i + 1 < argc) {
      const char* policy = argv[++i];
      if (std::strcmp(policy, "fifo") == 0) {
        g_node.disk_sched.policy = IoPolicy::kFifo;
      } else if (std::strcmp(policy, "elevator") == 0) {
        g_node.disk_sched.policy = IoPolicy::kElevator;
      } else if (std::strcmp(policy, "deadline") == 0) {
        g_node.disk_sched.policy = IoPolicy::kDeadline;
      } else {
        std::fprintf(stderr,
                     "--disk-policy must be fifo, elevator or deadline\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cache-blocks") == 0 && i + 1 < argc) {
      g_node.disk_sched.cache_blocks =
          static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scheme single|pq] [--groups N] "
                   "[--threads T] [--disk-read-ms MS] [--disk-write-ms MS] "
                   "[--spindles S] "
                   "[--disk-policy fifo|elevator|deadline] "
                   "[--cache-blocks N]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("{\n\"block_size\": %zu,\n\"group_size\": %d,\n"
              "\"scheme\": \"%s\",\n",
              kBlockSize, kGroupSize, scheme);
  if (g_node.disk_sched.modeled()) {
    const char* policy =
        g_node.disk_sched.policy == IoPolicy::kFifo ? "fifo"
        : g_node.disk_sched.policy == IoPolicy::kElevator ? "elevator"
                                                          : "deadline";
    std::printf("\"disk\": {\"read_ms\": %.0f, \"write_ms\": %.0f, "
                "\"spindles\": %d, \"policy\": \"%s\", "
                "\"cache_blocks\": %zu},\n",
                ToMillis(g_node.disk.read_latency),
                ToMillis(g_node.disk.write_latency),
                g_node.disk_sched.spindles, policy,
                g_node.disk_sched.cache_blocks);
  }
  std::printf("\"results\": [\n");
  if (only_groups > 0) {
    Print(RunVolume(only_groups, threads), true);
  } else {
    Print(RunNormal(), false);
    Print(RunDegraded(), false);
    Print(RunRecovering(), false);
    Print(RunProtocol("protocol", /*batched=*/false), false);
    Print(RunProtocol("protocol_batched", /*batched=*/true), false);
    Print(RunProtocolDegraded("protocol_degraded"), false);
    for (int g : {1, 2, 4, 8}) Print(RunVolume(g, threads), g == 8);
  }
  std::printf("]\n}\n");
  return 0;
}
