// Workload-driven comparison — the dynamic version of Figure 7: instead of
// pricing isolated scenarios, run one operation stream (2:1 reads, zipf
// 0.4) against functional RADD, 1/2-RADD, ROWB, and local-RAID instances,
// with a site/disk failure injected for the middle third of the run, and
// report time-weighted average I/O cost and availability.
//
// `--cache` runs the skew study instead: a read-heavy Zipfian stream
// (90% reads, theta 0.9) against the message-driven protocol layer at a
// range of site block-cache sizes, reporting the cache hit ratio and the
// simulated-time p50/p99 read latency per size. All numbers are simulated
// and hence deterministic.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/format.h"
#include "core/node.h"
#include "core/radd.h"
#include "core/volume.h"
#include "schemes/local_raid.h"
#include "schemes/rowb.h"
#include "schemes/scheme.h"
#include "workload/workload.h"

using namespace radd;

namespace {

constexpr size_t kBlockSize = 512;
constexpr int kMembers = 10;
constexpr BlockNum kBlocks = 24;
constexpr int kOps = 3000;

struct RunResult {
  double avg_cost_ms = 0;
  double degraded_avg_ms = 0;
  int blocked = 0;
};

Block PayloadBlock(uint64_t seed) {
  Block b(kBlockSize);
  b.FillPattern(seed);
  return b;
}

std::vector<Operation> MakeTrace() {
  WorkloadConfig wc;
  wc.num_members = kMembers;
  wc.blocks_per_member = kBlocks;
  wc.block_size = kBlockSize;
  wc.read_fraction = 2.0 / 3.0;
  wc.zipf_theta = 0.4;
  return WorkloadGenerator(wc, 0xFEED).Generate(kOps);
}

/// Drives one scheme via callbacks: op(i, member, block, is_read) returns
/// the op's priced cost, or a negative value when blocked.
template <typename Op, typename FailFn, typename RepairFn>
RunResult Drive(const std::vector<Operation>& trace, Op op, FailFn fail,
                RepairFn repair) {
  RunResult out;
  double total = 0, degraded_total = 0;
  int counted = 0, degraded_counted = 0;
  for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
    if (i == static_cast<int>(trace.size()) / 3) fail();
    if (i == 2 * static_cast<int>(trace.size()) / 3) repair();
    bool in_window = i >= static_cast<int>(trace.size()) / 3 &&
                     i < 2 * static_cast<int>(trace.size()) / 3;
    double cost = op(i, trace[size_t(i)]);
    if (cost < 0) {
      ++out.blocked;
      continue;
    }
    total += cost;
    ++counted;
    if (in_window) {
      degraded_total += cost;
      ++degraded_counted;
    }
  }
  out.avg_cost_ms = total / counted;
  out.degraded_avg_ms =
      degraded_counted > 0 ? degraded_total / degraded_counted : 0;
  return out;
}

/// The skew study: one Zipfian read-heavy stream replayed against the
/// protocol layer at several cache sizes. Every op targets its home site
/// locally, so reads price at R = 30 ms on a miss and ~0 on a hit; the
/// spread between p50 and p99 shows how much of the working set each
/// capacity holds.
int RunCacheSweep() {
  WorkloadConfig wc;
  wc.num_members = 8;
  wc.blocks_per_member = kBlocks;
  wc.block_size = kBlockSize;
  wc.read_fraction = 0.9;
  wc.zipf_theta = 0.9;
  std::vector<Operation> trace = WorkloadGenerator(wc, 0xFEED).Generate(kOps);

  TextTable t("Cache skew study: 3000 ops (90% reads, zipf 0.9) vs site "
              "block-cache capacity");
  t.SetHeader({"cache blocks", "hit ratio", "read p50 ms", "read p99 ms",
               "avg write ms"});
  for (const size_t cache :
       {size_t{0}, size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
    RaddConfig config;
    config.group_size = 8;
    config.rows = RaddLayout(config.group_size).RowsForDataBlocks(kBlocks);
    config.block_size = kBlockSize;
    NodeConfig nc;
    nc.disk_sched.cache_blocks = cache;
    SiteConfig sc{1, config.rows, kBlockSize};
    Simulator sim;
    Network net(&sim, NetworkModel{}, 0xFEED);
    Cluster cluster(10, sc);
    RaddNodeSystem sys(&sim, &net, &cluster, config, nc);

    Block b(kBlockSize);
    for (int m = 0; m < sys.group()->num_members(); ++m) {
      for (BlockNum i = 0; i < kBlocks; ++i) {
        b.FillPattern(uint64_t(m) * 1000 + i);
        if (!sys.Write(sys.group()->SiteOfMember(m), m, i, b).status.ok()) {
          std::fprintf(stderr, "cache sweep: seed write failed\n");
          return 1;
        }
      }
    }

    std::vector<double> read_ms;
    double write_total = 0;
    int writes = 0;
    for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
      const Operation& o = trace[size_t(i)];
      const int m = o.member % sys.group()->num_members();
      const SiteId home = sys.group()->SiteOfMember(m);
      if (o.IsRead()) {
        auto r = sys.Read(home, m, o.block);
        if (r.status.ok()) read_ms.push_back(ToMillis(r.latency));
      } else {
        b.FillPattern(uint64_t(i));
        auto w = sys.Write(home, m, o.block, b);
        if (w.status.ok()) {
          write_total += ToMillis(w.latency);
          ++writes;
        }
      }
    }
    std::sort(read_ms.begin(), read_ms.end());
    const double p50 = read_ms.empty() ? 0 : read_ms[read_ms.size() / 2];
    const double p99 =
        read_ms.empty()
            ? 0
            : read_ms[static_cast<size_t>(
                  0.99 * static_cast<double>(read_ms.size() - 1))];
    const RaddNodeSystem::CacheCounters cc = sys.CacheStats();
    const uint64_t looked = cc.hits + cc.misses + cc.stale_rejected;
    t.AddRow({cache == 0 ? "off" : std::to_string(cache),
              looked == 0 ? "-"
                          : FormatDouble(static_cast<double>(cc.hits) /
                                             static_cast<double>(looked),
                                         3),
              FormatDouble(p50, 1), FormatDouble(p99, 1),
              FormatDouble(writes > 0 ? write_total / writes : 0, 1)});
  }
  t.Print();
  std::printf(
      "\nReading: under zipf 0.9 a small cache already absorbs the hot\n"
      "head of the distribution — the p50 read drops from the R = 30 ms\n"
      "disk charge to a free hit — while the p99 stays at 30 ms until the\n"
      "capacity covers most of the per-site working set. Writes pay the\n"
      "full W + parity round trip regardless (write-through).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int groups = 1;
  bool cache_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      groups = std::atoi(argv[++i]);
      if (groups < 1) {
        std::fprintf(stderr, "--groups must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache_sweep = true;
    } else {
      std::fprintf(stderr, "usage: %s [--groups N] [--cache]\n", argv[0]);
      return 2;
    }
  }
  if (cache_sweep) return RunCacheSweep();
  std::vector<Operation> trace = MakeTrace();
  CostModel cost;
  TextTable t("Workload-driven comparison: 3000 ops (2:1 reads, zipf 0.4), "
              "site failure spanning the middle third");
  t.SetHeader({"system", "avg I/O ms (whole run)", "avg I/O ms (degraded)",
               "ops blocked", "Fig. 7 static avg"});

  // ---- RADD (G = 8) and 1/2-RADD (G = 4) -----------------------------------
  for (int g : {8, 4}) {
    RaddConfig config;
    config.group_size = g;
    config.rows = RaddLayout(g).RowsForDataBlocks(kBlocks);
    config.block_size = kBlockSize;
    SiteConfig sc{1, config.rows, kBlockSize};
    Cluster cluster(std::max(kMembers, g + 2), sc);
    RaddGroup radd(&cluster, config);
    auto member_of = [&](int m) { return m % radd.num_members(); };
    SiteId victim = radd.SiteOfMember(2);
    RunResult r = Drive(
        trace,
        [&](int i, const Operation& o) -> double {
          int m = member_of(o.member);
          SiteId home = radd.SiteOfMember(m);
          SiteId client = cluster.StateOf(home) == SiteState::kDown
                              ? radd.SiteOfMember((m + 1) % radd.num_members())
                              : home;
          OpResult res = o.IsRead()
                             ? radd.Read(client, m, o.block)
                             : radd.Write(client, m, o.block,
                                          PayloadBlock(uint64_t(i)));
          return res.ok() ? cost.Price(res.counts) : -1.0;
        },
        [&] { cluster.CrashSite(victim); },
        [&] {
          cluster.RestoreSite(victim);
          (void)radd.RunRecovery(2);
        });
    t.AddRow({g == 8 ? "RADD" : "1/2-RADD", FormatDouble(r.avg_cost_ms, 1),
              FormatDouble(r.degraded_avg_ms, 1), std::to_string(r.blocked),
              "55.0"});
  }

  // ---- RADD volume (§4 sharded data plane, --groups N) ----------------------
  if (groups > 1) {
    RaddConfig config;
    config.group_size = kMembers - 2;
    config.rows = RaddLayout(config.group_size).RowsForDataBlocks(kBlocks);
    config.block_size = kBlockSize;
    const int num_sites = kMembers - 1 + groups;
    std::vector<int> drives(num_sites, 0);
    for (int d = 0; d < groups * kMembers; ++d) ++drives[d % num_sites];
    std::vector<SiteConfig> site_configs;
    for (int s = 0; s < num_sites; ++s) {
      site_configs.push_back(SiteConfig{
          1, static_cast<BlockNum>(drives[s]) * config.rows, kBlockSize});
    }
    Simulator sim;
    Network net(&sim, NetworkModel{}, 0xFEED);
    Cluster cluster(site_configs);
    VolumeConfig vc;
    vc.group = config;
    vc.drives_per_site = drives;
    Result<std::unique_ptr<RaddVolume>> made =
        RaddVolume::Create(&sim, &net, &cluster, vc);
    if (!made.ok()) {
      std::fprintf(stderr, "volume: %s\n", made.status().ToString().c_str());
      return 1;
    }
    RaddVolume& vol = **made;
    // Same stream shape, homes drawn over the volume's sites.
    WorkloadConfig wc;
    wc.num_members = kMembers;
    wc.blocks_per_member = kBlocks;
    wc.block_size = kBlockSize;
    wc.read_fraction = 2.0 / 3.0;
    wc.zipf_theta = 0.4;
    wc.groups = groups;
    std::vector<Operation> vtrace =
        WorkloadGenerator(wc, 0xFEED).Generate(kOps);
    SiteId victim = 2;
    RunResult r = Drive(
        vtrace,
        [&](int i, const Operation& o) -> double {
          SiteId home = static_cast<SiteId>(o.member % num_sites);
          BlockNum lba = o.block % vol.DataBlocksAtSite(home);
          SiteId client =
              cluster.StateOf(home) == SiteState::kDown
                  ? static_cast<SiteId>((home + 1) % num_sites)
                  : home;
          Result<RaddVolume::Target> tgt = vol.Resolve(home, lba);
          if (!tgt.ok()) return -1.0;
          RaddGroup* g = vol.group(tgt->group);
          OpResult res = o.IsRead()
                             ? g->Read(client, tgt->member, tgt->index)
                             : g->Write(client, tgt->member, tgt->index,
                                        PayloadBlock(uint64_t(i)));
          return res.ok() ? cost.Price(res.counts) : -1.0;
        },
        [&] { cluster.CrashSite(victim); },
        [&] {
          cluster.RestoreSite(victim);
          // §4: every group with a drive at the victim recovers; the last
          // slice's pass marks the site up.
          std::vector<std::pair<int, int>> slices;
          for (int g = 0; g < vol.num_groups(); ++g) {
            int m = vol.group(g)->MemberAtSite(victim);
            if (m >= 0) slices.emplace_back(g, m);
          }
          for (size_t si = 0; si < slices.size(); ++si) {
            (void)vol.group(slices[si].first)
                ->RunRecovery(slices[si].second, si + 1 == slices.size());
          }
        });
    t.AddRow({"RADD volume (" + std::to_string(groups) + " groups)",
              FormatDouble(r.avg_cost_ms, 1),
              FormatDouble(r.degraded_avg_ms, 1), std::to_string(r.blocked),
              "55.0"});
  }

  // ---- ROWB -----------------------------------------------------------------
  {
    Cluster cluster(kMembers, SiteConfig{1, 2 * kBlocks, kBlockSize});
    Rowb rowb(&cluster, kBlocks, kBlockSize);
    SiteId victim = 2;
    RunResult r = Drive(
        trace,
        [&](int i, const Operation& o) -> double {
          SiteId home = static_cast<SiteId>(o.member % kMembers);
          SiteId client = cluster.StateOf(home) == SiteState::kDown
                              ? (home + 2) % kMembers
                              : home;
          OpResult res = o.IsRead()
                             ? rowb.Read(client, home, o.block)
                             : rowb.Write(client, home, o.block,
                                          PayloadBlock(uint64_t(i)));
          return res.ok() ? cost.Price(res.counts) : -1.0;
        },
        [&] { cluster.CrashSite(victim); },
        [&] {
          cluster.RestoreSite(victim);
          (void)rowb.RunRecovery(victim);
        });
    t.AddRow({"ROWB", FormatDouble(r.avg_cost_ms, 1),
              FormatDouble(r.degraded_avg_ms, 1), std::to_string(r.blocked),
              "55.0"});
  }

  // ---- local RAID (no cross-site protection: a disk failure instead) --------
  {
    DiskArray disks(10, 4 * kBlocks, kBlockSize);
    LocalRaid raid(&disks, LocalRaidConfig{8, true});
    int victim_disk = 3;
    OpCounts last = raid.PhysicalOps();
    RunResult r = Drive(
        trace,
        [&](int i, const Operation& o) -> double {
          BlockNum logical =
              (static_cast<BlockNum>(o.member) * kBlocks + o.block) %
              raid.total_blocks();
          Status st = o.IsRead()
                          ? raid.Read(logical).status()
                          : raid.Write(logical, PayloadBlock(uint64_t(i)),
                                       Uid::Make(0, uint64_t(i) + 1));
          OpCounts now = raid.PhysicalOps();
          OpCounts delta = now - last;
          last = now;
          return st.ok() ? cost.Price(delta) : -1.0;
        },
        [&] { raid.FailDisk(victim_disk); },
        [&] { (void)raid.Rebuild(); });
    t.AddRow({"RAID (disk failure only)", FormatDouble(r.avg_cost_ms, 1),
              FormatDouble(r.degraded_avg_ms, 1), std::to_string(r.blocked),
              "40.0"});
  }

  t.Print();
  std::printf(
      "\nReading: RAID stays cheapest but would have been *unavailable*\n"
      "for the whole middle third had the failure been a site rather than\n"
      "a disk; RADD pays degraded-mode reconstruction only for the down\n"
      "member's 1/%d of accesses, so its time-weighted average stays close\n"
      "to its normal cost; ROWB's degraded ops are cheapest but cost 4x\n"
      "the storage of RADD.\n",
      kMembers);
  return 0;
}
