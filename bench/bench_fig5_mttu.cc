// Figure 5 reproduction: mean time to unavailability (MTTU) of a specific
// data item. Three columns: the paper's formula (3) family, the paper's
// printed values, and a Monte-Carlo estimate of the same quantity from an
// explicit failure-process simulation.

#include <cstdio>

#include "bench/bench_util.h"
#include "reliability/reliability.h"

using namespace radd;

int main() {
  const int g = 8;
  const Environment& env = PaperEnvironments()[0];

  TextTable t2("Reliability Constants (paper Table 2)");
  t2.SetHeader({"constant", "cautious RAID", "cautious conv.", "normal RAID",
                "normal conv."});
  auto row = [&](const std::string& name, auto get) {
    std::vector<std::string> cells = {name};
    for (const Environment& e : PaperEnvironments()) cells.push_back(get(e));
    t2.AddRow(cells);
  };
  row("disk-MTTF", [](const Environment& e) {
    return FormatDouble(e.disk_mttf, 0) + " h";
  });
  row("disk-MTTR", [](const Environment& e) {
    return FormatDouble(e.disk_mttr, 0) + " h";
  });
  row("site-MTTF", [](const Environment& e) {
    return FormatDouble(e.site_mttf, 0) + " h";
  });
  row("site-MTTR", [](const Environment& e) {
    return FormatDouble(e.site_mttr * 60, 0) + " min";
  });
  row("disaster-MTTF", [](const Environment& e) {
    return FormatDouble(e.disaster_mttf, 0) + " h";
  });
  row("disaster-MTTR", [](const Environment& e) {
    return FormatDouble(e.disaster_mttr, 0) + " h";
  });
  row("N (disks/site)", [](const Environment& e) {
    return std::to_string(e.disks_per_site);
  });
  t2.Print();

  AnalyticModel model(env, g);
  MonteCarlo mc(env, g, 0x5eed);

  TextTable t("\nMTTU for the Various Systems (paper Figure 5), G = 8; "
              "identical in all four environments");
  t.SetHeader({"system", "formula (3) family", "paper", "Monte Carlo",
               "trials"});
  for (SchemeKind k : AllSchemeKinds()) {
    int trials = k == SchemeKind::kTwoDRadd ? 120 : 400;
    MonteCarlo::Estimate est = mc.EstimateMttu(k, trials);
    t.AddRow({std::string(SchemeKindName(k)),
              FormatHours(model.MttuHours(k)),
              FormatHours(bench::PaperFigure5().at(
                  std::string(SchemeKindName(k)))),
              FormatHours(est.mean_hours), std::to_string(est.trials)});
  }
  t.Print();

  std::printf(
      "\nNotes: the Monte-Carlo counts *both* orderings of the double\n"
      "failure (item's site fails during another's repair window, or vice\n"
      "versa), so it sits ~2x below formula (3), which prices one ordering;\n"
      "the ordering RAID << RADD = C-RAID < 1/2-RADD < ROWB << 2D-RADD\n"
      "matches the paper. The paper's 1/2-RADD value (10,000 h) is 2x its\n"
      "RADD value; formula (3) with G/2 gives 9,000 h.\n");

  // Mechanical shape check.
  MonteCarlo mc2(env, g, 0x31337);
  double raid = mc2.EstimateMttu(SchemeKind::kRaid, 200).mean_hours;
  double radd = mc2.EstimateMttu(SchemeKind::kRadd, 200).mean_hours;
  double rowb = mc2.EstimateMttu(SchemeKind::kRowb, 200).mean_hours;
  double twod = mc2.EstimateMttu(SchemeKind::kTwoDRadd, 60).mean_hours;
  bool shape = raid < radd && radd < rowb && rowb < twod;
  std::printf("shape check (RAID < RADD < ROWB < 2D-RADD): %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
