// Microbenchmarks (google-benchmark): the hot primitives under the
// simulation — XOR parity math, change-mask diff/encode, layout address
// arithmetic, lock manager, simulator event dispatch, and end-to-end
// RaddGroup operations.

#include <benchmark/benchmark.h>

#include "common/block.h"
#include "core/radd.h"
#include "layout/layout.h"
#include "sim/simulator.h"
#include "txn/lock_manager.h"

namespace radd {
namespace {

void BM_BlockXor4K(benchmark::State& state) {
  Block a(4096), b(4096);
  a.FillPattern(1);
  b.FillPattern(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.XorWith(b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_BlockXor4K);

void BM_ChangeMaskDiff4K(benchmark::State& state) {
  Block a(4096), b(4096);
  a.FillPattern(1);
  b = a;
  for (size_t i = 1000; i < 1100; ++i) b[i] ^= 0xFF;
  for (auto _ : state) {
    auto mask = ChangeMask::Diff(a, b);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_ChangeMaskDiff4K);

void BM_ChangeMaskEncodedSize(benchmark::State& state) {
  Block a(4096), b(4096);
  a.FillPattern(1);
  b = a;
  for (size_t i = 0; i < 4096; i += 256) b[i] ^= 1;
  auto mask = ChangeMask::Diff(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mask->EncodedSize());
  }
}
BENCHMARK(BM_ChangeMaskEncodedSize);

// --- kernel-level cases across block sizes (512 B / 4 KB / 64 KB) ----------

void BM_BlockXor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n);
  a.FillPattern(1);
  b.FillPattern(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.XorWith(b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BlockXor)->Arg(512)->Arg(4096)->Arg(65536);

void BM_XorInto(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n), dst(n);
  a.FillPattern(1);
  b.FillPattern(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(XorInto(&dst, a, b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_XorInto)->Arg(512)->Arg(4096)->Arg(65536);

void BM_BlockIsZero(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block z(n);  // all-zero: full scan, the worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.IsZero());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BlockIsZero)->Arg(512)->Arg(4096)->Arg(65536);

void BM_BlockChecksum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n);
  a.FillPattern(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Checksum());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BlockChecksum)->Arg(512)->Arg(4096)->Arg(65536);

/// Sparse: one 100-byte record update (§7.4's motivating case).
void BM_ChangeMaskDiffSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n);
  a.FillPattern(1);
  b = a;
  size_t at = n / 4;
  for (size_t i = at; i < at + 100 && i < n; ++i) b[i] ^= 0xFF;
  for (auto _ : state) {
    auto mask = ChangeMask::Diff(a, b);
    benchmark::DoNotOptimize(mask);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskDiffSparse)->Arg(512)->Arg(4096)->Arg(65536);

/// Dense: every byte differs (full-block rewrite).
void BM_ChangeMaskDiffDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n);
  a.FillPattern(1);
  b.FillPattern(2);
  for (auto _ : state) {
    auto mask = ChangeMask::Diff(a, b);
    benchmark::DoNotOptimize(mask);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskDiffDense)->Arg(512)->Arg(4096)->Arg(65536);

/// Identical blocks: the short-circuit path (no run scan at all).
void BM_ChangeMaskDiffNoop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n);
  a.FillPattern(1);
  Block b = a;
  for (auto _ : state) {
    auto mask = ChangeMask::Diff(a, b);
    benchmark::DoNotOptimize(mask->EncodedSize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskDiffNoop)->Arg(4096);

void BM_ChangeMaskEncodeSparse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n);
  a.FillPattern(1);
  b = a;
  for (size_t i = 0; i < n; i += 256) b[i] ^= 1;  // scattered single bytes
  auto mask = ChangeMask::Diff(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mask->EncodedSize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskEncodeSparse)->Arg(512)->Arg(4096)->Arg(65536);

void BM_ChangeMaskEncodeDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n);
  a.FillPattern(1);
  b.FillPattern(2);
  auto mask = ChangeMask::Diff(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mask->EncodedSize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskEncodeDense)->Arg(512)->Arg(4096)->Arg(65536);

void BM_ChangeMaskApply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Block a(n), b(n), parity(n);
  a.FillPattern(1);
  b.FillPattern(2);
  auto mask = ChangeMask::Diff(a, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mask->ApplyTo(&parity));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ChangeMaskApply)->Arg(512)->Arg(4096)->Arg(65536);

void BM_LayoutDataToRow(benchmark::State& state) {
  RaddLayout layout(8);
  BlockNum i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.DataToRow(3, i++ % 4096));
  }
}
BENCHMARK(BM_LayoutDataToRow);

void BM_LayoutRoleOf(benchmark::State& state) {
  RaddLayout layout(8);
  BlockNum r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.RoleOf(static_cast<SiteId>(r % 10),
                                           r % 4096));
    ++r;
  }
}
BENCHMARK(BM_LayoutRoleOf);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  TxnId txn = 1;
  for (auto _ : state) {
    LockKey k{0, txn % 64};
    lm.Acquire(txn, k, LockMode::kExclusive);
    lm.Release(txn, k);
    ++txn;
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<SimTime>(i), [] {});
    }
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_RaddNormalWrite(benchmark::State& state) {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 20;
  config.block_size = 4096;
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(10, sc);
  RaddGroup group(&cluster, config);
  Block b(4096);
  uint64_t seed = 0;
  for (auto _ : state) {
    b.FillPattern(seed++);
    benchmark::DoNotOptimize(group.Write(2, 2, 0, b));
  }
}
BENCHMARK(BM_RaddNormalWrite);

void BM_RaddDegradedRead(benchmark::State& state) {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 20;
  config.block_size = 4096;
  config.materialize_on_degraded_read = false;  // measure reconstruction
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(10, sc);
  RaddGroup group(&cluster, config);
  Block b(4096);
  b.FillPattern(7);
  group.Write(2, 2, 0, b);
  cluster.CrashSite(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.Read(0, 2, 0));
  }
}
BENCHMARK(BM_RaddDegradedRead);

void BM_RecoverySweep(benchmark::State& state) {
  RaddConfig config;
  config.group_size = 8;
  config.rows = static_cast<BlockNum>(state.range(0));
  config.block_size = 1024;
  SiteConfig sc{1, config.rows, config.block_size};
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster(10, sc);
    RaddGroup group(&cluster, config);
    Block b(1024);
    b.FillPattern(1);
    for (BlockNum i = 0; i < group.DataBlocksPerMember(); ++i) {
      group.Write(2, 2, i, b);
    }
    cluster.DisasterSite(2);
    cluster.RestoreSite(2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(group.RunRecovery(2));
  }
}
BENCHMARK(BM_RecoverySweep)->Arg(20)->Arg(100);

}  // namespace
}  // namespace radd

BENCHMARK_MAIN();
