// Figure 4 reproduction: the numerical cost comparison. Each cell prices
// the *measured* operation counts of Figure 3 with Table 1's constants
// (R = W = 30 msec, RR = RW = 75 msec, from [LAZO86]); the paper's
// printed number follows in parentheses where it differs.

#include <cstdio>

#include "bench/bench_util.h"

using namespace radd;

int main() {
  const int g = 8;
  auto schemes = MakeAllSchemes(g);
  CostModel cost;

  TextTable t1("Some Cost Parameters (paper Table 1 + §7.3 constants)");
  t1.SetHeader({"Parameter", "Cost"});
  t1.AddRow({"local read (R)", bench::Msec(cost.r) + " msec"});
  t1.AddRow({"local write (W)", bench::Msec(cost.w) + " msec"});
  t1.AddRow({"remote read (RR)", bench::Msec(cost.rr) + " msec"});
  t1.AddRow({"remote write (RW)", bench::Msec(cost.rw) + " msec"});
  t1.Print();

  TextTable t("\nA Numerical Cost Comparison (paper Figure 4), msec at "
              "G = 8; (paper) shown where it differs");
  std::vector<std::string> header = {"scenario"};
  for (const std::string& name : bench::SchemeOrder()) header.push_back(name);
  t.SetHeader(header);

  int agreements = 0, cells = 0;
  for (Scenario sc : AllScenarios()) {
    std::vector<std::string> row = {std::string(ScenarioName(sc))};
    const std::vector<double>& paper = bench::PaperFigure4().at(sc);
    size_t col = 0;
    for (const std::string& name : bench::SchemeOrder()) {
      for (const auto& s : schemes) {
        if (s->name() != name) continue;
        std::optional<OpCounts> counts = s->Measure(sc);
        double paper_v = paper[col];
        if (!counts) {
          row.push_back(paper_v < 0 ? "-" : "-(!)");
          if (paper_v < 0) ++agreements;
          ++cells;
          break;
        }
        double v = cost.Price(*counts);
        ++cells;
        if (paper_v >= 0 && v == paper_v) {
          row.push_back(bench::Msec(v));
          ++agreements;
        } else {
          row.push_back(bench::Msec(v) + " (" +
                        (paper_v < 0 ? "-" : bench::Msec(paper_v)) + ")");
        }
        break;
      }
      ++col;
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\n%d / %d cells match the paper exactly; every deviation is "
              "itemized in EXPERIMENTS.md.\n",
              agreements, cells);

  // The paper's qualitative claims, checked mechanically.
  auto price = [&](const char* name, Scenario sc) -> double {
    for (const auto& s : schemes) {
      if (s->name() == name) {
        auto c = s->Measure(sc);
        return c ? cost.Price(*c) : -1;
      }
    }
    return -1;
  };
  bool raid_fastest_writes =
      price("RAID", Scenario::kNoFailureWrite) <
      price("RADD", Scenario::kNoFailureWrite);
  bool rowb_best_degraded =
      price("ROWB", Scenario::kSiteFailureRead) <
      price("RADD", Scenario::kSiteFailureRead);
  bool twod_most_expensive =
      price("2D-RADD", Scenario::kNoFailureWrite) >=
          price("RADD", Scenario::kNoFailureWrite) &&
      price("2D-RADD", Scenario::kSiteFailureWrite) >=
          price("RADD", Scenario::kSiteFailureWrite);
  std::printf(
      "\nShape checks (§7.3): RAID cheapest normal writes: %s; ROWB superb "
      "during failures: %s;\n2D-RADD high cost everywhere: %s\n",
      raid_fastest_writes ? "yes" : "NO", rowb_best_degraded ? "yes" : "NO",
      twod_most_expensive ? "yes" : "NO");
  return (raid_fastest_writes && rowb_best_degraded && twod_most_expensive)
             ? 0
             : 1;
}
