// Figure 2 reproduction: space overhead of the six schemes at G = 8, with
// one spare block per parity block — computed from each scheme's actual
// layout, not hard-coded.

#include <cstdio>

#include "bench/bench_util.h"
#include "layout/layout.h"

using namespace radd;

int main() {
  auto schemes = MakeAllSchemes(8);
  const std::map<std::string, double> paper = {
      {"RADD", 25.0},    {"ROWB", 100.0},   {"RAID", 25.0},
      {"C-RAID", 56.25}, {"2D-RADD", 50.0}, {"1/2-RADD", 50.0},
  };

  TextTable t("A Space Comparison (paper Figure 2), G = 8");
  t.SetHeader({"System", "Space Overhead (measured)", "Paper"});
  for (const std::string& name : bench::SchemeOrder()) {
    for (const auto& s : schemes) {
      if (s->name() != name) continue;
      t.AddRow({name, FormatDouble(s->SpaceOverheadPercent(), 2) + " %",
                FormatDouble(paper.at(name), 2) + " %"});
    }
  }
  t.Print();

  // Sweep the overhead across group sizes (the space/availability knob the
  // 1/2-RADD row is one point of).
  TextTable sweep("\nRADD space overhead vs group size (2 extra blocks per "
                  "G data blocks)");
  sweep.SetHeader({"G", "sites", "overhead"});
  for (int g : {1, 2, 4, 8, 16, 32}) {
    sweep.AddRow({std::to_string(g), std::to_string(g + 2),
                  FormatDouble(200.0 / g, 2) + " %"});
  }
  sweep.Print();

  // §4: verify that heterogeneous configurations pack without waste.
  GroupAssigner assigner(8);
  // 19 sites, 30 logical drives total (= 3 groups of 10), A = 3, and no
  // site above A — the §4 preconditions.
  std::vector<BlockNum> capacities = {300, 300, 200, 200, 200, 200, 200,
                                      200, 200, 100, 100, 100, 100, 100,
                                      100, 100, 100, 100, 100};
  Result<std::vector<DriveGroup>> groups =
      assigner.AssignBlocks(capacities, 100);
  long total = 0;
  for (BlockNum c : capacities) total += static_cast<long>(c);
  std::printf(
      "\n§4 grouping check: %zu sites totalling %ld blocks -> %s (%zu "
      "groups of 10 logical drives, zero wasted blocks)\n",
      capacities.size(), total,
      groups.ok() ? "packed" : groups.status().ToString().c_str(),
      groups.ok() ? groups->size() : 0);
  return groups.ok() ? 0 : 1;
}
