// Transport driver: differential testing, socket chaos and benchmarking
// for the two transport backends (DES frames vs real TCP sockets).
//
//   transport_main --diff  [--seeds N]    # per seed: run the same op
//                                         # schedule through the DES
//                                         # backend and the socket backend
//                                         # over a clean network; the final
//                                         # store hashes must be equal
//   transport_main --chaos [--seeds N]    # per seed: socket backend
//                                         # through the lossy proxy
//                                         # (drop/truncate/bitflip/dup/
//                                         # delay); the acked-write ledger
//                                         # must stay clean
//   transport_main --bench [--out FILE]   # p50/p99 write->ack latency and
//                                         # throughput for both backends,
//                                         # written as BENCH_transport.json
//
// Exit code 0 only if every invariant held. Defaults: --diff 10 seeds,
// --chaos 40 seeds (the robustness floor the CI smoke relies on).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fault/netshim.h"
#include "net/transport_harness.h"

namespace {

uint64_t ParseU64(const char* s) {
  return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

radd::HarnessConfig BaseConfig(uint64_t seed, int ops) {
  radd::HarnessConfig cfg;
  cfg.seed = seed;
  cfg.num_ops = ops;
  cfg.socket.seed = seed ^ 0x50cce7;
  return cfg;
}

int RunDiff(uint64_t seeds, int ops) {
  int failures = 0;
  for (uint64_t s = 1; s <= seeds; ++s) {
    radd::HarnessConfig cfg = BaseConfig(s, ops);
    radd::HarnessResult des = radd::RunDesHarness(cfg);
    radd::HarnessResult sock = radd::RunSocketHarness(cfg);
    const bool hash_eq = des.store_hash == sock.store_hash;
    const bool all_acked = des.ops_acked == des.ops_issued &&
                           sock.ops_acked == sock.ops_issued;
    const bool ok = hash_eq && all_acked && des.ledger_ok && sock.ledger_ok &&
                    des.frames_rejected == 0 && sock.frames_rejected == 0;
    if (!ok) {
      ++failures;
      std::printf(
          "DIFF FAIL seed=%llu des_hash=%016llx sock_hash=%016llx "
          "des_acked=%d/%d sock_acked=%d/%d des_ledger=%s sock_ledger=%s "
          "rejected=%llu/%llu\n",
          static_cast<unsigned long long>(s),
          static_cast<unsigned long long>(des.store_hash),
          static_cast<unsigned long long>(sock.store_hash), des.ops_acked,
          des.ops_issued, sock.ops_acked, sock.ops_issued,
          des.ledger_ok ? "ok" : des.ledger_error.c_str(),
          sock.ledger_ok ? "ok" : sock.ledger_error.c_str(),
          static_cast<unsigned long long>(des.frames_rejected),
          static_cast<unsigned long long>(sock.frames_rejected));
    } else {
      std::printf("diff seed=%llu hash=%016llx acked=%d/%d identical\n",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(des.store_hash),
                  sock.ops_acked, sock.ops_issued);
    }
  }
  std::printf("%llu/%llu DES-vs-socket differentials converged\n",
              static_cast<unsigned long long>(seeds - failures),
              static_cast<unsigned long long>(seeds));
  return failures == 0 ? 0 : 1;
}

int RunChaos(uint64_t seeds, int ops) {
  int failures = 0;
  uint64_t drops = 0, truncs = 0, flips = 0, dups = 0, delays = 0;
  uint64_t rejected = 0, stale = 0, retx = 0, acked = 0, issued = 0;
  for (uint64_t s = 1; s <= seeds; ++s) {
    radd::HarnessConfig cfg = BaseConfig(s, ops);
    radd::LossyNetProxy proxy(radd::DefaultLossyMix(s));
    radd::HarnessResult r = radd::RunSocketHarness(cfg, &proxy);
    drops += proxy.planned_drops();
    truncs += proxy.planned_truncations();
    flips += proxy.planned_bitflips();
    dups += proxy.planned_dups();
    delays += proxy.planned_delays();
    rejected += r.frames_rejected;
    stale += r.stale_stream;
    issued += static_cast<uint64_t>(r.ops_issued);
    acked += static_cast<uint64_t>(r.ops_acked);
    // Under loss, unacked ops are allowed; a dirty ledger is not.
    if (!r.ledger_ok) {
      ++failures;
      std::printf("CHAOS FAIL seed=%llu: %s\n",
                  static_cast<unsigned long long>(s),
                  r.ledger_error.c_str());
    } else {
      std::printf("chaos seed=%llu acked=%d/%d rejected=%llu stale=%llu "
                  "ledger clean\n",
                  static_cast<unsigned long long>(s), r.ops_acked,
                  r.ops_issued, static_cast<unsigned long long>(r.frames_rejected),
                  static_cast<unsigned long long>(r.stale_stream));
    }
    (void)retx;
  }
  std::printf(
      "%llu/%llu lossy-proxy schedules kept the ledger clean "
      "(acked %llu/%llu ops; injected: %llu drops, %llu truncations, "
      "%llu bitflips, %llu dups, %llu delays; %llu frames rejected, "
      "%llu stale-stream fenced)\n",
      static_cast<unsigned long long>(seeds - failures),
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(drops),
      static_cast<unsigned long long>(truncs),
      static_cast<unsigned long long>(flips),
      static_cast<unsigned long long>(dups),
      static_cast<unsigned long long>(delays),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(stale));
  return failures == 0 ? 0 : 1;
}

void AppendBackendJson(std::string* out, const char* name,
                       const char* latency_domain,
                       const radd::HarnessResult& r) {
  const double p50 = Percentile(r.op_latency_us, 50);
  const double p99 = Percentile(r.op_latency_us, 99);
  const double tput =
      r.elapsed_sec > 0 ? static_cast<double>(r.ops_acked) / r.elapsed_sec : 0;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"backend\": \"%s\",\n"
      "      \"latency_domain\": \"%s\",\n"
      "      \"ops_acked\": %d,\n"
      "      \"p50_latency_us\": %.1f,\n"
      "      \"p99_latency_us\": %.1f,\n"
      "      \"wall_sec\": %.3f,\n"
      "      \"ops_per_wall_sec\": %.0f,\n"
      "      \"frames_encoded\": %llu,\n"
      "      \"frames_rejected\": %llu\n"
      "    }",
      name, latency_domain, r.ops_acked, p50, p99, r.elapsed_sec, tput,
      static_cast<unsigned long long>(r.frames_encoded),
      static_cast<unsigned long long>(r.frames_rejected));
  *out += buf;
}

int RunBench(const std::string& out_path, int ops) {
  radd::HarnessConfig cfg = BaseConfig(7, ops);
  radd::HarnessResult des = radd::RunDesHarness(cfg);
  radd::HarnessResult sock = radd::RunSocketHarness(cfg);
  radd::LossyNetProxy proxy(radd::DefaultLossyMix(7));
  radd::HarnessResult lossy = radd::RunSocketHarness(cfg, &proxy);
  if (!des.ledger_ok || !sock.ledger_ok || !lossy.ledger_ok ||
      des.store_hash != sock.store_hash) {
    std::fprintf(stderr, "bench run violated an invariant (des=%s sock=%s "
                 "lossy=%s hashes %s)\n",
                 des.ledger_ok ? "ok" : des.ledger_error.c_str(),
                 sock.ledger_ok ? "ok" : sock.ledger_error.c_str(),
                 lossy.ledger_ok ? "ok" : lossy.ledger_error.c_str(),
                 des.store_hash == sock.store_hash ? "equal" : "DIFFER");
    return 1;
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  // The socket backend runs num_sites writer threads plus per-site
  // acceptor/reader threads; on a host with fewer cores than sites the
  // threads time-slice and the latency numbers measure scheduling, not
  // the transport.
  const bool degraded =
      host_cores < static_cast<unsigned>(cfg.num_sites);
  std::string json;
  json += "{\n";
  json +=
      "  \"description\": \"Transport backends on the differential "
      "harness (DESIGN.md section 13): the same deterministic op schedule "
      "(miniature max-uid-wins replicated store speaking real RADD wire "
      "structs) through the DES frame codec and through real TCP loopback "
      "sockets. DES latencies are simulated microseconds (22.5 ms one-way "
      "model); socket latencies are wall-clock microseconds. lossy_socket "
      "runs the same schedule through the fault-injecting proxy "
      "(DefaultLossyMix) and is throughput-bound by retransmit timeouts; "
      "its ledger stayed clean.\",\n";
  json += "  \"regenerate\": \"scripts/bench.sh <runs> <build> transport "
          "(or build/tools/transport_main --bench)\",\n";
  json += "  \"host_cores\": " + std::to_string(host_cores) + ",\n";
  json += std::string("  \"degraded_host\": ") +
          (degraded ? "true" : "false") + ",\n";
  json += "  \"sites\": " + std::to_string(cfg.num_sites) + ",\n";
  json += "  \"ops\": " + std::to_string(cfg.num_ops) + ",\n";
  json += "  \"block_bytes\": " + std::to_string(cfg.block_bytes) + ",\n";
  json += "  \"results\": [\n";
  AppendBackendJson(&json, "des", "simulated_us", des);
  json += ",\n";
  AppendBackendJson(&json, "socket", "wall_us", sock);
  json += ",\n";
  AppendBackendJson(&json, "lossy_socket", "wall_us", lossy);
  json += "\n  ]\n}\n";

  if (out_path.empty() || out_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s (des_hash == sock_hash, all ledgers clean)\n",
                out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kDiff, kChaos, kBench } mode = Mode::kNone;
  uint64_t seeds = 0;
  int ops = 0;
  std::string out;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diff") == 0) {
      mode = Mode::kDiff;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      mode = Mode::kChaos;
    } else if (std::strcmp(argv[i], "--bench") == 0) {
      mode = Mode::kBench;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = ParseU64(argv[++i]);
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<int>(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --diff|--chaos|--bench [--seeds N] [--ops O] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  switch (mode) {
    case Mode::kDiff:
      return RunDiff(seeds == 0 ? 10 : seeds, ops == 0 ? 400 : ops);
    case Mode::kChaos:
      return RunChaos(seeds == 0 ? 40 : seeds, ops == 0 ? 200 : ops);
    case Mode::kBench:
      return RunBench(out, ops == 0 ? 2000 : ops);
    case Mode::kNone:
      break;
  }
  std::fprintf(stderr, "pick a mode: --diff, --chaos or --bench\n");
  return 2;
}
