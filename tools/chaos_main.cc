// Chaos driver: runs seeded random fault schedules against the full RADD
// protocol stack and checks invariants after every episode.
//
//   chaos_main --seeds 200          # seeds 1..200, exit 1 on any failure
//   chaos_main --seed 1337          # replay one schedule, print its report
//   chaos_main --seeds 50 --start 1000
//   chaos_main --seeds 200 --autopilot   # self-healing mode: no manual
//                                        # repair; each episode must
//                                        # converge to all-up on its own
//   chaos_main --seeds 200 --batch       # batched parity pipeline on, with
//                                        # extra scripted drop/dup of the
//                                        # batch frames and their acks
//   chaos_main --seeds 200 --codec       # route every protocol message
//                                        # through the packed frame codec
//                                        # (encode + CRC + decode); the
//                                        # Summary must match a codec-off
//                                        # run byte for byte
//   chaos_main --seeds 200 --threads 8   # run farm: seeds execute on 8
//                                        # worker threads; output and exit
//                                        # code are identical to --threads 1
//   chaos_main --seeds 200 --spindles 4 --disk-policy deadline
//              --cache-blocks 64         # modeled disk subsystem: per-site
//                                        # spindle queues, class-aware
//                                        # scheduling and the UID-validated
//                                        # block cache all under fault load
//   chaos_main --seeds 200 --scheme pq   # P+Q dual parity: groups grow to
//                                        # G+3 members and site-killing
//                                        # episodes gain a second
//                                        # overlapping fault — two dead
//                                        # sites at once, or a second
//                                        # strike during the first one's
//                                        # recovery
//
// Every sweep ends with a per-fault-kind table of how many faults were
// injected and how many the schedules survived (second faults of
// double-failure episodes count separately).
//
// Every schedule is deterministic in its seed: a failing seed printed by a
// bulk run reproduces bit-for-bit with --seed, at any thread count — each
// seed gets its own simulator/cluster/network stack, and reports are
// buffered and printed in seed order.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "sim/parallel_runner.h"

namespace {

uint64_t ParseU64(const char* s) {
  return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 0;
  uint64_t start = 1;
  uint64_t single = 0;
  bool have_single = false;
  int threads = 1;
  radd::ChaosConfig config;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = ParseU64(argv[++i]);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = ParseU64(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      single = ParseU64(argv[++i]);
      have_single = true;
    } else if (std::strcmp(argv[i], "--episodes") == 0 && i + 1 < argc) {
      config.plan.episodes = static_cast<int>(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      config.ops_per_episode = static_cast<int>(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      config.verbose = true;
    } else if (std::strcmp(argv[i], "--autopilot") == 0) {
      config.autopilot = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      config.node.parity_batch.enabled = true;
    } else if (std::strcmp(argv[i], "--codec") == 0) {
      config.frame_codec = true;
    } else if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      config.groups = static_cast<int>(ParseU64(argv[++i]));
      if (config.groups < 1) {
        std::fprintf(stderr, "--groups must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(ParseU64(argv[++i]));
      if (threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      const char* scheme = argv[++i];
      if (std::strcmp(scheme, "pq") == 0) {
        config.parities = 2;
        config.plan.double_faults = true;
      } else if (std::strcmp(scheme, "single") != 0) {
        std::fprintf(stderr, "--scheme must be 'single' or 'pq'\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--disk-read-ms") == 0 && i + 1 < argc) {
      config.node.disk.read_latency = radd::Millis(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--disk-write-ms") == 0 && i + 1 < argc) {
      config.node.disk.write_latency = radd::Millis(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--spindles") == 0 && i + 1 < argc) {
      config.node.disk_sched.spindles = static_cast<int>(ParseU64(argv[++i]));
      if (config.node.disk_sched.spindles < 1) {
        std::fprintf(stderr, "--spindles must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--disk-policy") == 0 && i + 1 < argc) {
      const char* policy = argv[++i];
      if (std::strcmp(policy, "fifo") == 0) {
        config.node.disk_sched.policy = radd::IoPolicy::kFifo;
      } else if (std::strcmp(policy, "elevator") == 0) {
        config.node.disk_sched.policy = radd::IoPolicy::kElevator;
      } else if (std::strcmp(policy, "deadline") == 0) {
        config.node.disk_sched.policy = radd::IoPolicy::kDeadline;
      } else {
        std::fprintf(stderr,
                     "--disk-policy must be fifo, elevator or deadline\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cache-blocks") == 0 && i + 1 < argc) {
      config.node.disk_sched.cache_blocks =
          static_cast<size_t>(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--layout") == 0 && i + 1 < argc) {
      const char* layout = argv[++i];
      if (std::strcmp(layout, "declustered") == 0) {
        config.layout = radd::PlacementKind::kDeclustered;
      } else if (std::strcmp(layout, "rotated") != 0) {
        std::fprintf(stderr, "--layout must be 'rotated' or 'declustered'\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc) {
      config.sites = static_cast<int>(ParseU64(argv[++i]));
    } else if (std::strcmp(argv[i], "--expand") == 0) {
      config.expand = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--start S] [--seed X] "
                   "[--scheme single|pq] [--groups G] [--episodes E] "
                   "[--ops O] [--autopilot] [--batch] [--codec] "
                   "[--threads T] [--disk-read-ms MS] [--disk-write-ms MS] "
                   "[--spindles S] [--disk-policy fifo|elevator|deadline] "
                   "[--cache-blocks N] "
                   "[--layout rotated|declustered] [--sites C] [--expand] "
                   "[--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (config.layout != radd::PlacementKind::kDeclustered) {
    if (config.expand) {
      std::fprintf(stderr, "--expand requires --layout declustered\n");
      return 2;
    }
  } else if (config.sites <
             config.group_size + 1 + config.parities) {
    std::fprintf(stderr,
                 "--sites must be >= G+1+parities = %d for declustered "
                 "placement\n",
                 config.group_size + 1 + config.parities);
    return 2;
  }
  if (config.expand && config.parities != 1) {
    std::fprintf(stderr, "--expand supports only --scheme single\n");
    return 2;
  }
  if (!have_single && seeds == 0) seeds = 200;

  if (have_single) {
    radd::ChaosHarness harness(config);
    radd::ChaosReport r = harness.Run(single);
    std::printf("%s\n", r.Summary().c_str());
    if (r.frame_codec && r.frames_rejected > 0) {
      std::printf("CODEC FAIL: %llu frames rejected (codec must be "
                  "lossless)\n",
                  static_cast<unsigned long long>(r.frames_rejected));
      return 1;
    }
    return r.ok ? 0 : 1;
  }

  // Run farm: every seed is an independent job with its own harness (and
  // thus its own simulator, cluster, network and protocol stack — no
  // shared mutable state between jobs). Reports are buffered and printed
  // in seed order below, so stdout is byte-identical at any thread count.
  std::vector<radd::ChaosReport> reports(seeds);
  radd::ParallelRunner::Map(threads, static_cast<int>(seeds),
                            [&](int i) {
                              radd::ChaosHarness harness(config);
                              reports[static_cast<size_t>(i)] =
                                  harness.Run(start + static_cast<uint64_t>(i));
                            });

  uint64_t failures = 0;
  radd::SimTime conv_max = 0;
  uint64_t conv_total = 0, conv_n = 0, sweep_rows = 0, false_susp = 0,
           stale = 0;
  uint64_t batches = 0, batch_retx = 0, batch_dup = 0, staged = 0,
           batch_n = 0;
  uint64_t frames_encoded = 0, frames_rejected = 0, codec_n = 0;
  std::map<std::string, uint64_t> injected, survived;
  for (uint64_t s = start; s < start + seeds; ++s) {
    radd::ChaosReport& r = reports[static_cast<size_t>(s - start)];
    for (const auto& [kind, n] : r.injected_by_kind) injected[kind] += n;
    for (const auto& [kind, n] : r.survived_by_kind) survived[kind] += n;
    if (r.frame_codec) {
      frames_encoded += r.frames_encoded;
      frames_rejected += r.frames_rejected;
      ++codec_n;
    }
    if (r.batched) {
      batches += r.batches_sent;
      batch_retx += r.batch_retransmits;
      batch_dup += r.batch_duplicates;
      staged += r.parity_staged;
      ++batch_n;
    }
    if (r.autopilot) {
      if (r.convergence_max > conv_max) conv_max = r.convergence_max;
      conv_total += r.convergence_total;
      ++conv_n;
      sweep_rows += r.sweep_rows;
      false_susp += r.false_suspicions;
      stale += r.stale_epoch_rejections;
    }
    if (!r.ok) {
      ++failures;
      std::printf("FAIL %s\n", r.Summary().c_str());
      std::printf("     reproduce with: %s --seed %llu\n", argv[0],
                  static_cast<unsigned long long>(s));
    } else if (s % 50 == 0) {
      std::printf("...%llu schedules clean so far\n",
                  static_cast<unsigned long long>(s - start + 1));
    }
  }
  if (frames_rejected > 0) {
    std::printf("CODEC FAIL: %llu frames rejected (the codec must be "
                "lossless)\n",
                static_cast<unsigned long long>(frames_rejected));
    ++failures;
  }
  std::printf("%llu/%llu schedules held all invariants\n",
              static_cast<unsigned long long>(seeds - failures),
              static_cast<unsigned long long>(seeds));
  std::printf("%-16s %9s %9s\n", "fault kind", "injected", "survived");
  for (const auto& [kind, n] : injected) {
    std::printf("%-16s %9llu %9llu\n", kind.c_str(),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(survived[kind]));
  }
  if (batch_n > 0) {
    std::printf("batched parity: %llu updates staged into %llu frames "
                "(%.2f updates/frame); %llu retransmits, "
                "%llu duplicate frames deduped\n",
                static_cast<unsigned long long>(staged),
                static_cast<unsigned long long>(batches),
                batches > 0 ? static_cast<double>(staged) /
                                  static_cast<double>(batches)
                            : 0.0,
                static_cast<unsigned long long>(batch_retx),
                static_cast<unsigned long long>(batch_dup));
  }
  if (codec_n > 0) {
    std::printf("frame codec: %llu frames encoded, %llu rejected\n",
                static_cast<unsigned long long>(frames_encoded),
                static_cast<unsigned long long>(frames_rejected));
  }
  if (config.autopilot && conv_n > 0) {
    std::printf("autopilot: worst convergence %.1f ms, total %.1f s; "
                "%llu rows swept, %llu false suspicions, "
                "%llu stale-epoch rejections\n",
                radd::ToMillis(conv_max),
                radd::ToSeconds(conv_total),
                static_cast<unsigned long long>(sweep_rows),
                static_cast<unsigned long long>(false_susp),
                static_cast<unsigned long long>(stale));
  }
  return failures == 0 ? 0 : 1;
}
