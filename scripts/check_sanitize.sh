#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UBSan and runs the full test
# suite under it. Usage: scripts/check_sanitize.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" -DRADD_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
