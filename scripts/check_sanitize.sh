#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs the full test suite.
#
# Usage: scripts/check_sanitize.sh [--tsan] [build-dir]
#   scripts/check_sanitize.sh            # AddressSanitizer + UBSan
#   scripts/check_sanitize.sh --tsan     # ThreadSanitizer: also smokes the
#                                        # parallel engine (sharded bench +
#                                        # chaos run farm) under real threads
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

mode=asan
if [ "${1:-}" = "--tsan" ]; then
  mode=tsan
  shift
fi

if [ "$mode" = "tsan" ]; then
  build="${1:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" -DRADD_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
  # Drive the parallel paths with more contention than the unit tests do:
  # multi-threaded conservative windows and the multi-seed run farm.
  "$build/bench/bench_throughput" --groups 4 --threads 4 > /dev/null
  "$build/tools/chaos_main" --seeds 12 --threads 4 > /dev/null
  echo "tsan: parallel smoke clean"
else
  build="${1:-$repo/build-asan}"
  cmake -B "$build" -S "$repo" -DRADD_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
fi
