#!/usr/bin/env bash
# Runs seeded random fault schedules against the full protocol stack and
# fails if any schedule violates an invariant or loses an acknowledged
# write. Every schedule is deterministic in its seed; a failing run prints
# the exact --seed flag that reproduces it.
#
# Usage: scripts/chaos.sh [seeds] [build-dir] [extra chaos_main flags...]
#   scripts/chaos.sh              # 200 schedules, seeds 1..200
#   scripts/chaos.sh 1000         # more schedules
#   scripts/chaos.sh 50 build --episodes 8
#   scripts/chaos.sh --autopilot  # self-healing mode (flags may lead)
#   scripts/chaos.sh 1000 --jobs      # run farm on all cores (nproc)
#   scripts/chaos.sh 1000 --jobs 8    # run farm on 8 worker threads
#   scripts/chaos.sh 200 build --scheme pq   # P+Q dual parity with
#                                            # double-failure schedules
#
# --jobs parallelizes across seeds (each seed runs its own isolated
# simulation stack); output and exit code are identical to the serial run,
# including the reproducing --seed line for any failing schedule.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
# Positional [seeds] [build-dir] prefix; anything starting with "--" (even
# in first position, e.g. `chaos.sh --autopilot`) passes through.
seeds=200
build="$repo/build"
if [ $# -gt 0 ] && [ "${1#--}" = "$1" ]; then
  seeds="$1"
  shift
  if [ $# -gt 0 ] && [ "${1#--}" = "$1" ]; then
    build="$1"
    shift
  fi
fi

# Translate --jobs [N] into chaos_main's --threads (bare --jobs = nproc).
jobs=1
passthrough=()
while [ $# -gt 0 ]; do
  if [ "$1" = "--jobs" ]; then
    shift
    if [ $# -gt 0 ] && [ "$1" -eq "$1" ] 2>/dev/null; then
      jobs="$1"
      shift
    else
      jobs="$(nproc)"
    fi
  else
    passthrough+=("$1")
    shift
  fi
done

if [ ! -x "$build/tools/chaos_main" ]; then
  cmake -B "$build" -S "$repo"
  cmake --build "$build" -j "$(nproc)" --target chaos_main
fi

exec "$build/tools/chaos_main" --seeds "$seeds" --threads "$jobs" \
  ${passthrough[0]+"${passthrough[@]}"}
