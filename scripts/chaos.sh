#!/usr/bin/env bash
# Runs seeded random fault schedules against the full protocol stack and
# fails if any schedule violates an invariant or loses an acknowledged
# write. Every schedule is deterministic in its seed; a failing run prints
# the exact --seed flag that reproduces it.
#
# Usage: scripts/chaos.sh [seeds] [build-dir] [extra chaos_main flags...]
#   scripts/chaos.sh              # 200 schedules, seeds 1..200
#   scripts/chaos.sh 1000         # more schedules
#   scripts/chaos.sh 50 build --episodes 8
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
seeds="${1:-200}"
build="${2:-$repo/build}"
shift $(($# > 2 ? 2 : $#))

if [ ! -x "$build/tools/chaos_main" ]; then
  cmake -B "$build" -S "$repo"
  cmake --build "$build" -j "$(nproc)" --target chaos_main
fi

exec "$build/tools/chaos_main" --seeds "$seeds" "$@"
