#!/usr/bin/env bash
# Rebuilds the benchmark binaries in RelWithDebInfo and regenerates the
# BENCH_*.json records in the repo root with median-of-N numbers, per the
# measurement protocol of DESIGN.md section 6: wall-clock timings are
# noisy on shared machines, so each bench runs N times and the recorded
# figure is the per-mode median. Everything except the nanoseconds (op
# mix, message counts, wire bytes) is deterministic and identical across
# runs.
#
# Usage: scripts/bench.sh [runs] [build-dir] [suite] [scheme]
#   scripts/bench.sh                # 7 runs, build in build-bench/, all suites
#   scripts/bench.sh 15             # more runs for a noisier machine
#   scripts/bench.sh 5 build parallel   # only BENCH_parallel.json
#   scripts/bench.sh 7 build classic    # only throughput + parity records
#   scripts/bench.sh 5 build transport  # only BENCH_transport.json
#   scripts/bench.sh 7 build classic pq # P+Q dual parity throughput record
#                                       # (written to BENCH_throughput_pq.json)
#   scripts/bench.sh 1 build disk       # only BENCH_disk.json (all figures
#                                       # are simulated-time, so one run
#                                       # suffices)
#   scripts/bench.sh 1 build layout     # only BENCH_layout.json (rotated vs
#                                       # declustered recovery makespan +
#                                       # expansion moved fraction; simulated
#                                       # time, one run suffices)
#
# Every record is stamped with the git SHA and UTC date it was generated
# from, plus the scheme and config (block/group size) it measured, so a
# checked-in BENCH_*.json is traceable to the revision that produced it.
#
# The `parallel` suite measures the sharded simulation engine and the
# chaos run farm (DESIGN.md section 12) at several thread counts and
# writes BENCH_parallel.json. It also records the host core count:
# wall-clock speedup is only meaningful when the host actually has the
# cores — on a single-core container the threads time-slice one CPU and
# the record documents overhead, not speedup. Simulated results (sim_ms,
# chaos verdicts) are deterministic and thread-count-invariant either
# way; that is what the test suite asserts.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
runs="${1:-7}"
build="${2:-$repo/build-bench}"
suite="${3:-all}"
scheme="${4:-single}"
case "$scheme" in
  single|pq) ;;
  *) echo "scheme must be 'single' or 'pq'" >&2; exit 2 ;;
esac

git_sha="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)"
gen_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
export GIT_SHA="$git_sha" GEN_DATE="$gen_date"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)" \
  --target bench_throughput bench_parity_batching chaos_main transport_main

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ "$suite" = all ] || [ "$suite" = classic ]; then
  for i in $(seq "$runs"); do
    echo "classic run $i/$runs ..."
    "$build/bench/bench_throughput" --scheme "$scheme" \
      > "$tmp/throughput_$i.json"
    "$build/bench/bench_parity_batching" > "$tmp/parity_$i.json"
  done

  RUNS="$runs" TMP="$tmp" REPO="$repo" SCHEME="$scheme" python3 - <<'EOF'
import json, os, statistics

runs = int(os.environ["RUNS"])
tmp = os.environ["TMP"]
repo = os.environ["REPO"]
scheme = os.environ["SCHEME"]

def stamp(doc):
    """Provenance fields every BENCH_*.json record carries."""
    doc["git_sha"] = os.environ["GIT_SHA"]
    doc["generated_utc"] = os.environ["GEN_DATE"]
    return doc

def load(prefix):
    return [json.load(open(f"{tmp}/{prefix}_{i}.json")) for i in
            range(1, runs + 1)]

def median_by_mode(docs, fields):
    """Per-mode median of `fields` across runs; other keys come from the
    first run (they are deterministic)."""
    out = []
    for idx, first in enumerate(docs[0]["results"]):
        row = dict(first)
        for f in fields:
            row[f] = round(statistics.median(
                d["results"][idx][f] for d in docs), 2)
        out.append(row)
    return out

tp = load("throughput")
tp_doc = stamp({k: v for k, v in tp[0].items() if k != "results"})
tp_doc["runs"] = runs
tp_doc["note"] = ("wall_ms / ops_per_sec / mb_per_sec are per-mode "
                  "medians over the runs; regenerate with scripts/bench.sh")
tp_doc["results"] = median_by_mode(tp, ["wall_ms", "ops_per_sec",
                                        "mb_per_sec"])
tp_name = ("BENCH_throughput.json" if scheme == "single"
           else f"BENCH_throughput_{scheme}.json")
with open(f"{repo}/{tp_name}", "w") as f:
    json.dump(tp_doc, f, indent=2)
    f.write("\n")

pb = load("parity")
pb_doc = stamp({k: v for k, v in pb[0].items() if k != "results"})
pb_doc["runs"] = runs
pb_doc["description"] = (
    "Batched parity pipeline (DESIGN.md section 10) vs the unbatched "
    "protocol on the hot-record workload of bench/bench_parity_batching. "
    "Message and byte counts are deterministic; wall_ms / ops_per_sec are "
    "per-mode medians over the runs.")
pb_doc["results"] = median_by_mode(pb, ["wall_ms", "ops_per_sec"])
pb_doc["reduction"] = pb[0]["reduction"]
with open(f"{repo}/BENCH_parity.json", "w") as f:
    json.dump(pb_doc, f, indent=2)
    f.write("\n")

for d in pb[1:]:
    if d["reduction"] != pb[0]["reduction"]:
        raise SystemExit("nondeterministic reduction factors?!")
print(f"wrote {tp_name} and BENCH_parity.json")
EOF
fi

if [ "$suite" = all ] || [ "$suite" = parallel ]; then
  threads="1 2 4 8"
  chaos_seeds=40
  # Wall-clock speedup numbers need real cores behind the threads. Say so
  # up front (the JSON records it too, as "degraded_host").
  if [ "$(nproc)" -lt 8 ]; then
    echo "WARNING: host has $(nproc) cores but the parallel suite runs up" \
         "to 8 threads; wall-clock speedups will be degraded (the record" \
         "will carry \"degraded_host\": true)." >&2
  fi
  for i in $(seq "$runs"); do
    echo "parallel run $i/$runs ..."
    for t in $threads; do
      "$build/bench/bench_throughput" --groups 8 --threads "$t" \
        > "$tmp/parallel_${t}_$i.json"
      t0=$(date +%s%N)
      "$build/tools/chaos_main" --seeds "$chaos_seeds" --threads "$t" \
        > "$tmp/chaos_out_${t}_$i.txt"
      t1=$(date +%s%N)
      echo $(( (t1 - t0) / 1000000 )) > "$tmp/chaos_${t}_$i.txt"
    done
  done
  # The run farm's byte-identical contract, checked on the spot: every
  # thread count must produce the same chaos stdout as --threads 1.
  for i in $(seq "$runs"); do
    for t in $threads; do
      cmp "$tmp/chaos_out_1_$i.txt" "$tmp/chaos_out_${t}_$i.txt"
    done
  done

  RUNS="$runs" TMP="$tmp" REPO="$repo" THREADS="$threads" \
  CHAOS_SEEDS="$chaos_seeds" python3 - <<'EOF'
import json, os, statistics

runs = int(os.environ["RUNS"])
tmp = os.environ["TMP"]
repo = os.environ["REPO"]
threads = [int(t) for t in os.environ["THREADS"].split()]
chaos_seeds = int(os.environ["CHAOS_SEEDS"])
host_cores = os.cpu_count() or 1

bench_rows = []
for t in threads:
    docs = [json.load(open(f"{tmp}/parallel_{t}_{i}.json")) for i in
            range(1, runs + 1)]
    row = dict(docs[0]["results"][0])
    if len({d["results"][0]["sim_ms"] for d in docs}) != 1:
        raise SystemExit(f"sim_ms varies across runs at --threads {t}?!")
    row["wall_ms"] = round(statistics.median(
        d["results"][0]["wall_ms"] for d in docs), 2)
    for k in ("ops_per_sec", "mb_per_sec", "mode"):
        row.pop(k, None)
    # --threads 1 takes the classic monolithic single-queue path; > 1 the
    # sharded conservative-window engine. Label which one produced sim_ms.
    row["threads"] = t
    row["engine"] = "monolithic" if t == 1 else "sharded"
    bench_rows.append(row)
for row in bench_rows:
    row["speedup_vs_t1"] = round(bench_rows[0]["wall_ms"] / row["wall_ms"], 2)

chaos_rows = []
for t in threads:
    walls = [int(open(f"{tmp}/chaos_{t}_{i}.txt").read()) for i in
             range(1, runs + 1)]
    chaos_rows.append({"threads": t, "seeds": chaos_seeds,
                       "wall_ms": statistics.median(walls)})
for row in chaos_rows:
    row["speedup_vs_t1"] = round(chaos_rows[0]["wall_ms"] / row["wall_ms"], 2)

doc = {
    "git_sha": os.environ["GIT_SHA"],
    "generated_utc": os.environ["GEN_DATE"],
    "description": (
        "Parallel execution engine (DESIGN.md section 12) at thread counts "
        "1/2/4/8. sharded_bench: bench_throughput --groups 8 --threads T — "
        "the 8-group volume workload on the conservatively synchronized "
        "sharded simulator (one shard per site). chaos_run_farm: wall time "
        f"of chaos_main --seeds {chaos_seeds} --threads T, one isolated "
        "simulation stack per seed, stdout verified byte-identical to the "
        "serial run at every thread count. sim_ms is the deterministic "
        "simulated makespan and is thread-count-invariant (the g8 value "
        "differs from the monolithic single-queue engine by one deep "
        "same-tick tie, 0.06% — DESIGN.md section 12); wall_ms is host "
        "time, medians over the runs."),
    "note": (
        "Wall-clock speedup requires real cores: this record was generated "
        f"on a {host_cores}-core host"
        + ("" if host_cores > 1 else
           ", where worker threads time-slice one CPU, so speedup_vs_t1 "
           "~1.0 measures engine overhead, not parallelism") +
        ". Both workloads are embarrassingly parallel across shards/seeds "
        "(no shared mutable state beyond internally synchronized stats and "
        "arenas), so on an N-core host the run farm scales ~linearly to N "
        "and the sharded bench to min(N, groups busy per window). "
        "Regenerate with scripts/bench.sh <runs> <build> parallel."),
    "host_cores": host_cores,
    "degraded_host": host_cores < max(threads),
    "runs": runs,
    "sharded_bench": bench_rows,
    "chaos_run_farm": chaos_rows,
}
with open(f"{repo}/BENCH_parallel.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_parallel.json")
EOF
fi

if [ "$suite" = all ] || [ "$suite" = transport ]; then
  # The socket backends run one thread per site (4) plus writers; with
  # fewer cores the wall-clock latencies measure time-slicing, not the
  # transport. transport_main stamps "degraded_host" in its own output;
  # warn here as well so interactive runs cannot miss it.
  if [ "$(nproc)" -lt 4 ]; then
    echo "WARNING: host has $(nproc) cores; the socket transport runs 4" \
         "site threads, so BENCH_transport.json will carry" \
         "\"degraded_host\": true and its wall-clock numbers measure" \
         "time-slicing overhead." >&2
  fi
  for i in $(seq "$runs"); do
    echo "transport run $i/$runs ..."
    "$build/tools/transport_main" --bench --out "$tmp/transport_$i.json"
  done

  RUNS="$runs" TMP="$tmp" REPO="$repo" python3 - <<'EOF'
import json, os, statistics

runs = int(os.environ["RUNS"])
tmp = os.environ["TMP"]
repo = os.environ["REPO"]

docs = [json.load(open(f"{tmp}/transport_{i}.json")) for i in
        range(1, runs + 1)]
doc = {k: v for k, v in docs[0].items() if k != "results"}
doc["git_sha"] = os.environ["GIT_SHA"]
doc["generated_utc"] = os.environ["GEN_DATE"]
doc["runs"] = runs
doc["note"] = doc.get("note", "") + (
    " Latency and throughput figures are per-backend medians over the "
    "runs; regenerate with scripts/bench.sh <runs> <build> transport.")
rows = []
for idx, first in enumerate(docs[0]["results"]):
    row = dict(first)
    # DES figures are simulated time and must not vary across runs.
    if row["latency_domain"] == "simulated_us":
        for d in docs[1:]:
            if d["results"][idx]["p50_latency_us"] != row["p50_latency_us"]:
                raise SystemExit("nondeterministic DES latencies?!")
    for f in ("p50_latency_us", "p99_latency_us", "wall_sec",
              "ops_per_wall_sec"):
        row[f] = round(statistics.median(
            d["results"][idx][f] for d in docs), 2)
    rows.append(row)
doc["results"] = rows
with open(f"{repo}/BENCH_transport.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_transport.json")
EOF
fi

if [ "$suite" = all ] || [ "$suite" = disk ]; then
  # Modeled disk subsystem (DESIGN.md section 15): the before/after record
  # of breaking the per-site serial disk bottleneck. Every figure below is
  # simulated time — deterministic, so a single run per configuration is
  # the measurement.
  #   * volume scaling: ops per simulated second at g=1 vs g=8, legacy
  #     serial clock vs 4 spindles + deadline scheduling + block cache;
  #   * degraded-read tail: protocol_degraded p50/p99 in both configs;
  #   * recovery makespan: per-seed autopilot convergence time over 40
  #     chaos schedules in both configs (the run doubles as a smoke test —
  #     a seed that violates an invariant fails the script).
  echo "disk suite: volume scaling + degraded tail + recovery makespan ..."
  disk_flags="--spindles 4 --disk-policy deadline --cache-blocks 64"
  "$build/bench/bench_throughput" > "$tmp/disk_legacy.json"
  # shellcheck disable=SC2086
  "$build/bench/bench_throughput" $disk_flags > "$tmp/disk_modeled.json"
  for cfg in legacy modeled; do
    flags=""
    [ "$cfg" = modeled ] && flags="$disk_flags"
    for s in $(seq 1 40); do
      # shellcheck disable=SC2086
      "$build/tools/chaos_main" --seed "$s" --autopilot $flags
    done > "$tmp/disk_conv_$cfg.txt"
  done

  TMP="$tmp" REPO="$repo" DISK_FLAGS="$disk_flags" python3 - <<'EOF'
import json, os, re, statistics

tmp = os.environ["TMP"]
repo = os.environ["REPO"]

def mode_row(doc, mode):
    for row in doc["results"]:
        if row["mode"] == mode:
            return row
    raise SystemExit(f"mode {mode} missing from bench_throughput output")

configs = {}
for cfg in ("legacy", "modeled"):
    doc = json.load(open(f"{tmp}/disk_{cfg}.json"))
    g1 = mode_row(doc, "volume_g1")["ops_per_sim_sec"]
    g8 = mode_row(doc, "volume_g8")["ops_per_sim_sec"]
    deg = mode_row(doc, "protocol_degraded")
    conv_ms = [int(m.group(1)) / 1000.0 for m in
               re.finditer(r"conv_max=(\d+)",
                           open(f"{tmp}/disk_conv_{cfg}.txt").read())]
    if len(conv_ms) != 40:
        raise SystemExit(f"expected 40 convergence samples, got "
                         f"{len(conv_ms)} ({cfg})")
    conv_ms.sort()
    configs[cfg] = {
        "disk": doc.get("disk", {"spindles": 1, "policy": "fifo",
                                 "cache_blocks": 0}),
        "volume_g1_ops_per_sim_sec": g1,
        "volume_g8_ops_per_sim_sec": g8,
        "volume_scaling_g8_vs_g1": round(g8 / g1, 2),
        "degraded_read_p50_ms": deg["degraded_read_p50_ms"],
        "degraded_read_p99_ms": deg["degraded_read_p99_ms"],
        "recovery_makespan_ms": {
            "p50": round(conv_ms[len(conv_ms) // 2], 1),
            "p99": round(conv_ms[int(0.99 * (len(conv_ms) - 1))], 1),
            "max": round(conv_ms[-1], 1),
            "seeds": len(conv_ms),
        },
    }

scaling = configs["modeled"]["volume_scaling_g8_vs_g1"]
if scaling < 3.0:
    raise SystemExit(f"modeled volume scaling {scaling} < 3.0 — the disk "
                     "subsystem regressed")

doc = {
    "git_sha": os.environ["GIT_SHA"],
    "generated_utc": os.environ["GEN_DATE"],
    "description": (
        "Modeled disk subsystem (DESIGN.md section 15) before/after "
        "record. legacy = one serial FIFO disk clock per site (the "
        "paper's section 7.3 model); modeled = bench_throughput "
        + os.environ["DISK_FLAGS"] + ". volume_*: ops per simulated "
        "second of the section 4 sharded volume at 1 and 8 groups — the "
        "scaling ratio is the headline (the serial clock capped it at "
        "~1.6x). degraded_read_*: simulated p50/p99 of reads against a "
        "crashed member. recovery_makespan_ms: per-seed autopilot "
        "convergence time over chaos_main --autopilot seeds 1..40. All "
        "figures are deterministic simulated time; regenerate with "
        "scripts/bench.sh 1 <build> disk."),
    "configs": configs,
}
with open(f"{repo}/BENCH_disk.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_disk.json (modeled g8/g1 scaling {scaling}x)")
EOF
fi

if [ "$suite" = all ] || [ "$suite" = layout ]; then
  # Placement layer (DESIGN.md section 16): rotated vs declustered
  # recovery makespan, plus the online-expansion moved-fraction record.
  # Every figure is simulated time, so a single run per seed is the
  # measurement, and every chaos_main invocation below exits nonzero if a
  # schedule violates an invariant — the suite doubles as a smoke test.
  #   * recovery makespan: per-seed autopilot convergence time over 40
  #     chaos schedules, classic rotated layout vs declustered over a
  #     12-site cluster (reconstruction reads spread over C-2 sources
  #     instead of the fixed G+parities group neighbours);
  #   * expansion: the same 40 declustered schedules with a mid-schedule
  #     AddSite — the migrated block count must equal the planned minimum
  #     rounds*(n-1) and stay under the added capacity share 1/(C+1).
  echo "layout suite: recovery makespan + expansion moved fraction ..."
  for cfg in rotated declustered; do
    flags=""
    [ "$cfg" = declustered ] && flags="--layout declustered --sites 12"
    for s in $(seq 1 40); do
      # shellcheck disable=SC2086
      "$build/tools/chaos_main" --seed "$s" --autopilot $flags
    done > "$tmp/layout_conv_$cfg.txt"
  done
  for s in $(seq 1 40); do
    "$build/tools/chaos_main" --seed "$s" --autopilot \
      --layout declustered --sites 12 --expand
  done > "$tmp/layout_expand.txt"

  TMP="$tmp" REPO="$repo" python3 - <<'EOF'
import json, os, re, statistics

tmp = os.environ["TMP"]
repo = os.environ["REPO"]

def makespan(path):
    conv_ms = [int(m.group(1)) / 1000.0 for m in
               re.finditer(r"conv_max=(\d+)", open(path).read())]
    if len(conv_ms) != 40:
        raise SystemExit(f"expected 40 convergence samples in {path}, "
                         f"got {len(conv_ms)}")
    conv_ms.sort()
    return {
        "p50": round(conv_ms[len(conv_ms) // 2], 1),
        "p99": round(conv_ms[int(0.99 * (len(conv_ms) - 1))], 1),
        "max": round(conv_ms[-1], 1),
        "mean": round(statistics.mean(conv_ms), 1),
        "seeds": len(conv_ms),
    }

configs = {
    "rotated": {"layout": "rotated",
                "recovery_makespan_ms": makespan(f"{tmp}/layout_conv_rotated.txt")},
    "declustered": {"layout": "declustered", "sites": 12,
                    "recovery_makespan_ms": makespan(f"{tmp}/layout_conv_declustered.txt")},
}

# Expansion record. The harness shape is fixed (G=4, single parity, so
# n=6; rows=12 -> 2 rounds; C=12 pre-expansion sites), so the minimal
# plan is rounds*(n-1) = 10 moves against c0*rounds*n = 144 blocks in
# use. chaos.cc asserts moved == planned and the capacity-share bound
# per seed; here we record the fraction and re-check it.
G, PAR, ROWS, C = 4, 1, 12, 12
n = G + 1 + PAR
rounds = ROWS // n
used = C * rounds * n
pairs = re.findall(r"moved=(\d+) planned=(\d+)",
                   open(f"{tmp}/layout_expand.txt").read())
if len(pairs) != 40:
    raise SystemExit(f"expected 40 expansion samples, got {len(pairs)}")
moved = {int(m) for m, _ in pairs}
planned = {int(p) for _, p in pairs}
if moved != planned or len(moved) != 1:
    raise SystemExit(f"expansion moves not uniform/minimal: moved={moved} "
                     f"planned={planned}")
mv = moved.pop()
if mv != rounds * (n - 1):
    raise SystemExit(f"moved {mv} != minimal plan rounds*(n-1) = "
                     f"{rounds * (n - 1)}")
frac = mv / used
bound = 1.0 / (C + 1)
if frac > bound:
    raise SystemExit(f"moved fraction {frac:.4f} above capacity share "
                     f"{bound:.4f}")
conv = makespan(f"{tmp}/layout_expand.txt")

doc = {
    "git_sha": os.environ["GIT_SHA"],
    "generated_utc": os.environ["GEN_DATE"],
    "description": (
        "Placement layer record (DESIGN.md section 16). "
        "recovery_makespan_ms: per-seed autopilot convergence time over "
        "chaos_main --autopilot seeds 1..40, classic rotated layout vs "
        "declustered placement over a 12-site cluster. expansion: the "
        "same declustered schedules with a mid-schedule AddSite; moved "
        "blocks must equal the minimal plan rounds*(n-1) and stay under "
        "the added capacity share 1/(C+1) of blocks in use. All figures "
        "are deterministic simulated time; regenerate with "
        "scripts/bench.sh 1 <build> layout."),
    "configs": configs,
    "expansion": {
        "group_size": G,
        "parities": PAR,
        "rows": ROWS,
        "sites_before": C,
        "sites_after": C + 1,
        "moves_per_group": mv,
        "blocks_in_use": used,
        "moved_fraction": round(frac, 4),
        "capacity_share_bound": round(bound, 4),
        "seeds": len(pairs),
        "recovery_makespan_ms": conv,
    },
}
with open(f"{repo}/BENCH_layout.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_layout.json (moved fraction {frac:.4f} <= {bound:.4f})")
EOF
fi
