#!/usr/bin/env bash
# Rebuilds the benchmark binaries in RelWithDebInfo and regenerates the
# BENCH_*.json records in the repo root with median-of-N numbers, per the
# measurement protocol of DESIGN.md section 6: wall-clock timings are
# noisy on shared machines, so each bench runs N times and the recorded
# figure is the per-mode median. Everything except the nanoseconds (op
# mix, message counts, wire bytes) is deterministic and identical across
# runs.
#
# Usage: scripts/bench.sh [runs] [build-dir]
#   scripts/bench.sh           # 7 runs, build in build-bench/
#   scripts/bench.sh 15        # more runs for a noisier machine
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
runs="${1:-7}"
build="${2:-$repo/build-bench}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)" \
  --target bench_throughput bench_parity_batching

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for i in $(seq "$runs"); do
  echo "run $i/$runs ..."
  "$build/bench/bench_throughput" > "$tmp/throughput_$i.json"
  "$build/bench/bench_parity_batching" > "$tmp/parity_$i.json"
done

RUNS="$runs" TMP="$tmp" REPO="$repo" python3 - <<'EOF'
import json, os, statistics

runs = int(os.environ["RUNS"])
tmp = os.environ["TMP"]
repo = os.environ["REPO"]

def load(prefix):
    return [json.load(open(f"{tmp}/{prefix}_{i}.json")) for i in
            range(1, runs + 1)]

def median_by_mode(docs, fields):
    """Per-mode median of `fields` across runs; other keys come from the
    first run (they are deterministic)."""
    out = []
    for idx, first in enumerate(docs[0]["results"]):
        row = dict(first)
        for f in fields:
            row[f] = round(statistics.median(
                d["results"][idx][f] for d in docs), 2)
        out.append(row)
    return out

tp = load("throughput")
tp_doc = {k: v for k, v in tp[0].items() if k != "results"}
tp_doc["runs"] = runs
tp_doc["note"] = ("wall_ms / ops_per_sec / mb_per_sec are per-mode "
                  "medians over the runs; regenerate with scripts/bench.sh")
tp_doc["results"] = median_by_mode(tp, ["wall_ms", "ops_per_sec",
                                        "mb_per_sec"])
with open(f"{repo}/BENCH_throughput.json", "w") as f:
    json.dump(tp_doc, f, indent=2)
    f.write("\n")

pb = load("parity")
pb_doc = {k: v for k, v in pb[0].items() if k != "results"}
pb_doc["runs"] = runs
pb_doc["description"] = (
    "Batched parity pipeline (DESIGN.md section 10) vs the unbatched "
    "protocol on the hot-record workload of bench/bench_parity_batching. "
    "Message and byte counts are deterministic; wall_ms / ops_per_sec are "
    "per-mode medians over the runs.")
pb_doc["results"] = median_by_mode(pb, ["wall_ms", "ops_per_sec"])
pb_doc["reduction"] = pb[0]["reduction"]
with open(f"{repo}/BENCH_parity.json", "w") as f:
    json.dump(pb_doc, f, indent=2)
    f.write("\n")

for d in pb[1:]:
    if d["reduction"] != pb[0]["reduction"]:
        raise SystemExit("nondeterministic reduction factors?!")
print("wrote BENCH_throughput.json and BENCH_parity.json")
EOF
