# Empty dependencies file for radd_property_test.
# This may be replaced when dependencies are built.
