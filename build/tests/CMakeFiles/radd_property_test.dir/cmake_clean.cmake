file(REMOVE_RECURSE
  "CMakeFiles/radd_property_test.dir/radd_property_test.cc.o"
  "CMakeFiles/radd_property_test.dir/radd_property_test.cc.o.d"
  "radd_property_test"
  "radd_property_test.pdb"
  "radd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
