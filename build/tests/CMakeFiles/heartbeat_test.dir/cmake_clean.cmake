file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_test.dir/heartbeat_test.cc.o"
  "CMakeFiles/heartbeat_test.dir/heartbeat_test.cc.o.d"
  "heartbeat_test"
  "heartbeat_test.pdb"
  "heartbeat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
