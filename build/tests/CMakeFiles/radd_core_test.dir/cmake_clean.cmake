file(REMOVE_RECURSE
  "CMakeFiles/radd_core_test.dir/radd_core_test.cc.o"
  "CMakeFiles/radd_core_test.dir/radd_core_test.cc.o.d"
  "radd_core_test"
  "radd_core_test.pdb"
  "radd_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
