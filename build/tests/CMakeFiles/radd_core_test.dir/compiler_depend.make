# Empty compiler generated dependencies file for radd_core_test.
# This may be replaced when dependencies are built.
