# Empty dependencies file for radd_edge_test.
# This may be replaced when dependencies are built.
