file(REMOVE_RECURSE
  "CMakeFiles/radd_edge_test.dir/radd_edge_test.cc.o"
  "CMakeFiles/radd_edge_test.dir/radd_edge_test.cc.o.d"
  "radd_edge_test"
  "radd_edge_test.pdb"
  "radd_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
