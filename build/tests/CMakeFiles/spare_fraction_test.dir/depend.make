# Empty dependencies file for spare_fraction_test.
# This may be replaced when dependencies are built.
