file(REMOVE_RECURSE
  "CMakeFiles/spare_fraction_test.dir/spare_fraction_test.cc.o"
  "CMakeFiles/spare_fraction_test.dir/spare_fraction_test.cc.o.d"
  "spare_fraction_test"
  "spare_fraction_test.pdb"
  "spare_fraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_fraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
