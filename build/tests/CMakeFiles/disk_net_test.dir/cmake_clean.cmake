file(REMOVE_RECURSE
  "CMakeFiles/disk_net_test.dir/disk_net_test.cc.o"
  "CMakeFiles/disk_net_test.dir/disk_net_test.cc.o.d"
  "disk_net_test"
  "disk_net_test.pdb"
  "disk_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
