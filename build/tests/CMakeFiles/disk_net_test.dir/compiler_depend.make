# Empty compiler generated dependencies file for disk_net_test.
# This may be replaced when dependencies are built.
