# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/radd_core_test[1]_include.cmake")
include("/root/repo/build/tests/schemes_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/radd_property_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/disk_net_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/heartbeat_test[1]_include.cmake")
include("/root/repo/build/tests/spare_fraction_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/transaction_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/radd_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_test[1]_include.cmake")
