
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/distributed_dbms.cpp" "examples/CMakeFiles/distributed_dbms.dir/distributed_dbms.cpp.o" "gcc" "examples/CMakeFiles/distributed_dbms.dir/distributed_dbms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/radd_node.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/radd_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/radd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/radd_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/radd_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/radd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/radd_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/radd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/radd_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/radd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
