# Empty dependencies file for distributed_dbms.
# This may be replaced when dependencies are built.
