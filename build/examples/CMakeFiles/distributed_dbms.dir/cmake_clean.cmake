file(REMOVE_RECURSE
  "CMakeFiles/distributed_dbms.dir/distributed_dbms.cpp.o"
  "CMakeFiles/distributed_dbms.dir/distributed_dbms.cpp.o.d"
  "distributed_dbms"
  "distributed_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
