file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_sites.dir/heterogeneous_sites.cpp.o"
  "CMakeFiles/heterogeneous_sites.dir/heterogeneous_sites.cpp.o.d"
  "heterogeneous_sites"
  "heterogeneous_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
