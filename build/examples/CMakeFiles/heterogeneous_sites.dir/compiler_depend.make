# Empty compiler generated dependencies file for heterogeneous_sites.
# This may be replaced when dependencies are built.
