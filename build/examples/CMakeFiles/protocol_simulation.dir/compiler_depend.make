# Empty compiler generated dependencies file for protocol_simulation.
# This may be replaced when dependencies are built.
