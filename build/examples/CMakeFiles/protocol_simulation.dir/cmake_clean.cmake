file(REMOVE_RECURSE
  "CMakeFiles/protocol_simulation.dir/protocol_simulation.cpp.o"
  "CMakeFiles/protocol_simulation.dir/protocol_simulation.cpp.o.d"
  "protocol_simulation"
  "protocol_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
