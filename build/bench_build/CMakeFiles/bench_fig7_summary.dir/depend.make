# Empty dependencies file for bench_fig7_summary.
# This may be replaced when dependencies are built.
