file(REMOVE_RECURSE
  "../bench/bench_fig4_numeric"
  "../bench/bench_fig4_numeric.pdb"
  "CMakeFiles/bench_fig4_numeric.dir/bench_fig4_numeric.cc.o"
  "CMakeFiles/bench_fig4_numeric.dir/bench_fig4_numeric.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
