# Empty dependencies file for bench_sec74_network.
# This may be replaced when dependencies are built.
