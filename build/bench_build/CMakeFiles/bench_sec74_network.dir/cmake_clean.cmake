file(REMOVE_RECURSE
  "../bench/bench_sec74_network"
  "../bench/bench_sec74_network.pdb"
  "CMakeFiles/bench_sec74_network.dir/bench_sec74_network.cc.o"
  "CMakeFiles/bench_sec74_network.dir/bench_sec74_network.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec74_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
