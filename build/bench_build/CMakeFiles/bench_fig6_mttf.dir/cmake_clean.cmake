file(REMOVE_RECURSE
  "../bench/bench_fig6_mttf"
  "../bench/bench_fig6_mttf.pdb"
  "CMakeFiles/bench_fig6_mttf.dir/bench_fig6_mttf.cc.o"
  "CMakeFiles/bench_fig6_mttf.dir/bench_fig6_mttf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
