file(REMOVE_RECURSE
  "../bench/bench_async_latency"
  "../bench/bench_async_latency.pdb"
  "CMakeFiles/bench_async_latency.dir/bench_async_latency.cc.o"
  "CMakeFiles/bench_async_latency.dir/bench_async_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
