# Empty dependencies file for bench_async_latency.
# This may be replaced when dependencies are built.
