# Empty compiler generated dependencies file for bench_sec34_recovery.
# This may be replaced when dependencies are built.
