file(REMOVE_RECURSE
  "../bench/bench_sec34_recovery"
  "../bench/bench_sec34_recovery.pdb"
  "CMakeFiles/bench_sec34_recovery.dir/bench_sec34_recovery.cc.o"
  "CMakeFiles/bench_sec34_recovery.dir/bench_sec34_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
