file(REMOVE_RECURSE
  "../bench/bench_fig2_space"
  "../bench/bench_fig2_space.pdb"
  "CMakeFiles/bench_fig2_space.dir/bench_fig2_space.cc.o"
  "CMakeFiles/bench_fig2_space.dir/bench_fig2_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
