# Empty dependencies file for bench_fig5_mttu.
# This may be replaced when dependencies are built.
