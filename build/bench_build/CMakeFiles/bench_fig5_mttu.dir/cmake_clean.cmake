file(REMOVE_RECURSE
  "../bench/bench_fig5_mttu"
  "../bench/bench_fig5_mttu.pdb"
  "CMakeFiles/bench_fig5_mttu.dir/bench_fig5_mttu.cc.o"
  "CMakeFiles/bench_fig5_mttu.dir/bench_fig5_mttu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mttu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
