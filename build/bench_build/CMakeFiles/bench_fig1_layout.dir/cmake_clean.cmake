file(REMOVE_RECURSE
  "../bench/bench_fig1_layout"
  "../bench/bench_fig1_layout.pdb"
  "CMakeFiles/bench_fig1_layout.dir/bench_fig1_layout.cc.o"
  "CMakeFiles/bench_fig1_layout.dir/bench_fig1_layout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
