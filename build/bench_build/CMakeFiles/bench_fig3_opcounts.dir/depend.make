# Empty dependencies file for bench_fig3_opcounts.
# This may be replaced when dependencies are built.
