file(REMOVE_RECURSE
  "../bench/bench_fig3_opcounts"
  "../bench/bench_fig3_opcounts.pdb"
  "CMakeFiles/bench_fig3_opcounts.dir/bench_fig3_opcounts.cc.o"
  "CMakeFiles/bench_fig3_opcounts.dir/bench_fig3_opcounts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
