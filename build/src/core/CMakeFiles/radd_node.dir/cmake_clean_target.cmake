file(REMOVE_RECURSE
  "libradd_node.a"
)
