# Empty compiler generated dependencies file for radd_node.
# This may be replaced when dependencies are built.
