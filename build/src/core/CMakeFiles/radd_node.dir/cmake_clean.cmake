file(REMOVE_RECURSE
  "CMakeFiles/radd_node.dir/node.cc.o"
  "CMakeFiles/radd_node.dir/node.cc.o.d"
  "libradd_node.a"
  "libradd_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
