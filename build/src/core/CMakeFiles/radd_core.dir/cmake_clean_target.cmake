file(REMOVE_RECURSE
  "libradd_core.a"
)
