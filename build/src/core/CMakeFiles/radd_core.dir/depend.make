# Empty dependencies file for radd_core.
# This may be replaced when dependencies are built.
