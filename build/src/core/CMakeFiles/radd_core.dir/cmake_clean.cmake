file(REMOVE_RECURSE
  "CMakeFiles/radd_core.dir/radd.cc.o"
  "CMakeFiles/radd_core.dir/radd.cc.o.d"
  "libradd_core.a"
  "libradd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
