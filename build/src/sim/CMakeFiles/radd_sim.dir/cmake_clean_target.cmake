file(REMOVE_RECURSE
  "libradd_sim.a"
)
