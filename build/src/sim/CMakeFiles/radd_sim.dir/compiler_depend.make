# Empty compiler generated dependencies file for radd_sim.
# This may be replaced when dependencies are built.
