file(REMOVE_RECURSE
  "CMakeFiles/radd_sim.dir/simulator.cc.o"
  "CMakeFiles/radd_sim.dir/simulator.cc.o.d"
  "CMakeFiles/radd_sim.dir/stats.cc.o"
  "CMakeFiles/radd_sim.dir/stats.cc.o.d"
  "libradd_sim.a"
  "libradd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
