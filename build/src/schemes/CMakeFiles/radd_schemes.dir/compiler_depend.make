# Empty compiler generated dependencies file for radd_schemes.
# This may be replaced when dependencies are built.
