file(REMOVE_RECURSE
  "CMakeFiles/radd_schemes.dir/local_raid.cc.o"
  "CMakeFiles/radd_schemes.dir/local_raid.cc.o.d"
  "CMakeFiles/radd_schemes.dir/radd2d.cc.o"
  "CMakeFiles/radd_schemes.dir/radd2d.cc.o.d"
  "CMakeFiles/radd_schemes.dir/rowb.cc.o"
  "CMakeFiles/radd_schemes.dir/rowb.cc.o.d"
  "CMakeFiles/radd_schemes.dir/scheme.cc.o"
  "CMakeFiles/radd_schemes.dir/scheme.cc.o.d"
  "libradd_schemes.a"
  "libradd_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
