file(REMOVE_RECURSE
  "libradd_schemes.a"
)
