file(REMOVE_RECURSE
  "CMakeFiles/radd_reliability.dir/reliability.cc.o"
  "CMakeFiles/radd_reliability.dir/reliability.cc.o.d"
  "libradd_reliability.a"
  "libradd_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
