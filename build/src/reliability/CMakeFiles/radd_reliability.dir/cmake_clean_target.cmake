file(REMOVE_RECURSE
  "libradd_reliability.a"
)
