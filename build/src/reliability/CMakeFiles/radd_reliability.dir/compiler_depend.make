# Empty compiler generated dependencies file for radd_reliability.
# This may be replaced when dependencies are built.
