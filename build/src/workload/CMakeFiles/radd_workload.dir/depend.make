# Empty dependencies file for radd_workload.
# This may be replaced when dependencies are built.
