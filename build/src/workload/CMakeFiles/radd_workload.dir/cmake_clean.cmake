file(REMOVE_RECURSE
  "CMakeFiles/radd_workload.dir/workload.cc.o"
  "CMakeFiles/radd_workload.dir/workload.cc.o.d"
  "libradd_workload.a"
  "libradd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
