file(REMOVE_RECURSE
  "libradd_workload.a"
)
