file(REMOVE_RECURSE
  "libradd_common.a"
)
