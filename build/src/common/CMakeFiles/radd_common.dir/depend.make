# Empty dependencies file for radd_common.
# This may be replaced when dependencies are built.
