# Empty compiler generated dependencies file for radd_common.
# This may be replaced when dependencies are built.
