file(REMOVE_RECURSE
  "CMakeFiles/radd_common.dir/block.cc.o"
  "CMakeFiles/radd_common.dir/block.cc.o.d"
  "CMakeFiles/radd_common.dir/format.cc.o"
  "CMakeFiles/radd_common.dir/format.cc.o.d"
  "CMakeFiles/radd_common.dir/rng.cc.o"
  "CMakeFiles/radd_common.dir/rng.cc.o.d"
  "CMakeFiles/radd_common.dir/status.cc.o"
  "CMakeFiles/radd_common.dir/status.cc.o.d"
  "CMakeFiles/radd_common.dir/uid.cc.o"
  "CMakeFiles/radd_common.dir/uid.cc.o.d"
  "libradd_common.a"
  "libradd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
