file(REMOVE_RECURSE
  "CMakeFiles/radd_disk.dir/disk.cc.o"
  "CMakeFiles/radd_disk.dir/disk.cc.o.d"
  "libradd_disk.a"
  "libradd_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
