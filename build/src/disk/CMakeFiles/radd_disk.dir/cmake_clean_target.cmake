file(REMOVE_RECURSE
  "libradd_disk.a"
)
