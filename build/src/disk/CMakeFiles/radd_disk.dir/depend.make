# Empty dependencies file for radd_disk.
# This may be replaced when dependencies are built.
