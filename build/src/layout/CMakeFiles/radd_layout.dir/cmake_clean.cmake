file(REMOVE_RECURSE
  "CMakeFiles/radd_layout.dir/layout.cc.o"
  "CMakeFiles/radd_layout.dir/layout.cc.o.d"
  "libradd_layout.a"
  "libradd_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
