file(REMOVE_RECURSE
  "libradd_layout.a"
)
