# Empty compiler generated dependencies file for radd_layout.
# This may be replaced when dependencies are built.
