file(REMOVE_RECURSE
  "libradd_txn.a"
)
