# Empty compiler generated dependencies file for radd_txn.
# This may be replaced when dependencies are built.
