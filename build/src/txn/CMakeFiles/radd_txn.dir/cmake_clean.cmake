file(REMOVE_RECURSE
  "CMakeFiles/radd_txn.dir/commit.cc.o"
  "CMakeFiles/radd_txn.dir/commit.cc.o.d"
  "CMakeFiles/radd_txn.dir/lock_manager.cc.o"
  "CMakeFiles/radd_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/radd_txn.dir/storage_manager.cc.o"
  "CMakeFiles/radd_txn.dir/storage_manager.cc.o.d"
  "CMakeFiles/radd_txn.dir/transaction.cc.o"
  "CMakeFiles/radd_txn.dir/transaction.cc.o.d"
  "libradd_txn.a"
  "libradd_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
