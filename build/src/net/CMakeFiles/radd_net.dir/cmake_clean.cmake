file(REMOVE_RECURSE
  "CMakeFiles/radd_net.dir/network.cc.o"
  "CMakeFiles/radd_net.dir/network.cc.o.d"
  "libradd_net.a"
  "libradd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
