# Empty compiler generated dependencies file for radd_net.
# This may be replaced when dependencies are built.
