file(REMOVE_RECURSE
  "libradd_net.a"
)
