file(REMOVE_RECURSE
  "CMakeFiles/radd_cluster.dir/cluster.cc.o"
  "CMakeFiles/radd_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/radd_cluster.dir/heartbeat.cc.o"
  "CMakeFiles/radd_cluster.dir/heartbeat.cc.o.d"
  "libradd_cluster.a"
  "libradd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
