# Empty compiler generated dependencies file for radd_cluster.
# This may be replaced when dependencies are built.
