file(REMOVE_RECURSE
  "libradd_cluster.a"
)
