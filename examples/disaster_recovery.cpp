// Disaster recovery walkthrough (paper §3.4): a site is destroyed, and we
// compare how quickly its database becomes usable again under a WAL
// storage manager versus a POSTGRES-style no-overwrite storage manager —
// the paper's argument for pairing RADD with no-overwrite storage.
//
//   ./build/examples/disaster_recovery

#include <cstdio>

#include "core/radd.h"
#include "schemes/scheme.h"
#include "txn/storage_manager.h"

using namespace radd;

namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

void RunTransactions(StorageManager* sm, int count) {
  for (int i = 0; i < count; ++i) {
    TxnId t = sm->Begin();
    PageUpdate u;
    u.page = static_cast<BlockNum>(i) % sm->num_pages();
    u.offset = 0;
    u.bytes = Bytes("txn " + std::to_string(i));
    if (!sm->Update(t, u).ok() || !sm->Commit(t).ok()) {
      std::printf("transaction %d failed\n", i);
    }
  }
}

}  // namespace

int main() {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 60;  // 48 data blocks per member
  SiteConfig sc{1, config.rows, config.block_size};
  CostModel cost;

  for (bool use_wal : {true, false}) {
    Cluster cluster(config.group_size + 2, sc);
    RaddGroup radd(&cluster, config);
    std::unique_ptr<StorageManager> sm;
    if (use_wal) {
      sm = std::make_unique<WalStorageManager>(&radd, /*member=*/1,
                                               /*log blocks=*/24,
                                               /*pages=*/16);
    } else {
      sm = std::make_unique<NoOverwriteStorageManager>(&radd, 1, 16);
    }
    std::printf("=== %s storage manager on member 1 ===\n",
                use_wal ? "WAL" : "no-overwrite");

    RunTransactions(sm.get(), 40);

    // Disaster: the site burns down. All disks lost.
    std::printf("  *** disaster at site 1 ***\n");
    cluster.DisasterSite(radd.SiteOfMember(1));
    sm->CrashVolatile();

    // The DBMS restarts its member-1 database *at another site* while the
    // home is still gone; every block it touches is reconstructed through
    // the RADD.
    SiteId stand_in = radd.SiteOfMember(4);
    Result<OpCounts> rec = sm->Recover(stand_in);
    if (!rec.ok()) {
      std::printf("  recovery failed: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    std::printf("  recovery at a remote site: %s\n",
                rec->ToFormula().c_str());
    std::printf("  modelled recovery time: %.1f ms "
                "(paper model: R=W=30ms, RR=RW=75ms)\n",
                cost.Price(*rec));

    // Verify the committed data is all there.
    Result<Block> page = sm->ReadCommitted(7 % sm->num_pages());
    std::printf("  committed data intact: %s\n",
                page.ok() ? "yes" : page.status().ToString().c_str());

    // Finally the site itself is rebuilt.
    cluster.RestoreSite(radd.SiteOfMember(1));
    Result<OpCounts> sweep = radd.RunRecovery(1);
    std::printf("  site rebuild sweep: %s (%llu physical ops)\n",
                sweep.status().ToString().c_str(),
                sweep.ok() ? static_cast<unsigned long long>(sweep->Total())
                           : 0ULL);
    std::printf("  invariants: %s\n\n",
                radd.VerifyInvariants().ToString().c_str());
  }

  std::printf(
      "Takeaway (paper §3.4): the WAL pass must reconstruct the whole log\n"
      "through the RADD (G remote reads per block) before any data is\n"
      "usable, while the no-overwrite manager restarts after a single root\n"
      "read — so RADD pairs best with no-overwrite storage for site\n"
      "failures.\n");
  return 0;
}
