// Quickstart: build a RADD over ten sites, write and read blocks, survive
// a site crash (reads reconstruct, writes land on spares), then run the
// recovery sweep and verify everything is intact.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/radd.h"

using namespace radd;  // examples prioritize brevity

int main() {
  // A RADD with the paper's G = 8: ten sites, each contributing 20
  // physical rows of 4 KB blocks -> 16 data blocks per site, with parity
  // and spare blocks rotating across the group (Fig. 1).
  RaddConfig config;
  config.group_size = 8;
  config.rows = 20;

  SiteConfig site_config;
  site_config.num_disks = 1;
  site_config.blocks_per_disk = config.rows;
  site_config.block_size = config.block_size;

  Cluster cluster(config.group_size + 2, site_config);
  RaddGroup radd(&cluster, config);

  std::printf("RADD up: %d sites, %llu data blocks per site, %.0f%% space "
              "overhead\n",
              radd.num_members(),
              static_cast<unsigned long long>(radd.DataBlocksPerMember()),
              100.0 * 2 / config.group_size);

  // --- normal operation ----------------------------------------------------
  Block hello(config.block_size);
  const char msg[] = "hello, distributed RAID";
  hello.WriteAt(0, reinterpret_cast<const uint8_t*>(msg), sizeof(msg));

  // Site 2 writes its data block 5: one local write plus one remote
  // parity update (Figure 3's W + RW).
  OpResult w = radd.Write(/*client=*/2, /*home member=*/2, /*block=*/5,
                          hello);
  std::printf("write: %s, ops = %s\n", w.status.ToString().c_str(),
              w.counts.ToFormula().c_str());

  OpResult r = radd.Read(2, 2, 5);
  std::printf("read : %s, ops = %s, contents = \"%s\"\n",
              r.status.ToString().c_str(), r.counts.ToFormula().c_str(),
              reinterpret_cast<const char*>(r.data.data()));

  // --- a site fails ---------------------------------------------------------
  std::printf("\n*** site 2 crashes ***\n");
  cluster.CrashSite(2);

  // Another site reads the same block: the value is reconstructed from
  // the other sites' blocks XORed with the parity block (formula (2)).
  OpResult degraded = radd.Read(/*client=*/0, 2, 5);
  std::printf("degraded read: %s, ops = %s (G remote reads)\n",
              degraded.status.ToString().c_str(),
              degraded.counts.ToFormula().c_str());
  std::printf("  contents survive: \"%s\"\n",
              reinterpret_cast<const char*>(degraded.data.data()));

  // It also landed in the row's spare block, so the next read is cheap.
  OpResult again = radd.Read(0, 2, 5);
  std::printf("second read  : ops = %s (spare block)\n",
              again.counts.ToFormula().c_str());

  // Writes keep working too: they go to the spare + parity (W1').
  Block update(config.block_size);
  const char msg2[] = "written while the site was down";
  update.WriteAt(0, reinterpret_cast<const uint8_t*>(msg2), sizeof(msg2));
  OpResult dw = radd.Write(0, 2, 5, update);
  std::printf("degraded write: %s, ops = %s\n", dw.status.ToString().c_str(),
              dw.counts.ToFormula().c_str());

  // --- recovery --------------------------------------------------------------
  std::printf("\n*** site 2 restored; running the recovery sweep ***\n");
  cluster.RestoreSite(2);
  Result<OpCounts> rec = radd.RunRecovery(2);
  std::printf("recovery: %s, ops = %s\n", rec.status().ToString().c_str(),
              rec.ok() ? rec->ToFormula().c_str() : "-");

  OpResult back = radd.Read(2, 2, 5);
  std::printf("local read after recovery: ops = %s, contents = \"%s\"\n",
              back.counts.ToFormula().c_str(),
              reinterpret_cast<const char*>(back.data.data()));

  Status invariants = radd.VerifyInvariants();
  std::printf("\ninvariants (parity = XOR of data, UID arrays in sync): %s\n",
              invariants.ToString().c_str());
  return invariants.ok() && back.ok() ? 0 : 1;
}
