// A miniature distributed DBMS running on a RADD (paper §6): query plans
// execute at data sites (or are relocated when a site is down), block
// accesses are protected by the lock manager, and distributed commits use
// the paper's one-phase protocol — the parity messages sent before `done`
// already make every slave prepared.
//
//   ./build/examples/distributed_dbms

#include <cstdio>

#include "core/radd.h"
#include "txn/commit.h"
#include "txn/lock_manager.h"

using namespace radd;

namespace {

Block MakeRecordPage(size_t block_size, const std::string& text) {
  Block b(block_size);
  b.WriteAt(0, reinterpret_cast<const uint8_t*>(text.data()), text.size());
  return b;
}

/// "Executes" a read-only plan step at whichever site is appropriate
/// (§6: "If the site at which a plan is supposed to execute is up or
/// recovering, then the plan is simply executed at that site. If the site
/// is down, then the plan is allocated to some other convenient site.").
SiteId PlaceStep(RaddGroup* radd, int member) {
  SiteId home = radd->SiteOfMember(member);
  if (radd->cluster()->StateOf(home) != SiteState::kDown) return home;
  for (int m = 0; m < radd->num_members(); ++m) {
    SiteId s = radd->SiteOfMember(m);
    if (radd->cluster()->StateOf(s) == SiteState::kUp) return s;
  }
  return home;
}

}  // namespace

int main() {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 30;
  SiteConfig sc{1, config.rows, config.block_size};
  Cluster cluster(config.group_size + 2, sc);
  RaddGroup radd(&cluster, config);
  LockManager locks;

  // A three-site distributed transaction: debit at member 1, credit at
  // member 4, audit record at member 7.
  DistributedTxnCoordinator coord(&radd, radd.SiteOfMember(0));
  std::vector<SlaveWork> transfer = {
      {1, {{0, MakeRecordPage(config.block_size, "account A: -100")}}},
      {4, {{0, MakeRecordPage(config.block_size, "account B: +100")}}},
      {7, {{0, MakeRecordPage(config.block_size, "audit: A->B 100")}}},
  };

  // Locking (§3.3): the coordinator locks the data blocks it will touch.
  TxnId txn = 1;
  for (const SlaveWork& w : transfer) {
    BlockNum row = radd.layout().DataToRow(static_cast<SiteId>(w.member),
                                           w.writes[0].first);
    LockResult lr = locks.Acquire(
        txn, LockKey{radd.SiteOfMember(w.member), row}, LockMode::kExclusive);
    if (lr != LockResult::kGranted) {
      std::printf("lock denied; aborting\n");
      return 1;
    }
  }

  CommitOutcome one = coord.Run(CommitProtocol::kOnePhase, transfer);
  std::printf("one-phase commit: %s, %d messages in %d rounds, I/O = %s\n",
              one.status.ToString().c_str(), one.messages, one.rounds,
              one.counts.ToFormula().c_str());
  CommitOutcome two = coord.Run(CommitProtocol::kTwoPhase, transfer);
  std::printf("two-phase commit: %s, %d messages in %d rounds\n",
              two.status.ToString().c_str(), two.messages, two.rounds);
  locks.ReleaseAll(txn);

  // The paper's §6 punchline: crash a slave right after `done`. Because
  // its parity updates were sent before it answered, the committed data
  // is recoverable even though the slave never heard "commit".
  std::printf("\n*** slave at member 4 crashes right after `done` ***\n");
  CommitOutcome crashed =
      coord.Run(CommitProtocol::kOnePhase, transfer, /*crash member=*/4);
  std::printf("commit with crash: %s\n",
              crashed.status.ToString().c_str());

  SiteId reader = PlaceStep(&radd, 4);
  std::printf("plan for member 4 relocated to site %u (its site is %s)\n",
              reader,
              std::string(SiteStateName(
                  cluster.StateOf(radd.SiteOfMember(4)))).c_str());
  OpResult r = radd.Read(reader, 4, 0);
  std::printf("read of the crashed slave's committed write: %s -> \"%s\"\n",
              r.status.ToString().c_str(),
              reinterpret_cast<const char*>(r.data.data()));

  cluster.RestoreSite(radd.SiteOfMember(4));
  Result<OpCounts> sweep = radd.RunRecovery(4);
  std::printf("slave recovered: %s; invariants: %s\n",
              sweep.status().ToString().c_str(),
              radd.VerifyInvariants().ToString().c_str());
  return r.ok() ? 0 : 1;
}
