// End-to-end protocol simulation: the RADD running as an actual
// message-passing distributed system over the simulated network — disk
// and link latencies, a heartbeat failure detector instead of the paper's
// assumed status oracle, a lossy network with retransmit-until-ack (§5),
// and a workload driving it all.
//
//   ./build/examples/protocol_simulation

#include <cstdio>

#include "cluster/heartbeat.h"
#include "common/format.h"
#include "core/node.h"
#include "workload/workload.h"

using namespace radd;

int main() {
  RaddConfig config;
  config.group_size = 8;
  config.rows = 30;
  config.block_size = 4096;

  Simulator sim;
  NetworkModel nm;
  nm.drop_probability = 0.05;  // a slightly lossy LAN
  Network net(&sim, nm, 0xcafe);
  Cluster cluster(10, SiteConfig{1, config.rows, config.block_size});
  RaddNodeSystem radd(&sim, &net, &cluster, config);

  std::vector<SiteId> all_sites;
  for (int m = 0; m < 10; ++m) all_sites.push_back(radd.group()->SiteOfMember(m));
  HeartbeatDetector detector(&sim, &net, &cluster, all_sites);
  detector.Start();
  // Every protocol decision consults the detector instead of an oracle.
  radd.SetPerceiver([&detector](SiteId observer, SiteId target) {
    return detector.Perceived(observer, target);
  });

  WorkloadConfig wc;
  wc.num_members = 10;
  wc.blocks_per_member = radd.group()->DataBlocksPerMember();
  wc.block_size = config.block_size;
  wc.read_fraction = 2.0 / 3.0;
  wc.zipf_theta = 0.6;
  WorkloadGenerator gen(wc, 0x900d);

  Stats latencies;
  auto run_ops = [&](int n, const char* label) {
    int ok = 0, failed = 0;
    for (int i = 0; i < n; ++i) {
      Operation op = gen.Next();
      // Plans run at the home site unless its peers believe it is down,
      // in which case the work migrates (§6).
      SiteId home_site = radd.group()->SiteOfMember(op.member);
      SiteId client = home_site;
      for (SiteId s : all_sites) {
        if (s != home_site && detector.Perceived(s, home_site) ==
                                  SiteState::kDown) {
          client = s;
          break;
        }
      }
      if (op.IsRead()) {
        auto r = radd.Read(client, op.member, op.block);
        r.status.ok() ? ++ok : ++failed;
        if (r.status.ok()) {
          latencies.Observe(std::string(label) + ".read",
                            ToMillis(r.latency));
        }
      } else {
        Block data(config.block_size);
        data.FillPattern(static_cast<uint64_t>(i));
        auto w = radd.Write(client, op.member, op.block, data);
        w.status.ok() ? ++ok : ++failed;
        if (w.status.ok()) {
          latencies.Observe(std::string(label) + ".write",
                            ToMillis(w.latency));
        }
      }
    }
    std::printf("%-18s %4d ok, %d failed; read mean %.0f ms p95 %.0f ms; "
                "write mean %.0f ms p95 %.0f ms\n",
                label, ok, failed,
                latencies.Mean(std::string(label) + ".read"),
                latencies.Percentile(std::string(label) + ".read", 95),
                latencies.Mean(std::string(label) + ".write"),
                latencies.Percentile(std::string(label) + ".write", 95));
  };

  std::printf("phase 1: normal operation (5%% message loss, zipf 0.6, "
              "2:1 reads)\n");
  run_ops(300, "normal");

  std::printf("\nphase 2: site of member 3 crashes; the detector notices "
              "within a few heartbeats\n");
  cluster.CrashSite(radd.group()->SiteOfMember(3));
  sim.RunUntil(sim.Now() + Seconds(3));
  std::printf("detector verdict at site 0: member 3's site is %s\n",
              std::string(SiteStateName(detector.Perceived(
                  all_sites[0], radd.group()->SiteOfMember(3)))).c_str());
  run_ops(300, "degraded");

  std::printf("\nphase 3: repair, recovery sweep, back to normal\n");
  cluster.RestoreSite(radd.group()->SiteOfMember(3));
  sim.RunUntil(sim.Now() + Seconds(5));  // drain in-flight traffic
  Result<OpCounts> sweep = radd.group()->RunRecovery(3);
  std::printf("recovery sweep: %s\n", sweep.status().ToString().c_str());
  run_ops(300, "after");

  sim.RunUntil(sim.Now() + Seconds(5));
  Status inv = radd.group()->VerifyInvariants();
  std::printf("\nfinal invariants: %s\n", inv.ToString().c_str());
  std::printf("network: %llu messages, %llu bytes, %llu dropped; "
              "%llu parity retransmits, %llu duplicates absorbed\n",
              static_cast<unsigned long long>(net.stats().Get("net.messages")),
              static_cast<unsigned long long>(net.stats().Get("net.bytes")),
              static_cast<unsigned long long>(net.stats().Get("net.dropped")),
              static_cast<unsigned long long>(
                  radd.stats().Get("node.parity_retransmit")),
              static_cast<unsigned long long>(
                  radd.stats().Get("node.parity_duplicate")));
  return inv.ok() ? 0 : 1;
}
