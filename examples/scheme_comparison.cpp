// Runs all six high-availability schemes of the paper's §7 through the
// same scenario probes and prints a side-by-side comparison (space, cost
// per scenario, reliability).
//
//   ./build/examples/scheme_comparison

#include <cstdio>

#include "common/format.h"
#include "reliability/reliability.h"
#include "schemes/scheme.h"

using namespace radd;

int main() {
  const int g = 8;
  auto schemes = MakeAllSchemes(g);
  CostModel cost;

  TextTable costs("Measured operation costs in msec (G = 8, R = W = 30, "
                  "RR = RW = 75)");
  std::vector<std::string> header = {"scenario"};
  for (const auto& s : schemes) header.push_back(s->name());
  costs.SetHeader(header);
  for (Scenario sc : AllScenarios()) {
    std::vector<std::string> row = {std::string(ScenarioName(sc))};
    for (const auto& s : schemes) {
      std::optional<OpCounts> counts = s->Measure(sc);
      row.push_back(counts ? FormatDouble(cost.Price(*counts), 0)
                           : "blocks");
    }
    costs.AddRow(row);
  }
  costs.Print();

  TextTable summary("\nSpace and reliability (cautious conventional "
                    "environment)");
  summary.SetHeader(
      {"scheme", "space overhead", "MTTU (analytic)", "MTTF (analytic)"});
  AnalyticModel model(PaperEnvironments()[1], g);
  auto kind_of = [](const std::string& name) {
    for (SchemeKind k : AllSchemeKinds()) {
      if (SchemeKindName(k) == name) return k;
    }
    return SchemeKind::kRadd;
  };
  for (const auto& s : schemes) {
    SchemeKind k = kind_of(s->name());
    summary.AddRow({s->name(),
                    FormatDouble(s->SpaceOverheadPercent(), 2) + " %",
                    FormatHours(model.MttuHours(k)),
                    FormatHours(model.MttfHours(k))});
  }
  summary.Print();

  std::printf(
      "\nReading the table the way §8 does: RADD dominates RAID at equal\n"
      "25%% space (vastly better MTTU/MTTF for a modest write penalty);\n"
      "1/2-RADD and 2D-RADD buy another order of magnitude of availability\n"
      "for ~50%% space; ROWB needs 100%% space to beat them only on\n"
      "degraded-mode latency.\n");
  return 0;
}
