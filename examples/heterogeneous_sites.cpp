// Heterogeneous deployment (paper §4): nine sites with different disk
// capacities are packed into RADD groups of G+2 logical drives, each
// group spanning distinct sites, with no wasted blocks.
//
//   ./build/examples/heterogeneous_sites

#include <cstdio>

#include "core/radd.h"
#include "layout/layout.h"

using namespace radd;

int main() {
  const int g = 4;  // groups of 6 logical drives
  const BlockNum drive_blocks = 12;

  // Nine sites; capacities in blocks (multiples of the logical drive
  // size, as §4 requires).
  std::vector<BlockNum> capacities = {24, 24, 24, 12, 12, 12, 12, 12, 12};
  std::vector<SiteConfig> site_configs;
  for (BlockNum c : capacities) {
    site_configs.push_back(SiteConfig{1, c, 512});
  }
  Cluster cluster(site_configs);

  GroupAssigner assigner(g);
  Result<std::vector<DriveGroup>> groups =
      assigner.AssignBlocks(capacities, drive_blocks);
  if (!groups.ok()) {
    std::printf("assignment failed: %s\n",
                groups.status().ToString().c_str());
    return 1;
  }
  std::printf("packed %zu sites into %zu RADD groups of %d drives each\n",
              capacities.size(), groups->size(), g + 2);
  for (size_t i = 0; i < groups->size(); ++i) {
    std::printf("  group %zu:", i);
    for (const LogicalDrive& d : (*groups)[i].members) {
      std::printf(" site%u[%llu..%llu)", d.site,
                  static_cast<unsigned long long>(d.first_block),
                  static_cast<unsigned long long>(d.first_block +
                                                  d.drive_blocks));
    }
    std::printf("\n");
  }

  // Run each group as an independent RADD and exercise it.
  RaddConfig config;
  config.group_size = g;
  config.rows = drive_blocks;
  config.block_size = 512;

  std::vector<std::unique_ptr<RaddGroup>> radds;
  for (const DriveGroup& grp : *groups) {
    radds.push_back(
        std::make_unique<RaddGroup>(&cluster, config, grp.members));
  }

  Block payload(config.block_size);
  payload.FillPattern(0xfeed);
  for (size_t i = 0; i < radds.size(); ++i) {
    RaddGroup* radd = radds[i].get();
    SiteId home = radd->SiteOfMember(0);
    OpResult w = radd->Write(home, 0, 0, payload);
    OpResult r = radd->Read(home, 0, 0);
    std::printf("group %zu: write %s, read %s, invariants %s\n", i,
                w.status.ToString().c_str(), r.status.ToString().c_str(),
                radd->VerifyInvariants().ToString().c_str());
    if (!r.ok() || r.data != payload) return 1;
  }

  // A big site (site 0 hosts drives of both groups) crashing degrades
  // every group it participates in — and all of them still serve reads.
  std::printf("\n*** site 0 (a member of multiple groups) crashes ***\n");
  cluster.CrashSite(0);
  for (size_t i = 0; i < radds.size(); ++i) {
    RaddGroup* radd = radds[i].get();
    int member0 = radd->MemberAtSite(0);
    if (member0 < 0) {
      std::printf("group %zu: site 0 not a member, unaffected\n", i);
      continue;
    }
    SiteId reader = radd->SiteOfMember((member0 + 1) % radd->num_members());
    OpResult r = radd->Read(reader, member0, 0);
    std::printf("group %zu: degraded read of site 0's drive: %s (ops %s)\n",
                i, r.status.ToString().c_str(),
                r.counts.ToFormula().c_str());
  }

  cluster.RestoreSite(0);
  // Every group the site participates in runs its sweep; only the last
  // one flips the site back to up.
  std::vector<size_t> involved;
  for (size_t i = 0; i < radds.size(); ++i) {
    if (radds[i]->MemberAtSite(0) >= 0) involved.push_back(i);
  }
  for (size_t j = 0; j < involved.size(); ++j) {
    size_t i = involved[j];
    int member0 = radds[i]->MemberAtSite(0);
    bool last = j + 1 == involved.size();
    Result<OpCounts> rec = radds[i]->RunRecovery(member0, last);
    if (!rec.ok()) {
      std::printf("group %zu recovery failed: %s\n", i,
                  rec.status().ToString().c_str());
      return 1;
    }
  }
  bool all_ok = true;
  for (size_t i = 0; i < radds.size(); ++i) {
    all_ok = all_ok && radds[i]->VerifyInvariants().ok();
  }
  std::printf("site 0 recovered; all groups consistent: %s\n",
              all_ok ? "OK" : "VIOLATED");
  return all_ok ? 0 : 1;
}
