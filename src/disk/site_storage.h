// SiteStorage — the modeled disk subsystem of one site: the striped
// multi-spindle scheduler plus the §3.3-validated block cache, behind one
// handle the protocol layer can create per node and reset on crash.
//
// The protocol layer constructs one of these only when the site's
// DiskSchedConfig has a modeled feature on (extra spindles, a non-FIFO
// policy, seek costs, a cache). In the default configuration it keeps its
// legacy closed-form serial clock instead, so the stock event sequence is
// bit-identical to the pre-scheduler protocol.

#ifndef RADD_DISK_SITE_STORAGE_H_
#define RADD_DISK_SITE_STORAGE_H_

#include "disk/block_cache.h"
#include "disk/scheduler.h"

namespace radd {

class SiteStorage {
 public:
  SiteStorage(Simulator* sim, DiskModel base_model,
              const DiskSchedConfig& config)
      : sched_(sim, base_model, config), cache_(config.cache_blocks) {}

  /// Enqueues an I/O on the spindle owning `addr`; `done` runs at its
  /// completion time (see DiskScheduler::Submit).
  void Submit(IoClass cls, IoKind kind, BlockNum addr, uint32_t units,
              uint32_t slow, Simulator::Callback done) {
    sched_.Submit(cls, kind, addr, units, slow, std::move(done));
  }

  DiskScheduler* sched() { return &sched_; }
  BlockCache* cache() { return &cache_; }

  /// Crash: queued requests and cached blocks die with the process.
  void Reset() {
    sched_.Reset();
    cache_.Clear();
  }

 private:
  DiskScheduler sched_;
  BlockCache cache_;
};

}  // namespace radd

#endif  // RADD_DISK_SITE_STORAGE_H_
