// Simulated disks.
//
// A SimDisk is a pure state container: an array of B blocks, where each
// block carries its contents, the UID of the last write (zero = invalid,
// per paper §3.2), and — when the block serves as a parity block — the
// per-site UID array the paper requires for consistency-validated
// reconstruction. Latency is *not* modelled here; the site/controller layer
// charges costs from a DiskModel so that local and remote accesses can be
// accounted separately (Table 1).
//
// Failure injection: a failed disk loses all its blocks (media loss); reads
// return DataLoss until the block is rewritten (reconstruction). Two finer
// fault classes are injectable per block:
//   * latent sector errors — the medium reports an unreadable sector; the
//     read fails with DataLoss until the block is rewritten;
//   * silent corruption (bit rot) — the medium returns wrong bytes with no
//     error. Every write stamps the record with a content checksum and
//     every read verifies it, so rotted reads are *detected* and surface
//     as DataLoss (routed to formula-(2) reconstruction by the RADD layer)
//     instead of being returned to clients.

#ifndef RADD_DISK_DISK_H_
#define RADD_DISK_DISK_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"
#include "sim/simulator.h"

namespace radd {

/// Latency parameters of one disk (Table 1's R and W for local access).
/// Defaults are the paper's §7.3 numbers: R = W = 30 ms.
struct DiskModel {
  SimTime read_latency = Millis(30);
  SimTime write_latency = Millis(30);
};

/// The full record stored for one physical block.
struct BlockRecord {
  Block data;
  /// UID of the operation that last wrote this block; invalid (zero) means
  /// the block is in the paper's "invalid" state.
  Uid uid;
  /// For parity blocks only: UID of the latest update applied on behalf of
  /// each site in the group (indexed by position within the group).
  std::vector<Uid> uid_array;
  /// For spare blocks only: the UID the shadowed home block must carry
  /// when the spare is drained back during recovery. A degraded *write*
  /// sets this to the freshly minted UID it also sends to the parity
  /// site; a degraded-read *materialization* sets it to the parity UID
  /// array's entry for the home member, so the home-block/parity-array
  /// UID agreement survives recovery.
  Uid logical_uid;
  /// For spare blocks only: which group member this spare currently
  /// shadows (-1 = none). Under the single-failure assumption at most one
  /// member's content occupies a spare at a time; tracking it explicitly
  /// lets recovery detect double-failure artifacts instead of silently
  /// draining another member's data.
  int32_t spare_for = -1;
  /// Content checksum stamped by the disk on every write; 0 = untracked
  /// (never-written blocks). Reads verify it so silent corruption is
  /// detected instead of served.
  uint64_t checksum = 0;

  explicit BlockRecord(size_t block_size) : data(block_size) {}
};

/// One simulated disk: `capacity` blocks of `block_size` bytes.
class SimDisk {
 public:
  SimDisk(BlockNum capacity, size_t block_size)
      : capacity_(capacity), block_size_(block_size) {}

  BlockNum capacity() const { return capacity_; }
  size_t block_size() const { return block_size_; }
  bool failed() const { return failed_; }

  /// Simulates a head crash / media failure: all blocks are lost. The disk
  /// stays addressable (a spare has been swapped in) but every block reads
  /// as DataLoss until rewritten.
  void Fail();

  /// Returns the record for `block`, or NotFound / DataLoss.
  /// An address that was never written reads as an all-zero block with an
  /// invalid UID (the paper's initial state).
  Result<BlockRecord> Read(BlockNum block) const;

  /// Overwrites `block` with `data`, stamping `uid`. Clears any loss mark
  /// and any spare bookkeeping (the block becomes a plain valid block).
  Status Write(BlockNum block, const Block& data, Uid uid);

  /// Overwrites the whole record for `block` (used for spare blocks,
  /// which carry extra bookkeeping). Clears any loss mark.
  Status WriteRecord(BlockNum block, const BlockRecord& record);

  /// Applies `mask` to the block in place (parity maintenance, formula (1))
  /// and records `uid` at `group_position` of the block's UID array, which
  /// is grown to `group_size` on first use (paper step W4).
  Status ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                   size_t group_position, size_t group_size);

  /// Marks `block` invalid (zero UID) without touching contents — e.g. a
  /// recovering site invalidating its spare after draining it.
  Status Invalidate(BlockNum block);

  /// Marks `block` lost (reads return DataLoss until rewritten) — used by
  /// layered stores to poison stale redundancy they can no longer repair.
  Status Discard(BlockNum block);

  /// Injects a latent sector error: reads of `block` fail with DataLoss
  /// (the medium reports the sector unreadable) until it is rewritten.
  /// Unlike Fail()/Discard() this does not mark the disk failed.
  Status InjectLatentError(BlockNum block);

  /// Injects silent corruption: flips `bits` pseudo-random bits (derived
  /// from `seed`) in the stored contents of `block` without updating the
  /// checksum, modelling bit rot the medium does not report. Returns false
  /// if the block is not materialized (nothing to rot).
  Result<bool> CorruptBlock(BlockNum block, uint64_t seed, int bits = 1);

  /// Reads whose checksum verification caught silent corruption.
  uint64_t corruptions_detected() const { return corruptions_detected_; }

  /// True if the block holds a valid (nonzero) UID.
  bool IsValid(BlockNum block) const;

  /// Number of blocks ever written (for space accounting in tests).
  size_t materialized_blocks() const { return blocks_.size(); }

  /// Number of blocks still lost to a media failure (0 once fully rebuilt).
  size_t lost_count() const { return lost_.size(); }

 private:
  Status CheckAddress(BlockNum block) const;
  BlockRecord& GetOrCreate(BlockNum block);
  /// DataLoss if `block` is lost or latent-errored; OK otherwise.
  Status CheckReadable(BlockNum block) const;

  BlockNum capacity_;
  size_t block_size_;
  bool failed_ = false;
  mutable uint64_t corruptions_detected_ = 0;
  /// Blocks lost to a media failure and not yet rewritten.
  std::unordered_map<BlockNum, bool> lost_;
  /// Blocks with an injected latent sector error, cleared on rewrite.
  std::unordered_map<BlockNum, bool> latent_;
  /// Sparse store: untouched blocks are implicit zero/invalid.
  std::unordered_map<BlockNum, BlockRecord> blocks_;
};

/// The disk system of one site: N disks of B blocks each, addressed by a
/// flat block number in [0, N*B). Paper §3.1's "N physical disks each with
/// B blocks ... managed by the local operating system".
class DiskArray {
 public:
  DiskArray(int num_disks, BlockNum blocks_per_disk, size_t block_size);

  int num_disks() const { return static_cast<int>(disks_.size()); }
  BlockNum blocks_per_disk() const { return blocks_per_disk_; }
  BlockNum total_blocks() const {
    return blocks_per_disk_ * static_cast<BlockNum>(disks_.size());
  }
  size_t block_size() const { return block_size_; }

  /// Which disk a flat block number lives on.
  int DiskOf(BlockNum block) const {
    return static_cast<int>(block / blocks_per_disk_);
  }

  /// Fails disk `d` (media loss of its blocks). Out-of-range is a no-op
  /// returning InvalidArgument.
  Status FailDisk(int d);

  /// True if the disk holding `block` has unrepaired loss marks.
  bool DiskFailed(int d) const;

  /// Flat-address forms of the SimDisk operations.
  Result<BlockRecord> Read(BlockNum block) const;
  Status Write(BlockNum block, const Block& data, Uid uid);
  Status WriteRecord(BlockNum block, const BlockRecord& record);
  Status ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                   size_t group_position, size_t group_size);
  Status Invalidate(BlockNum block);
  Status Discard(BlockNum block);
  Status InjectLatentError(BlockNum block);
  Result<bool> CorruptBlock(BlockNum block, uint64_t seed, int bits = 1);
  bool IsValid(BlockNum block) const;

  /// Checksum-detected corrupt reads summed over all disks.
  uint64_t corruptions_detected() const;

  /// Blocks on `disk` that are currently lost (need reconstruction).
  std::vector<BlockNum> LostBlocks() const;

 private:
  BlockNum blocks_per_disk_;
  size_t block_size_;
  std::vector<SimDisk> disks_;
};

}  // namespace radd

#endif  // RADD_DISK_DISK_H_
