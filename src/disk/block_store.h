// BlockStore — the block-device interface one site exposes to the
// distributed layer.
//
// DiskArray implements it directly (plain disks). LocalRaid (see
// schemes/local_raid.h) implements it over a DiskArray while transparently
// maintaining *local* striped parity, which is exactly the paper's C-RAID
// composition: "the single site RAID algorithms are also applied to each
// local I/O operation, transparent to the higher level RADD operations".
//
// Implementations count the physical disk operations they perform; the
// composite schemes read those counters to report write amplification.

#ifndef RADD_DISK_BLOCK_STORE_H_
#define RADD_DISK_BLOCK_STORE_H_

#include "disk/disk.h"
#include "sim/stats.h"

namespace radd {

/// Abstract block device with the record semantics the RADD layer needs.
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual BlockNum total_blocks() const = 0;
  virtual size_t block_size() const = 0;

  virtual Result<BlockRecord> Read(BlockNum block) const = 0;

  /// Like Read but *uncounted*: used for status checks (is this block
  /// valid? lost?) and for buffered old-value fetches that the paper's
  /// cost model treats as free ("careful buffering of the old data block
  /// can remove one of the reads"). Implementations may still count real
  /// physical work this triggers (e.g. a RAID reconstructing a lost cell).
  virtual Result<BlockRecord> Peek(BlockNum block) const = 0;

  virtual Status Write(BlockNum block, const Block& data, Uid uid) = 0;
  virtual Status WriteRecord(BlockNum block, const BlockRecord& record) = 0;
  virtual Status ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                           size_t group_position, size_t group_size) = 0;
  virtual Status Invalidate(BlockNum block) = 0;

  /// Cumulative physical disk operations performed by this store.
  virtual OpCounts PhysicalOps() const = 0;
};

/// Pass-through store over a DiskArray: one logical op = one physical op.
class PlainStore : public BlockStore {
 public:
  explicit PlainStore(DiskArray* disks) : disks_(disks) {}

  BlockNum total_blocks() const override { return disks_->total_blocks(); }
  size_t block_size() const override { return disks_->block_size(); }

  Result<BlockRecord> Read(BlockNum block) const override {
    ++ops_.local_reads;
    return disks_->Read(block);
  }
  Result<BlockRecord> Peek(BlockNum block) const override {
    return disks_->Read(block);
  }
  Status Write(BlockNum block, const Block& data, Uid uid) override {
    ++ops_.local_writes;
    return disks_->Write(block, data, uid);
  }
  Status WriteRecord(BlockNum block, const BlockRecord& record) override {
    ++ops_.local_writes;
    return disks_->WriteRecord(block, record);
  }
  Status ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                   size_t group_position, size_t group_size) override {
    ++ops_.local_writes;
    return disks_->ApplyMask(block, mask, uid, group_position, group_size);
  }
  Status Invalidate(BlockNum block) override {
    ++ops_.local_writes;
    return disks_->Invalidate(block);
  }
  OpCounts PhysicalOps() const override { return ops_; }

 private:
  DiskArray* disks_;
  mutable OpCounts ops_;
};

}  // namespace radd

#endif  // RADD_DISK_BLOCK_STORE_H_
