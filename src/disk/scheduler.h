// DiskScheduler — modeled per-spindle I/O queues for one site.
//
// The protocol layer used to charge disk latency with a single closed-form
// serial clock per site (one request at a time, FIFO by arrival). That
// reproduces the paper's §7.3 model exactly, but it also makes the site's
// disk the scaling ceiling of the §4 sharded volume: a site hosting drives
// of k groups funnels k parity chains through one 30 ms-per-request queue.
//
// This scheduler generalizes the model without changing its defaults:
//
//   * a site stripes its site-local LBA space over S spindles
//     (spindle = block mod S), each spindle serving one request at a time
//     from its own queue;
//   * requests carry an I/O *class* (foreground, parity-writeback,
//     recovery, scrub) and a *kind* (read/write), and each spindle picks
//     the next request by a pluggable policy:
//       - kFifo:     strict arrival order (the legacy discipline);
//       - kElevator: LOOK — serve the nearest address in the current sweep
//         direction, reversing at the ends; pays off only when a seek cost
//         (`seek_unit`) is modeled on top of the flat per-request latency;
//       - kDeadline: class separation — foreground preempts background
//         (writeback/recovery/scrub) in the queue, but every request gets
//         an absolute deadline at enqueue and an expired deadline trumps
//         class, so background starvation is bounded by
//         `background_deadline` plus one service time (the dispatch is
//         non-preemptive).
//
// With spindles = 1, policy = kFifo and no seek modeling the engine is
// equivalent to the legacy closed-form clock (completion times identical;
// the scheduler unit tests assert it). The protocol layer still takes the
// closed-form fast path in that configuration so the default event
// sequence — not just the completion times — is bit-identical.

#ifndef RADD_DISK_SCHEDULER_H_
#define RADD_DISK_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "disk/disk.h"
#include "sim/simulator.h"

namespace radd {

/// Who is asking for the I/O. Lower value = higher priority under the
/// deadline policy (foreground client traffic preempts maintenance).
enum class IoClass : uint8_t {
  kForeground = 0,  ///< client reads/writes and the flows serving them
  kWriteback = 1,   ///< parity updates / batched parity applies
  kRecovery = 2,    ///< recovery sweep, spare drains, materializations
  kScrub = 3,       ///< scrub repairs
};

enum class IoKind : uint8_t { kRead, kWrite };

enum class IoPolicy : uint8_t { kFifo, kElevator, kDeadline };

/// Disk subsystem shape of one site. The defaults describe the legacy
/// model exactly: one spindle, FIFO, no seek cost, no cache.
struct DiskSchedConfig {
  /// Spindles the site stripes its LBA space over (block mod spindles).
  int spindles = 1;
  IoPolicy policy = IoPolicy::kFifo;
  /// Per-spindle latency overrides for heterogeneous sites; spindle i uses
  /// spindle_models[i] when present, the site's base DiskModel otherwise.
  std::vector<DiskModel> spindle_models;
  /// Optional seek modeling: extra service time per block of distance
  /// between a spindle's last-served address and the next request's,
  /// capped at `seek_cap`. 0 keeps the paper's flat per-request cost.
  SimTime seek_unit = 0;
  SimTime seek_cap = Millis(10);
  /// Deadline policy: how long a request of each side may wait before its
  /// expired deadline trumps class priority (bounded starvation).
  SimTime foreground_deadline = Millis(60);
  SimTime background_deadline = Millis(320);
  /// Site block-cache capacity in blocks; 0 disables the cache.
  size_t cache_blocks = 0;

  /// True when any modeled feature is on — the protocol layer must route
  /// requests through a DiskScheduler instead of its closed-form clock.
  bool modeled() const {
    return spindles > 1 || policy != IoPolicy::kFifo || seek_unit != 0 ||
           !spindle_models.empty() || cache_blocks > 0;
  }
};

/// Event-driven multi-spindle request scheduler. All calls must come from
/// the owning site's simulator events (the same discipline the legacy
/// per-site clock had), so no locking is needed even on sharded runs.
class DiskScheduler {
 public:
  DiskScheduler(Simulator* sim, DiskModel base_model,
                const DiskSchedConfig& config);

  /// Enqueues an I/O of `units` sequential block operations starting at
  /// `addr` and runs `done` at its completion time. `slow` is the site's
  /// gray-failure service-time multiplier (1 = healthy).
  void Submit(IoClass cls, IoKind kind, BlockNum addr, uint32_t units,
              uint32_t slow, Simulator::Callback done);

  /// Crash discard: drops every queued request and frees every spindle.
  /// In-flight completion events are fenced by a generation check (they
  /// belonged to the dead incarnation).
  void Reset();

  int spindles() const { return static_cast<int>(spindles_.size()); }
  /// Requests waiting in queues (not the ones being serviced).
  size_t queued() const;
  uint64_t completed() const { return completed_; }
  /// Deadline-policy dispatches forced by an expired deadline — i.e. how
  /// often the starvation bound actually bit.
  uint64_t deadline_dispatches() const { return deadline_dispatches_; }

 private:
  struct Request {
    IoClass cls;
    IoKind kind;
    BlockNum addr = 0;
    uint32_t units = 1;
    uint32_t slow = 1;
    SimTime deadline = 0;
    uint64_t seq = 0;  ///< arrival order; final tie-break everywhere
    Simulator::Callback done;
  };
  struct Spindle {
    std::vector<Request> queue;
    bool busy = false;
    BlockNum head = 0;  ///< last dispatched address (seek / LOOK state)
    int dir = 1;        ///< LOOK sweep direction
    DiskModel model;
  };

  size_t SpindleOf(BlockNum addr) const {
    return static_cast<size_t>(addr) % spindles_.size();
  }
  void Dispatch(size_t si);
  size_t PickNext(const Spindle& sp) const;
  size_t PickElevator(const Spindle& sp) const;
  SimTime ServiceTime(const Spindle& sp, const Request& r) const;

  Simulator* sim_;
  DiskSchedConfig config_;
  std::vector<Spindle> spindles_;
  uint64_t next_seq_ = 0;
  uint64_t generation_ = 0;  ///< bumped by Reset; fences dead completions
  uint64_t completed_ = 0;
  uint64_t deadline_dispatches_ = 0;
};

}  // namespace radd

#endif  // RADD_DISK_SCHEDULER_H_
