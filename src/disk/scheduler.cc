#include "disk/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace radd {

DiskScheduler::DiskScheduler(Simulator* sim, DiskModel base_model,
                             const DiskSchedConfig& config)
    : sim_(sim), config_(config) {
  const int n = config_.spindles < 1 ? 1 : config_.spindles;
  spindles_.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < spindles_.size(); ++i) {
    spindles_[i].model = i < config_.spindle_models.size()
                             ? config_.spindle_models[i]
                             : base_model;
  }
}

void DiskScheduler::Submit(IoClass cls, IoKind kind, BlockNum addr,
                           uint32_t units, uint32_t slow,
                           Simulator::Callback done) {
  Request r;
  r.cls = cls;
  r.kind = kind;
  r.addr = addr;
  r.units = units < 1 ? 1 : units;
  r.slow = slow < 1 ? 1 : slow;
  r.deadline = sim_->Now() + (cls == IoClass::kForeground
                                  ? config_.foreground_deadline
                                  : config_.background_deadline);
  r.seq = next_seq_++;
  r.done = std::move(done);
  const size_t si = SpindleOf(addr);
  spindles_[si].queue.push_back(std::move(r));
  if (!spindles_[si].busy) Dispatch(si);
}

void DiskScheduler::Reset() {
  ++generation_;
  for (Spindle& sp : spindles_) {
    sp.queue.clear();
    sp.busy = false;
    sp.head = 0;
    sp.dir = 1;
  }
}

size_t DiskScheduler::queued() const {
  size_t total = 0;
  for (const Spindle& sp : spindles_) total += sp.queue.size();
  return total;
}

SimTime DiskScheduler::ServiceTime(const Spindle& sp,
                                   const Request& r) const {
  const SimTime per_block = r.kind == IoKind::kRead
                                ? sp.model.read_latency
                                : sp.model.write_latency;
  SimTime service = per_block * static_cast<SimTime>(r.units) *
                    static_cast<SimTime>(r.slow);
  if (config_.seek_unit != 0) {
    const BlockNum dist =
        r.addr > sp.head ? r.addr - sp.head : sp.head - r.addr;
    service +=
        std::min(config_.seek_cap,
                 config_.seek_unit * static_cast<SimTime>(dist));
  }
  return service;
}

size_t DiskScheduler::PickElevator(const Spindle& sp) const {
  // LOOK: nearest address at-or-past the head in the sweep direction;
  // if the direction is exhausted, the nearest one behind (the caller
  // flips the direction on dispatch). Ties go to arrival order.
  size_t best = sp.queue.size();
  size_t fallback = sp.queue.size();
  BlockNum best_dist = 0, fallback_dist = 0;
  for (size_t i = 0; i < sp.queue.size(); ++i) {
    const BlockNum a = sp.queue[i].addr;
    const bool ahead = sp.dir > 0 ? a >= sp.head : a <= sp.head;
    const BlockNum dist = a > sp.head ? a - sp.head : sp.head - a;
    if (ahead) {
      if (best == sp.queue.size() || dist < best_dist ||
          (dist == best_dist && sp.queue[i].seq < sp.queue[best].seq)) {
        best = i;
        best_dist = dist;
      }
    } else if (best == sp.queue.size()) {
      if (fallback == sp.queue.size() || dist < fallback_dist ||
          (dist == fallback_dist &&
           sp.queue[i].seq < sp.queue[fallback].seq)) {
        fallback = i;
        fallback_dist = dist;
      }
    }
  }
  return best != sp.queue.size() ? best : fallback;
}

size_t DiskScheduler::PickNext(const Spindle& sp) const {
  switch (config_.policy) {
    case IoPolicy::kFifo: {
      size_t best = 0;
      for (size_t i = 1; i < sp.queue.size(); ++i) {
        if (sp.queue[i].seq < sp.queue[best].seq) best = i;
      }
      return best;
    }
    case IoPolicy::kElevator:
      return PickElevator(sp);
    case IoPolicy::kDeadline: {
      // An expired deadline trumps class priority: earliest deadline
      // first among the expired. Otherwise the best (lowest) class wins
      // and the shortest seek breaks ties inside it, so foreground
      // traffic preempts maintenance in the queue while maintenance
      // starvation stays bounded by its deadline.
      const SimTime now = sim_->Now();
      size_t best = sp.queue.size();
      bool best_expired = false;
      for (size_t i = 0; i < sp.queue.size(); ++i) {
        const Request& r = sp.queue[i];
        const bool expired = r.deadline <= now;
        if (best == sp.queue.size()) {
          best = i;
          best_expired = expired;
          continue;
        }
        const Request& b = sp.queue[best];
        bool better;
        if (expired != best_expired) {
          better = expired;
        } else if (expired) {
          better = r.deadline < b.deadline ||
                   (r.deadline == b.deadline && r.seq < b.seq);
        } else if (r.cls != b.cls) {
          better = r.cls < b.cls;
        } else {
          const BlockNum rd =
              r.addr > sp.head ? r.addr - sp.head : sp.head - r.addr;
          const BlockNum bd =
              b.addr > sp.head ? b.addr - sp.head : sp.head - b.addr;
          better = rd < bd || (rd == bd && r.seq < b.seq);
        }
        if (better) {
          best = i;
          best_expired = expired;
        }
      }
      return best;
    }
  }
  std::abort();  // unreachable
}

void DiskScheduler::Dispatch(size_t si) {
  Spindle& sp = spindles_[si];
  if (sp.queue.empty()) {
    sp.busy = false;
    return;
  }
  const size_t pick = PickNext(sp);
  Request r = std::move(sp.queue[pick]);
  sp.queue.erase(sp.queue.begin() + static_cast<long>(pick));
  if (config_.policy == IoPolicy::kDeadline && r.deadline <= sim_->Now() &&
      r.cls != IoClass::kForeground) {
    ++deadline_dispatches_;
  }
  if (config_.policy == IoPolicy::kElevator) {
    // Flip the sweep when the pick is behind the head.
    if (sp.dir > 0 ? r.addr < sp.head : r.addr > sp.head) sp.dir = -sp.dir;
  }
  const SimTime service = ServiceTime(sp, r);
  sp.head = r.addr;
  sp.busy = true;
  sim_->At(sim_->Now() + service,
           [this, si, gen = generation_, done = std::move(r.done)]() {
             if (gen != generation_) return;
             ++completed_;
             done();
             Dispatch(si);
           });
}

}  // namespace radd
