// BlockCache — a bounded site-level LRU read cache whose hits are gated
// by the paper's §3.3 UID rule.
//
// The cache holds (data, uid) copies of blocks the site recently served.
// A lookup alone is never enough to serve a hit: the RADD layer must
// validate that the cached UID still equals the UID of the store's current
// record — the same "does the UID match the authority's expectation" test
// §3.3 uses to validate reconstruction. UIDs name *writes*, not blocks, so
// UID equality implies content equality: if validation passes the cached
// bytes are the bytes the last acknowledged write produced, no matter what
// recovery rebuilds, spare drains or scrub repairs happened to the store
// in between (those either preserve the UID — same content — or change it,
// which the validation catches and turns into a miss).
//
// Invalidation is therefore a performance concern, not a correctness one,
// but the node layer still invalidates eagerly on every local mutation and
// clears the cache wholesale on ResetNodeVolatileState (a crash loses the
// cache with the rest of volatile state).

#ifndef RADD_DISK_BLOCK_CACHE_H_
#define RADD_DISK_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/block.h"
#include "common/uid.h"

namespace radd {

class BlockCache {
 public:
  struct Entry {
    Block data;
    Uid uid;
    Entry(Block d, Uid u) : data(std::move(d)), uid(u) {}
  };

  /// `capacity` in blocks; 0 disables every operation.
  explicit BlockCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry for `addr` (moved to MRU) or nullptr. The caller
  /// must validate the UID against the store before serving the data and
  /// call CountHit()/CountStale() with the outcome.
  const Entry* Lookup(BlockNum addr);

  void Insert(BlockNum addr, const Block& data, Uid uid);
  void Invalidate(BlockNum addr);
  void Clear();

  void CountHit() { ++hits_; }
  /// A lookup whose UID validation failed (stale entry declined).
  void CountStale() { ++stale_rejected_; }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t stale_rejected() const { return stale_rejected_; }

 private:
  using Lru = std::list<std::pair<BlockNum, Entry>>;
  size_t capacity_;
  Lru lru_;  ///< front = MRU
  std::unordered_map<BlockNum, Lru::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t stale_rejected_ = 0;
};

}  // namespace radd

#endif  // RADD_DISK_BLOCK_CACHE_H_
