#include "disk/block_cache.h"

namespace radd {

const BlockCache::Entry* BlockCache::Lookup(BlockNum addr) {
  if (capacity_ == 0) return nullptr;
  auto it = map_.find(addr);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return &lru_.front().second;
}

void BlockCache::Insert(BlockNum addr, const Block& data, Uid uid) {
  if (capacity_ == 0) return;
  auto it = map_.find(addr);
  if (it != map_.end()) {
    it->second->second = Entry(data, uid);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(addr, Entry(data, uid));
  map_[addr] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void BlockCache::Invalidate(BlockNum addr) {
  auto it = map_.find(addr);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void BlockCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace radd
