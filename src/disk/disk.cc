#include "disk/disk.h"

namespace radd {

void SimDisk::Fail() {
  failed_ = true;
  lost_.clear();
  latent_.clear();
  // Every materialized block is lost; unmaterialized blocks become lost
  // too — we mark the whole address space lazily via the failed_ flag and
  // record explicit loss marks for materialized blocks so rewrites can
  // clear them individually.
  for (BlockNum b = 0; b < capacity_; ++b) lost_[b] = true;
  blocks_.clear();
}

Status SimDisk::CheckAddress(BlockNum block) const {
  if (block >= capacity_) {
    return Status::NotFound("block " + std::to_string(block) +
                            " beyond disk capacity " +
                            std::to_string(capacity_));
  }
  return Status::OK();
}

BlockRecord& SimDisk::GetOrCreate(BlockNum block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    it = blocks_.emplace(block, BlockRecord(block_size_)).first;
  }
  return it->second;
}

Status SimDisk::CheckReadable(BlockNum block) const {
  auto lost = lost_.find(block);
  if (lost != lost_.end() && lost->second) {
    return Status::DataLoss("block " + std::to_string(block) +
                            " lost to disk failure");
  }
  auto latent = latent_.find(block);
  if (latent != latent_.end() && latent->second) {
    return Status::DataLoss("block " + std::to_string(block) +
                            " unreadable (latent sector error)");
  }
  return Status::OK();
}

Result<BlockRecord> SimDisk::Read(BlockNum block) const {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  RADD_RETURN_NOT_OK(CheckReadable(block));
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return BlockRecord(block_size_);
  // End-to-end integrity: the checksum stamped at write time must match
  // the bytes the medium returns. A mismatch is silent corruption; report
  // it as DataLoss so the RADD layer reconstructs instead of serving rot.
  if (it->second.checksum != 0 &&
      it->second.checksum != it->second.data.Checksum()) {
    ++corruptions_detected_;
    return Status::DataLoss("block " + std::to_string(block) +
                            " failed checksum (silent corruption)");
  }
  return it->second;
}

Status SimDisk::Write(BlockNum block, const Block& data, Uid uid) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  if (data.size() != block_size_) {
    return Status::InvalidArgument("write size " +
                                   std::to_string(data.size()) +
                                   " != block size " +
                                   std::to_string(block_size_));
  }
  BlockRecord& rec = GetOrCreate(block);
  rec.data = data;
  rec.uid = uid;
  rec.logical_uid = Uid();
  rec.spare_for = -1;
  rec.checksum = rec.data.Checksum();
  lost_.erase(block);
  latent_.erase(block);
  return Status::OK();
}

Status SimDisk::WriteRecord(BlockNum block, const BlockRecord& record) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  if (record.data.size() != block_size_) {
    return Status::InvalidArgument("record block size mismatch");
  }
  BlockRecord& rec = GetOrCreate(block);
  rec = record;
  // The disk, not the caller, owns the integrity stamp.
  rec.checksum = rec.data.Checksum();
  lost_.erase(block);
  latent_.erase(block);
  return Status::OK();
}

Status SimDisk::ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                          size_t group_position, size_t group_size) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  RADD_RETURN_NOT_OK(CheckReadable(block));
  if (mask.block_size() != block_size_) {
    return Status::InvalidArgument("mask size mismatch");
  }
  if (group_position >= group_size) {
    return Status::InvalidArgument("group position out of range");
  }
  BlockRecord& rec = GetOrCreate(block);
  // Applying a delta on top of rotted parity would propagate the rot into
  // every future reconstruction of this row: verify before XORing.
  if (rec.checksum != 0 && rec.checksum != rec.data.Checksum()) {
    ++corruptions_detected_;
    return Status::DataLoss("parity block " + std::to_string(block) +
                            " failed checksum (silent corruption)");
  }
  RADD_RETURN_NOT_OK(mask.ApplyTo(&rec.data));
  if (rec.uid_array.size() < group_size) rec.uid_array.resize(group_size);
  rec.uid_array[group_position] = uid;
  // The parity block itself also becomes "valid": stamp the triggering UID.
  rec.uid = uid;
  rec.checksum = rec.data.Checksum();
  return Status::OK();
}

Status SimDisk::Invalidate(BlockNum block) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    it->second.uid = Uid();
    it->second.logical_uid = Uid();
    it->second.spare_for = -1;
  }
  return Status::OK();
}

Status SimDisk::Discard(BlockNum block) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  blocks_.erase(block);
  latent_.erase(block);
  lost_[block] = true;
  return Status::OK();
}

Status SimDisk::InjectLatentError(BlockNum block) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  latent_[block] = true;
  return Status::OK();
}

Result<bool> SimDisk::CorruptBlock(BlockNum block, uint64_t seed,
                                   int bits) {
  RADD_RETURN_NOT_OK(CheckAddress(block));
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return false;  // nothing materialized to rot
  Block& data = it->second.data;
  // splitmix64 over the seed picks the bit positions deterministically.
  uint64_t x = seed;
  for (int i = 0; i < bits; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    size_t pos = static_cast<size_t>(z % (data.size() * 8));
    data[pos / 8] = static_cast<uint8_t>(data[pos / 8] ^ (1u << (pos % 8)));
  }
  return true;
}

bool SimDisk::IsValid(BlockNum block) const {
  if (!CheckReadable(block).ok()) return false;
  auto it = blocks_.find(block);
  return it != blocks_.end() && it->second.uid.valid();
}

DiskArray::DiskArray(int num_disks, BlockNum blocks_per_disk,
                     size_t block_size)
    : blocks_per_disk_(blocks_per_disk), block_size_(block_size) {
  disks_.reserve(static_cast<size_t>(num_disks));
  for (int i = 0; i < num_disks; ++i) {
    disks_.emplace_back(blocks_per_disk, block_size);
  }
}

Status DiskArray::FailDisk(int d) {
  if (d < 0 || d >= num_disks()) {
    return Status::InvalidArgument("no disk " + std::to_string(d));
  }
  disks_[static_cast<size_t>(d)].Fail();
  return Status::OK();
}

bool DiskArray::DiskFailed(int d) const {
  if (d < 0 || d >= num_disks()) return false;
  return disks_[static_cast<size_t>(d)].lost_count() > 0;
}

Result<BlockRecord> DiskArray::Read(BlockNum block) const {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].Read(
      block % blocks_per_disk_);
}

Status DiskArray::Write(BlockNum block, const Block& data, Uid uid) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].Write(
      block % blocks_per_disk_, data, uid);
}

Status DiskArray::WriteRecord(BlockNum block, const BlockRecord& record) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].WriteRecord(
      block % blocks_per_disk_, record);
}

Status DiskArray::ApplyMask(BlockNum block, const ChangeMask& mask, Uid uid,
                            size_t group_position, size_t group_size) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].ApplyMask(
      block % blocks_per_disk_, mask, uid, group_position, group_size);
}

Status DiskArray::Invalidate(BlockNum block) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].Invalidate(
      block % blocks_per_disk_);
}

Status DiskArray::Discard(BlockNum block) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].Discard(
      block % blocks_per_disk_);
}

Status DiskArray::InjectLatentError(BlockNum block) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].InjectLatentError(
      block % blocks_per_disk_);
}

Result<bool> DiskArray::CorruptBlock(BlockNum block, uint64_t seed,
                                     int bits) {
  if (block >= total_blocks()) {
    return Status::NotFound("block beyond array capacity");
  }
  return disks_[static_cast<size_t>(DiskOf(block))].CorruptBlock(
      block % blocks_per_disk_, seed, bits);
}

uint64_t DiskArray::corruptions_detected() const {
  uint64_t total = 0;
  for (const SimDisk& d : disks_) total += d.corruptions_detected();
  return total;
}

bool DiskArray::IsValid(BlockNum block) const {
  if (block >= total_blocks()) return false;
  return disks_[static_cast<size_t>(DiskOf(block))].IsValid(
      block % blocks_per_disk_);
}

std::vector<BlockNum> DiskArray::LostBlocks() const {
  std::vector<BlockNum> out;
  for (size_t d = 0; d < disks_.size(); ++d) {
    const SimDisk& disk = disks_[d];
    for (BlockNum b = 0; b < disk.capacity(); ++b) {
      // A block is lost if the disk failed and the block has not been
      // rewritten since.
      Result<BlockRecord> r = disk.Read(b);
      if (!r.ok() && r.status().IsDataLoss()) {
        out.push_back(static_cast<BlockNum>(d) * blocks_per_disk_ + b);
      }
    }
  }
  return out;
}

}  // namespace radd
