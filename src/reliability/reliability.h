// Reliability models (paper §7.5): the four Table-2 environments, the
// closed-form MTTU / MTTF formulas of Figures 5 and 6, and a Monte-Carlo
// failure-process simulator that estimates the same quantities empirically
// under the paper's assumptions (exponential inter-failure times,
// independent failures, deterministic repair windows).
//
// MTTU — mean time to unavailability of a specific data item: the item
// must wait for a repair before it can be served.
// MTTF — mean time until some data item is irretrievably lost.

#ifndef RADD_RELIABILITY_RELIABILITY_H_
#define RADD_RELIABILITY_RELIABILITY_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace radd {

/// One column of Table 2. All times in hours.
struct Environment {
  std::string name;
  double disk_mttf = 30000;
  double disk_mttr = 1;
  double site_mttf = 150;
  double site_mttr = 0.5;
  double disaster_mttf = 150000;
  double disaster_mttr = 24;
  int disks_per_site = 100;  ///< the paper's N
};

/// The paper's four environments, in Table 2's column order:
/// cautious-RAID, cautious-conventional, normal-RAID, normal-conventional.
const std::vector<Environment>& PaperEnvironments();

/// Identifier for the six schemes in the reliability comparison.
enum class SchemeKind { kRadd, kRowb, kRaid, kCRaid, kTwoDRadd, kHalfRadd };

const std::vector<SchemeKind>& AllSchemeKinds();
std::string_view SchemeKindName(SchemeKind k);

/// Closed-form results, following the paper's formulas literally:
///   (3)  MTTU = site-MTTF^2 / (site-MTTR * (G+1))          [RADD, C-RAID]
///        MTTU with G=1                                      [ROWB]
///        MTTU = site-MTTF                                   [RAID]
///        MTTU = site-MTTF^3 / (site-MTTR * (G+1)^2)         [2D-RADD]
///        (3) with G/2                                       [1/2-RADD]
///   (4)  MTTF = site-MTTF * disk-MTTF /
///               (site-MTTR * (G+1) * N)                     [RADD, ROWB]
///        MTTF = disaster-MTTF / (G+2)                       [RAID]
///        C-RAID / 2D-RADD: dominated by >500-year events; we report the
///        double-disaster bound.
class AnalyticModel {
 public:
  AnalyticModel(const Environment& env, int g) : env_(env), g_(g) {}

  /// Hours until the item is unavailable (Figure 5's formulas).
  double MttuHours(SchemeKind k) const;

  /// Hours until data loss (Figure 6's formula family).
  double MttfHours(SchemeKind k) const;

  /// A refined MTTF estimate that sums the rates of all four loss events
  /// the paper enumerates (instead of only event 4) and models the
  /// probability that an aligned disk fails during a disaster-recovery
  /// window with a Poisson exposure. Used as a sanity bound for the
  /// Monte-Carlo output.
  double MttfHoursRefined(SchemeKind k) const;

 private:
  Environment env_;
  int g_;
};

/// Monte-Carlo estimation of the same metrics.
///
/// The world: G+2 sites (a 2D grid for 2D-RADD), each with N disks.
/// Independent exponential processes generate temporary site failures,
/// site disasters, and disk failures; each failure opens a repair window
/// of the environment's deterministic MTTR. A scheme-specific predicate
/// maps the set of open windows to "item unavailable" / "data lost".
class MonteCarlo {
 public:
  MonteCarlo(const Environment& env, int g, uint64_t seed = 0x5eed);

  struct Estimate {
    double mean_hours = 0;
    double stddev_hours = 0;
    int trials = 0;
  };

  /// Mean time until the tracked item (block 0 of disk 0 of site 0) is
  /// unavailable.
  Estimate EstimateMttu(SchemeKind k, int trials);

  /// Mean time until any data is irretrievably lost. `horizon_hours`
  /// bounds each trial; trials that survive the horizon are counted at
  /// the horizon (making the estimate a lower bound for very reliable
  /// schemes, reported via `censored`).
  struct MttfEstimate : Estimate {
    int censored = 0;
    double horizon_hours = 0;
  };
  MttfEstimate EstimateMttf(SchemeKind k, int trials,
                            double horizon_hours = 24 * 365 * 500);

 private:
  Environment env_;
  int g_;
  Rng rng_;
};

}  // namespace radd

#endif  // RADD_RELIABILITY_RELIABILITY_H_
