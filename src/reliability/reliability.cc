#include "reliability/reliability.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

namespace radd {

const std::vector<Environment>& PaperEnvironments() {
  static const std::vector<Environment> kEnvs = {
      {"cautious RAID", 30000, 1, 150, 0.5, 150000, 24, 100},
      {"cautious conventional", 30000, 8, 150, 0.5, 150000, 24, 10},
      {"normal RAID", 30000, 1, 150, 0.5, 600000, 300, 100},
      {"normal conventional", 30000, 8, 150, 0.5, 600000, 300, 10},
  };
  return kEnvs;
}

const std::vector<SchemeKind>& AllSchemeKinds() {
  static const std::vector<SchemeKind> kAll = {
      SchemeKind::kRadd,     SchemeKind::kRowb,     SchemeKind::kRaid,
      SchemeKind::kCRaid,    SchemeKind::kTwoDRadd, SchemeKind::kHalfRadd,
  };
  return kAll;
}

std::string_view SchemeKindName(SchemeKind k) {
  switch (k) {
    case SchemeKind::kRadd:
      return "RADD";
    case SchemeKind::kRowb:
      return "ROWB";
    case SchemeKind::kRaid:
      return "RAID";
    case SchemeKind::kCRaid:
      return "C-RAID";
    case SchemeKind::kTwoDRadd:
      return "2D-RADD";
    case SchemeKind::kHalfRadd:
      return "1/2-RADD";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Closed forms.
// ---------------------------------------------------------------------------

double AnalyticModel::MttuHours(SchemeKind k) const {
  const double mttf = env_.site_mttf;
  const double mttr = env_.site_mttr;
  switch (k) {
    case SchemeKind::kRadd:
    case SchemeKind::kCRaid:
      // Formula (3).
      return mttf * mttf / (mttr * (g_ + 1));
    case SchemeKind::kRowb:
      // (3) with G = 1.
      return mttf * mttf / (mttr * 2);
    case SchemeKind::kRaid:
      return mttf;
    case SchemeKind::kTwoDRadd:
      // The paper's printed form (a triple overlap of specific sites).
      return mttf * mttf * mttf / (mttr * (g_ + 1) * (g_ + 1));
    case SchemeKind::kHalfRadd:
      return mttf * mttf / (mttr * (g_ / 2 + 1));
  }
  return 0;
}

double AnalyticModel::MttfHours(SchemeKind k) const {
  switch (k) {
    case SchemeKind::kRadd:
    case SchemeKind::kRowb:
      // Formula (4): a disk failure while recovering from a disaster
      // dominates. ROWB uses (4) as the paper's conservative estimate.
      return env_.site_mttf * env_.disk_mttf /
             (env_.site_mttr * (g_ + 1) * env_.disks_per_site);
    case SchemeKind::kRaid:
      return env_.disaster_mttf / (g_ + 2);
    case SchemeKind::kCRaid:
    case SchemeKind::kTwoDRadd: {
      // ">500 years": bound by a second disaster during recovery from the
      // first, across the group.
      double group_disaster_mttf = env_.disaster_mttf / (g_ + 2);
      double p_second = std::min(
          1.0, (g_ + 1) * env_.disaster_mttr / env_.disaster_mttf);
      return group_disaster_mttf / std::max(p_second, 1e-12);
    }
    case SchemeKind::kHalfRadd:
      return env_.site_mttf * env_.disk_mttf /
             (env_.site_mttr * (g_ / 2 + 1) * env_.disks_per_site);
  }
  return 0;
}

double AnalyticModel::MttfHoursRefined(SchemeKind k) const {
  const double n = env_.disks_per_site;
  const int sites = g_ + 2;
  const double disaster_rate = sites / env_.disaster_mttf;

  // Probability that a *specific other* component fails within a window.
  auto p_in = [](double window, double mttf) {
    return 1.0 - std::exp(-window / mttf);
  };

  switch (k) {
    case SchemeKind::kRadd:
    case SchemeKind::kRowb:
    case SchemeKind::kHalfRadd: {
      int others = k == SchemeKind::kHalfRadd ? g_ / 2 + 1
                   : k == SchemeKind::kRowb   ? 1
                                              : g_ + 1;
      // (1) second disaster during the first's recovery.
      double r1 = disaster_rate *
                  p_in(env_.disaster_mttr, env_.disaster_mttf / others);
      // (4)+(2) disk failure overlapping a disaster recovery: for ROWB the
      // aligned partner disk must fail; for RADD any of the other sites'
      // aligned disks. Exposure = others * N disks, but only the ones
      // aligned with lost content matter -> N windows of aligned pairs.
      double r4 = disaster_rate *
                  p_in(env_.disaster_mttr, env_.disk_mttf / (others * n));
      // (3) aligned disk pair overlap.
      double disk_rate = sites * n / env_.disk_mttf;
      double r3 =
          disk_rate * p_in(env_.disk_mttr, env_.disk_mttf / others);
      return 1.0 / (r1 + r3 + r4);
    }
    case SchemeKind::kRaid: {
      // Any disaster, plus local double-disk within a group of g_+2.
      double local_groups = std::max(1.0, n / (g_ + 2));
      double disk_rate = sites * n / env_.disk_mttf;
      double r_dd = disk_rate *
                    p_in(env_.disk_mttr,
                         env_.disk_mttf / ((g_ + 1) * local_groups /
                                           std::max(1.0, local_groups)));
      (void)r_dd;
      double r_double_disk =
          disk_rate * p_in(env_.disk_mttr, env_.disk_mttf / (g_ + 1));
      return 1.0 / (disaster_rate + r_double_disk);
    }
    case SchemeKind::kCRaid: {
      // Content loss at one site needs a disaster or local double disk;
      // system loss needs two overlapping.
      double site_loss_rate =
          1.0 / env_.disaster_mttf +
          (n / env_.disk_mttf) *
              p_in(env_.disk_mttr, env_.disk_mttf / (g_ + 1));
      double window = env_.disaster_mttr;
      double r = sites * site_loss_rate *
                 p_in(window, 1.0 / ((g_ + 1) * site_loss_rate));
      return 1.0 / std::max(r, 1e-12);
    }
    case SchemeKind::kTwoDRadd: {
      // Needs >= 4 content losses in a rectangle; bound by the paper's
      // double-disaster figure.
      return MttfHours(SchemeKind::kTwoDRadd);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Monte Carlo.
// ---------------------------------------------------------------------------

namespace {

/// One component's alternating failure/repair renewal process.
struct Process {
  double mttf;
  double mttr;
  double next_fail = 0;
  double repair_at = -1;  // < 0 when healthy

  void Init(double now, Rng* rng) {
    next_fail = now + rng->Exponential(mttf);
    repair_at = -1;
  }
  bool FailedAt(double t) const { return repair_at >= 0 && t < repair_at; }
};

/// The simulated world: site temp-failures, site disasters, disks.
struct World {
  int sites;
  int disks_per_site;
  std::vector<Process> temp;      // per site
  std::vector<Process> disaster;  // per site
  std::vector<Process> disk;      // site * disks_per_site

  World(const Environment& env, int sites_in)
      : sites(sites_in), disks_per_site(env.disks_per_site) {
    temp.assign(static_cast<size_t>(sites), {env.site_mttf, env.site_mttr});
    disaster.assign(static_cast<size_t>(sites),
                    {env.disaster_mttf, env.disaster_mttr});
    disk.assign(static_cast<size_t>(sites) * env.disks_per_site,
                {env.disk_mttf, env.disk_mttr});
  }

  void Init(Rng* rng) {
    for (auto& p : temp) p.Init(0, rng);
    for (auto& p : disaster) p.Init(0, rng);
    for (auto& p : disk) p.Init(0, rng);
  }

  /// Site is not operational (temporary outage or disaster window).
  bool SiteDown(int s, double t) const {
    return temp[size_t(s)].FailedAt(t) || disaster[size_t(s)].FailedAt(t);
  }
  /// Site's entire contents are absent (disaster window).
  bool SiteContentLost(int s, double t) const {
    return disaster[size_t(s)].FailedAt(t);
  }
  /// Disk d at site s is within a loss window.
  bool DiskLost(int s, int d, double t) const {
    return disk[size_t(s) * disks_per_site + size_t(d)].FailedAt(t);
  }
  /// Site s has lost the content of disk index d (disaster or that disk).
  bool ContentLost(int s, int d, double t) const {
    return SiteContentLost(s, t) || DiskLost(s, d, t);
  }
  /// Any disk at site s currently lost.
  bool AnyDiskLost(int s, double t) const {
    for (int d = 0; d < disks_per_site; ++d) {
      if (DiskLost(s, d, t)) return true;
    }
    return false;
  }
};

/// Runs one trial: advances failures in time order until `hit` returns
/// true (evaluated at each failure instant) or `horizon` passes. Returns
/// the hit time or `horizon`.
///
/// `min_overlap` short-circuits the predicate: it only runs when at least
/// that many failure windows are simultaneously open (1 for schemes a
/// single failure can break, 2 for double-failure schemes, ...). This is
/// what makes 500-year horizons affordable.
template <typename Predicate>
double RunTrial(World* w, Rng* rng, double horizon, int min_overlap,
                const Predicate& hit) {
  struct Ev {
    double t;
    Process* p;
    bool operator>(const Ev& o) const { return t > o.t; }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> q;
  w->Init(rng);
  auto push_all = [&](std::vector<Process>& v) {
    for (auto& p : v) q.push({p.next_fail, &p});
  };
  push_all(w->temp);
  push_all(w->disaster);
  push_all(w->disk);

  // Open repair windows, as (end_time) values; compacted lazily.
  std::vector<double> open_until;

  while (!q.empty()) {
    Ev ev = q.top();
    q.pop();
    if (ev.t > horizon) return horizon;
    ev.p->repair_at = ev.t + ev.p->mttr;
    // Drop expired windows; record this one.
    std::erase_if(open_until, [&](double end) { return end <= ev.t; });
    open_until.push_back(ev.p->repair_at);
    if (static_cast<int>(open_until.size()) >= min_overlap && hit(ev.t)) {
      return ev.t;
    }
    ev.p->next_fail = ev.p->repair_at + rng->Exponential(ev.p->mttf);
    q.push({ev.p->next_fail, ev.p});
  }
  return horizon;
}

/// 2D iterative erasure decode: given an R x C grid of content-lost data
/// sites (parity/spare sites assumed intact for the check — conservative
/// for them, optimistic never: their loss also shows as undecodable rows
/// in real patterns of interest), returns true if some lost site cannot
/// be recovered (a stalled pattern, e.g. a rectangle of four).
bool TwoDUndecodable(std::vector<bool> lost, int rows, int cols) {
  bool progress = true;
  auto at = [&](int r, int c) -> std::vector<bool>::reference {
    return lost[static_cast<size_t>(r) * cols + c];
  };
  while (progress) {
    progress = false;
    for (int r = 0; r < rows; ++r) {
      int cnt = 0, last = -1;
      for (int c = 0; c < cols; ++c) {
        if (at(r, c)) {
          ++cnt;
          last = c;
        }
      }
      if (cnt == 1) {
        at(r, last) = false;
        progress = true;
      }
    }
    for (int c = 0; c < cols; ++c) {
      int cnt = 0, last = -1;
      for (int r = 0; r < rows; ++r) {
        if (at(r, c)) {
          ++cnt;
          last = r;
        }
      }
      if (cnt == 1) {
        at(last, c) = false;
        progress = true;
      }
    }
  }
  return std::any_of(lost.begin(), lost.end(), [](bool b) { return b; });
}

struct Welford {
  int n = 0;
  double mean = 0, m2 = 0;
  void Add(double x) {
    ++n;
    double d = x - mean;
    mean += d / n;
    m2 += d * (x - mean);
  }
  double Stddev() const { return n > 1 ? std::sqrt(m2 / (n - 1)) : 0; }
};

}  // namespace

MonteCarlo::MonteCarlo(const Environment& env, int g, uint64_t seed)
    : env_(env), g_(g), rng_(seed) {}

MonteCarlo::Estimate MonteCarlo::EstimateMttu(SchemeKind k, int trials) {
  // Unavailability of block 0 / disk 0 / site 0.
  const double horizon = 24 * 365 * 100000;  // effectively unbounded
  Welford acc;

  for (int t = 0; t < trials; ++t) {
    if (k == SchemeKind::kTwoDRadd) {
      // Grid world: G x G data sites plus row/col parity sites for row 0
      // and column 0 recovery paths. Layout: data r*G+c, then extras.
      int grid = g_;
      int sites = grid * grid + 4 * grid;
      World w(env_, sites);
      auto data = [grid](int r, int c) { return r * grid + c; };
      int row0_parity = grid * grid + 0;
      int col0_parity = grid * grid + 2 * grid + 0;
      auto hit = [&](double now) {
        bool item_gone = w.SiteDown(data(0, 0), now) ||
                         w.DiskLost(data(0, 0), 0, now);
        if (!item_gone) return false;
        bool row_blocked = w.SiteDown(row0_parity, now);
        for (int c = 1; c < grid && !row_blocked; ++c) {
          if (w.SiteDown(data(0, c), now) || w.DiskLost(data(0, c), 0, now)) {
            row_blocked = true;
          }
        }
        if (!row_blocked) return false;
        bool col_blocked = w.SiteDown(col0_parity, now);
        for (int r = 1; r < grid && !col_blocked; ++r) {
          if (w.SiteDown(data(r, 0), now) || w.DiskLost(data(r, 0), 0, now)) {
            col_blocked = true;
          }
        }
        return col_blocked;
      };
      acc.Add(RunTrial(&w, &rng_, horizon, 3, hit));
      continue;
    }

    int group = k == SchemeKind::kHalfRadd ? g_ / 2 + 2 : g_ + 2;
    World w(env_, group);
    auto hit = [&](double now) -> bool {
      switch (k) {
        case SchemeKind::kRadd:
        case SchemeKind::kHalfRadd: {
          bool item_gone =
              w.SiteDown(0, now) || w.DiskLost(0, 0, now);
          if (!item_gone) return false;
          for (int s = 1; s < group; ++s) {
            if (w.SiteDown(s, now) || w.DiskLost(s, 0, now)) return true;
          }
          return false;
        }
        case SchemeKind::kRowb: {
          bool a = w.SiteDown(0, now) || w.DiskLost(0, 0, now);
          bool b = w.SiteDown(1, now) || w.DiskLost(1, 0, now);
          return a && b;
        }
        case SchemeKind::kRaid: {
          if (w.SiteDown(0, now)) return true;
          // Double disk failure within the item's local parity group.
          int in_group = std::min(w.disks_per_site, g_ + 2);
          int failed = 0;
          for (int d = 0; d < in_group; ++d) {
            if (w.DiskLost(0, d, now)) ++failed;
          }
          return failed >= 2;
        }
        case SchemeKind::kCRaid: {
          // The local RAID absorbs disk failures; only site outages count.
          if (!w.SiteDown(0, now)) return false;
          for (int s = 1; s < group; ++s) {
            if (w.SiteDown(s, now)) return true;
          }
          return false;
        }
        default:
          return false;
      }
    };
    acc.Add(RunTrial(&w, &rng_, horizon,
                     k == SchemeKind::kRaid ? 1 : 2, hit));
  }

  return Estimate{acc.mean, acc.Stddev(), acc.n};
}

MonteCarlo::MttfEstimate MonteCarlo::EstimateMttf(SchemeKind k, int trials,
                                                  double horizon_hours) {
  Welford acc;
  int censored = 0;

  for (int t = 0; t < trials; ++t) {
    double hit_time;
    if (k == SchemeKind::kTwoDRadd) {
      int grid = g_;
      World w(env_, grid * grid);
      auto hit = [&](double now) {
        // A stalled erasure pattern must involve aligned rows: check the
        // decode per disk index, treating disaster sites as lost at every
        // index. Only indices lost at >= 2 sites (or any index when >= 2
        // disasters are open) can stall.
        std::vector<int> disaster_sites;
        std::vector<std::vector<int>> lost_sites_by_disk(
            static_cast<size_t>(w.disks_per_site));
        for (int s = 0; s < grid * grid; ++s) {
          if (w.SiteContentLost(s, now)) {
            disaster_sites.push_back(s);
            continue;
          }
          for (int d = 0; d < w.disks_per_site; ++d) {
            if (w.DiskLost(s, d, now)) {
              lost_sites_by_disk[static_cast<size_t>(d)].push_back(s);
            }
          }
        }
        auto decode = [&](const std::vector<int>& extra) {
          std::vector<bool> lost(static_cast<size_t>(grid) * grid, false);
          for (int s : disaster_sites) lost[static_cast<size_t>(s)] = true;
          for (int s : extra) lost[static_cast<size_t>(s)] = true;
          return TwoDUndecodable(std::move(lost), grid, grid);
        };
        if (disaster_sites.size() >= 2 && decode({})) return true;
        for (const auto& sites : lost_sites_by_disk) {
          if (sites.empty()) continue;
          if (sites.size() + disaster_sites.size() < 2) continue;
          if (decode(sites)) return true;
        }
        return false;
      };
      hit_time = RunTrial(&w, &rng_, horizon_hours, 4, hit);
    } else {
      int group = k == SchemeKind::kHalfRadd ? g_ / 2 + 2 : g_ + 2;
      World w(env_, group);
      auto site_content_lost = [&](int s, double now) {
        // C-RAID sites lose content only on disaster or a double disk
        // failure within one local parity group.
        if (k == SchemeKind::kCRaid) {
          if (w.SiteContentLost(s, now)) return true;
          int local_group = g_ + 2;
          for (int base = 0; base < w.disks_per_site; base += local_group) {
            int failed = 0;
            int end = std::min(base + local_group, w.disks_per_site);
            for (int d = base; d < end; ++d) {
              if (w.DiskLost(s, d, now)) ++failed;
            }
            if (failed >= 2) return true;
          }
          return false;
        }
        return w.SiteContentLost(s, now);
      };
      auto hit = [&](double now) -> bool {
        switch (k) {
          case SchemeKind::kRadd:
          case SchemeKind::kHalfRadd:
          case SchemeKind::kRowb: {
            // Loss when two aligned pieces of content are gone at once:
            // disaster+disaster, disaster+any disk, or the same disk
            // index at two sites. For ROWB (dedicated placement) only the
            // ring pairs (a, a+1) carry each other's content.
            auto pair_lost = [&](int a, int b) {
              bool da = w.SiteContentLost(a, now);
              bool db = w.SiteContentLost(b, now);
              if (da && db) return true;
              if (da && w.AnyDiskLost(b, now)) return true;
              if (db && w.AnyDiskLost(a, now)) return true;
              for (int d = 0; d < w.disks_per_site; ++d) {
                if (w.DiskLost(a, d, now) && w.DiskLost(b, d, now)) {
                  return true;
                }
              }
              return false;
            };
            if (k == SchemeKind::kRowb) {
              for (int a = 0; a < group; ++a) {
                if (pair_lost(a, (a + 1) % group)) return true;
              }
              return false;
            }
            for (int a = 0; a < group; ++a) {
              for (int b = a + 1; b < group; ++b) {
                if (pair_lost(a, b)) return true;
              }
            }
            return false;
          }
          case SchemeKind::kRaid: {
            for (int s = 0; s < group; ++s) {
              if (w.SiteContentLost(s, now)) return true;
              int local_group = g_ + 2;
              for (int base = 0; base < w.disks_per_site;
                   base += local_group) {
                int failed = 0;
                int end = std::min(base + local_group, w.disks_per_site);
                for (int d = base; d < end; ++d) {
                  if (w.DiskLost(s, d, now)) ++failed;
                }
                if (failed >= 2) return true;
              }
            }
            return false;
          }
          case SchemeKind::kCRaid: {
            for (int a = 0; a < group; ++a) {
              if (!site_content_lost(a, now)) continue;
              for (int b = 0; b < group; ++b) {
                if (b != a && site_content_lost(b, now)) return true;
              }
            }
            return false;
          }
          default:
            return false;
        }
      };
      hit_time = RunTrial(&w, &rng_, horizon_hours,
                          k == SchemeKind::kRaid ? 1 : 2, hit);
    }
    if (hit_time >= horizon_hours) ++censored;
    acc.Add(hit_time);
  }

  MttfEstimate out;
  out.mean_hours = acc.mean;
  out.stddev_hours = acc.Stddev();
  out.trials = acc.n;
  out.censored = censored;
  out.horizon_hours = horizon_hours;
  return out;
}

}  // namespace radd
