#include "common/gf256.h"

#include <cassert>

namespace radd {

namespace {

/// One step of the field's doubling map on a single byte.
constexpr uint8_t Xtimes(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1d));
}

/// exp/log tables for g = 2 over 0x11d. exp is doubled so products of two
/// logs index without a mod: exp[log a + log b], log sums < 510.
struct Tables {
  uint8_t exp[510] = {};
  uint8_t log[256] = {};
  constexpr Tables() {
    uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = x;
      exp[i + 255] = x;
      log[x] = static_cast<uint8_t>(i);
      x = Xtimes(x);
    }
  }
};
constexpr Tables kT{};

/// Bitsliced xtimes over eight byte lanes of one word: shift every lane
/// left, then fold the reduction polynomial into the lanes whose high bit
/// was set. No lane crosses into its neighbour — the high bits are masked
/// out before the shift and re-injected as the 0x1d term.
inline uint64_t GfXtimes64(uint64_t x) {
  return ((x & 0x7f7f7f7f7f7f7f7full) << 1) ^
         (((x & 0x8080808080808080ull) >> 7) * 0x1d);
}

/// acc ^= c * x across eight lanes: schoolbook multiply by the constant,
/// one xtimes per bit of c.
inline uint64_t GfMulWord(uint64_t x, uint8_t c) {
  uint64_t acc = 0;
  while (c != 0) {
    if (c & 1) acc ^= x;
    x = GfXtimes64(x);
    c >>= 1;
  }
  return acc;
}

inline uint8_t MulByte(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kT.exp[kT.log[a] + kT.log[b]];
}

}  // namespace

namespace internal {

void GfMulAddBytes(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n) {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    XorBytes(dst, src, n);
    return;
  }
  size_t i = 0;
  // Word-at-a-time main loop; memcpy in/out keeps it alignment-safe (the
  // compiler lowers these to single unaligned loads/stores on x86/ARM).
  for (; i + 8 <= n; i += 8) {
    uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= GfMulWord(s, c);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= MulByte(src[i], c);
}

void GfScaleBytes(uint8_t* p, uint8_t c, size_t n) {
  if (c == 1 || n == 0) return;
  if (c == 0) {
    std::memset(p, 0, n);
    return;
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    w = GfMulWord(w, c);
    std::memcpy(p + i, &w, 8);
  }
  for (; i < n; ++i) p[i] = MulByte(p[i], c);
}

}  // namespace internal

uint8_t GfMul(uint8_t a, uint8_t b) { return MulByte(a, b); }

uint8_t GfInv(uint8_t a) {
  assert(a != 0 && "GfInv(0)");
  return kT.exp[255 - kT.log[a]];
}

uint8_t GfDiv(uint8_t a, uint8_t b) {
  assert(b != 0 && "GfDiv by 0");
  if (a == 0) return 0;
  return kT.exp[kT.log[a] + 255 - kT.log[b]];
}

uint8_t GfExp(unsigned e) { return kT.exp[e % 255]; }

Status GfMulAddInto(Block* dst, const Block& src, uint8_t c) {
  if (dst->size() != src.size()) {
    return Status::InvalidArgument("GfMulAddInto of mismatched block sizes");
  }
  internal::GfMulAddBytes(dst->data(), src.data(), c, dst->size());
  return Status::OK();
}

void GfScaleInPlace(Block* b, uint8_t c) {
  internal::GfScaleBytes(b->data(), c, b->size());
}

}  // namespace radd
