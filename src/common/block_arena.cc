#include "common/block_arena.h"

#include <cstring>

namespace radd {

Block BlockArena::Lease() {
  std::vector<uint8_t> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++leases_;
    if (!free_.empty()) {
      ++reuses_;
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!buf.empty()) {
    std::memset(buf.data(), 0, buf.size());
    return Block(std::move(buf));
  }
  return Block(block_size_);
}

Block BlockArena::LeaseCopyOf(const Block& src) {
  std::vector<uint8_t> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++leases_;
    if (src.size() == block_size_ && !free_.empty()) {
      ++reuses_;
      buf = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!buf.empty()) {
    std::memcpy(buf.data(), src.data(), block_size_);
    return Block(std::move(buf));
  }
  return src.size() ? Block(src.bytes()) : Block(size_t{0});
}

void BlockArena::Return(Block&& b) {
  if (b.size() != block_size_) return;
  std::vector<uint8_t> bytes = std::move(b).TakeBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_free_) return;
  free_.push_back(std::move(bytes));
}

}  // namespace radd
