// BlockArena — a free-list of block-sized byte buffers.
//
// The simulator's data plane used to allocate a fresh 4 KB vector for
// every message payload, reply, and scratch accumulator, then free it a
// few microseconds later. An arena turns that churn into a pop/push on a
// small free list: Lease() hands out a zeroed Block (recycling a returned
// buffer when one is available) and Return() takes the backing storage
// back once the block is done carrying data.
//
// Lifetime rules (see DESIGN.md "Data-plane performance"):
//   * A leased Block is an ordinary Block — it may be moved anywhere,
//     including across sites in the simulator; nothing ties it to the
//     arena.
//   * Return() is an optimization, never an obligation. Dropping a leased
//     block on the floor just frees its buffer normally.
//   * Return() only recycles buffers whose size matches the arena's block
//     size (others are freed), so one arena per block size is the rule.
//   * The free list is bounded (`max_free`); beyond that, returned
//     buffers are freed so a burst cannot pin memory forever.
//
// Thread-safety: internally synchronized. One arena is shared by every
// site in a node system, and under the sharded simulator (sim/simulator.h)
// sites execute on concurrent shards — the free list is one of the few
// pieces of state the shard-confinement rule cannot partition, so it takes
// a mutex instead. The critical section is a vector push/pop; contention
// is negligible next to the memset/memcpy the lease itself pays.

#ifndef RADD_COMMON_BLOCK_ARENA_H_
#define RADD_COMMON_BLOCK_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/block.h"

namespace radd {

class BlockArena {
 public:
  explicit BlockArena(size_t block_size, size_t max_free = 128)
      : block_size_(block_size), max_free_(max_free) {}

  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  size_t block_size() const { return block_size_; }

  /// An all-zero block of the arena's block size, recycling a returned
  /// buffer when one is available.
  Block Lease();

  /// A copy of `src`, placed in a recycled buffer when `src` has the
  /// arena's block size (skips the zero-fill a Lease+assign would pay).
  Block LeaseCopyOf(const Block& src);

  /// Recycles the block's backing storage. Wrong-sized blocks are simply
  /// freed; so are returns beyond the free-list bound.
  void Return(Block&& b);

  /// Diagnostics (read when the simulation is quiescent).
  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  uint64_t leases() const {
    std::lock_guard<std::mutex> lock(mu_);
    return leases_;
  }
  uint64_t reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }

 private:
  size_t block_size_;
  size_t max_free_;
  mutable std::mutex mu_;  // guards everything below
  std::vector<std::vector<uint8_t>> free_;
  uint64_t leases_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace radd

#endif  // RADD_COMMON_BLOCK_ARENA_H_
