#include "common/uid.h"

namespace radd {

std::string Uid::ToString() const {
  if (!valid()) return "invalid";
  return std::to_string(site()) + "." + std::to_string(sequence());
}

}  // namespace radd
