// Deterministic random number generation for workloads, failure processes,
// and Monte-Carlo reliability estimation.
//
// All randomness in the library flows from explicitly-seeded Rng instances,
// so every simulation run is exactly reproducible.

#ifndef RADD_COMMON_RNG_H_
#define RADD_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace radd {

/// xoshiro256++ generator. Fast, tiny state, good statistical quality; not
/// cryptographic (nothing here needs to be).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform on [0, 2^64).
  uint64_t Next();

  /// Uniform on [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform on [lo, hi]. lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform real on [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0). The paper's
  /// reliability analysis (§7.5) assumes exponential inter-failure times.
  double Exponential(double mean);

  /// Forks an independent generator (for giving each site its own stream).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipf-distributed integers on [0, n), parameter theta in [0, 1).
/// theta = 0 is uniform; larger theta is more skewed. Uses the standard
/// Gray/YCSB rejection-free construction with precomputed zeta.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, Rng* rng);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng* rng_;
};

}  // namespace radd

#endif  // RADD_COMMON_RNG_H_
