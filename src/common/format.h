// Small text-table formatting helpers used by the benchmark harnesses to
// print the paper's tables and figures.

#ifndef RADD_COMMON_FORMAT_H_
#define RADD_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace radd {

/// Formats a double with `digits` fractional digits (no scientific
/// notation); trailing zeros are kept so columns align.
std::string FormatDouble(double v, int digits);

/// Formats a duration expressed in hours as "X hours" / "X years" the way
/// the paper's reliability tables do (years for anything >= 1 year).
std::string FormatHours(double hours);

/// A simple fixed-width text table: add a header row, then data rows, then
/// render. Column widths adapt to the widest cell.
class TextTable {
 public:
  /// `title` is printed above the table; pass "" for none.
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> cells);
  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal rule between the preceding and following rows.
  void AddRule();

  /// Renders the table (with outer rules and a header rule) to a string.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  struct Row {
    bool rule = false;
    std::vector<std::string> cells;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace radd

#endif  // RADD_COMMON_FORMAT_H_
