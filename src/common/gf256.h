// GF(256) arithmetic for the P+Q double-parity scheme.
//
// The second parity is a Reed-Solomon syndrome over the Galois field
// GF(2^8) with the AES/RAID-6 reduction polynomial x^8+x^4+x^3+x^2+1
// (0x11d) and generator g = 2:
//
//   Q = sum_m g^m * D_m        (m = data member index within the row)
//
// XOR is field addition, so the paper's formula-(1) delta discipline
// carries over unchanged: a data write that ships delta = new XOR old to
// the P site ships the *same* delta to the Q site, which scales it by its
// member coefficient before folding it in (Q' = Q XOR g^m * delta). Any
// two erasures among {data..., P, Q} are then solvable because the 2x2
// Vandermonde systems over distinct powers of g are invertible for
// member indices < 255.
//
// Performance: like the XOR kernels in block.h, the multiply-accumulate
// runs word-at-a-time over uint64_t lanes — a bitsliced xtimes treats the
// eight bytes of a word as independent field elements — with byte-table
// head/tail handling at any alignment. tests/gf256_kernel_test.cc checks
// the word-wise paths against byte-wise table references at awkward
// sizes, plus encode/decode round trips for every 2-erasure pattern.

#ifndef RADD_COMMON_GF256_H_
#define RADD_COMMON_GF256_H_

#include <cstddef>
#include <cstdint>

#include "common/block.h"
#include "common/status.h"

namespace radd {

namespace internal {
/// dst[i] ^= GfMul(c, src[i]) for i in [0, n). Word-at-a-time; any
/// alignment. c == 0 is a no-op, c == 1 degenerates to XorBytes.
void GfMulAddBytes(uint8_t* dst, const uint8_t* src, uint8_t c, size_t n);
/// p[i] = GfMul(c, p[i]) for i in [0, n). c == 0 zeroes the range.
void GfScaleBytes(uint8_t* p, uint8_t c, size_t n);
}  // namespace internal

/// Field multiply a * b in GF(256) (table-driven).
uint8_t GfMul(uint8_t a, uint8_t b);

/// Multiplicative inverse; a must be nonzero (asserted).
uint8_t GfInv(uint8_t a);

/// a / b = a * GfInv(b); b must be nonzero (asserted).
uint8_t GfDiv(uint8_t a, uint8_t b);

/// g^e for the generator g = 2 (e >= 0, reduced mod 255).
uint8_t GfExp(unsigned e);

/// The Q-parity coefficient of data member `m`: g^m. Distinct and with
/// pairwise-distinct sums for 0 <= m < 255, which is what two-erasure
/// decode requires; RADD group sizes are far below that.
inline uint8_t GfQCoeff(int m) { return GfExp(static_cast<unsigned>(m)); }

/// dst ^= c * src over whole blocks (the Q-site side of formula (1)).
/// Sizes must match.
Status GfMulAddInto(Block* dst, const Block& src, uint8_t c);

/// b = c * b in place.
void GfScaleInPlace(Block* b, uint8_t c);

}  // namespace radd

#endif  // RADD_COMMON_GF256_H_
