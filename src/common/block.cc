#include "common/block.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace radd {

namespace internal {

namespace {

/// Unaligned-safe word loads/stores: memcpy compiles to single unaligned
/// move instructions on every target we care about, so the word loops
/// below need no alignment peeling.
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

void XorBytes(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  // 4-word strides auto-vectorize to full-width SIMD XORs.
  for (; i + 32 <= n; i += 32) {
    StoreU64(dst + i, LoadU64(dst + i) ^ LoadU64(src + i));
    StoreU64(dst + i + 8, LoadU64(dst + i + 8) ^ LoadU64(src + i + 8));
    StoreU64(dst + i + 16, LoadU64(dst + i + 16) ^ LoadU64(src + i + 16));
    StoreU64(dst + i + 24, LoadU64(dst + i + 24) ^ LoadU64(src + i + 24));
  }
  for (; i + 8 <= n; i += 8) {
    StoreU64(dst + i, LoadU64(dst + i) ^ LoadU64(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

bool XorBytes3(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  uint64_t any = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t x = LoadU64(a + i) ^ LoadU64(b + i);
    StoreU64(dst + i, x);
    any |= x;
  }
  for (; i < n; ++i) {
    uint8_t x = static_cast<uint8_t>(a[i] ^ b[i]);
    dst[i] = x;
    any |= x;
  }
  return any != 0;
}

bool AllZero(const uint8_t* p, size_t n) {
  size_t i = 0;
  // OR-accumulate one cache line at a time with early exit.
  for (; i + 64 <= n; i += 64) {
    uint64_t acc = 0;
    for (size_t w = 0; w < 64; w += 8) acc |= LoadU64(p + i + w);
    if (acc != 0) return false;
  }
  for (; i + 8 <= n; i += 8) {
    if (LoadU64(p + i) != 0) return false;
  }
  for (; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

size_t FindNonzero(const uint8_t* p, size_t from, size_t n) {
  size_t i = from;
  // Byte-align the scan cheaply, then skip zero words.
  for (; i < n && (i & 7) != 0; ++i) {
    if (p[i] != 0) return i;
  }
  for (; i + 8 <= n; i += 8) {
    if (LoadU64(p + i) != 0) break;
  }
  for (; i < n; ++i) {
    if (p[i] != 0) return i;
  }
  return n;
}

}  // namespace internal

bool Block::IsZero() const {
  return internal::AllZero(data_.data(), data_.size());
}

void Block::Clear() {
  if (!data_.empty()) std::memset(data_.data(), 0, data_.size());
}

Status Block::XorWith(const Block& other) {
  if (other.size() != size()) {
    return Status::InvalidArgument("XOR of mismatched block sizes: " +
                                   std::to_string(size()) + " vs " +
                                   std::to_string(other.size()));
  }
  internal::XorBytes(data_.data(), other.data_.data(), data_.size());
  return Status::OK();
}

Status Block::WriteAt(size_t offset, const uint8_t* bytes, size_t n) {
  if (offset + n > data_.size()) {
    return Status::InvalidArgument(
        "write of " + std::to_string(n) + " bytes at offset " +
        std::to_string(offset) + " overruns block of " +
        std::to_string(data_.size()));
  }
  std::memcpy(data_.data() + offset, bytes, n);
  return Status::OK();
}

void Block::FillPattern(uint64_t seed) {
  // splitmix64 stream; deterministic and well-distributed.
  uint64_t x = seed;
  size_t i = 0;
  while (i < data_.size()) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    size_t n = std::min<size_t>(8, data_.size() - i);
    std::memcpy(data_.data() + i, &z, n);
    i += n;
  }
}

uint64_t Block::Checksum() const {
  // FNV-1a folded over 64-bit lanes (tail zero-padded, length mixed in at
  // the end so blocks differing only in trailing zeros still differ).
  uint64_t h = 0xcbf29ce484222325ULL;
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  const uint8_t* p = data_.data();
  const size_t n = data_.size();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * kPrime;
  }
  if (i < n) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h = (h ^ w) * kPrime;
  }
  return (h ^ static_cast<uint64_t>(n)) * kPrime;
}

Block Xor(const Block& a, const Block& b) {
  assert(a.size() == b.size());
  Block out = a;
  Status st = out.XorWith(b);
  (void)st;
  assert(st.ok());
  return out;
}

Status XorInto(Block* dst, const Block& a, const Block& b) {
  if (a.size() != b.size() || dst->size() != a.size()) {
    return Status::InvalidArgument("XorInto of mismatched block sizes: " +
                                   std::to_string(dst->size()) + ", " +
                                   std::to_string(a.size()) + ", " +
                                   std::to_string(b.size()));
  }
  internal::XorBytes3(dst->data(), a.data(), b.data(), dst->size());
  return Status::OK();
}

Result<Block> XorAll(const std::vector<const Block*>& blocks) {
  if (blocks.empty()) {
    return Status::InvalidArgument("XorAll of empty group");
  }
  Block out(blocks[0]->size());
  RADD_RETURN_NOT_OK(XorAllInto(
      &out, blocks.size(),
      [&blocks](size_t i) -> const Block& { return *blocks[i]; }));
  return out;
}

Result<ChangeMask> ChangeMask::Diff(const Block& old_block,
                                    const Block& new_block) {
  if (old_block.size() != new_block.size()) {
    return Status::InvalidArgument("diff of mismatched block sizes");
  }
  Block delta(old_block.size());
  bool nonzero = internal::XorBytes3(delta.data(), old_block.data(),
                                     new_block.data(), delta.size());
  return ChangeMask(std::move(delta), nonzero ? 0 : 1);
}

ChangeMask ChangeMask::FromFull(Block block) {
  return ChangeMask(std::move(block));
}

bool ChangeMask::IsNoop() const {
  if (known_zero_ < 0) known_zero_ = delta_.IsZero() ? 1 : 0;
  return known_zero_ == 1;
}

Status ChangeMask::ApplyTo(Block* target) const {
  if (target->size() != delta_.size()) {
    return Status::InvalidArgument("XOR of mismatched block sizes: " +
                                   std::to_string(target->size()) + " vs " +
                                   std::to_string(delta_.size()));
  }
  if (known_zero_ == 1) return Status::OK();  // XOR with zero: no-op
  return target->XorWith(delta_);
}

size_t ChangeMask::ChangedBytes() const {
  if (known_zero_ == 1) return 0;
  const uint8_t* p = delta_.data();
  const size_t n = delta_.size();
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w == 0) continue;  // the common case for sparse masks
    for (size_t b = 0; b < 8; ++b) count += p[i + b] != 0;
  }
  for (; i < n; ++i) count += p[i] != 0;
  return count;
}

size_t ChangeMask::EncodedSize() const {
  // Runs of changed bytes separated by gaps shorter than the per-run header
  // (8 bytes: 4-byte offset + 4-byte length) are coalesced, matching what a
  // sensible encoder would ship. The scan hops from nonzero byte to nonzero
  // byte at word speed; an all-zero mask short-circuits to the bare header.
  constexpr size_t kRunHeader = 8;
  constexpr size_t kMaskHeader = 8;  // block number + mask version, etc.
  if (IsNoop()) return kMaskHeader;
  const uint8_t* p = delta_.data();
  const size_t n = delta_.size();
  size_t total = kMaskHeader;
  size_t run_first = internal::FindNonzero(p, 0, n);
  while (run_first < n) {
    size_t run_last = run_first;
    size_t next_run = n;
    for (size_t i = run_first + 1; i < n;) {
      if (p[i] != 0) {
        run_last = i++;  // dense path: one compare per byte, no call
        continue;
      }
      size_t nz = internal::FindNonzero(p, i, n);
      if (nz < n && nz - run_last - 1 <= kRunHeader) {
        run_last = nz;  // gap small enough: coalesce into the current run
        i = nz + 1;
        continue;
      }
      next_run = nz;
      break;
    }
    total += kRunHeader + (run_last - run_first + 1);
    run_first = next_run;
  }
  return total;
}

}  // namespace radd
