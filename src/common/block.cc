#include "common/block.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace radd {

bool Block::IsZero() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](uint8_t b) { return b == 0; });
}

void Block::Clear() { std::fill(data_.begin(), data_.end(), 0); }

Status Block::XorWith(const Block& other) {
  if (other.size() != size()) {
    return Status::InvalidArgument("XOR of mismatched block sizes: " +
                                   std::to_string(size()) + " vs " +
                                   std::to_string(other.size()));
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] ^= other.data_[i];
  return Status::OK();
}

Status Block::WriteAt(size_t offset, const uint8_t* bytes, size_t n) {
  if (offset + n > data_.size()) {
    return Status::InvalidArgument(
        "write of " + std::to_string(n) + " bytes at offset " +
        std::to_string(offset) + " overruns block of " +
        std::to_string(data_.size()));
  }
  std::memcpy(data_.data() + offset, bytes, n);
  return Status::OK();
}

void Block::FillPattern(uint64_t seed) {
  // splitmix64 stream; deterministic and well-distributed.
  uint64_t x = seed;
  size_t i = 0;
  while (i < data_.size()) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    size_t n = std::min<size_t>(8, data_.size() - i);
    std::memcpy(data_.data() + i, &z, n);
    i += n;
  }
}

uint64_t Block::Checksum() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data_) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Block Xor(const Block& a, const Block& b) {
  assert(a.size() == b.size());
  Block out = a;
  Status st = out.XorWith(b);
  (void)st;
  assert(st.ok());
  return out;
}

Result<Block> XorAll(const std::vector<const Block*>& blocks) {
  if (blocks.empty()) {
    return Status::InvalidArgument("XorAll of empty group");
  }
  Block out = *blocks[0];
  for (size_t i = 1; i < blocks.size(); ++i) {
    RADD_RETURN_NOT_OK(out.XorWith(*blocks[i]));
  }
  return out;
}

Result<ChangeMask> ChangeMask::Diff(const Block& old_block,
                                    const Block& new_block) {
  if (old_block.size() != new_block.size()) {
    return Status::InvalidArgument("diff of mismatched block sizes");
  }
  return ChangeMask(Xor(old_block, new_block));
}

ChangeMask ChangeMask::FromFull(const Block& block) {
  return ChangeMask(block);
}

Status ChangeMask::ApplyTo(Block* target) const {
  return target->XorWith(delta_);
}

size_t ChangeMask::ChangedBytes() const {
  size_t n = 0;
  for (size_t i = 0; i < delta_.size(); ++i) {
    if (delta_[i] != 0) ++n;
  }
  return n;
}

size_t ChangeMask::EncodedSize() const {
  // Runs of changed bytes separated by gaps shorter than the per-run header
  // (8 bytes: 4-byte offset + 4-byte length) are coalesced, matching what a
  // sensible encoder would ship.
  constexpr size_t kRunHeader = 8;
  constexpr size_t kMaskHeader = 8;  // block number + mask version, etc.
  size_t total = kMaskHeader;
  size_t i = 0;
  const size_t n = delta_.size();
  while (i < n) {
    if (delta_[i] == 0) {
      ++i;
      continue;
    }
    // Start of a run. Extend while gaps of zero bytes are shorter than the
    // header we would save by splitting.
    size_t end = i + 1;
    size_t last_nonzero = i;
    while (end < n) {
      if (delta_[end] != 0) {
        last_nonzero = end;
        ++end;
      } else if (end - last_nonzero <= kRunHeader) {
        ++end;
      } else {
        break;
      }
    }
    total += kRunHeader + (last_nonzero - i + 1);
    i = last_nonzero + 1;
  }
  return total;
}

}  // namespace radd
