// Globally unique identifiers (paper §3.2).
//
// "Each site is assumed to have a source of unique identifiers (UIDs) which
// will be used for concurrency control purposes. The only property of UIDs
// is that they must be globally unique and never repeat."
//
// We realize a UID as a 64-bit value packing the originating site id into
// the high bits and a per-site monotonic counter into the low bits. The
// all-zero value is reserved as the *invalid* UID: a data or spare block
// whose stored UID is zero is in the `invalid` state (paper's valid /
// invalid block states).

#ifndef RADD_COMMON_UID_H_
#define RADD_COMMON_UID_H_

#include <cstdint>
#include <string>

namespace radd {

/// Identifier of a site in the distributed system (0-based).
using SiteId = uint32_t;

/// A globally unique, never-repeating identifier. Zero means "invalid".
class Uid {
 public:
  /// Number of low bits used for the per-site sequence counter.
  static constexpr int kSequenceBits = 48;
  static constexpr uint64_t kSequenceMask = (uint64_t{1} << kSequenceBits) - 1;

  /// The reserved invalid UID (block state "invalid", zero UID).
  constexpr Uid() : raw_(0) {}

  /// Builds a UID from its packed representation.
  constexpr explicit Uid(uint64_t raw) : raw_(raw) {}

  /// Builds a UID from site + sequence. `sequence` must be nonzero so the
  /// result is never the reserved invalid value.
  static constexpr Uid Make(SiteId site, uint64_t sequence) {
    return Uid((static_cast<uint64_t>(site) << kSequenceBits) |
               (sequence & kSequenceMask));
  }

  constexpr bool valid() const { return raw_ != 0; }
  constexpr uint64_t raw() const { return raw_; }
  constexpr SiteId site() const {
    return static_cast<SiteId>(raw_ >> kSequenceBits);
  }
  constexpr uint64_t sequence() const { return raw_ & kSequenceMask; }

  friend constexpr bool operator==(Uid a, Uid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Uid a, Uid b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Uid a, Uid b) { return a.raw_ < b.raw_; }

  /// "invalid" or "<site>.<sequence>".
  std::string ToString() const;

 private:
  uint64_t raw_;
};

/// Per-site source of UIDs. Not thread-safe; in the simulation each site's
/// generator is only touched from the (single-threaded) event loop.
class UidGenerator {
 public:
  explicit UidGenerator(SiteId site) : site_(site), next_sequence_(1) {}

  /// Returns a fresh UID, strictly greater (in sequence) than all previous
  /// UIDs from this generator.
  Uid Next() { return Uid::Make(site_, next_sequence_++); }

  SiteId site() const { return site_; }
  /// Number of UIDs handed out so far.
  uint64_t issued() const { return next_sequence_ - 1; }

 private:
  SiteId site_;
  uint64_t next_sequence_;
};

}  // namespace radd

#endif  // RADD_COMMON_UID_H_
