// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
//
// The frame codec (net/frame.h) stamps every serialized payload with this
// checksum so a receiver can reject frames that were truncated or
// bit-flipped in transit. CRC32C is the storage-stack convention (iSCSI,
// ext4, RocksDB) because its error-detection properties for short frames
// are well studied; this is the portable table-driven form, one table
// lookup per byte, with no hardware-instruction dependency.

#ifndef RADD_COMMON_CRC32C_H_
#define RADD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace radd {

/// CRC32C of [data, data+n), with the conventional pre/post inversion.
/// Crc32c(nullptr, 0) == 0.
uint32_t Crc32c(const uint8_t* data, size_t n);

/// Incremental form: extends `crc` (a previous Crc32c result) with more
/// bytes, as if the two ranges had been checksummed in one call.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n);

}  // namespace radd

#endif  // RADD_COMMON_CRC32C_H_
