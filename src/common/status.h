// Status / Result error model for the RADD library.
//
// Follows the Arrow/RocksDB convention: fallible operations return a Status
// (or Result<T> for value-producing operations) instead of throwing.
// Statuses are cheap to copy in the OK case (no allocation).

#ifndef RADD_COMMON_STATUS_H_
#define RADD_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace radd {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  /// Caller error: argument outside the valid domain.
  kInvalidArgument,
  /// Addressed entity (site, disk, block) does not exist.
  kNotFound,
  /// Operation cannot proceed given current system state (e.g. writing
  /// through a site that is down with no spare capacity left).
  kUnavailable,
  /// Data could not be reconstructed consistently; retry may succeed.
  kInconsistent,
  /// Multiple concurrent failures exceed the single-failure tolerance of
  /// the algorithms; the system must block until repair (paper §5).
  kBlocked,
  /// Lock could not be granted (wait-die abort or timeout).
  kLockConflict,
  /// Transaction was aborted.
  kAborted,
  /// Message lost / network partition prevented delivery.
  kNetworkError,
  /// Storage media failure (disk lost the block irrecoverably).
  kDataLoss,
  /// Internal invariant violated; indicates a bug.
  kInternal,
  /// The operation carried a membership epoch older than the target
  /// site's current one: the issuer acted on a stale view of the cluster.
  /// Retryable — re-reading the site status and reissuing succeeds.
  kStaleEpoch,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus, when not OK, a message.
///
/// The OK status carries no allocation and is trivially copyable in
/// practice; error statuses own a small heap string.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk (use the default constructor for that).
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status Blocked(std::string msg) {
    return Status(StatusCode::kBlocked, std::move(msg));
  }
  static Status LockConflict(std::string msg) {
    return Status(StatusCode::kLockConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status StaleEpoch(std::string msg) {
    return Status(StatusCode::kStaleEpoch, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message for error statuses; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsInconsistent() const { return code() == StatusCode::kInconsistent; }
  bool IsBlocked() const { return code() == StatusCode::kBlocked; }
  bool IsLockConflict() const { return code() == StatusCode::kLockConflict; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsStaleEpoch() const { return code() == StatusCode::kStaleEpoch; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null <=> OK
};

/// A Status or a value of type T. Accessing the value of an errored Result
/// is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-*)
  /// Implicit from error status: `return Status::NotFound(...);`.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK Status out of the current function.
#define RADD_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::radd::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define RADD_ASSIGN_OR_RETURN(lhs, expr)    \
  auto RADD_CONCAT_(_res, __LINE__) = (expr);               \
  if (!RADD_CONCAT_(_res, __LINE__).ok())                   \
    return RADD_CONCAT_(_res, __LINE__).status();           \
  lhs = std::move(RADD_CONCAT_(_res, __LINE__)).value()

#define RADD_CONCAT_IMPL_(a, b) a##b
#define RADD_CONCAT_(a, b) RADD_CONCAT_IMPL_(a, b)

}  // namespace radd

#endif  // RADD_COMMON_STATUS_H_
