#include "common/crc32c.h"

#include <array>

namespace radd {

namespace {

// Table for the reflected Castagnoli polynomial, built once at startup.
// (Reflected form 0x82F63B78 of 0x1EDC6F41, processing bytes LSB-first —
// the same convention as the SSE4.2 crc32 instruction, so values are
// comparable with hardware implementations should one be added later.)
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  const std::array<uint32_t, 256>& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace radd
