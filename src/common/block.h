// Disk block buffers and the XOR algebra the paper's parity maintenance
// rests on.
//
// Formula (1):  parity' = parity XOR (new_data XOR old_data)
// Formula (2):  failed  = XOR{ other blocks in the group }
//
// The "change mask" of W3(b) — "the bits in the block which changed value"
// — is exactly `new XOR old`; we also provide a compact run-length encoding
// of the mask so the network layer can account bytes the way §7.4 argues
// (a 100-byte record update in a 4 KB block ships ~100 bytes, not 4 KB).

#ifndef RADD_COMMON_BLOCK_H_
#define RADD_COMMON_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace radd {

/// Index of a physical block (row) on a site's logical disk.
using BlockNum = uint64_t;

/// A fixed-size byte buffer representing one disk block's contents.
///
/// All blocks participating in one parity group must share a size; parity
/// arithmetic on mismatched sizes is a caller error.
class Block {
 public:
  /// Default block size used throughout the library (§7.4's 4 KB example).
  static constexpr size_t kDefaultSize = 4096;

  /// Creates an all-zero block of `size` bytes.
  explicit Block(size_t size = kDefaultSize) : data_(size, 0) {}

  /// Creates a block holding a copy of `bytes`.
  explicit Block(std::vector<uint8_t> bytes) : data_(std::move(bytes)) {}

  size_t size() const { return data_.size(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  const std::vector<uint8_t>& bytes() const { return data_; }

  uint8_t operator[](size_t i) const { return data_[i]; }
  uint8_t& operator[](size_t i) { return data_[i]; }

  /// True if every byte is zero.
  bool IsZero() const;

  /// Sets all bytes to zero.
  void Clear();

  /// In-place XOR with `other`. Sizes must match.
  Status XorWith(const Block& other);

  /// Writes `bytes` at `offset`, as a record update would. Fails if the
  /// write would run off the end of the block.
  Status WriteAt(size_t offset, const uint8_t* bytes, size_t n);

  /// Fills the block with bytes derived deterministically from `seed`
  /// (useful for tests and workload generation).
  void FillPattern(uint64_t seed);

  /// 64-bit FNV-1a checksum of the contents.
  uint64_t Checksum() const;

  friend bool operator==(const Block& a, const Block& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Block& a, const Block& b) {
    return !(a == b);
  }

 private:
  std::vector<uint8_t> data_;
};

/// XOR of two blocks, returned by value. Sizes must match (asserted).
Block Xor(const Block& a, const Block& b);

/// XOR of a whole group of blocks — formula (2) reconstruction. Returns
/// InvalidArgument if `blocks` is empty or sizes differ.
Result<Block> XorAll(const std::vector<const Block*>& blocks);

/// The bitwise difference between an old and a new version of a block,
/// plus a compact wire encoding of it.
///
/// Delivery semantics: applying a ChangeMask to a block XORs the delta in,
/// which is exactly the parity-site side of formula (1). Applying the same
/// mask to the old data block yields the new one.
class ChangeMask {
 public:
  /// Computes `new_block XOR old_block`. Sizes must match.
  static Result<ChangeMask> Diff(const Block& old_block,
                                 const Block& new_block);

  /// A mask equal to the full contents of `block` (i.e. diff against an
  /// all-zero old block). Used when the old contents are unknown.
  static ChangeMask FromFull(const Block& block);

  /// XORs the delta into `target` (formula (1) parity update, or forward
  /// application old -> new). Sizes must match.
  Status ApplyTo(Block* target) const;

  /// Size of the block this mask applies to.
  size_t block_size() const { return delta_.size(); }

  /// True if the mask changes nothing.
  bool IsNoop() const { return delta_.IsZero(); }

  /// Number of bytes in which old and new differ.
  size_t ChangedBytes() const;

  /// Bytes this mask occupies on the wire under the §7.4 encoding:
  /// changed bytes are shipped as (offset, length, payload) runs; runs
  /// closer than 8 bytes apart are coalesced. A no-op mask costs the
  /// 8-byte header only.
  size_t EncodedSize() const;

  const Block& delta() const { return delta_; }

 private:
  explicit ChangeMask(Block delta) : delta_(std::move(delta)) {}
  Block delta_;
};

}  // namespace radd

#endif  // RADD_COMMON_BLOCK_H_
