// Disk block buffers and the XOR algebra the paper's parity maintenance
// rests on.
//
// Formula (1):  parity' = parity XOR (new_data XOR old_data)
// Formula (2):  failed  = XOR{ other blocks in the group }
//
// The "change mask" of W3(b) — "the bits in the block which changed value"
// — is exactly `new XOR old`; we also provide a compact run-length encoding
// of the mask so the network layer can account bytes the way §7.4 argues
// (a 100-byte record update in a 4 KB block ships ~100 bytes, not 4 KB).
//
// Performance: every RADD operation bottoms out here, so the kernels
// (XOR, zero test, diff, run scan, checksum) run word-at-a-time over
// uint64_t lanes with unaligned-safe head/tail handling; the plain loops
// auto-vectorize under -O2. Byte-level semantics (including the §7.4 run
// coalescing rule) are unchanged — tests/block_kernel_test.cc checks the
// word-wise paths against byte-wise references at awkward sizes.

#ifndef RADD_COMMON_BLOCK_H_
#define RADD_COMMON_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace radd {

namespace internal {
/// dst[i] ^= src[i] for i in [0, n). Word-at-a-time; any alignment.
void XorBytes(uint8_t* dst, const uint8_t* src, size_t n);
/// dst[i] = a[i] ^ b[i] for i in [0, n); returns true if any output byte
/// is nonzero (fused so ChangeMask::Diff learns no-op-ness in one pass).
bool XorBytes3(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n);
/// True if every byte of [p, p+n) is zero.
bool AllZero(const uint8_t* p, size_t n);
/// Index of the first nonzero byte in [from, n), or n if none.
size_t FindNonzero(const uint8_t* p, size_t from, size_t n);
}  // namespace internal

/// Index of a physical block (row) on a site's logical disk.
using BlockNum = uint64_t;

/// A fixed-size byte buffer representing one disk block's contents.
///
/// All blocks participating in one parity group must share a size; parity
/// arithmetic on mismatched sizes is a caller error.
class Block {
 public:
  /// Default block size used throughout the library (§7.4's 4 KB example).
  static constexpr size_t kDefaultSize = 4096;

  /// Creates an all-zero block of `size` bytes.
  explicit Block(size_t size = kDefaultSize) : data_(size, 0) {}

  /// Creates a block holding a copy of `bytes`.
  explicit Block(std::vector<uint8_t> bytes) : data_(std::move(bytes)) {}

  size_t size() const { return data_.size(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  const std::vector<uint8_t>& bytes() const { return data_; }

  /// Relinquishes the backing buffer (leaves this block empty). Lets a
  /// BlockArena recycle storage from a block that is done carrying data.
  std::vector<uint8_t> TakeBytes() && { return std::move(data_); }

  uint8_t operator[](size_t i) const { return data_[i]; }
  uint8_t& operator[](size_t i) { return data_[i]; }

  /// True if every byte is zero.
  bool IsZero() const;

  /// Sets all bytes to zero.
  void Clear();

  /// In-place XOR with `other`. Sizes must match.
  Status XorWith(const Block& other);

  /// Writes `bytes` at `offset`, as a record update would. Fails if the
  /// write would run off the end of the block.
  Status WriteAt(size_t offset, const uint8_t* bytes, size_t n);

  /// Fills the block with bytes derived deterministically from `seed`
  /// (useful for tests and workload generation).
  void FillPattern(uint64_t seed);

  /// 64-bit FNV-1a-style checksum of the contents, folded over uint64_t
  /// lanes (plus a length term) so it runs at word speed. Only ever
  /// compared against other checksums computed by this same function.
  uint64_t Checksum() const;

  friend bool operator==(const Block& a, const Block& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Block& a, const Block& b) {
    return !(a == b);
  }

 private:
  std::vector<uint8_t> data_;
};

/// XOR of two blocks, returned by value. Sizes must match (asserted).
Block Xor(const Block& a, const Block& b);

/// Three-operand XOR kernel: *dst = a ^ b, no temporary. `dst` must
/// already have the operands' size (it is not resized).
Status XorInto(Block* dst, const Block& a, const Block& b);

/// Single-pass formula-(2) accumulation without pointer-vector churn:
/// XORs the `n` blocks produced by `at(0) .. at(n-1)` (each returning a
/// `const Block&`) into `*out`, which must already be sized to match.
template <typename BlockAt>
Status XorAllInto(Block* out, size_t n, BlockAt&& at) {
  if (n == 0) return Status::InvalidArgument("XorAll of empty group");
  const Block& first = at(size_t{0});
  if (out->size() != first.size()) {
    return Status::InvalidArgument("XorAll into mismatched block size");
  }
  std::memcpy(out->data(), first.data(), first.size());
  for (size_t i = 1; i < n; ++i) {
    const Block& b = at(i);
    if (b.size() != out->size()) {
      return Status::InvalidArgument("XorAll of mismatched block sizes");
    }
    internal::XorBytes(out->data(), b.data(), out->size());
  }
  return Status::OK();
}

/// XOR of a whole group of blocks — formula (2) reconstruction. Returns
/// InvalidArgument if `blocks` is empty or sizes differ.
Result<Block> XorAll(const std::vector<const Block*>& blocks);

/// The bitwise difference between an old and a new version of a block,
/// plus a compact wire encoding of it.
///
/// Delivery semantics: applying a ChangeMask to a block XORs the delta in,
/// which is exactly the parity-site side of formula (1). Applying the same
/// mask to the old data block yields the new one.
class ChangeMask {
 public:
  /// Computes `new_block XOR old_block`. Sizes must match. The diff pass
  /// also learns whether the blocks were identical, so the no-op case
  /// short-circuits IsNoop()/EncodedSize() without another scan.
  static Result<ChangeMask> Diff(const Block& old_block,
                                 const Block& new_block);

  /// A mask equal to the full contents of `block` (i.e. diff against an
  /// all-zero old block). Used when the old contents are unknown. Accepts
  /// the block by value so callers can move instead of copy.
  static ChangeMask FromFull(Block block);

  /// XORs the delta into `target` (formula (1) parity update, or forward
  /// application old -> new). Sizes must match. A known-no-op mask skips
  /// the XOR pass entirely.
  Status ApplyTo(Block* target) const;

  /// Size of the block this mask applies to.
  size_t block_size() const { return delta_.size(); }

  /// True if the mask changes nothing. O(1) for masks built by Diff;
  /// computed (and cached) on first use otherwise.
  bool IsNoop() const;

  /// Number of bytes in which old and new differ.
  size_t ChangedBytes() const;

  /// Bytes this mask occupies on the wire under the §7.4 encoding:
  /// changed bytes are shipped as (offset, length, payload) runs; runs
  /// closer than 8 bytes apart are coalesced. A no-op mask costs the
  /// 8-byte header only.
  size_t EncodedSize() const;

  const Block& delta() const { return delta_; }

  /// Relinquishes the delta block (e.g. to recycle its buffer after the
  /// mask has been applied).
  Block TakeDelta() && { return std::move(delta_); }

 private:
  explicit ChangeMask(Block delta, int8_t known_zero = -1)
      : delta_(std::move(delta)), known_zero_(known_zero) {}
  Block delta_;
  /// Tri-state no-op cache: -1 unknown, 0 nonzero, 1 all-zero.
  mutable int8_t known_zero_ = -1;
};

}  // namespace radd

#endif  // RADD_COMMON_BLOCK_H_
