#include "common/format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace radd {

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatHours(double hours) {
  constexpr double kHoursPerYear = 24.0 * 365.0;
  if (hours >= kHoursPerYear) {
    return FormatDouble(hours / kHoursPerYear, 2) + " years";
  }
  return FormatDouble(hours, 1) + " hours";
}

void TextTable::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::AddRule() { rows_.push_back(Row{true, {}}); }

std::string TextTable::Render() const {
  // Compute column widths.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    if (!r.rule) widen(r.cells);
  }

  size_t total = 1;  // leading '|'
  for (size_t w : widths) total += w + 3;

  std::string rule(total, '-');
  rule += "\n";

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      line += " " + c + std::string(widths[i] - c.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule;
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule;
  }
  for (const auto& r : rows_) {
    out += r.rule ? rule : render_row(r.cells);
  }
  out += rule;
  return out;
}

void TextTable::Print() const {
  std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace radd
