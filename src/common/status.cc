#include "common/status.h"

namespace radd {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kBlocked:
      return "Blocked";
    case StatusCode::kLockConflict:
      return "LockConflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kStaleEpoch:
      return "StaleEpoch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace radd
