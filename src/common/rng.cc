#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace radd {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding.
inline uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Lemire's unbiased bounded generation.
  unsigned __int128 m = static_cast<unsigned __int128>(Next()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(Next()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, Rng* rng)
    : n_(n), theta_(theta), rng_(rng) {
  assert(n > 0);
  assert(theta >= 0 && theta < 1);
  zetan_ = 0;
  for (uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(i, theta_);
  double zeta2 = 0;
  for (uint64_t i = 1; i <= std::min<uint64_t>(2, n_); ++i) {
    zeta2 += 1.0 / std::pow(i, theta_);
  }
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0) return rng_->Uniform(n_);
  double u = rng_->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace radd
