// SiteStatusService — the epoch-stamped membership / site-status authority
// that replaces the paper's [ABBA85] oracle ("the protocol by which each
// site obtains the state of all other sites") with an actual control
// plane. All site state changes flow through this service instead of
// direct Site::set_state calls:
//
//   * kUp -> kDown       — a physical fault (InjectCrash / InjectDisaster)
//                          or a *declaration*: enough live observers
//                          reported heartbeat suspicion (majority rule,
//                          paper §5's partition handling). A declared-down
//                          site whose process is actually alive is
//                          "fenced": the cluster treats it as down, its
//                          writes land on spares, and it rejoins
//                          automatically once peers hear from it again.
//   * kDown -> kRecovering — NotifyRestart (a rebooted process announces
//                          itself) or the automatic rejoin of a fenced
//                          site when suspicion drops below the majority.
//   * kRecovering -> kUp — MarkUp, called by the recovery sweeper once its
//                          cursor has verified every row clean.
//
// Every transition bumps the site's *epoch*. Protocol messages carry the
// epoch of the site whose data they touch; a receiver whose service knows
// a newer epoch rejects the message with StaleEpoch instead of applying
// it — closing the window where a delayed pre-crash parity update or
// spare write, applied after a fast down->recovering->up cycle, would
// silently corrupt redundancy.

#ifndef RADD_CLUSTER_STATUS_SERVICE_H_
#define RADD_CLUSTER_STATUS_SERVICE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {

/// The control plane. One instance per cluster; deterministic (no hidden
/// randomness), so chaos schedules that drive it replay bit-for-bit.
class SiteStatusService {
 public:
  SiteStatusService(Simulator* sim, Cluster* cluster);

  // --- views ---------------------------------------------------------------

  /// Current membership epoch of `site`. Starts at 0 and bumps on every
  /// state transition; never reused.
  uint64_t Epoch(SiteId site) const;

  /// OK when `epoch` matches `site`'s current epoch; StaleEpoch otherwise.
  Status CheckEpoch(SiteId site, uint64_t epoch) const;

  /// Delegates to the cluster (the service is the sole writer of state).
  SiteState StateOf(SiteId site) const { return cluster_->StateOf(site); }

  /// Whether the site's *process* is running. A fenced site is cluster-down
  /// but alive (it keeps heartbeating, which is what lets it rejoin); a
  /// crashed or disaster-struck site is not alive until NotifyRestart.
  bool ProcessAlive(SiteId site) const;

  /// True when every site is kUp — the autopilot convergence target.
  bool Converged() const;

  // --- physical fault + repair events --------------------------------------

  /// The site's process halts; disks keep their contents.
  Status InjectCrash(SiteId site);

  /// The site halts and all its disks are lost.
  Status InjectDisaster(SiteId site);

  /// Media failure of disk `d` at an up site: the site stays alive and
  /// moves to kRecovering (its sweep reconstructs the lost blocks).
  Status InjectDiskFailure(SiteId site, int d);

  /// A rebooted (or replaced, after disaster) process announces itself:
  /// kDown -> kRecovering. The background sweeper takes it from there.
  Status NotifyRestart(SiteId site);

  /// kRecovering -> kUp. Called by the recovery sweeper after its
  /// verification pass; callable manually for oracle-style tests.
  Status MarkUp(SiteId site);

  // --- failure-detector input ----------------------------------------------

  /// `observer`'s heartbeat detector raised (suspected = true) or cleared
  /// (false) its suspicion of `target`. The service declares `target` down
  /// once a strict majority of its peers that are themselves not down
  /// suspect it, and rejoins a fenced site once suspicion falls back below
  /// the majority (peers hear its heartbeats again).
  void ReportSuspicion(SiteId observer, SiteId target, bool suspected);

  // --- listeners -----------------------------------------------------------

  /// Called after every state transition with (site, new state, new epoch).
  /// Registration order is invocation order (determinism).
  using Listener = std::function<void(SiteId, SiteState, uint64_t)>;
  void AddListener(Listener listener);

  /// Counters: "status.transitions", "status.declared_down",
  /// "status.rejoins", "status.restarts", "status.marked_up",
  /// "status.crashes", "status.disasters", "status.disk_failures".
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t epoch = 0;
    bool alive = true;
    /// Declared down by suspicion while the process still runs.
    bool fenced = false;
    /// Peers currently reporting suspicion of this site.
    std::set<SiteId> suspectors;
  };

  /// Applies the already-validated state change: bumps the epoch, records
  /// stats, and notifies listeners.
  void Transition(SiteId site, SiteState next, const char* counter);

  /// Re-checks the majority rule for `target` after a suspicion change.
  void Reevaluate(SiteId target);

  /// Suspicion reports for `target` from observers that are not down.
  int LiveSuspicion(SiteId target) const;

  Simulator* sim_;
  Cluster* cluster_;
  std::vector<Entry> entries_;
  std::vector<Listener> listeners_;
  Stats stats_;
};

}  // namespace radd

#endif  // RADD_CLUSTER_STATUS_SERVICE_H_
