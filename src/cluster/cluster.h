// Sites and cluster-wide state (paper §3.1).
//
// Each site owns a disk system (DiskArray) and a UID source, and is in one
// of three states: up, down, or recovering. Failures:
//   * disk failure     — site stays operational, moves up -> recovering,
//                        one disk's blocks are lost;
//   * temporary outage — site down, disks intact (stale on return);
//   * disaster         — site down, all disks lost on return.
//
// The paper assumes a protocol by which every site knows every other
// site's state [ABBA85] without elaborating; Cluster provides that as an
// oracle (instantaneous, always correct), which is the paper's model. A
// heartbeat-based detector is available as an extension (see
// cluster/heartbeat.h).

#ifndef RADD_CLUSTER_CLUSTER_H_
#define RADD_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/uid.h"
#include "disk/block_store.h"
#include "disk/disk.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace radd {

/// Operational state of a site (paper §3.1).
enum class SiteState { kUp, kDown, kRecovering };

std::string_view SiteStateName(SiteState s);

/// Shape of one site's disk system.
struct SiteConfig {
  int num_disks = 1;
  BlockNum blocks_per_disk = 64;
  size_t block_size = Block::kDefaultSize;
};

/// One computer system in the network.
class Site {
 public:
  Site(SiteId id, const SiteConfig& config)
      : id_(id),
        uids_(id),
        disks_(config.num_disks, config.blocks_per_disk, config.block_size),
        store_(std::make_unique<PlainStore>(&disks_)) {}

  SiteId id() const { return id_; }
  SiteState state() const { return state_; }
  void set_state(SiteState s) { state_ = s; }

  /// True while the site is down because of a disaster (all disks lost).
  /// Cleared by Cluster::RestoreSite, which re-poisons the array so the
  /// replacement hardware comes back blank (paper §3.1: "all disks lost
  /// on return") no matter what landed on the dead disks meanwhile.
  bool disaster_lost() const { return disaster_lost_; }
  void set_disaster_lost(bool v) { disaster_lost_ = v; }

  DiskArray* disks() { return &disks_; }
  const DiskArray& disks() const { return disks_; }
  UidGenerator* uids() { return &uids_; }

  /// The block device the distributed layer talks to. Defaults to the raw
  /// DiskArray; C-RAID installs a LocalRaid here instead.
  BlockStore* store() const { return store_.get(); }
  void set_store(std::unique_ptr<BlockStore> store) {
    store_ = std::move(store);
  }

 private:
  SiteId id_;
  SiteState state_ = SiteState::kUp;
  bool disaster_lost_ = false;
  UidGenerator uids_;
  DiskArray disks_;
  std::unique_ptr<BlockStore> store_;
};

/// The collection of sites plus failure injection.
class Cluster {
 public:
  /// Builds `num_sites` identical sites.
  Cluster(int num_sites, const SiteConfig& config);

  /// Builds heterogeneous sites (§4), one config per site.
  explicit Cluster(const std::vector<SiteConfig>& configs);

  int num_sites() const { return static_cast<int>(sites_.size()); }
  Site* site(SiteId id);
  const Site* site(SiteId id) const;

  /// Oracle failure detector: the paper's assumption that every site knows
  /// every other site's state.
  SiteState StateOf(SiteId id) const;

  /// Temporary site failure: the site stops; its disks keep their
  /// (increasingly stale) contents.
  Status CrashSite(SiteId id);

  /// Site disaster: the site stops and all its disks are lost.
  Status DisasterSite(SiteId id);

  /// Disk failure at an up site: the site moves to recovering and disk
  /// `d`'s blocks are lost.
  Status FailDisk(SiteId id, int d);

  /// A down site comes back; it enters recovering. (The RADD controller's
  /// recovery sweep moves it to up.) A disaster-lost site is restored with
  /// *blank* disks: every block is re-marked lost at restore time, so stale
  /// pre-disaster contents — or anything written to the dead array during
  /// the outage — can only be served through reconstruction.
  Status RestoreSite(SiteId id);

  /// Marks a site fully recovered.
  Status MarkUp(SiteId id);

  /// Ids of all sites currently in the given state.
  std::vector<SiteId> SitesIn(SiteState s) const;

  /// Number of sites not up (down or recovering).
  int UnhealthySites() const;

 private:
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace radd

#endif  // RADD_CLUSTER_CLUSTER_H_
