#include "cluster/status_service.h"

namespace radd {

SiteStatusService::SiteStatusService(Simulator* sim, Cluster* cluster)
    : sim_(sim), cluster_(cluster) {
  entries_.resize(static_cast<size_t>(cluster_->num_sites()));
}

uint64_t SiteStatusService::Epoch(SiteId site) const {
  return site < entries_.size() ? entries_[site].epoch : 0;
}

Status SiteStatusService::CheckEpoch(SiteId site, uint64_t epoch) const {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  if (entries_[site].epoch != epoch) {
    return Status::StaleEpoch(
        "site " + std::to_string(site) + " is at epoch " +
        std::to_string(entries_[site].epoch) + ", operation carried " +
        std::to_string(epoch));
  }
  return Status::OK();
}

bool SiteStatusService::ProcessAlive(SiteId site) const {
  return site < entries_.size() && entries_[site].alive;
}

bool SiteStatusService::Converged() const {
  for (int s = 0; s < cluster_->num_sites(); ++s) {
    if (cluster_->StateOf(static_cast<SiteId>(s)) != SiteState::kUp) {
      return false;
    }
  }
  return true;
}

void SiteStatusService::Transition(SiteId site, SiteState next,
                                   const char* counter) {
  Entry& e = entries_[site];
  ++e.epoch;
  stats_.Add("status.transitions");
  stats_.Add(counter);
  for (const Listener& l : listeners_) l(site, next, e.epoch);
}

Status SiteStatusService::InjectCrash(SiteId site) {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  RADD_RETURN_NOT_OK(cluster_->CrashSite(site));
  Entry& e = entries_[site];
  e.alive = false;
  e.fenced = false;
  Transition(site, SiteState::kDown, "status.crashes");
  return Status::OK();
}

Status SiteStatusService::InjectDisaster(SiteId site) {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  RADD_RETURN_NOT_OK(cluster_->DisasterSite(site));
  Entry& e = entries_[site];
  e.alive = false;
  e.fenced = false;
  Transition(site, SiteState::kDown, "status.disasters");
  return Status::OK();
}

Status SiteStatusService::InjectDiskFailure(SiteId site, int d) {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  RADD_RETURN_NOT_OK(cluster_->FailDisk(site, d));
  Transition(site, SiteState::kRecovering, "status.disk_failures");
  return Status::OK();
}

Status SiteStatusService::NotifyRestart(SiteId site) {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  // RestoreSite validates kDown and blanks the disks of a disaster-lost
  // site before the state flips.
  RADD_RETURN_NOT_OK(cluster_->RestoreSite(site));
  Entry& e = entries_[site];
  e.alive = true;
  e.fenced = false;
  Transition(site, SiteState::kRecovering, "status.restarts");
  return Status::OK();
}

Status SiteStatusService::MarkUp(SiteId site) {
  if (site >= entries_.size()) {
    return Status::NotFound("no site " + std::to_string(site));
  }
  if (cluster_->StateOf(site) != SiteState::kRecovering) {
    return Status::InvalidArgument(
        "site " + std::to_string(site) + " is " +
        std::string(SiteStateName(cluster_->StateOf(site))) +
        ", not recovering");
  }
  RADD_RETURN_NOT_OK(cluster_->MarkUp(site));
  Transition(site, SiteState::kUp, "status.marked_up");
  return Status::OK();
}

int SiteStatusService::LiveSuspicion(SiteId target) const {
  int count = 0;
  for (SiteId o : entries_[target].suspectors) {
    if (cluster_->StateOf(o) != SiteState::kDown) ++count;
  }
  return count;
}

void SiteStatusService::ReportSuspicion(SiteId observer, SiteId target,
                                        bool suspected) {
  if (target >= entries_.size() || observer == target) return;
  Entry& e = entries_[target];
  if (suspected) {
    e.suspectors.insert(observer);
  } else {
    e.suspectors.erase(observer);
  }
  Reevaluate(target);
}

void SiteStatusService::Reevaluate(SiteId target) {
  Entry& e = entries_[target];
  const int peers = cluster_->num_sites() - 1;
  const int live = LiveSuspicion(target);
  const bool majority = 2 * live > peers;
  const SiteState state = cluster_->StateOf(target);

  if (state != SiteState::kDown && majority) {
    // Declare. A strict majority of peers (counting only observers that
    // are themselves not down) cannot be mustered by the minority side of
    // a partition, so only the majority side ever fences (§5's rule). The
    // target's process may well be alive — a partitioned or falsely
    // suspected site — in which case it is *fenced*: cluster-down (its
    // traffic redirects to spares), but still heartbeating, which is the
    // signal that later rejoins it.
    (void)cluster_->CrashSite(target);
    e.fenced = e.alive;
    Transition(target, SiteState::kDown, "status.declared_down");
    return;
  }

  if (state == SiteState::kDown && e.fenced && !majority) {
    // Peers hear the fenced site again: rejoin as recovering — it missed
    // writes while fenced (they went to spares), so it must sweep before
    // serving as up.
    if (cluster_->RestoreSite(target).ok()) {
      e.fenced = false;
      Transition(target, SiteState::kRecovering, "status.rejoins");
    }
  }
}

void SiteStatusService::AddListener(Listener listener) {
  listeners_.push_back(std::move(listener));
}

}  // namespace radd
