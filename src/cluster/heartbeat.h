// Heartbeat failure detector — a concrete stand-in for the site-status
// protocol the paper leaves to [ABBA85] ("The protocol by which each site
// obtains the state of all other sites is straightforward and is not
// discussed further in this paper").
//
// Every site broadcasts a heartbeat each `interval`. An observer that has
// not heard from a peer for `suspect_after` intervals presumes it down;
// hearing from it again (it was only slow, partitioned, or has recovered)
// clears the suspicion. The detector reports per-observer *perceived*
// states, which is exactly what RaddNodeSystem::SetPresumedState consumes
// — so a partition that "looks like a single failure" (§5) is handled by
// the majority side automatically.

#ifndef RADD_CLUSTER_HEARTBEAT_H_
#define RADD_CLUSTER_HEARTBEAT_H_

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace radd {

/// Tunables of the detector.
struct HeartbeatConfig {
  SimTime interval = Millis(500);
  /// Missed intervals before a peer is presumed down.
  int suspect_after = 3;
};

/// The detector. One instance serves the whole simulation but keeps
/// independent per-observer state (each site only knows what it heard).
class HeartbeatDetector {
 public:
  /// `sites` lists the participating sites. The detector registers a
  /// composite network handler per site; if the caller also handles
  /// messages on these sites (e.g. RaddNodeSystem), construct the detector
  /// FIRST and pass the previous handler via `chain` so both see traffic
  /// — or run it on a dedicated port-like message type, which is what this
  /// implementation does: it only consumes messages of type "heartbeat"
  /// and forwards everything else to the chained handler.
  HeartbeatDetector(Simulator* sim, Network* net, Cluster* cluster,
                    std::vector<SiteId> sites,
                    const HeartbeatConfig& config = {});

  /// Starts the periodic broadcast/check loops.
  void Start();

  /// What `observer` currently believes about `target`. A site always
  /// believes itself up. Down sites make no observations (their last
  /// belief is reported, as a real crashed node would have no say).
  SiteState Perceived(SiteId observer, SiteId target) const;

  /// True once `observer` suspects `target`.
  bool Suspects(SiteId observer, SiteId target) const;

  /// Number of state flips observed (suspicions raised + cleared).
  uint64_t transitions() const { return transitions_; }

 private:
  void Broadcast(SiteId from);
  void Check(SiteId observer);
  void OnMessage(SiteId self, Message& msg);

  Simulator* sim_;
  Network* net_;
  Cluster* cluster_;
  std::vector<SiteId> sites_;
  HeartbeatConfig config_;
  std::map<SiteId, Network::Handler> chained_;
  /// last_heard_[observer][target] = sim time of the last heartbeat.
  std::map<SiteId, std::map<SiteId, SimTime>> last_heard_;
  std::map<SiteId, std::map<SiteId, bool>> suspected_;
  uint64_t transitions_ = 0;
  bool started_ = false;
};

}  // namespace radd

#endif  // RADD_CLUSTER_HEARTBEAT_H_
