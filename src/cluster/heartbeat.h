// Heartbeat failure detector — a concrete stand-in for the site-status
// protocol the paper leaves to [ABBA85] ("The protocol by which each site
// obtains the state of all other sites is straightforward and is not
// discussed further in this paper").
//
// Every site broadcasts a heartbeat each `interval`. An observer that has
// not heard from a peer for `suspect_after` intervals does not declare it
// down immediately: a single delayed or reorder-jittered heartbeat must
// not flap the membership. Instead it sends a confirmation probe and only
// raises the suspicion when the probe also goes unanswered for a further
// interval (hysteresis). Hearing from the peer again — heartbeat or probe
// ack — clears the suspicion.
//
// The detector reports per-observer *perceived* states, which is exactly
// what RaddNodeSystem::SetPerceiver consumes — so a partition that "looks
// like a single failure" (§5) is handled by the majority side
// automatically. When wired to a SiteStatusService it additionally feeds
// every suspicion change into the control plane, which aggregates them
// under the majority rule into actual kUp -> kDown declarations.

#ifndef RADD_CLUSTER_HEARTBEAT_H_
#define RADD_CLUSTER_HEARTBEAT_H_

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/status_service.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {

/// Tunables of the detector.
struct HeartbeatConfig {
  SimTime interval = Millis(500);
  /// Missed intervals before a peer is *probed* (and, with confirmation
  /// disabled, immediately suspected).
  int suspect_after = 3;
  /// Require an unanswered confirmation probe (one extra interval) before
  /// declaring. Disable to get the old trigger-happy behavior.
  bool confirm_probe = true;
};

/// The detector. One instance serves the whole simulation but keeps
/// independent per-observer state (each site only knows what it heard).
class HeartbeatDetector {
 public:
  /// `sites` lists the participating sites. The detector registers a
  /// composite network handler per site; if the caller also handles
  /// messages on these sites (e.g. RaddNodeSystem), construct the detector
  /// AFTER that handler so it can chain: it only consumes messages of
  /// types "heartbeat" / "hb_probe" / "hb_probe_ack" and forwards
  /// everything else to the previously registered handler.
  HeartbeatDetector(Simulator* sim, Network* net, Cluster* cluster,
                    std::vector<SiteId> sites,
                    const HeartbeatConfig& config = {});

  /// Starts the periodic broadcast/check loops.
  void Start();

  /// Stops the loops: pending ticks become no-ops and nothing is
  /// rescheduled, so Simulator::Run() can drain the queue.
  void Stop();

  /// Feeds every suspicion raise/clear into the control plane (majority
  /// aggregation, fencing, rejoin). While attached, process-aliveness —
  /// who broadcasts and who answers probes — also comes from the service,
  /// so a *fenced* site (declared down, process alive) keeps heartbeating
  /// and can be heard again.
  void SetStatusService(SiteStatusService* service) { service_ = service; }

  /// What `observer` currently believes about `target`. A site always
  /// believes itself up. Down sites make no observations (their last
  /// belief is reported, as a real crashed node would have no say).
  SiteState Perceived(SiteId observer, SiteId target) const;

  /// True once `observer` suspects `target`.
  bool Suspects(SiteId observer, SiteId target) const;

  /// Number of state flips observed (suspicions raised + cleared).
  uint64_t transitions() const { return transitions_; }

  /// Suspicions raised against a site whose process was in fact alive
  /// (ground truth from the cluster/service) — the detector's false
  /// positive count.
  uint64_t false_suspicions() const {
    return stats_.Get("detector.false_suspicions");
  }

  /// "detector.suspicions", "detector.clears", "detector.false_suspicions",
  /// "detector.probes_sent", "detector.probes_answered".
  const Stats& stats() const { return stats_; }

 private:
  struct PeerView {
    SimTime last_heard = 0;
    bool suspected = false;
    /// A confirmation probe is outstanding.
    bool probing = false;
    SimTime probe_deadline = 0;
  };

  void Broadcast(SiteId from);
  void Check(SiteId observer);
  void OnMessage(SiteId self, Message& msg);
  /// Records life sign `observer` heard from `target`.
  void Hear(SiteId observer, SiteId target);
  void RaiseSuspicion(SiteId observer, SiteId target);
  /// Process-aliveness ground truth: the service's when attached, else
  /// "cluster state != down" (the legacy oracle approximation).
  bool Alive(SiteId site) const;

  Simulator* sim_;
  Network* net_;
  Cluster* cluster_;
  std::vector<SiteId> sites_;
  HeartbeatConfig config_;
  SiteStatusService* service_ = nullptr;
  std::map<SiteId, Network::Handler> chained_;
  /// views_[observer][target].
  std::map<SiteId, std::map<SiteId, PeerView>> views_;
  uint64_t transitions_ = 0;
  Stats stats_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace radd

#endif  // RADD_CLUSTER_HEARTBEAT_H_
