#include "cluster/cluster.h"

namespace radd {

std::string_view SiteStateName(SiteState s) {
  switch (s) {
    case SiteState::kUp:
      return "up";
    case SiteState::kDown:
      return "down";
    case SiteState::kRecovering:
      return "recovering";
  }
  return "?";
}

Cluster::Cluster(int num_sites, const SiteConfig& config) {
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<Site>(static_cast<SiteId>(i), config));
  }
}

Cluster::Cluster(const std::vector<SiteConfig>& configs) {
  sites_.reserve(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    sites_.push_back(
        std::make_unique<Site>(static_cast<SiteId>(i), configs[i]));
  }
}

Site* Cluster::site(SiteId id) {
  return id < sites_.size() ? sites_[id].get() : nullptr;
}

const Site* Cluster::site(SiteId id) const {
  return id < sites_.size() ? sites_[id].get() : nullptr;
}

SiteState Cluster::StateOf(SiteId id) const {
  const Site* s = site(id);
  return s ? s->state() : SiteState::kDown;
}

Status Cluster::CrashSite(SiteId id) {
  Site* s = site(id);
  if (!s) return Status::NotFound("no site " + std::to_string(id));
  if (s->state() == SiteState::kDown) {
    return Status::InvalidArgument("site already down");
  }
  s->set_state(SiteState::kDown);
  return Status::OK();
}

Status Cluster::DisasterSite(SiteId id) {
  Site* s = site(id);
  if (!s) return Status::NotFound("no site " + std::to_string(id));
  s->set_state(SiteState::kDown);
  s->set_disaster_lost(true);
  for (int d = 0; d < s->disks()->num_disks(); ++d) {
    RADD_RETURN_NOT_OK(s->disks()->FailDisk(d));
  }
  return Status::OK();
}

Status Cluster::FailDisk(SiteId id, int d) {
  Site* s = site(id);
  if (!s) return Status::NotFound("no site " + std::to_string(id));
  if (s->state() == SiteState::kDown) {
    return Status::InvalidArgument("site is down; disk failure is moot");
  }
  RADD_RETURN_NOT_OK(s->disks()->FailDisk(d));
  s->set_state(SiteState::kRecovering);
  return Status::OK();
}

Status Cluster::RestoreSite(SiteId id) {
  Site* s = site(id);
  if (!s) return Status::NotFound("no site " + std::to_string(id));
  if (s->state() != SiteState::kDown) {
    return Status::InvalidArgument("site is not down");
  }
  if (s->disaster_lost()) {
    // The replacement hardware arrives blank. Re-failing the disks here
    // (not only at disaster time) matters: a write that reached the dead
    // array during the outage clears that block's loss mark, and without
    // this the stale value would be served after restore instead of being
    // routed through formula-(2) reconstruction.
    for (int d = 0; d < s->disks()->num_disks(); ++d) {
      RADD_RETURN_NOT_OK(s->disks()->FailDisk(d));
    }
    s->set_disaster_lost(false);
  }
  s->set_state(SiteState::kRecovering);
  return Status::OK();
}

Status Cluster::MarkUp(SiteId id) {
  Site* s = site(id);
  if (!s) return Status::NotFound("no site " + std::to_string(id));
  s->set_state(SiteState::kUp);
  return Status::OK();
}

std::vector<SiteId> Cluster::SitesIn(SiteState state) const {
  std::vector<SiteId> out;
  for (const auto& s : sites_) {
    if (s->state() == state) out.push_back(s->id());
  }
  return out;
}

int Cluster::UnhealthySites() const {
  int n = 0;
  for (const auto& s : sites_) {
    if (s->state() != SiteState::kUp) ++n;
  }
  return n;
}

}  // namespace radd
