#include "cluster/heartbeat.h"

namespace radd {

namespace {
constexpr size_t kHeartbeatBytes = 16;
}  // namespace

HeartbeatDetector::HeartbeatDetector(Simulator* sim, Network* net,
                                     Cluster* cluster,
                                     std::vector<SiteId> sites,
                                     const HeartbeatConfig& config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      sites_(std::move(sites)),
      config_(config) {
  for (SiteId s : sites_) {
    chained_[s] = net_->GetHandler(s);
    net_->RegisterHandler(
        s, [this, s](Message& msg) { OnMessage(s, msg); });
    for (SiteId t : sites_) {
      if (t == s) continue;
      views_[s][t] = PeerView{};
    }
  }
}

void HeartbeatDetector::Start() {
  if (started_) return;
  started_ = true;
  stopped_ = false;
  for (SiteId s : sites_) {
    Broadcast(s);
    Check(s);
  }
}

void HeartbeatDetector::Stop() {
  stopped_ = true;
  started_ = false;
}

bool HeartbeatDetector::Alive(SiteId site) const {
  if (service_) return service_->ProcessAlive(site);
  return cluster_->StateOf(site) != SiteState::kDown;
}

void HeartbeatDetector::Broadcast(SiteId from) {
  if (stopped_) return;
  // Gated on process-aliveness, not on the cluster's view: a fenced site
  // (declared down while its process still runs) keeps broadcasting —
  // that is exactly the signal that lets the control plane rejoin it.
  if (Alive(from)) {
    for (SiteId to : sites_) {
      if (to == from) continue;
      Message m;
      m.from = from;
      m.to = to;
      m.type = MessageType::kHeartbeat;
      m.wire_bytes = kHeartbeatBytes;
      m.payload = Heartbeat{sim_->Now()};
      net_->Send(std::move(m));
    }
  }
  sim_->Schedule(config_.interval, [this, from]() { Broadcast(from); });
}

void HeartbeatDetector::RaiseSuspicion(SiteId observer, SiteId target) {
  PeerView& v = views_[observer][target];
  v.suspected = true;
  v.probing = false;
  ++transitions_;
  stats_.Add("detector.suspicions");
  if (Alive(target)) stats_.Add("detector.false_suspicions");
  if (service_) service_->ReportSuspicion(observer, target, true);
}

void HeartbeatDetector::Check(SiteId observer) {
  if (stopped_) return;
  // A down observer makes no observations; its views freeze. (A *fenced*
  // observer is cluster-down too: its stale observations must not keep
  // feeding the control plane while it is out of the membership.)
  if (cluster_->StateOf(observer) != SiteState::kDown) {
    const SimTime limit = config_.interval *
                          static_cast<SimTime>(config_.suspect_after);
    for (SiteId target : sites_) {
      if (target == observer) continue;
      PeerView& v = views_[observer][target];
      const bool quiet = sim_->Now() > v.last_heard + limit;
      if (!quiet) {
        v.probing = false;
        continue;
      }
      if (v.suspected) continue;
      if (!config_.confirm_probe) {
        RaiseSuspicion(observer, target);
        continue;
      }
      if (!v.probing) {
        // Hysteresis: k missed intervals alone could be one reordered or
        // dropped heartbeat. Confirm with a direct probe before flapping
        // the membership.
        Message m;
        m.from = observer;
        m.to = target;
        m.type = MessageType::kHbProbe;
        m.wire_bytes = kHeartbeatBytes;
        m.payload = Heartbeat{sim_->Now()};
        net_->Send(std::move(m));
        v.probing = true;
        v.probe_deadline = sim_->Now() + config_.interval;
        stats_.Add("detector.probes_sent");
      } else if (sim_->Now() >= v.probe_deadline) {
        RaiseSuspicion(observer, target);
      }
    }
  }
  sim_->Schedule(config_.interval, [this, observer]() { Check(observer); });
}

void HeartbeatDetector::Hear(SiteId observer, SiteId target) {
  PeerView& v = views_[observer][target];
  v.last_heard = sim_->Now();
  v.probing = false;
  if (v.suspected) {
    v.suspected = false;
    ++transitions_;
    stats_.Add("detector.clears");
    if (service_) service_->ReportSuspicion(observer, target, false);
  }
}

void HeartbeatDetector::OnMessage(SiteId self, Message& msg) {
  if (msg.type == MessageType::kHeartbeat) {
    if (cluster_->StateOf(self) == SiteState::kDown) return;
    Hear(self, msg.from);
    return;
  }
  if (msg.type == MessageType::kHbProbe) {
    // Answered iff the process runs — a fenced site replies, advertising
    // that it is worth rejoining.
    if (Alive(self)) {
      Message m;
      m.from = self;
      m.to = msg.from;
      m.type = MessageType::kHbProbeAck;
      m.wire_bytes = kHeartbeatBytes;
      m.payload = Heartbeat{sim_->Now()};
      net_->Send(std::move(m));
    }
    return;
  }
  if (msg.type == MessageType::kHbProbeAck) {
    if (cluster_->StateOf(self) == SiteState::kDown) return;
    stats_.Add("detector.probes_answered");
    Hear(self, msg.from);
    return;
  }
  auto chained = chained_.find(self);
  if (chained != chained_.end() && chained->second) {
    chained->second(msg);
  }
}

bool HeartbeatDetector::Suspects(SiteId observer, SiteId target) const {
  auto o = views_.find(observer);
  if (o == views_.end()) return false;
  auto t = o->second.find(target);
  return t != o->second.end() && t->second.suspected;
}

SiteState HeartbeatDetector::Perceived(SiteId observer,
                                       SiteId target) const {
  if (observer == target) return SiteState::kUp;
  return Suspects(observer, target) ? SiteState::kDown : SiteState::kUp;
}

}  // namespace radd
