#include "cluster/heartbeat.h"

namespace radd {

namespace {
struct Heartbeat {
  SimTime sent_at;
};
constexpr size_t kHeartbeatBytes = 16;
}  // namespace

HeartbeatDetector::HeartbeatDetector(Simulator* sim, Network* net,
                                     Cluster* cluster,
                                     std::vector<SiteId> sites,
                                     const HeartbeatConfig& config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      sites_(std::move(sites)),
      config_(config) {
  for (SiteId s : sites_) {
    chained_[s] = net_->GetHandler(s);
    net_->RegisterHandler(
        s, [this, s](Message& msg) { OnMessage(s, msg); });
    for (SiteId t : sites_) {
      if (t == s) continue;
      last_heard_[s][t] = 0;
      suspected_[s][t] = false;
    }
  }
}

void HeartbeatDetector::Start() {
  if (started_) return;
  started_ = true;
  for (SiteId s : sites_) {
    Broadcast(s);
    Check(s);
  }
}

void HeartbeatDetector::Broadcast(SiteId from) {
  if (cluster_->StateOf(from) != SiteState::kDown) {
    for (SiteId to : sites_) {
      if (to == from) continue;
      Message m;
      m.from = from;
      m.to = to;
      m.type = "heartbeat";
      m.wire_bytes = kHeartbeatBytes;
      m.payload = Heartbeat{sim_->Now()};
      net_->Send(std::move(m));
    }
  }
  sim_->Schedule(config_.interval, [this, from]() { Broadcast(from); });
}

void HeartbeatDetector::Check(SiteId observer) {
  if (cluster_->StateOf(observer) != SiteState::kDown) {
    SimTime limit = config_.interval *
                    static_cast<SimTime>(config_.suspect_after);
    for (SiteId target : sites_) {
      if (target == observer) continue;
      SimTime last = last_heard_[observer][target];
      bool quiet = sim_->Now() > last + limit;
      bool& suspect = suspected_[observer][target];
      if (quiet != suspect) {
        suspect = quiet;
        ++transitions_;
      }
    }
  }
  sim_->Schedule(config_.interval, [this, observer]() { Check(observer); });
}

void HeartbeatDetector::OnMessage(SiteId self, Message& msg) {
  if (msg.type == "heartbeat") {
    if (cluster_->StateOf(self) == SiteState::kDown) return;
    last_heard_[self][msg.from] = sim_->Now();
    bool& suspect = suspected_[self][msg.from];
    if (suspect) {
      suspect = false;
      ++transitions_;
    }
    return;
  }
  auto chained = chained_.find(self);
  if (chained != chained_.end() && chained->second) {
    chained->second(msg);
  }
}

bool HeartbeatDetector::Suspects(SiteId observer, SiteId target) const {
  auto o = suspected_.find(observer);
  if (o == suspected_.end()) return false;
  auto t = o->second.find(target);
  return t != o->second.end() && t->second;
}

SiteState HeartbeatDetector::Perceived(SiteId observer,
                                       SiteId target) const {
  if (observer == target) return SiteState::kUp;
  return Suspects(observer, target) ? SiteState::kDown : SiteState::kUp;
}

}  // namespace radd
