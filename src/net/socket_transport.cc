#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/rng.h"

namespace radd {

namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

/// Sender-side state of one directed (from, to) link: a lazily opened
/// connection plus the stream epoch stamped into its frames. The mutex
/// serializes sends on the link, which keeps per-link frame order — the
/// FIFO property the DES network also has (absent jitter).
struct SocketTransport::Link {
  Link(SiteId f, SiteId t, uint64_t seed)
      : from(f), to(t), rng(seed) {}
  const SiteId from;
  const SiteId to;
  std::mutex mu;
  int fd = -1;
  /// Bumped on every reconnect; receivers fence older epochs. Starts at 1
  /// so epoch 0 unambiguously means "never connected" (the DES path).
  uint16_t epoch = 1;
  bool ever_connected = false;
  Rng rng;  ///< backoff jitter
};

/// One accepted inbound stream and the thread draining it.
struct SocketTransport::Connection {
  int fd = -1;
  std::thread reader;
};

SocketTransport::SocketTransport(int num_sites, SocketTransportConfig cfg)
    : num_sites_(num_sites),
      cfg_(cfg),
      handlers_(static_cast<size_t>(num_sites)),
      listen_fds_(static_cast<size_t>(num_sites), -1),
      ports_(static_cast<size_t>(num_sites), 0) {
  site_mu_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    site_mu_.push_back(std::make_unique<std::recursive_mutex>());
  }
}

SocketTransport::~SocketTransport() { Stop(); }

void SocketTransport::RegisterHandler(SiteId site, Handler handler) {
  handlers_.at(site) = std::move(handler);
}

uint16_t SocketTransport::port(SiteId site) const {
  return ports_.at(site);
}

Status SocketTransport::Start() {
  if (started_) return Status::InvalidArgument("transport already started");
  for (int s = 0; s < num_sites_; ++s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Stop();
      return Status::Unavailable("socket(): " +
                                 std::string(std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // kernel-assigned: no fixed-port collisions, ever
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
      CloseFd(fd);
      Stop();
      return Status::Unavailable("bind/listen: " +
                                 std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    listen_fds_[static_cast<size_t>(s)] = fd;
    ports_[static_cast<size_t>(s)] = ntohs(addr.sin_port);
  }
  running_.store(true);
  started_ = true;
  for (int s = 0; s < num_sites_; ++s) {
    acceptors_.emplace_back(
        [this, s]() { AcceptLoop(static_cast<SiteId>(s)); });
  }
  return Status::OK();
}

void SocketTransport::Stop() {
  running_.store(false);
  // Wake acceptors blocked in poll/accept, but close only after joining
  // them: an acceptor still reads its listen_fds_ slot, and closing early
  // would also let the kernel reuse the fd number under a live poll.
  for (const int fd : listen_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  for (int& fd : listen_fds_) {
    if (fd >= 0) {
      CloseFd(fd);
      fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  // Join outside conns_mu_: readers take it briefly on exit.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
    CloseFd(c->fd);
    c->fd = -1;
  }
  std::lock_guard<std::mutex> lk(links_mu_);
  for (auto& [key, link] : links_) {
    std::lock_guard<std::mutex> llk(link->mu);
    CloseFd(link->fd);
    link->fd = -1;
  }
}

// --- receive path -----------------------------------------------------------

void SocketTransport::AcceptLoop(SiteId site) {
  const int lfd = listen_fds_[site];
  while (running_.load()) {
    pollfd p{lfd, POLLIN, 0};
    const int r = ::poll(&p, 1, 100);
    if (!running_.load()) return;
    if (r <= 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;
    SetNonBlocking(cfd);
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = cfd;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn]() { ReadLoop(conn); });
  }
}

void SocketTransport::ReadLoop(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> buf;
  uint8_t chunk[64 * 1024];
  int idle_polls = 0;
  while (running_.load()) {
    pollfd p{conn->fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (!running_.load()) return;
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) {
      // A partial frame that stops making progress (e.g. a corrupted
      // length field promising bytes that will never arrive) wedges the
      // stream; reap it so the sender reconnects with a fresh epoch.
      if (!buf.empty() && ++idle_polls >= 20) break;
      continue;
    }
    idle_polls = 0;
    const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    if (!DrainBuffer(&buf)) break;  // desynced: drop the stream
  }
  if (!buf.empty() && running_.load()) {
    // The stream died mid-frame (e.g. the proxy truncated a frame and
    // broke the connection): whatever is left is a counted reject.
    counters_.Count(buf.size() < kFrameHeaderBytes
                        ? FrameError::kTruncatedHeader
                        : FrameError::kTruncatedPayload);
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

bool SocketTransport::DrainBuffer(std::vector<uint8_t>* buf) {
  size_t off = 0;
  while (buf->size() - off >= kFrameHeaderBytes) {
    size_t frame_size = 0;
    const FrameError head =
        PeekFrameSize(buf->data() + off, buf->size() - off, &frame_size);
    if (head == FrameError::kBadMagic || head == FrameError::kBadVersion ||
        head == FrameError::kBadLength) {
      // Framing cannot be trusted past this point: count, drop the
      // connection, let the sender's reconnect path resynchronize.
      counters_.Count(head);
      return false;
    }
    if (buf->size() - off < frame_size) break;  // wait for the rest
    if (head == FrameError::kBadType) {
      counters_.Count(head);  // frame-local damage: skip, keep the stream
      off += frame_size;
      continue;
    }
    DecodedFrame decoded = DecodeFrame(buf->data() + off, frame_size);
    counters_.Count(decoded.error);
    off += frame_size;
    if (decoded.error != FrameError::kOk) continue;  // counted; skip frame
    // Stream-epoch fence (PR-3 rules at the transport layer): frames
    // stamped by an older incarnation of this link are rejected.
    {
      std::lock_guard<std::mutex> lk(epoch_mu_);
      uint16_t& seen = seen_epoch_[{decoded.msg.from, decoded.msg.to}];
      if (decoded.stream_epoch < seen) {
        counters_.stale_stream.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      seen = decoded.stream_epoch;
    }
    Dispatch(std::move(decoded.msg));
  }
  buf->erase(buf->begin(), buf->begin() + static_cast<long>(off));
  return true;
}

void SocketTransport::Dispatch(Message&& msg) {
  if (msg.to >= static_cast<SiteId>(num_sites_)) return;  // hostile addr
  Handler handler;
  {
    std::lock_guard<std::recursive_mutex> lk(*site_mu_[msg.to]);
    handler = handlers_[msg.to];
    if (handler) handler(msg);
  }
  if (handler) frames_delivered_.fetch_add(1, std::memory_order_relaxed);
}

// --- send path --------------------------------------------------------------

bool SocketTransport::ConnectLink(Link* link) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  SetNonBlocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ports_[link->to]);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, cfg_.connect_timeout_ms) <= 0) {
      CloseFd(fd);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) rc = -1;
    else rc = 0;
  }
  if (rc != 0) {
    CloseFd(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (link->ever_connected) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  link->ever_connected = true;
  link->fd = fd;
  return true;
}

bool SocketTransport::WriteAll(int fd, const uint8_t* data, size_t n) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.send_deadline_ms);
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;  // broken stream
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;  // per-frame send deadline
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, static_cast<int>(left.count())) < 0 &&
        errno != EINTR) {
      return false;
    }
  }
  return true;
}

void SocketTransport::Send(Message msg) {
  if (!running_.load()) return;
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (msg.from == msg.to) {
    // Loopback never touches the wire or the proxy, as in the DES.
    Dispatch(std::move(msg));
    return;
  }
  if (msg.to >= static_cast<SiteId>(num_sites_)) return;

  Link* link;
  {
    std::lock_guard<std::mutex> lk(links_mu_);
    auto& slot = links_[{msg.from, msg.to}];
    if (!slot) {
      slot = std::make_unique<Link>(
          msg.from, msg.to,
          cfg_.seed ^ (static_cast<uint64_t>(msg.from) << 32) ^ msg.to);
    }
    link = slot.get();
  }

  std::lock_guard<std::mutex> lk(link->mu);
  std::vector<uint8_t> frame = EncodeFrame(msg, link->epoch);
  if (frame.empty()) {
    counters_.Count(FrameError::kBadPayload);  // caller bug, not a crash
    return;
  }
  counters_.encoded.fetch_add(1, std::memory_order_relaxed);

  FrameFaultPlan plan;
  if (injector_ != nullptr) plan = injector_->OnFrame(msg, frame.size());
  if (plan.delay_ms > 0) SleepMs(plan.delay_ms);  // FIFO link congestion
  if (plan.drop) {
    injected_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (plan.bitflip_at >= 0) {
    // Corrupt after the CRC was stamped, so the receiver must catch it.
    const size_t bit = static_cast<size_t>(plan.bitflip_at) %
                       (frame.size() * 8);
    frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    injected_bitflips_.fetch_add(1, std::memory_order_relaxed);
  }

  if (plan.truncate_at > 0) {
    // Write a prefix, then break the stream: the receiver sees a
    // half-frame and a dead connection; we come back with a new epoch.
    const size_t cut = std::min(plan.truncate_at, frame.size() - 1);
    if (link->fd >= 0 || ConnectLink(link)) {
      (void)WriteAll(link->fd, frame.data(), cut);
      CloseFd(link->fd);
      link->fd = -1;
      ++link->epoch;
    }
    injected_truncations_.fetch_add(1, std::memory_order_relaxed);
    return;  // the frame itself is lost — §5 retransmission recovers it
  }

  const int copies = plan.duplicate ? 2 : 1;
  if (plan.duplicate) injected_dups_.fetch_add(1, std::memory_order_relaxed);
  for (int c = 0; c < copies; ++c) {
    // Retransmit loop: reconnect-on-broken-stream with jittered
    // exponential backoff, re-stamping the frame with the link's new
    // epoch after every reconnect.
    bool sent = false;
    uint16_t stamped_epoch = link->epoch;
    for (int attempt = 0; attempt <= cfg_.max_send_retries; ++attempt) {
      if (attempt > 0) {
        retransmits_.fetch_add(1, std::memory_order_relaxed);
        const int expo = cfg_.backoff_base_ms << std::min(attempt - 1, 10);
        const int cap = std::min(expo, cfg_.backoff_cap_ms);
        // Jitter in [cap/2, cap]: desynchronizes competing retriers.
        const int wait =
            cap / 2 + static_cast<int>(link->rng.Uniform(
                          static_cast<uint64_t>(cap / 2 + 1)));
        SleepMs(wait);
      }
      if (link->fd < 0 && !ConnectLink(link)) {
        ++link->epoch;
        continue;
      }
      if (stamped_epoch != link->epoch) {
        frame = EncodeFrame(msg, link->epoch);  // epoch re-stamp
        stamped_epoch = link->epoch;
      }
      if (WriteAll(link->fd, frame.data(), frame.size())) {
        sent = true;
        break;
      }
      // Broken or wedged stream: close, fence the old incarnation.
      CloseFd(link->fd);
      link->fd = -1;
      ++link->epoch;
    }
    if (sent) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
    } else {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      return;  // loss semantics; a duplicate copy cannot fare better now
    }
  }
}

}  // namespace radd
