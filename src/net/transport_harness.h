// Differential test harness for the transport backends.
//
// The full RADD protocol stack is welded to the discrete-event simulator
// (its timeouts, disks and recovery machinery are simulator events), so it
// cannot run over real sockets directly. What *can* run over both backends
// is a protocol built from the same wire structs with a convergent apply
// rule — and that is exactly what is needed to prove the transport layer,
// because the transport's contract is "deliver typed messages, possibly
// late, duplicated or not at all", not "run the whole RAID algorithm".
//
// The harness protocol is a miniature replicated store speaking real RADD
// messages:
//
//   * a write is a kSpareWriteReq carrying (home, row) as the key, a data
//     block, and a writer-minted Uid; the receiver applies max-uid-wins
//     (higher uid overwrites, lower uid is ignored) and replies with
//     kSpareWriteReply;
//   * writers retransmit an unacked write (same uid) until acked or out of
//     attempts — §5's retransmit-until-ack in miniature.
//
// Max-uid-wins makes the final store state a pure function of the *set* of
// applied writes: delivery order, duplication and retransmission cannot
// change it. So over clean networks, the DES backend and the socket
// backend — wildly different in timing and interleaving — must converge to
// byte-identical stores, compared via store_hash. Over a lossy proxy the
// hashes may differ (loss is allowed), but the acked-write ledger must
// stay clean: every ack the transport returned corresponds to a write that
// is durably reflected in the store (stored uid >= max acked uid per key,
// and the stored bytes are exactly some issued write's bytes).

#ifndef RADD_NET_TRANSPORT_HARNESS_H_
#define RADD_NET_TRANSPORT_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket_transport.h"

namespace radd {

struct HarnessConfig {
  int num_sites = 4;
  int num_ops = 400;
  /// Distinct rows per home site (key space = num_sites * rows).
  int rows = 8;
  /// Payload bytes per write (small blocks keep chaos sweeps fast).
  size_t block_bytes = 128;
  uint64_t seed = 1;
  /// Socket mode: retransmit attempts per write and per-attempt ack wait.
  int max_attempts = 10;
  int ack_timeout_ms = 100;
  SocketTransportConfig socket;
};

struct HarnessResult {
  /// FNV-1a over every site's store in canonical order: equal hashes mean
  /// byte-identical final states.
  uint64_t store_hash = 0;
  int ops_issued = 0;
  int ops_acked = 0;
  /// The acked-write ledger invariant (see header comment). Always
  /// checked; must hold even under the lossy proxy.
  bool ledger_ok = false;
  std::string ledger_error;
  /// Write->ack round-trip per acked op: wall-clock microseconds in socket
  /// mode, simulated microseconds in DES mode.
  std::vector<double> op_latency_us;
  double elapsed_sec = 0;
  /// Transport counter snapshots.
  uint64_t frames_encoded = 0;
  uint64_t frames_rejected = 0;
  uint64_t stale_stream = 0;
  std::string counters;
};

/// Runs the op schedule through the DES backend: DesTransport (every
/// message through the frame codec) over a clean simulated Network.
HarnessResult RunDesHarness(const HarnessConfig& cfg);

/// Runs the same op schedule through SocketTransport (sites as threads on
/// TCP loopback), optionally through a fault-injecting proxy.
HarnessResult RunSocketHarness(const HarnessConfig& cfg,
                               FrameInjector* injector = nullptr);

}  // namespace radd

#endif  // RADD_NET_TRANSPORT_HARNESS_H_
