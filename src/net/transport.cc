#include "net/transport.h"

namespace radd {

void DesTransport::Send(Message msg) {
  // Round-trip the message through the packed frame format. Loopback
  // sends skip the codec like they skip the wire: they never leave the
  // process in any backend.
  if (msg.from == msg.to) {
    net_->Send(std::move(msg));
    return;
  }
  std::vector<uint8_t> frame = EncodeFrame(msg);
  if (frame.empty()) {
    // Payload/type mismatch: a caller bug, visible as a counted drop
    // rather than a crash (the sender's retry path treats it as loss).
    counters_.Count(FrameError::kBadPayload);
    return;
  }
  counters_.encoded.fetch_add(1, std::memory_order_relaxed);
  DecodedFrame decoded = DecodeFrame(frame.data(), frame.size());
  counters_.Count(decoded.error);
  if (decoded.error != FrameError::kOk) return;
  // wire_bytes is the §7.4 cost-model accounting; it does not travel in
  // the frame (frame.h), so restore it for the Network's byte counters.
  decoded.msg.wire_bytes = msg.wire_bytes;
  net_->Send(std::move(decoded.msg));
}

}  // namespace radd
