// Simulated site-to-site network.
//
// The paper's base model (§3.1) assumes a reliable network; §5 relaxes this
// to lost messages and partitions. This Network supports those regimes plus
// the fault classes real datagram networks add on top of them:
//   * reliable delivery with a configurable one-way latency,
//   * independent per-message loss with probability `drop_probability`,
//   * independent per-message duplication with probability
//     `duplicate_probability` (each copy delivered independently),
//   * reordering: a uniform latency jitter in [0, reorder_jitter] lets a
//     later send overtake an earlier one on the same link,
//   * partitions: messages across partition boundaries are dropped,
//   * per-message-type fault hooks for scripted, targeted faults (drop the
//     first parity update of a flow, duplicate a specific ack, ...).
//
// Latency default: the paper charges RR = RW = 75 ms for a remote
// operation versus R = W = 30 ms locally. A remote op is
// request + local op + reply, so the default one-way latency is
// (75 - 30) / 2 = 22.5 ms.
//
// Byte accounting (§7.4): every send records its wire size so benchmarks
// can compare network and disk bandwidth. The send path is allocation-free:
// the message type is an enum, the payload a variant, and every stat key a
// counter interned once at construction.

#ifndef RADD_NET_NETWORK_H_
#define RADD_NET_NETWORK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/uid.h"
#include "net/wire.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace radd {

/// Latency/loss parameters of the network.
struct NetworkModel {
  /// One-way message latency.
  SimTime one_way_latency = Micros(22500);
  /// Probability that any given message is silently lost (0 = reliable).
  double drop_probability = 0.0;
  /// Probability that a message is delivered twice (the duplicate gets its
  /// own independent latency jitter, so it may arrive out of order).
  double duplicate_probability = 0.0;
  /// Extra per-message latency drawn uniformly from [0, reorder_jitter].
  /// Nonzero jitter makes reordering possible; 0 keeps FIFO links.
  SimTime reorder_jitter = 0;
};

/// An in-flight message. `payload` holds one of the protocol structs
/// (net/wire.h); `wire_bytes` is what the message costs on the wire,
/// including the paper's change-mask encoding.
struct Message {
  SiteId from = 0;
  SiteId to = 0;
  uint64_t seq = 0;  ///< network-assigned, unique per send
  MessageType type = MessageType::kNone;
  size_t wire_bytes = 0;
  Payload payload;
};

/// What a fault hook tells the network to do with one message.
enum class FaultAction {
  kDeliver,    ///< normal delivery (subject to the random fault model)
  kDrop,       ///< silently lose this message
  kDuplicate,  ///< deliver this message twice
};

/// The simulated network fabric.
class Network {
 public:
  /// Handlers receive the message by mutable reference: the delivery is
  /// the message's final stop, so the handler may move large payloads
  /// (block data) out instead of copying them — the zero-copy data plane
  /// depends on this.
  using Handler = std::function<void(Message&)>;

  Network(Simulator* sim, NetworkModel model, uint64_t seed = 0x5eed);

  /// Installs the message handler for `site` (its "network manager").
  /// Setup-time only: the handler table is read without locks during the
  /// run.
  void RegisterHandler(SiteId site, Handler handler);

  /// Routes deliveries to `site` onto simulator shard `shard` (see
  /// sim/simulator.h). Setup-time only. Unmapped sites deliver on the
  /// sending shard, which is the correct (and only) behavior for an
  /// unsharded simulator. Under a sharded simulator the random fault
  /// model must stay off (zero drop/duplicate/jitter): those paths draw
  /// from one RNG and track per-link state that shards would race on.
  void MapSiteToShard(SiteId site, int shard);

  /// Returns the currently installed handler (empty function if none) so
  /// interceptors like the heartbeat detector can chain.
  Handler GetHandler(SiteId site) const;

  /// Sends a message. Delivery is scheduled after the one-way latency
  /// unless the message is lost (drop probability) or the sites are in
  /// different partitions; in those cases it vanishes (the sender learns
  /// nothing, as in a real datagram network). Self-sends are delivered
  /// with zero latency and no wire cost.
  void Send(Message msg);

  /// True if `a` and `b` can currently communicate.
  bool CanCommunicate(SiteId a, SiteId b) const;

  /// Splits the network; each inner vector is one partition. Sites not
  /// listed form one extra implicit partition together. Pass {} to heal.
  void SetPartitions(std::vector<std::vector<SiteId>> partitions);

  /// Clears partitions (equivalent to SetPartitions({})).
  void Heal() { SetPartitions({}); }

  /// One-way (asymmetric) partition of a single site: cuts only the given
  /// direction of its links. `block_inbound` drops everything addressed
  /// *to* the site (it keeps sending into the void of no replies);
  /// `block_outbound` drops everything it sends (heartbeats included, so
  /// peers come to suspect it) while it still hears the world. Loopback is
  /// never cut. Deliberately invisible to CanCommunicate: an asymmetric
  /// failure is a *fault*, and no oracle gets to see through it.
  void SetAsymBlock(SiteId site, bool block_inbound, bool block_outbound);

  /// Restores both directions for `site`.
  void ClearAsymBlock(SiteId site) { SetAsymBlock(site, false, false); }

  const NetworkModel& model() const { return model_; }
  void set_drop_probability(double p) { model_.drop_probability = p; }
  void set_duplicate_probability(double p) {
    model_.duplicate_probability = p;
  }
  void set_reorder_jitter(SimTime j) { model_.reorder_jitter = j; }

  /// Installs a scripted fault hook consulted for every non-loopback
  /// message of `type` (before the random fault model). Hook-forced drops
  /// and duplicates are counted like random ones. Pass an empty function
  /// to remove the hook for that type. The string overload resolves the
  /// wire name ("parity_update") first.
  using FaultHook = std::function<FaultAction(const Message&)>;
  void SetFaultHook(MessageType type, FaultHook hook);
  void SetFaultHook(const std::string& type, FaultHook hook) {
    SetFaultHook(MessageTypeFromName(type), std::move(hook));
  }
  void ClearFaultHooks() { fault_hooks_.fill(FaultHook()); }

  /// Cumulative statistics: "net.messages", "net.bytes", "net.dropped",
  /// "net.duplicated", "net.reordered", "net.partition_blocked",
  /// "net.asym_blocked", plus
  /// per-type "net.bytes.<type>", "net.messages.<type>",
  /// "net.drop.<type>", "net.dup.<type>", "net.reorder.<type>".
  const Stats& stats() const { return stats_; }
  Stats* mutable_stats() { return &stats_; }

 private:
  int PartitionOf(SiteId site) const;
  /// Shard deliveries to `site` run on; -1 = the sending shard.
  int ShardOf(SiteId site) const;
  /// Schedules one delivery of `msg` after latency + jitter, counting a
  /// reorder when the delivery overtakes an earlier one on the same link.
  void Deliver(Message msg);
  void CountDrop(MessageType type);
  static size_t Index(MessageType type) {
    return static_cast<size_t>(type);
  }

  Simulator* sim_;
  NetworkModel model_;
  Rng rng_;
  /// Atomic so concurrent shards can send; the value is protocol-invisible
  /// (nothing dedups or orders on it), so cross-shard assignment order
  /// does not affect simulated results.
  std::atomic<uint64_t> next_seq_{1};
  std::map<SiteId, Handler> handlers_;
  std::map<SiteId, int> site_shard_;  // empty => deliver on sending shard
  std::array<FaultHook, kNumMessageTypes> fault_hooks_;
  std::map<SiteId, int> partition_of_;  // empty => fully connected
  bool partitioned_ = false;
  /// Sites with one direction cut (SetAsymBlock). Checked in Send only;
  /// CanCommunicate stays symmetric on purpose.
  std::map<SiteId, std::pair<bool, bool>> asym_block_;  // {inbound, outbound}
  /// Latest delivery time already scheduled per (from, to) link; a new
  /// delivery scheduled earlier than this is a reorder. Only touched when
  /// reorder_jitter > 0 (without jitter, per-link delivery times are
  /// monotone and nothing can overtake), which keeps the fault-free send
  /// path free of shared mutable state.
  std::map<std::pair<SiteId, SiteId>, SimTime> link_horizon_;
  Stats stats_;

  /// Counters interned at construction so the send path never rebuilds a
  /// key string. The per-type slots for kNone stay unused (untyped
  /// messages get only the totals, as before).
  struct TypeCounters {
    Stats::Counter bytes;
    Stats::Counter messages;
    Stats::Counter drop;
    Stats::Counter dup;
    Stats::Counter reorder;
  };
  std::array<TypeCounters, kNumMessageTypes> by_type_;
  Stats::Counter messages_;
  Stats::Counter bytes_;
  Stats::Counter dropped_;
  Stats::Counter duplicated_;
  Stats::Counter reordered_;
  Stats::Counter partition_blocked_;
  Stats::Counter asym_blocked_;
};

}  // namespace radd

#endif  // RADD_NET_NETWORK_H_
