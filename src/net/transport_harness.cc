#include "net/transport_harness.h"

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/rng.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace radd {

namespace {

/// One write in the deterministic op schedule.
struct Op {
  SiteId writer;
  SiteId target;
  int home;
  BlockNum row;
  Uid uid;
  std::vector<uint8_t> bytes;
};

/// The schedule is a pure function of the config, so the DES run and the
/// socket run replicate the exact same op *set* (their interleavings then
/// differ wildly, which is the point).
std::vector<Op> GenerateOps(const HarnessConfig& cfg) {
  Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 1);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(cfg.num_ops));
  for (int i = 0; i < cfg.num_ops; ++i) {
    Op op;
    op.writer = static_cast<SiteId>(i % cfg.num_sites);
    op.home = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cfg.num_sites)));
    op.row = rng.Uniform(static_cast<uint64_t>(cfg.rows));
    // Every write for a given (home, row) goes to the same site, so each
    // key has exactly one authoritative replica to converge on.
    op.target = static_cast<SiteId>((op.home + 1) % cfg.num_sites);
    op.uid = Uid::Make(op.writer, static_cast<uint64_t>(i) + 1);
    op.bytes.resize(cfg.block_bytes);
    for (auto& b : op.bytes) b = static_cast<uint8_t>(rng.Next());
    ops.push_back(std::move(op));
  }
  return ops;
}

using StoreKey = std::pair<int, BlockNum>;

/// Per-site protocol state, shared by both backends. The mutex is only
/// contended in socket mode; in the DES everything runs on one thread.
struct SiteState {
  std::mutex mu;
  std::condition_variable cv;
  /// (home, row) -> latest applied write, max-uid-wins.
  std::map<StoreKey, std::pair<Uid, std::vector<uint8_t>>> store;
  /// Uids of this site's own writes that have been acked back to it.
  std::set<uint64_t> acked;
};

Message MakeWrite(const Op& op) {
  Message m;
  m.from = op.writer;
  m.to = op.target;
  m.type = MessageType::kSpareWriteReq;
  SpareWriteReq req;
  req.op = op.uid.raw();
  req.group = 0;
  req.home = op.home;
  req.row = op.row;
  req.data = Block(op.bytes);
  req.uid = op.uid;
  m.wire_bytes = op.bytes.size() + kWireHeader;
  m.payload = std::move(req);
  return m;
}

/// The whole protocol: apply writes max-uid-wins and ack them; record
/// incoming acks. Anything else (can only appear if a corrupted frame
/// slipped past the codec) is ignored.
void HandleMessage(SiteId self, std::vector<SiteState>* sites,
                   Transport* transport, Message& m) {
  if (m.type == MessageType::kSpareWriteReq) {
    const auto* req = std::get_if<SpareWriteReq>(&m.payload);
    if (req == nullptr) return;
    SiteState& st = (*sites)[self];
    {
      std::lock_guard<std::mutex> lk(st.mu);
      auto& slot = st.store[{req->home, req->row}];
      if (req->uid.raw() > slot.first.raw()) {
        slot = {req->uid, req->data.bytes()};
      }
    }
    Message reply;
    reply.from = self;
    reply.to = m.from;
    reply.type = MessageType::kSpareWriteReply;
    reply.wire_bytes = kWireHeader;
    reply.payload = WriteReply{req->op, Status::OK()};
    transport->Send(std::move(reply));
  } else if (m.type == MessageType::kSpareWriteReply) {
    const auto* rep = std::get_if<WriteReply>(&m.payload);
    if (rep == nullptr) return;
    SiteState& st = (*sites)[self];
    std::lock_guard<std::mutex> lk(st.mu);
    st.acked.insert(rep->op);
    st.cv.notify_all();
  }
}

uint64_t Fnv1a(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Fnv1aU64(uint64_t h, uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  return Fnv1a(h, b, 8);
}

uint64_t HashStores(const std::vector<SiteState>& sites) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const SiteState& st : sites) {
    for (const auto& [key, val] : st.store) {
      h = Fnv1aU64(h, static_cast<uint64_t>(key.first));
      h = Fnv1aU64(h, key.second);
      h = Fnv1aU64(h, val.first.raw());
      h = Fnv1a(h, val.second.data(), val.second.size());
    }
  }
  return h;
}

/// The acked-write ledger: an ack is the transport's promise that the
/// write was applied. For every key, the stored uid must be >= the highest
/// acked uid for that key (max-uid-wins may legitimately have buried an
/// acked write under a newer one, never under an older one), and whatever
/// is stored must be byte-identical to the issued write with that uid.
bool CheckLedger(const std::vector<Op>& ops,
                 const std::vector<SiteState>& sites, std::string* error) {
  std::map<uint64_t, const Op*> by_uid;
  for (const Op& op : ops) by_uid[op.uid.raw()] = &op;
  std::set<uint64_t> acked;
  for (const SiteState& st : sites) {
    acked.insert(st.acked.begin(), st.acked.end());
  }
  std::map<StoreKey, uint64_t> max_acked;
  for (uint64_t uid : acked) {
    auto it = by_uid.find(uid);
    if (it == by_uid.end()) {
      *error = "ack for a uid that was never issued";
      return false;
    }
    uint64_t& m = max_acked[{it->second->home, it->second->row}];
    if (uid > m) m = uid;
  }
  for (size_t s = 0; s < sites.size(); ++s) {
    for (const auto& [key, val] : sites[s].store) {
      auto it = by_uid.find(val.first.raw());
      if (it == by_uid.end() || it->second->home != key.first ||
          it->second->row != key.second ||
          it->second->target != static_cast<SiteId>(s) ||
          it->second->bytes != val.second) {
        *error = "stored value does not match any issued write";
        return false;
      }
    }
  }
  for (const auto& [key, uid] : max_acked) {
    const Op* op = by_uid[uid];
    const SiteState& st = sites[op->target];
    auto it = st.store.find(key);
    if (it == st.store.end() || it->second.first.raw() < uid) {
      *error = "acked write missing from the store (acked uid " +
               Uid(uid).ToString() + ")";
      return false;
    }
  }
  return true;
}

void FillCommonResult(const std::vector<Op>& ops,
                      const std::vector<SiteState>& sites,
                      const Transport& transport, HarnessResult* r) {
  r->store_hash = HashStores(sites);
  r->ops_issued = static_cast<int>(ops.size());
  r->ops_acked = 0;
  for (const SiteState& st : sites) {
    r->ops_acked += static_cast<int>(st.acked.size());
  }
  r->ledger_ok = CheckLedger(ops, sites, &r->ledger_error);
  const FrameCounters& fc = transport.frame_counters();
  r->frames_encoded = fc.encoded.load();
  r->frames_rejected = fc.Rejected();
  r->stale_stream = fc.stale_stream.load();
  r->counters = fc.ToString();
}

}  // namespace

HarnessResult RunDesHarness(const HarnessConfig& cfg) {
  const std::vector<Op> ops = GenerateOps(cfg);
  Simulator sim;
  Network net(&sim, NetworkModel{}, cfg.seed ^ 0xdead);
  DesTransport transport(&net);
  std::vector<SiteState> sites(static_cast<size_t>(cfg.num_sites));
  // Write->ack round trip per op, in *simulated* microseconds (the DES has
  // no meaningful wall-clock latency; the socket harness records wall
  // time). Recorded on the first ack only, so duplicates don't skew it.
  std::map<uint64_t, SimTime> issued_at;
  std::vector<double> latencies;
  for (int s = 0; s < cfg.num_sites; ++s) {
    net.RegisterHandler(
        static_cast<SiteId>(s),
        [s, &sites, &transport, &sim, &issued_at, &latencies](Message& m) {
          uint64_t ack_op = 0;
          if (m.type == MessageType::kSpareWriteReply) {
            if (const auto* rep = std::get_if<WriteReply>(&m.payload)) {
              if (sites[static_cast<size_t>(s)].acked.count(rep->op) == 0) {
                ack_op = rep->op;
              }
            }
          }
          HandleMessage(static_cast<SiteId>(s), &sites, &transport, m);
          if (ack_op != 0) {
            auto it = issued_at.find(ack_op);
            if (it != issued_at.end()) {
              latencies.push_back(
                  static_cast<double>(sim.Now() - it->second));
            }
          }
        });
  }
  const auto wall0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < ops.size(); ++i) {
    const SimTime at = Micros(500 * (i + 1));
    issued_at[ops[i].uid.raw()] = at;
    sim.At(at, [&transport, &ops, i]() {
      transport.Send(MakeWrite(ops[i]));
    });
  }
  sim.Run();
  HarnessResult r;
  r.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  r.op_latency_us = std::move(latencies);
  FillCommonResult(ops, sites, transport, &r);
  return r;
}

HarnessResult RunSocketHarness(const HarnessConfig& cfg,
                               FrameInjector* injector) {
  const std::vector<Op> ops = GenerateOps(cfg);
  SocketTransport transport(cfg.num_sites, cfg.socket);
  std::vector<SiteState> sites(static_cast<size_t>(cfg.num_sites));
  for (int s = 0; s < cfg.num_sites; ++s) {
    transport.RegisterHandler(
        static_cast<SiteId>(s), [s, &sites, &transport](Message& m) {
          HandleMessage(static_cast<SiteId>(s), &sites, &transport, m);
        });
  }
  if (injector != nullptr) transport.SetInjector(injector);
  HarnessResult r;
  Status st = transport.Start();
  if (!st.ok()) {
    r.ledger_error = "transport start failed: " + st.ToString();
    return r;
  }

  std::mutex lat_mu;
  std::vector<double> latencies;
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (int w = 0; w < cfg.num_sites; ++w) {
    writers.emplace_back([w, &cfg, &ops, &sites, &transport, &lat_mu,
                          &latencies]() {
      SiteState& me = sites[static_cast<size_t>(w)];
      for (const Op& op : ops) {
        if (op.writer != static_cast<SiteId>(w)) continue;
        const auto t0 = std::chrono::steady_clock::now();
        bool done = false;
        // §5 in miniature: retransmit the same uid until acked or out of
        // attempts. Duplicated applies are idempotent under max-uid-wins.
        for (int a = 0; a < cfg.max_attempts && !done; ++a) {
          transport.Send(MakeWrite(op));
          std::unique_lock<std::mutex> lk(me.mu);
          done = me.cv.wait_for(
              lk, std::chrono::milliseconds(cfg.ack_timeout_ms),
              [&me, &op]() { return me.acked.count(op.uid.raw()) > 0; });
        }
        if (done) {
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          std::lock_guard<std::mutex> lk(lat_mu);
          latencies.push_back(us);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  r.elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  transport.Stop();
  r.op_latency_us = std::move(latencies);
  FillCommonResult(ops, sites, transport, &r);
  return r;
}

}  // namespace radd
