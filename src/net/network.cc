#include "net/network.h"

#include <cassert>

namespace radd {

Network::Network(Simulator* sim, NetworkModel model, uint64_t seed)
    : sim_(sim), model_(model), rng_(seed) {
  messages_ = stats_.Intern("net.messages");
  bytes_ = stats_.Intern("net.bytes");
  dropped_ = stats_.Intern("net.dropped");
  duplicated_ = stats_.Intern("net.duplicated");
  reordered_ = stats_.Intern("net.reordered");
  partition_blocked_ = stats_.Intern("net.partition_blocked");
  asym_blocked_ = stats_.Intern("net.asym_blocked");
  by_type_[0] = TypeCounters{};  // kNone: totals only
  for (size_t i = 1; i < kNumMessageTypes; ++i) {
    const std::string& name = MessageTypeName(static_cast<MessageType>(i));
    by_type_[i].bytes = stats_.Intern("net.bytes." + name);
    by_type_[i].messages = stats_.Intern("net.messages." + name);
    by_type_[i].drop = stats_.Intern("net.drop." + name);
    by_type_[i].dup = stats_.Intern("net.dup." + name);
    by_type_[i].reorder = stats_.Intern("net.reorder." + name);
  }
}

void Network::RegisterHandler(SiteId site, Handler handler) {
  handlers_[site] = std::move(handler);
}

void Network::MapSiteToShard(SiteId site, int shard) {
  assert(shard >= 0 && shard < sim_->num_shards());
  site_shard_[site] = shard;
}

int Network::ShardOf(SiteId site) const {
  auto it = site_shard_.find(site);
  return it == site_shard_.end() ? -1 : it->second;
}

Network::Handler Network::GetHandler(SiteId site) const {
  auto it = handlers_.find(site);
  return it == handlers_.end() ? Handler() : it->second;
}

int Network::PartitionOf(SiteId site) const {
  auto it = partition_of_.find(site);
  return it == partition_of_.end() ? -1 : it->second;
}

bool Network::CanCommunicate(SiteId a, SiteId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  return PartitionOf(a) == PartitionOf(b);
}

void Network::SetPartitions(std::vector<std::vector<SiteId>> partitions) {
  partition_of_.clear();
  partitioned_ = !partitions.empty();
  for (size_t p = 0; p < partitions.size(); ++p) {
    for (SiteId s : partitions[p]) {
      partition_of_[s] = static_cast<int>(p);
    }
  }
  // Unlisted sites share implicit partition -1 (PartitionOf default).
}

void Network::SetAsymBlock(SiteId site, bool block_inbound,
                           bool block_outbound) {
  if (!block_inbound && !block_outbound) {
    asym_block_.erase(site);
  } else {
    asym_block_[site] = {block_inbound, block_outbound};
  }
}

void Network::SetFaultHook(MessageType type, FaultHook hook) {
  fault_hooks_[Index(type)] = std::move(hook);
}

void Network::CountDrop(MessageType type) {
  ++*dropped_;
  if (type != MessageType::kNone) ++*by_type_[Index(type)].drop;
}

void Network::Send(Message msg) {
  // Sharded runs keep the random fault model off — see MapSiteToShard.
  assert(sim_->num_shards() == 1 ||
         (model_.drop_probability == 0 && model_.duplicate_probability == 0 &&
          model_.reorder_jitter == 0));
  msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ++*messages_;

  if (msg.from == msg.to) {
    // Loopback: no wire cost, no latency, never lost, never faulted.
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) {
      Handler h = it->second;
      sim_->Schedule(0, [h, m = std::move(msg)]() mutable { h(m); });
    }
    return;
  }

  if (!CanCommunicate(msg.from, msg.to)) {
    ++*partition_blocked_;
    return;
  }

  if (!asym_block_.empty()) {
    auto from_it = asym_block_.find(msg.from);
    auto to_it = asym_block_.find(msg.to);
    if ((from_it != asym_block_.end() && from_it->second.second) ||
        (to_it != asym_block_.end() && to_it->second.first)) {
      ++*asym_blocked_;
      return;  // one-way cut: vanishes exactly like a partition drop
    }
  }

  // Scripted faults override the random model for this message.
  FaultAction action = FaultAction::kDeliver;
  const FaultHook& hook = fault_hooks_[Index(msg.type)];
  if (hook) action = hook(msg);
  if (action == FaultAction::kDrop) {
    CountDrop(msg.type);
    return;
  }
  if (action == FaultAction::kDeliver && model_.drop_probability > 0 &&
      rng_.Bernoulli(model_.drop_probability)) {
    CountDrop(msg.type);
    return;
  }
  const bool duplicate =
      action == FaultAction::kDuplicate ||
      (model_.duplicate_probability > 0 &&
       rng_.Bernoulli(model_.duplicate_probability));

  const TypeCounters& tc = by_type_[Index(msg.type)];
  *bytes_ += msg.wire_bytes;
  if (msg.type != MessageType::kNone) {
    *tc.bytes += msg.wire_bytes;
    ++*tc.messages;
  }

  if (duplicate) {
    // The copy transits the wire too, with its own jitter draw.
    ++*duplicated_;
    *bytes_ += msg.wire_bytes;
    if (msg.type != MessageType::kNone) {
      ++*tc.dup;
      *tc.bytes += msg.wire_bytes;
    }
    Deliver(msg);
  }
  Deliver(std::move(msg));
}

void Network::Deliver(Message msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) return;  // destination has no stack: dropped
  SimTime latency = model_.one_way_latency;
  if (model_.reorder_jitter > 0) {
    latency += rng_.Uniform(model_.reorder_jitter + 1);
  }
  const SimTime when = sim_->Now() + latency;
  if (model_.reorder_jitter > 0 || !link_horizon_.empty()) {
    // Without jitter per-link delivery times are monotone, so nothing can
    // overtake and the horizon map would only churn; skipping it keeps the
    // fault-free send path free of shared state. Once jitter has ever
    // populated the map, keep maintaining it so a later jittered phase
    // compares against the true horizon.
    auto [horizon, first] =
        link_horizon_.try_emplace({msg.from, msg.to}, when);
    if (!first) {
      if (when < horizon->second) {
        // An earlier send on this link is already scheduled later: this
        // delivery overtakes it.
        ++*reordered_;
        if (msg.type != MessageType::kNone) {
          ++*by_type_[Index(msg.type)].reorder;
        }
      } else {
        horizon->second = when;
      }
    }
  }
  Handler h = it->second;
  const int dst_shard = ShardOf(msg.to);
  if (dst_shard < 0) {
    sim_->Schedule(latency, [h, m = std::move(msg)]() mutable { h(m); });
  } else {
    sim_->AtShard(dst_shard, when, [h, m = std::move(msg)]() mutable { h(m); });
  }
}

}  // namespace radd
