#include "net/network.h"

namespace radd {

Network::Network(Simulator* sim, NetworkModel model, uint64_t seed)
    : sim_(sim), model_(model), rng_(seed) {}

void Network::RegisterHandler(SiteId site, Handler handler) {
  handlers_[site] = std::move(handler);
}

Network::Handler Network::GetHandler(SiteId site) const {
  auto it = handlers_.find(site);
  return it == handlers_.end() ? Handler() : it->second;
}

int Network::PartitionOf(SiteId site) const {
  auto it = partition_of_.find(site);
  return it == partition_of_.end() ? -1 : it->second;
}

bool Network::CanCommunicate(SiteId a, SiteId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  return PartitionOf(a) == PartitionOf(b);
}

void Network::SetPartitions(std::vector<std::vector<SiteId>> partitions) {
  partition_of_.clear();
  partitioned_ = !partitions.empty();
  for (size_t p = 0; p < partitions.size(); ++p) {
    for (SiteId s : partitions[p]) {
      partition_of_[s] = static_cast<int>(p);
    }
  }
  // Unlisted sites share implicit partition -1 (PartitionOf default).
}

void Network::Send(Message msg) {
  msg.seq = next_seq_++;
  stats_.Add("net.messages");

  if (msg.from == msg.to) {
    // Loopback: no wire cost, no latency, never lost.
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) {
      Handler h = it->second;
      sim_->Schedule(0, [h, m = std::move(msg)]() mutable { h(m); });
    }
    return;
  }

  if (!CanCommunicate(msg.from, msg.to)) {
    stats_.Add("net.partition_blocked");
    return;
  }
  if (model_.drop_probability > 0 &&
      rng_.Bernoulli(model_.drop_probability)) {
    stats_.Add("net.dropped");
    return;
  }

  stats_.Add("net.bytes", msg.wire_bytes);
  if (!msg.type.empty()) {
    stats_.Add("net.bytes." + msg.type, msg.wire_bytes);
    stats_.Add("net.messages." + msg.type);
  }

  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) return;  // destination has no stack: dropped
  Handler h = it->second;
  sim_->Schedule(model_.one_way_latency,
                 [h, m = std::move(msg)]() mutable { h(m); });
}

}  // namespace radd
