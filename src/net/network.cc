#include "net/network.h"

namespace radd {

Network::Network(Simulator* sim, NetworkModel model, uint64_t seed)
    : sim_(sim), model_(model), rng_(seed) {}

void Network::RegisterHandler(SiteId site, Handler handler) {
  handlers_[site] = std::move(handler);
}

Network::Handler Network::GetHandler(SiteId site) const {
  auto it = handlers_.find(site);
  return it == handlers_.end() ? Handler() : it->second;
}

int Network::PartitionOf(SiteId site) const {
  auto it = partition_of_.find(site);
  return it == partition_of_.end() ? -1 : it->second;
}

bool Network::CanCommunicate(SiteId a, SiteId b) const {
  if (a == b) return true;
  if (!partitioned_) return true;
  return PartitionOf(a) == PartitionOf(b);
}

void Network::SetPartitions(std::vector<std::vector<SiteId>> partitions) {
  partition_of_.clear();
  partitioned_ = !partitions.empty();
  for (size_t p = 0; p < partitions.size(); ++p) {
    for (SiteId s : partitions[p]) {
      partition_of_[s] = static_cast<int>(p);
    }
  }
  // Unlisted sites share implicit partition -1 (PartitionOf default).
}

void Network::SetFaultHook(const std::string& type, FaultHook hook) {
  if (hook) {
    fault_hooks_[type] = std::move(hook);
  } else {
    fault_hooks_.erase(type);
  }
}

void Network::CountDrop(const std::string& type) {
  stats_.Add("net.dropped");
  if (!type.empty()) stats_.Add("net.drop." + type);
}

void Network::Send(Message msg) {
  msg.seq = next_seq_++;
  stats_.Add("net.messages");

  if (msg.from == msg.to) {
    // Loopback: no wire cost, no latency, never lost, never faulted.
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) {
      Handler h = it->second;
      sim_->Schedule(0, [h, m = std::move(msg)]() mutable { h(m); });
    }
    return;
  }

  if (!CanCommunicate(msg.from, msg.to)) {
    stats_.Add("net.partition_blocked");
    return;
  }

  // Scripted faults override the random model for this message.
  FaultAction action = FaultAction::kDeliver;
  if (!fault_hooks_.empty()) {
    auto hook = fault_hooks_.find(msg.type);
    if (hook != fault_hooks_.end()) action = hook->second(msg);
  }
  if (action == FaultAction::kDrop) {
    CountDrop(msg.type);
    return;
  }
  if (action == FaultAction::kDeliver && model_.drop_probability > 0 &&
      rng_.Bernoulli(model_.drop_probability)) {
    CountDrop(msg.type);
    return;
  }
  const bool duplicate =
      action == FaultAction::kDuplicate ||
      (model_.duplicate_probability > 0 &&
       rng_.Bernoulli(model_.duplicate_probability));

  stats_.Add("net.bytes", msg.wire_bytes);
  if (!msg.type.empty()) {
    stats_.Add("net.bytes." + msg.type, msg.wire_bytes);
    stats_.Add("net.messages." + msg.type);
  }

  if (duplicate) {
    // The copy transits the wire too, with its own jitter draw.
    stats_.Add("net.duplicated");
    stats_.Add("net.bytes", msg.wire_bytes);
    if (!msg.type.empty()) {
      stats_.Add("net.dup." + msg.type);
      stats_.Add("net.bytes." + msg.type, msg.wire_bytes);
    }
    Deliver(msg);
  }
  Deliver(std::move(msg));
}

void Network::Deliver(Message msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) return;  // destination has no stack: dropped
  SimTime latency = model_.one_way_latency;
  if (model_.reorder_jitter > 0) {
    latency += rng_.Uniform(model_.reorder_jitter + 1);
  }
  const SimTime when = sim_->Now() + latency;
  auto [horizon, first] =
      link_horizon_.try_emplace({msg.from, msg.to}, when);
  if (!first) {
    if (when < horizon->second) {
      // An earlier send on this link is already scheduled later: this
      // delivery overtakes it.
      stats_.Add("net.reordered");
      if (!msg.type.empty()) stats_.Add("net.reorder." + msg.type);
    } else {
      horizon->second = when;
    }
  }
  Handler h = it->second;
  sim_->Schedule(latency, [h, m = std::move(msg)]() mutable { h(m); });
}

}  // namespace radd
