// Packed, versioned wire frames for the RADD protocol.
//
// wire.h defines the protocol's *typed* messages; this header defines how
// one such message travels a real byte stream: a fixed 32-byte
// little-endian header followed by a type-specific serialized payload,
// checksummed with CRC32C so truncation and bit flips are detected at the
// receiver instead of corrupting protocol state.
//
//   offset  size  field
//        0     4  magic        0x44444152; stored LE the stream starts
//                              with the bytes 'R' 'A' 'D' 'D'
//        4     1  version      kFrameVersion; unknown versions rejected
//        5     1  type         MessageType as uint8_t
//        6     2  flags        stream epoch (socket reconnect fencing; 0
//                              on the DES path)
//        8     4  from         sending site id
//       12     4  to           destination site id
//       16     8  seq          sender-assigned frame sequence number
//       24     4  payload_len  serialized payload bytes that follow
//       28     4  frame_crc    CRC32C over header bytes [0, 28) plus the
//                              payload — the whole frame except this
//                              field. Routing and fencing fields (from,
//                              to, flags) need integrity as much as the
//                              data: a bit flip in `to` must not deliver
//                              a frame to the wrong site.
//
// Every multi-byte field is little-endian on the wire regardless of host
// endianness (explicit byte loads/stores, no struct punning). The packed
// struct below is the layout contract, enforced by static_asserts per the
// zenoh/raddi exemplars; encode/decode go through bounds-checked helpers.
//
// Decoding never crashes on hostile input: every malformed shape
// (truncated header, bad magic, unknown version, oversized or truncated
// payload, CRC mismatch, unknown type, structurally bad payload) maps to a
// distinct FrameError that the caller counts and drops. Tier-1 tests feed
// a malformed-frame corpus plus random fuzz through DecodeFrame under
// ASan/UBSan.
//
// Note `Message::wire_bytes` — the §7.4 *simulated* byte accounting — is
// deliberately not part of the frame: it is bookkeeping of the cost
// model, not data. The DES transport preserves it across its
// encode/decode round-trip; the socket transport derives real byte counts
// from real frames.

#ifndef RADD_NET_FRAME_H_
#define RADD_NET_FRAME_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.h"
#include "net/wire.h"

namespace radd {

/// The first four bytes on the wire are 'R','A','D','D' (this value read
/// back as a little-endian u32).
constexpr uint32_t kFrameMagic = 0x44444152u;
constexpr uint8_t kFrameVersion = 1;

#pragma pack(push, 1)
/// Layout contract of the fixed header (documentation + size assertions;
/// the codec reads/writes fields through explicit LE helpers).
struct FrameHeader {
  uint32_t magic;
  uint8_t version;
  uint8_t type;
  uint16_t flags;
  uint32_t from;
  uint32_t to;
  uint64_t seq;
  uint32_t payload_len;
  uint32_t frame_crc;
};
#pragma pack(pop)
static_assert(sizeof(FrameHeader) == 32, "frame header must pack to 32B");
static_assert(offsetof(FrameHeader, frame_crc) == 28,
              "frame_crc must sit at offset 28");

constexpr size_t kFrameHeaderBytes = sizeof(FrameHeader);

/// Upper bound on a frame's serialized payload. Anything larger in the
/// length field is a malformed (or hostile) frame: the largest legitimate
/// payload is a parity batch of full-block deltas, far below this.
constexpr uint32_t kMaxFramePayload = 1u << 24;  // 16 MiB

/// Everything that can be wrong with a received frame.
enum class FrameError : uint8_t {
  kOk = 0,
  kTruncatedHeader,   ///< fewer than kFrameHeaderBytes available
  kBadMagic,          ///< not a frame boundary (stream desync / garbage)
  kBadVersion,        ///< version this build does not speak
  kBadLength,         ///< payload_len exceeds kMaxFramePayload
  kTruncatedPayload,  ///< buffer ends before payload_len bytes
  kBadCrc,            ///< frame bytes do not match frame_crc
  kBadType,           ///< type byte outside the MessageType enum
  kBadPayload,        ///< CRC passed but payload does not parse
};
constexpr size_t kNumFrameErrors =
    static_cast<size_t>(FrameError::kBadPayload) + 1;

std::string_view FrameErrorName(FrameError e);

/// Thread-safe rejection counters, one slot per FrameError (the kOk slot
/// counts successful decodes). Shared by the DES and socket transports so
/// chaos reports can assert "malformed input was counted and dropped".
struct FrameCounters {
  std::array<std::atomic<uint64_t>, kNumFrameErrors> by_error{};
  std::atomic<uint64_t> encoded{0};
  std::atomic<uint64_t> stale_stream{0};  ///< fenced by stream epoch

  void Count(FrameError e) {
    by_error[static_cast<size_t>(e)].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t Get(FrameError e) const {
    return by_error[static_cast<size_t>(e)].load(std::memory_order_relaxed);
  }
  /// Total frames rejected for any reason (excludes kOk).
  uint64_t Rejected() const {
    uint64_t n = 0;
    for (size_t i = 1; i < kNumFrameErrors; ++i) {
      n += by_error[i].load(std::memory_order_relaxed);
    }
    return n;
  }
  /// "decoded=N rejected=M [bad_crc=..]" — only nonzero reject reasons.
  std::string ToString() const;
};

/// Serializes `msg` into one self-contained frame (header + payload).
/// `stream_epoch` is stamped into the flags field: the socket transport
/// bumps it per reconnect so receivers can fence frames from dead stream
/// incarnations (PR-3 fencing rules applied at the transport layer); the
/// DES path leaves it 0. Returns an empty vector only if the payload
/// variant does not match the message type (a caller bug, counted by the
/// transport).
std::vector<uint8_t> EncodeFrame(const Message& msg, uint16_t stream_epoch = 0);

/// Result of decoding one frame from a buffer prefix.
struct DecodedFrame {
  FrameError error = FrameError::kOk;
  /// Bytes the frame occupies (header + payload). Valid whenever the
  /// framing fields parsed (error is kOk, kBadType, or a payload-level
  /// error), so a stream reader can skip a frame whose contents were
  /// rejected; 0 for framing-level errors.
  size_t frame_size = 0;
  uint16_t stream_epoch = 0;
  Message msg;  ///< valid only when error == kOk (wire_bytes left 0)
};

/// Decodes one frame from the first `size` bytes of `data`. Never throws
/// and never reads out of bounds, whatever the bytes contain.
DecodedFrame DecodeFrame(const uint8_t* data, size_t size);

/// Validates only the fixed header of a buffered stream prefix and
/// reports the full frame size, so a socket reader knows how many bytes
/// to accumulate before calling DecodeFrame. Returns kTruncatedHeader
/// while fewer than kFrameHeaderBytes are buffered; kBadMagic /
/// kBadVersion / kBadLength for a header that can never become valid
/// (the stream is desynced — drop the connection); kBadType with
/// `*frame_size` still set (framing intact, skip the frame); else kOk
/// with `*frame_size` set.
FrameError PeekFrameSize(const uint8_t* data, size_t size,
                         size_t* frame_size);

}  // namespace radd

#endif  // RADD_NET_FRAME_H_
