#include "net/wire.h"

#include <array>

namespace radd {

namespace {

const std::array<std::string, kNumMessageTypes>& NameTable() {
  static const std::array<std::string, kNumMessageTypes> kNames = {
      "",  // kNone
      "read_req",
      "read_reply",
      "write_req",
      "write_reply",
      "spare_read_req",
      "spare_read_reply",
      "spare_take_req",
      "spare_take_reply",
      "spare_invalidate",
      "spare_write_req",
      "spare_write_reply",
      "spare_write_back",
      "parity_update",
      "parity_ack",
      "parity_nack",
      "parity_batch",
      "parity_batch_ack",
      "recon_req",
      "recon_reply",
      "heartbeat",
      "hb_probe",
      "hb_probe_ack",
  };
  return kNames;
}

}  // namespace

const std::string& MessageTypeName(MessageType type) {
  return NameTable()[static_cast<size_t>(type)];
}

MessageType MessageTypeFromName(const std::string& name) {
  const auto& names = NameTable();
  for (size_t i = 1; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MessageType>(i);
  }
  return MessageType::kNone;
}

}  // namespace radd
