// SocketTransport — the real-network backend: sites as threads, packed
// frames (net/frame.h) over TCP loopback.
//
// Robustness rules, in the order they apply to one outbound frame:
//
//   1. The fault-injecting proxy shim (FrameInjector, implementations in
//      src/fault/netshim.h) is consulted first and may delay, drop,
//      duplicate, truncate or bit-flip the frame — the socket-level
//      analogue of the DES fault hooks, so chaos schedules can abuse the
//      real transport the way they abuse the simulated one.
//   2. The write itself runs under a per-frame deadline (non-blocking
//      write + poll); a stuck peer cannot wedge the sender forever.
//   3. A failed or timed-out write closes the connection and retries:
//      bounded retransmit with jittered exponential backoff, reconnecting
//      each time. Every reconnect bumps the link's *stream epoch*, and
//      retried frames are re-encoded with the new epoch — the PR-3
//      fencing rule applied to streams: a receiver that has seen epoch E
//      from a link rejects frames stamped with an older epoch (counted as
//      stale_stream), so bytes lingering from a dead incarnation of the
//      connection can never interleave with the live one.
//   4. If every retry fails the frame is dropped and counted. That is
//      loss semantics, exactly what the protocol layer above already
//      survives (§5 retransmit-until-ack).
//
// The receive path trusts nothing: each connection is read through a
// reassembly buffer, and every malformed shape maps to a counted
// FrameError. Frame-local damage (bad CRC, unknown type, unparseable
// payload) skips that frame and keeps the stream; framing-level damage
// (bad magic, unknown version, hostile length) means the stream position
// can no longer be trusted, so the connection is dropped and the sender's
// reconnect-with-new-epoch path takes over. Handler execution is
// serialized per destination site, preserving the DES's one-event-loop-
// per-site discipline.

#ifndef RADD_NET_SOCKET_TRANSPORT_H_
#define RADD_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace radd {

/// What the proxy shim decided for one outbound frame. Default: deliver
/// untouched.
struct FrameFaultPlan {
  bool drop = false;
  bool duplicate = false;
  /// Milliseconds to hold the frame (and, since links are FIFO, everything
  /// queued behind it) before writing — a congested-link delay.
  int delay_ms = 0;
  /// > 0: write only this many bytes of the frame, then break the stream.
  size_t truncate_at = 0;
  /// >= 0: flip this bit (mod frame length) after the CRC was stamped.
  int bitflip_at = -1;
};

/// Send-side fault-injecting proxy, consulted for every non-loopback
/// outbound frame. Called concurrently from sender threads.
class FrameInjector {
 public:
  virtual ~FrameInjector() = default;
  virtual FrameFaultPlan OnFrame(const Message& msg, size_t frame_len) = 0;
};

struct SocketTransportConfig {
  /// Per-frame write deadline (poll + non-blocking write).
  int send_deadline_ms = 200;
  /// Reconnect-and-retransmit attempts after a failed write.
  int max_send_retries = 4;
  /// Jittered exponential backoff between those attempts.
  int backoff_base_ms = 2;
  int backoff_cap_ms = 50;
  int connect_timeout_ms = 1000;
  /// Seed of the backoff-jitter RNG.
  uint64_t seed = 0x50cce7;
};

class SocketTransport : public Transport {
 public:
  using Handler = std::function<void(Message&)>;

  explicit SocketTransport(int num_sites, SocketTransportConfig cfg = {});
  ~SocketTransport() override;

  /// Installs the message handler for `site`. Before Start().
  void RegisterHandler(SiteId site, Handler handler);

  /// Optional fault-injecting proxy shim; nullptr = clean network.
  /// Before Start().
  void SetInjector(FrameInjector* injector) { injector_ = injector; }

  /// Binds every site's listener (127.0.0.1, kernel-assigned ports) and
  /// spawns the acceptor threads.
  Status Start();

  /// Stops all threads and closes all sockets. Idempotent; also run by
  /// the destructor.
  void Stop();

  /// TCP port `site` listens on (for tests that want to speak raw bytes
  /// at a receiver). 0 before Start().
  uint16_t port(SiteId site) const;

  void Send(Message msg) override;
  const FrameCounters& frame_counters() const override { return counters_; }

  // --- robustness observability --------------------------------------------
  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t bytes_sent() const { return bytes_sent_.load(); }
  uint64_t frames_delivered() const { return frames_delivered_.load(); }
  /// Stream-level retransmissions (write failed, reconnected, re-sent).
  uint64_t retransmits() const { return retransmits_.load(); }
  uint64_t reconnects() const { return reconnects_.load(); }
  /// Frames abandoned after every retry failed (loss semantics).
  uint64_t send_failures() const { return send_failures_.load(); }
  /// Proxy-shim verdicts actually executed.
  uint64_t injected_drops() const { return injected_drops_.load(); }
  uint64_t injected_dups() const { return injected_dups_.load(); }
  uint64_t injected_truncations() const { return injected_truncations_.load(); }
  uint64_t injected_bitflips() const { return injected_bitflips_.load(); }

 private:
  struct Link;        // per-(from,to) sender state
  struct Connection;  // one accepted inbound stream

  bool ConnectLink(Link* link);
  bool WriteAll(int fd, const uint8_t* data, size_t n);
  void AcceptLoop(SiteId site);
  void ReadLoop(std::shared_ptr<Connection> conn);
  /// Decodes and dispatches every complete frame in `buf`, compacting it.
  /// Returns false when the stream is desynced and must be dropped.
  bool DrainBuffer(std::vector<uint8_t>* buf);
  void Dispatch(Message&& msg);

  const int num_sites_;
  const SocketTransportConfig cfg_;
  FrameInjector* injector_ = nullptr;
  std::atomic<bool> running_{false};
  bool started_ = false;

  std::vector<Handler> handlers_;
  std::vector<int> listen_fds_;
  std::vector<uint16_t> ports_;
  std::vector<std::thread> acceptors_;
  /// One mutex per destination site: handler execution is serialized
  /// (recursive so a handler may loopback-send to its own site).
  std::vector<std::unique_ptr<std::recursive_mutex>> site_mu_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex links_mu_;
  std::map<std::pair<SiteId, SiteId>, std::unique_ptr<Link>> links_;

  /// Highest stream epoch seen per (from, to); older frames are fenced.
  std::mutex epoch_mu_;
  std::map<std::pair<uint32_t, uint32_t>, uint16_t> seen_epoch_;

  std::atomic<uint64_t> next_seq_{1};
  FrameCounters counters_;
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> frames_delivered_{0};
  std::atomic<uint64_t> retransmits_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> send_failures_{0};
  std::atomic<uint64_t> injected_drops_{0};
  std::atomic<uint64_t> injected_dups_{0};
  std::atomic<uint64_t> injected_truncations_{0};
  std::atomic<uint64_t> injected_bitflips_{0};
};

}  // namespace radd

#endif  // RADD_NET_SOCKET_TRANSPORT_H_
