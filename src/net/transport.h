// Transport — the seam between the protocol layer and whatever actually
// carries its messages.
//
// The protocol stack (core/node.cc) historically called Network::Send
// directly, which welds it to the in-process DES. This interface breaks
// that weld: a Transport accepts a typed Message and gets it to the
// destination site's handler by whatever means it implements. Two
// backends exist:
//
//   * DesTransport (here): the existing discrete-event Network, unchanged
//     in semantics — but every message now rides the packed frame codec
//     (net/frame.h): encode to bytes, decode back, deliver the decoded
//     message. A lossless codec makes this byte-shuffling invisible
//     (chaos schedules produce bit-identical reports with it on or off,
//     which is exactly the differential test that proves the codec); any
//     codec defect surfaces as a counted reject instead of silent
//     corruption.
//
//   * SocketTransport (net/socket_transport.h): real TCP over loopback,
//     sites as threads. See that header for the robustness rules.
//
// RaddNodeSystem::SetTransport installs one; without it the node sends
// straight to the Network as before (zero overhead, bit-identical).

#ifndef RADD_NET_TRANSPORT_H_
#define RADD_NET_TRANSPORT_H_

#include "net/frame.h"
#include "net/network.h"

namespace radd {

/// Carrier of protocol messages. Implementations must tolerate hostile
/// bytes on their receive path: malformed frames are counted and dropped,
/// never delivered and never fatal.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships `msg` toward its destination. Fire-and-forget: delivery
  /// failures look like message loss, which every layer above already
  /// handles (§5 retransmit-until-ack).
  virtual void Send(Message msg) = 0;

  /// Codec/validation counters of this transport's data path.
  virtual const FrameCounters& frame_counters() const = 0;
};

/// The DES backend: frames through the codec, then the simulated Network
/// (latency, loss, partitions, fault hooks all still apply).
class DesTransport : public Transport {
 public:
  explicit DesTransport(Network* net) : net_(net) {}

  void Send(Message msg) override;

  const FrameCounters& frame_counters() const override { return counters_; }

 private:
  Network* net_;
  FrameCounters counters_;
};

}  // namespace radd

#endif  // RADD_NET_TRANSPORT_H_
