// Wire protocol of the simulated network: the closed set of message
// types, one payload struct per type, and the variant that carries them.
//
// The payload used to be a std::any, which costs a heap allocation per
// message and RTTI-based casts per delivery; Message::type used to be a
// std::string, rebuilt (and compared character by character in the
// dispatch chain) for every send. Both are replaced here: MessageType is
// a dense enum that indexes per-type statistics and fault hooks directly,
// and Payload is a std::variant over the protocol structs, stored inline
// in the Message. Large payloads (Blocks) still travel by move, so the
// messaging hot path performs no per-message allocation of its own.
//
// Sizes quoted in `wire_bytes` fields are the §7.4-style wire costs; every
// message additionally pays the fixed kWireHeader.

#ifndef RADD_NET_WIRE_H_
#define RADD_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"
#include "sim/simulator.h"

namespace radd {

/// Fixed per-message overhead (addressing, type, sequence) in wire bytes.
constexpr size_t kWireHeader = 32;

/// Every message type the stack sends. kNone marks an untyped message
/// (tests, raw sends): it gets no per-type statistics, matching the old
/// empty-string behaviour.
enum class MessageType : uint8_t {
  kNone = 0,
  kReadReq,
  kReadReply,
  kWriteReq,
  kWriteReply,
  kSpareReadReq,
  kSpareReadReply,
  kSpareTakeReq,
  kSpareTakeReply,
  kSpareInvalidate,
  kSpareWriteReq,
  kSpareWriteReply,
  kSpareWriteBack,
  kParityUpdate,
  kParityAck,
  kParityNack,
  kParityBatch,
  kParityBatchAck,
  kReconReq,
  kReconReply,
  kHeartbeat,
  kHbProbe,
  kHbProbeAck,
};
constexpr size_t kNumMessageTypes =
    static_cast<size_t>(MessageType::kHbProbeAck) + 1;

/// Stable on-the-wire name, e.g. "parity_update". Used for stat keys and
/// traces; the strings are identical to the pre-enum ones so recorded
/// stats stay comparable across revisions.
const std::string& MessageTypeName(MessageType type);

/// Inverse of MessageTypeName; kNone for an unknown name.
MessageType MessageTypeFromName(const std::string& name);

// --- protocol payloads ------------------------------------------------------

struct ReadReq {
  uint64_t op;
  int group = 0;  // RADD group within the volume (§4 sharding)
  BlockNum row;
};
struct ReadReply {
  uint64_t op;
  Status status;
  Block data{0};
  Uid uid;
};
struct WriteReq {
  uint64_t op;
  int group = 0;
  BlockNum row;
  int home;
  SimTime deadline = 0;  // client give-up time; later copies are zombies
  uint64_t home_epoch = 0;  // membership epoch of the home site at issue
  Block data{0};
};
struct WriteReply {
  uint64_t op;
  Status status;
};
struct SpareReadReq {
  uint64_t op;
  int group = 0;
  int home;
  BlockNum row;
};
struct SpareReadReply {
  uint64_t op;
  Status status;  // OK: data valid; NotFound: spare invalid
  Block data{0};
  Uid logical_uid;
};
struct SpareTakeReq {  // recovering-write old-value fetch + invalidate
  uint64_t op;
  int group = 0;
  int home;
  BlockNum row;
};
struct SpareWriteReq {  // W1' — degraded write shipped to the spare site
  uint64_t op;
  int group = 0;
  int home;
  BlockNum row;
  SimTime deadline = 0;  // client give-up time; later copies are zombies
  uint64_t home_epoch = 0;  // membership epoch of the home site at issue
  Block data{0};
  Uid uid;  // minted by the writer
};
struct SpareWriteBack {  // degraded-read materialization (fire and forget)
  int group = 0;
  int home;
  BlockNum row;
  uint64_t home_epoch = 0;  // membership epoch of the home site at issue
  Block data{0};
  Uid logical_uid;
};
struct ParityUpdate {
  uint64_t op;
  int group = 0;
  BlockNum row;
  int position;
  uint64_t home_epoch = 0;  // membership epoch of the home site at issue
  Block delta{0};  // the change mask (wire size = encoded mask)
  Uid uid;
  size_t wire_bytes;
};
struct ParityAck {
  uint64_t op;
};
struct ParityNack {  // parity site refused the update (stale epoch)
  uint64_t op;
  Status status;
};

/// One coalesced row update inside a batched parity frame: the XOR-merge
/// of every staged change mask for (row, position), stamped with the
/// latest contributing UID (formula 1 is associative, so the merged mask
/// applied once equals the members applied in order).
struct ParityBatchEntry {
  BlockNum row;
  int position;
  uint64_t home_epoch = 0;  // home's epoch when the delta was computed
                            // (staging time, never restamped on retry)
  Block delta{0};           // merged change mask
  Uid uid;                  // newest UID folded into the merge
  size_t wire_bytes = 0;    // encoded-mask cost of `delta`
};

/// W3 group-commit frame: many row updates in one message. Idempotence is
/// per-sender `batch_seq` (the receiver remembers processed sequence
/// numbers and replays the recorded ack for a duplicate), backstopped by
/// the paper's §3.3 UID-array check per entry across receiver restarts.
struct ParityBatchFrame {
  uint64_t batch_seq = 0;  // per-sender, monotonically increasing
  int group = 0;           // frames never mix groups: one coalescer each
  std::vector<ParityBatchEntry> entries;
};

/// Batch-level ack, fanned back out to the per-op completion waiters.
/// `entry_status` is index-aligned with the frame's entries: OK means
/// applied (or already applied), a non-OK entry is retried individually.
struct ParityBatchAck {
  uint64_t batch_seq = 0;
  std::vector<Status> entry_status;
};

struct ReconReq {
  uint64_t op;
  int group = 0;
  BlockNum row;
  int attempt;  // §3.3 retry round; stale-round replies are discarded
};
struct ReconReply {
  uint64_t op;
  BlockNum row;
  Status status;
  Block data{0};
  Uid uid;
  std::vector<Uid> uid_array;  // non-empty iff this is the parity site
  int attempt = 0;             // echoed from the request
};

struct Heartbeat {
  SimTime sent_at = 0;
};

/// The closed payload set. std::monostate is the untyped/empty payload.
using Payload =
    std::variant<std::monostate, ReadReq, ReadReply, WriteReq, WriteReply,
                 SpareReadReq, SpareReadReply, SpareTakeReq, SpareWriteReq,
                 SpareWriteBack, ParityUpdate, ParityAck, ParityNack,
                 ParityBatchFrame, ParityBatchAck, ReconReq, ReconReply,
                 Heartbeat>;

}  // namespace radd

#endif  // RADD_NET_WIRE_H_
