#include "net/frame.h"

#include "common/crc32c.h"

namespace radd {

std::string_view FrameErrorName(FrameError e) {
  switch (e) {
    case FrameError::kOk: return "ok";
    case FrameError::kTruncatedHeader: return "truncated_header";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadVersion: return "bad_version";
    case FrameError::kBadLength: return "bad_length";
    case FrameError::kTruncatedPayload: return "truncated_payload";
    case FrameError::kBadCrc: return "bad_crc";
    case FrameError::kBadType: return "bad_type";
    case FrameError::kBadPayload: return "bad_payload";
  }
  return "?";
}

std::string FrameCounters::ToString() const {
  std::string out = "decoded=" + std::to_string(Get(FrameError::kOk)) +
                    " rejected=" + std::to_string(Rejected());
  for (size_t i = 1; i < kNumFrameErrors; ++i) {
    const uint64_t n = by_error[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out += " " + std::string(FrameErrorName(static_cast<FrameError>(i))) +
           "=" + std::to_string(n);
  }
  const uint64_t stale = stale_stream.load(std::memory_order_relaxed);
  if (stale != 0) out += " stale_stream=" + std::to_string(stale);
  return out;
}

namespace {

// --- little-endian primitives ----------------------------------------------

void Put16(std::vector<uint8_t>* b, uint16_t v) {
  b->push_back(static_cast<uint8_t>(v));
  b->push_back(static_cast<uint8_t>(v >> 8));
}
void Put32(std::vector<uint8_t>* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void Put64(std::vector<uint8_t>* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint16_t Load16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
uint64_t Load64(const uint8_t* p) {
  return static_cast<uint64_t>(Load32(p)) |
         (static_cast<uint64_t>(Load32(p + 4)) << 32);
}

// --- payload writer ---------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* buf) : buf_(buf) {}
  void U8(uint8_t v) { buf_->push_back(v); }
  void U32(uint32_t v) { Put32(buf_, v); }
  void U64(uint64_t v) { Put64(buf_, v); }
  void I32(int32_t v) { Put32(buf_, static_cast<uint32_t>(v)); }
  void UidV(Uid u) { Put64(buf_, u.raw()); }
  void Str(const std::string& s) {
    Put32(buf_, static_cast<uint32_t>(s.size()));
    buf_->insert(buf_->end(), s.begin(), s.end());
  }
  void Stat(const Status& st) {
    U8(static_cast<uint8_t>(st.code()));
    if (!st.ok()) Str(st.message());
  }
  void Blk(const Block& b) {
    Put32(buf_, static_cast<uint32_t>(b.size()));
    buf_->insert(buf_->end(), b.data(), b.data() + b.size());
  }

 private:
  std::vector<uint8_t>* buf_;
};

// --- bounds-checked payload reader ------------------------------------------

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

  bool ok() const { return ok_; }
  /// A well-formed payload is consumed exactly; trailing bytes mean the
  /// frame was built by something else (or corrupted undetectably by CRC,
  /// which for random corruption is a 2^-32 event).
  bool Done() const { return ok_ && off_ == n_; }
  size_t Remaining() const { return ok_ ? n_ - off_ : 0; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return p_[off_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = Load32(p_ + off_);
    off_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = Load64(p_ + off_);
    off_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  /// Marks the payload structurally invalid (hostile element counts).
  void Fail() { ok_ = false; }
  Uid UidV() { return Uid(U64()); }
  std::string Str() {
    const uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }
  Status Stat() {
    const uint8_t code = U8();
    if (code > static_cast<uint8_t>(StatusCode::kStaleEpoch)) {
      ok_ = false;
      return Status::OK();
    }
    if (code == 0) return Status::OK();
    std::string msg = Str();
    if (!ok_) return Status::OK();
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  Block Blk() {
    const uint32_t len = U32();
    if (!Need(len)) return Block{0};
    std::vector<uint8_t> bytes(p_ + off_, p_ + off_ + len);
    off_ += len;
    return Block(std::move(bytes));
  }

 private:
  bool Need(size_t k) {
    if (!ok_ || n_ - off_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

// --- per-struct serializers -------------------------------------------------
// One Enc/Dec pair per payload struct. Field order is the struct's
// declaration order; every integer is fixed-width LE (see frame.h).

void Enc(Writer& w, const ReadReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.U64(v.row);
}
ReadReq DecReadReq(Reader& r) {
  ReadReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.row = r.U64();
  return v;
}

void Enc(Writer& w, const ReadReply& v) {
  w.U64(v.op);
  w.Stat(v.status);
  w.Blk(v.data);
  w.UidV(v.uid);
}
ReadReply DecReadReply(Reader& r) {
  ReadReply v;
  v.op = r.U64();
  v.status = r.Stat();
  v.data = r.Blk();
  v.uid = r.UidV();
  return v;
}

void Enc(Writer& w, const WriteReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.U64(v.row);
  w.I32(v.home);
  w.U64(v.deadline);
  w.U64(v.home_epoch);
  w.Blk(v.data);
}
WriteReq DecWriteReq(Reader& r) {
  WriteReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.row = r.U64();
  v.home = r.I32();
  v.deadline = r.U64();
  v.home_epoch = r.U64();
  v.data = r.Blk();
  return v;
}

void Enc(Writer& w, const WriteReply& v) {
  w.U64(v.op);
  w.Stat(v.status);
}
WriteReply DecWriteReply(Reader& r) {
  WriteReply v;
  v.op = r.U64();
  v.status = r.Stat();
  return v;
}

void Enc(Writer& w, const SpareReadReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.I32(v.home);
  w.U64(v.row);
}
SpareReadReq DecSpareReadReq(Reader& r) {
  SpareReadReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.home = r.I32();
  v.row = r.U64();
  return v;
}

void Enc(Writer& w, const SpareReadReply& v) {
  w.U64(v.op);
  w.Stat(v.status);
  w.Blk(v.data);
  w.UidV(v.logical_uid);
}
SpareReadReply DecSpareReadReply(Reader& r) {
  SpareReadReply v;
  v.op = r.U64();
  v.status = r.Stat();
  v.data = r.Blk();
  v.logical_uid = r.UidV();
  return v;
}

void Enc(Writer& w, const SpareTakeReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.I32(v.home);
  w.U64(v.row);
}
SpareTakeReq DecSpareTakeReq(Reader& r) {
  SpareTakeReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.home = r.I32();
  v.row = r.U64();
  return v;
}

void Enc(Writer& w, const SpareWriteReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.I32(v.home);
  w.U64(v.row);
  w.U64(v.deadline);
  w.U64(v.home_epoch);
  w.Blk(v.data);
  w.UidV(v.uid);
}
SpareWriteReq DecSpareWriteReq(Reader& r) {
  SpareWriteReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.home = r.I32();
  v.row = r.U64();
  v.deadline = r.U64();
  v.home_epoch = r.U64();
  v.data = r.Blk();
  v.uid = r.UidV();
  return v;
}

void Enc(Writer& w, const SpareWriteBack& v) {
  w.I32(v.group);
  w.I32(v.home);
  w.U64(v.row);
  w.U64(v.home_epoch);
  w.Blk(v.data);
  w.UidV(v.logical_uid);
}
SpareWriteBack DecSpareWriteBack(Reader& r) {
  SpareWriteBack v;
  v.group = r.I32();
  v.home = r.I32();
  v.row = r.U64();
  v.home_epoch = r.U64();
  v.data = r.Blk();
  v.logical_uid = r.UidV();
  return v;
}

void Enc(Writer& w, const ParityUpdate& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.U64(v.row);
  w.I32(v.position);
  w.U64(v.home_epoch);
  w.Blk(v.delta);
  w.UidV(v.uid);
  w.U64(v.wire_bytes);
}
ParityUpdate DecParityUpdate(Reader& r) {
  ParityUpdate v;
  v.op = r.U64();
  v.group = r.I32();
  v.row = r.U64();
  v.position = r.I32();
  v.home_epoch = r.U64();
  v.delta = r.Blk();
  v.uid = r.UidV();
  v.wire_bytes = r.U64();
  return v;
}

void Enc(Writer& w, const ParityAck& v) { w.U64(v.op); }
ParityAck DecParityAck(Reader& r) { return ParityAck{r.U64()}; }

void Enc(Writer& w, const ParityNack& v) {
  w.U64(v.op);
  w.Stat(v.status);
}
ParityNack DecParityNack(Reader& r) {
  ParityNack v;
  v.op = r.U64();
  v.status = r.Stat();
  return v;
}

void Enc(Writer& w, const ParityBatchFrame& v) {
  w.U64(v.batch_seq);
  w.I32(v.group);
  w.U32(static_cast<uint32_t>(v.entries.size()));
  for (const ParityBatchEntry& e : v.entries) {
    w.U64(e.row);
    w.I32(e.position);
    w.U64(e.home_epoch);
    w.Blk(e.delta);
    w.UidV(e.uid);
    w.U64(e.wire_bytes);
  }
}
ParityBatchFrame DecParityBatchFrame(Reader& r) {
  ParityBatchFrame v;
  v.batch_seq = r.U64();
  v.group = r.I32();
  const uint32_t count = r.U32();
  // Each entry occupies at least 36 bytes; a count claiming more entries
  // than the remaining bytes could hold is hostile — bail before
  // reserving anything.
  if (static_cast<uint64_t>(count) * 36 > r.Remaining()) {
    r.Fail();
    return v;
  }
  v.entries.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ParityBatchEntry e;
    e.row = r.U64();
    e.position = r.I32();
    e.home_epoch = r.U64();
    e.delta = r.Blk();
    e.uid = r.UidV();
    e.wire_bytes = r.U64();
    v.entries.push_back(std::move(e));
  }
  return v;
}

void Enc(Writer& w, const ParityBatchAck& v) {
  w.U64(v.batch_seq);
  w.U32(static_cast<uint32_t>(v.entry_status.size()));
  for (const Status& st : v.entry_status) w.Stat(st);
}
ParityBatchAck DecParityBatchAck(Reader& r) {
  ParityBatchAck v;
  v.batch_seq = r.U64();
  const uint32_t count = r.U32();
  if (static_cast<uint64_t>(count) > r.Remaining()) {  // >= 1 byte each
    r.Fail();
    return v;
  }
  v.entry_status.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    v.entry_status.push_back(r.Stat());
  }
  return v;
}

void Enc(Writer& w, const ReconReq& v) {
  w.U64(v.op);
  w.I32(v.group);
  w.U64(v.row);
  w.I32(v.attempt);
}
ReconReq DecReconReq(Reader& r) {
  ReconReq v;
  v.op = r.U64();
  v.group = r.I32();
  v.row = r.U64();
  v.attempt = r.I32();
  return v;
}

void Enc(Writer& w, const ReconReply& v) {
  w.U64(v.op);
  w.U64(v.row);
  w.Stat(v.status);
  w.Blk(v.data);
  w.UidV(v.uid);
  w.U32(static_cast<uint32_t>(v.uid_array.size()));
  for (Uid u : v.uid_array) w.UidV(u);
  w.I32(v.attempt);
}
ReconReply DecReconReply(Reader& r) {
  ReconReply v;
  v.op = r.U64();
  v.row = r.U64();
  v.status = r.Stat();
  v.data = r.Blk();
  v.uid = r.UidV();
  const uint32_t count = r.U32();
  if (static_cast<uint64_t>(count) * 8 > r.Remaining()) {
    r.Fail();
    return v;
  }
  v.uid_array.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    v.uid_array.push_back(r.UidV());
  }
  v.attempt = r.I32();
  return v;
}

void Enc(Writer& w, const Heartbeat& v) { w.U64(v.sent_at); }
Heartbeat DecHeartbeat(Reader& r) { return Heartbeat{r.U64()}; }

// --- type dispatch ----------------------------------------------------------
// Several MessageTypes share one payload struct (e.g. kSpareTakeReply
// travels as a SpareReadReply); this is the senders' mapping in
// core/node.cc and cluster/heartbeat.cc.

/// Serializes the payload for `type`; false if the variant holds a
/// different alternative than the type calls for (caller bug).
bool EncodePayload(Writer& w, MessageType type, const Payload& p) {
  switch (type) {
    case MessageType::kNone:
      return std::holds_alternative<std::monostate>(p);
    case MessageType::kReadReq:
      if (!std::holds_alternative<ReadReq>(p)) return false;
      Enc(w, std::get<ReadReq>(p));
      return true;
    case MessageType::kReadReply:
      if (!std::holds_alternative<ReadReply>(p)) return false;
      Enc(w, std::get<ReadReply>(p));
      return true;
    case MessageType::kWriteReq:
      if (!std::holds_alternative<WriteReq>(p)) return false;
      Enc(w, std::get<WriteReq>(p));
      return true;
    case MessageType::kWriteReply:
    case MessageType::kSpareWriteReply:
      if (!std::holds_alternative<WriteReply>(p)) return false;
      Enc(w, std::get<WriteReply>(p));
      return true;
    case MessageType::kSpareReadReq:
      if (!std::holds_alternative<SpareReadReq>(p)) return false;
      Enc(w, std::get<SpareReadReq>(p));
      return true;
    case MessageType::kSpareReadReply:
    case MessageType::kSpareTakeReply:
      if (!std::holds_alternative<SpareReadReply>(p)) return false;
      Enc(w, std::get<SpareReadReply>(p));
      return true;
    case MessageType::kSpareTakeReq:
    case MessageType::kSpareInvalidate:
      if (!std::holds_alternative<SpareTakeReq>(p)) return false;
      Enc(w, std::get<SpareTakeReq>(p));
      return true;
    case MessageType::kSpareWriteReq:
      if (!std::holds_alternative<SpareWriteReq>(p)) return false;
      Enc(w, std::get<SpareWriteReq>(p));
      return true;
    case MessageType::kSpareWriteBack:
      if (!std::holds_alternative<SpareWriteBack>(p)) return false;
      Enc(w, std::get<SpareWriteBack>(p));
      return true;
    case MessageType::kParityUpdate:
      if (!std::holds_alternative<ParityUpdate>(p)) return false;
      Enc(w, std::get<ParityUpdate>(p));
      return true;
    case MessageType::kParityAck:
      if (!std::holds_alternative<ParityAck>(p)) return false;
      Enc(w, std::get<ParityAck>(p));
      return true;
    case MessageType::kParityNack:
      if (!std::holds_alternative<ParityNack>(p)) return false;
      Enc(w, std::get<ParityNack>(p));
      return true;
    case MessageType::kParityBatch:
      if (!std::holds_alternative<ParityBatchFrame>(p)) return false;
      Enc(w, std::get<ParityBatchFrame>(p));
      return true;
    case MessageType::kParityBatchAck:
      if (!std::holds_alternative<ParityBatchAck>(p)) return false;
      Enc(w, std::get<ParityBatchAck>(p));
      return true;
    case MessageType::kReconReq:
      if (!std::holds_alternative<ReconReq>(p)) return false;
      Enc(w, std::get<ReconReq>(p));
      return true;
    case MessageType::kReconReply:
      if (!std::holds_alternative<ReconReply>(p)) return false;
      Enc(w, std::get<ReconReply>(p));
      return true;
    case MessageType::kHeartbeat:
    case MessageType::kHbProbe:
    case MessageType::kHbProbeAck:
      if (!std::holds_alternative<Heartbeat>(p)) return false;
      Enc(w, std::get<Heartbeat>(p));
      return true;
  }
  return false;
}

/// Parses the payload for `type` into `*out`; false on structural failure.
bool DecodePayload(Reader& r, MessageType type, Payload* out) {
  switch (type) {
    case MessageType::kNone:
      *out = std::monostate{};
      break;
    case MessageType::kReadReq:
      *out = DecReadReq(r);
      break;
    case MessageType::kReadReply:
      *out = DecReadReply(r);
      break;
    case MessageType::kWriteReq:
      *out = DecWriteReq(r);
      break;
    case MessageType::kWriteReply:
    case MessageType::kSpareWriteReply:
      *out = DecWriteReply(r);
      break;
    case MessageType::kSpareReadReq:
      *out = DecSpareReadReq(r);
      break;
    case MessageType::kSpareReadReply:
    case MessageType::kSpareTakeReply:
      *out = DecSpareReadReply(r);
      break;
    case MessageType::kSpareTakeReq:
    case MessageType::kSpareInvalidate:
      *out = DecSpareTakeReq(r);
      break;
    case MessageType::kSpareWriteReq:
      *out = DecSpareWriteReq(r);
      break;
    case MessageType::kSpareWriteBack:
      *out = DecSpareWriteBack(r);
      break;
    case MessageType::kParityUpdate:
      *out = DecParityUpdate(r);
      break;
    case MessageType::kParityAck:
      *out = DecParityAck(r);
      break;
    case MessageType::kParityNack:
      *out = DecParityNack(r);
      break;
    case MessageType::kParityBatch:
      *out = DecParityBatchFrame(r);
      break;
    case MessageType::kParityBatchAck:
      *out = DecParityBatchAck(r);
      break;
    case MessageType::kReconReq:
      *out = DecReconReq(r);
      break;
    case MessageType::kReconReply:
      *out = DecReconReply(r);
      break;
    case MessageType::kHeartbeat:
    case MessageType::kHbProbe:
    case MessageType::kHbProbeAck:
      *out = DecHeartbeat(r);
      break;
  }
  return r.Done();
}

}  // namespace

std::vector<uint8_t> EncodeFrame(const Message& msg, uint16_t stream_epoch) {
  std::vector<uint8_t> buf;
  buf.reserve(kFrameHeaderBytes + 64);
  Put32(&buf, kFrameMagic);
  buf.push_back(kFrameVersion);
  buf.push_back(static_cast<uint8_t>(msg.type));
  Put16(&buf, stream_epoch);
  Put32(&buf, msg.from);
  Put32(&buf, msg.to);
  Put64(&buf, msg.seq);
  Put32(&buf, 0);  // payload_len, patched below
  Put32(&buf, 0);  // frame_crc, patched below

  Writer w(&buf);
  if (!EncodePayload(w, msg.type, msg.payload)) return {};

  const size_t payload_len = buf.size() - kFrameHeaderBytes;
  // Patch the length slot first: it is inside the checksummed span.
  for (int i = 0; i < 4; ++i) {
    buf[24 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload_len >> (8 * i));
  }
  // The CRC covers the whole frame except its own field: header bytes
  // [0, 28) plus the payload. Payload-only coverage once let a bit flip in
  // the `to` field deliver a frame to the wrong site undetected — routing
  // and fencing fields need integrity exactly as much as the data does.
  const uint32_t crc = Crc32cExtend(Crc32c(buf.data(), 28),
                                    buf.data() + kFrameHeaderBytes,
                                    payload_len);
  for (int i = 0; i < 4; ++i) {
    buf[28 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return buf;
}

FrameError PeekFrameSize(const uint8_t* data, size_t size,
                         size_t* frame_size) {
  if (size < kFrameHeaderBytes) return FrameError::kTruncatedHeader;
  if (Load32(data) != kFrameMagic) return FrameError::kBadMagic;
  if (data[4] != kFrameVersion) return FrameError::kBadVersion;
  const uint32_t payload_len = Load32(data + 24);
  if (payload_len > kMaxFramePayload) return FrameError::kBadLength;
  // Past this point the framing itself is trustworthy, so frame_size is
  // reported even for a bad type byte: a stream reader can skip exactly
  // this frame and stay synchronized.
  *frame_size = kFrameHeaderBytes + payload_len;
  if (data[5] >= kNumMessageTypes) return FrameError::kBadType;
  return FrameError::kOk;
}

DecodedFrame DecodeFrame(const uint8_t* data, size_t size) {
  DecodedFrame out;
  size_t frame_size = 0;
  out.error = PeekFrameSize(data, size, &frame_size);
  out.frame_size = frame_size;
  if (out.error != FrameError::kOk) return out;
  const uint32_t payload_len = Load32(data + 24);
  if (size < frame_size) {
    out.error = FrameError::kTruncatedPayload;
    return out;
  }
  const uint32_t want_crc = Load32(data + 28);
  if (Crc32cExtend(Crc32c(data, 28), data + kFrameHeaderBytes,
                   payload_len) != want_crc) {
    out.error = FrameError::kBadCrc;
    return out;
  }
  out.stream_epoch = Load16(data + 6);
  out.msg.type = static_cast<MessageType>(data[5]);
  out.msg.from = Load32(data + 8);
  out.msg.to = Load32(data + 12);
  out.msg.seq = Load64(data + 16);
  Reader r(data + kFrameHeaderBytes, payload_len);
  if (!DecodePayload(r, out.msg.type, &out.msg.payload)) {
    out.error = FrameError::kBadPayload;
    out.msg = Message{};
  }
  return out;
}

}  // namespace radd
