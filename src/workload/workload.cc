#include "workload/workload.h"

#include <cassert>
#include <fstream>
#include <map>
#include <sstream>

namespace radd {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config,
                                     uint64_t seed)
    : config_(config),
      rng_(seed),
      block_picker_(config.blocks_per_member, config.zipf_theta, &rng_) {
  assert(config.record_size <= config.block_size);
}

Operation WorkloadGenerator::Next() {
  Operation op;
  op.kind = rng_.Bernoulli(config_.read_fraction) ? Operation::Kind::kRead
                                                  : Operation::Kind::kUpdate;
  op.member = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(config_.num_homes())));
  op.block = block_picker_.Next();
  if (op.kind == Operation::Kind::kUpdate) {
    size_t slots = config_.block_size / config_.record_size;
    op.record_offset = config_.record_size * rng_.Uniform(slots);
    op.record_size = config_.record_size;
  }
  return op;
}

std::vector<Operation> WorkloadGenerator::Generate(size_t n) {
  std::vector<Operation> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

BufferPoolModel::BufferPoolModel(size_t block_size, int flush_after)
    : block_size_(block_size), flush_after_(flush_after) {
  assert(flush_after >= 1);
}

std::optional<BufferPoolModel::Flush> BufferPoolModel::ApplyUpdate(
    const Operation& op, const std::vector<uint8_t>& payload,
    const Block& current_disk_contents) {
  assert(op.kind == Operation::Kind::kUpdate);
  assert(payload.size() == op.record_size);
  auto key = std::make_pair(op.member, op.block);
  auto it = pool_.find(key);
  if (it == pool_.end()) {
    Entry e;
    e.old_contents = current_disk_contents;
    e.new_contents = current_disk_contents;
    it = pool_.emplace(key, std::move(e)).first;
  }
  Entry& e = it->second;
  Status st = e.new_contents.WriteAt(op.record_offset, payload.data(),
                                     payload.size());
  (void)st;
  assert(st.ok());
  ++e.updates;
  if (e.updates < flush_after_) return std::nullopt;
  Flush f{op.member, op.block, std::move(e.old_contents),
          std::move(e.new_contents)};
  pool_.erase(it);
  return f;
}

std::vector<BufferPoolModel::Flush> BufferPoolModel::DrainAll() {
  std::vector<Flush> out;
  for (auto& [key, e] : pool_) {
    out.push_back(Flush{key.first, key.second, std::move(e.old_contents),
                        std::move(e.new_contents)});
  }
  pool_.clear();
  return out;
}

std::string TraceToString(const std::vector<Operation>& trace) {
  std::ostringstream out;
  for (const Operation& op : trace) {
    if (op.IsRead()) {
      out << "R " << op.member << " " << op.block << "\n";
    } else {
      out << "U " << op.member << " " << op.block << " " << op.record_offset
          << " " << op.record_size << "\n";
    }
  }
  return out.str();
}

Result<std::vector<Operation>> TraceFromString(const std::string& text) {
  std::vector<Operation> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    Operation op;
    if (!(ls >> kind >> op.member >> op.block)) {
      return Status::InvalidArgument("malformed trace line " +
                                     std::to_string(lineno));
    }
    if (kind == 'R') {
      op.kind = Operation::Kind::kRead;
    } else if (kind == 'U') {
      op.kind = Operation::Kind::kUpdate;
      if (!(ls >> op.record_offset >> op.record_size)) {
        return Status::InvalidArgument("malformed update at line " +
                                       std::to_string(lineno));
      }
    } else {
      return Status::InvalidArgument("unknown op kind '" +
                                     std::string(1, kind) + "' at line " +
                                     std::to_string(lineno));
    }
    out.push_back(op);
  }
  return out;
}

Status SaveTrace(const std::vector<Operation>& trace,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path);
  out << TraceToString(trace);
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + path);
}

Result<std::vector<Operation>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return TraceFromString(buf.str());
}

}  // namespace radd
