// Workload generation (paper §7.4's traffic model) and trace
// record/replay.
//
// The paper's bandwidth analysis assumes record-structured pages: "if
// blocks are 4K in size and records are 100 bytes, then an update of all
// fields of a data record will cause 2.5 percent of the block to be
// changed", with locality such that "the average block [is] changed four
// times in memory before it is returned to disk".
//
// A WorkloadGenerator emits logical operations against (member, block)
// addresses; a BufferPoolModel folds consecutive record updates to the
// same block into one disk write, reproducing the locality factor.

#ifndef RADD_WORKLOAD_WORKLOAD_H_
#define RADD_WORKLOAD_WORKLOAD_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/block.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/uid.h"

namespace radd {

/// One logical operation.
struct Operation {
  enum class Kind { kRead, kUpdate };
  Kind kind = Kind::kRead;
  /// Group member whose data is addressed.
  int member = 0;
  /// Data block index at that member.
  BlockNum block = 0;
  /// For updates: the record touched within the block.
  size_t record_offset = 0;
  size_t record_size = 0;

  bool IsRead() const { return kind == Kind::kRead; }
};

/// Parameters of the generated stream.
struct WorkloadConfig {
  /// Fraction of operations that are reads. §7.4 uses 1/2; Figure 7's
  /// summary uses 2/3 ("reads happen twice as frequently as writes").
  double read_fraction = 0.5;
  /// Zipf skew over blocks (0 = uniform).
  double zipf_theta = 0.0;
  /// Record size within a block (the paper's 100 bytes).
  size_t record_size = 100;
  int num_members = 10;
  BlockNum blocks_per_member = 64;
  size_t block_size = Block::kDefaultSize;
  /// §4 sharding degree of the target. With groups == 1 (default) the
  /// stream addresses `num_members` homes directly. With groups > 1 the
  /// target is a multi-group volume: `num_members` is the group width
  /// (G+2) and homes are drawn over the volume's G+1+groups sites, with
  /// `blocks_per_member` blocks addressed per site.
  int groups = 1;

  /// Number of homes the stream draws from (sites of the §4 volume).
  int num_homes() const {
    return groups == 1 ? num_members : num_members - 1 + groups;
  }
};

/// Deterministic operation stream.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config, uint64_t seed);

  Operation Next();

  /// Generates a whole trace.
  std::vector<Operation> Generate(size_t n);

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
  ZipfGenerator block_picker_;
};

/// Write-back buffer pool model for the §7.4 locality argument: an updated
/// block stays in memory and absorbs further updates until `flush_after`
/// distinct updates have hit it (the paper's "changed four times in memory
/// before it is returned to disk"), at which point one physical write (and
/// one parity delta covering all four updates) is emitted.
class BufferPoolModel {
 public:
  BufferPoolModel(size_t block_size, int flush_after);

  struct Flush {
    int member;
    BlockNum block;
    Block old_contents;  ///< contents when the block entered the pool
    Block new_contents;  ///< contents being flushed
  };

  /// Applies one update; returns a Flush when the block's dirty count
  /// reaches the threshold. `payload` supplies the record's new bytes
  /// (sized op.record_size).
  std::optional<Flush> ApplyUpdate(const Operation& op,
                                   const std::vector<uint8_t>& payload,
                                   const Block& current_disk_contents);

  /// Drains every dirty block (end of run).
  std::vector<Flush> DrainAll();

  size_t dirty_blocks() const { return pool_.size(); }

 private:
  struct Entry {
    Block old_contents{0};
    Block new_contents{0};
    int updates = 0;
  };
  size_t block_size_;
  int flush_after_;
  std::map<std::pair<int, BlockNum>, Entry> pool_;
};

/// Text (de)serialization of traces, one op per line:
///   R <member> <block>
///   U <member> <block> <offset> <size>
std::string TraceToString(const std::vector<Operation>& trace);
Result<std::vector<Operation>> TraceFromString(const std::string& text);
Status SaveTrace(const std::vector<Operation>& trace,
                 const std::string& path);
Result<std::vector<Operation>> LoadTrace(const std::string& path);

}  // namespace radd

#endif  // RADD_WORKLOAD_WORKLOAD_H_
