#include "txn/transaction.h"

namespace radd {

TxnId TransactionManager::Begin() {
  TxnId id = store_->Begin();
  active_.insert(id);
  return id;
}

Status TransactionManager::Lock(TxnId txn, BlockNum page, LockMode mode) {
  if (active_.count(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  LockKey key{lock_site_, page};
  switch (locks_->Acquire(txn, key, mode)) {
    case LockResult::kGranted:
      return Status::OK();
    case LockResult::kWait:
      return Status::LockConflict("would wait for page " +
                                  std::to_string(page));
    case LockResult::kAbort: {
      // Wait-die: the younger requester dies. Roll back now so its locks
      // and effects are gone when the caller sees the status.
      Status st = Abort(txn);
      (void)st;
      return Status::Aborted("wait-die: older transaction holds page " +
                             std::to_string(page));
    }
  }
  return Status::Internal("unreachable");
}

Result<Block> TransactionManager::Read(TxnId txn, BlockNum page) {
  RADD_RETURN_NOT_OK(Lock(txn, page, LockMode::kShared));
  return store_->Read(txn, page);
}

Status TransactionManager::Update(TxnId txn, const PageUpdate& update) {
  RADD_RETURN_NOT_OK(Lock(txn, update.page, LockMode::kExclusive));
  return store_->Update(txn, update);
}

Status TransactionManager::Commit(TxnId txn) {
  if (active_.erase(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  RADD_RETURN_NOT_OK(store_->Commit(txn));
  granted_ = locks_->ReleaseAll(txn);
  return Status::OK();
}

Status TransactionManager::Abort(TxnId txn) {
  if (active_.erase(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  Status st = store_->Abort(txn);
  granted_ = locks_->ReleaseAll(txn);
  return st;
}

}  // namespace radd
