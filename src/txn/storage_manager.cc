#include "txn/storage_manager.h"

#include <cassert>
#include <cstring>

namespace radd {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}
bool GetU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= uint32_t(in[*pos + i]) << (8 * i);
  *pos += 4;
  return true;
}
bool GetU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= uint64_t(in[*pos + i]) << (8 * i);
  *pos += 8;
  return true;
}

}  // namespace

// ===========================================================================
// WalStorageManager
// ===========================================================================

WalStorageManager::WalStorageManager(RaddGroup* group, int member,
                                     BlockNum log_capacity, BlockNum pages)
    : group_(group),
      member_(member),
      home_site_(group->SiteOfMember(member)),
      log_capacity_(log_capacity),
      pages_(pages) {
  assert(log_capacity + pages <= group->DataBlocksPerMember());
}

void WalStorageManager::Serialize(const LogRecord& r,
                                  std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(r.type));
  PutU64(out, r.txn);
  PutU64(out, r.page);
  PutU32(out, r.offset);
  PutU32(out, static_cast<uint32_t>(r.before.size()));
  out->insert(out->end(), r.before.begin(), r.before.end());
  out->insert(out->end(), r.after.begin(), r.after.end());
}

Result<std::vector<WalStorageManager::LogRecord>>
WalStorageManager::Deserialize(const std::vector<uint8_t>& bytes) {
  std::vector<LogRecord> out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    uint8_t type = bytes[pos];
    if (type == 0) break;  // padding: end of log
    if (type > 3) {
      return Status::DataLoss("corrupt log record type " +
                              std::to_string(type));
    }
    ++pos;
    LogRecord r;
    r.type = static_cast<LogRecord::Type>(type);
    uint64_t txn, page;
    uint32_t offset, len;
    if (!GetU64(bytes, &pos, &txn) || !GetU64(bytes, &pos, &page) ||
        !GetU32(bytes, &pos, &offset) || !GetU32(bytes, &pos, &len)) {
      break;  // truncated tail (lost with the crash): ignore
    }
    if (pos + 2 * size_t{len} > bytes.size()) break;  // truncated images
    r.txn = txn;
    r.page = page;
    r.offset = offset;
    r.before.assign(bytes.begin() + pos, bytes.begin() + pos + len);
    pos += len;
    r.after.assign(bytes.begin() + pos, bytes.begin() + pos + len);
    pos += len;
    out.push_back(std::move(r));
  }
  return out;
}

TxnId WalStorageManager::Begin() {
  TxnId id = next_txn_++;
  active_.insert(id);
  return id;
}

Result<Block> WalStorageManager::ReadPageFromDisk(BlockNum page) {
  OpResult r = group_->Read(home_site_, member_, log_capacity_ + page);
  if (!r.ok()) return r.status;
  return std::move(r.data);
}

Status WalStorageManager::WritePageToDisk(BlockNum page,
                                          const Block& contents) {
  return group_->Write(home_site_, member_, log_capacity_ + page, contents)
      .status;
}

Status WalStorageManager::Update(TxnId txn, const PageUpdate& update) {
  if (active_.count(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  if (update.page >= pages_) {
    return Status::InvalidArgument("page out of range");
  }
  auto it = buffer_pool_.find(update.page);
  if (it == buffer_pool_.end()) {
    RADD_ASSIGN_OR_RETURN(Block b, ReadPageFromDisk(update.page));
    it = buffer_pool_.emplace(update.page, std::move(b)).first;
  }
  Block& page = it->second;
  if (update.offset + update.bytes.size() > page.size()) {
    return Status::InvalidArgument("update overruns page");
  }
  LogRecord r;
  r.type = LogRecord::Type::kUpdate;
  r.txn = txn;
  r.page = update.page;
  r.offset = static_cast<uint32_t>(update.offset);
  r.before.assign(page.data() + update.offset,
                  page.data() + update.offset + update.bytes.size());
  r.after = update.bytes;
  RADD_RETURN_NOT_OK(AppendToLog(r));  // WAL: log before the page changes
  return page.WriteAt(update.offset, update.bytes.data(),
                      update.bytes.size());
}

Status WalStorageManager::AppendToLog(const LogRecord& r) {
  Serialize(r, &log_tail_);
  return Status::OK();
}

Status WalStorageManager::FlushLog() {
  const size_t block_size = group_->config().block_size;
  size_t blocks_needed = (log_tail_.size() + block_size - 1) / block_size;
  if (blocks_needed > log_capacity_) {
    return Status::Unavailable("log full");
  }
  // Rewrite every block whose content changed since the last flush; for
  // simplicity we rewrite from the last fully-durable block onward. One
  // staging buffer serves the whole flush.
  Block blk(block_size);
  for (BlockNum b = log_next_; b < blocks_needed; ++b) {
    size_t start = b * block_size;
    size_t n = std::min(block_size, log_tail_.size() - start);
    if (n < block_size) blk.Clear();  // zero the tail of a partial block
    RADD_RETURN_NOT_OK(blk.WriteAt(0, log_tail_.data() + start, n));
    OpResult w = group_->Write(home_site_, member_, b, blk);
    if (!w.ok()) return w.status;
  }
  // The last (possibly partial) block stays rewritable.
  log_next_ = blocks_needed == 0 ? 0 : blocks_needed - 1;
  return Status::OK();
}

Status WalStorageManager::Commit(TxnId txn) {
  if (active_.erase(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  LogRecord r;
  r.type = LogRecord::Type::kCommit;
  r.txn = txn;
  RADD_RETURN_NOT_OK(AppendToLog(r));
  return FlushLog();  // force the log at commit
}

Status WalStorageManager::Abort(TxnId txn) {
  if (active_.erase(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  // Undo in memory / on disk from the volatile log image (reverse order).
  Result<std::vector<LogRecord>> records = Deserialize(log_tail_);
  if (!records.ok()) return records.status();
  for (auto it = records->rbegin(); it != records->rend(); ++it) {
    if (it->txn != txn || it->type != LogRecord::Type::kUpdate) continue;
    auto pooled = buffer_pool_.find(it->page);
    if (pooled != buffer_pool_.end()) {
      RADD_RETURN_NOT_OK(pooled->second.WriteAt(
          it->offset, it->before.data(), it->before.size()));
    } else {
      RADD_ASSIGN_OR_RETURN(Block b, ReadPageFromDisk(it->page));
      RADD_RETURN_NOT_OK(
          b.WriteAt(it->offset, it->before.data(), it->before.size()));
      RADD_RETURN_NOT_OK(WritePageToDisk(it->page, b));
    }
  }
  LogRecord r;
  r.type = LogRecord::Type::kAbort;
  r.txn = txn;
  return AppendToLog(r);
}

Result<Block> WalStorageManager::Read(TxnId txn, BlockNum page) {
  (void)txn;
  if (page >= pages_) return Status::InvalidArgument("page out of range");
  auto it = buffer_pool_.find(page);
  if (it != buffer_pool_.end()) return it->second;
  return ReadPageFromDisk(page);
}

Result<Block> WalStorageManager::ReadCommitted(BlockNum page) {
  // Committed state = buffered state minus active transactions' updates;
  // for simplicity (callers serialize with locks) the buffered state of a
  // page not touched by an active txn is the committed state.
  return Read(0, page);
}

Status WalStorageManager::FlushPages() {
  RADD_RETURN_NOT_OK(FlushLog());  // WAL rule: log hits disk first
  for (auto& [page, contents] : buffer_pool_) {
    RADD_RETURN_NOT_OK(WritePageToDisk(page, contents));
  }
  buffer_pool_.clear();
  return Status::OK();
}

void WalStorageManager::CrashVolatile() {
  // The durable prefix of the log lives in the RADD; everything else is
  // gone. (log_next_ tracks the durable block count, conservatively kept:
  // a real system would recover it by scanning — which Recover() does.)
  active_.clear();
  buffer_pool_.clear();
  log_tail_.clear();
}

Result<OpCounts> WalStorageManager::Recover(SiteId client) {
  OpCounts counts;
  // 1. Scan the log from block 0 until a parse terminator.
  std::vector<uint8_t> stream;
  std::vector<LogRecord> records;
  for (BlockNum b = 0; b < log_capacity_; ++b) {
    OpResult r = group_->Read(client, member_, b);
    if (!r.ok()) return r.status;
    counts += r.counts;
    bool all_zero = r.data.IsZero();
    stream.insert(stream.end(), r.data.bytes().begin(),
                  r.data.bytes().end());
    if (all_zero) break;
  }
  RADD_ASSIGN_OR_RETURN(records, Deserialize(stream));

  // Rebuild the durable log image so post-recovery appends continue after
  // the surviving records.
  log_tail_.clear();
  for (const LogRecord& r : records) Serialize(r, &log_tail_);
  log_next_ = log_tail_.empty()
                  ? 0
                  : (log_tail_.size() - 1) / group_->config().block_size;

  // 2. Winners and losers.
  std::set<TxnId> winners, started;
  TxnId max_txn = 0;
  for (const LogRecord& r : records) {
    started.insert(r.txn);
    max_txn = std::max(max_txn, r.txn);
    if (r.type == LogRecord::Type::kCommit) winners.insert(r.txn);
    if (r.type == LogRecord::Type::kAbort) started.erase(r.txn);
  }
  next_txn_ = max_txn + 1;

  // 3. Redo winners in log order (repeating history for committed work).
  for (const LogRecord& r : records) {
    if (r.type != LogRecord::Type::kUpdate || winners.count(r.txn) == 0) {
      continue;
    }
    OpResult pg = group_->Read(client, member_, log_capacity_ + r.page);
    if (!pg.ok()) return pg.status;
    counts += pg.counts;
    RADD_RETURN_NOT_OK(
        pg.data.WriteAt(r.offset, r.after.data(), r.after.size()));
    OpResult w =
        group_->Write(client, member_, log_capacity_ + r.page, pg.data);
    if (!w.ok()) return w.status;
    counts += w.counts;
  }
  // 4. Undo losers in reverse order.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != LogRecord::Type::kUpdate || winners.count(it->txn) > 0 ||
        started.count(it->txn) == 0) {
      continue;
    }
    OpResult pg = group_->Read(client, member_, log_capacity_ + it->page);
    if (!pg.ok()) return pg.status;
    counts += pg.counts;
    RADD_RETURN_NOT_OK(
        pg.data.WriteAt(it->offset, it->before.data(), it->before.size()));
    OpResult w =
        group_->Write(client, member_, log_capacity_ + it->page, pg.data);
    if (!w.ok()) return w.status;
    counts += w.counts;
  }
  return counts;
}

// ===========================================================================
// NoOverwriteStorageManager
// ===========================================================================

NoOverwriteStorageManager::NoOverwriteStorageManager(RaddGroup* group,
                                                     int member,
                                                     BlockNum pages)
    : group_(group),
      member_(member),
      home_site_(group->SiteOfMember(member)),
      pages_(pages),
      capacity_(group->DataBlocksPerMember()) {
  assert(1 + 2 * pages <= capacity_ &&
         "need room for the root and at least two versions per page");
  size_t root_bytes = 8 + 4 + 8 * static_cast<size_t>(pages);
  assert(root_bytes <= group->config().block_size &&
         "page table must fit the root block");
  (void)root_bytes;
  table_.assign(static_cast<size_t>(pages), 0);
}

Result<Block> NoOverwriteStorageManager::ReadPhysical(BlockNum block) {
  OpResult r = group_->Read(home_site_, member_, block);
  if (!r.ok()) return r.status;
  return std::move(r.data);
}

Status NoOverwriteStorageManager::WritePhysical(BlockNum block,
                                                const Block& contents) {
  return group_->Write(home_site_, member_, block, contents).status;
}

Status NoOverwriteStorageManager::WriteRoot() {
  std::vector<uint8_t> bytes;
  PutU64(&bytes, ++epoch_);
  PutU32(&bytes, static_cast<uint32_t>(pages_));
  for (BlockNum b : table_) PutU64(&bytes, b);
  Block root(group_->config().block_size);
  RADD_RETURN_NOT_OK(root.WriteAt(0, bytes.data(), bytes.size()));
  return WritePhysical(0, root);
}

Status NoOverwriteStorageManager::LoadRoot() {
  RADD_ASSIGN_OR_RETURN(Block root, ReadPhysical(0));
  const std::vector<uint8_t>& bytes = root.bytes();
  size_t pos = 0;
  uint64_t epoch;
  uint32_t n;
  if (!GetU64(bytes, &pos, &epoch) || !GetU32(bytes, &pos, &n)) {
    return Status::DataLoss("corrupt root");
  }
  epoch_ = epoch;
  table_.assign(static_cast<size_t>(pages_), 0);
  for (uint32_t i = 0; i < n && i < pages_; ++i) {
    uint64_t phys;
    if (!GetU64(bytes, &pos, &phys)) return Status::DataLoss("corrupt root");
    table_[i] = phys;
  }
  return Status::OK();
}

BlockNum NoOverwriteStorageManager::AllocateBlock() {
  auto in_use = [this](BlockNum b) {
    for (BlockNum t : table_) {
      if (t == b) return true;
    }
    for (const auto& [txn, st] : active_) {
      for (const auto& [page, phys] : st.shadow) {
        if (phys == b) return true;
      }
    }
    return false;
  };
  for (BlockNum tries = 0; tries < capacity_; ++tries) {
    BlockNum b = alloc_cursor_;
    alloc_cursor_ = alloc_cursor_ + 1 < capacity_ ? alloc_cursor_ + 1 : 1;
    if (!in_use(b)) return b;
  }
  return 0;  // exhausted (callers surface Unavailable)
}

TxnId NoOverwriteStorageManager::Begin() {
  TxnId id = next_txn_++;
  active_[id] = TxnState{};
  return id;
}

Status NoOverwriteStorageManager::Update(TxnId txn,
                                         const PageUpdate& update) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::InvalidArgument("txn not active");
  if (update.page >= pages_) {
    return Status::InvalidArgument("page out of range");
  }
  TxnState& st = it->second;
  // Current contents: the txn's shadow version, else the committed one.
  Block contents(group_->config().block_size);
  auto sh = st.shadow.find(update.page);
  if (sh != st.shadow.end()) {
    RADD_ASSIGN_OR_RETURN(contents, ReadPhysical(sh->second));
  } else if (table_[update.page] != 0) {
    RADD_ASSIGN_OR_RETURN(contents, ReadPhysical(table_[update.page]));
  }
  RADD_RETURN_NOT_OK(contents.WriteAt(update.offset, update.bytes.data(),
                                      update.bytes.size()));
  BlockNum target;
  if (sh != st.shadow.end()) {
    target = sh->second;  // private uncommitted version: reuse in place
  } else {
    target = AllocateBlock();
    if (target == 0) return Status::Unavailable("version space exhausted");
    st.shadow[update.page] = target;
  }
  return WritePhysical(target, contents);
}

Status NoOverwriteStorageManager::Commit(TxnId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::InvalidArgument("txn not active");
  for (const auto& [page, phys] : it->second.shadow) {
    table_[page] = phys;
  }
  active_.erase(it);
  // One atomic root write makes the whole transaction durable.
  return WriteRoot();
}

Status NoOverwriteStorageManager::Abort(TxnId txn) {
  if (active_.erase(txn) == 0) {
    return Status::InvalidArgument("txn not active");
  }
  // Shadow blocks simply become garbage; nothing to undo.
  return Status::OK();
}

Result<Block> NoOverwriteStorageManager::Read(TxnId txn, BlockNum page) {
  if (page >= pages_) return Status::InvalidArgument("page out of range");
  auto it = active_.find(txn);
  if (it != active_.end()) {
    auto sh = it->second.shadow.find(page);
    if (sh != it->second.shadow.end()) return ReadPhysical(sh->second);
  }
  return ReadCommitted(page);
}

Result<Block> NoOverwriteStorageManager::ReadCommitted(BlockNum page) {
  if (page >= pages_) return Status::InvalidArgument("page out of range");
  if (table_[page] == 0) return Block(group_->config().block_size);
  return ReadPhysical(table_[page]);
}

void NoOverwriteStorageManager::CrashVolatile() {
  active_.clear();
  table_.assign(static_cast<size_t>(pages_), 0);
  epoch_ = 0;
  alloc_cursor_ = 1;
}

Result<OpCounts> NoOverwriteStorageManager::Recover(SiteId client) {
  // "There is no concept of processing a log at recovery time": a single
  // root read restores the committed state.
  OpResult r = group_->Read(client, member_, 0);
  if (!r.ok()) return r.status;
  if (!r.data.IsZero()) {
    RADD_RETURN_NOT_OK(LoadRoot());
  }
  return r.counts;
}

}  // namespace radd
