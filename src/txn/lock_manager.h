// Dynamic locking for RADD concurrency control (paper §3.3).
//
// "We will assume that dynamic locking is employed. Hence, reads and
// writes set the appropriate locks on each data block that they read or
// write. If a site is down, then read and write locks are set on the spare
// block which exists at some site which is up. Parity blocks are never
// locked."
//
// Deadlocks are prevented with wait-die: a transaction may wait only for
// younger transactions' locks; waiting on an older holder aborts the
// requester. Transaction ids are issued monotonically, so the id doubles
// as the timestamp.

#ifndef RADD_TXN_LOCK_MANAGER_H_
#define RADD_TXN_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"

namespace radd {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

/// A lockable resource: a physical block at a site (data or spare).
struct LockKey {
  SiteId site = 0;
  BlockNum block = 0;
  friend auto operator<=>(const LockKey&, const LockKey&) = default;
};

/// Outcome of a lock request.
enum class LockResult {
  kGranted,
  /// Conflict with a younger holder: the requester queues (wait-die
  /// "wait" arm). It will be granted when the holders release.
  kWait,
  /// Conflict with an older holder: the requester must abort (the "die"
  /// arm).
  kAbort,
};

/// A plain shared/exclusive lock table with FIFO wait queues and wait-die
/// deadlock prevention. Not thread-safe (single-threaded simulation).
class LockManager {
 public:
  /// Requests `mode` on `key` for `txn`. Re-entrant: a holder re-asking
  /// for a mode it already covers is granted; a shared holder asking for
  /// exclusive is upgraded when it is the sole holder, otherwise treated
  /// as a normal conflicting request.
  LockResult Acquire(TxnId txn, LockKey key, LockMode mode);

  /// Releases one lock; returns the transactions granted as a result (in
  /// grant order) so the caller can resume them.
  std::vector<TxnId> Release(TxnId txn, LockKey key);

  /// Releases everything `txn` holds or waits for.
  std::vector<TxnId> ReleaseAll(TxnId txn);

  bool Holds(TxnId txn, LockKey key, LockMode mode) const;
  /// Locks currently held by `txn`.
  std::vector<LockKey> HeldBy(TxnId txn) const;
  size_t LockedKeys() const;

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
  };
  struct Entry {
    LockMode mode = LockMode::kShared;
    std::set<TxnId> holders;
    std::deque<Waiter> waiters;
  };
  /// Grants as many queued waiters as compatibility allows.
  void Promote(const LockKey& key, Entry* e, std::vector<TxnId>* granted);

  std::map<LockKey, Entry> table_;
};

}  // namespace radd

#endif  // RADD_TXN_LOCK_MANAGER_H_
