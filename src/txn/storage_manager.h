// The two storage-manager architectures of paper §3.4, both running their
// pages on a RADD group.
//
//  * WalStorageManager — classic write-ahead logging [GRAY78, HAER83]:
//    updates are buffered (steal/no-force), physiological log records are
//    forced at commit, and crash recovery runs the standard two-phase
//    (redo committed / undo uncommitted) pass over the log. The paper's
//    §3.4 point: after a site failure the log itself must be read through
//    RADD reconstruction, costing G remote reads per block — so WAL + RADD
//    only pays off for disasters and disk failures.
//
//  * NoOverwriteStorageManager — POSTGRES-style [STON87] shadow paging:
//    page writes always go to fresh blocks, commit atomically installs a
//    new page-table root, and there is no recovery pass at all — which is
//    what makes RADD effective for plain site failures too.
//
// Both expose the same page API so the §3.4 benchmark can compare
// like-for-like.

#ifndef RADD_TXN_STORAGE_MANAGER_H_
#define RADD_TXN_STORAGE_MANAGER_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/radd.h"
#include "txn/lock_manager.h"

namespace radd {

/// A page-granular update: new bytes for a byte range of a page.
struct PageUpdate {
  BlockNum page = 0;
  size_t offset = 0;
  std::vector<uint8_t> bytes;
};

/// Common page-store interface.
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  virtual TxnId Begin() = 0;
  virtual Status Update(TxnId txn, const PageUpdate& update) = 0;
  virtual Status Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;
  /// Reads a page as seen by `txn` (its own writes, else last committed).
  virtual Result<Block> Read(TxnId txn, BlockNum page) = 0;
  /// Reads the last committed contents of a page.
  virtual Result<Block> ReadCommitted(BlockNum page) = 0;

  /// Simulates a crash of the manager's host: all volatile state vanishes.
  virtual void CrashVolatile() = 0;
  /// Restart-time recovery. For WAL this is the two-phase log pass; for
  /// no-overwrite it only re-reads the root. Returns the physical ops the
  /// pass performed through the RADD (which is where §3.4's G-remote-read
  /// amplification shows up when the home site is degraded).
  virtual Result<OpCounts> Recover(SiteId client) = 0;

  /// Number of pages the manager exposes.
  virtual BlockNum num_pages() const = 0;
};

/// WAL over a RADD member. Layout of the member's data blocks:
///   [0, log_capacity)                   — the log
///   [log_capacity, log_capacity+pages)  — data pages
class WalStorageManager : public StorageManager {
 public:
  WalStorageManager(RaddGroup* group, int member, BlockNum log_capacity,
                    BlockNum pages);

  TxnId Begin() override;
  Status Update(TxnId txn, const PageUpdate& update) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  Result<Block> Read(TxnId txn, BlockNum page) override;
  Result<Block> ReadCommitted(BlockNum page) override;
  void CrashVolatile() override;
  Result<OpCounts> Recover(SiteId client) override;
  BlockNum num_pages() const override { return pages_; }

  /// Flushes dirty buffered pages to the RADD (steal). Called by tests to
  /// create redo/undo work before a crash.
  Status FlushPages();
  /// Number of log blocks written so far.
  BlockNum log_blocks_used() const { return log_next_; }

 private:
  struct LogRecord {
    enum class Type : uint8_t { kUpdate = 1, kCommit = 2, kAbort = 3 };
    Type type = Type::kUpdate;
    TxnId txn = 0;
    BlockNum page = 0;
    uint32_t offset = 0;
    std::vector<uint8_t> before;
    std::vector<uint8_t> after;
  };
  static void Serialize(const LogRecord& r, std::vector<uint8_t>* out);
  static Result<std::vector<LogRecord>> Deserialize(
      const std::vector<uint8_t>& bytes);

  Status AppendToLog(const LogRecord& r);
  Status FlushLog();
  Result<Block> ReadPageFromDisk(BlockNum page);
  Status WritePageToDisk(BlockNum page, const Block& contents);

  RaddGroup* group_;
  int member_;
  SiteId home_site_;
  BlockNum log_capacity_;
  BlockNum pages_;

  // --- volatile state -----------------------------------------------------
  TxnId next_txn_ = 1;
  std::set<TxnId> active_;
  std::map<BlockNum, Block> buffer_pool_;  // dirty pages (steal/no-force)
  std::vector<uint8_t> log_tail_;          // unflushed log bytes
  BlockNum log_next_ = 0;                  // next log block to write
};

/// Shadow paging over a RADD member. Layout of the member's data blocks:
///   0                 — the root (serialized page table + epoch)
///   [1, capacity)     — page versions, allocated round-robin
class NoOverwriteStorageManager : public StorageManager {
 public:
  NoOverwriteStorageManager(RaddGroup* group, int member, BlockNum pages);

  TxnId Begin() override;
  Status Update(TxnId txn, const PageUpdate& update) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  Result<Block> Read(TxnId txn, BlockNum page) override;
  Result<Block> ReadCommitted(BlockNum page) override;
  void CrashVolatile() override;
  Result<OpCounts> Recover(SiteId client) override;
  BlockNum num_pages() const override { return pages_; }

 private:
  Result<Block> ReadPhysical(BlockNum block);
  Status WritePhysical(BlockNum block, const Block& contents);
  /// Serializes table_ + epoch into the root block; atomic install.
  Status WriteRoot();
  Status LoadRoot();
  BlockNum AllocateBlock();

  RaddGroup* group_;
  int member_;
  SiteId home_site_;
  BlockNum pages_;
  BlockNum capacity_;

  // --- volatile caches of durable state ------------------------------------
  uint64_t epoch_ = 0;
  std::vector<BlockNum> table_;  // committed page -> physical block (0=none)
  BlockNum alloc_cursor_ = 1;

  TxnId next_txn_ = 1;
  struct TxnState {
    std::map<BlockNum, BlockNum> shadow;  // page -> fresh physical block
  };
  std::map<TxnId, TxnState> active_;
};

}  // namespace radd

#endif  // RADD_TXN_STORAGE_MANAGER_H_
