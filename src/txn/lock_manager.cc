#include "txn/lock_manager.h"

#include <algorithm>

namespace radd {

LockResult LockManager::Acquire(TxnId txn, LockKey key, LockMode mode) {
  Entry& e = table_[key];

  if (e.holders.count(txn) > 0) {
    if (e.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return LockResult::kGranted;  // already covered
    }
    // Shared -> exclusive upgrade.
    if (e.holders.size() == 1) {
      e.mode = LockMode::kExclusive;
      return LockResult::kGranted;
    }
    // Fall through: conflicts with the co-holders.
  }

  bool compatible =
      e.holders.empty() ||
      (e.mode == LockMode::kShared && mode == LockMode::kShared &&
       e.waiters.empty());
  if (compatible) {
    e.mode = e.holders.empty() ? mode : e.mode;
    e.holders.insert(txn);
    return LockResult::kGranted;
  }

  // Wait-die: wait only if older (smaller id) than every conflicting
  // holder; otherwise die.
  for (TxnId holder : e.holders) {
    if (holder != txn && holder < txn) return LockResult::kAbort;
  }
  e.waiters.push_back(Waiter{txn, mode});
  return LockResult::kWait;
}

void LockManager::Promote(const LockKey& key, Entry* e,
                          std::vector<TxnId>* granted) {
  (void)key;
  while (!e->waiters.empty()) {
    const Waiter& w = e->waiters.front();
    bool compatible = e->holders.empty() ||
                      (e->mode == LockMode::kShared &&
                       w.mode == LockMode::kShared) ||
                      // sole-holder upgrade
                      (e->holders.size() == 1 &&
                       e->holders.count(w.txn) > 0);
    if (!compatible) break;
    if (e->holders.count(w.txn) > 0) {
      e->mode = LockMode::kExclusive;  // upgrade
    } else {
      e->mode = e->holders.empty() ? w.mode : e->mode;
      e->holders.insert(w.txn);
    }
    granted->push_back(w.txn);
    e->waiters.pop_front();
  }
}

std::vector<TxnId> LockManager::Release(TxnId txn, LockKey key) {
  std::vector<TxnId> granted;
  auto it = table_.find(key);
  if (it == table_.end()) return granted;
  Entry& e = it->second;
  e.holders.erase(txn);
  std::erase_if(e.waiters, [txn](const Waiter& w) { return w.txn == txn; });
  Promote(key, &e, &granted);
  if (e.holders.empty() && e.waiters.empty()) table_.erase(it);
  return granted;
}

std::vector<TxnId> LockManager::ReleaseAll(TxnId txn) {
  std::vector<TxnId> granted;
  for (auto it = table_.begin(); it != table_.end();) {
    Entry& e = it->second;
    bool involved = e.holders.count(txn) > 0;
    e.holders.erase(txn);
    size_t before = e.waiters.size();
    std::erase_if(e.waiters,
                  [txn](const Waiter& w) { return w.txn == txn; });
    involved = involved || e.waiters.size() != before;
    if (involved) Promote(it->first, &e, &granted);
    if (e.holders.empty() && e.waiters.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  return granted;
}

bool LockManager::Holds(TxnId txn, LockKey key, LockMode mode) const {
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  const Entry& e = it->second;
  if (e.holders.count(txn) == 0) return false;
  return mode == LockMode::kShared || e.mode == LockMode::kExclusive;
}

std::vector<LockKey> LockManager::HeldBy(TxnId txn) const {
  std::vector<LockKey> out;
  for (const auto& [key, e] : table_) {
    if (e.holders.count(txn) > 0) out.push_back(key);
  }
  return out;
}

size_t LockManager::LockedKeys() const { return table_.size(); }

}  // namespace radd
