#include "txn/commit.h"

namespace radd {

CommitOutcome DistributedTxnCoordinator::Run(
    CommitProtocol protocol, const std::vector<SlaveWork>& work,
    std::optional<int> crash_after_done) {
  CommitOutcome out;

  // Round 1: master ships each slave its commands; each slave performs its
  // writes — every one of which sends its parity delta before the slave
  // replies `done` (steps W1-W4) — and answers.
  ++out.rounds;
  for (const SlaveWork& w : work) {
    SiteId slave = group_->SiteOfMember(w.member);
    ++out.messages;  // master -> slave: commands
    for (const auto& [block, data] : w.writes) {
      OpResult r = group_->Write(slave, w.member, block, data);
      if (!r.ok()) {
        out.status = r.status;
        return out;
      }
      out.counts += r.counts;
    }
    ++out.messages;  // slave -> master: done
    if (crash_after_done && *crash_after_done == w.member) {
      // The slave dies right after `done` — before any prepare/commit
      // message can reach it. Its buffered writes must nevertheless be
      // recoverable through the parity updates it already sent.
      Status st = group_->cluster()->CrashSite(slave);
      if (!st.ok()) {
        out.status = st;
        return out;
      }
    }
  }
  ++out.rounds;  // replies arrive

  if (protocol == CommitProtocol::kTwoPhase) {
    // Prepare round: vote collection.
    ++out.rounds;
    out.messages += 2 * static_cast<int>(work.size());  // prepare + yes
    ++out.rounds;
  }

  // Commit decision broadcast (+acks for 2PC bookkeeping).
  ++out.rounds;
  out.messages += static_cast<int>(work.size());
  if (protocol == CommitProtocol::kTwoPhase) {
    out.messages += static_cast<int>(work.size());  // acks
    ++out.rounds;
  }

  out.status = Status::OK();
  return out;
}

}  // namespace radd
