// TransactionManager — strict two-phase locking on top of a
// StorageManager, completing the §3.3/§3.4 stack: page-granular
// shared/exclusive locks with wait-die deadlock prevention, acquired as
// the transaction touches pages and held to commit/abort.
//
// The manager is cooperative (the simulation is single-threaded): a lock
// conflict surfaces as a status instead of blocking —
//   * LockConflict("would wait")  — the requester queued behind younger
//     holders; retry the operation after other transactions release;
//   * Aborted(...)                — wait-die killed the transaction; it
//     has been rolled back and its locks are gone; start a new one.
// Tests drive interleavings with a round-robin scheduler over these
// statuses.

#ifndef RADD_TXN_TRANSACTION_H_
#define RADD_TXN_TRANSACTION_H_

#include <map>
#include <set>

#include "txn/lock_manager.h"
#include "txn/storage_manager.h"

namespace radd {

/// Strict 2PL transactions over a page store.
class TransactionManager {
 public:
  /// `lock_site` tags this store's pages in the (shared) lock manager so
  /// several managers can coexist on one LockManager.
  TransactionManager(StorageManager* store, LockManager* locks,
                     SiteId lock_site)
      : store_(store), locks_(locks), lock_site_(lock_site) {}

  /// Starts a transaction (ids order wait-die seniority: lower = older).
  TxnId Begin();

  /// Reads `page` under a shared lock.
  Result<Block> Read(TxnId txn, BlockNum page);

  /// Applies `update` under an exclusive lock.
  Status Update(TxnId txn, const PageUpdate& update);

  /// Commits and releases all locks.
  Status Commit(TxnId txn);

  /// Rolls back and releases all locks.
  Status Abort(TxnId txn);

  /// True while the transaction is live (not committed/aborted).
  bool IsActive(TxnId txn) const { return active_.count(txn) > 0; }

  /// Transactions whose queued lock requests were granted by the last
  /// release; they should retry their pending operation.
  const std::vector<TxnId>& recently_granted() const { return granted_; }

 private:
  /// Acquires `mode` on `page` for `txn`, translating wait-die outcomes:
  /// kAbort rolls the transaction back and returns Aborted.
  Status Lock(TxnId txn, BlockNum page, LockMode mode);

  StorageManager* store_;
  LockManager* locks_;
  SiteId lock_site_;
  std::set<TxnId> active_;
  std::vector<TxnId> granted_;
};

}  // namespace radd

#endif  // RADD_TXN_TRANSACTION_H_
