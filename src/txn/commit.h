// Distributed commit over a RADD (paper §6).
//
// The paper's observation: every local write a slave makes is mirrored to
// its parity site before the slave answers `done`, so the slave is already
// *prepared* — its buffered writes survive a crash via RADD reconstruction
// — and a one-phase commit suffices when the network is reliable and only
// single failures occur. This module implements both protocols over a
// RaddGroup, counts their messages/rounds, and lets tests crash a slave
// after `done` to check the recoverability argument.

#ifndef RADD_TXN_COMMIT_H_
#define RADD_TXN_COMMIT_H_

#include <functional>
#include <optional>
#include <map>
#include <vector>

#include "core/radd.h"

namespace radd {

enum class CommitProtocol { kOnePhase, kTwoPhase };

/// One slave's share of the distributed transaction.
struct SlaveWork {
  int member = 0;  ///< group member whose data is written (slave = its site)
  std::vector<std::pair<BlockNum, Block>> writes;
};

/// Outcome and cost of a distributed commit.
struct CommitOutcome {
  Status status;
  /// Point-to-point messages exchanged (master<->slaves), excluding the
  /// RADD parity messages, which are counted in `counts`.
  int messages = 0;
  /// Sequential message rounds (latency proxy).
  int rounds = 0;
  /// Physical I/O performed by the slaves' writes.
  OpCounts counts;

  bool ok() const { return status.ok(); }
};

/// Executes distributed transactions against a RaddGroup.
class DistributedTxnCoordinator {
 public:
  DistributedTxnCoordinator(RaddGroup* group, SiteId master)
      : group_(group), master_(master) {}

  /// Runs the transaction under the given protocol. `crash_after_done`,
  /// when set, crashes that member's site right after it reports done —
  /// before any commit message reaches it — so callers can verify the
  /// writes are still recoverable (the paper's prepared-by-parity
  /// argument).
  CommitOutcome Run(CommitProtocol protocol,
                    const std::vector<SlaveWork>& work,
                    std::optional<int> crash_after_done = std::nullopt);

 private:
  RaddGroup* group_;
  SiteId master_;
};

}  // namespace radd

#endif  // RADD_TXN_COMMIT_H_
