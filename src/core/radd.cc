#include "core/radd.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/gf256.h"

namespace radd {

namespace {
/// Wire overhead per protocol message (headers, block number, UID).
constexpr size_t kMsgHeader = 32;
}  // namespace

RaddGroup::RaddGroup(Cluster* cluster, const RaddConfig& config)
    : cluster_(cluster),
      config_(config),
      map_(MakePlacement(config.placement, config.group_size, config.parities,
                         config.rows)) {
  epoch_ = dynamic_cast<EpochedPlacement*>(map_.get());
  members_.reserve(static_cast<size_t>(map_->num_sites()));
  for (int m = 0; m < map_->num_sites(); ++m) {
    LogicalDrive d;
    d.site = static_cast<SiteId>(m);
    d.first_block = 0;
    d.drive_blocks = config_.rows;
    members_.push_back(d);
  }
}

RaddGroup::RaddGroup(Cluster* cluster, const RaddConfig& config,
                     std::vector<LogicalDrive> members)
    : cluster_(cluster),
      config_(config),
      map_(MakePlacement(config.placement, config.group_size, config.parities,
                         config.rows)),
      members_(std::move(members)) {
  epoch_ = dynamic_cast<EpochedPlacement*>(map_.get());
  Status st = ValidateMembers(*cluster, config_, members_);
  if (!st.ok()) {
    // A malformed member list would address blocks of *other* groups (or
    // fall off the disk) and corrupt data that is not even this group's;
    // refuse to run rather than limp on.
    std::fprintf(stderr, "RaddGroup: invalid member list: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
}

Status RaddGroup::ValidateMembers(const Cluster& cluster,
                                  const RaddConfig& config,
                                  const std::vector<LogicalDrive>& members) {
  const int expect = PlacementGroupWidth(config.placement, config.group_size,
                                         config.parities);
  if (static_cast<int>(members.size()) != expect) {
    return Status::InvalidArgument(
        "group has " + std::to_string(members.size()) +
        " members, needs " + std::to_string(expect) + " for " +
        std::string(PlacementKindName(config.placement.kind)) +
        " placement");
  }
  std::set<SiteId> sites;
  for (size_t m = 0; m < members.size(); ++m) {
    const LogicalDrive& d = members[m];
    if (d.site >= static_cast<SiteId>(cluster.num_sites())) {
      return Status::InvalidArgument("member " + std::to_string(m) +
                                     " names unknown site " +
                                     std::to_string(d.site));
    }
    if (!sites.insert(d.site).second) {
      return Status::InvalidArgument(
          "two members share site " + std::to_string(d.site) +
          " (a single failure would lose both)");
    }
    if (d.drive_blocks < config.rows) {
      return Status::InvalidArgument(
          "member " + std::to_string(m) + "'s drive holds " +
          std::to_string(d.drive_blocks) + " blocks, fewer than rows = " +
          std::to_string(config.rows));
    }
    const BlockNum total = cluster.site(d.site)->store()->total_blocks();
    if (d.first_block > total || d.first_block + config.rows > total) {
      return Status::InvalidArgument(
          "member " + std::to_string(m) + "'s window [" +
          std::to_string(d.first_block) + ", " +
          std::to_string(d.first_block + config.rows) +
          ") exceeds site " + std::to_string(d.site) + "'s " +
          std::to_string(total) + " blocks");
    }
  }
  return Status::OK();
}

int RaddGroup::MemberAtSite(SiteId site) const {
  for (size_t m = 0; m < members_.size(); ++m) {
    if (members_[m].site == site) return static_cast<int>(m);
  }
  return -1;
}

Site* RaddGroup::SiteOf(int m) const {
  return cluster_->site(members_[static_cast<size_t>(m)].site);
}

SiteState RaddGroup::StateOfMember(int m) const {
  return cluster_->StateOf(members_[static_cast<size_t>(m)].site);
}

bool RaddGroup::BlockReadable(int m, BlockNum row) const {
  if (StateOfMember(m) == SiteState::kDown) return false;
  Result<BlockRecord> r = SiteOf(m)->store()->Peek(Phys(m, row));
  return r.ok();
}

void RaddGroup::ChargeRead(SiteId client, int target_member,
                           OpCounts* c) const {
  if (members_[static_cast<size_t>(target_member)].site == client) {
    ++c->local_reads;
  } else {
    ++c->remote_reads;
  }
}

void RaddGroup::ChargeWrite(SiteId client, int target_member,
                            OpCounts* c) const {
  if (members_[static_cast<size_t>(target_member)].site == client) {
    ++c->local_writes;
  } else {
    ++c->remote_writes;
  }
}

bool RaddGroup::SpareExists(BlockNum row) const {
  if (config_.spare_fraction >= 1.0) return true;
  if (config_.spare_fraction <= 0.0) return false;
  // Bresenham thinning: exactly the configured fraction of rows, spread
  // evenly, carry a spare.
  double f = config_.spare_fraction;
  return static_cast<uint64_t>(static_cast<double>(row + 1) * f) >
         static_cast<uint64_t>(static_cast<double>(row) * f);
}

Result<BlockRecord> RaddGroup::ReadPhys(int m, BlockNum row) const {
  if (StateOfMember(m) == SiteState::kDown) {
    return Status::Unavailable("site " +
                               std::to_string(members_[size_t(m)].site) +
                               " is down");
  }
  return SiteOf(m)->store()->Read(Phys(m, row));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

OpResult RaddGroup::Read(SiteId client, int home, BlockNum data_index) {
  OpResult out;
  if (home < 0 || home >= num_members()) {
    out.status = Status::InvalidArgument("no member " + std::to_string(home));
    return out;
  }
  if (data_index >= DataBlocksPerMember()) {
    out.status = Status::InvalidArgument("data block " +
                                         std::to_string(data_index) +
                                         " out of range");
    return out;
  }
  BlockNum row = map_->DataToRow(static_cast<SiteId>(home), data_index);
  // An expansion may have migrated the block onto another member; from
  // here on the protocol runs against the hosting member (the parity UID
  // array is indexed by host position). Resolved by index, not row — an
  // expansion owner holds several blocks of one row.
  home = static_cast<int>(
      map_->HostOfDataIndex(static_cast<SiteId>(home), data_index));

  switch (StateOfMember(home)) {
    case SiteState::kUp: {
      Result<BlockRecord> rec = ReadPhys(home, row);
      if (!rec.ok()) {
        // A lost block at an up site should not occur (disk failure moves
        // the site to recovering), but handle it like the degraded path.
        if (rec.status().IsDataLoss()) return DegradedRead(client, home, row);
        out.status = rec.status();
        return out;
      }
      ChargeRead(client, home, &out.counts);
      out.data = std::move(rec->data);
      out.uid = rec->uid;
      out.status = Status::OK();
      return out;
    }
    case SiteState::kDown:
      return DegradedRead(client, home, row);
    case SiteState::kRecovering:
      return RecoveringRead(client, home, row);
  }
  out.status = Status::Internal("unreachable");
  return out;
}

OpResult RaddGroup::DegradedRead(SiteId client, int home, BlockNum row) {
  OpResult out;
  int sm = static_cast<int>(map_->SpareSite(row));
  if (!SpareExists(row)) {
    Result<Reconstructed> recon = Reconstruct(client, home, row, &out.counts);
    if (!recon.ok()) {
      out.status = recon.status();
      return out;
    }
    out.data = std::move(recon->data);
    out.uid = recon->logical_uid;
    out.status = Status::OK();
    return out;
  }

  // Try the spare first (paper: "the decision is based on the state of the
  // spare block"). Validity is a metadata check; the counted read happens
  // only when the spare's contents are actually used.
  bool spare_usable = false;
  if (StateOfMember(sm) != SiteState::kDown) {
    Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
    spare_usable = srec.ok();
    if (srec.ok() && srec->uid.valid()) {
      if (srec->spare_for != home) {
        if (!map_->dual_parity()) {
          out.status = Status::Internal(
              "spare of row " + std::to_string(row) + " shadows member " +
              std::to_string(srec->spare_for) + ", expected " +
              std::to_string(home) + " (double failure?)");
          return out;
        }
        // Double failure: the row's one spare is absorbing writes for the
        // *other* dead member. Leave it alone and decode; P and Q already
        // carry that member's spare-absorbed deltas, so the decode below
        // is still exact.
        spare_usable = false;
      } else {
        (void)ReadPhys(sm, row);  // the physical spare read
        ChargeRead(client, sm, &out.counts);
        out.uid = srec->logical_uid;
        out.data = std::move(srec->data);
        out.status = Status::OK();
        return out;
      }
    }
  }

  // Spare invalid: reconstruct via formula (2).
  Result<Reconstructed> recon = Reconstruct(client, home, row, &out.counts);
  if (!recon.ok()) {
    out.status = recon.status();
    return out;
  }

  // Materialize into the spare so subsequent reads resolve with a single
  // spare access (§3.2). Recorded with "a new UID obtained from the local
  // system" — the spare site's generator. Asynchronous side effect: not
  // charged to this read.
  if (config_.materialize_on_degraded_read && spare_usable &&
      StateOfMember(sm) == SiteState::kUp) {
    BlockRecord srec(0);
    srec.data = recon->data;  // the read's caller still needs the value
    srec.uid = SiteOf(sm)->uids()->Next();
    srec.logical_uid = recon->logical_uid;
    srec.spare_for = home;
    Status st = SiteOf(sm)->store()->WriteRecord(Phys(sm, row), srec);
    if (st.ok()) {
      stats_.Add("radd.materialize");
      if (members_[static_cast<size_t>(sm)].site != client) {
        stats_.Add("radd.bytes.spare_write",
                   config_.block_size + kMsgHeader);
      }
    }
  }

  out.data = std::move(recon->data);
  out.uid = recon->logical_uid;
  out.status = Status::OK();
  return out;
}

OpResult RaddGroup::RecoveringRead(SiteId client, int home, BlockNum row) {
  OpResult out;
  int sm = static_cast<int>(map_->SpareSite(row));

  // 1. Valid spare wins (it holds writes made while the site was down).
  if (SpareExists(row) && StateOfMember(sm) != SiteState::kDown) {
    Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
    if (srec.ok() && srec->uid.valid() && srec->spare_for == home) {
      (void)ReadPhys(sm, row);  // the physical spare read
      ChargeRead(client, sm, &out.counts);
      // Side effect (§3.2): install the correct contents locally and
      // invalidate the spare.
      Status st = SiteOf(home)->store()->Write(Phys(home, row), srec->data,
                                               srec->logical_uid);
      if (st.ok()) {
        (void)SiteOf(sm)->store()->Invalidate(Phys(sm, row));
        stats_.Add("radd.spare_invalidate");
      }
      out.data = std::move(srec->data);
      out.uid = srec->logical_uid;
      out.status = Status::OK();
      return out;
    }
  }

  // 2. Valid local block.
  Result<BlockRecord> lrec = SiteOf(home)->store()->Read(Phys(home, row));
  if (lrec.ok() && lrec->uid.valid()) {
    ChargeRead(client, home, &out.counts);
    out.data = std::move(lrec->data);
    out.uid = lrec->uid;
    out.status = Status::OK();
    return out;
  }
  // An intact but never-written block (invalid UID, readable) is simply
  // its initial zero state; no reconstruction needed.
  if (lrec.ok()) {
    ChargeRead(client, home, &out.counts);
    out.data = std::move(lrec->data);
    out.uid = lrec->uid;
    out.status = Status::OK();
    return out;
  }

  // 3. Both invalid/lost: reconstruct as if the site were down, then
  // install locally (§3.2 "the system should write local block K with its
  // correct contents").
  Result<Reconstructed> recon = Reconstruct(client, home, row, &out.counts);
  if (!recon.ok()) {
    out.status = recon.status();
    return out;
  }
  Status st = SiteOf(home)->store()->Write(Phys(home, row), recon->data,
                                           recon->logical_uid);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  stats_.Add("radd.recovering_read_repair");
  out.data = std::move(recon->data);
  out.uid = recon->logical_uid;
  out.status = Status::OK();
  return out;
}

Result<RaddGroup::Reconstructed> RaddGroup::Reconstruct(SiteId client,
                                                        int home,
                                                        BlockNum row,
                                                        OpCounts* counts) {
  if (map_->dual_parity()) {
    return ReconstructDual(client, home, row, counts);
  }
  const int pm = static_cast<int>(map_->ParitySite(row));
  std::vector<SiteId> source_members =
      map_->ReconstructionSources(static_cast<SiteId>(home), row);

  for (int attempt = 0; attempt < config_.max_reconstruct_attempts;
       ++attempt) {
    std::vector<BlockRecord> records;
    records.reserve(source_members.size());
    bool readable = true;
    for (SiteId sm : source_members) {
      int m = static_cast<int>(sm);
      if (!BlockReadable(m, row)) {
        return Status::Blocked(
            "cannot reconstruct row " + std::to_string(row) + ": member " +
            std::to_string(m) + " also unavailable (multiple failures)");
      }
      Result<BlockRecord> rec = ReadPhys(m, row);
      if (!rec.ok()) {
        readable = false;
        break;
      }
      ChargeRead(client, m, counts);
      records.push_back(std::move(rec).value());
    }
    if (!readable) {
      return Status::Blocked("source became unreadable during reconstruction");
    }

    // §3.3 consistency validation: every data source's UID must equal the
    // parity block's UID-array entry for that member. (The parity block
    // contributes the array itself.)
    const std::vector<Uid>* array = nullptr;
    for (size_t i = 0; i < source_members.size(); ++i) {
      if (static_cast<int>(source_members[i]) == pm) {
        array = &records[i].uid_array;
        break;
      }
    }
    auto array_entry = [&](int member) -> Uid {
      if (array == nullptr ||
          static_cast<size_t>(member) >= array->size()) {
        return Uid();
      }
      return (*array)[static_cast<size_t>(member)];
    };

    bool consistent = true;
    for (size_t i = 0; i < source_members.size(); ++i) {
      int m = static_cast<int>(source_members[i]);
      if (m == pm) continue;
      if (records[i].uid != array_entry(m)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) {
      stats_.Add("radd.uid_retry");
      continue;  // "the read was not consistent and must be retried"
    }

    Reconstructed out;
    out.data = Block(records.front().data.size());
    Status x = XorAllInto(&out.data, records.size(),
                          [&](size_t i) -> const Block& {
                            return records[i].data;
                          });
    if (!x.ok()) return x;

    stats_.Add("radd.reconstructions");
    out.logical_uid = array_entry(home);
    return out;
  }
  return Status::Inconsistent(
      "reconstruction of row " + std::to_string(row) + " failed UID "
      "validation after " + std::to_string(config_.max_reconstruct_attempts) +
      " attempts");
}

Result<RaddGroup::Reconstructed> RaddGroup::ReconstructDual(SiteId client,
                                                            int home,
                                                            BlockNum row,
                                                            OpCounts* counts) {
  const int pm = static_cast<int>(map_->ParitySite(row));
  const int qm = static_cast<int>(map_->QParitySite(row));
  const int sm = static_cast<int>(map_->SpareSite(row));
  const std::vector<SiteId> data_members = map_->DataSites(row);
  assert(map_->RoleOf(static_cast<SiteId>(home), row) == BlockRole::kData);

  for (int attempt = 0; attempt < config_.max_reconstruct_attempts;
       ++attempt) {
    // A parity has decode authority only when its site is up: a recovering
    // parity may have dropped updates for exactly the member being decoded,
    // which no surviving UID array can expose. Its sweep restores
    // authority.
    const bool p_ok =
        StateOfMember(pm) == SiteState::kUp && BlockReadable(pm, row);
    const bool q_ok =
        StateOfMember(qm) == SiteState::kUp && BlockReadable(qm, row);

    // A valid spare stands in for the data member it shadows: the member's
    // own copy is stale or gone, but P and Q already carry the
    // spare-absorbed deltas and the arrays record the spare's logical UID.
    int shadowed_dm = -1;
    if (SpareExists(row) && StateOfMember(sm) != SiteState::kDown) {
      Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
      if (srec.ok() && srec->uid.valid()) shadowed_dm = srec->spare_for;
    }

    struct Source {
      int m = -1;              // the data member this block stands in for
      bool via_spare = false;  // read the spare block instead of m's own
    };
    std::vector<Source> sources;
    sources.reserve(data_members.size());
    int lost_dm = -1;  // a second erased data member besides home
    for (SiteId dm_id : data_members) {
      int dm = static_cast<int>(dm_id);
      if (dm == home) continue;
      if (dm == shadowed_dm || BlockReadable(dm, row)) {
        sources.push_back({dm, dm == shadowed_dm});
        continue;
      }
      if (lost_dm >= 0) {
        return Status::Blocked(
            "cannot reconstruct row " + std::to_string(row) +
            ": members " + std::to_string(lost_dm) + " and " +
            std::to_string(dm) + " also unavailable (triple failure)");
      }
      lost_dm = dm;
    }

    // Pick the decode plan: which parities the syndromes need.
    bool use_p = false;
    bool use_q = false;
    if (lost_dm < 0) {
      if (p_ok) {
        use_p = true;  // classic formula (2); Q not needed
      } else if (q_ok) {
        use_q = true;  // D_home = inv(g^home) * Sq
      } else {
        return Status::Blocked(
            "cannot reconstruct row " + std::to_string(row) +
            ": both parities unavailable (triple failure)");
      }
    } else {
      if (!p_ok || !q_ok) {
        return Status::Blocked(
            "cannot reconstruct row " + std::to_string(row) + ": member " +
            std::to_string(lost_dm) +
            " and a parity also unavailable (triple failure)");
      }
      use_p = use_q = true;
    }

    // Read the sources.
    std::vector<BlockRecord> recs;
    std::vector<Uid> rec_uids;  // the UID the arrays should record
    recs.reserve(sources.size());
    bool readable = true;
    for (const Source& s : sources) {
      int from = s.via_spare ? sm : s.m;
      Result<BlockRecord> rec = ReadPhys(from, row);
      if (!rec.ok()) {
        readable = false;
        break;
      }
      ChargeRead(client, from, counts);
      rec_uids.push_back(s.via_spare ? rec->logical_uid : rec->uid);
      recs.push_back(std::move(rec).value());
    }
    if (!readable) {
      return Status::Blocked("source became unreadable during reconstruction");
    }
    std::optional<BlockRecord> prec;
    std::optional<BlockRecord> qrec;
    if (use_p) {
      Result<BlockRecord> rec = ReadPhys(pm, row);
      if (!rec.ok()) {
        return Status::Blocked(
            "parity became unreadable during reconstruction");
      }
      ChargeRead(client, pm, counts);
      prec = std::move(rec).value();
    }
    if (use_q) {
      Result<BlockRecord> rec = ReadPhys(qm, row);
      if (!rec.ok()) {
        return Status::Blocked(
            "Q parity became unreadable during reconstruction");
      }
      ChargeRead(client, qm, counts);
      qrec = std::move(rec).value();
    }

    // §3.3 validation against every parity in the plan, plus cross-parity
    // agreement on all data entries (including the erased ones) when both
    // participate — that is what catches one parity being one write behind
    // on exactly the member being decoded.
    auto entry_of = [](const BlockRecord& p, int member) -> Uid {
      size_t pos = static_cast<size_t>(member);
      return pos < p.uid_array.size() ? p.uid_array[pos] : Uid();
    };
    bool consistent = true;
    for (size_t i = 0; i < sources.size() && consistent; ++i) {
      if (use_p && rec_uids[i] != entry_of(*prec, sources[i].m)) {
        consistent = false;
      }
      if (consistent && use_q &&
          rec_uids[i] != entry_of(*qrec, sources[i].m)) {
        consistent = false;
      }
    }
    if (consistent && use_p && use_q) {
      for (SiteId dm_id : data_members) {
        int dm = static_cast<int>(dm_id);
        if (entry_of(*prec, dm) != entry_of(*qrec, dm)) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) {
      stats_.Add("radd.uid_retry");
      continue;  // "the read was not consistent and must be retried"
    }

    // Decode.
    Reconstructed out;
    out.data = Block(config_.block_size);
    Status st = Status::OK();
    if (use_p && !use_q) {
      // Sp = P xor surviving data = D_home.
      st = out.data.XorWith(prec->data);
      for (size_t i = 0; i < recs.size() && st.ok(); ++i) {
        st = out.data.XorWith(recs[i].data);
      }
    } else if (use_q && !use_p) {
      // Sq = Q xor sum g^m D_m over survivors = g^home * D_home.
      st = out.data.XorWith(qrec->data);
      for (size_t i = 0; i < recs.size() && st.ok(); ++i) {
        st = GfMulAddInto(&out.data, recs[i].data, GfQCoeff(sources[i].m));
      }
      if (st.ok()) GfScaleInPlace(&out.data, GfInv(GfQCoeff(home)));
    } else {
      // Two data erasures {a = home, b = lost_dm}:
      //   Sp = D_a ^ D_b,  Sq = g^a D_a ^ g^b D_b
      //   => (g^b * Sp) ^ Sq = (g^a ^ g^b) * D_a.
      Block sp(config_.block_size);
      Block sq(config_.block_size);
      st = sp.XorWith(prec->data);
      if (st.ok()) st = sq.XorWith(qrec->data);
      for (size_t i = 0; i < recs.size() && st.ok(); ++i) {
        st = sp.XorWith(recs[i].data);
        if (st.ok()) {
          st = GfMulAddInto(&sq, recs[i].data, GfQCoeff(sources[i].m));
        }
      }
      if (st.ok()) {
        const uint8_t cb = GfQCoeff(lost_dm);
        st = GfMulAddInto(&sq, sp, cb);  // sq = (g^b * Sp) ^ Sq
      }
      if (st.ok()) {
        GfScaleInPlace(
            &sq, GfInv(static_cast<uint8_t>(GfQCoeff(home) ^
                                            GfQCoeff(lost_dm))));
        out.data = std::move(sq);
        stats_.Add("radd.reconstructions_two_erasure");
      }
    }
    if (!st.ok()) return st;

    stats_.Add("radd.reconstructions");
    out.logical_uid =
        use_p ? entry_of(*prec, home) : entry_of(*qrec, home);
    return out;
  }
  return Status::Inconsistent(
      "reconstruction of row " + std::to_string(row) + " failed UID "
      "validation after " + std::to_string(config_.max_reconstruct_attempts) +
      " attempts");
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

OpResult RaddGroup::Write(SiteId client, int home, BlockNum data_index,
                          const Block& new_data) {
  OpResult out;
  if (home < 0 || home >= num_members()) {
    out.status = Status::InvalidArgument("no member " + std::to_string(home));
    return out;
  }
  if (data_index >= DataBlocksPerMember()) {
    out.status = Status::InvalidArgument("data block " +
                                         std::to_string(data_index) +
                                         " out of range");
    return out;
  }
  if (new_data.size() != config_.block_size) {
    out.status = Status::InvalidArgument("wrong block size");
    return out;
  }
  BlockNum row = map_->DataToRow(static_cast<SiteId>(home), data_index);
  // Run against the hosting member, resolved by index (see Read).
  home = static_cast<int>(
      map_->HostOfDataIndex(static_cast<SiteId>(home), data_index));

  switch (StateOfMember(home)) {
    case SiteState::kUp:
    case SiteState::kRecovering: {
      const bool recovering = StateOfMember(home) == SiteState::kRecovering;
      if (recovering &&
          !SiteOf(home)->store()->Peek(Phys(home, row)).ok()) {
        // The block is lost to a disk failure and not yet reconstructed:
        // the system "continues with write operations to the down disks"
        // through the spare (§3.2; Figure 3's disk-failure write = 2 RW).
        return DegradedWrite(client, home, row, new_data);
      }
      // Determine the current logical value for a correct parity delta.
      // Every path below assigns it, so start empty instead of zeroing a
      // block-sized buffer that is immediately overwritten.
      Block old_value(0);
      bool have_old = false;
      int sm = static_cast<int>(map_->SpareSite(row));
      bool spare_valid = false;
      if (recovering && SpareExists(row) &&
          StateOfMember(sm) != SiteState::kDown) {
        Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
        if (srec.ok() && srec->uid.valid() && srec->spare_for == home) {
          // Writes made while this site was down live in the spare; the
          // local copy is stale. Fetch the spare for the delta.
          (void)ReadPhys(sm, row);  // the physical spare read
          ChargeRead(client, sm, &out.counts);
          old_value = std::move(srec->data);
          have_old = true;
          spare_valid = true;
        }
      }
      if (!have_old) {
        Result<BlockRecord> lrec =
            config_.charge_old_value_read
                ? SiteOf(home)->store()->Read(Phys(home, row))
                : SiteOf(home)->store()->Peek(Phys(home, row));
        if (lrec.ok() && (lrec->uid.valid() || !recovering)) {
          // Up sites: buffered old value, free unless configured.
          if (config_.charge_old_value_read) {
            ChargeRead(client, home, &out.counts);
          }
          old_value = std::move(lrec->data);
          have_old = true;
        } else if (lrec.ok()) {
          // Recovering, local invalid-but-readable: initial zero state.
          old_value = std::move(lrec->data);
          have_old = true;
        }
      }
      if (!have_old) {
        // Recovering with the block lost to a disk failure: reconstruct
        // the old value so the parity delta is correct.
        Result<Reconstructed> recon =
            Reconstruct(client, home, row, &out.counts);
        if (!recon.ok()) {
          out.status = recon.status();
          return out;
        }
        old_value = std::move(recon->data);
      }

      // W1: write the local block with a fresh UID.
      Uid u = SiteOf(home)->uids()->Next();
      Status st = SiteOf(home)->store()->Write(Phys(home, row), new_data, u);
      if (!st.ok()) {
        out.status = st;
        return out;
      }
      ChargeWrite(client, home, &out.counts);

      // W2-W4: parity delta.
      Result<ChangeMask> mask = ChangeMask::Diff(old_value, new_data);
      if (!mask.ok()) {
        out.status = mask.status();
        return out;
      }
      UpdateParity(members_[size_t(home)].site, home, row, *mask, u,
                   &out.counts);

      // Recovering side effect: the spare no longer shadows this block.
      if (recovering && spare_valid) {
        (void)SiteOf(sm)->store()->Invalidate(Phys(sm, row));
        stats_.Add("radd.spare_invalidate");
      }

      out.uid = u;
      out.status = Status::OK();
      return out;
    }
    case SiteState::kDown:
      return DegradedWrite(client, home, row, new_data);
  }
  out.status = Status::Internal("unreachable");
  return out;
}

OpResult RaddGroup::DegradedWrite(SiteId client, int home, BlockNum row,
                                  const Block& new_data) {
  OpResult out;
  int sm = static_cast<int>(map_->SpareSite(row));
  if (!SpareExists(row)) {
    // §7.2's availability price: without a spare, writes to the down
    // member's block must wait for repair.
    out.status = Status::Blocked(
        "row " + std::to_string(row) +
        " has no spare block (spare_fraction < 1); write must wait");
    stats_.Add("radd.write_blocked_no_spare");
    return out;
  }
  if (StateOfMember(sm) != SiteState::kUp || !BlockReadable(sm, row)) {
    out.status = Status::Blocked(
        "spare site for row " + std::to_string(row) +
        " unavailable while home member is down (multiple failures)");
    return out;
  }

  // Old logical value: the spare if it is valid (free — buffered at the
  // spare site which we are about to write anyway), else reconstructed.
  Block old_value(0);
  Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
  if (srec.ok() && srec->uid.valid()) {
    if (srec->spare_for != home) {
      if (map_->dual_parity()) {
        // Double failure: the row's one spare already absorbs writes for
        // the other dead member. P+Q keeps both members *readable*, but a
        // second concurrent write stream has nowhere to land.
        out.status = Status::Blocked(
            "spare of row " + std::to_string(row) +
            " already shadows member " + std::to_string(srec->spare_for) +
            " (double failure); write must wait");
        stats_.Add("radd.write_blocked_spare_busy");
        return out;
      }
      out.status = Status::Internal("spare shadows a different member");
      return out;
    }
    old_value = std::move(srec->data);
  } else {
    Result<Reconstructed> recon = Reconstruct(client, home, row, &out.counts);
    if (!recon.ok()) {
      out.status = recon.status();
      return out;
    }
    old_value = std::move(recon->data);
    stats_.Add("radd.degraded_write_reconstruct");
  }

  // W1': write the contents to the spare site with a fresh UID obtained by
  // the writer.
  Site* writer = cluster_->site(client);
  if (writer == nullptr) {
    out.status = Status::InvalidArgument("no client site " +
                                         std::to_string(client));
    return out;
  }
  Uid u = writer->uids()->Next();
  BlockRecord new_rec(0);
  new_rec.data = new_data;
  new_rec.uid = u;
  new_rec.logical_uid = u;
  new_rec.spare_for = home;
  Status st = SiteOf(sm)->store()->WriteRecord(Phys(sm, row), new_rec);
  if (!st.ok()) {
    out.status = st;
    return out;
  }
  ChargeWrite(client, sm, &out.counts);
  if (members_[static_cast<size_t>(sm)].site != client) {
    stats_.Add("radd.bytes.spare_write", config_.block_size + kMsgHeader);
  }

  // W2-W4 with the delta against the old logical value, recorded at the
  // *home* member's position so reconstruction validation still works.
  Result<ChangeMask> mask = ChangeMask::Diff(old_value, new_data);
  if (!mask.ok()) {
    out.status = mask.status();
    return out;
  }
  UpdateParity(members_[static_cast<size_t>(sm)].site, home, row, *mask, u,
               &out.counts);

  out.uid = u;
  out.status = Status::OK();
  return out;
}

void RaddGroup::UpdateParity(SiteId issuer, int home, BlockNum row,
                             const ChangeMask& mask, Uid uid,
                             OpCounts* counts) {
  ApplyParityLeg(issuer, home, row, mask, uid, counts,
                 static_cast<int>(map_->ParitySite(row)), /*coeff=*/1);
  if (map_->dual_parity()) {
    // The Q leg ships the *same* delta; the Q site scales it by the
    // member's coefficient before folding it in (Q' = Q ^ g^home * delta).
    ApplyParityLeg(issuer, home, row, mask, uid, counts,
                   static_cast<int>(map_->QParitySite(row)),
                   GfQCoeff(home));
  }
}

void RaddGroup::ApplyParityLeg(SiteId issuer, int home, BlockNum row,
                               const ChangeMask& mask, Uid uid,
                               OpCounts* counts, int pm, uint8_t coeff) {
  if (StateOfMember(pm) == SiteState::kDown) {
    // The parity site cannot accept updates; its recovery sweep will
    // recompute this row's parity from the data blocks.
    stats_.Add("radd.parity_dropped");
    return;
  }
  Status st;
  if (coeff == 1) {
    st = SiteOf(pm)->store()->ApplyMask(Phys(pm, row), mask, uid,
                                        static_cast<size_t>(home),
                                        static_cast<size_t>(num_members()));
  } else {
    Block delta = mask.delta();
    GfScaleInPlace(&delta, coeff);
    st = SiteOf(pm)->store()->ApplyMask(
        Phys(pm, row), ChangeMask::FromFull(std::move(delta)), uid,
        static_cast<size_t>(home), static_cast<size_t>(num_members()));
  }
  if (!st.ok()) {
    // Lost parity block (disk failure at the parity site): same story.
    stats_.Add("radd.parity_dropped");
    return;
  }
  ChargeWrite(issuer, pm, counts);
  if (members_[static_cast<size_t>(pm)].site != issuer) {
    size_t bytes = config_.use_change_masks
                       ? mask.EncodedSize() + kMsgHeader
                       : config_.block_size + kMsgHeader;
    stats_.Add("radd.bytes.parity", bytes);
    stats_.Add("radd.parity_updates");
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Result<OpCounts> RaddGroup::RunRecovery(int home, bool mark_up) {
  if (home < 0 || home >= num_members()) {
    return Status::InvalidArgument("no member " + std::to_string(home));
  }
  Site* site = SiteOf(home);
  if (site->state() != SiteState::kRecovering) {
    return Status::InvalidArgument(
        "site " + std::to_string(site->id()) + " is " +
        std::string(SiteStateName(site->state())) + ", not recovering");
  }
  OpCounts counts;
  const BlockNum rows = NumRows();
  for (BlockNum row = 0; row < rows; ++row) {
    RADD_RETURN_NOT_OK(RecoverRow(home, row, &counts));
  }

  if (mark_up) {
    RADD_RETURN_NOT_OK(cluster_->MarkUp(site->id()));
  }
  stats_.Add("radd.recoveries_completed");
  return counts;
}

Status RaddGroup::RecoverRow(int home, BlockNum row, OpCounts* counts) {
  if (home < 0 || home >= num_members()) {
    return Status::InvalidArgument("no member " + std::to_string(home));
  }
  if (row >= NumRows()) {
    return Status::InvalidArgument("no row " + std::to_string(row));
  }
  Site* site = SiteOf(home);
  const SiteId self = site->id();
  BlockRole role = map_->RoleOf(static_cast<SiteId>(home), row);
  if (role == BlockRole::kNone) return Status::OK();  // not a participant
  BlockNum phys = Phys(home, row);

  switch (role) {
    case BlockRole::kData: {
      int sm = static_cast<int>(map_->SpareSite(row));
      // Drain a valid spare (lock, copy, invalidate).
      if (SpareExists(row) && StateOfMember(sm) != SiteState::kDown) {
        Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
        if (srec.ok() && srec->uid.valid() && srec->spare_for != home) {
          if (!map_->dual_parity()) {
            // Single parity allows one failure at a time, so a valid spare
            // on this member's row can only be shadowing it.
            return Status::Internal(
                "spare of row " + std::to_string(row) +
                " shadows another member during recovery");
          }
          // Double-failure recovery: the spare shadows the episode's
          // *other* failed member. Leave it for that member's own sweep
          // and fall through — the decode below reads the shadowed member
          // through the spare (ReconstructDual's via_spare source).
        } else if (srec.ok() && srec->uid.valid()) {
          (void)ReadPhys(sm, row);  // the physical spare read
          ChargeRead(self, sm, counts);
          RADD_RETURN_NOT_OK(
              site->store()->Write(phys, srec->data, srec->logical_uid));
          ++counts->local_writes;
          (void)SiteOf(sm)->store()->Invalidate(Phys(sm, row));
          ChargeWrite(self, sm, counts);  // the invalidate message
          stats_.Add("radd.recovery_spare_drained");
          break;
        }
      }
      // No spare: the local block is either intact (temporary outage —
      // nothing to do) or lost (disk failure / disaster — reconstruct). An
      // intact copy must still agree with the parity's UID array: a row
      // rebuilt from the parity before an in-flight update landed looks
      // readable but is one write behind (§3.3).
      Result<BlockRecord> lrec = site->store()->Peek(phys);
      if (lrec.ok() && !ParityEntrySupersedes(home, row, lrec->uid)) break;
      if (!lrec.ok() && !lrec.status().IsDataLoss()) return lrec.status();
      if (lrec.ok()) stats_.Add("radd.recovery_uid_reconciled");
      Result<Reconstructed> recon = Reconstruct(self, home, row, counts);
      if (!recon.ok()) return recon.status();
      RADD_RETURN_NOT_OK(
          site->store()->Write(phys, recon->data, recon->logical_uid));
      ++counts->local_writes;
      stats_.Add("radd.recovery_reconstructed");
      break;
    }

    case BlockRole::kParityQ:
      return RebuildParityRow(home, row, counts, /*q_role=*/true);

    case BlockRole::kParity: {
      if (map_->dual_parity()) {
        // The dual-mode rebuild is spare- and decode-aware: with a second
        // member dead it recovers missing data values via Q first.
        return RebuildParityRow(home, row, counts, /*q_role=*/false);
      }
      // Read every data block of the row from the other (up) members;
      // recompute the parity if the local copy is lost or its UID array
      // disagrees with the data blocks (updates missed while down).
      std::vector<SiteId> data_members = map_->DataSites(row);
      std::vector<BlockRecord> data_recs;
      data_recs.reserve(data_members.size());
      bool sources_ok = true;
      for (SiteId dm : data_members) {
        int m = static_cast<int>(dm);
        if (!BlockReadable(m, row)) {
          sources_ok = false;
          break;
        }
        Result<BlockRecord> rec = ReadPhys(m, row);
        if (!rec.ok()) {
          sources_ok = false;
          break;
        }
        ChargeRead(self, m, counts);
        data_recs.push_back(std::move(rec).value());
      }
      if (!sources_ok) {
        return Status::Blocked(
            "cannot rebuild parity of row " + std::to_string(row) +
            ": a data member is unavailable (multiple failures)");
      }

      Result<BlockRecord> lrec = site->store()->Peek(phys);
      bool stale = !lrec.ok();
      if (lrec.ok()) {
        for (size_t i = 0; i < data_members.size(); ++i) {
          size_t pos = static_cast<size_t>(data_members[i]);
          Uid entry = pos < lrec->uid_array.size() ? lrec->uid_array[pos]
                                                   : Uid();
          if (entry != data_recs[i].uid) {
            stale = true;
            break;
          }
        }
      }
      if (stale) {
        BlockRecord prec(config_.block_size);
        RADD_RETURN_NOT_OK(XorAllInto(
            &prec.data, data_recs.size(),
            [&](size_t i) -> const Block& { return data_recs[i].data; }));
        prec.uid = site->uids()->Next();
        prec.uid_array.assign(static_cast<size_t>(num_members()), Uid());
        for (size_t i = 0; i < data_members.size(); ++i) {
          prec.uid_array[static_cast<size_t>(data_members[i])] =
              data_recs[i].uid;
        }
        RADD_RETURN_NOT_OK(site->store()->WriteRecord(phys, prec));
        ++counts->local_writes;
        stats_.Add("radd.recovery_parity_rebuilt");
      }
      break;
    }

    case BlockRole::kNone:
      break;  // handled above

    case BlockRole::kSpare: {
      // A lost spare is simply re-initialized to the invalid state.
      Result<BlockRecord> lrec = site->store()->Peek(phys);
      if (!lrec.ok() && lrec.status().IsDataLoss()) {
        BlockRecord empty(config_.block_size);
        RADD_RETURN_NOT_OK(site->store()->WriteRecord(phys, empty));
        ++counts->local_writes;
        stats_.Add("radd.recovery_spare_cleared");
        break;
      }
      if (lrec.ok() && lrec->uid.valid() &&
          StateOfMember(lrec->spare_for) == SiteState::kUp) {
        // Stale shadow: the shadowed member recovered while this spare's
        // own site was down (a double failure), so its sweep could not
        // drain this record and instead decoded the rows from the
        // parities — which carry every spare-landed write. The record is
        // redundant now, and an up member must never stay shadowed.
        BlockRecord empty(config_.block_size);
        RADD_RETURN_NOT_OK(site->store()->WriteRecord(phys, empty));
        ++counts->local_writes;
        stats_.Add("radd.recovery_spare_stale_dropped");
      }
      break;
    }
  }
  return Status::OK();
}

Status RaddGroup::RebuildParityRow(int home, BlockNum row, OpCounts* counts,
                                   bool q_role) {
  Site* site = SiteOf(home);
  const SiteId self = site->id();
  const BlockNum phys = Phys(home, row);
  const int sm = static_cast<int>(map_->SpareSite(row));
  std::vector<SiteId> data_members = map_->DataSites(row);

  // Gather each data member's logical value: a valid spare shadowing it
  // wins (it holds writes the member's own copy missed), then the readable
  // local block, then two-erasure decode via the other parity.
  std::vector<Block> values;
  std::vector<Uid> uids;
  values.reserve(data_members.size());
  uids.reserve(data_members.size());
  for (SiteId dm_id : data_members) {
    int dm = static_cast<int>(dm_id);
    bool have = false;
    if (SpareExists(row) && StateOfMember(sm) != SiteState::kDown) {
      Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
      if (srec.ok() && srec->uid.valid() && srec->spare_for == dm) {
        (void)ReadPhys(sm, row);  // the physical spare read
        ChargeRead(self, sm, counts);
        values.push_back(std::move(srec->data));
        uids.push_back(srec->logical_uid);
        have = true;
      }
    }
    if (!have && BlockReadable(dm, row)) {
      Result<BlockRecord> rec = ReadPhys(dm, row);
      if (rec.ok()) {
        ChargeRead(self, dm, counts);
        uids.push_back(rec->uid);
        values.push_back(std::move(rec->data));
        have = true;
      }
    }
    if (!have) {
      // Decode the missing member via the surviving parity and the other
      // data blocks; Reconstruct refuses (Blocked) at three erasures and
      // the sweeper retries the row later.
      Result<Reconstructed> recon = Reconstruct(self, dm, row, counts);
      if (!recon.ok()) {
        if (recon.status().IsBlocked()) return recon.status();
        return Status::Blocked("cannot rebuild " +
                               std::string(q_role ? "Q parity" : "parity") +
                               " of row " + std::to_string(row) +
                               ": member " + std::to_string(dm) +
                               " undecodable: " + recon.status().ToString());
      }
      values.push_back(std::move(recon->data));
      uids.push_back(recon->logical_uid);
    }
  }

  // Recompute only when the local copy is lost or its UID array disagrees
  // with the gathered logical UIDs (updates missed while down).
  Result<BlockRecord> lrec = site->store()->Peek(phys);
  bool stale = !lrec.ok();
  if (lrec.ok()) {
    for (size_t i = 0; i < data_members.size(); ++i) {
      size_t pos = static_cast<size_t>(data_members[i]);
      Uid entry =
          pos < lrec->uid_array.size() ? lrec->uid_array[pos] : Uid();
      if (entry != uids[i]) {
        stale = true;
        break;
      }
    }
  }
  if (!stale) return Status::OK();

  BlockRecord prec(config_.block_size);
  for (size_t i = 0; i < data_members.size(); ++i) {
    uint8_t c =
        q_role ? GfQCoeff(static_cast<int>(data_members[i])) : uint8_t{1};
    RADD_RETURN_NOT_OK(GfMulAddInto(&prec.data, values[i], c));
  }
  prec.uid = site->uids()->Next();
  prec.uid_array.assign(static_cast<size_t>(num_members()), Uid());
  for (size_t i = 0; i < data_members.size(); ++i) {
    prec.uid_array[static_cast<size_t>(data_members[i])] = uids[i];
  }
  RADD_RETURN_NOT_OK(site->store()->WriteRecord(phys, prec));
  ++counts->local_writes;
  stats_.Add(q_role ? "radd.recovery_q_rebuilt"
                    : "radd.recovery_parity_rebuilt");
  return Status::OK();
}

bool RaddGroup::ParityEntrySupersedes(int home, BlockNum row,
                                      Uid local) const {
  const int pm = static_cast<int>(map_->ParitySite(row));
  if (ParityMemberSupersedes(pm, home, row, local)) return true;
  if (map_->dual_parity()) {
    const int qm = static_cast<int>(map_->QParitySite(row));
    if (ParityMemberSupersedes(qm, home, row, local)) return true;
  }
  return false;
}

bool RaddGroup::ParityMemberSupersedes(int pm, int home, BlockNum row,
                                       Uid local) const {
  // §3.3: the parity block's UID array is the authority on which writes a
  // row has accepted. A data copy whose UID disagrees with (and does not
  // postdate) the array entry missed an update — e.g. it was rebuilt from
  // the parity before an in-flight delta for the same row landed.
  if (StateOfMember(pm) != SiteState::kUp) return false;  // no authority
  Result<BlockRecord> prec = SiteOf(pm)->store()->Peek(Phys(pm, row));
  if (!prec.ok()) return false;
  const size_t pos = static_cast<size_t>(home);
  const Uid entry =
      pos < prec->uid_array.size() ? prec->uid_array[pos] : Uid();
  if (!entry.valid() || entry == local) return false;
  if (!local.valid()) return true;
  if (entry.site() == local.site()) {
    // Same generator: sequences order the writes. A local copy newer than
    // the entry saw an update the parity missed while down — keep it; the
    // parity's own recovery rebuilds its row from the data.
    return entry.sequence() > local.sequence();
  }
  // Cross-site disagreement: the parity accepted a write (e.g. a degraded
  // write through the spare) this copy never held.
  return true;
}

Result<BlockNum> RaddGroup::FirstUnrecoveredRow(int home,
                                                BlockNum from) const {
  if (home < 0 || home >= num_members()) {
    return Status::InvalidArgument("no member " + std::to_string(home));
  }
  const Site* site = SiteOf(home);
  const BlockNum rows = NumRows();
  for (BlockNum row = from; row < rows; ++row) {
    if (map_->RoleOf(static_cast<SiteId>(home), row) == BlockRole::kNone) {
      continue;
    }
    BlockNum phys = Phys(home, row);
    if (map_->RoleOf(static_cast<SiteId>(home), row) == BlockRole::kData) {
      // A valid spare shadowing this member must be drained before MarkUp:
      // a spare shadowing an up member violates the group invariant, and
      // the writes it holds would be lost to readers going to the home.
      int sm = static_cast<int>(map_->SpareSite(row));
      if (SpareExists(row) && StateOfMember(sm) != SiteState::kDown) {
        Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
        if (srec.ok() && srec->uid.valid() && srec->spare_for == home) {
          return row;
        }
      }
    }
    Result<BlockRecord> lrec = site->store()->Peek(phys);
    if (!lrec.ok() && lrec.status().IsDataLoss()) return row;
    if (lrec.ok() &&
        map_->RoleOf(static_cast<SiteId>(home), row) == BlockRole::kData &&
        ParityEntrySupersedes(home, row, lrec->uid)) {
      return row;
    }
  }
  return rows;
}

Result<int> RaddGroup::ScrubParity(int parity_member) {
  if (parity_member < 0 || parity_member >= num_members()) {
    return Status::InvalidArgument("no member " +
                                   std::to_string(parity_member));
  }
  if (StateOfMember(parity_member) != SiteState::kUp) {
    return Status::InvalidArgument("scrub requires the site to be up");
  }
  Site* site = SiteOf(parity_member);
  int repaired = 0;

  const BlockNum rows = NumRows();
  for (BlockNum row = 0; row < rows; ++row) {
    const BlockRole role =
        map_->RoleOf(static_cast<SiteId>(parity_member), row);
    if (role != BlockRole::kParity && role != BlockRole::kParityQ) {
      continue;
    }
    // Q rows sum g^m-weighted data; P rows are the plain XOR (c == 1).
    const bool q_role = role == BlockRole::kParityQ;
    // Collect the row's data blocks; skip rows with unreadable members
    // (degraded rows belong to the recovery sweep, not the scrubber).
    std::vector<SiteId> data_members = map_->DataSites(row);
    std::vector<BlockRecord> recs;
    bool auditable = true;
    for (SiteId dm : data_members) {
      int m = static_cast<int>(dm);
      if (StateOfMember(m) != SiteState::kUp) {
        auditable = false;
        break;
      }
      Result<BlockRecord> rec = SiteOf(m)->store()->Peek(Phys(m, row));
      if (!rec.ok()) {
        auditable = false;
        break;
      }
      recs.push_back(std::move(rec).value());
    }
    int sm = static_cast<int>(map_->SpareSite(row));
    if (auditable && SpareExists(row) &&
        StateOfMember(sm) != SiteState::kDown) {
      Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, row));
      if (srec.ok() && srec->uid.valid()) auditable = false;  // degraded row
    }
    if (!auditable) {
      stats_.Add("radd.scrub_skipped");
      continue;
    }

    Result<BlockRecord> prec = site->store()->Peek(Phys(parity_member, row));
    bool mismatch = !prec.ok();
    if (prec.ok()) {
      Block expected(config_.block_size);
      for (size_t i = 0; i < recs.size(); ++i) {
        uint8_t c = q_role ? GfQCoeff(static_cast<int>(data_members[i]))
                           : uint8_t{1};
        RADD_RETURN_NOT_OK(GfMulAddInto(&expected, recs[i].data, c));
      }
      if (expected != prec->data) {
        mismatch = true;
      } else {
        for (size_t i = 0; i < data_members.size(); ++i) {
          size_t pos = static_cast<size_t>(data_members[i]);
          Uid entry =
              pos < prec->uid_array.size() ? prec->uid_array[pos] : Uid();
          if (entry != recs[i].uid) {
            mismatch = true;
            break;
          }
        }
      }
    }
    if (!mismatch) continue;

    BlockRecord fresh(config_.block_size);
    for (size_t i = 0; i < recs.size(); ++i) {
      uint8_t c = q_role ? GfQCoeff(static_cast<int>(data_members[i]))
                         : uint8_t{1};
      RADD_RETURN_NOT_OK(GfMulAddInto(&fresh.data, recs[i].data, c));
    }
    fresh.uid = site->uids()->Next();
    fresh.uid_array.assign(static_cast<size_t>(num_members()), Uid());
    for (size_t i = 0; i < data_members.size(); ++i) {
      fresh.uid_array[static_cast<size_t>(data_members[i])] = recs[i].uid;
    }
    RADD_RETURN_NOT_OK(
        site->store()->WriteRecord(Phys(parity_member, row), fresh));
    ++repaired;
    stats_.Add("radd.scrub_repaired");
  }
  return repaired;
}

Result<int> RaddGroup::ScrubData(int data_member) {
  if (data_member < 0 || data_member >= num_members()) {
    return Status::InvalidArgument("no member " +
                                   std::to_string(data_member));
  }
  if (StateOfMember(data_member) != SiteState::kUp) {
    return Status::InvalidArgument("scrub requires the site to be up");
  }
  Site* site = SiteOf(data_member);
  const SiteId self = site->id();
  int repaired = 0;

  const BlockNum rows = NumRows();
  for (BlockNum row = 0; row < rows; ++row) {
    if (map_->RoleOf(static_cast<SiteId>(data_member), row) !=
        BlockRole::kData) {
      continue;
    }
    BlockNum phys = Phys(data_member, row);
    Result<BlockRecord> rec = site->store()->Peek(phys);
    if (rec.ok() || !rec.status().IsDataLoss()) continue;  // healthy
    OpCounts counts;
    Result<Reconstructed> recon =
        Reconstruct(self, data_member, row, &counts);
    if (!recon.ok()) {
      // Sources unavailable (multiple failures) or UID-inconsistent under
      // concurrent writes; leave the block for the recovery sweep.
      stats_.Add("radd.scrub_skipped");
      continue;
    }
    RADD_RETURN_NOT_OK(
        site->store()->Write(phys, recon->data, recon->logical_uid));
    ++repaired;
    stats_.Add("radd.scrub_data_repaired");
  }
  return repaired;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

Status RaddGroup::VerifyInvariants() const {
  const BlockNum rows = NumRows();
  for (BlockNum row = 0; row < rows; ++row) {
    const int pm = static_cast<int>(map_->ParitySite(row));
    const int sm = static_cast<int>(map_->SpareSite(row));
    const int qm = map_->dual_parity()
                       ? static_cast<int>(map_->QParitySite(row))
                       : -1;

    // Parity copies with up sites and readable blocks are audited; the
    // rest are pending recompute. A row with neither is skipped.
    std::optional<BlockRecord> prec;
    if (StateOfMember(pm) == SiteState::kUp) {
      Result<BlockRecord> r = SiteOf(pm)->store()->Peek(Phys(pm, row));
      if (r.ok()) prec = std::move(r).value();
    }
    std::optional<BlockRecord> qrec;
    if (qm >= 0 && StateOfMember(qm) == SiteState::kUp) {
      Result<BlockRecord> r = SiteOf(qm)->store()->Peek(Phys(qm, row));
      if (r.ok()) qrec = std::move(r).value();
    }
    if (!prec && !qrec) continue;

    Block expected(config_.block_size);    // XOR of logical values (P)
    Block expected_q(config_.block_size);  // GF(256) sum (Q, dual mode)
    bool verifiable = true;
    for (SiteId dm_id : map_->DataSites(row)) {
      int dm = static_cast<int>(dm_id);
      // Logical value: a valid spare shadowing this member wins; otherwise
      // the member's physical block (peeked directly — simulator's
      // privilege — even if the site is down).
      Result<BlockRecord> srec =
          SpareExists(row) ? SiteOf(sm)->store()->Peek(Phys(sm, row))
                           : Result<BlockRecord>(
                                 Status::NotFound("no spare for row"));
      bool shadowed = srec.ok() && srec->uid.valid() &&
                      srec->spare_for == dm;
      Uid expected_uid;
      // `value` must outlive both accumulations below, so the record it
      // points into is declared at this scope.
      Result<BlockRecord> lrec = Status::NotFound("unread");
      const Block* value = nullptr;
      if (shadowed) {
        value = &srec->data;
        expected_uid = srec->logical_uid;
        if (StateOfMember(dm) == SiteState::kUp) {
          return Status::Internal(
              "row " + std::to_string(row) + ": spare shadows member " +
              std::to_string(dm) + " whose site is up");
        }
        RADD_RETURN_NOT_OK(expected.XorWith(*value));
      } else {
        lrec = SiteOf(dm)->store()->Peek(Phys(dm, row));
        if (!lrec.ok()) {
          verifiable = false;  // lost block pending reconstruction
          break;
        }
        value = &lrec->data;
        expected_uid = lrec->uid;
        RADD_RETURN_NOT_OK(expected.XorWith(*value));
      }
      if (qm >= 0) {
        RADD_RETURN_NOT_OK(GfMulAddInto(&expected_q, *value, GfQCoeff(dm)));
      }
      // UID-array agreement (only meaningful for up members; down /
      // recovering members may legitimately lag).
      if (StateOfMember(dm) == SiteState::kUp || shadowed) {
        size_t pos = static_cast<size_t>(dm);
        if (prec) {
          Uid entry =
              pos < prec->uid_array.size() ? prec->uid_array[pos] : Uid();
          if (entry != expected_uid) {
            return Status::Internal(
                "row " + std::to_string(row) +
                ": UID array entry for member " + std::to_string(dm) +
                " is " + entry.ToString() + ", expected " +
                expected_uid.ToString());
          }
        }
        if (qrec) {
          Uid entry =
              pos < qrec->uid_array.size() ? qrec->uid_array[pos] : Uid();
          if (entry != expected_uid) {
            return Status::Internal(
                "row " + std::to_string(row) +
                ": Q UID array entry for member " + std::to_string(dm) +
                " is " + entry.ToString() + ", expected " +
                expected_uid.ToString());
          }
        }
      }
    }
    if (!verifiable) continue;
    if (prec && expected != prec->data) {
      return Status::Internal("row " + std::to_string(row) +
                              ": parity does not equal XOR of logical data "
                              "values");
    }
    if (qrec && expected_q != qrec->data) {
      return Status::Internal("row " + std::to_string(row) +
                              ": Q parity does not equal the GF(256) sum of "
                              "logical data values");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Online expansion
// ---------------------------------------------------------------------------

Status RaddGroup::BeginExpansion(const LogicalDrive& drive) {
  if (epoch_ == nullptr) {
    return Status::InvalidArgument(
        "expansion requires a declustered placement (the rotated closed "
        "forms admit no incremental growth)");
  }
  if (config_.parities != 1) {
    return Status::InvalidArgument(
        "expansion with dual parity is not supported: Q coefficients are "
        "bound to host positions, so a data move would need a Q rewrite");
  }
  if (epoch_->migrating()) {
    return Status::InvalidArgument("an expansion is already in flight");
  }
  if (drive.site >= static_cast<SiteId>(cluster_->num_sites())) {
    return Status::InvalidArgument("new member names unknown site " +
                                   std::to_string(drive.site));
  }
  for (const LogicalDrive& d : members_) {
    if (d.site == drive.site) {
      return Status::InvalidArgument(
          "site " + std::to_string(drive.site) +
          " already hosts a member of this group");
    }
  }
  if (drive.drive_blocks < config_.rows) {
    return Status::InvalidArgument(
        "new member's drive holds " + std::to_string(drive.drive_blocks) +
        " blocks, fewer than rows = " + std::to_string(config_.rows));
  }
  const BlockNum total = cluster_->site(drive.site)->store()->total_blocks();
  if (drive.first_block > total || drive.first_block + config_.rows > total) {
    return Status::InvalidArgument(
        "new member's window exceeds site " + std::to_string(drive.site) +
        "'s " + std::to_string(total) + " blocks");
  }

  RADD_ASSIGN_OR_RETURN(std::vector<PlacementMove> plan,
                        epoch_->BeginAddMember());
  members_.push_back(drive);
  pending_moves_.assign(plan.begin(), plan.end());
  expansion_moves_planned_ = static_cast<BlockNum>(plan.size());
  expansion_moves_done_ = 0;
  stats_.Add("radd.expansion_begun");
  return Status::OK();
}

Result<int> RaddGroup::MigrateStep(int max_moves) {
  if (!ExpansionPending()) {
    return Status::InvalidArgument("no expansion in flight");
  }
  const int x = epoch_->pending_member();
  int applied = 0;
  // One pass over the queue at most per call: a skipped move goes to the
  // back and is not retried until conditions can have changed.
  size_t scan = pending_moves_.size();
  while (applied < max_moves && !pending_moves_.empty() && scan-- > 0) {
    PlacementMove mv = pending_moves_.front();
    pending_moves_.pop_front();
    if (TryApplyMove(x, mv)) {
      ++applied;
      ++expansion_moves_done_;
      stats_.Add("radd.expansion_moved");
    } else {
      pending_moves_.push_back(mv);
      stats_.Add("radd.expansion_move_skipped");
    }
  }
  if (pending_moves_.empty()) {
    RADD_RETURN_NOT_OK(epoch_->CommitAddMember());
    stats_.Add("radd.expansion_committed");
  }
  return applied;
}

bool RaddGroup::TryApplyMove(int new_member, const PlacementMove& mv) {
  // Both ends of the copy must be up; a move never runs degraded.
  if (StateOfMember(mv.donor) != SiteState::kUp) return false;
  if (StateOfMember(new_member) != SiteState::kUp) return false;
  const BlockNum src =
      members_[static_cast<size_t>(mv.donor)].first_block + mv.donor_addr;
  const BlockNum dst =
      members_[static_cast<size_t>(new_member)].first_block + mv.new_addr;
  const bool is_data = mv.offset < config_.group_size;
  const bool is_spare = mv.offset == config_.group_size;
  Result<BlockRecord> rec = SiteOf(mv.donor)->store()->Peek(src);
  if (!rec.ok()) {
    // Read-repair. An unreadable donor block would park this move at the
    // back of the queue forever, and some of these slots are repaired by
    // nobody else: a latent sector error on a never-written spare or data
    // slot is invisible to the scrubs (they skip unwritten content) and
    // to the recovery sweep (the site is up). Rebuild the logical content
    // in place, then move it like any healthy block.
    if (is_data) {
      OpCounts counts;
      Result<Reconstructed> recon =
          Reconstruct(SiteOf(mv.donor)->id(), mv.donor, mv.row, &counts);
      if (!recon.ok()) return false;  // multiple failures: recovery first
      if (!SiteOf(mv.donor)
               ->store()
               ->Write(src, recon->data, recon->logical_uid)
               .ok()) {
        return false;
      }
    } else if (is_spare) {
      // A live spare (committed writes shadowing a down member) must never
      // be discarded — but an unreadable slot can't say what it held. The
      // slot may be reset exactly when the row is provably clean: every
      // data member up and agreeing with the parity's UID array, making
      // any spare content stale by definition.
      if (SpareExists(mv.row)) {
        const int pmr = static_cast<int>(map_->ParitySite(mv.row));
        if (StateOfMember(pmr) != SiteState::kUp) return false;
        Result<BlockRecord> prow =
            SiteOf(pmr)->store()->Peek(Phys(pmr, mv.row));
        if (!prow.ok()) return false;
        for (SiteId dm : map_->DataSites(mv.row)) {
          const int m = static_cast<int>(dm);
          if (StateOfMember(m) != SiteState::kUp) return false;
          Result<BlockRecord> drec = SiteOf(m)->store()->Peek(Phys(m, mv.row));
          if (!drec.ok()) return false;
          const size_t pos = static_cast<size_t>(m);
          const Uid entry =
              pos < prow->uid_array.size() ? prow->uid_array[pos] : Uid();
          if (entry != drec->uid) return false;
        }
      }
      BlockRecord empty(config_.block_size);
      if (!SiteOf(mv.donor)->store()->WriteRecord(src, empty).ok()) {
        return false;
      }
    } else {
      // Parity slot: the parity scrub recomputes it from the row's data.
      Result<int> scrubbed = ScrubParity(mv.donor);
      if (!scrubbed.ok()) return false;
    }
    rec = SiteOf(mv.donor)->store()->Peek(src);
    if (!rec.ok()) return false;
    stats_.Add("radd.expansion_move_repaired");
  }

  std::optional<BlockRecord> fixed_parity;
  int pm = -1;
  if (is_data) {
    // A data block may move only when its copy is clean: UID equal to the
    // parity array entry (no un-acked delta in flight) and no valid spare
    // shadowing the donor (no recovery debt). The parity must be up so
    // its array can be re-indexed in the same step.
    pm = static_cast<int>(map_->ParitySite(mv.row));
    if (StateOfMember(pm) != SiteState::kUp) return false;
    Result<BlockRecord> prec = SiteOf(pm)->store()->Peek(Phys(pm, mv.row));
    if (!prec.ok()) return false;
    const size_t dpos = static_cast<size_t>(mv.donor);
    const Uid entry =
        dpos < prec->uid_array.size() ? prec->uid_array[dpos] : Uid();
    if (entry != rec->uid) return false;
    const int sm = static_cast<int>(map_->SpareSite(mv.row));
    if (SpareExists(mv.row) && StateOfMember(sm) != SiteState::kDown) {
      Result<BlockRecord> srec = SiteOf(sm)->store()->Peek(Phys(sm, mv.row));
      if (srec.ok() && srec->uid.valid() && srec->spare_for == mv.donor) {
        return false;
      }
    }
    fixed_parity = std::move(prec).value();
    if (fixed_parity->uid_array.size() <
        static_cast<size_t>(num_members())) {
      fixed_parity->uid_array.resize(static_cast<size_t>(num_members()),
                                     Uid());
    }
    fixed_parity->uid_array[static_cast<size_t>(new_member)] = entry;
    fixed_parity->uid_array[dpos] = Uid();
  }

  // The copy, the zeroing of the freed address (which becomes the donor's
  // never-written slot in the new stripe) and the array fix are one
  // atomic step in the synchronous model; the node layer's epoch guards
  // cover messages already in flight.
  if (!SiteOf(new_member)->store()->WriteRecord(dst, *rec).ok()) {
    return false;
  }
  BlockRecord freed(config_.block_size);
  if (!SiteOf(mv.donor)->store()->WriteRecord(src, freed).ok()) return false;
  if (fixed_parity.has_value()) {
    if (!SiteOf(pm)
             ->store()
             ->WriteRecord(Phys(pm, mv.row), *fixed_parity)
             .ok()) {
      return false;
    }
  }
  epoch_->ApplyMove(mv);
  return true;
}

}  // namespace radd
