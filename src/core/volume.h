// RaddVolume — the §4 sharded data plane: N RADD groups running side by
// side over one shared Simulator/Network/Cluster, behind a volume-level
// address map.
//
// The paper's §4 packs heterogeneous sites' logical drives into many
// (G+2)-member groups; this layer is that assignment promoted to a
// first-class client API. Each site exposes a flat, site-local logical
// block address space (LBA); the volume translates (site, lba) to
// (group, member, data index) via the GroupAssigner output and routes
// client reads/writes through the shared RaddNodeSystem protocol stack.
//
// Why sharding matters (ROADMAP's scaling step): rows of different groups
// have disjoint member sets beyond the shared site, so reconstruction and
// recovery traffic after a site failure fans out across all the groups
// the site participates in instead of serializing through one parity
// chain — the same load-spreading that parity declustering targets.

#ifndef RADD_CORE_VOLUME_H_
#define RADD_CORE_VOLUME_H_

#include <memory>
#include <vector>

#include "core/node.h"
#include "core/radd.h"
#include "layout/layout.h"

namespace radd {

/// Shape of a volume: every logical drive holds exactly `group.rows`
/// physical blocks, site j contributes `drives_per_site[j]` drives, and
/// the §4 greedy assignment must pack them into whole groups (total a
/// multiple of G+2, no site owning more than total/(G+2) drives).
struct VolumeConfig {
  /// Per-group tuning; `rows` doubles as the logical drive size.
  RaddConfig group;
  /// drives_per_site[j] = logical drives site j contributes.
  std::vector<int> drives_per_site;
  /// Protocol-layer tuning shared by every group.
  NodeConfig node;
};

/// A multi-group RADD volume over one cluster.
class RaddVolume {
 public:
  /// Runs the §4 assignment and validates every produced member list
  /// against the cluster (distinct sites, row counts, disk windows);
  /// fails with InvalidArgument instead of constructing a partial volume.
  static Result<std::unique_ptr<RaddVolume>> Create(Simulator* sim,
                                                    Network* net,
                                                    Cluster* cluster,
                                                    const VolumeConfig& config);

  /// Where a site-local logical block lives.
  struct Target {
    int group = 0;
    int member = 0;      // member index within the group
    BlockNum index = 0;  // data index within that member's drive
  };

  /// Translates site-local `lba` at `site` to its (group, member, index).
  /// LBAs are dense: drive d of the site covers
  /// [d * DataBlocksPerDrive(), (d+1) * DataBlocksPerDrive()).
  Result<Target> Resolve(SiteId site, BlockNum lba) const;

  /// Data blocks each logical drive exposes (whole layout cycles only).
  BlockNum DataBlocksPerDrive() const { return data_per_drive_; }
  /// Total data blocks site `site` exposes across all its drives.
  BlockNum DataBlocksAtSite(SiteId site) const;
  /// Physical blocks per drive lost to capacity rounding: the trailing
  /// partial stripe cycle DataBlocksPerDrive() drops. Also surfaced as
  /// the "volume.capacity_waste_blocks" system stat (volume-wide total)
  /// and a startup log line when non-zero.
  BlockNum CapacityWastePerDrive() const { return waste_per_drive_; }

  /// Online expansion: adds a drive at `site` to group `grp` of a live
  /// volume (RaddNodeSystem::AddGroupMember). The planned moves migrate
  /// through RaddGroup::MigrateStep — pace them with
  /// RecoverySweeper::StartMigration. Declustered groups only. The new
  /// member's rows become addressable through group-level operations once
  /// the epoch flips; the volume's LBA map keeps its creation-time shape.
  Status AddDrive(int grp, SiteId site, BlockNum first_block,
                  BlockNum drive_blocks);

  /// Volume-addressed client operations: resolve then route through the
  /// shared protocol stack. Resolution failures surface on the callback.
  void AsyncRead(SiteId client, SiteId site, BlockNum lba,
                 RaddNodeSystem::ReadCallback cb);
  void AsyncWrite(SiteId client, SiteId site, BlockNum lba, Block data,
                  RaddNodeSystem::WriteCallback cb);

  /// Blocking facades (run the simulator until completion).
  RaddNodeSystem::TimedRead Read(SiteId client, SiteId site, BlockNum lba);
  RaddNodeSystem::TimedWrite Write(SiteId client, SiteId site, BlockNum lba,
                                   const Block& data);

  /// Checks every group's global invariants (parity XOR, UID agreement,
  /// spare shadowing); first failure wins.
  Status VerifyInvariants() const;

  RaddNodeSystem* system() { return system_.get(); }
  int num_groups() const { return system_->num_groups(); }
  RaddGroup* group(int g) { return system_->group(g); }
  const VolumeConfig& config() const { return config_; }
  /// Groups hosting a drive of `site`, with the member index each; used by
  /// recovery to sweep every affected group when the site fails.
  struct SiteSlice {
    int group = 0;
    int member = 0;
  };
  const std::vector<SiteSlice>& slices_of(SiteId site) const {
    return slices_[static_cast<size_t>(site)];
  }

 private:
  RaddVolume(VolumeConfig config, std::unique_ptr<RaddNodeSystem> system,
             std::vector<std::vector<SiteSlice>> slices,
             BlockNum data_per_drive, BlockNum waste_per_drive);

  VolumeConfig config_;
  std::unique_ptr<RaddNodeSystem> system_;
  /// slices_[site] = this site's drives in LBA order (ascending
  /// first_block), each naming the group and member index it backs.
  std::vector<std::vector<SiteSlice>> slices_;
  BlockNum data_per_drive_;
  BlockNum waste_per_drive_;
};

}  // namespace radd

#endif  // RADD_CORE_VOLUME_H_
