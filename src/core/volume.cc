#include "core/volume.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

namespace radd {

Result<std::unique_ptr<RaddVolume>> RaddVolume::Create(
    Simulator* sim, Network* net, Cluster* cluster,
    const VolumeConfig& config) {
  if (config.drives_per_site.empty()) {
    return Status::InvalidArgument("volume has no drives");
  }
  const BlockNum rows = config.group.rows;
  std::vector<BlockNum> blocks_per_site(config.drives_per_site.size());
  for (size_t j = 0; j < config.drives_per_site.size(); ++j) {
    if (config.drives_per_site[j] < 0) {
      return Status::InvalidArgument("negative drive count at site " +
                                     std::to_string(j));
    }
    blocks_per_site[j] =
        static_cast<BlockNum>(config.drives_per_site[j]) * rows;
  }
  const int width =
      PlacementGroupWidth(config.group.placement, config.group.group_size,
                          config.group.parities);
  GroupAssigner assigner(config.group.group_size, config.group.parities,
                         width);
  RADD_ASSIGN_OR_RETURN(std::vector<DriveGroup> assignment,
                        assigner.AssignBlocks(blocks_per_site, rows));

  // Validate every member list up front so a bad cluster shape surfaces
  // as a Status here instead of aborting inside the RaddGroup ctor.
  std::vector<GroupSpec> specs;
  specs.reserve(assignment.size());
  for (size_t g = 0; g < assignment.size(); ++g) {
    Status st = RaddGroup::ValidateMembers(*cluster, config.group,
                                           assignment[g].members);
    if (!st.ok()) {
      return Status::InvalidArgument("group " + std::to_string(g) + ": " +
                                     st.message());
    }
    specs.push_back(GroupSpec{config.group, assignment[g].members});
  }

  auto system = std::make_unique<RaddNodeSystem>(sim, net, cluster,
                                                 std::move(specs), config.node);

  // Per-site drive directory in LBA order. AssignBlocks hands each site's
  // drives out densely from offset 0, so ascending first_block is the
  // site's drive order.
  struct DriveRef {
    BlockNum first_block;
    SiteSlice slice;
  };
  std::vector<std::vector<DriveRef>> refs(config.drives_per_site.size());
  for (size_t g = 0; g < assignment.size(); ++g) {
    const std::vector<LogicalDrive>& members = assignment[g].members;
    for (size_t m = 0; m < members.size(); ++m) {
      const LogicalDrive& d = members[m];
      refs[static_cast<size_t>(d.site)].push_back(DriveRef{
          d.first_block,
          SiteSlice{static_cast<int>(g), static_cast<int>(m)}});
    }
  }
  std::vector<std::vector<SiteSlice>> slices(refs.size());
  for (size_t s = 0; s < refs.size(); ++s) {
    std::sort(refs[s].begin(), refs[s].end(),
              [](const DriveRef& x, const DriveRef& y) {
                return x.first_block < y.first_block;
              });
    slices[s].reserve(refs[s].size());
    for (const DriveRef& r : refs[s]) slices[s].push_back(r.slice);
  }

  const PlacementMap& map0 = system->group(0)->layout();
  const BlockNum data_per_drive = map0.DataBlocksPerSite(rows);
  // Capacity rounding (satellite of the placement layer): only whole
  // stripe cycles carry data, so a drive whose row count is not a
  // multiple of the stripe width strands its trailing partial cycle.
  // Surface the loss instead of dropping it silently.
  const BlockNum waste_per_drive = map0.CapacityWasteBlocks(rows);
  const BlockNum num_drives =
      static_cast<BlockNum>(assignment.size()) *
      static_cast<BlockNum>(width);
  system->mutable_stats()->Add("volume.capacity_waste_blocks",
                               waste_per_drive * num_drives);
  if (waste_per_drive > 0) {
    std::fprintf(
        stderr,
        "RaddVolume: capacity rounding strands %llu of %llu blocks per "
        "drive (trailing partial cycle of stripe width %d): %llu blocks "
        "across %llu drives\n",
        static_cast<unsigned long long>(waste_per_drive),
        static_cast<unsigned long long>(rows), map0.stripe_width(),
        static_cast<unsigned long long>(waste_per_drive * num_drives),
        static_cast<unsigned long long>(num_drives));
  }
  return std::unique_ptr<RaddVolume>(
      new RaddVolume(config, std::move(system), std::move(slices),
                     data_per_drive, waste_per_drive));
}

Status RaddVolume::AddDrive(int grp, SiteId site, BlockNum first_block,
                            BlockNum drive_blocks) {
  LogicalDrive d;
  d.site = site;
  d.first_block = first_block;
  d.drive_blocks = drive_blocks;
  Status st = system_->AddGroupMember(grp, d);
  if (!st.ok()) return st;
  if (static_cast<size_t>(site) >= slices_.size()) {
    slices_.resize(static_cast<size_t>(site) + 1);
  }
  slices_[static_cast<size_t>(site)].push_back(
      SiteSlice{grp, system_->group(grp)->num_members() - 1});
  return Status::OK();
}

RaddVolume::RaddVolume(VolumeConfig config,
                       std::unique_ptr<RaddNodeSystem> system,
                       std::vector<std::vector<SiteSlice>> slices,
                       BlockNum data_per_drive, BlockNum waste_per_drive)
    : config_(std::move(config)),
      system_(std::move(system)),
      slices_(std::move(slices)),
      data_per_drive_(data_per_drive),
      waste_per_drive_(waste_per_drive) {}

Result<RaddVolume::Target> RaddVolume::Resolve(SiteId site,
                                               BlockNum lba) const {
  if (static_cast<size_t>(site) >= slices_.size()) {
    return Status::InvalidArgument("site " + std::to_string(site) +
                                   " is outside the volume");
  }
  const std::vector<SiteSlice>& drives = slices_[static_cast<size_t>(site)];
  const BlockNum drive = lba / data_per_drive_;
  if (drive >= static_cast<BlockNum>(drives.size())) {
    return Status::InvalidArgument(
        "lba " + std::to_string(lba) + " beyond site " +
        std::to_string(site) + "'s " +
        std::to_string(static_cast<BlockNum>(drives.size()) *
                       data_per_drive_) +
        " data blocks");
  }
  const SiteSlice& s = drives[static_cast<size_t>(drive)];
  Target t;
  t.group = s.group;
  t.member = s.member;
  t.index = lba % data_per_drive_;
  return t;
}

BlockNum RaddVolume::DataBlocksAtSite(SiteId site) const {
  if (static_cast<size_t>(site) >= slices_.size()) return 0;
  return static_cast<BlockNum>(slices_[static_cast<size_t>(site)].size()) *
         data_per_drive_;
}

void RaddVolume::AsyncRead(SiteId client, SiteId site, BlockNum lba,
                           RaddNodeSystem::ReadCallback cb) {
  Result<Target> t = Resolve(site, lba);
  if (!t.ok()) {
    cb(t.status(), Block(0), 0);
    return;
  }
  system_->AsyncRead(client, t->group, t->member, t->index, std::move(cb));
}

void RaddVolume::AsyncWrite(SiteId client, SiteId site, BlockNum lba,
                            Block data,
                            RaddNodeSystem::WriteCallback cb) {
  Result<Target> t = Resolve(site, lba);
  if (!t.ok()) {
    cb(t.status(), 0);
    return;
  }
  system_->AsyncWrite(client, t->group, t->member, t->index, std::move(data),
                      std::move(cb));
}

RaddNodeSystem::TimedRead RaddVolume::Read(SiteId client, SiteId site,
                                           BlockNum lba) {
  Result<Target> t = Resolve(site, lba);
  if (!t.ok()) {
    RaddNodeSystem::TimedRead out;
    out.status = t.status();
    return out;
  }
  return system_->Read(client, t->group, t->member, t->index);
}

RaddNodeSystem::TimedWrite RaddVolume::Write(SiteId client, SiteId site,
                                             BlockNum lba,
                                             const Block& data) {
  Result<Target> t = Resolve(site, lba);
  if (!t.ok()) {
    RaddNodeSystem::TimedWrite out;
    out.status = t.status();
    return out;
  }
  return system_->Write(client, t->group, t->member, t->index, data);
}

Status RaddVolume::VerifyInvariants() const {
  for (int g = 0; g < system_->num_groups(); ++g) {
    Status st = system_->group(g)->VerifyInvariants();
    if (!st.ok()) {
      return Status::Internal("group " + std::to_string(g) + ": " +
                              st.message());
    }
  }
  return Status::OK();
}

}  // namespace radd
