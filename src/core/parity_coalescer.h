// ParityCoalescer — the write-combining staging buffer of the batched
// parity pipeline (DESIGN.md §10).
//
// The paper charges every data write one W3 parity message (formula 1).
// Under heavy traffic many of those messages target the same parity site,
// and often the same row: because formula (1) is an XOR, change masks for
// the same (row, position) compose associatively — applying their XOR-merge
// once is byte-identical to applying each in order. The coalescer exploits
// this: each site keeps one staging buffer per parity site; a staged update
// either opens a new entry or folds into the existing entry for its key
// (delta ^= mask, UID advances to the newest contributor — the merged
// result is exactly the state the paper's UID array would hold after the
// last member applied). A flush drains the eligible entries into one
// ParityBatchFrame.
//
// Eligibility: a key with an unacked in-flight batch is *blocked* — at most
// one update per (row, position) may be on the wire at a time, so a
// reordered pair of batches can never leave the parity UID array pointing
// at a stale merge. Blocked entries stay staged and flush when the batch
// holding their key resolves.

#ifndef RADD_CORE_PARITY_COALESCER_H_
#define RADD_CORE_PARITY_COALESCER_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/block.h"
#include "common/uid.h"
#include "sim/simulator.h"

namespace radd {

/// Tunables of the batched parity pipeline. Off by default: with
/// `enabled = false` the protocol layer sends one parity_update per write,
/// bit-identical to the unbatched implementation.
struct ParityBatchConfig {
  bool enabled = false;
  /// Flush when the staged entries cover this many client ops.
  int max_ops = 8;
  /// Flush when the summed encoded-mask bytes reach this.
  size_t max_bytes = 16 * 1024;
  /// Flush no later than this after the buffer became nonempty, so a lone
  /// write is not held hostage waiting for company (group-commit timer).
  SimTime max_delay = Millis(2);
};

class ParityCoalescer {
 public:
  using Key = std::pair<BlockNum, int>;  // (row, position)

  struct Entry {
    BlockNum row = 0;
    int position = 0;
    Block delta{0};           ///< XOR-merge of every staged mask
    Uid uid;                  ///< newest contributing UID (latest wins)
    /// Home epoch captured when the (first) delta was computed — NOT
    /// restamped on retransmit. A delta diffed against a pre-transition
    /// disk state is invalid once the home's epoch moves (recovery may
    /// rebuild the row from parity in between); the receiver must reject
    /// it so the write retries against fresh state. A merge keeps the
    /// OLDEST stamp: one stale contributor poisons the whole merge.
    uint64_t home_epoch = 0;
    size_t encoded_bytes = 0; ///< wire cost of the merged mask
    std::vector<uint64_t> ops;  ///< client ops awaiting this entry's ack

    Key key() const { return {row, position}; }
  };

  /// Stages one parity update for client op `op`. Takes the mask's delta
  /// block by value (movable); merges into the existing entry when the
  /// (row, position) key is already staged.
  void Add(BlockNum row, int position, ChangeMask mask, Uid uid,
           uint64_t home_epoch, uint64_t op);

  /// Re-stages a previously flushed entry (retry of a nacked batch
  /// entry), merging if its key was staged again in the meantime.
  void AddEntry(Entry entry);

  bool empty() const { return entries_.empty(); }
  size_t op_count() const { return ops_; }
  size_t staged_bytes() const { return bytes_; }
  size_t entry_count() const { return entries_.size(); }

  /// Removes and returns the staged entries whose key is NOT in `blocked`,
  /// preserving staging order. Blocked entries stay staged.
  std::vector<Entry> TakeEligible(const std::set<Key>& blocked);

 private:
  void Merge(Entry& into, Entry from);
  void Account(const Entry& e, int sign);

  std::vector<Entry> entries_;     // staging order
  std::map<Key, size_t> index_;    // key -> position in entries_
  size_t ops_ = 0;
  size_t bytes_ = 0;
};

}  // namespace radd

#endif  // RADD_CORE_PARITY_COALESCER_H_
