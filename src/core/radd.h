// RaddGroup — the paper's RADD algorithms (§3) over one group of
// G + 1 + parities sites (G + 2 for the paper's single parity, G + 3 for
// the P+Q double-failure scheme), in a synchronous (direct-call) form
// with exact accounting of
// Table-1 operations. The message-driven protocol implementation that runs
// the same algorithms over the simulated network lives in core/node.h.
//
// The group is described by a member list: member m of the group is a
// LogicalDrive (site + block offset), so the same class serves both the
// simple one-group case (member m == site m, offset 0) and the §4
// heterogeneous assignment. All layout math (Fig. 1) treats member indices
// as the layout's "sites".
//
// Accounting rules (matching how Figure 3 counts):
//   * A read or write of a block at the client's own site costs R / W;
//     at any other site it costs RR / RW.
//   * Reading the *old* value of a block immediately before overwriting it
//     at the same site is free (the paper's "careful buffering of the old
//     data block can remove one of the reads"); set
//     RaddConfig::charge_old_value_read to charge it instead.
//   * Asynchronous side effects — materializing a reconstructed value into
//     the spare, invalidating a spare after a recovering-site access — are
//     recorded in stats() but not charged to the triggering operation's
//     OpCounts, again matching Figure 3.

#ifndef RADD_CORE_RADD_H_
#define RADD_CORE_RADD_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/block.h"
#include "common/status.h"
#include "common/uid.h"
#include "layout/layout.h"
#include "layout/placement.h"
#include "sim/stats.h"

namespace radd {

/// Tuning knobs for a RADD group.
struct RaddConfig {
  /// The paper's G. The group then has G + 1 + parities members.
  int group_size = 8;
  /// Rotating parity roles per row: 1 is the paper's single XOR parity
  /// (G + 2 members); 2 adds the GF(256) Reed-Solomon Q parity
  /// (common/gf256.h) for double-failure tolerance — any two dead members
  /// per row remain decodable.
  int parities = 1;
  /// Physical rows per member used by this group.
  BlockNum rows = 60;
  size_t block_size = Block::kDefaultSize;

  /// Write the reconstructed value of a degraded read into the spare block
  /// so later reads cost one remote read (paper §3.2). Ablation: off.
  bool materialize_on_degraded_read = true;
  /// Ship parity updates as encoded change masks (§7.4) instead of full
  /// blocks. Affects byte accounting only; semantics are identical.
  bool use_change_masks = true;
  /// Charge the read of a block's old value before overwrite (off = the
  /// paper's buffered model).
  bool charge_old_value_read = false;
  /// Attempts for UID-validated reconstruction before giving up with
  /// Inconsistent (§3.3 "the read was not consistent and must be retried").
  int max_reconstruct_attempts = 3;

  /// How the group's (member, row) -> role/address map is built
  /// (layout/placement.h). The default rotated placement is the paper's
  /// closed-form layout with G + 1 + parities members; declustered
  /// placement spreads rows over `placement.sites` members and supports
  /// online expansion.
  PlacementSpec placement;

  /// §7.2: "a smaller number of spare blocks can be allocated per site if
  /// the system administrator is willing to tolerate lower availability.
  /// ... Analyzing availability for lesser numbers of [spare] blocks is
  /// left as a future exercise." This knob is that exercise: only this
  /// fraction of rows carry a usable spare (spread evenly, Bresenham
  /// style). Rows without one cannot absorb writes while their home is
  /// down (the write blocks) and degraded reads always pay full
  /// reconstruction. Space overhead becomes (1 + fraction) / G.
  double spare_fraction = 1.0;
};

/// Outcome of a user read or write.
struct OpResult {
  Status status;
  /// Contents, for reads.
  Block data{0};
  /// UID stamped on / read from the block.
  Uid uid;
  /// Critical-path physical operations, Figure-3 style.
  OpCounts counts;

  bool ok() const { return status.ok(); }
};

/// One RADD group: G + 2 members on distinct sites of a Cluster.
class RaddGroup {
 public:
  /// Identity group: member m is site m with offset 0. The cluster must
  /// have at least G+2 sites with at least `config.rows` blocks each.
  RaddGroup(Cluster* cluster, const RaddConfig& config);

  /// Explicit member list (e.g. from GroupAssigner::AssignBlocks). Each
  /// member's drive must hold at least `config.rows` blocks; members must
  /// be on distinct sites. The list is checked with ValidateMembers: a
  /// malformed one (wrong count, shared sites, short drives, out-of-range
  /// block windows) aborts instead of silently corrupting unrelated rows.
  RaddGroup(Cluster* cluster, const RaddConfig& config,
            std::vector<LogicalDrive> members);

  /// Checks an explicit member list against the §4 preconditions without
  /// constructing a group: exactly G+2 members, all on distinct existing
  /// sites, every drive holding at least `config.rows` blocks, and every
  /// drive's block window within its site's disk system. Callers that
  /// assemble member lists dynamically (RaddVolume) surface this Status;
  /// the constructor aborts on it.
  static Status ValidateMembers(const Cluster& cluster,
                                const RaddConfig& config,
                                const std::vector<LogicalDrive>& members);

  const RaddConfig& config() const { return config_; }
  const PlacementMap& layout() const { return *map_; }
  Cluster* cluster() const { return cluster_; }
  int num_members() const { return map_->num_sites(); }
  /// Logical rows the group currently exposes (rotated: config().rows;
  /// table maps may expose more rows, each touching only n members, and
  /// the count grows when an expansion commits).
  BlockNum NumRows() const { return map_->NumRows(config_.rows); }

  /// Data blocks each member exposes.
  BlockNum DataBlocksPerMember() const {
    return map_->DataBlocksPerSite(config_.rows);
  }

  /// Site hosting member `m`.
  SiteId SiteOfMember(int m) const { return members_[size_t(m)].site; }
  /// First physical block of member `m`'s logical drive on its site.
  BlockNum FirstBlockOfMember(int m) const {
    return members_[size_t(m)].first_block;
  }
  /// Member hosted at `site`, or -1.
  int MemberAtSite(SiteId site) const;

  /// Reads data block `data_index` of member `home`, on behalf of a client
  /// running at site `client` (usually the member's own site; when the
  /// member's site is down the client is wherever the work migrated, §6).
  OpResult Read(SiteId client, int home, BlockNum data_index);

  /// Writes data block `data_index` of member `home`.
  OpResult Write(SiteId client, int home, BlockNum data_index,
                 const Block& new_data);

  /// Runs the recovery sweep for member `home` (paper §3.2's background
  /// process): drains valid spares back to the local disk, reconstructs
  /// lost data blocks, recomputes lost/stale parity blocks, clears lost
  /// spare blocks, then marks the site up. The member's site must be in
  /// the recovering state. Returns the physical ops performed.
  ///
  /// When the site hosts drives of several RADD groups (§4), each group
  /// runs its own sweep; pass mark_up = false for all but the last so the
  /// site stays in the recovering state until every group is done.
  Result<OpCounts> RunRecovery(int home, bool mark_up = true);

  /// One step of the recovery sweep: repairs member `home`'s block in
  /// `row` (drain spare / reconstruct data / rebuild parity / clear spare,
  /// by role), accumulating physical ops into `counts`. The incremental
  /// sweeper (core/sweeper.h) calls this a bounded number of times per
  /// tick; RunRecovery is the stop-the-world loop over all rows. The
  /// caller is responsible for ensuring the member's site is in the
  /// recovering state.
  Status RecoverRow(int home, BlockNum row, OpCounts* counts);

  /// Metadata-only verification scan for the end of a sweep: the first row
  /// at or after `from` that still needs recovery work — a valid spare
  /// shadowing `home`, or a lost local block — or `config().rows` when the
  /// member is clean and may be marked up. Parity freshness is not checked
  /// here (a swept parity row receives live updates and stays fresh; rows
  /// whose updates were dropped belong to ScrubParity).
  Result<BlockNum> FirstUnrecoveredRow(int home, BlockNum from = 0) const;

  /// Background scrubber: audits every row's parity against the XOR of
  /// its data blocks (and the UID array against the blocks' UIDs) and
  /// repairs any mismatch by recomputing the parity block — the on-line
  /// counterpart of the recovery sweep, for silent corruption and for
  /// rows whose parity updates were dropped while the parity site was
  /// down. Only rows whose members are all readable are audited. Returns
  /// the number of rows repaired.
  Result<int> ScrubParity(int parity_member);

  /// Data-side counterpart of ScrubParity: audits member `data_member`'s
  /// data blocks at an *up* site and repairs any that read as DataLoss —
  /// latent sector errors, checksum-detected silent corruption, residual
  /// loss — by formula-(2) reconstruction from the row's other blocks,
  /// restamping the logical UID from the parity array so the UID-agreement
  /// invariant holds afterwards. Rows whose sources are unavailable are
  /// skipped ("radd.scrub_skipped"). Returns the number of blocks
  /// repaired ("radd.scrub_data_repaired").
  Result<int> ScrubData(int data_member);

  /// Checks the group's global invariants; used by property tests.
  ///   * parity row contents == XOR of the logical values of its G data
  ///     blocks (skipped when the parity site is not up);
  ///   * each up data block's UID matches the parity UID array entry;
  ///   * valid spares shadow only blocks of non-up members.
  Status VerifyInvariants() const;

  // --- online expansion (declustered placement, single parity) ----------
  /// Starts adding `drive` as a new member of a live group: plans the
  /// minimal move set (layout/placement.h) and makes the member
  /// addressable. Rows, roles and capacity are unchanged until every move
  /// lands and the epoch flips. Fails for rotated placement (the closed
  /// forms admit no incremental growth — that is the point of the
  /// refactor) and for dual parity (Q coefficients are host-bound; out of
  /// scope).
  Status BeginExpansion(const LogicalDrive& drive);
  /// Migrates up to `max_moves` planned blocks. A move runs only when the
  /// donor, the new member and (for data blocks) the row's parity are up
  /// and the donor's copy is clean — UID equal to the parity array entry
  /// and no valid spare shadowing it; skipped moves are retried on later
  /// calls. When the last move lands the epoch flips and NumRows() grows.
  /// Returns the number of blocks moved by this call. Paced by the
  /// RecoverySweeper in autopilot mode; loop until ExpansionPending() is
  /// false for a stop-the-world expansion.
  Result<int> MigrateStep(int max_moves);
  bool ExpansionPending() const {
    return epoch_ != nullptr && epoch_->migrating();
  }
  /// Blocks physically moved / planned for the expansion in flight (or
  /// the last completed one).
  BlockNum ExpansionMovesDone() const { return expansion_moves_done_; }
  BlockNum ExpansionMovesPlanned() const { return expansion_moves_planned_; }

  /// Asynchronous side-effect and diagnostic counters:
  /// "radd.materialize", "radd.spare_invalidate", "radd.parity_dropped",
  /// "radd.reconstructions", "radd.uid_retry", "radd.bytes.parity",
  /// "radd.bytes.spare_write", ...
  const Stats& stats() const { return stats_; }
  Stats* mutable_stats() { return &stats_; }

 private:
  // --- addressing -------------------------------------------------------
  /// Flat physical block number on member m's site for row r. Only valid
  /// when m participates in the row (RoleOf != kNone).
  BlockNum Phys(int m, BlockNum row) const {
    return members_[size_t(m)].first_block +
           map_->AddressOf(static_cast<SiteId>(m), row);
  }
  Site* SiteOf(int m) const;
  SiteState StateOfMember(int m) const;
  /// True when member m's physical block for `row` is readable (site up or
  /// recovering and the block is not lost to a disk failure).
  bool BlockReadable(int m, BlockNum row) const;

  /// §3.3: true when a parity row's UID array records a write for
  /// `home` that `local` does not carry and does not postdate — the local
  /// copy missed an update and must be reconstructed from the parity. In
  /// dual-parity mode both P's and Q's arrays are consulted; either one
  /// superseding marks the copy stale.
  bool ParityEntrySupersedes(int home, BlockNum row, Uid local) const;
  /// The per-parity-member half of ParityEntrySupersedes.
  bool ParityMemberSupersedes(int pm, int home, BlockNum row,
                              Uid local) const;

  /// §7.2 spare thinning: whether `row` has a spare block at all.
  bool SpareExists(BlockNum row) const;

  // --- accounting -------------------------------------------------------
  void ChargeRead(SiteId client, int target_member, OpCounts* c) const;
  void ChargeWrite(SiteId client, int target_member, OpCounts* c) const;

  // --- protocol steps ---------------------------------------------------
  /// Reads member m's physical block of `row` (any role), returning the
  /// full record. Fails with DataLoss/Unavailable as appropriate.
  Result<BlockRecord> ReadPhys(int m, BlockNum row) const;

  /// Formula (2) reconstruction of member `home`'s block in `row`, with
  /// §3.3 UID validation against the parity block's UID array. On success
  /// also reports the parity array entry for `home` (the logical UID of
  /// the reconstructed value). Charges G reads into `counts`. In
  /// dual-parity mode this dispatches to the two-erasure GF(256) decoder.
  struct Reconstructed {
    Block data{0};
    Uid logical_uid;
  };
  Result<Reconstructed> Reconstruct(SiteId client, int home, BlockNum row,
                                    OpCounts* counts);
  /// The P+Q decoder: tolerates `home` plus one more erasure among
  /// {data members, P, Q}. Parity blocks at non-up sites are treated as
  /// erased (a recovering parity has no authority until swept); a valid
  /// spare shadowing a data member stands in for its local copy.
  Result<Reconstructed> ReconstructDual(SiteId client, int home, BlockNum row,
                                        OpCounts* counts);

  /// Applies a parity delta for member `home`'s block in `row` (steps
  /// W2-W4). `issuer` is the site sending the W3 message (the home site
  /// for normal writes, the spare site for degraded writes); the write is
  /// charged local/remote relative to it. If the parity site cannot accept
  /// the update (down or parity block lost) it is dropped and counted in
  /// stats ("radd.parity_dropped").
  void UpdateParity(SiteId issuer, int home, BlockNum row,
                    const ChangeMask& mask, Uid uid, OpCounts* counts);
  /// One leg of UpdateParity: applies `mask`, scaled by `coeff` (1 for the
  /// P leg, g^home for the Q leg), to parity member `pm`'s block.
  void ApplyParityLeg(SiteId issuer, int home, BlockNum row,
                      const ChangeMask& mask, Uid uid, OpCounts* counts,
                      int pm, uint8_t coeff);

  /// Dual-parity recovery of a P or Q row: gathers every data member's
  /// logical value (spare shadow, local block, or decode via the other
  /// parity) and rebuilds the row when lost or stale. `q_role` selects the
  /// GF(256) Q sum over the plain XOR.
  Status RebuildParityRow(int home, BlockNum row, OpCounts* counts,
                          bool q_role);

  /// The degraded (home down / block lost) read path.
  OpResult DegradedRead(SiteId client, int home, BlockNum row);
  /// The recovering-site read path.
  OpResult RecoveringRead(SiteId client, int home, BlockNum row);
  /// The degraded (home down / block lost) write path, W1' + W2-W4.
  OpResult DegradedWrite(SiteId client, int home, BlockNum row,
                         const Block& new_data);

  /// One planned expansion move: copy the donor's record to the new
  /// member, zero the freed address, fix the parity UID array (data
  /// blocks), then flip the map. Returns false (skip, retry later) when a
  /// participant is unavailable or the donor's copy is not clean.
  bool TryApplyMove(int new_member, const PlacementMove& move);

  Cluster* cluster_;
  RaddConfig config_;
  std::shared_ptr<PlacementMap> map_;
  /// Non-null when map_ supports epoched expansion (declustered).
  EpochedPlacement* epoch_ = nullptr;
  std::vector<LogicalDrive> members_;
  std::deque<PlacementMove> pending_moves_;
  BlockNum expansion_moves_done_ = 0;
  BlockNum expansion_moves_planned_ = 0;
  Stats stats_;
};

}  // namespace radd

#endif  // RADD_CORE_RADD_H_
