#include "core/parity_coalescer.h"

#include <cassert>

namespace radd {

void ParityCoalescer::Account(const Entry& e, int sign) {
  if (sign > 0) {
    ops_ += e.ops.size();
    bytes_ += e.encoded_bytes;
  } else {
    assert(ops_ >= e.ops.size() && bytes_ >= e.encoded_bytes);
    ops_ -= e.ops.size();
    bytes_ -= e.encoded_bytes;
  }
}

void ParityCoalescer::Merge(Entry& into, Entry from) {
  Account(into, -1);
  assert(into.delta.size() == from.delta.size());
  internal::XorBytes(into.delta.data(), from.delta.data(),
                     into.delta.size());
  // Latest UID wins: formula (1)'s merge leaves the parity UID array
  // exactly where applying the members in order would have left it.
  if (into.uid < from.uid || !into.uid.valid()) into.uid = from.uid;
  // Oldest epoch wins: if any contributor predates a home transition, the
  // merged delta is unusable and the receiver must say so.
  if (from.home_epoch < into.home_epoch) into.home_epoch = from.home_epoch;
  for (uint64_t op : from.ops) into.ops.push_back(op);
  // The merged mask can shrink (runs cancel) or grow (runs union); the
  // wire cost is whatever the merge actually encodes to.
  ChangeMask merged = ChangeMask::FromFull(std::move(into.delta));
  into.encoded_bytes = merged.EncodedSize();
  into.delta = std::move(merged).TakeDelta();
  Account(into, +1);
}

void ParityCoalescer::Add(BlockNum row, int position, ChangeMask mask,
                          Uid uid, uint64_t home_epoch, uint64_t op) {
  Entry e;
  e.row = row;
  e.position = position;
  e.uid = uid;
  e.home_epoch = home_epoch;
  e.encoded_bytes = mask.EncodedSize();
  e.delta = std::move(mask).TakeDelta();
  e.ops.push_back(op);
  AddEntry(std::move(e));
}

void ParityCoalescer::AddEntry(Entry entry) {
  auto it = index_.find(entry.key());
  if (it != index_.end()) {
    Merge(entries_[it->second], std::move(entry));
    return;
  }
  index_[entry.key()] = entries_.size();
  Account(entry, +1);
  entries_.push_back(std::move(entry));
}

std::vector<ParityCoalescer::Entry> ParityCoalescer::TakeEligible(
    const std::set<Key>& blocked) {
  std::vector<Entry> taken;
  std::vector<Entry> kept;
  for (Entry& e : entries_) {
    if (blocked.count(e.key())) {
      kept.push_back(std::move(e));
    } else {
      Account(e, -1);
      taken.push_back(std::move(e));
    }
  }
  entries_ = std::move(kept);
  index_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) {
    index_[entries_[i].key()] = i;
  }
  return taken;
}

}  // namespace radd
